// Benchmark harness: one testing.B benchmark per table/figure of the
// paper, plus real-mechanism benchmarks for the concurrent HotCalls
// implementation.  The simulated benchmarks report the modelled cost via
// b.ReportMetric (sim-cycles/op); wall-clock ns/op measures the simulator
// itself.  Run with:
//
//	go test -bench=. -benchmem
package hotcalls_test

import (
	"sync"
	"testing"

	"hotcalls/internal/apps/lighttpd"
	"hotcalls/internal/apps/memcached"
	"hotcalls/internal/apps/openvpn"
	"hotcalls/internal/apps/porting"
	"hotcalls/internal/core"
	"hotcalls/internal/edl"
	"hotcalls/internal/mee"
	"hotcalls/internal/mem"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sgx"
	"hotcalls/internal/sim"
	"hotcalls/internal/spec"
)

const benchEDL = `
enclave {
    trusted {
        public int ecall_empty(void);
        public int ecall_in([in, size=len] uint8_t* buf, size_t len);
        public int ecall_out([out, size=len] uint8_t* buf, size_t len);
        public int ecall_driver(void);
    };
    untrusted {
        int ocall_empty(void);
        int ocall_out([out, size=len] uint8_t* buf, size_t len);
    };
};
`

type benchFixture struct {
	p  *sgx.Platform
	e  *sgx.Enclave
	rt *sdk.Runtime
}

func newBenchFixture(b *testing.B) *benchFixture {
	b.Helper()
	p := sgx.NewPlatform(777)
	var clk sim.Clock
	e := p.ECreate(&clk, 64<<20, 2, sgx.Attributes{})
	if err := e.EAdd(&clk, 0, make([]byte, sgx.PageSize)); err != nil {
		b.Fatal(err)
	}
	if err := e.EInit(&clk); err != nil {
		b.Fatal(err)
	}
	rt := sdk.New(p, e, edl.MustParse(benchEDL))
	noop := func(ctx *sdk.Ctx, args []sdk.Arg) uint64 { return 0 }
	rt.MustBindECall("ecall_empty", noop)
	rt.MustBindECall("ecall_in", noop)
	rt.MustBindECall("ecall_out", noop)
	rt.MustBindOCall("ocall_empty", noop)
	rt.MustBindOCall("ocall_out", noop)
	return &benchFixture{p: p, e: e, rt: rt}
}

func reportSimCycles(b *testing.B, total uint64) {
	b.ReportMetric(float64(total)/float64(b.N), "sim-cycles/op")
}

// BenchmarkTable1EcallWarm covers Table 1 row 1.
func BenchmarkTable1EcallWarm(b *testing.B) {
	f := newBenchFixture(b)
	var total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var clk sim.Clock
		if _, err := f.rt.ECall(&clk, "ecall_empty"); err != nil {
			b.Fatal(err)
		}
		total += clk.Now()
	}
	reportSimCycles(b, total)
}

// BenchmarkTable1EcallCold covers Table 1 row 2.
func BenchmarkTable1EcallCold(b *testing.B) {
	f := newBenchFixture(b)
	var total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.p.Mem.EvictAll()
		var clk sim.Clock
		if _, err := f.rt.ECall(&clk, "ecall_empty"); err != nil {
			b.Fatal(err)
		}
		total += clk.Now()
	}
	reportSimCycles(b, total)
}

// BenchmarkTable1EcallBuffer2KB covers Table 1 row 3 (Figure 4 at 2 KB).
func BenchmarkTable1EcallBuffer2KB(b *testing.B) {
	for _, dir := range []string{"in", "out"} {
		b.Run(dir, func(b *testing.B) {
			f := newBenchFixture(b)
			var clk sim.Clock
			buf := f.rt.Arena.AllocBuffer(&clk, 2048)
			var total uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.p.Mem.EvictRange(buf.Addr, 2048)
				var c sim.Clock
				if _, err := f.rt.ECall(&c, "ecall_"+dir, sdk.Buf(buf), sdk.Scalar(2048)); err != nil {
					b.Fatal(err)
				}
				total += c.Now()
			}
			reportSimCycles(b, total)
		})
	}
}

// BenchmarkTable1Ocall covers Table 1 rows 4-6 (Figures 2b and 5).
func BenchmarkTable1Ocall(b *testing.B) {
	f := newBenchFixture(b)
	var ocallCycles uint64
	f.rt.MustBindECall("ecall_driver", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		start := ctx.Clk.Now()
		if _, err := ctx.OCall("ocall_empty"); err != nil {
			panic(err)
		}
		ocallCycles = ctx.Clk.Since(start)
		return 0
	})
	var total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var clk sim.Clock
		if _, err := f.rt.ECall(&clk, "ecall_driver"); err != nil {
			b.Fatal(err)
		}
		total += ocallCycles
	}
	reportSimCycles(b, total)
}

// BenchmarkFig3HotCallModel covers Figure 3: the calibrated HotCall cycle
// model through the full marshalling path.
func BenchmarkFig3HotCallModel(b *testing.B) {
	f := newBenchFixture(b)
	ch := core.NewChannel(f.rt, f.p.RNG)
	var total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var clk sim.Clock
		if _, err := ch.HotOCall(&clk, "ocall_empty"); err != nil {
			b.Fatal(err)
		}
		total += clk.Now()
	}
	reportSimCycles(b, total)
}

// BenchmarkFig3HotCallReal measures the real spin-lock shared-memory
// round trip between two goroutines — the mechanism itself, in wall-clock
// nanoseconds.
func BenchmarkFig3HotCallReal(b *testing.B) {
	var hc core.HotCall
	hc.Timeout = 1 << 30
	responder := core.NewResponder(&hc, []func(interface{}) uint64{
		func(d interface{}) uint64 { return 1 },
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		responder.Run()
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hc.Call(0, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	hc.Stop()
	wg.Wait()
}

// BenchmarkGoChannelRoundTrip is the ablation baseline for the real
// HotCall: the idiomatic Go alternative (two channels).
func BenchmarkGoChannelRoundTrip(b *testing.B) {
	req := make(chan int)
	resp := make(chan int)
	go func() {
		for v := range req {
			resp <- v + 1
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req <- i
		<-resp
	}
	b.StopTimer()
	close(req)
}

// BenchmarkFig6MemoryRead covers Figure 6 / Table 1 row 7.
func BenchmarkFig6MemoryRead(b *testing.B) {
	for _, cfg := range []struct {
		name string
		base uint64
	}{{"plaintext", mem.PlainBase + (1 << 28)}, {"encrypted", mem.EnclaveBase}} {
		b.Run(cfg.name, func(b *testing.B) {
			rng := sim.NewRNG(55)
			s := mem.New(rng)
			var total uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.EvictRange(cfg.base, 2048)
				var clk sim.Clock
				s.StreamRead(&clk, cfg.base, 2048)
				s.MFence(&clk)
				total += clk.Now()
			}
			reportSimCycles(b, total)
		})
	}
}

// BenchmarkFig7MemoryWrite covers Figure 7 / Table 1 row 8.
func BenchmarkFig7MemoryWrite(b *testing.B) {
	rng := sim.NewRNG(56)
	s := mem.New(rng)
	var total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EvictRange(mem.EnclaveBase, 2048)
		var clk sim.Clock
		s.StreamWrite(&clk, mem.EnclaveBase, 2048)
		s.FlushRange(&clk, mem.EnclaveBase, 2048)
		s.MFence(&clk)
		total += clk.Now()
	}
	reportSimCycles(b, total)
}

// BenchmarkFig8SpecKernels covers Figure 8's SPEC bars.
func BenchmarkFig8SpecKernels(b *testing.B) {
	for _, k := range spec.Kernels {
		if k.Name == "libquantum" {
			continue // dominated by a 96 MB sweep; too slow per-op here
		}
		b.Run(k.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.Run(uint64(i), 1)
			}
		})
	}
}

// BenchmarkMEEProtect measures the functional Memory Encryption Engine:
// a protected line write (encrypt, version bump, MAC path) and verified
// read.
func BenchmarkMEEProtect(b *testing.B) {
	var key [32]byte
	key[0] = 1
	tree := mee.NewTree(key, 1<<20)
	line := make([]byte, mee.LineSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.WriteLine(uint64(i)%(1<<20), line)
		if _, err := tree.ReadLine(uint64(i) % (1 << 20)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Apps covers Figures 10/11 and Table 2: one served request
// (or forwarded packet) per iteration, per application and interface.
func BenchmarkFig10Apps(b *testing.B) {
	b.Run("memcached", func(b *testing.B) {
		for _, mode := range []porting.Mode{porting.Native, porting.SGX, porting.HotCallsNRZ} {
			b.Run(mode.String(), func(b *testing.B) {
				s := memcached.NewServer(mode)
				w := memcached.NewWorkload(s, 7)
				var clk sim.Clock
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w.InjectNext()
					s.ServeOne(&clk)
					if _, err := w.DrainResponse(); err != nil {
						b.Fatal(err)
					}
				}
				reportSimCycles(b, clk.Now())
			})
		}
	})
	b.Run("openvpn", func(b *testing.B) {
		s := openvpn.NewServer(porting.HotCallsNRZ)
		var ck [16]byte
		var mk [32]byte
		copy(ck[:], "tunnel-cipher-k!")
		copy(mk[:], "tunnel-hmac-key-tunnel-hmac-key-")
		seal := openvpn.NewCipher(ck, mk)
		payload := make([]byte, openvpn.IperfPayload)
		var clk sim.Clock
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.ServePacket(&clk, seal, payload, false)
		}
		reportSimCycles(b, clk.Now())
	})
	b.Run("lighttpd", func(b *testing.B) {
		s := lighttpd.NewServer(porting.HotCallsNRZ)
		var clk sim.Clock
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			client := s.InjectRequest("/")
			s.ServeOne(&clk)
			for {
				if _, ok := s.App.Kernel.TakeRX(client); !ok {
					break
				}
			}
		}
		reportSimCycles(b, clk.Now())
	})
}

// BenchmarkSpinLock measures the sgx_spin_lock equivalent under no
// contention (the HotCalls fast path).
func BenchmarkSpinLock(b *testing.B) {
	var l sdk.SpinLock
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

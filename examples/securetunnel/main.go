// Securetunnel: the paper's openVPN scenario (Section 6.3), plus the
// attestation flow that motivates it.  A remote client verifies the
// enclave's identity through a quote signed by the platform's provisioned
// attestation key, the tunnel then carries real AES-CTR + HMAC-SHA256
// protected packets, tampering is rejected, and the four interface
// configurations are compared as in Figures 10 and 11.
package main

import (
	"fmt"

	"hotcalls/internal/apps/openvpn"
	"hotcalls/internal/apps/porting"
	"hotcalls/internal/sgx"
	"hotcalls/internal/sgx/attest"
	"hotcalls/internal/sim"
)

func main() {
	// --- Remote attestation: why it is safe to give this enclave the
	// tunnel keys.
	platform := sgx.NewPlatform(9001)
	var clk sim.Clock
	enclave := platform.ECreate(&clk, 16<<20, 1, sgx.Attributes{ProdID: 7})
	vpnCode := make([]byte, sgx.PageSize)
	copy(vpnCode, "openvpn-enclave v2.3.12")
	if err := enclave.EAdd(&clk, 0, vpnCode); err != nil {
		panic(err)
	}
	if err := enclave.EInit(&clk); err != nil {
		panic(err)
	}

	service := attest.NewService()
	qe, err := service.Provision(platform, "vpn-host-01")
	if err != nil {
		panic(err)
	}
	var binding attest.ReportData
	copy(binding[:], "client-key-exchange-hash")
	report := attest.EReport(platform, enclave, sgx.Measurement{}, binding)
	quote, err := qe.Quote(report)
	if err != nil {
		panic(err)
	}
	if err := service.Verify(quote); err != nil {
		panic(err)
	}
	fmt.Printf("remote attestation OK: enclave %v on platform %q is genuine\n",
		quote.Report.Measurement, quote.PlatformID)

	// A forged quote (wrong identity) must fail.
	forged := *quote
	forged.Report.Measurement[0] ^= 1
	if err := service.Verify(&forged); err != nil {
		fmt.Printf("forged quote rejected: %v\n\n", err)
	}

	// --- Session establishment: the quote binds a fresh nonce, both
	// sides derive the tunnel keys, and the keys never exist outside the
	// enclave and the client.
	var master [32]byte
	copy(master[:], "provisioned-master-secret-32-byt")
	var nonce [16]byte
	copy(nonce[:], "fresh-session-01")
	sessionQuote, serverKeys, err := openvpn.EnclaveHandshake(platform, enclave, qe, master, nonce)
	if err != nil {
		panic(err)
	}
	clientKeys, err := openvpn.Handshake(service, sessionQuote, enclave.MRENCLAVE(), master, nonce)
	if err != nil {
		panic(err)
	}
	fmt.Println("attested handshake complete: session keys derived on both sides")

	// --- The tunnel data path is real crypto, under the derived keys.
	tx, rx := clientKeys.ClientToServer, serverKeys.ClientToServer
	payload := []byte("confidential corporate traffic!!")
	frame := make([]byte, openvpn.FrameOverhead+len(payload))
	n := tx.Seal(frame, payload)
	out := make([]byte, openvpn.MTU)
	pn, err := rx.Open(out, frame[:n])
	if err != nil {
		panic(err)
	}
	fmt.Printf("tunnel round trip: %q\n", out[:pn])
	frame[openvpn.FrameOverhead] ^= 1
	if _, err := rx.Open(out, frame[:n]); err != nil {
		fmt.Printf("tampered frame rejected: %v\n\n", err)
	}

	// --- The paper's comparison: iperf bandwidth and flood-ping RTT.
	fmt.Println("openVPN under the four interface configurations:")
	fmt.Printf("%-14s %10s %12s\n", "mode", "Mbit/s", "ping RTT")
	for _, mode := range porting.Modes {
		bw := openvpn.RunIperf(mode, 0.04)
		ping := openvpn.RunPing(mode, 0.02)
		fmt.Printf("%-14s %10.0f %10.2fms\n", mode, bw.BandwidthMbs, ping.AvgLatency*1e3)
	}
	fmt.Println("\npaper: 866 / 309 / 694 / 823 Mbit/s and 1.43 / 4.58 / 1.87 / 1.75 ms")
}

// Securekv: the paper's memcached scenario (Section 6.2).  A key-value
// cache is ported wholesale into an enclave so the database contents stay
// confidential, then driven with the memtier workload (binary protocol,
// 1:1 SET:GET, 2 KB values, 200 outstanding requests) under all four
// interface configurations.  The output is the memcached column of
// Figures 10 and 11.
package main

import (
	"fmt"

	"hotcalls/internal/apps/memcached"
	"hotcalls/internal/apps/porting"
	"hotcalls/internal/sim"
)

func main() {
	// First, show the data path is real: store and fetch through the
	// enclave via the SGX interface.
	s := memcached.NewServer(porting.SGX)
	w := memcached.NewWorkload(s, 1)
	var clk sim.Clock
	for i := 0; i < 3; i++ {
		w.InjectNext()
		s.ServeOne(&clk)
		resp, err := w.DrainResponse()
		if err != nil {
			panic(err)
		}
		fmt.Printf("request %d: status=%d, %d value bytes, clock=%d cycles\n",
			i+1, resp.Status, len(resp.Value), clk.Now())
	}
	fmt.Printf("store now holds %d items\n\n", s.Store.Len())

	// Then the paper's comparison.
	fmt.Println("memcached under the four interface configurations:")
	fmt.Printf("%-14s %12s %10s %12s\n", "mode", "req/s", "latency", "vs native")
	var native float64
	for _, mode := range porting.Modes {
		m := memcached.Run(mode, 0.05)
		if mode == porting.Native {
			native = m.Throughput
		}
		fmt.Printf("%-14s %12.0f %8.2fms %11.0f%%\n",
			mode, m.Throughput, m.AvgLatency*1e3, m.Throughput/native*100)
	}
	fmt.Println("\npaper: 316,500 / 66,500 / 162,000 / 185,000 req/s")
}

// Webserver: the paper's lighttpd scenario (Section 6.4).  A static web
// server runs wholesale inside an enclave; each of its twenty-two
// per-request API calls crosses the boundary, which is why the unoptimized
// port loses 77% of its throughput and HotCalls win it back.
package main

import (
	"fmt"
	"strings"

	"hotcalls/internal/apps/lighttpd"
	"hotcalls/internal/apps/porting"
	"hotcalls/internal/sim"
)

func main() {
	// Serve one real request through the enclave and show the response.
	s := lighttpd.NewServer(porting.SGX)
	client := s.InjectRequest("/")
	var clk sim.Clock
	s.ServeOne(&clk)
	head, _ := s.App.Kernel.TakeRX(client)
	body, _ := s.App.Kernel.TakeRX(client)
	fmt.Printf("response head:\n%s", indent(string(head)))
	fmt.Printf("body: %d bytes (%.40q...)\n", len(body), body[:40])
	fmt.Printf("request cost: %d cycles through the SDK interface\n\n", clk.Now())

	// Where do the cycles go?  The Table 2 call mix.
	fmt.Println("edge calls for that single request:")
	for name, count := range s.App.Counters() {
		if strings.HasPrefix(name, "ocall_") && count > 0 {
			fmt.Printf("  %-18s x%d\n", strings.TrimPrefix(name, "ocall_"), count)
		}
	}

	// The paper's comparison.
	fmt.Println("\nlighttpd under the four interface configurations:")
	fmt.Printf("%-14s %10s %12s\n", "mode", "req/s", "latency")
	for _, mode := range porting.Modes {
		m := lighttpd.Run(mode, 0.05)
		fmt.Printf("%-14s %10.0f %10.2fms\n", mode, m.Throughput, m.AvgLatency*1e3)
	}
	fmt.Println("\npaper: 53,400 / 12,100 / 40,400 / 44,800 req/s and 1.52 / 8.25 / 2.40 / 2.13 ms")
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\r\n"), "\r\n", "\n  ") + "\n"
}

// Quickstart: build an enclave, declare its edge interface in EDL, and
// compare the three ways to cross the boundary — a regular SDK ocall
// (8,000+ cycles), a HotCall (~620 cycles), and, for scale, a plain
// syscall (150 cycles).  It also runs the *real* concurrent HotCalls
// implementation (spin-lock + responder goroutine) end to end.
package main

import (
	"fmt"

	"hotcalls/internal/core"
	"hotcalls/internal/edl"
	"hotcalls/internal/osapi"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sgx"
	"hotcalls/internal/sim"
)

const quickstartEDL = `
enclave {
    trusted {
        public int ecall_sum([in, size=len] uint8_t* data, size_t len);
    };
    untrusted {
        long ocall_log([in, string] char* msg);
        long ocall_nop(void);
    };
};
`

func main() {
	// 1. A platform with fused keys and the paper's memory hierarchy.
	platform := sgx.NewPlatform(42)
	var clk sim.Clock

	// 2. Build and measure the enclave: ECREATE, EADD+EEXTEND per page,
	// EINIT.
	enclave := platform.ECreate(&clk, 64<<20, 2, sgx.Attributes{ProdID: 1, SVN: 1})
	code := make([]byte, sgx.PageSize)
	copy(code, "trusted application code v1")
	if err := enclave.EAdd(&clk, 0, code); err != nil {
		panic(err)
	}
	if err := enclave.EInit(&clk); err != nil {
		panic(err)
	}
	fmt.Printf("enclave built: MRENCLAVE=%v (load cost: %d cycles)\n\n", enclave.MRENCLAVE(), clk.Now())

	// 3. Bind the edge functions declared in the EDL.
	rt := sdk.New(platform, enclave, edl.MustParse(quickstartEDL))
	rt.MustBindECall("ecall_sum", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		var sum uint64
		for _, b := range args[0].Buf.Data {
			sum += uint64(b)
		}
		// Trusted code reaching out: an ocall.  The [in, string]
		// message must live inside the enclave — the marshalling
		// enforces the boundary.
		addr, err := enclave.Alloc(ctx.Clk, 16)
		if err != nil {
			panic(err)
		}
		msg := &sdk.Buffer{Addr: addr, Data: []byte("summed\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00")}
		if _, err := ctx.OCall("ocall_log", sdk.Buf(msg)); err != nil {
			panic(err)
		}
		return sum
	})
	rt.MustBindOCall("ocall_log", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 { return 0 })
	rt.MustBindOCall("ocall_nop", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 { return 0 })

	// 4. Call into the enclave through the SDK path.
	buf := rt.Arena.AllocBuffer(&clk, 1024)
	for i := range buf.Data {
		buf.Data[i] = byte(i)
	}
	var callClk sim.Clock
	sum, err := rt.ECall(&callClk, "ecall_sum", sdk.Buf(buf), sdk.Scalar(1024))
	if err != nil {
		panic(err)
	}
	fmt.Printf("ecall_sum(1 KB) = %d in %d cycles (includes one nested ocall)\n", sum, callClk.Now())

	// 5. Latency shootout: SDK ocall vs HotCall vs raw syscall.
	median := func(f func() uint64) float64 {
		s := sim.NewSample(2000)
		for i := 0; i < 2000; i++ {
			s.AddCycles(f())
		}
		return s.Median()
	}
	var ocallCycles uint64
	rt.MustBindECall("ecall_sum", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		start := ctx.Clk.Now()
		ctx.OCall("ocall_nop")
		ocallCycles = ctx.Clk.Since(start)
		return 0
	})
	sdkMedian := median(func() uint64 {
		var c sim.Clock
		rt.ECall(&c, "ecall_sum", sdk.Buf(buf), sdk.Scalar(8))
		return ocallCycles
	})

	ch := core.NewChannel(rt, platform.RNG)
	hotMedian := median(func() uint64 {
		var c sim.Clock
		if _, err := ch.HotOCall(&c, "ocall_nop"); err != nil {
			panic(err)
		}
		return c.Now()
	})

	fmt.Println("\ncrossing the boundary, median cycles:")
	fmt.Printf("  plain syscall     %8d\n", osapi.SyscallCost)
	fmt.Printf("  KVM hypercall     %8d\n", osapi.HypercallCost)
	fmt.Printf("  SDK ocall         %8.0f\n", sdkMedian)
	fmt.Printf("  HotCall           %8.0f   (%.1fx faster than the SDK)\n", hotMedian, sdkMedian/hotMedian)

	// 6. The real concurrent implementation: a responder goroutine
	// polling shared memory behind a spin lock.
	var hc core.HotCall
	responder := core.NewResponder(&hc, []func(interface{}) uint64{
		func(d interface{}) uint64 { return d.(uint64) * d.(uint64) },
	})
	go responder.Run()
	defer hc.Stop()
	r, err := hc.Call(0, uint64(12))
	if err != nil {
		panic(err)
	}
	polls, executes, _ := responder.Stats()
	fmt.Printf("\nreal HotCall responder: 12^2 = %d (polls=%d, executes=%d)\n", r, polls, executes)
}

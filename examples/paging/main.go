// Paging: the libquantum cliff of Section 3.4.  The EPC holds 93 MB; a
// working set that fits runs with only the MEE's encryption overhead,
// while one that exceeds it thrashes through EWB/ELDU paging and falls off
// a cliff — the paper measured libquantum (96 MB) at 5.2x.  This example
// sweeps the working-set size across the boundary and prints the curve,
// then demonstrates that paging is also *functionally* protected: swapped
// pages are sealed, and tampering or replaying them is detected.
package main

import (
	"fmt"

	"hotcalls/internal/epc"
	"hotcalls/internal/mem"
	"hotcalls/internal/sim"
)

func sweepCost(footprintMB int) (slowdown float64, faults uint64) {
	run := func(base uint64) (uint64, uint64) {
		rng := sim.NewRNG(7)
		s := mem.New(rng)
		footprint := uint64(footprintMB) << 20
		// Pre-touch (compulsory faults excluded), then two timed sweeps.
		var warm sim.Clock
		for p := uint64(0); p < footprint; p += 4096 {
			s.Load(&warm, base+p)
		}
		before := s.PageFaults()
		var clk sim.Clock
		for sweep := 0; sweep < 2; sweep++ {
			for off := uint64(0); off < footprint; off += 256 << 10 {
				s.StreamRead(&clk, base+off, 256<<10)
			}
		}
		return clk.Now(), s.PageFaults() - before
	}
	plain, _ := run(mem.PlainBase + (1 << 32))
	enc, f := run(mem.EnclaveBase)
	return float64(enc) / float64(plain), f
}

func main() {
	fmt.Println("sequential sweep, enclave vs plaintext (EPC = 93 MB):")
	fmt.Printf("%-16s %10s %12s\n", "working set", "slowdown", "page faults")
	for _, mb := range []int{32, 64, 88, 96, 128} {
		slow, faults := sweepCost(mb)
		marker := ""
		if mb >= 94 {
			marker = "  <- beyond the EPC"
		}
		fmt.Printf("%13d MB %9.2fx %12d%s\n", mb, slow, faults, marker)
	}
	fmt.Println("\npaper: libquantum's 96 MB working set ran 5.2x slower")

	// The functional side of paging: EWB seals, ELDU verifies.
	var key [16]byte
	copy(key[:], "paging-seal-key!")
	m := epc.NewManager(2*epc.PageSize, key)
	page := make([]byte, epc.PageSize)
	copy(page, "quantum register state |psi>")
	if _, err := m.WritePage(1, page); err != nil {
		panic(err)
	}
	m.Touch(2)
	m.Touch(3) // page 1 is evicted (EWB): sealed into untrusted memory
	if !m.TamperSwapped(1) {
		panic("nothing to tamper")
	}
	if _, _, err := m.ReadPage(1); err != nil {
		fmt.Printf("\ntampered swapped page rejected on ELDU: %v\n", err)
	}
}

package profile

import "hotcalls/internal/telemetry"

// CallRecord is one traced call's own attribution: the call-site name
// and its per-category cycle vector, with nested calls carved out into
// their own records (the same carve-out Analyze applies to aggregate
// breakdowns).  Where Breakdown answers "where do this site's cycles go
// on average", the record stream answers it per call — the recorded
// workload the what-if causal profiler replays under virtual speedups.
type CallRecord struct {
	Name   string
	Total  uint64 // cycles attributed to this call (nested calls excluded)
	Cycles [NumCategories]uint64
}

// CallRecords folds an event stream (oldest first, as returned by
// telemetry.Tracer.Events) into per-call attribution records, outermost
// call first within each tree.  Spans outside any call are dropped,
// matching Profile.OutsideCycles.
func CallRecords(events []telemetry.Event) []CallRecord {
	var out []*CallRecord
	for _, r := range BuildTrees(events) {
		walkRecords(r, nil, &out)
	}
	recs := make([]CallRecord, len(out))
	for i, r := range out {
		recs[i] = *r
	}
	return recs
}

func walkRecords(s *Span, cur *CallRecord, out *[]*CallRecord) {
	if callKind(s.Event.Kind) {
		cur = &CallRecord{Name: s.Event.Name}
		*out = append(*out, cur)
	}
	if cur != nil {
		self := s.Self()
		cur.Total += self
		attributeSelf(s, self, &cur.Cycles)
	}
	for _, c := range s.Children {
		walkRecords(c, cur, out)
	}
}

package profile

import (
	"hotcalls/internal/core"
	"hotcalls/internal/mem"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sgx"
)

// Analytic is the cost model's per-call component prediction for a warm
// empty call, in cycles.  It is built from the same calibrated constants
// the simulation charges, so the trace-attributed breakdown must agree
// with it to within sampling noise — that agreement is the profiler's
// headline correctness check (TestCrossValidation) and, transitively,
// the cost model's.
type Analytic struct {
	Microcode float64
	Marshal   float64
	Spin      float64
	Cache     float64
}

// Total returns the summed component prediction.
func (a Analytic) Total() float64 { return a.Microcode + a.Marshal + a.Spin + a.Cache }

// Component returns the prediction for one profiler category (zero for
// categories a warm empty call never touches).
func (a Analytic) Component(c Category) float64 {
	switch c {
	case CatMicrocode:
		return a.Microcode
	case CatMarshal:
		return a.Marshal
	case CatSpin:
		return a.Spin
	case CatCache:
		return a.Cache
	}
	return 0
}

// AnalyticWarmECall decomposes the paper's 8,640-cycle warm ecall
// (Table 1 row 1): EENTER+EEXIT microcode, the SDK software path, and
// the path's touched lines hitting in cache.
func AnalyticWarmECall() Analytic {
	return Analytic{
		Microcode: sgx.EEnterMicrocode + sgx.EExitMicrocode,
		Marshal:   sdk.ECallSoftwareFixed,
		Cache: float64(sdk.ECallTouchLines+sgx.EnterTouchLines+sgx.ExitTouchLines) *
			mem.DemandHitCost,
	}
}

// AnalyticWarmOCall decomposes the 8,314-cycle warm ocall (Table 1
// row 4): EEXIT+ERESUME microcode, the trusted/untrusted software path,
// and its touched lines.
func AnalyticWarmOCall() Analytic {
	return Analytic{
		Microcode: sgx.EExitMicrocode + sgx.EResumeMicrocode,
		Marshal:   sdk.OCallSoftwareFixed,
		Cache: float64(sdk.OCallTouchLines+sgx.ExitTouchLines+sgx.ResumeTouchLines) *
			mem.DemandHitCost,
	}
}

// AnalyticHotCall decomposes an empty HotCall: no enclave crossing, no
// marshalling work, just the shared-memory synchronization protocol —
// the latency model's closed-form mean.
func AnalyticHotCall(m *core.LatencyModel) Analytic {
	return Analytic{Spin: m.Mean()}
}

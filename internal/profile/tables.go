package profile

import (
	"fmt"
	"io"
)

// WriteCallTable renders the Table 1 shape from traces: one row per call
// site with call count, median and mean cycles per call.
func (p *Profile) WriteCallTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "| call site | calls | median cyc | mean cyc |\n|---|---:|---:|---:|\n"); err != nil {
		return err
	}
	for _, name := range p.Names() {
		b := p.Calls[name]
		if _, err := fmt.Fprintf(w, "| %s | %d | %d | %.0f |\n",
			name, b.Calls, b.Median(), b.Mean()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCategoryTable renders the Table 2 shape from traces: one row per
// call site with the share of its cycles in every attribution category.
func (p *Profile) WriteCategoryTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "| call site | cyc/call |"); err != nil {
		return err
	}
	for c := Category(0); c < NumCategories; c++ {
		if _, err := fmt.Fprintf(w, " %s |", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\n|---|---:|"); err != nil {
		return err
	}
	for c := Category(0); c < NumCategories; c++ {
		if _, err := fmt.Fprintf(w, "---:|"); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, name := range p.Names() {
		b := p.Calls[name]
		if _, err := fmt.Fprintf(w, "| %s | %.0f |", name, b.Mean()); err != nil {
			return err
		}
		for c := Category(0); c < NumCategories; c++ {
			if _, err := fmt.Fprintf(w, " %.1f%% |", b.Share(c)*100); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

package profile

import (
	"compress/gzip"
	"io"
)

// This file is a minimal hand-rolled writer for pprof's profile.proto
// (github.com/google/pprof/proto/profile.proto).  The repo deliberately
// has no protobuf dependency; the encoding below covers exactly the
// subset `go tool pprof` and speedscope need: string table, one sample
// type, samples with leaf-first location chains, and one function per
// distinct frame name.

// protoBuf is a tiny protobuf wire-format encoder.
type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// uintField encodes a varint-typed field (wire type 0), eliding zero
// values as proto3 does.
func (p *protoBuf) uintField(field int, v uint64) {
	if v == 0 {
		return
	}
	p.varint(uint64(field)<<3 | 0)
	p.varint(v)
}

// bytesField encodes a length-delimited field (wire type 2).
func (p *protoBuf) bytesField(field int, data []byte) {
	p.varint(uint64(field)<<3 | 2)
	p.varint(uint64(len(data)))
	p.b = append(p.b, data...)
}

// valueType encodes a profile.ValueType{type, unit} message.
func valueType(typeIdx, unitIdx uint64) []byte {
	var m protoBuf
	m.uintField(1, typeIdx)
	m.uintField(2, unitIdx)
	return m.b
}

// WritePprof renders the profile as gzipped pprof protobuf with one
// "cycles/cycles" sample type.  Each aggregated stack becomes one sample
// whose location chain is leaf-first, as the format requires.  Output is
// deterministic: stacks, locations, and functions are emitted in the
// sorted-stack order of Stacks().
func (p *Profile) WritePprof(w io.Writer) error {
	stacks := p.Stacks()

	// String table: index 0 is "", then fixed strings, then frame names
	// in first-appearance (deterministic) order.
	strIdx := map[string]uint64{"": 0}
	strTab := []string{""}
	intern := func(s string) uint64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := uint64(len(strTab))
		strIdx[s] = i
		strTab = append(strTab, s)
		return i
	}
	cyclesIdx := intern("cycles")
	fileIdx := intern("hotcalls-sim")

	// One function + location per distinct frame name; ids are 1-based.
	funcID := map[string]uint64{}
	var funcOrder []string
	idOf := func(frame string) uint64 {
		if id, ok := funcID[frame]; ok {
			return id
		}
		id := uint64(len(funcOrder) + 1)
		funcID[frame] = id
		funcOrder = append(funcOrder, frame)
		return id
	}

	var out protoBuf
	out.bytesField(1, valueType(cyclesIdx, cyclesIdx)) // sample_type
	for _, s := range stacks {
		var sample protoBuf
		// location_id: leaf first.
		for i := len(s.Frames) - 1; i >= 0; i-- {
			sample.uintField(1, idOf(s.Frames[i]))
		}
		sample.uintField(2, s.Cycles) // value
		out.bytesField(2, sample.b)
	}
	for i, frame := range funcOrder {
		id := uint64(i + 1)
		nameIdx := intern(frame)

		var line protoBuf
		line.uintField(1, id) // function_id

		var loc protoBuf
		loc.uintField(1, id) // id
		loc.bytesField(4, line.b)
		out.bytesField(4, loc.b) // location

		var fn protoBuf
		fn.uintField(1, id)      // id
		fn.uintField(2, nameIdx) // name
		fn.uintField(3, nameIdx) // system_name
		fn.uintField(4, fileIdx) // filename
		out.bytesField(5, fn.b)  // function
	}
	for _, s := range strTab {
		out.bytesField(6, []byte(s)) // string_table
	}
	out.bytesField(11, valueType(cyclesIdx, cyclesIdx)) // period_type
	out.uintField(12, 1)                                // period

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out.b); err != nil {
		return err
	}
	return gz.Close()
}

package profile

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hotcalls/internal/flight"
	"hotcalls/internal/telemetry"
)

// mergedTrace decodes the parts of the trace_event envelope the tests
// assert on.
type mergedTrace struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		PID   int            `json:"pid"`
		TID   int            `json:"tid"`
		Dur   float64        `json:"dur"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestWriteMergedChromeTrace checks that one document carries both the
// cycle-domain telemetry rows (PID 0) and the ns-domain flight rows
// (PID 1), each under its own labelled process.
func TestWriteMergedChromeTrace(t *testing.T) {
	var ns uint64 = 1
	f := flight.New(flight.Options{Now: func() uint64 { return ns }, SampleEvery: 1})
	f.Bind(1)
	cs := f.Callsite("merge.call")
	rec := f.Begin(cs, 0, 3)
	ns = 1_000
	rec.Claim(0, ns)
	rec.ExecStart(ns)
	ns = 4_000
	rec.ExecEnd(ns)
	ns = 4_500
	rec.Return(ns)

	events := []telemetry.Event{
		{Kind: telemetry.KindHotECall, Name: "hot_ecall", TS: 100, Dur: 620},
	}

	var buf bytes.Buffer
	if err := WriteMergedChromeTrace(&buf, events, f, 16); err != nil {
		t.Fatal(err)
	}
	var tr mergedTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}

	var processes, telemetrySpans, flightSpans int
	var sawTraceID bool
	for _, e := range tr.TraceEvents {
		switch {
		case e.Name == "process_name":
			processes++
		case e.PID == 0 && e.Phase == "X" && e.Name == "hot_ecall":
			telemetrySpans++
		case e.PID == 1 && e.Phase == "X":
			flightSpans++
			if id, ok := e.Args["trace_id"].(string); ok && strings.HasPrefix(id, "0x") {
				sawTraceID = true
			}
		}
	}
	if processes != 2 {
		t.Fatalf("want 2 process_name records, got %d", processes)
	}
	if telemetrySpans != 1 {
		t.Fatalf("want 1 telemetry span on PID 0, got %d", telemetrySpans)
	}
	// One requester span and one responder span for the sampled call.
	if flightSpans != 2 {
		t.Fatalf("want 2 flight spans on PID 1, got %d", flightSpans)
	}
	if !sawTraceID {
		t.Fatal("flight spans carry no trace_id args")
	}
}

// TestWriteMergedChromeTraceNilFlight checks the degenerate export:
// no recorder, telemetry rows only, still a valid document.
func TestWriteMergedChromeTraceNilFlight(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMergedChromeTrace(&buf, nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	var tr mergedTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	for _, e := range tr.TraceEvents {
		if e.PID == 1 && e.Phase == "X" {
			t.Fatalf("flight span present without a recorder: %+v", e)
		}
	}
}

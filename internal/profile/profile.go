// Package profile is the cycle-attribution profiler: it folds the
// telemetry tracer's boundary-event stream into weighted call trees and
// attributes every simulated cycle of every call to a cost category —
// microcode, marshalling, spin-wait, cache-line movement, MEE integrity
// tree work, EPC paging, or handler execution.
//
// The paper's core evidence is exactly this attribution (Table 1's
// crossing medians, the Section 3.2/3.3 breakdowns, Table 2's "% of core
// time facilitating calls"); the profiler reproduces those shapes from
// *traces* of a live workload instead of analytic formulas, and the two
// are cross-validated against each other in TestCrossValidation.
//
// # Event model
//
// Instrumented code emits each event when its span completes, stamped
// with the span's start (TS) and length (Dur) on the simulated clock.
// Two consequences shape the tree builder:
//
//   - Children always precede their parent in the stream (the parent
//     completes last), so a parent adopts already-emitted spans.
//   - Within one clock domain, event *end* times are non-decreasing.
//     A decrease means the workload reset its clock (the harness starts
//     a fresh sim.Clock per measured run); the builder then closes all
//     open trees and starts over, so per-run traces degrade gracefully
//     into forests instead of mis-nesting.
//
// Deep tracing (telemetry.Registry.EnableDeepTracing) adds the per-phase
// and per-memory-operation events the attribution needs; with only the
// default boundary tracing the profiler still builds call trees but
// attributes whole calls to their dominant category.
//
// Exports: folded flame-graph stacks (WriteFolded, flamegraph.pl and
// speedscope compatible), pprof protobuf (WritePprof), and markdown
// breakdown tables (WriteCallTable, WriteCategoryTable).
package profile

import (
	"sort"

	"hotcalls/internal/telemetry"
)

// Category is a cost bucket for attributed cycles.
type Category uint8

// Attribution categories, mirroring the paper's cost decomposition.
const (
	CatMicrocode Category = iota // EENTER/EEXIT/ERESUME/AEX fixed microcode
	CatMarshal                   // SDK software path: prep, dispatch, staging, copy-out
	CatSpin                      // HotCall shared-memory synchronization
	CatCache                     // cache-line movement (hits, DRAM, write-backs)
	CatMEE                       // memory-encryption-engine integrity tree work
	CatEPC                       // EPC paging: fault traps, ELDU, EWB
	CatHandler                   // the called function's own body
	CatOther                     // anything unclassified
	NumCategories
)

// String returns the category's table label.
func (c Category) String() string {
	switch c {
	case CatMicrocode:
		return "microcode"
	case CatMarshal:
		return "marshal"
	case CatSpin:
		return "spin"
	case CatCache:
		return "cache"
	case CatMEE:
		return "mee"
	case CatEPC:
		return "epc"
	case CatHandler:
		return "handler"
	}
	return "other"
}

// Span is one node of a reconstructed call tree.
type Span struct {
	Event    telemetry.Event
	Children []*Span
}

// End returns the span's exclusive end timestamp.
func (s *Span) End() uint64 { return s.Event.TS + s.Event.Dur }

// Self returns the span's self time: its duration minus its children's,
// clamped at zero against accounting drift.
func (s *Span) Self() uint64 {
	d := s.Event.Dur
	for _, c := range s.Children {
		cd := c.Event.Dur
		if cd > d {
			cd = d
		}
		d -= cd
	}
	return d
}

// BuildTrees folds an event stream (oldest first, as returned by
// telemetry.Tracer.Events) into a forest of spans.  Each event adopts
// the already-pooled spans its [TS, TS+Dur] interval contains; because
// events are emitted at completion on a monotone clock, those are
// exactly the pooled spans with TS at or after its own, so adoption is
// a suffix pop.  An end-time regression (fresh sim.Clock per measured
// run) or an exact repeat of the previous event (coarse traces of
// identical runs on reset clocks) closes all open trees first.
func BuildTrees(events []telemetry.Event) []*Span {
	var roots, pool []*Span
	var watermark uint64
	flush := func() {
		roots = append(roots, pool...)
		pool = pool[:0]
	}
	for _, e := range events {
		end := e.TS + e.Dur
		if end < watermark {
			flush()
		} else if n := len(pool); n > 0 {
			if last := pool[n-1].Event; last.Kind == e.Kind && last.Name == e.Name &&
				last.TS == e.TS && last.Dur == e.Dur {
				flush()
			}
		}
		watermark = end
		s := &Span{Event: e}
		cut := len(pool)
		for cut > 0 && pool[cut-1].Event.TS >= e.TS {
			cut--
		}
		if cut < len(pool) {
			s.Children = append(s.Children, pool[cut:]...)
			pool = pool[:cut]
		}
		pool = append(pool, s)
	}
	flush()
	return roots
}

// callKind reports whether a span kind opens a logical call context: its
// subtree is attributed to its own per-call breakdown, not the caller's.
func callKind(k telemetry.Kind) bool {
	switch k {
	case telemetry.KindEcall, telemetry.KindOcall, telemetry.KindHotECall, telemetry.KindHotOCall:
		return true
	}
	return false
}

// Breakdown accumulates attributed cycles for one call site (one event
// name, e.g. "ecall:ecall_empty" or "hotecall:ecall_empty").
type Breakdown struct {
	Calls  uint64
	Total  uint64 // cycles attributed to this site across all calls
	Cycles [NumCategories]uint64

	durs []uint64 // per-call durations, for Median
}

// Mean returns the average attributed cycles per call.
func (b *Breakdown) Mean() float64 {
	if b.Calls == 0 {
		return 0
	}
	return float64(b.Total) / float64(b.Calls)
}

// PerCall returns the average cycles per call in one category.
func (b *Breakdown) PerCall(c Category) float64 {
	if b.Calls == 0 {
		return 0
	}
	return float64(b.Cycles[c]) / float64(b.Calls)
}

// Share returns the category's fraction of the site's attributed cycles.
func (b *Breakdown) Share(c Category) float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Cycles[c]) / float64(b.Total)
}

// Median returns the median call duration.  Note this is the span
// duration (including nested calls), matching what Table 1 reports.
func (b *Breakdown) Median() uint64 {
	if len(b.durs) == 0 {
		return 0
	}
	d := append([]uint64(nil), b.durs...)
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	return d[len(d)/2]
}

// Profile is an analyzed trace: the reconstructed forest plus per-call-
// site attribution.
type Profile struct {
	Roots []*Span
	Calls map[string]*Breakdown

	// OutsideCycles counts self time of spans not enclosed by any call
	// (enclave build, harness warm-up on a traced registry, orphans from
	// clock-domain flushes).
	OutsideCycles uint64
}

// Analyze builds trees from an event stream and attributes every span's
// self time to its enclosing call's breakdown.
func Analyze(events []telemetry.Event) *Profile {
	p := &Profile{Roots: BuildTrees(events), Calls: make(map[string]*Breakdown)}
	for _, r := range p.Roots {
		p.walk(r, nil)
	}
	return p
}

// Names returns the call-site names in sorted order.
func (p *Profile) Names() []string {
	names := make([]string, 0, len(p.Calls))
	for name := range p.Calls {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (p *Profile) walk(s *Span, b *Breakdown) {
	if callKind(s.Event.Kind) {
		nb := p.Calls[s.Event.Name]
		if nb == nil {
			nb = &Breakdown{}
			p.Calls[s.Event.Name] = nb
		}
		nb.Calls++
		nb.durs = append(nb.durs, s.Event.Dur)
		b = nb
	}
	self := s.Self()
	if b == nil {
		p.OutsideCycles += self
	} else {
		b.Total += self
		attributeSelf(s, self, &b.Cycles)
	}
	for _, c := range s.Children {
		p.walk(c, b)
	}
}

// attributeSelf charges a span's self time into the per-category cycle
// vector — the single attribution table shared by the aggregate profile
// and the per-call record export.
func attributeSelf(s *Span, self uint64, cyc *[NumCategories]uint64) {
	switch s.Event.Kind {
	case telemetry.KindEEnter, telemetry.KindEExit, telemetry.KindEResume, telemetry.KindAEX:
		cyc[CatMicrocode] += self
	case telemetry.KindEcall, telemetry.KindOcall, telemetry.KindMarshal:
		// A call span's own self time is the SDK software path:
		// prep, dispatch, glue, epilogue — all marshalling-side work.
		cyc[CatMarshal] += self
	case telemetry.KindHotECall, telemetry.KindHotOCall, telemetry.KindSpin:
		// Residual HotCall-span self time is protocol cost.
		cyc[CatSpin] += self
	case telemetry.KindHandler:
		cyc[CatHandler] += self
	case telemetry.KindMemAccess:
		// Arg carries the MEE-extra cycles of the operation; the
		// rest is raw cache-line movement.
		mee := s.Event.Arg
		if mee > self {
			mee = self
		}
		cyc[CatMEE] += mee
		cyc[CatCache] += self - mee
	case telemetry.KindEPCFault, telemetry.KindEWB:
		cyc[CatEPC] += self
	case telemetry.KindMEEMiss:
		cyc[CatMEE] += self
	default:
		cyc[CatOther] += self
	}
}

package profile_test

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hotcalls/internal/profile"
	"hotcalls/internal/telemetry"
)

// exportProfile builds a small fixed profile with nesting, repeats, and
// every event class the exporters must handle.
func exportProfile() *profile.Profile {
	events := []telemetry.Event{
		{Kind: telemetry.KindMemAccess, Name: "load", TS: 1820, Dur: 12},
		{Kind: telemetry.KindMemAccess, Name: "load", TS: 1856, Dur: 12},
		{Kind: telemetry.KindEEnter, Name: "eenter", TS: 1844, Dur: 3034, Arg: 1},
		{Kind: telemetry.KindEcall, Name: "ecall:ecall_empty", TS: 0, Dur: 8640},
		// Second run, fresh clock.
		{Kind: telemetry.KindMemAccess, Name: "load", TS: 1820, Dur: 12},
		{Kind: telemetry.KindMemAccess, Name: "load", TS: 1856, Dur: 12},
		{Kind: telemetry.KindEEnter, Name: "eenter", TS: 1844, Dur: 3034, Arg: 1},
		{Kind: telemetry.KindEcall, Name: "ecall:ecall_empty", TS: 0, Dur: 8640},
		// A HotCall on its own clock.
		{Kind: telemetry.KindSpin, Name: "hotcall-sync", TS: 0, Dur: 571},
		{Kind: telemetry.KindHotECall, Name: "hotecall:ecall_empty", TS: 0, Dur: 571},
	}
	return profile.Analyze(events)
}

// TestFoldedGolden is the export-determinism satellite for folded
// stacks: identical traces produce byte-identical, checked-in output
// (set UPDATE_GOLDEN=1 to regenerate).
func TestFoldedGolden(t *testing.T) {
	p := exportProfile()
	var a, b strings.Builder
	if err := p.WriteFolded(&a); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("folded export is not deterministic across calls")
	}
	golden := filepath.Join("testdata", "folded_golden.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(a.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with UPDATE_GOLDEN=1): %v", err)
	}
	if a.String() != string(want) {
		t.Fatalf("folded export drifted from golden:\n got:\n%s\nwant:\n%s", a.String(), want)
	}
}

// TestFoldedFormat checks the flamegraph.pl contract on the content
// level: "frame;frame value" lines, aggregated repeats, self-time
// weights that sum to the trace's attributed total.
func TestFoldedFormat(t *testing.T) {
	p := exportProfile()
	var sb strings.Builder
	if err := p.WriteFolded(&sb); err != nil {
		t.Fatal(err)
	}
	var total uint64
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	seen := map[string]bool{}
	for _, line := range lines {
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed folded line %q", line)
		}
		stack := line[:i]
		if seen[stack] {
			t.Fatalf("duplicate stack %q (must be aggregated)", stack)
		}
		seen[stack] = true
		var v uint64
		for _, ch := range line[i+1:] {
			if ch < '0' || ch > '9' {
				t.Fatalf("non-numeric weight in %q", line)
			}
			v = v*10 + uint64(ch-'0')
		}
		total += v
	}
	// Two 8640-cycle ecalls plus one 571-cycle hotcall, fully attributed.
	if want := uint64(2*8640 + 571); total != want {
		t.Fatalf("folded weights sum to %d, want %d", total, want)
	}
	if !seen["ecall:ecall_empty;eenter;load"] {
		t.Fatalf("missing nested stack; got %v", lines)
	}
}

// TestPprofStructure decodes the gzipped protobuf with a minimal wire
// parser and verifies the referential integrity go tool pprof relies on:
// every sample location resolves to a location, every location to a
// function, every function name to a string-table entry.
func TestPprofStructure(t *testing.T) {
	p := exportProfile()
	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}

	var strTab []string
	var sampleLocIDs [][]uint64
	locID := map[uint64]uint64{}  // location id -> function id
	funcName := map[uint64]uint64{} // function id -> name string index
	var sampleTypes int

	parseTop(t, raw, func(field uint64, wire uint64, varint uint64, msg []byte) {
		switch field {
		case 1: // sample_type
			sampleTypes++
		case 2: // sample
			var locs []uint64
			parseTop(t, msg, func(f, w, v uint64, m []byte) {
				if f == 1 && w == 0 {
					locs = append(locs, v)
				}
			})
			sampleLocIDs = append(sampleLocIDs, locs)
		case 4: // location
			var id, fid uint64
			parseTop(t, msg, func(f, w, v uint64, m []byte) {
				switch f {
				case 1:
					id = v
				case 4:
					parseTop(t, m, func(lf, lw, lv uint64, lm []byte) {
						if lf == 1 {
							fid = lv
						}
					})
				}
			})
			locID[id] = fid
		case 5: // function
			var id, name uint64
			parseTop(t, msg, func(f, w, v uint64, m []byte) {
				switch f {
				case 1:
					id = v
				case 2:
					name = v
				}
			})
			funcName[id] = name
		case 6: // string_table
			strTab = append(strTab, string(msg))
		}
	})

	if sampleTypes != 1 {
		t.Fatalf("sample_type count = %d, want 1", sampleTypes)
	}
	if len(strTab) == 0 || strTab[0] != "" {
		t.Fatal("string table must start with the empty string")
	}
	joined := strings.Join(strTab, "\n")
	for _, want := range []string{"cycles", "ecall:ecall_empty", "eenter", "hotcall-sync"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("string table missing %q: %v", want, strTab)
		}
	}
	if len(sampleLocIDs) == 0 {
		t.Fatal("no samples")
	}
	for _, locs := range sampleLocIDs {
		if len(locs) == 0 {
			t.Fatal("sample with no locations")
		}
		for _, l := range locs {
			fid, ok := locID[l]
			if !ok {
				t.Fatalf("sample references undefined location %d", l)
			}
			nameIdx, ok := funcName[fid]
			if !ok {
				t.Fatalf("location %d references undefined function %d", l, fid)
			}
			if nameIdx == 0 || nameIdx >= uint64(len(strTab)) {
				t.Fatalf("function %d has invalid name index %d", fid, nameIdx)
			}
		}
	}

	// Determinism: a second export must be byte-identical.
	var buf2 bytes.Buffer
	if err := exportProfile().WritePprof(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	if err := exportProfile().WritePprof(&buf1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("pprof export is not deterministic")
	}
}

// parseTop walks one protobuf message's top-level fields, invoking fn
// with (field, wiretype, varint value, length-delimited payload).
func parseTop(t *testing.T, b []byte, fn func(field, wire, varint uint64, msg []byte)) {
	t.Helper()
	for len(b) > 0 {
		tag, n := readVarint(b)
		if n == 0 {
			t.Fatal("truncated tag")
		}
		b = b[n:]
		field, wire := tag>>3, tag&7
		switch wire {
		case 0:
			v, n := readVarint(b)
			if n == 0 {
				t.Fatal("truncated varint")
			}
			b = b[n:]
			fn(field, wire, v, nil)
		case 2:
			l, n := readVarint(b)
			if n == 0 || uint64(len(b)-n) < l {
				t.Fatal("truncated length-delimited field")
			}
			fn(field, wire, 0, b[n:n+int(l)])
			b = b[n+int(l):]
		default:
			t.Fatalf("unexpected wire type %d", wire)
		}
	}
}

func readVarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i]&0x80 == 0 {
			return v, i + 1
		}
	}
	return 0, 0
}

// TestMarkdownTables smoke-tests the Table 1 / Table 2 renderers.
func TestMarkdownTables(t *testing.T) {
	p := exportProfile()
	var call, cat strings.Builder
	if err := p.WriteCallTable(&call); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteCategoryTable(&cat); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(call.String(), "ecall:ecall_empty | 2 | 8640 | 8640") {
		t.Fatalf("call table:\n%s", call.String())
	}
	if !strings.Contains(cat.String(), "hotecall:ecall_empty") || !strings.Contains(cat.String(), "100.0%") {
		t.Fatalf("category table:\n%s", cat.String())
	}
}

package profile

import (
	"io"

	"hotcalls/internal/flight"
	"hotcalls/internal/telemetry"
)

// chromeProcess is a process_name metadata record labelling one PID of
// the merged trace.
type chromeProcess struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	PID   int               `json:"pid"`
	Args  map[string]string `json:"args"`
}

// WriteMergedChromeTrace writes one Chrome trace_event document
// combining the profiler's input — the telemetry tracer's
// cycle-attribution events — with the flight recorder's causal call
// window, so one chrome://tracing / ui.perfetto.dev load shows where
// the simulated cycles went *and* what each sampled call's real
// timeline looked like.
//
// The two sources run on different time bases and are kept on separate
// PIDs rather than force-aligned: PID 0 rows carry tracer events with
// simulated cycles rescaled to microseconds at the testbed frequency,
// PID 1 rows carry flight records with wall-clock nanoseconds rescaled
// to microseconds.  Spans on the two PIDs therefore correlate by trace
// ID and shape, not by absolute position on the shared axis.
//
// maxFlight bounds the flight window (Recorder.Records semantics;
// <= 0 selects its default).  Either source may be nil/empty; the
// other still exports.
func WriteMergedChromeTrace(w io.Writer, events []telemetry.Event, f *flight.Recorder, maxFlight int) error {
	merged := []any{
		chromeProcess{
			Name: "process_name", Phase: "M", PID: 0,
			Args: map[string]string{"name": "telemetry (simulated cycles → µs)"},
		},
		chromeProcess{
			Name: "process_name", Phase: "M", PID: 1,
			Args: map[string]string{"name": "flight recorder (wall-clock ns → µs)"},
		},
	}
	merged = append(merged, telemetry.ChromeRowMetadata()...)
	merged = append(merged, telemetry.ChromeTraceEvents(events)...)
	if f != nil {
		f.Digest()
		merged = append(merged, f.ChromeEvents(maxFlight)...)
	}
	return telemetry.WriteChromeJSON(w, merged)
}

package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Stack is one aggregated flame-graph stack: a root-first frame path and
// the self cycles spent exactly there (descendant cycles are carried by
// deeper stacks, as flame-graph tools expect).
type Stack struct {
	Frames []string
	Cycles uint64
}

// Stacks aggregates the profile's forest into deterministic flame-graph
// stacks: identical frame paths are merged and the result is sorted by
// path, so repeated exports of the same trace are byte-identical.
func (p *Profile) Stacks() []Stack {
	agg := make(map[string]uint64)
	var frames []string
	var visit func(s *Span)
	visit = func(s *Span) {
		frames = append(frames, s.Event.Name)
		if self := s.Self(); self > 0 {
			agg[strings.Join(frames, ";")] += self
		}
		for _, c := range s.Children {
			visit(c)
		}
		frames = frames[:len(frames)-1]
	}
	for _, r := range p.Roots {
		visit(r)
	}
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	stacks := make([]Stack, len(keys))
	for i, k := range keys {
		stacks[i] = Stack{Frames: strings.Split(k, ";"), Cycles: agg[k]}
	}
	return stacks
}

// WriteFolded renders the profile in Brendan Gregg's folded-stack
// format — one "frame;frame;frame cycles" line per unique stack — which
// flamegraph.pl and speedscope consume directly.
func (p *Profile) WriteFolded(w io.Writer) error {
	for _, s := range p.Stacks() {
		if _, err := fmt.Fprintf(w, "%s %d\n", strings.Join(s.Frames, ";"), s.Cycles); err != nil {
			return err
		}
	}
	return nil
}

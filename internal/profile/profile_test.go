package profile

import (
	"testing"

	"hotcalls/internal/telemetry"
)

// ev builds one event; end-emission order in tests mirrors how the
// instrumentation emits (children before parents, ends non-decreasing).
func ev(k telemetry.Kind, name string, ts, dur, arg uint64) telemetry.Event {
	return telemetry.Event{Kind: k, Name: name, TS: ts, Dur: dur, Arg: arg}
}

func TestBuildTreesNesting(t *testing.T) {
	// A warm-ecall-shaped stream: prep touches, EENTER (with its own
	// touches), then the enclosing ecall span.
	events := []telemetry.Event{
		ev(telemetry.KindMemAccess, "load", 1820, 12, 0),
		ev(telemetry.KindMemAccess, "store", 1832, 12, 0),
		ev(telemetry.KindMemAccess, "load", 1856, 12, 0), // eenter touch
		ev(telemetry.KindEEnter, "eenter", 1844, 3034, 1),
		ev(telemetry.KindEcall, "ecall:ecall_empty", 0, 8640, 0),
	}
	roots := BuildTrees(events)
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	root := roots[0]
	if root.Event.Kind != telemetry.KindEcall || len(root.Children) != 3 {
		t.Fatalf("root %v with %d children, want ecall with 3", root.Event, len(root.Children))
	}
	eenter := root.Children[2]
	if eenter.Event.Kind != telemetry.KindEEnter || len(eenter.Children) != 1 {
		t.Fatalf("eenter child %v with %d children, want 1", eenter.Event, len(eenter.Children))
	}
	if self := eenter.Self(); self != 3034-12 {
		t.Fatalf("eenter self = %d, want %d", self, 3034-12)
	}
	if self := root.Self(); self != 8640-12-12-3034 {
		t.Fatalf("root self = %d", self)
	}
}

func TestBuildTreesClockRegression(t *testing.T) {
	// Two measured runs on fresh clocks: the second run's first event
	// ends before the first run's watermark, forcing a flush.
	events := []telemetry.Event{
		ev(telemetry.KindMemAccess, "load", 100, 12, 0),
		ev(telemetry.KindEcall, "ecall:e", 0, 500, 0),
		ev(telemetry.KindMemAccess, "load", 100, 12, 0),
		ev(telemetry.KindEcall, "ecall:e", 0, 500, 0),
	}
	roots := BuildTrees(events)
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2 (one per run)", len(roots))
	}
	for i, r := range roots {
		if r.Event.Kind != telemetry.KindEcall || len(r.Children) != 1 {
			t.Fatalf("root %d = %v with %d children", i, r.Event, len(r.Children))
		}
	}
}

func TestBuildTreesIdenticalRepeats(t *testing.T) {
	// Coarse traces of identical runs on reset clocks produce exactly
	// repeated events; they must become siblings, not nest.
	var events []telemetry.Event
	for i := 0; i < 5; i++ {
		events = append(events, ev(telemetry.KindEcall, "ecall:e", 0, 8640, 0))
	}
	roots := BuildTrees(events)
	if len(roots) != 5 {
		t.Fatalf("got %d roots, want 5 siblings", len(roots))
	}
	for _, r := range roots {
		if len(r.Children) != 0 {
			t.Fatal("identical repeats must not adopt each other")
		}
	}
}

func TestAnalyzeNestedCallContexts(t *testing.T) {
	// An ocall nested in a driver ecall: the ocall subtree's cycles
	// belong to the ocall site, not the driver's.
	events := []telemetry.Event{
		ev(telemetry.KindEExit, "eexit", 3000, 2658, 1),
		ev(telemetry.KindOcall, "ocall:o", 2500, 8314, 0),
		ev(telemetry.KindHandler, "handler:ecall_driver", 2500, 8314, 0),
		ev(telemetry.KindEcall, "ecall:driver", 0, 12000, 0),
	}
	p := Analyze(events)
	drv := p.Calls["ecall:driver"]
	oc := p.Calls["ocall:o"]
	if drv == nil || oc == nil {
		t.Fatalf("missing breakdowns: %v", p.Names())
	}
	if drv.Calls != 1 || oc.Calls != 1 {
		t.Fatalf("calls drv=%d oc=%d", drv.Calls, oc.Calls)
	}
	if got := drv.Total; got != 12000-8314 {
		t.Fatalf("driver attributed %d cycles, want %d (ocall excluded)", got, 12000-8314)
	}
	if got := oc.Total; got != 8314 {
		t.Fatalf("ocall attributed %d cycles, want 8314", got)
	}
	if oc.Cycles[CatMicrocode] != 2658 || oc.Cycles[CatMarshal] != 8314-2658 {
		t.Fatalf("ocall categories: %v", oc.Cycles)
	}
}

func TestAnalyzeMemAccessSplit(t *testing.T) {
	// A mem access with MEE-extra in Arg splits between cache and MEE;
	// an EPC fault child goes to paging.
	events := []telemetry.Event{
		ev(telemetry.KindEWB, "ewb", 101500, 3700, 0),
		ev(telemetry.KindEPCFault, "epc_fault", 100000, 9000, 1),
		ev(telemetry.KindMemAccess, "load", 100000, 9400, 92),
		ev(telemetry.KindEcall, "ecall:cold", 99000, 11000, 0),
	}
	p := Analyze(events)
	b := p.Calls["ecall:cold"]
	if b == nil {
		t.Fatal("missing breakdown")
	}
	if b.Cycles[CatEPC] != 9000 {
		t.Fatalf("epc = %d, want 9000 (fault self %d + ewb self %d)", b.Cycles[CatEPC], 9000-3700, 3700)
	}
	if b.Cycles[CatMEE] != 92 {
		t.Fatalf("mee = %d, want 92", b.Cycles[CatMEE])
	}
	if b.Cycles[CatCache] != 9400-9000-92 {
		t.Fatalf("cache = %d, want %d", b.Cycles[CatCache], 9400-9000-92)
	}
	if b.Cycles[CatMarshal] != 11000-9400 {
		t.Fatalf("marshal (ecall self) = %d", b.Cycles[CatMarshal])
	}
}

func TestBreakdownStats(t *testing.T) {
	b := &Breakdown{}
	for _, d := range []uint64{10, 30, 20} {
		b.Calls++
		b.durs = append(b.durs, d)
		b.Total += d
	}
	if b.Median() != 20 {
		t.Fatalf("median = %d", b.Median())
	}
	if b.Mean() != 20 {
		t.Fatalf("mean = %f", b.Mean())
	}
}

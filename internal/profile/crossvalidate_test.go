// The headline correctness check of the profiler: the same workloads run
// through the trace-attributed profiler and the analytic cost model must
// agree per component.  The profiler validates the cost model and vice
// versa — disagreement means either the instrumentation lost cycles or
// the model's constants drifted from what the simulation charges.
package profile_test

import (
	"math"
	"testing"

	"hotcalls/internal/core"
	"hotcalls/internal/edl"
	"hotcalls/internal/profile"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sgx"
	"hotcalls/internal/sim"
	"hotcalls/internal/telemetry"
)

const xvalEDL = `
enclave {
    trusted {
        public int ecall_empty(void);
        public int ecall_driver(void);
    };
    untrusted {
        int ocall_empty(void);
    };
};
`

// xvalFixture builds the microbenchmark platform with nothing attached,
// so warm-up runs leave no events behind.
func xvalFixture(t *testing.T) (*sgx.Platform, *sdk.Runtime) {
	t.Helper()
	p := sgx.NewPlatform(7)
	var clk sim.Clock
	e := p.ECreate(&clk, 64<<20, 4, sgx.Attributes{})
	for i := 0; i < 4; i++ {
		if err := e.EAdd(&clk, uint64(i)*sgx.PageSize, make([]byte, sgx.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.EInit(&clk); err != nil {
		t.Fatal(err)
	}
	rt := sdk.New(p, e, edl.MustParse(xvalEDL))
	noop := func(ctx *sdk.Ctx, args []sdk.Arg) uint64 { return 0 }
	rt.MustBindECall("ecall_empty", noop)
	rt.MustBindOCall("ocall_empty", noop)
	rt.MustBindECall("ecall_driver", func(ctx *sdk.Ctx, a []sdk.Arg) uint64 {
		if _, err := ctx.OCall("ocall_empty"); err != nil {
			t.Error(err)
		}
		return 0
	})
	return p, rt
}

// checkComponent asserts trace-attributed and analytic cycles agree
// within the acceptance tolerance of ±5% per component.
func checkComponent(t *testing.T, site string, c profile.Category, got, want float64) {
	t.Helper()
	if want == 0 {
		// Components the analytic model predicts as absent must be
		// (near) absent in the trace too.
		if got > 1 {
			t.Errorf("%s/%s: trace attributes %.1f cyc/call, analytic model predicts 0", site, c, got)
		}
		return
	}
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Errorf("%s/%s: trace %.1f vs analytic %.1f cyc/call (%.1f%% apart, tolerance 5%%)",
			site, c, got, want, rel*100)
	} else {
		t.Logf("%s/%-9s trace %8.1f  analytic %8.1f  (%+.2f%%)", site, c, got, want, (got-want)/want*100)
	}
}

func TestCrossValidation(t *testing.T) {
	p, rt := xvalFixture(t)

	// Warm every path before attaching the tracer, mirroring the
	// paper's measurement discipline.
	for i := 0; i < 50; i++ {
		var clk sim.Clock
		if _, err := rt.ECall(&clk, "ecall_empty"); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.ECall(&clk, "ecall_driver"); err != nil {
			t.Fatal(err)
		}
	}

	reg := telemetry.New()
	reg.EnableDeepTracing(1 << 20)
	p.SetTelemetry(reg)
	rt.SetTelemetry(reg)
	ch := core.NewChannel(rt, p.RNG)
	ch.SetTelemetry(reg)

	const (
		sdkRuns = 400
		hotRuns = 4000
	)
	var clk sim.Clock
	for i := 0; i < sdkRuns; i++ {
		if _, err := rt.ECall(&clk, "ecall_empty"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < sdkRuns; i++ {
		if _, err := rt.ECall(&clk, "ecall_driver"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < hotRuns; i++ {
		if _, err := ch.HotECall(&clk, "ecall_empty"); err != nil {
			t.Fatal(err)
		}
	}

	if d := reg.Tracer().Dropped(); d != 0 {
		t.Fatalf("trace ring overflowed (%d dropped): results would be partial", d)
	}
	prof := profile.Analyze(reg.Tracer().Events())

	for _, tc := range []struct {
		site string
		want profile.Analytic
	}{
		{"ecall:ecall_empty", profile.AnalyticWarmECall()},
		{"ocall:ocall_empty", profile.AnalyticWarmOCall()},
		{"hotecall:ecall_empty", profile.AnalyticHotCall(ch.Model)},
	} {
		b := prof.Calls[tc.site]
		if b == nil {
			t.Fatalf("no breakdown for %s (sites: %v)", tc.site, prof.Names())
		}
		for c := profile.Category(0); c < profile.NumCategories; c++ {
			checkComponent(t, tc.site, c, b.PerCall(c), tc.want.Component(c))
		}
		if got, want := b.Mean(), tc.want.Total(); math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s: total %.1f vs analytic %.1f cyc/call", tc.site, got, want)
		}
	}

	// The driver ecall itself must still look like a warm empty ecall
	// once its nested ocall is carved out into the ocall's breakdown.
	drv := prof.Calls["ecall:ecall_driver"]
	if drv == nil {
		t.Fatal("no breakdown for ecall:ecall_driver")
	}
	want := profile.AnalyticWarmECall()
	if got := drv.Mean(); math.Abs(got-want.Total())/want.Total() > 0.05 {
		t.Errorf("driver attributed %.1f cyc/call, want ~%.1f after excluding nested ocall", got, want.Total())
	}
}

// TestCrossValidationCallCounts pins the per-site call counts the trace
// reconstruction finds — a missed or double-counted span would skew the
// per-call averages silently.
func TestCrossValidationCallCounts(t *testing.T) {
	p, rt := xvalFixture(t)
	reg := telemetry.New()
	reg.EnableDeepTracing(1 << 18)
	p.SetTelemetry(reg)
	rt.SetTelemetry(reg)
	var clk sim.Clock
	for i := 0; i < 25; i++ {
		if _, err := rt.ECall(&clk, "ecall_driver"); err != nil {
			t.Fatal(err)
		}
	}
	prof := profile.Analyze(reg.Tracer().Events())
	if n := prof.Calls["ecall:ecall_driver"].Calls; n != 25 {
		t.Fatalf("driver calls = %d, want 25", n)
	}
	if n := prof.Calls["ocall:ocall_empty"].Calls; n != 25 {
		t.Fatalf("nested ocall calls = %d, want 25", n)
	}
}

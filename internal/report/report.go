// Package report assembles the paper-fidelity report (REPORT.md and
// report.json): the full measurement plan of the paper re-run through the
// high-resolution distribution recorder, rendered with CDF plots, and
// gated against the paper's published numbers under the tolerance
// policies of internal/regress.  cmd/hotreport is the front end.
//
// The package sits above internal/bench (measurement) and
// internal/regress (comparison) because regress itself imports bench:
// the fidelity diff cannot live in either without a cycle.
package report

import (
	"hotcalls/internal/bench"
	"hotcalls/internal/regress"
)

// Report is one finished report run: the measured data plus the fidelity
// comparison against the paper.
type Report struct {
	Data     *bench.ReportData
	Fidelity *regress.Result
}

// Build runs the measurement plan and the fidelity comparison.  Output is
// a pure function of cfg: same config, same bytes (the determinism test
// in report_test.go pins this).
func Build(cfg bench.ReportConfig) *Report {
	data := bench.CollectReport(cfg)
	base, cand := data.FidelityPair()
	return &Report{
		Data:     data,
		Fidelity: regress.Compare(base, cand, regress.PaperFidelityPolicy()),
	}
}

// FidelityOK reports whether every compared metric landed within its
// tolerance — the bit cmd/hotreport turns into its exit status.
func (r *Report) FidelityOK() bool { return len(r.Fidelity.Regressions()) == 0 }

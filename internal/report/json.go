package report

import (
	"encoding/json"

	"hotcalls/internal/bench"
	"hotcalls/internal/regress"
	"hotcalls/internal/sim"
)

// SchemaVersion identifies the report.json artifact format.
const SchemaVersion = "hotcalls-report/v1"

// The JSON twin of REPORT.md.  Deliberately timestamp-free: the artifact
// is committed, and a byte-identical regeneration is the determinism
// contract (contrast BENCH_hotcalls.json, whose generated_at records the
// trajectory point in time).

type jsonQuantile struct {
	Q      float64 `json:"q"`
	Cycles float64 `json:"cycles"`
}

type jsonCDFPoint struct {
	Cycles   float64 `json:"cycles"`
	Fraction float64 `json:"fraction"`
}

type jsonSeries struct {
	Name        string         `json:"name"`
	Count       uint64         `json:"count"`
	MinCycles   uint64         `json:"min_cycles"`
	MaxCycles   uint64         `json:"max_cycles"`
	MeanCycles  float64        `json:"mean_cycles"`
	Percentiles []jsonQuantile `json:"percentiles"`
	CDF         []jsonCDFPoint `json:"cdf,omitempty"`
}

type jsonSweepPoint struct {
	KB               uint64  `json:"kb"`
	ReadPlain        float64 `json:"read_plain_cycles"`
	ReadEnc          float64 `json:"read_enc_cycles"`
	ReadOverheadPct  float64 `json:"read_overhead_pct"`
	PaperReadPct     float64 `json:"paper_read_overhead_pct"`
	WritePlain       float64 `json:"write_plain_cycles"`
	WriteEnc         float64 `json:"write_enc_cycles"`
	WriteOverheadPct float64 `json:"write_overhead_pct"`
}

type jsonApp struct {
	App        string  `json:"app"`
	Mode       string  `json:"mode"`
	Throughput float64 `json:"throughput"`
	Paper      float64 `json:"paper"`
	Unit       string  `json:"unit"`
}

type jsonFidelity struct {
	Metric       string  `json:"metric"`
	Measured     float64 `json:"measured"`
	Paper        float64 `json:"paper"`
	ChangePct    float64 `json:"change_pct"`
	TolerancePct float64 `json:"tolerance_pct"`
	Verdict      string  `json:"verdict"`
}

type jsonReport struct {
	Schema       string           `json:"schema"`
	Seed         uint64           `json:"seed"`
	WarmRuns     int              `json:"warm_runs"`
	ColdRuns     int              `json:"cold_runs"`
	AppSeconds   float64          `json:"app_seconds"`
	ReservoirCap int              `json:"reservoir_cap"`
	FrequencyHz  uint64           `json:"sim_frequency_hz"`
	Calls        []jsonSeries     `json:"calls"`
	Leaves       []jsonSeries     `json:"leaves"`
	Sweep        []jsonSweepPoint `json:"sweep"`
	Apps         []jsonApp        `json:"apps"`
	AppLatency   []jsonSeries     `json:"app_latency"`
	Fidelity     []jsonFidelity   `json:"fidelity"`
	FidelityPass bool             `json:"fidelity_pass"`
}

func toJSONSeries(s bench.CallSeries, withCDF bool) jsonSeries {
	out := jsonSeries{
		Name:       s.Name,
		Count:      s.Snap.Count(),
		MinCycles:  s.Snap.Min(),
		MaxCycles:  s.Snap.Max(),
		MeanCycles: s.Snap.Mean(),
	}
	for _, q := range quantiles {
		out.Percentiles = append(out.Percentiles, jsonQuantile{Q: q.q, Cycles: s.Snap.Quantile(q.q)})
	}
	if withCDF {
		for _, p := range s.Snap.CDF(cdfPoints) {
			out.CDF = append(out.CDF, jsonCDFPoint{Cycles: p.Value, Fraction: p.Fraction})
		}
	}
	return out
}

// JSON renders the report.json artifact with stable indentation.
func (r *Report) JSON() ([]byte, error) {
	d := r.Data
	out := jsonReport{
		Schema:       SchemaVersion,
		Seed:         d.Cfg.Seed,
		WarmRuns:     d.Cfg.WarmRuns,
		ColdRuns:     d.Cfg.ColdRuns,
		AppSeconds:   d.Cfg.AppSeconds,
		ReservoirCap: d.Cfg.ReservoirCap,
		FrequencyHz:  sim.FrequencyHz,
		FidelityPass: r.FidelityOK(),
	}
	for _, s := range d.Calls {
		out.Calls = append(out.Calls, toJSONSeries(s, true))
	}
	for _, s := range d.Leaves {
		out.Leaves = append(out.Leaves, toJSONSeries(s, false))
	}
	for _, p := range d.Sweep {
		out.Sweep = append(out.Sweep, jsonSweepPoint(p))
	}
	for _, a := range d.Apps {
		out.Apps = append(out.Apps, jsonApp{
			App: a.App, Mode: a.Mode.String(),
			Throughput: a.Throughput, Paper: a.Paper, Unit: a.Unit,
		})
	}
	for _, s := range d.AppLatency {
		out.AppLatency = append(out.AppLatency, toJSONSeries(s, false))
	}
	for _, delta := range r.Fidelity.Deltas {
		verdict := "ok"
		if delta.Class != regress.Unchanged {
			verdict = delta.Class.String()
		}
		out.Fidelity = append(out.Fidelity, jsonFidelity{
			Metric:       delta.Key,
			Measured:     delta.Cand,
			Paper:        delta.Base,
			ChangePct:    delta.ChangePct,
			TolerancePct: delta.TolerancePct,
			Verdict:      verdict,
		})
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

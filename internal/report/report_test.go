package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hotcalls/internal/bench"
)

// quickCfg is small enough to build twice in a test but exercises every
// section of the report.
var quickCfg = bench.ReportConfig{
	Seed:       3,
	WarmRuns:   1500,
	ColdRuns:   400,
	AppSeconds: 0.005,
}

// TestReportDeterministic pins the byte-determinism contract: same
// config, same markdown, same JSON.
func TestReportDeterministic(t *testing.T) {
	r1 := Build(quickCfg)
	r2 := Build(quickCfg)
	if r1.Markdown() != r2.Markdown() {
		t.Fatal("two builds with the same config produced different markdown")
	}
	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := r2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("two builds with the same config produced different JSON")
	}
}

// TestReportSections checks the markdown carries every promised section
// and one embedded SVG per figure.
func TestReportSections(t *testing.T) {
	r := Build(quickCfg)
	md := r.Markdown()
	for _, want := range []string{
		"## Headline medians",
		"## Call latency CDFs",
		"### Percentiles (cycles)",
		"### Leaf instructions",
		"## Buffer sweep",
		"## Application throughput",
		"### Request latency under HotCalls",
		"## Paper fidelity",
		"ecall_warm", "ocall_cold", "hotecall_warm",
		"eenter_warm", "eexit_warm",
		"memcached", "lighttpd",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	if got := strings.Count(md, "<svg"); got != 3 {
		t.Errorf("embedded SVG count = %d, want 3 (warm CDF, cold CDF, sweep)", got)
	}
	if n := strings.Count(md, "</svg>"); n != 3 {
		t.Errorf("unclosed SVG: %d closing tags for 3 figures", n)
	}
}

// TestReportJSONShape decodes the artifact and spot-checks the schema.
func TestReportJSONShape(t *testing.T) {
	r := Build(quickCfg)
	buf, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Schema string `json:"schema"`
		Seed   uint64 `json:"seed"`
		Calls  []struct {
			Name  string `json:"name"`
			Count uint64 `json:"count"`
			CDF   []struct {
				Cycles   float64 `json:"cycles"`
				Fraction float64 `json:"fraction"`
			} `json:"cdf"`
		} `json:"calls"`
		Fidelity []struct {
			Metric  string `json:"metric"`
			Verdict string `json:"verdict"`
		} `json:"fidelity"`
	}
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Schema != SchemaVersion {
		t.Errorf("schema = %q, want %q", out.Schema, SchemaVersion)
	}
	if out.Seed != quickCfg.Seed {
		t.Errorf("seed = %d, want %d", out.Seed, quickCfg.Seed)
	}
	if len(out.Calls) != 6 {
		t.Fatalf("calls = %d series, want 6", len(out.Calls))
	}
	for _, c := range out.Calls {
		wantRuns := uint64(quickCfg.WarmRuns)
		if strings.HasSuffix(c.Name, "_cold") {
			wantRuns = uint64(quickCfg.ColdRuns)
		}
		if c.Count != wantRuns {
			t.Errorf("%s count = %d, want %d (warm-up leaked into the recorder?)", c.Name, c.Count, wantRuns)
		}
		if len(c.CDF) == 0 {
			t.Errorf("%s has no CDF points", c.Name)
		}
	}
	if len(out.Fidelity) == 0 {
		t.Error("no fidelity metrics")
	}
	for _, f := range out.Fidelity {
		if !strings.HasPrefix(f.Metric, "fidelity/") {
			t.Errorf("fidelity metric %q missing fidelity/ prefix (policy overrides will not match)", f.Metric)
		}
	}
}

// TestFidelityOrdering sanity-checks the physics the report claims: the
// HotCall median sits far below both SDK crossings, and cold SDK medians
// exceed warm ones.
func TestFidelityOrdering(t *testing.T) {
	r := Build(quickCfg)
	med := func(name string) float64 { return r.Data.Snapshot(name).Quantile(0.5) }
	if hot, ec := med("hotecall_warm"), med("ecall_warm"); hot*5 > ec {
		t.Errorf("hotcall median %.0f not well below warm ecall median %.0f", hot, ec)
	}
	if w, c := med("ecall_warm"), med("ecall_cold"); c <= w {
		t.Errorf("ecall cold median %.0f <= warm %.0f", c, w)
	}
	if w, c := med("ocall_warm"), med("ocall_cold"); c <= w {
		t.Errorf("ocall cold median %.0f <= warm %.0f", c, w)
	}
}

package epc

import (
	"errors"
	"runtime"
	"sync"
	"testing"

	"hotcalls/internal/telemetry"
)

// recObserver is a recording Observer for tests.  The manager invokes
// every callback under its paging lock, so plain fields are safe even
// when many goroutines drive the manager.
type recObserver struct {
	touches      []uint64 // sampled pages, in order
	touchOwners  []OwnerID
	faults       uint64
	evicts       uint64
	dirtyEvicts  uint64
	interference map[uint64]uint64 // culprit<<32|victim → count
	flushes      int
	lastNow      uint64
}

func newRecObserver() *recObserver {
	return &recObserver{interference: make(map[uint64]uint64)}
}

func (o *recObserver) ObserveTouch(owner OwnerID, page, now uint64) {
	o.touches = append(o.touches, page)
	o.touchOwners = append(o.touchOwners, owner)
}

func (o *recObserver) ObserveFault(owner OwnerID, page uint64) { o.faults++ }

func (o *recObserver) ObserveEvict(culprit, victim OwnerID, page uint64, dirty bool) {
	o.evicts++
	if dirty {
		o.dirtyEvicts++
	}
	o.interference[uint64(culprit)<<32|uint64(victim)]++
}

func (o *recObserver) Flush(now uint64) { o.flushes++; o.lastNow = now }

// TestObserverCountsMatchManager drives multi-owner thrash and checks the
// observer saw exactly the manager's faults and evictions, with the
// interference matrix summing to the eviction total.
func TestObserverCountsMatchManager(t *testing.T) {
	m := newTestManager(8)
	obs := newRecObserver()
	m.SetObserver(obs, 0) // sample every touch

	for round := 0; round < 3; round++ {
		for p := uint64(0); p < 12; p++ {
			owner := OwnerID(1 + p%3)
			m.TouchAs(owner, p)
		}
	}
	touches, faults, evictions := m.Stats()

	if got := uint64(len(obs.touches)); got != touches {
		t.Fatalf("observer saw %d touches, manager counted %d", got, touches)
	}
	if obs.faults != faults {
		t.Fatalf("observer saw %d faults, manager counted %d", obs.faults, faults)
	}
	if obs.evicts != evictions {
		t.Fatalf("observer saw %d evictions, manager counted %d", obs.evicts, evictions)
	}
	var interfSum uint64
	for _, n := range obs.interference {
		interfSum += n
	}
	if interfSum != evictions {
		t.Fatalf("interference cells sum to %d, want total evictions %d", interfSum, evictions)
	}
}

// TestObserverEvictAttribution installs owner A's pages, then faults
// owner B past capacity: every eviction must be attributed culprit=B,
// victim=A.
func TestObserverEvictAttribution(t *testing.T) {
	const capPages = 4
	m := newTestManager(capPages)
	obs := newRecObserver()
	m.SetObserver(obs, 0)

	const a, b = OwnerID(1), OwnerID(2)
	for p := uint64(0); p < capPages; p++ {
		m.TouchAs(a, p)
	}
	// B touches fresh pages; each faults and must evict one of A's.
	for p := uint64(100); p < 100+capPages; p++ {
		m.TouchAs(b, p)
	}
	if obs.evicts != capPages {
		t.Fatalf("evictions = %d, want %d", obs.evicts, capPages)
	}
	key := uint64(b)<<32 | uint64(a)
	if obs.interference[key] != capPages {
		t.Fatalf("culprit=%d victim=%d count = %d, want %d; matrix %v",
			b, a, obs.interference[key], capPages, obs.interference)
	}
}

// TestObserverDirtyFlagAndWritebacks checks the dirty bit on evictions:
// pages with written content seal a swap blob (dirty), bare touched pages
// do not — and the manager's writeback counter plus the telemetry
// counter agree with the dirty subset.
func TestObserverDirtyFlagAndWritebacks(t *testing.T) {
	const capPages = 4
	m := newTestManager(capPages)
	reg := telemetry.New()
	m.SetTelemetry(reg)
	obs := newRecObserver()
	m.SetObserver(obs, 0)

	// Two dirty pages, two clean pages, then four fresh faults to evict
	// them all.
	if _, err := m.WritePageAs(1, 0, pageData(0xaa)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WritePageAs(1, 1, pageData(0xbb)); err != nil {
		t.Fatal(err)
	}
	m.TouchAs(1, 2)
	m.TouchAs(1, 3)
	for p := uint64(100); p < 104; p++ {
		m.TouchAs(2, p)
	}

	if obs.evicts != 4 {
		t.Fatalf("evictions = %d, want 4", obs.evicts)
	}
	if obs.dirtyEvicts != 2 {
		t.Fatalf("dirty evictions = %d, want 2", obs.dirtyEvicts)
	}
	if wb := m.Writebacks(); wb != 2 {
		t.Fatalf("Writebacks() = %d, want 2", wb)
	}
	if got := reg.Counter(telemetry.MetricEPCWritebacks).Load(); got != 2 {
		t.Fatalf("%s = %d, want 2", telemetry.MetricEPCWritebacks, got)
	}
}

// TestObserverSamplingGate checks the touch callback fires exactly for
// the pages SampledTouch admits at the configured rate, and that the
// owner tag rides along.
func TestObserverSamplingGate(t *testing.T) {
	const bits = 3
	m := newTestManager(64)
	obs := newRecObserver()
	m.SetObserver(obs, bits)

	const n = 512
	want := 0
	for p := uint64(0); p < n; p++ {
		m.TouchAs(OwnerID(7), p)
		if SampledTouch(p, bits) {
			want++
		}
	}
	if len(obs.touches) != want {
		t.Fatalf("sampled %d touches, want %d", len(obs.touches), want)
	}
	if want == 0 {
		t.Fatal("gate admitted no pages at 1-in-8 over 512 pages; hash is broken")
	}
	for i, p := range obs.touches {
		if !SampledTouch(p, bits) {
			t.Fatalf("observer saw page %d which the gate should reject", p)
		}
		if obs.touchOwners[i] != 7 {
			t.Fatalf("touch %d tagged owner %d, want 7", i, obs.touchOwners[i])
		}
	}
}

// TestFlushObserverRunsUnderLock checks FlushObserver passes the touch
// clock through and is a no-op without an observer.
func TestFlushObserverRunsUnderLock(t *testing.T) {
	m := newTestManager(4)
	m.FlushObserver() // no observer: must not panic
	obs := newRecObserver()
	m.SetObserver(obs, 0)
	m.TouchAs(1, 0)
	m.TouchAs(1, 1)
	m.FlushObserver()
	if obs.flushes != 1 {
		t.Fatalf("flushes = %d, want 1", obs.flushes)
	}
	if obs.lastNow != 2 {
		t.Fatalf("flush saw touch clock %d, want 2", obs.lastNow)
	}
}

// TestConcurrentTouchStress hammers one manager from many goroutines —
// mixed owners, touches, writes, reads, swap tampering — and checks the
// invariants hold afterwards.  Run under -race this is the paging lock's
// correctness test.
func TestConcurrentTouchStress(t *testing.T) {
	const (
		capPages  = 64
		pageSpan  = 256
		workers   = 4
		perWorker = 20000
	)
	m := newTestManager(capPages)
	obs := newRecObserver()
	m.SetObserver(obs, 2)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := OwnerID(w + 1)
			p := uint64(w * 31)
			for i := 0; i < perWorker; i++ {
				p = (p*2862933555777941757 + 3037000493) % pageSpan
				switch i % 16 {
				case 7:
					if _, err := m.WritePageAs(owner, p, pageData(byte(w))); err != nil {
						t.Errorf("WritePageAs: %v", err)
						return
					}
				case 11:
					// The page may never have been written; only the
					// integrity/replay errors are impossible here.
					if _, _, err := m.ReadPageAs(owner, p); err != nil {
						t.Errorf("ReadPageAs: %v", err)
						return
					}
				default:
					m.TouchAs(owner, p)
				}
			}
		}(w)
	}

	// A reader goroutine exercises the locked accessors concurrently.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if r := m.ResidentPages(); r > capPages {
				t.Errorf("resident %d exceeds capacity %d", r, capPages)
				return
			}
			m.Stats()
			m.Writebacks()
			m.FlushObserver()
			runtime.Gosched()
		}
	}()

	// A saboteur exercises the sealed-swap error paths on a private page
	// range no worker touches: wait for pressure to evict the page, then
	// tamper or replay and fault it back in.
	rg.Add(1)
	go func() {
		defer rg.Done()
		const base = uint64(1000)
		owner := OwnerID(99)
		// A fresh page per iteration: a page that already survived a failed
		// verified read keeps its stale blob around, which would satisfy
		// the eviction-wait below while the page is still resident.
		for i := 0; i < 20; i++ {
			p := base + uint64(i)
			if _, err := m.WritePageAs(owner, p, pageData(byte(i))); err != nil {
				t.Errorf("saboteur write: %v", err)
				return
			}
			// Wait until the thrashing workers evict it (sealed blob
			// appears), or give up if the workers already drained.
			var blob *SealedPage
			for try := 0; try < 1e6; try++ {
				if blob = m.SwapSnapshot(p); blob != nil {
					break
				}
				runtime.Gosched()
			}
			if blob == nil {
				return // workers finished before eviction; nothing to attack
			}
			if i%2 == 0 {
				if !m.TamperSwapped(p) {
					continue // faulted back in concurrently? not possible: page is private
				}
				if _, _, err := m.ReadPageAs(owner, p); !errors.Is(err, ErrSwapIntegrity) {
					t.Errorf("tampered read err = %v, want ErrSwapIntegrity", err)
					return
				}
			} else {
				// Fault it in (rotating the VA version), then put the stale
				// blob back: replay must be detected.
				if _, err := m.WritePageAs(owner, p, pageData(byte(i)+1)); err != nil {
					t.Errorf("saboteur rewrite: %v", err)
					return
				}
				var again *SealedPage
				for try := 0; try < 1e6; try++ {
					if again = m.SwapSnapshot(p); again != nil {
						break
					}
					runtime.Gosched()
				}
				if again == nil {
					return
				}
				m.ReplaySwapped(p, blob)
				if _, _, err := m.ReadPageAs(owner, p); !errors.Is(err, ErrSwapReplay) {
					t.Errorf("replayed read err = %v, want ErrSwapReplay", err)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	rg.Wait()

	if r := m.ResidentPages(); r > capPages {
		t.Fatalf("resident %d exceeds capacity %d", r, capPages)
	}
	_, faults, evictions := m.Stats()
	if obs.faults != faults {
		t.Fatalf("observer faults %d != manager faults %d", obs.faults, faults)
	}
	if obs.evicts != evictions {
		t.Fatalf("observer evictions %d != manager evictions %d", obs.evicts, evictions)
	}
	var interfSum uint64
	for _, n := range obs.interference {
		interfSum += n
	}
	if interfSum != evictions {
		t.Fatalf("interference sum %d != evictions %d", interfSum, evictions)
	}
}

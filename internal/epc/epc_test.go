package epc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"hotcalls/internal/sim"
)

func newTestManager(pages int) *Manager {
	var key [16]byte
	copy(key[:], "paging-seal-key!")
	return NewManager(pages*PageSize, key)
}

func pageData(b byte) []byte {
	d := make([]byte, PageSize)
	for i := range d {
		d[i] = b + byte(i%13)
	}
	return d
}

func TestTouchResidentIsFree(t *testing.T) {
	m := newTestManager(4)
	if fault, _ := m.Touch(1); !fault {
		t.Fatal("first touch should fault")
	}
	fault, cycles := m.Touch(1)
	if fault || cycles != 0 {
		t.Fatalf("resident touch = (%v, %v), want (false, 0)", fault, cycles)
	}
}

func TestFaultCostCharged(t *testing.T) {
	m := newTestManager(4)
	_, cycles := m.Touch(9)
	if cycles != FaultCost {
		t.Fatalf("fault cost = %v, want %v", cycles, float64(FaultCost))
	}
}

func TestEvictionWhenFull(t *testing.T) {
	m := newTestManager(2)
	m.Touch(1)
	m.Touch(2)
	m.Touch(3) // must evict
	if m.ResidentPages() != 2 {
		t.Fatalf("resident = %d, want 2", m.ResidentPages())
	}
	_, faults, evictions := m.Stats()
	if faults != 3 || evictions != 1 {
		t.Fatalf("faults=%d evictions=%d, want 3, 1", faults, evictions)
	}
}

func TestClockSecondChance(t *testing.T) {
	m := newTestManager(3)
	m.Touch(1)
	m.Touch(2)
	m.Touch(3)
	// First eviction sweeps reference bits and evicts page 1, leaving
	// pages 2 and 3 with cleared bits.
	m.Touch(4)
	// Re-reference 2: the clock hand must now skip it (second chance)
	// and evict 3 instead.
	m.Touch(2)
	m.Touch(5)
	if fault, _ := m.Touch(2); fault {
		t.Fatal("page 2 was referenced and should have survived the sweep")
	}
	if fault, _ := m.Touch(3); !fault {
		t.Fatal("page 3 was unreferenced and should have been evicted")
	}
}

func TestSequentialSweepThrashes(t *testing.T) {
	// A working set one page larger than capacity, swept sequentially
	// with clock replacement, faults on every access after warmup — the
	// libquantum pathology.
	m := newTestManager(8)
	for p := uint64(0); p < 9; p++ {
		m.Touch(p)
	}
	faultsBefore := uint64(0)
	_, faultsBefore, _ = m.Stats()
	n := uint64(0)
	for sweep := 0; sweep < 3; sweep++ {
		for p := uint64(0); p < 9; p++ {
			m.Touch(p)
			n++
		}
	}
	_, faultsAfter, _ := m.Stats()
	rate := float64(faultsAfter-faultsBefore) / float64(n)
	if rate < 0.9 {
		t.Fatalf("sequential overcommit fault rate = %.2f, want ~1.0", rate)
	}
}

func TestWorkingSetWithinCapacityNeverFaultsAgain(t *testing.T) {
	m := newTestManager(16)
	for p := uint64(0); p < 16; p++ {
		m.Touch(p)
	}
	_, before, _ := m.Stats()
	for sweep := 0; sweep < 5; sweep++ {
		for p := uint64(0); p < 16; p++ {
			m.Touch(p)
		}
	}
	_, after, _ := m.Stats()
	if after != before {
		t.Fatalf("faults grew from %d to %d with resident working set", before, after)
	}
}

func TestSwapRoundTrip(t *testing.T) {
	m := newTestManager(2)
	want := pageData(0x42)
	if _, err := m.WritePage(1, want); err != nil {
		t.Fatal(err)
	}
	// Force page 1 out.
	m.Touch(2)
	m.Touch(3)
	m.Touch(4)
	got, _, err := m.ReadPage(1)
	if err != nil {
		t.Fatalf("ReadPage after swap: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("page content corrupted by swap round trip")
	}
}

func TestSwappedContentIsEncrypted(t *testing.T) {
	m := newTestManager(1)
	want := pageData(0x77)
	if _, err := m.WritePage(1, want); err != nil {
		t.Fatal(err)
	}
	m.Touch(2) // evict page 1
	blob := m.SwapSnapshot(1)
	if blob == nil {
		t.Fatal("no sealed page for evicted page")
	}
	if bytes.Contains(blob.payload, want[:128]) {
		t.Fatal("sealed page leaks plaintext")
	}
}

func TestTamperSwappedDetected(t *testing.T) {
	m := newTestManager(1)
	if _, err := m.WritePage(1, pageData(0x01)); err != nil {
		t.Fatal(err)
	}
	m.Touch(2)
	if !m.TamperSwapped(1) {
		t.Fatal("tamper target missing")
	}
	_, _, err := m.ReadPage(1)
	if !errors.Is(err, ErrSwapIntegrity) {
		t.Fatalf("err = %v, want ErrSwapIntegrity", err)
	}
}

func TestReplaySwappedDetected(t *testing.T) {
	m := newTestManager(1)
	if _, err := m.WritePage(1, pageData(0xa1)); err != nil {
		t.Fatal(err)
	}
	m.Touch(2) // evict v1
	old := m.SwapSnapshot(1)
	if _, _, err := m.ReadPage(1); err != nil { // fault back in
		t.Fatal(err)
	}
	if _, err := m.WritePage(1, pageData(0xb2)); err != nil { // newer content
		t.Fatal(err)
	}
	m.Touch(3) // evict v2
	m.ReplaySwapped(1, old)
	_, _, err := m.ReadPage(1)
	if !errors.Is(err, ErrSwapReplay) {
		t.Fatalf("err = %v, want ErrSwapReplay", err)
	}
}

func TestResidencyNeverExceedsCapacity(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		m := newTestManager(8)
		for i := 0; i < 300; i++ {
			m.Touch(uint64(r.Intn(64)))
			if m.ResidentPages() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestContentPreservedUnderRandomPressure(t *testing.T) {
	r := sim.NewRNG(77)
	m := newTestManager(4)
	truth := map[uint64]byte{}
	for i := 0; i < 400; i++ {
		p := uint64(r.Intn(16))
		if r.Bool(0.5) {
			b := byte(r.Intn(256))
			if _, err := m.WritePage(p, pageData(b)); err != nil {
				t.Fatalf("write page %d: %v", p, err)
			}
			truth[p] = b
		} else if want, ok := truth[p]; ok {
			got, _, err := m.ReadPage(p)
			if err != nil {
				t.Fatalf("read page %d: %v", p, err)
			}
			if !bytes.Equal(got, pageData(want)) {
				t.Fatalf("page %d content diverged", p)
			}
		}
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewManager(100, [16]byte{})
}

func TestBadPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := newTestManager(2)
	m.WritePage(0, []byte{1})
}

// Package epc models the Enclave Page Cache: the encrypted region of
// Processor Reserved Memory that holds all enclave pages.  The testbed's
// EPC is 93 MB; when enclaves need more, the SGX driver swaps pages out
// with EWB and back in with ELDU.  That paging traffic is what makes the
// paper's libquantum run 5.2x slower (its 96 MB working set just exceeds
// the EPC, Section 3.4).
//
// The package has a functional half — EWB really does encrypt, MAC, and
// version pages so that swapped-out content is confidential, tamper-evident
// and replay-protected — and a performance half, the per-fault cycle costs
// used by the memory system.
//
// Pages are owner-tagged: each page carries the OwnerID of the enclave or
// tenant that faulted it in, so paging traffic can be attributed per owner
// (which owner's fault evicted which owner's page).  An optional Observer
// receives fault/evict events exactly and a hash-sampled subset of touches
// — the feed internal/epcstat turns into working-set estimates and
// interference matrices.
package epc

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"hotcalls/internal/telemetry"
)

// PageSize is the SGX page granularity.
const PageSize = 4096

// DefaultCapacityBytes is the usable EPC size of the paper's testbed
// (93 MB; the BIOS reserves 128 MB of PRM, the rest holds metadata).
const DefaultCapacityBytes = 93 << 20

// Paging cost constants, in cycles.  An EPC fault costs a trap into the
// kernel driver and an ELDU (decrypt + verify + install) for the missing
// page; when the EPC is full, each eviction the fault forces adds a full
// EWB (encrypt + MAC + write-out).  Under sustained thrash — the paper's
// libquantum, whose 96 MB working set exceeds the 93 MB EPC — every fault
// pays trap + ELDU + EWB (~9,000 cycles), which reproduces the 5.2x
// slowdown; with headroom a compulsory fault costs only trap + ELDU.
const (
	FaultTrapCost = 1500
	ELDUCost      = 3800
	EWBCost       = 3700
	FaultCost     = FaultTrapCost + ELDUCost // plus EWBCost per eviction
)

// Errors from the functional swap path.
var (
	ErrSwapIntegrity = errors.New("epc: swapped page failed authentication (tampered)")
	ErrSwapReplay    = errors.New("epc: swapped page version mismatch (replay attack)")
)

// OwnerID identifies the enclave/tenant a page belongs to.  Owner 0 is
// the anonymous single-enclave default used by the legacy Touch path.
type OwnerID uint32

// Observer receives the manager's paging events.  Fault and evict events
// are delivered exactly (attribution must sum); touches are sampled by a
// per-page multiplicative hash so the unsampled hot path stays one
// multiply + shift + compare.  All callbacks run under the manager's
// lock: they must be fast, must not allocate in steady state, and must
// not call back into the Manager.  Flush is invoked by FlushObserver,
// also under the lock, to publish accumulated state to concurrent
// readers; now is the manager's cumulative touch count (the observer's
// clock).
type Observer interface {
	// ObserveTouch reports a hash-sampled touch of a page (resident or
	// faulting) at touch-clock time now.
	ObserveTouch(owner OwnerID, page uint64, now uint64)
	// ObserveFault reports every fault, before its evictions.
	ObserveFault(owner OwnerID, page uint64)
	// ObserveEvict reports every eviction: culprit is the owner whose
	// fault forced it, victim the owner of the evicted page, dirty
	// whether the EWB sealed content (a writeback).
	ObserveEvict(culprit, victim OwnerID, page uint64, dirty bool)
	// Flush publishes accumulated observer state for concurrent readers.
	Flush(now uint64)
}

// hashMul is the multiplicative page-sampling hash constant (splitmix64's
// golden-ratio increment): page*hashMul mixes low page-number entropy into
// the top bits the sample gate tests.
const hashMul = 0x9E3779B97F4A7C15

// SealedPage is an encrypted page in untrusted memory, as produced by EWB.
type SealedPage struct {
	nonce   [12]byte
	payload []byte // AES-GCM sealed page content
	version uint64 // as claimed by the blob; the trusted copy is the VA
}

type pageState struct {
	owner      OwnerID // the owner whose fault installed the page
	referenced bool    // clock algorithm reference bit
	version    uint64  // bumped on every swap-out (Version Array entry)
}

// Manager tracks EPC residency for a set of enclave pages and charges
// paging costs.  Page numbers are virtual page indices (address/PageSize).
// All methods are safe for concurrent use: one mutex serialises the
// paging state, matching the real SGX driver's single paging lock.
type Manager struct {
	mu       sync.Mutex
	capacity int // pages
	resident map[uint64]*pageState
	clock    []uint64 // circular list of resident page numbers
	hand     int

	// Functional swap state.
	sealKey  [16]byte
	aead     cipher.AEAD
	content  map[uint64][]byte // plaintext content of resident pages (optional)
	swapped  map[uint64]*SealedPage
	versions map[uint64]uint64 // the trusted Version Array (lives in EPC)

	faults     uint64
	evictions  uint64
	writebacks uint64 // dirty evictions (content sealed)
	touches    uint64

	// Observer hook (nil when no observatory is attached).  sampleShift
	// implements the touch-sampling gate: a touch is sampled when the top
	// sampleBits bits of page*hashMul are zero, i.e. with probability
	// 2^-sampleBits; shift 64 (sampleBits 0) samples every touch.
	obs         Observer
	sampleShift uint

	// Telemetry counters (nil when observability is off): faults are
	// ELDU work, evictions are EWB work, writebacks the dirty subset.
	// The resident gauge tracks the current EPC occupancy for the health
	// monitor's thrash detection.
	faultCtr     *telemetry.Counter
	evictCtr     *telemetry.Counter
	writebackCtr *telemetry.Counter
	residentGge  *telemetry.Gauge
}

// NewManager returns an EPC manager with the given capacity in bytes,
// sealing swapped pages with the given paging key.
func NewManager(capacityBytes int, sealKey [16]byte) *Manager {
	if capacityBytes < PageSize {
		panic("epc: capacity below one page")
	}
	block, err := aes.NewCipher(sealKey[:])
	if err != nil {
		panic(fmt.Sprintf("epc: %v", err))
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		panic(fmt.Sprintf("epc: %v", err))
	}
	return &Manager{
		capacity: capacityBytes / PageSize,
		resident: make(map[uint64]*pageState),
		sealKey:  sealKey,
		aead:     aead,
		content:  make(map[uint64][]byte),
		swapped:  make(map[uint64]*SealedPage),
		versions: make(map[uint64]uint64),
	}
}

// CapacityPages returns the EPC capacity in pages.
func (m *Manager) CapacityPages() int { return m.capacity }

// ResidentPages returns the number of currently resident pages.
func (m *Manager) ResidentPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.resident)
}

// Stats returns cumulative touch, fault, and eviction counts.
func (m *Manager) Stats() (touches, faults, evictions uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.touches, m.faults, m.evictions
}

// Writebacks returns the cumulative count of dirty evictions — EWBs that
// sealed page content, as opposed to dropping a clean page.
func (m *Manager) Writebacks() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writebacks
}

// SetTelemetry attaches fault (ELDU), eviction (EWB), and writeback
// (dirty EWB) counters from the registry.  A nil registry detaches.
func (m *Manager) SetTelemetry(reg *telemetry.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.faultCtr = reg.Counter(telemetry.MetricEPCFaults)
	m.evictCtr = reg.Counter(telemetry.MetricEPCEvictions)
	m.writebackCtr = reg.Counter(telemetry.MetricEPCWritebacks)
	m.residentGge = reg.Gauge(telemetry.MetricEPCResident)
	m.residentGge.Set(int64(len(m.resident)))
}

// SetObserver attaches (or with nil detaches) the paging observer.
// sampleBits sets the touch-sampling rate to 1-in-2^sampleBits by page
// hash (0 samples every touch); fault and evict events are always
// delivered exactly.  Attach before the first touch so the observer's
// per-owner residency accounting starts from an empty EPC.
func (m *Manager) SetObserver(obs Observer, sampleBits uint) {
	if sampleBits > 63 {
		sampleBits = 63
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.obs = obs
	m.sampleShift = 64 - sampleBits
}

// FlushObserver publishes the observer's accumulated state (Observer.
// Flush under the manager's lock).  Snapshot readers call it to get a
// consistent view without racing the paging path.
func (m *Manager) FlushObserver() {
	m.mu.Lock()
	if m.obs != nil {
		m.obs.Flush(m.touches)
	}
	m.mu.Unlock()
}

// Touch records an access by the anonymous owner 0 — the single-enclave
// legacy path.  See TouchAs.
func (m *Manager) Touch(page uint64) (fault bool, cycles float64) {
	return m.TouchAs(0, page)
}

// TouchAs records an access to a page by the given owner and returns the
// paging cost in cycles: zero when resident, FaultCost (plus this fault's
// share of any needed eviction work) when the page must be brought in.
// A faulting page is stamped with the toucher's owner ID; a resident
// page keeps its installer's.
func (m *Manager) TouchAs(owner OwnerID, page uint64) (fault bool, cycles float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.touchLocked(owner, page)
}

func (m *Manager) touchLocked(owner OwnerID, page uint64) (fault bool, cycles float64) {
	m.touches++
	if m.obs != nil && (page*hashMul)>>m.sampleShift == 0 {
		m.obs.ObserveTouch(owner, page, m.touches)
	}
	if st, ok := m.resident[page]; ok {
		st.referenced = true
		return false, 0
	}
	m.faults++
	m.faultCtr.Inc()
	if m.obs != nil {
		m.obs.ObserveFault(owner, page)
	}
	cycles = FaultCost
	for len(m.resident) >= m.capacity {
		m.evictOne(owner)
		cycles += EWBCost
	}
	m.install(owner, page)
	return true, cycles
}

func (m *Manager) install(owner OwnerID, page uint64) {
	// The trusted version comes from the Version Array, never from the
	// untrusted blob — that is what defeats replay of older seals.
	st := &pageState{owner: owner, referenced: true, version: m.versions[page]}
	m.resident[page] = st
	m.clock = append(m.clock, page)
	m.residentGge.Set(int64(len(m.resident)))
}

// evictOne runs the clock (second-chance) algorithm and swaps one victim
// out, attributing the eviction to the faulting culprit owner.
func (m *Manager) evictOne(culprit OwnerID) {
	for {
		if len(m.clock) == 0 {
			panic("epc: evict from empty clock")
		}
		if m.hand >= len(m.clock) {
			m.hand = 0
		}
		page := m.clock[m.hand]
		st, ok := m.resident[page]
		if !ok {
			// Stale clock entry; drop it.
			m.clock = append(m.clock[:m.hand], m.clock[m.hand+1:]...)
			continue
		}
		if st.referenced {
			st.referenced = false
			m.hand++
			continue
		}
		// Victim found: EWB.
		m.evictions++
		m.evictCtr.Inc()
		m.clock = append(m.clock[:m.hand], m.clock[m.hand+1:]...)
		dirty := m.swapOut(page, st)
		if m.obs != nil {
			m.obs.ObserveEvict(culprit, st.owner, page, dirty)
		}
		delete(m.resident, page)
		m.residentGge.Set(int64(len(m.resident)))
		return
	}
}

// swapOut seals a page's content (when the functional path holds content)
// and bumps its version so any replay of an older blob is detectable.
// It reports whether the eviction was dirty — whether an EWB actually
// sealed content rather than dropping a clean page.
func (m *Manager) swapOut(page uint64, st *pageState) (dirty bool) {
	st.version++
	m.versions[page] = st.version
	blob := &SealedPage{version: st.version}
	binary.LittleEndian.PutUint64(blob.nonce[:8], page)
	binary.LittleEndian.PutUint32(blob.nonce[8:], uint32(st.version))
	if data, ok := m.content[page]; ok {
		var aad [16]byte
		binary.LittleEndian.PutUint64(aad[:8], page)
		binary.LittleEndian.PutUint64(aad[8:], st.version)
		blob.payload = m.aead.Seal(nil, blob.nonce[:], data, aad[:])
		delete(m.content, page)
		dirty = true
		m.writebacks++
		m.writebackCtr.Inc()
	}
	m.swapped[page] = blob
	return dirty
}

// WritePage stores plaintext content for a resident page owned by the
// anonymous owner 0, faulting it in if needed.  See WritePageAs.
func (m *Manager) WritePage(page uint64, data []byte) (cycles float64, err error) {
	return m.WritePageAs(0, page, data)
}

// WritePageAs stores plaintext content for a resident page, faulting it
// in under the given owner if needed.  It returns the paging cost
// incurred.
func (m *Manager) WritePageAs(owner OwnerID, page uint64, data []byte) (cycles float64, err error) {
	if len(data) != PageSize {
		panic("epc: page content must be exactly PageSize bytes")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	fault, cycles := m.touchLocked(owner, page)
	if fault {
		if _, err := m.swapIn(page); err != nil {
			return cycles, err
		}
	}
	m.content[page] = append([]byte(nil), data...)
	return cycles, nil
}

// ReadPage returns the plaintext content of a page for the anonymous
// owner 0, faulting it in (with verification) if it was swapped out.
func (m *Manager) ReadPage(page uint64) (data []byte, cycles float64, err error) {
	return m.ReadPageAs(0, page)
}

// ReadPageAs returns the plaintext content of a page, faulting it in
// under the given owner (with verification) if it was swapped out.
func (m *Manager) ReadPageAs(owner OwnerID, page uint64) (data []byte, cycles float64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fault, cycles := m.touchLocked(owner, page)
	if fault {
		if _, err := m.swapIn(page); err != nil {
			return nil, cycles, err
		}
	}
	return m.content[page], cycles, nil
}

// swapIn verifies and decrypts a swapped blob back into content.  A page
// that was never given content swaps in as nil content with no error.
func (m *Manager) swapIn(page uint64) ([]byte, error) {
	blob, ok := m.swapped[page]
	if !ok || blob.payload == nil {
		return nil, nil
	}
	if blob.version != m.versions[page] {
		return nil, ErrSwapReplay
	}
	var aad [16]byte
	binary.LittleEndian.PutUint64(aad[:8], page)
	binary.LittleEndian.PutUint64(aad[8:], blob.version)
	data, err := m.aead.Open(nil, blob.nonce[:], blob.payload, aad[:])
	if err != nil {
		return nil, ErrSwapIntegrity
	}
	delete(m.swapped, page)
	m.content[page] = data
	return data, nil
}

// TamperSwapped flips a bit in the sealed blob of a swapped-out page,
// modelling an attack on the swap region in untrusted memory.  It reports
// whether such a blob existed.
func (m *Manager) TamperSwapped(page uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	blob, ok := m.swapped[page]
	if !ok || len(blob.payload) == 0 {
		return false
	}
	blob.payload[0] ^= 1
	return true
}

// SwapSnapshot captures the sealed blob of a swapped-out page so a test can
// replay it later (the rollback attack against paging).
func (m *Manager) SwapSnapshot(page uint64) *SealedPage {
	m.mu.Lock()
	defer m.mu.Unlock()
	blob, ok := m.swapped[page]
	if !ok {
		return nil
	}
	cp := *blob
	cp.payload = append([]byte(nil), blob.payload...)
	return &cp
}

// ReplaySwapped installs an old sealed blob for a page, modelling the
// replay attack.
func (m *Manager) ReplaySwapped(page uint64, blob *SealedPage) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := *blob
	cp.payload = append([]byte(nil), blob.payload...)
	m.swapped[page] = &cp
}

// SampledTouch reports whether a touch of the given page passes the
// sampling gate at the given sampleBits — exported so tests and the
// observatory can reason about which pages the estimator sees.
func SampledTouch(page uint64, sampleBits uint) bool {
	if sampleBits > 63 {
		sampleBits = 63
	}
	return (page*hashMul)>>(64-sampleBits) == 0
}

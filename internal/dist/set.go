package dist

import "sync/atomic"

// Kind labels which call boundary an observation crossed.  The first
// four are the paper's interfaces; the leaf kinds resolve the microcode
// share of an SDK crossing (the EENTER/ERESUME and EEXIT instructions
// themselves).
type Kind int

const (
	Ecall Kind = iota
	Ocall
	HotEcall
	HotOcall
	EEnterLeaf
	EExitLeaf
	KindCount
)

// String returns the series-name fragment for the kind.
func (k Kind) String() string {
	switch k {
	case Ecall:
		return "ecall"
	case Ocall:
		return "ocall"
	case HotEcall:
		return "hotecall"
	case HotOcall:
		return "hotocall"
	case EEnterLeaf:
		return "eenter"
	case EExitLeaf:
		return "eexit"
	}
	return "unknown"
}

// Temp labels the cache-temperature regime a series was measured under
// (the paper's warm/cold split in Table 1 and Figure 2).
type Temp int

const (
	Warm Temp = iota
	Cold
	TempCount
)

// String returns the series-name fragment for the temperature.
func (t Temp) String() string {
	if t == Cold {
		return "cold"
	}
	return "warm"
}

// SeriesName is the canonical label of one (kind, temperature) series,
// e.g. "ecall_warm" — the key the report artifact uses.
func SeriesName(k Kind, t Temp) string { return k.String() + "_" + t.String() }

// Set is a full labelled recorder matrix: one Recorder per (kind,
// temperature) pair, with the current temperature a single atomic so the
// measurement harness can flip warm/cold around its eviction setup
// without touching the instrumented paths.  A nil *Set is a valid
// disabled set, and Observe on it is a single branch — the hook stays on
// every boundary path at zero cost until a report run attaches a Set.
type Set struct {
	recs [KindCount][TempCount]*Recorder
	temp atomic.Int32
}

// NewSet returns a set whose recorders each hold at most reservoirCap
// raw samples (DefaultReservoirCap when <= 0).
func NewSet(reservoirCap int) *Set {
	s := &Set{}
	for k := Kind(0); k < KindCount; k++ {
		for t := Temp(0); t < TempCount; t++ {
			s.recs[k][t] = NewRecorder(reservoirCap)
		}
	}
	return s
}

// SetTemp switches the temperature label subsequent observations record
// under.
func (s *Set) SetTemp(t Temp) {
	if s == nil {
		return
	}
	s.temp.Store(int32(t))
}

// Observe records one boundary crossing of the given kind under the
// current temperature label.
func (s *Set) Observe(k Kind, cycles uint64) {
	if s == nil {
		return
	}
	s.recs[k][s.temp.Load()].Record(cycles)
}

// Recorder returns the recorder of one labelled series.
func (s *Set) Recorder(k Kind, t Temp) *Recorder {
	if s == nil {
		return nil
	}
	return s.recs[k][t]
}

package dist

import (
	"fmt"
	"math"
	"strings"
)

// This file renders the report's figures as standalone SVG: multi-series
// latency CDFs (log-x) and linear sweep lines.  Output is a pure
// function of its inputs — fixed-precision coordinates, no timestamps,
// no map iteration — so REPORT.md regenerates byte-identically under a
// fixed seed (the golden test in svg_test.go pins this).

// Validated categorical palette (light mode), first three slots of the
// reference order: blue, orange, aqua.  Three slots clear the all-pairs
// CVD and normal-vision floors; the aqua slot sits below 3:1 contrast on
// the light surface, so every chart ships a legend plus direct series
// labels (the relief rule) — identity never rides on color alone.
var seriesColors = []string{"#2a78d6", "#eb6834", "#1baf7a"}

// Chart chrome ink (light mode): surface, primary/secondary text, muted
// axis labels, hairline grid, baseline.
const (
	inkSurface   = "#fcfcfb"
	inkPrimary   = "#0b0b0b"
	inkSecondary = "#52514e"
	inkMuted     = "#898781"
	inkGrid      = "#e1e0d9"
	inkBaseline  = "#c3c2b7"

	fontStack = `system-ui, -apple-system, &quot;Segoe UI&quot;, sans-serif`
)

// Series is one named line of a plot.
type Series struct {
	Name   string
	Points []CDFPoint
}

// PlotConfig tunes RenderLinesSVG.
type PlotConfig struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool    // log10 x axis (latency CDFs span 3 decades)
	YMax   float64 // 0 means auto (1.0 when every y <= 1)
	Width  int     // 0 means 720
	Height int     // 0 means 360
}

// RenderCDFSVG renders latency CDFs: log-x, fraction-of-calls y in
// [0, 1], one 2px line per series with a legend and a direct label at
// each series' median crossing.
func RenderCDFSVG(title string, series []Series) string {
	return RenderLinesSVG(PlotConfig{
		Title:  title,
		XLabel: "latency (cycles)",
		YLabel: "fraction of calls",
		LogX:   true,
		YMax:   1,
	}, series)
}

func fnum(v float64) string { return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".") }

// tickLabel formats an axis value compactly and deterministically.
func tickLabel(v float64) string {
	switch {
	case v >= 1e6 && v == math.Trunc(v/1e5)*1e5:
		return fnum(v/1e6) + "M"
	case v >= 1e3 && v == math.Trunc(v/1e2)*1e2:
		return fnum(v/1e3) + "k"
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fnum(v)
	}
}

// logTicks returns 1-2-5 ticks covering [lo, hi] on a log axis, falling
// back to decades only when the range is wide.
func logTicks(lo, hi float64) []float64 {
	var ticks []float64
	startExp := int(math.Floor(math.Log10(lo)))
	endExp := int(math.Ceil(math.Log10(hi)))
	for e := startExp; e <= endExp; e++ {
		for _, m := range []float64{1, 2, 5} {
			v := m * math.Pow(10, float64(e))
			if v >= lo*0.999 && v <= hi*1.001 {
				ticks = append(ticks, v)
			}
		}
	}
	if len(ticks) > 8 { // wide range: decades only
		dec := ticks[:0]
		for e := startExp; e <= endExp; e++ {
			v := math.Pow(10, float64(e))
			if v >= lo*0.999 && v <= hi*1.001 {
				dec = append(dec, v)
			}
		}
		ticks = dec
	}
	return ticks
}

// linTicks returns ~5 nice-step ticks covering [lo, hi].
func linTicks(lo, hi float64) []float64 {
	raw := (hi - lo) / 5
	if raw <= 0 {
		return []float64{lo}
	}
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	step := mag
	for _, m := range []float64{1, 2, 5, 10} {
		if m*mag >= raw {
			step = m * mag
			break
		}
	}
	var ticks []float64
	for v := math.Ceil(lo/step) * step; v <= hi*1.001; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// RenderLinesSVG renders a multi-series line chart.  Degenerate inputs
// are handled explicitly: no data renders a labelled empty frame, a
// zero-width x range is padded, and single-point series draw a marker
// instead of a line.
func RenderLinesSVG(cfg PlotConfig, series []Series) string {
	w, h := cfg.Width, cfg.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 360
	}
	const (
		padL, padR = 64, 20
		padT, padB = 52, 56
	)
	plotW, plotH := float64(w-padL-padR), float64(h-padT-padB)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img" aria-label="%s">`+"\n",
		w, h, w, h, escape(cfg.Title))
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", w, h, inkSurface)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="%s" font-size="15" font-weight="600" fill="%s">%s</text>`+"\n",
		padL, fontStack, inkPrimary, escape(cfg.Title))

	// Data extent over non-empty series.
	lo, hi := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range series {
		for _, p := range s.Points {
			total++
			if p.Value < lo {
				lo = p.Value
			}
			if p.Value > hi {
				hi = p.Value
			}
		}
	}
	if total == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="%s" font-size="13" fill="%s">no data</text>`+"\n",
			w/2-24, h/2, fontStack, inkSecondary)
		b.WriteString("</svg>\n")
		return b.String()
	}
	if cfg.LogX && lo < 1 {
		lo = 1
	}
	if hi <= lo { // all-identical samples: pad the range
		if cfg.LogX {
			lo, hi = lo/1.25, lo*1.25
		} else {
			lo, hi = lo-1, hi+1
		}
	}
	ymax := cfg.YMax
	if ymax <= 0 {
		for _, s := range series {
			for _, p := range s.Points {
				if p.Fraction > ymax {
					ymax = p.Fraction
				}
			}
		}
		if ymax <= 0 {
			ymax = 1
		}
		ymax = linTicksCeil(ymax)
	}

	xpos := func(v float64) float64 {
		if cfg.LogX {
			if v < lo {
				v = lo
			}
			return float64(padL) + plotW*(math.Log10(v)-math.Log10(lo))/(math.Log10(hi)-math.Log10(lo))
		}
		return float64(padL) + plotW*(v-lo)/(hi-lo)
	}
	ypos := func(f float64) float64 { return float64(padT) + plotH*(1-f/ymax) }

	// Grid + ticks.
	var xt []float64
	if cfg.LogX {
		xt = logTicks(lo, hi)
	} else {
		xt = linTicks(lo, hi)
	}
	for _, v := range xt {
		x := xpos(v)
		fmt.Fprintf(&b, `<line x1="%s" y1="%d" x2="%s" y2="%s" stroke="%s" stroke-width="1"/>`+"\n",
			fnum(x), padT, fnum(x), fnum(float64(padT)+plotH), inkGrid)
		fmt.Fprintf(&b, `<text x="%s" y="%s" font-family="%s" font-size="11" fill="%s" text-anchor="middle">%s</text>`+"\n",
			fnum(x), fnum(float64(padT)+plotH+16), fontStack, inkMuted, tickLabel(v))
	}
	ysteps := 4
	for i := 0; i <= ysteps; i++ {
		f := ymax * float64(i) / float64(ysteps)
		y := ypos(f)
		fmt.Fprintf(&b, `<line x1="%d" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="1"/>`+"\n",
			padL, fnum(y), fnum(float64(padL)+plotW), fnum(y), inkGrid)
		fmt.Fprintf(&b, `<text x="%d" y="%s" font-family="%s" font-size="11" fill="%s" text-anchor="end">%s</text>`+"\n",
			padL-8, fnum(y+4), fontStack, inkMuted, tickLabel(f))
	}
	// Baseline axis.
	fmt.Fprintf(&b, `<line x1="%d" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="1"/>`+"\n",
		padL, fnum(float64(padT)+plotH), fnum(float64(padL)+plotW), fnum(float64(padT)+plotH), inkBaseline)
	// Axis titles.
	fmt.Fprintf(&b, `<text x="%s" y="%d" font-family="%s" font-size="12" fill="%s" text-anchor="middle">%s</text>`+"\n",
		fnum(float64(padL)+plotW/2), h-12, fontStack, inkSecondary, escape(cfg.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%s" font-family="%s" font-size="12" fill="%s" text-anchor="middle" transform="rotate(-90 16 %s)">%s</text>`+"\n",
		fnum(float64(padT)+plotH/2), fontStack, inkSecondary, fnum(float64(padT)+plotH/2), escape(cfg.YLabel))

	// Series lines (2px), plus a direct label at each series' midpoint.
	for si, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		color := seriesColors[si%len(seriesColors)]
		if len(s.Points) == 1 {
			p := s.Points[0]
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="4" fill="%s"/>`+"\n",
				fnum(xpos(p.Value)), fnum(ypos(p.Fraction)), color)
		} else {
			var path strings.Builder
			for i, p := range s.Points {
				cmd := "L"
				if i == 0 {
					cmd = "M"
				}
				fmt.Fprintf(&path, "%s%s %s ", cmd, fnum(xpos(p.Value)), fnum(ypos(p.Fraction)))
			}
			fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`+"\n",
				strings.TrimRight(path.String(), " "), color)
		}
		mid := s.Points[len(s.Points)/2]
		fmt.Fprintf(&b, `<text x="%s" y="%s" font-family="%s" font-size="11" fill="%s">%s</text>`+"\n",
			fnum(xpos(mid.Value)+6), fnum(ypos(mid.Fraction)-6), fontStack, inkSecondary, escape(s.Name))
	}

	// Legend row under the title: 2px line swatch + name in text ink.
	x := float64(padL)
	for si, s := range series {
		color := seriesColors[si%len(seriesColors)]
		fmt.Fprintf(&b, `<line x1="%s" y1="36" x2="%s" y2="36" stroke="%s" stroke-width="2"/>`+"\n",
			fnum(x), fnum(x+18), color)
		fmt.Fprintf(&b, `<text x="%s" y="40" font-family="%s" font-size="12" fill="%s">%s</text>`+"\n",
			fnum(x+24), fontStack, inkSecondary, escape(s.Name))
		x += 24 + 7.2*float64(len(s.Name)) + 18
	}

	b.WriteString("</svg>\n")
	return b.String()
}

// linTicksCeil rounds an auto y-max up to a nice value so the top grid
// line clears the data.
func linTicksCeil(v float64) float64 {
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 1.2, 1.5, 2, 2.5, 4, 5, 8, 10} {
		if m*mag >= v {
			return m * mag
		}
	}
	return 10 * mag
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

package dist

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hotcalls/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden SVG files")

func sampleSeries(t *testing.T) []Series {
	t.Helper()
	mk := func(seed uint64, base, spread int) Series {
		rng := sim.NewRNG(seed)
		r := NewRecorder(256)
		for i := 0; i < 4000; i++ {
			r.Record(uint64(base + rng.Intn(spread)))
		}
		return Series{Points: r.Snapshot().CDF(64)}
	}
	a := mk(1, 500, 400)
	a.Name = "hotcall_warm"
	b := mk(2, 8000, 3000)
	b.Name = "ecall_warm"
	c := mk(3, 11000, 8000)
	c.Name = "ecall_cold"
	return []Series{a, b, c}
}

// TestRenderGolden pins the exact bytes of a representative CDF plot: the
// report artifact must regenerate byte-identically, so any change to the
// emitter is a deliberate golden update (-update).
func TestRenderGolden(t *testing.T) {
	got := RenderCDFSVG("Call latency CDF", sampleSeries(t))
	path := filepath.Join("testdata", "cdf_golden.svg")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/dist -run Golden -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("rendered SVG differs from golden (len %d vs %d); rerun with -update if intended", len(got), len(want))
	}
}

func TestRenderDeterministic(t *testing.T) {
	s := sampleSeries(t)
	if a, b := RenderCDFSVG("t", s), RenderCDFSVG("t", s); a != b {
		t.Fatal("two renders of identical input differ")
	}
}

func TestRenderEmpty(t *testing.T) {
	for _, series := range [][]Series{nil, {}, {{Name: "empty"}}} {
		out := RenderCDFSVG("empty plot", series)
		if !strings.Contains(out, "no data") {
			t.Fatalf("empty input did not render the no-data frame: %q", out)
		}
		if !strings.HasSuffix(out, "</svg>\n") {
			t.Fatal("empty render is not a closed SVG document")
		}
	}
}

func TestRenderSinglePoint(t *testing.T) {
	out := RenderCDFSVG("one point", []Series{{
		Name:   "solo",
		Points: []CDFPoint{{Value: 620, Fraction: 1}},
	}})
	if !strings.Contains(out, "<circle") {
		t.Fatal("single-point series did not render a marker")
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatal("single-point render produced non-finite coordinates")
	}
}

func TestRenderAllIdentical(t *testing.T) {
	r := NewRecorder(64)
	for i := 0; i < 1000; i++ {
		r.Record(620)
	}
	out := RenderCDFSVG("degenerate", []Series{{Name: "same", Points: r.Snapshot().CDF(0)}})
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatal("all-identical samples produced non-finite coordinates")
	}
	if !strings.HasSuffix(out, "</svg>\n") {
		t.Fatal("render is not a closed SVG document")
	}
}

func TestRenderLinearSweep(t *testing.T) {
	out := RenderLinesSVG(PlotConfig{
		Title:  "Buffer sweep",
		XLabel: "buffer KB",
		YLabel: "overhead %",
	}, []Series{
		{Name: "read", Points: []CDFPoint{{2, 54.5}, {4, 68}, {8, 71}, {16, 94}, {32, 102}}},
		{Name: "write", Points: []CDFPoint{{2, 4}, {4, 5}, {8, 6}, {16, 6}, {32, 7}}},
	})
	for _, want := range []string{"Buffer sweep", "read", "write", "<path", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sweep render missing %q", want)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatal("sweep render produced non-finite coordinates")
	}
}

func TestEscape(t *testing.T) {
	out := RenderCDFSVG(`a<b>&"c"`, []Series{{Name: "x<y", Points: []CDFPoint{{1, 0.5}, {2, 1}}}})
	for _, bad := range []string{`a<b>`, `"c"`, "x<y"} {
		if strings.Contains(out, bad) {
			t.Fatalf("unescaped text %q leaked into SVG", bad)
		}
	}
}

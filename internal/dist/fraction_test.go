package dist

import "testing"

// TestFractionBelow checks the bucket-resolution CDF lookup against an
// exactly-tracked stream.
func TestFractionBelow(t *testing.T) {
	var empty Snapshot
	if got := empty.FractionBelow(100); got != 0 {
		t.Fatalf("empty FractionBelow = %v, want 0", got)
	}
	r := NewRecorder(0)
	for v := uint64(1); v <= 1000; v++ {
		r.Record(v)
	}
	s := r.Snapshot()
	for _, tc := range []struct {
		v    uint64
		want float64
	}{{1000, 1.0}, {500, 0.5}, {250, 0.25}, {1, 0.001}, {2000, 1.0}} {
		got := s.FractionBelow(tc.v)
		if diff := got - tc.want; diff < -0.02 || diff > 0.02 {
			t.Errorf("FractionBelow(%d) = %.4f, want %.4f +-0.02", tc.v, got, tc.want)
		}
	}
	// Values below sub-bucket resolution are exact.
	if got := s.FractionBelow(50); got != 0.05 {
		t.Errorf("FractionBelow(50) = %.4f, want exactly 0.05", got)
	}
}

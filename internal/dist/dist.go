// Package dist is the full-distribution latency layer under the
// paper-fidelity report: an HDR-style sub-bucketed log-linear histogram
// with ~1% relative error over the whole uint64 cycle range, plus a
// bounded deterministic reservoir of raw per-call samples for exact order
// statistics.  It hooks the same call-boundary points as
// internal/telemetry (sgx leaf instructions, SDK ecall/ocall, the
// HotCalls channel) but keeps enough resolution to regenerate the paper's
// CDF figures, where the coarse log2 telemetry histogram can only bound a
// percentile to within a power of two.
//
// The hot path (Record) is two atomic adds plus a branch; the reservoir
// takes its mutex only on the 1-in-stride samples it keeps, so the
// instrumented-vs-bare benchmark pair stays within the 1% budget
// (BenchmarkHotECallChannel / BenchmarkHotECallChannelDist).
package dist

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Log-linear bucket layout: subBits low-order bits of linear resolution
// inside every power-of-two binade.  Values below subCount are exact
// (their own bucket); above, each binade splits into subCount equal-width
// sub-buckets, so the worst-case midpoint error is 1/(2*subCount) ≈ 0.8%
// of the value — inside the ~1% budget the report needs.
const (
	subBits  = 6
	subCount = 1 << subBits

	// NumBuckets covers the full uint64 range: subCount exact buckets
	// plus (64-subBits) binades of subCount sub-buckets each.
	NumBuckets = (64-subBits)<<subBits + subCount
)

// indexOf maps a value to its bucket.
func indexOf(v uint64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1
	return (exp-subBits+1)<<subBits + int((v>>uint(exp-subBits))&(subCount-1))
}

// BucketLow returns the smallest value that falls in bucket i.
func BucketLow(i int) uint64 {
	if i < subCount {
		return uint64(i)
	}
	exp := i>>subBits + subBits - 1
	return 1<<uint(exp) | uint64(i&(subCount-1))<<uint(exp-subBits)
}

// BucketHigh returns the largest value that falls in bucket i.
func BucketHigh(i int) uint64 {
	if i < subCount {
		return uint64(i)
	}
	exp := i>>subBits + subBits - 1
	return BucketLow(i) + 1<<uint(exp-subBits) - 1
}

// bucketMid is the interpolation point reported for bucket i.
func bucketMid(i int) float64 {
	return (float64(BucketLow(i)) + float64(BucketHigh(i))) / 2
}

// Recorder accumulates one labelled latency series.  Record is safe for
// concurrent use; a nil *Recorder is a valid disabled recorder.  The
// reservoir keeps every stride-th sample (stride a power of two that
// doubles whenever the bounded buffer fills), which is fully
// deterministic for a single writer — the report's measurement loops are
// single-threaded, so two runs under the same seed keep identical raw
// samples.  Concurrent writers stay safe but may interleave the kept
// subsequence differently.
type Recorder struct {
	counts []atomic.Uint64 // NumBuckets
	seen   atomic.Uint64
	stride atomic.Uint64 // power of two; sample kept when (seq-1)%stride == 0

	mu   sync.Mutex
	kept []uint64
	cap  int
}

// DefaultReservoirCap bounds the raw-sample reservoir when the caller
// passes no explicit capacity: 4096 samples resolve a p99.9 on a 20k-run
// series after at most one stride doubling.
const DefaultReservoirCap = 4096

// NewRecorder returns a recorder whose reservoir holds at most
// reservoirCap raw samples (DefaultReservoirCap when <= 0).
func NewRecorder(reservoirCap int) *Recorder {
	if reservoirCap <= 0 {
		reservoirCap = DefaultReservoirCap
	}
	r := &Recorder{counts: make([]atomic.Uint64, NumBuckets), cap: reservoirCap}
	r.stride.Store(1)
	return r
}

// Record adds one observation in cycles.
func (r *Recorder) Record(v uint64) {
	if r == nil {
		return
	}
	r.counts[indexOf(v)].Add(1)
	seq := r.seen.Add(1)
	if (seq-1)&(r.stride.Load()-1) != 0 {
		return
	}
	r.mu.Lock()
	r.kept = append(r.kept, v)
	if len(r.kept) >= r.cap {
		// Compact: keep every 2nd sample and double the stride, so the
		// retained set is always "every stride-th observation".
		half := r.kept[:0]
		for i := 0; i < len(r.kept); i += 2 {
			half = append(half, r.kept[i])
		}
		r.kept = half
		r.stride.Store(r.stride.Load() << 1)
	}
	r.mu.Unlock()
}

// Count returns the number of recorded observations.
func (r *Recorder) Count() uint64 {
	if r == nil {
		return 0
	}
	return r.seen.Load()
}

// Snapshot returns a point-in-time copy: the full bucket array plus the
// sorted reservoir.  A nil recorder snapshots to the empty distribution.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{Counts: make([]uint64, NumBuckets)}
	for i := range r.counts {
		n := r.counts[i].Load()
		s.Counts[i] = n
		s.Total += n
	}
	r.mu.Lock()
	s.Kept = append([]uint64(nil), r.kept...)
	s.Stride = r.stride.Load()
	r.mu.Unlock()
	sort.Slice(s.Kept, func(i, j int) bool { return s.Kept[i] < s.Kept[j] })
	return s
}

// Snapshot is an immutable copy of a recorder: per-bucket counts, the
// total, and the sorted raw-sample reservoir.
type Snapshot struct {
	Counts []uint64
	Total  uint64
	Kept   []uint64 // sorted
	Stride uint64   // one kept sample per Stride observations
}

// Count returns the number of observations in the snapshot.
func (s Snapshot) Count() uint64 { return s.Total }

// Min returns the lower bound of the lowest occupied bucket (exact for
// values below 64), or 0 on an empty snapshot.
func (s Snapshot) Min() uint64 {
	for i, n := range s.Counts {
		if n > 0 {
			return BucketLow(i)
		}
	}
	return 0
}

// Max returns the upper bound of the highest occupied bucket (exact for
// values below 64), or 0 on an empty snapshot.
func (s Snapshot) Max() uint64 {
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			return BucketHigh(i)
		}
	}
	return 0
}

// Mean returns the bucket-midpoint mean, or 0 on an empty snapshot.
func (s Snapshot) Mean() float64 {
	if s.Total == 0 {
		return 0
	}
	var sum float64
	for i, n := range s.Counts {
		if n > 0 {
			sum += bucketMid(i) * float64(n)
		}
	}
	return sum / float64(s.Total)
}

// Quantile estimates the q-th quantile (clamped into [0, 1]) from the
// bucket counts: the bucket holding the target rank reports its midpoint,
// so the estimate is within half a bucket width (~0.8% relative) of the
// true order statistic.  Returns 0 on an empty snapshot.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Total))
	if rank >= s.Total {
		rank = s.Total - 1
	}
	var seen uint64
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		if seen+n <= rank {
			seen += n
			continue
		}
		return bucketMid(i)
	}
	return 0
}

// ExactQuantile returns the q-th quantile of the raw reservoir under the
// same nearest-rank convention as Quantile, exact when the reservoir
// still holds every sample (Stride == 1).  Returns 0 on an empty
// reservoir.
func (s Snapshot) ExactQuantile(q float64) uint64 {
	n := uint64(len(s.Kept))
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	return s.Kept[rank]
}

// FractionBelow returns the fraction of recorded values <= v, at bucket
// resolution (~1% on the value axis): buckets whose upper bound is at
// most v count in full, the bucket containing v counts pro rata.
// Returns 0 on an empty snapshot.
func (s Snapshot) FractionBelow(v uint64) float64 {
	if s.Total == 0 {
		return 0
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo, hi := BucketLow(i), BucketHigh(i)
		if hi <= v {
			cum += c
			continue
		}
		if lo <= v {
			cum += uint64(float64(c) * float64(v-lo+1) / float64(hi-lo+1))
		}
		break
	}
	return float64(cum) / float64(s.Total)
}

// CDFPoint is one (value, cumulative-fraction) pair.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical cumulative distribution from the bucket
// counts: one point per occupied bucket at the bucket's upper bound,
// thinned to at most maxPoints (0 keeps every occupied bucket).  The last
// occupied bucket always survives thinning so the curve reaches 1.0.
func (s Snapshot) CDF(maxPoints int) []CDFPoint {
	if s.Total == 0 {
		return nil
	}
	var pts []CDFPoint
	var cum uint64
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		cum += n
		pts = append(pts, CDFPoint{Value: float64(BucketHigh(i)), Fraction: float64(cum) / float64(s.Total)})
	}
	if maxPoints <= 0 || len(pts) <= maxPoints {
		return pts
	}
	thin := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints-1; i++ {
		thin = append(thin, pts[i*len(pts)/maxPoints])
	}
	return append(thin, pts[len(pts)-1])
}

// Sub returns the interval distribution between an earlier snapshot o and
// this one: per-bucket differences clamped at zero, so a reset degrades
// to an empty interval instead of wrapping.  The reservoir does not
// subtract (kept samples are not interval-attributable) and is dropped.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	d := Snapshot{Counts: make([]uint64, NumBuckets)}
	for i := range d.Counts {
		var sv, ov uint64
		if i < len(s.Counts) {
			sv = s.Counts[i]
		}
		if i < len(o.Counts) {
			ov = o.Counts[i]
		}
		if sv > ov {
			d.Counts[i] = sv - ov
			d.Total += d.Counts[i]
		}
	}
	return d
}

// Merge folds another snapshot into this one: bucket counts add, and the
// reservoirs concatenate (re-sorted; the merged Stride is the coarser of
// the two, so ExactQuantile degrades gracefully to "sampled").
func (s *Snapshot) Merge(o Snapshot) {
	if len(s.Counts) == 0 {
		s.Counts = make([]uint64, NumBuckets)
	}
	for i, n := range o.Counts {
		s.Counts[i] += n
		s.Total += n
	}
	s.Kept = append(s.Kept, o.Kept...)
	sort.Slice(s.Kept, func(i, j int) bool { return s.Kept[i] < s.Kept[j] })
	if o.Stride > s.Stride {
		s.Stride = o.Stride
	}
}

package dist

import (
	"math"
	"sync"
	"testing"

	"hotcalls/internal/sim"
)

func TestBucketRoundTrip(t *testing.T) {
	values := []uint64{0, 1, 2, 63, 64, 65, 127, 128, 620, 1400, 8640, 14170,
		1 << 20, 1<<40 + 12345, math.MaxUint64}
	for _, v := range values {
		i := indexOf(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("indexOf(%d) = %d out of range", v, i)
		}
		if lo, hi := BucketLow(i), BucketHigh(i); v < lo || v > hi {
			t.Errorf("value %d outside its bucket %d [%d, %d]", v, i, lo, hi)
		}
	}
	// Bucket bounds tile the range: each bucket starts right after the
	// previous ends.
	for i := 1; i < NumBuckets; i++ {
		if BucketLow(i) != BucketHigh(i-1)+1 {
			t.Fatalf("bucket %d low %d does not follow bucket %d high %d",
				i, BucketLow(i), i-1, BucketHigh(i-1))
		}
	}
}

func TestExactBelowSubCount(t *testing.T) {
	for v := uint64(0); v < subCount; v++ {
		i := indexOf(v)
		if BucketLow(i) != v || BucketHigh(i) != v {
			t.Fatalf("value %d should be exact, got bucket [%d, %d]", v, BucketLow(i), BucketHigh(i))
		}
	}
}

// TestQuantileAccuracy pins the ~1% relative-error budget: on a stream
// that spans the paper's full latency range, every bucket-estimated
// quantile lands within 1% of the exact order statistic.
func TestQuantileAccuracy(t *testing.T) {
	rng := sim.NewRNG(42)
	r := NewRecorder(1 << 20) // reservoir big enough to keep everything
	const n = 50000
	for i := 0; i < n; i++ {
		// Mix of regimes: hotcall-ish (~620), ecall-ish (~8600), tail.
		v := uint64(500 + rng.Intn(300))
		switch rng.Intn(4) {
		case 0:
			v = uint64(8000 + rng.Intn(2000))
		case 1:
			v = uint64(12000 + rng.Intn(30000))
		}
		r.Record(v)
	}
	s := r.Snapshot()
	if s.Stride != 1 {
		t.Fatalf("reservoir decimated unexpectedly: stride %d", s.Stride)
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		est := s.Quantile(q)
		exact := float64(s.ExactQuantile(q))
		if exact == 0 {
			continue
		}
		if rel := math.Abs(est-exact) / exact; rel > 0.01 {
			t.Errorf("q=%v: estimate %.0f vs exact %.0f, rel err %.3f > 1%%", q, est, exact, rel)
		}
	}
}

func TestQuantileClamping(t *testing.T) {
	r := NewRecorder(16)
	r.Record(100)
	s := r.Snapshot()
	for _, q := range []float64{-1, -0.001, 0, 0.5, 1, 1.5, 100} {
		if got := s.Quantile(q); got < float64(BucketLow(indexOf(100))) || got > float64(BucketHigh(indexOf(100))) {
			t.Errorf("Quantile(%v) = %v, want inside bucket of 100", q, got)
		}
		if got := s.ExactQuantile(q); got != 100 {
			t.Errorf("ExactQuantile(%v) = %d, want 100", q, got)
		}
	}
}

// TestReservoirDeterminism: identical single-threaded streams keep
// identical raw samples, and the kept set is exactly every stride-th
// observation after compaction.
func TestReservoirDeterminism(t *testing.T) {
	const streamLen = 10000
	stream := make([]uint64, streamLen)
	rng := sim.NewRNG(7)
	for i := range stream {
		stream[i] = uint64(rng.Intn(100000))
	}
	run := func() Snapshot {
		r := NewRecorder(1024)
		for _, v := range stream {
			r.Record(v)
		}
		return r.Snapshot()
	}
	a, b := run(), run()
	if a.Stride != b.Stride || len(a.Kept) != len(b.Kept) {
		t.Fatalf("runs diverged: stride %d/%d, kept %d/%d", a.Stride, b.Stride, len(a.Kept), len(b.Kept))
	}
	for i := range a.Kept {
		if a.Kept[i] != b.Kept[i] {
			t.Fatalf("kept[%d] differs: %d vs %d", i, a.Kept[i], b.Kept[i])
		}
	}
	// 10000 observations into a 1024-cap reservoir: stride must have
	// doubled past 10000/1024.
	if a.Stride < 8 || a.Stride&(a.Stride-1) != 0 {
		t.Fatalf("stride %d not the expected power of two", a.Stride)
	}
	// The kept set is {stream[k*stride]} (a sorted copy of it).
	want := map[uint64]int{}
	for i := 0; i < streamLen; i += int(a.Stride) {
		want[stream[i]]++
	}
	got := map[uint64]int{}
	for _, v := range a.Kept {
		got[v]++
	}
	if len(a.Kept) != (streamLen+int(a.Stride)-1)/int(a.Stride) {
		t.Fatalf("kept %d samples, want every %d-th of %d", len(a.Kept), a.Stride, streamLen)
	}
	for v, n := range want {
		if got[v] != n {
			t.Fatalf("kept multiset differs at value %d: got %d, want %d", v, got[v], n)
		}
	}
}

func TestSubAndMerge(t *testing.T) {
	r := NewRecorder(64)
	for i := 0; i < 100; i++ {
		r.Record(1000)
	}
	early := r.Snapshot()
	for i := 0; i < 50; i++ {
		r.Record(2000)
	}
	late := r.Snapshot()
	d := late.Sub(early)
	if d.Total != 50 {
		t.Fatalf("interval total %d, want 50", d.Total)
	}
	if q := d.Quantile(0.5); q < 1900 || q > 2100 {
		t.Fatalf("interval median %v, want ~2000", q)
	}

	var m Snapshot
	m.Merge(early)
	m.Merge(d)
	if m.Total != late.Total {
		t.Fatalf("merge total %d, want %d", m.Total, late.Total)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	r.Record(5)
	if r.Count() != 0 {
		t.Fatal("nil recorder counted")
	}
	s := r.Snapshot()
	if s.Total != 0 || s.Quantile(0.5) != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Fatal("nil recorder snapshot not empty")
	}
	if s.CDF(10) != nil {
		t.Fatal("nil recorder CDF not nil")
	}

	var set *Set
	set.Observe(Ecall, 5)
	set.SetTemp(Cold)
	if set.Recorder(Ecall, Warm) != nil {
		t.Fatal("nil set returned a recorder")
	}
}

func TestCDFMonotonicAndComplete(t *testing.T) {
	r := NewRecorder(64)
	rng := sim.NewRNG(3)
	for i := 0; i < 5000; i++ {
		r.Record(uint64(100 + rng.Intn(100000)))
	}
	s := r.Snapshot()
	for _, maxPts := range []int{0, 10, 60} {
		pts := s.CDF(maxPts)
		if len(pts) == 0 {
			t.Fatal("empty CDF")
		}
		if maxPts > 0 && len(pts) > maxPts {
			t.Fatalf("CDF(%d) returned %d points", maxPts, len(pts))
		}
		last := pts[len(pts)-1]
		if last.Fraction != 1 {
			t.Fatalf("CDF does not reach 1.0: %v", last.Fraction)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Value < pts[i-1].Value || pts[i].Fraction < pts[i-1].Fraction {
				t.Fatalf("CDF not monotonic at %d", i)
			}
		}
	}
}

// TestConcurrentRecord exercises Record vs Snapshot under the race
// detector (make test-race covers this package).
func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder(256)
	set := NewSet(256)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := sim.NewRNG(uint64(g + 1))
			for i := 0; i < 20000; i++ {
				v := uint64(rng.Intn(10000))
				r.Record(v)
				set.Observe(HotEcall, v)
				if i%1000 == 0 {
					set.SetTemp(Temp(i / 1000 % 2))
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
			_ = set.Recorder(HotEcall, Warm).Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Count(); got != 4*20000 {
		t.Fatalf("count %d, want %d", got, 4*20000)
	}
	warm := set.Recorder(HotEcall, Warm).Snapshot().Total
	cold := set.Recorder(HotEcall, Cold).Snapshot().Total
	if warm+cold != 4*20000 {
		t.Fatalf("set totals %d+%d, want %d", warm, cold, 4*20000)
	}
}

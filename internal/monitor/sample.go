// Package monitor is the always-on health layer over the telemetry
// registry: a low-overhead sampler that periodically snapshots the
// counters, gauges, and histograms of internal/telemetry into a bounded
// ring of interval samples, and a pluggable rule engine that evaluates
// snapshot windows for the operational hazards the paper's design trades
// into (Sections 4.2 and 7): a sleeping or overloaded responder turning
// ~620-cycle HotCalls into timeout→fallback ecall storms, a dedicated
// polling core wasting its busy-wait budget, latency SLO burn, and EPC
// paging thrash.
//
// PRs 1-2 built the raw signals (counters, histograms, deep traces);
// this package is the evaluation layer: it never instruments a hot path
// itself, it only reads registry snapshots, so its steady-state cost is
// one registry snapshot per sampling interval regardless of traffic
// (see BenchmarkCallMonitored — the instrumented-pair budget is <=1%).
package monitor

import (
	"time"

	"hotcalls/internal/dist"
	"hotcalls/internal/epcstat"
	"hotcalls/internal/flight"
	"hotcalls/internal/telemetry"
	"hotcalls/internal/whatif"
)

// Sample is one point on the monitor's timeline: the cumulative metric
// readings at sampling time plus the interval deltas and derived rates
// against the previous sample.  Rules consume windows of Samples.
type Sample struct {
	Seq  int       `json:"seq"`
	When time.Time `json:"when"`

	// Cumulative readings.
	Requests      uint64 `json:"requests"`
	Timeouts      uint64 `json:"timeouts"`
	Fallbacks     uint64 `json:"fallbacks"`
	HotECalls     uint64 `json:"hot_ecalls"`
	HotOCalls     uint64 `json:"hot_ocalls"`
	Ecalls        uint64 `json:"ecalls"`
	Ocalls        uint64 `json:"ocalls"`
	Polls         uint64 `json:"responder_polls"`
	Executes      uint64 `json:"responder_executes"`
	Sleeps        uint64 `json:"responder_sleeps"`
	SpinCycles    uint64 `json:"spin_cycles"`
	EPCFaults     uint64 `json:"epc_faults"`
	EPCEvictions  uint64 `json:"epc_evictions"`
	EPCWritebacks uint64 `json:"epc_writebacks"`
	MEEHits       uint64 `json:"mee_hits"`
	MEEMisses     uint64 `json:"mee_misses"`

	// Point-in-time gauges.
	PendingDepth int64 `json:"pending_depth"`
	EPCResident  int64 `json:"epc_resident_pages"`

	// Adaptive responder-pool fabric (internal/core CallPool).
	ScaleUps           uint64 `json:"pool_scale_ups"`
	ScaleDowns         uint64 `json:"pool_scale_downs"`
	PoolResponders     int64  `json:"pool_responders"`
	PoolRespondersMax  int64  `json:"pool_responders_max"`
	PoolOccupancyMilli int64  `json:"pool_occupancy_milli"`

	// Interval deltas (zero on the first sample).
	DSubmissions uint64 `json:"d_submissions"`
	DTimeouts    uint64 `json:"d_timeouts"`
	DFallbacks   uint64 `json:"d_fallbacks"`
	DPolls       uint64 `json:"d_polls"`
	DExecutes    uint64 `json:"d_executes"`
	DSpinCycles  uint64 `json:"d_spin_cycles"`
	DEPCFaults   uint64 `json:"d_epc_faults"`
	DEPCEvicts   uint64 `json:"d_epc_evictions"`
	DEPCWrbacks  uint64 `json:"d_epc_writebacks"`
	DScaleUps    uint64 `json:"d_pool_scale_ups"`
	DScaleDowns  uint64 `json:"d_pool_scale_downs"`

	// Derived interval signals.
	TimeoutRate  float64 `json:"timeout_rate"`  // Δtimeouts / Δsubmissions
	FallbackRate float64 `json:"fallback_rate"` // Δfallbacks / Δsubmissions
	Occupancy    float64 `json:"occupancy"`     // Δexecutes / Δpolls
	MEEHitRate   float64 `json:"mee_hit_rate"`  // interval node-cache hit fraction

	// HotCall latency distribution of this interval.  By default the
	// percentiles interpolate the coarse log2 hotcall_cycles histogram
	// delta; when a high-resolution recorder is attached
	// (Options.LatencyDist) they come from its ~1%-error buckets instead,
	// HiRes is set, and LatencyP999 resolves the tail the log2 buckets
	// cannot.  Zeros when no calls landed this interval.
	LatencyCount uint64 `json:"latency_count"`
	LatencyP50   uint64 `json:"latency_p50_cycles"`
	LatencyP95   uint64 `json:"latency_p95_cycles"`
	LatencyP99   uint64 `json:"latency_p99_cycles"`
	LatencyP999  uint64 `json:"latency_p999_cycles,omitempty"`
	HiRes        bool   `json:"hi_res,omitempty"`

	// Callsites is the flight recorder's per-callsite stats table at
	// sampling time (Options.Flight), cumulative like the counter
	// fields above; the callsite-scoped rules diff consecutive samples'
	// rows.  Nil when no recorder is attached.
	Callsites []flight.CallsiteStats `json:"callsites,omitempty"`

	// EPC is the pressure observatory's snapshot at sampling time
	// (Options.EPC), cumulative like the counter fields; the EPC-scoped
	// rules diff consecutive samples' snapshots via Snapshot.Sub.  Nil
	// when no collector is attached.
	EPC *epcstat.Snapshot `json:"epc,omitempty"`

	// WhatIf is the shadow router's verdict for the interval ending at
	// this sample (Options.WhatIf): per-callsite policy costs and
	// cycles-of-regret, already diffed — unlike Callsites/EPC it is an
	// interval view, not a cumulative one.  The routing-regret rule
	// reads it.  Nil when no observatory is attached.
	WhatIf *whatif.RouterSnapshot `json:"whatif,omitempty"`
}

// Sampler turns successive registry snapshots into interval Samples.
// It is not itself goroutine-safe; Monitor serialises access.
type Sampler struct {
	reg     *telemetry.Registry
	seq     int
	prev    telemetry.Snapshot
	hasPrev bool

	rec      *dist.Recorder
	prevDist dist.Snapshot

	flight *flight.Recorder

	epcCol *epcstat.Collector

	whatIf     *whatif.Observatory
	prevTickNS uint64
}

// NewSampler returns a sampler over the registry.  A nil registry is
// valid and produces all-zero samples.
func NewSampler(reg *telemetry.Registry) *Sampler {
	return &Sampler{reg: reg}
}

// SetDistribution attaches (or, with nil, detaches) the high-resolution
// latency recorder the sampler prefers over the log2 histogram.
func (sa *Sampler) SetDistribution(r *dist.Recorder) { sa.rec = r }

// SetFlight attaches (or, with nil, detaches) the flight recorder whose
// per-callsite stats table each sample carries.  Sampling is the one
// place per tick that digests the recorder's rings, so every rule and
// render sees one consistent table per interval.
func (sa *Sampler) SetFlight(f *flight.Recorder) { sa.flight = f }

// SetEPC attaches (or, with nil, detaches) the EPC pressure observatory
// whose snapshot each sample carries.  Sampling is the one place per
// tick that flushes the collector, so every rule and render sees one
// consistent snapshot per interval.
func (sa *Sampler) SetEPC(c *epcstat.Collector) { sa.epcCol = c }

// SetWhatIf attaches (or, with nil, detaches) the shadow-routing
// observatory.  Each sample then feeds the interval's flight stats to
// Observatory.Observe and carries the resulting RouterSnapshot, so the
// routing-regret rule and every render see one verdict per interval.
// Intervals are measured on the flight recorder's clock when one is
// attached (deterministic under test clocks), wall time otherwise.
func (sa *Sampler) SetWhatIf(o *whatif.Observatory) { sa.whatIf = o }

// sub clamps counter deltas at zero so a registry swap or reset degrades
// to an empty interval instead of wrapping.
func sub(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return 0
}

// ratio returns num/den, or 0 on an empty denominator.
func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Sample takes one sample at the given time.
func (sa *Sampler) Sample(now time.Time) Sample {
	snap := sa.reg.Snapshot()
	c := snap.Counters
	s := Sample{
		Seq:  sa.seq,
		When: now,

		Requests:      c[telemetry.MetricHotCallRequests],
		Timeouts:      c[telemetry.MetricHotCallTimeouts],
		Fallbacks:     c[telemetry.MetricHotCallFallbacks],
		HotECalls:     c[telemetry.MetricHotECalls],
		HotOCalls:     c[telemetry.MetricHotOCalls],
		Ecalls:        c[telemetry.MetricEcalls],
		Ocalls:        c[telemetry.MetricOcalls],
		Polls:         c[telemetry.MetricResponderPolls],
		Executes:      c[telemetry.MetricResponderExecutes],
		Sleeps:        c[telemetry.MetricResponderSleeps],
		SpinCycles:    c[telemetry.MetricSpinCycles],
		EPCFaults:     c[telemetry.MetricEPCFaults],
		EPCEvictions:  c[telemetry.MetricEPCEvictions],
		EPCWritebacks: c[telemetry.MetricEPCWritebacks],
		MEEHits:       c[telemetry.MetricMEENodeHits],
		MEEMisses:     c[telemetry.MetricMEENodeMiss],

		PendingDepth: snap.Gauges[telemetry.MetricPendingDepth],
		EPCResident:  snap.Gauges[telemetry.MetricEPCResident],

		ScaleUps:           c[telemetry.MetricPoolScaleUps],
		ScaleDowns:         c[telemetry.MetricPoolScaleDowns],
		PoolResponders:     snap.Gauges[telemetry.MetricPoolResponders],
		PoolRespondersMax:  snap.Gauges[telemetry.MetricPoolRespondersMax],
		PoolOccupancyMilli: snap.Gauges[telemetry.MetricPoolOccupancyMilli],
	}
	if sa.flight != nil {
		s.Callsites = sa.flight.Stats() // digests pending records
	}
	if sa.epcCol != nil {
		s.EPC = sa.epcCol.Snapshot() // flushes the live accounting
	}
	if sa.whatIf != nil {
		nowNS := uint64(now.UnixNano())
		if sa.flight != nil {
			nowNS = sa.flight.Now()
		}
		var interval uint64
		if sa.prevTickNS != 0 && nowNS > sa.prevTickNS {
			interval = nowNS - sa.prevTickNS
		}
		sa.prevTickNS = nowNS
		verdict := sa.whatIf.Observe(s.Callsites, interval)
		s.WhatIf = &verdict
	}
	sa.seq++
	if !sa.hasPrev {
		sa.prev, sa.hasPrev = snap, true
		if sa.rec != nil {
			sa.prevDist = sa.rec.Snapshot()
		}
		return s
	}
	p := sa.prev.Counters

	// Submissions: the runnable HotCall protocol counts every Call as a
	// request; the simulated-cycle Channel counts per-direction crossings
	// instead.  Whichever moved this interval is the submission stream.
	s.DSubmissions = sub(s.Requests, p[telemetry.MetricHotCallRequests])
	if s.DSubmissions == 0 {
		s.DSubmissions = sub(s.HotECalls, p[telemetry.MetricHotECalls]) +
			sub(s.HotOCalls, p[telemetry.MetricHotOCalls])
	}
	s.DTimeouts = sub(s.Timeouts, p[telemetry.MetricHotCallTimeouts])
	s.DFallbacks = sub(s.Fallbacks, p[telemetry.MetricHotCallFallbacks])
	s.DPolls = sub(s.Polls, p[telemetry.MetricResponderPolls])
	s.DExecutes = sub(s.Executes, p[telemetry.MetricResponderExecutes])
	s.DSpinCycles = sub(s.SpinCycles, p[telemetry.MetricSpinCycles])
	s.DEPCFaults = sub(s.EPCFaults, p[telemetry.MetricEPCFaults])
	s.DEPCEvicts = sub(s.EPCEvictions, p[telemetry.MetricEPCEvictions])
	s.DEPCWrbacks = sub(s.EPCWritebacks, p[telemetry.MetricEPCWritebacks])
	s.DScaleUps = sub(s.ScaleUps, p[telemetry.MetricPoolScaleUps])
	s.DScaleDowns = sub(s.ScaleDowns, p[telemetry.MetricPoolScaleDowns])

	// The request counter increments per Call/Submit attempt whether or
	// not submission succeeded, so the rates are per attempted call.
	s.TimeoutRate = ratio(s.DTimeouts, s.DSubmissions)
	s.FallbackRate = ratio(s.DFallbacks, s.DSubmissions)
	s.Occupancy = ratio(s.DExecutes, s.DPolls)
	dHits := sub(s.MEEHits, p[telemetry.MetricMEENodeHits])
	dMiss := sub(s.MEEMisses, p[telemetry.MetricMEENodeMiss])
	s.MEEHitRate = ratio(dHits, dHits+dMiss)

	if sa.rec != nil {
		cur := sa.rec.Snapshot()
		d := cur.Sub(sa.prevDist)
		sa.prevDist = cur
		s.HiRes = true
		s.LatencyCount = d.Total
		if d.Total > 0 {
			s.LatencyP50 = uint64(d.Quantile(0.50))
			s.LatencyP95 = uint64(d.Quantile(0.95))
			s.LatencyP99 = uint64(d.Quantile(0.99))
			s.LatencyP999 = uint64(d.Quantile(0.999))
		}
	} else {
		lat := snap.Histograms[telemetry.MetricHotCallCycles].
			Sub(sa.prev.Histograms[telemetry.MetricHotCallCycles])
		s.LatencyCount = lat.Count
		if lat.Count > 0 {
			s.LatencyP50 = lat.Quantile(0.50)
			s.LatencyP95 = lat.Quantile(0.95)
			s.LatencyP99 = lat.Quantile(0.99)
		}
	}
	sa.prev = snap
	return s
}

package monitor

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"hotcalls/internal/flight"
	"hotcalls/internal/telemetry"
)

// flightClock is a deterministic flight.Options.Now source.
type flightClock struct{ ns atomic.Uint64 }

func newFlightClock() *flightClock {
	c := &flightClock{}
	c.ns.Store(1)
	return c
}

func (c *flightClock) now() uint64      { return c.ns.Load() }
func (c *flightClock) advance(d uint64) { c.ns.Add(d) }

// driveCalls runs n complete calls through the recorder on shard 0.
func driveCalls(f *flight.Recorder, cs flight.Callsite, clk *flightClock, n int) {
	for i := 0; i < n; i++ {
		rec := f.Begin(cs, 0, 1)
		clk.advance(500)
		rec.Return(clk.now())
	}
}

// driveTimeouts runs n timed-out submission attempts.
func driveTimeouts(f *flight.Recorder, cs flight.Callsite, clk *flightClock, n int) {
	for i := 0; i < n; i++ {
		rec := f.Begin(cs, 0, 1)
		clk.advance(500)
		f.Timeout(cs, 0, rec)
	}
}

func eventsByRule(events []Event, rule string) []Event {
	var out []Event
	for _, e := range events {
		if e.Rule == rule {
			out = append(out, e)
		}
	}
	return out
}

// TestCallsiteStormRule checks that the callsite-scoped storm rule
// names exactly the degrading callsite, leaving its healthy neighbour
// alone.
func TestCallsiteStormRule(t *testing.T) {
	clk := newFlightClock()
	f := flight.New(flight.Options{Now: clk.now, SampleEvery: 1})
	f.Bind(1)
	stormy := f.Callsite("storm.path")
	healthy := f.Callsite("healthy.path")

	m := New(nil, Options{Flight: f})
	m.Tick() // baseline

	clk.advance(1e9)
	driveCalls(f, stormy, clk, 10)
	driveTimeouts(f, stormy, clk, 10)
	driveCalls(f, healthy, clk, 20)
	m.Tick()

	storms := eventsByRule(m.Events(), "callsite-storm")
	if len(storms) != 1 {
		t.Fatalf("want exactly 1 callsite-storm event, got %d: %+v", len(storms), storms)
	}
	e := storms[0]
	if !strings.Contains(e.Diagnosis, `"storm.path"`) {
		t.Fatalf("diagnosis does not name the stormy callsite: %q", e.Diagnosis)
	}
	if strings.Contains(e.Diagnosis, "healthy.path") {
		t.Fatalf("diagnosis blames the healthy callsite: %q", e.Diagnosis)
	}
	// 10 of 20 attempts timed out: past the 25% critical threshold.
	if e.Severity != Critical {
		t.Fatalf("severity = %v, want Critical", e.Severity)
	}
	if e.Value < 0.49 || e.Value > 0.51 {
		t.Fatalf("storm rate = %v, want ~0.5", e.Value)
	}
}

// TestCallsiteStormRuleIntervalScoped checks that the rule diffs
// consecutive samples: a past storm that has stopped must not re-fire
// off the cumulative counters.
func TestCallsiteStormRuleIntervalScoped(t *testing.T) {
	clk := newFlightClock()
	f := flight.New(flight.Options{Now: clk.now, SampleEvery: 1})
	f.Bind(1)
	cs := f.Callsite("recovered.path")

	m := New(nil, Options{Flight: f})
	m.Tick()
	clk.advance(1e9)
	driveTimeouts(f, cs, clk, 20)
	m.Tick() // storm fires here
	before := len(eventsByRule(m.Events(), "callsite-storm"))
	if before != 1 {
		t.Fatalf("want 1 storm event after the storm interval, got %d", before)
	}

	clk.advance(1e9)
	driveCalls(f, cs, clk, 50) // clean interval
	m.Tick()
	if after := len(eventsByRule(m.Events(), "callsite-storm")); after != before {
		t.Fatalf("clean interval re-fired the storm rule: %d -> %d events", before, after)
	}
}

// TestCallsiteSpinWasteRule checks that attributed wasted spin on a
// rare callsite raises the demotion warning.
func TestCallsiteSpinWasteRule(t *testing.T) {
	clk := newFlightClock()
	f := flight.New(flight.Options{Now: clk.now, SampleEvery: 1})
	f.Bind(1)
	cold := f.Callsite("cold.poll")

	var polls atomic.Uint64
	f.SetOccupancySource(func() (uint64, uint64) { return polls.Load(), 0 })

	m := New(nil, Options{Flight: f})
	m.Tick() // baseline, primes the digest window

	clk.advance(10e9) // 10s: 2 arrivals -> 0.2/s EWMA, under the 1/s cap
	driveCalls(f, cold, clk, 2)
	polls.Store(50000)
	m.Tick()

	wastes := eventsByRule(m.Events(), "callsite-spin-waste")
	if len(wastes) != 1 {
		t.Fatalf("want exactly 1 callsite-spin-waste event, got %d: %+v", len(wastes), wastes)
	}
	e := wastes[0]
	if !strings.Contains(e.Diagnosis, `"cold.poll"`) {
		t.Fatalf("diagnosis does not name the cold callsite: %q", e.Diagnosis)
	}
	if e.Value < 49000 {
		t.Fatalf("attributed waste = %v, want ~50000", e.Value)
	}
}

// TestCallsiteSpinWasteSparesBusyCallsite checks the rate cap: a busy
// callsite sharing the fabric is not the demotion candidate even when
// waste is attributed to it.
func TestCallsiteSpinWasteSparesBusyCallsite(t *testing.T) {
	clk := newFlightClock()
	f := flight.New(flight.Options{Now: clk.now, SampleEvery: 1})
	f.Bind(1)
	busy := f.Callsite("busy.path")

	var polls atomic.Uint64
	f.SetOccupancySource(func() (uint64, uint64) { return polls.Load(), 0 })

	m := New(nil, Options{Flight: f})
	m.Tick()
	clk.advance(1e9)
	driveCalls(f, busy, clk, 1000) // 1000/s, far over the 1/s cap
	polls.Store(50000)
	m.Tick()

	if wastes := eventsByRule(m.Events(), "callsite-spin-waste"); len(wastes) != 0 {
		t.Fatalf("busy callsite flagged as waste candidate: %+v", wastes)
	}
}

// TestRenderTextGaugeUnitsAndCallsites checks the fixed header line
// (gauges with units, pool occupancy) and the per-callsite section.
func TestRenderTextGaugeUnitsAndCallsites(t *testing.T) {
	reg := telemetry.New()
	reg.Gauge(telemetry.MetricPendingDepth).Set(3)
	reg.Gauge(telemetry.MetricEPCResident).Set(128)
	reg.Gauge(telemetry.MetricPoolResponders).Set(2)
	reg.Gauge(telemetry.MetricPoolRespondersMax).Set(8)
	reg.Gauge(telemetry.MetricPoolOccupancyMilli).Set(413)

	clk := newFlightClock()
	f := flight.New(flight.Options{Now: clk.now, SampleEvery: 1})
	f.Bind(1)
	cs := f.Callsite("mc.get")

	m := New(reg, Options{Flight: f})
	m.Tick()
	clk.advance(1e9)
	driveCalls(f, cs, clk, 8)
	m.Tick()

	out := m.RenderText(5)
	for _, want := range []string{
		"depth 3 calls",
		"epc 128 pages",
		"pool 2/8 responders",
		"occupancy 0.413",
		"callsites:",
		"mc.get",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderText missing %q:\n%s", want, out)
		}
	}
}

// TestRenderTextNoPoolNoCallsites checks that the pool clause and the
// callsite section stay absent when neither a fabric nor a recorder is
// attached.
func TestRenderTextNoPoolNoCallsites(t *testing.T) {
	m := New(telemetry.New(), Options{})
	m.Tick()
	out := m.RenderText(5)
	if strings.Contains(out, "pool ") || strings.Contains(out, "callsites:") {
		t.Fatalf("unattached monitor rendered pool/callsite sections:\n%s", out)
	}
	if !strings.Contains(out, "depth 0 calls") || !strings.Contains(out, "epc 0 pages") {
		t.Fatalf("gauge units missing from header:\n%s", out)
	}
}

// TestMuxFlightEndpoint checks that Mux serves /debug/flight exactly
// when a recorder is attached.
func TestMuxFlightEndpoint(t *testing.T) {
	clk := newFlightClock()
	f := flight.New(flight.Options{Now: clk.now, SampleEvery: 1})
	f.Bind(1)
	driveCalls(f, f.Callsite("mc.get"), clk, 4)

	reg := telemetry.New()
	withFlight := httptest.NewServer(Mux(reg, New(reg, Options{Flight: f})))
	defer withFlight.Close()
	resp, err := http.Get(withFlight.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flight status = %d, want 200", resp.StatusCode)
	}
	var dump struct {
		Callsites []flight.CallsiteStats `json:"callsites"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("decode /debug/flight: %v", err)
	}
	if len(dump.Callsites) != 1 || dump.Callsites[0].Name != "mc.get" {
		t.Fatalf("unexpected callsite table: %+v", dump.Callsites)
	}

	without := httptest.NewServer(Mux(reg, New(reg, Options{})))
	defer without.Close()
	resp2, err := http.Get(without.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/flight without recorder status = %d, want 404", resp2.StatusCode)
	}
}

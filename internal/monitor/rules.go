package monitor

import (
	"fmt"
	"time"

	"hotcalls/internal/epc"
	"hotcalls/internal/epcstat"
	"hotcalls/internal/flight"
)

// Severity grades an event: Info is context, Warning is degradation that
// deserves a look, Critical is an SLO-relevant failure mode in progress.
type Severity int

const (
	Info Severity = iota
	Warning
	Critical
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	}
	return "unknown"
}

// Event is one structured finding from a rule evaluation: which rule, how
// bad, the triggering value against its threshold, and a human-readable
// diagnosis that names the likely cause and the fix.
type Event struct {
	Rule      string    `json:"rule"`
	Severity  Severity  `json:"severity"`
	Seq       int       `json:"seq"` // sample the event fired on
	At        time.Time `json:"at"`
	Value     float64   `json:"value"`
	Threshold float64   `json:"threshold"`
	Diagnosis string    `json:"diagnosis"`
}

// Rule evaluates a window of samples (oldest first, newest last) and
// returns zero or more events anchored on the newest sample.
type Rule interface {
	Name() string
	Evaluate(window []Sample) []Event
}

// Thresholds collects every default-rule knob in one place so callers
// can tune a single struct instead of assembling rules by hand.
type Thresholds struct {
	// Fallback storm (responder asleep/overloaded).
	StormMinAttempts uint64  // ignore intervals with fewer submission attempts
	StormWarnRate    float64 // timeout-or-fallback fraction → Warning
	StormCritRate    float64 // → Critical

	// Spin-waste budget (the dedicated polling core's economics).
	SpinMinPolls      uint64  // ignore intervals with fewer polls
	SpinWarnOccupancy float64 // occupancy below this → Warning
	SpinCritOccupancy float64 // → Critical
	SpinPerCallBudget float64 // simulated sync cycles per HotCall → Warning

	// Latency SLO burn rate (multiwindow).
	SLOObjectiveP99 uint64 // interval p99 objective in cycles
	// SLOObjectiveP999 gates the interval p99.9 when the sample carries a
	// high-resolution distribution (Options.LatencyDist); coarse samples
	// fall back to the p99 objective.
	SLOObjectiveP999 uint64
	SLOMinCount      uint64  // min latency observations for an interval to count
	SLOFastWindow    int     // samples in the fast window
	SLOSlowWindow    int     // samples in the slow window
	SLOFastBurn      float64 // breaching fraction of the fast window
	SLOSlowBurn      float64 // breaching fraction of the slow window

	// EPC thrash.
	EPCWarnEvictions uint64 // interval evictions → Warning
	EPCCritEvictions uint64 // → Critical

	// EPC oversubscription early warning (epcstat collector attached).
	EPCOversubWarnFrac float64 // summed WSS / capacity → Warning
	EPCOversubCritFrac float64 // → Critical
	EPCOversubMinPages uint64  // ignore estimates below this WSS

	// EPC victim interference (epcstat collector attached).
	EPCInterfMinEvicts   uint64  // ignore intervals with fewer total evictions
	EPCInterfVictimShare float64 // owner's share of interval evictions
	EPCInterfCauseRatio  float64 // fraction of its evictions caused by others

	// Responder-pool saturation (the adaptive fabric's ceiling).
	PoolSatOccupancy float64 // window occupancy at max responders → Warning

	// Callsite-scoped rules (flight recorder attached).
	CallsiteMinCalls     uint64  // ignore callsites with fewer interval arrivals
	CallsiteWastePolls   float64 // attributed wasted polls per interval → Warning
	CallsiteWasteMaxRate float64 // only callsites at or below this EWMA rate are charged

	// Shadow-routing regret (what-if observatory attached): the
	// interval regret of the single worst-routed callsite, in cycles.
	RegretWarnCycles float64 // → Warning
	RegretCritCycles float64 // → Critical
}

// DefaultThresholds returns the stock tuning.  The latency objective is
// ~3.3x the paper's 620-cycle HotCall median: comfortably above healthy
// jitter, far below the ~8,600-cycle fallback ecall that a storm mixes
// into the distribution.
func DefaultThresholds() Thresholds {
	return Thresholds{
		StormMinAttempts: 10,
		StormWarnRate:    0.05,
		StormCritRate:    0.25,

		SpinMinPolls:      1000,
		SpinWarnOccupancy: 0.01,
		SpinCritOccupancy: 0.001,
		SpinPerCallBudget: 2048,

		SLOObjectiveP99:  2048,
		SLOObjectiveP999: 4096,
		SLOMinCount:      8,
		SLOFastWindow:    3,
		SLOSlowWindow:    12,
		SLOFastBurn:      0.67,
		SLOSlowBurn:      0.25,

		EPCWarnEvictions: 256,
		EPCCritEvictions: 4096,

		EPCOversubWarnFrac: 0.85,
		EPCOversubCritFrac: 1.0,
		EPCOversubMinPages: 64,

		EPCInterfMinEvicts:   64,
		EPCInterfVictimShare: 0.5,
		EPCInterfCauseRatio:  0.75,

		PoolSatOccupancy: 0.5, // the controller's default scale-up watermark

		CallsiteMinCalls:     10,
		CallsiteWastePolls:   1000,
		CallsiteWasteMaxRate: 1,

		// 1M cycles is 250µs of core time per interval (0.1% of a core
		// at the default 250ms cadence) — worth a look.  100M cycles is
		// a tenth of a core burned every interval — act.
		RegretWarnCycles: 1e6,
		RegretCritCycles: 1e8,
	}
}

// DefaultRules returns the standard rule set under the given thresholds.
func DefaultRules(t Thresholds) []Rule {
	return []Rule{
		&FallbackStormRule{T: t},
		&SpinWasteRule{T: t},
		&LatencySLORule{T: t},
		&EPCThrashRule{T: t},
		&PoolSaturationRule{T: t},
	}
}

// EPCRules returns the EPC-scoped rule set — the oversubscription early
// warning and the victim-interference attribution rule, both reading the
// epcstat snapshot that Options.EPC embeds in every sample.  They are
// appended to DefaultRules automatically when a collector is attached
// and Options.Rules is nil.
func EPCRules(t Thresholds) []Rule {
	return []Rule{
		&EPCOversubscriptionRule{T: t},
		&EPCVictimInterferenceRule{T: t},
	}
}

// FlightRules returns the callsite-scoped rule set — the per-callsite
// variants of the fallback-storm and spin-waste rules, reading the
// flight recorder's stats table that Options.Flight embeds in every
// sample.  They are appended to DefaultRules automatically when a
// recorder is attached and Options.Rules is nil.
func FlightRules(t Thresholds) []Rule {
	return []Rule{
		&CallsiteStormRule{T: t},
		&CallsiteSpinWasteRule{T: t},
	}
}

// WhatIfRules returns the shadow-routing rule set — the routing-regret
// rule reading the RouterSnapshot that Options.WhatIf embeds in every
// sample.  Appended to DefaultRules automatically when an observatory
// is attached and Options.Rules is nil.
func WhatIfRules(t Thresholds) []Rule {
	return []Rule{
		&RoutingRegretRule{T: t},
	}
}

// newest returns the last sample of the window, or nil on an empty one.
func newest(window []Sample) *Sample {
	if len(window) == 0 {
		return nil
	}
	return &window[len(window)-1]
}

// FallbackStormRule detects the paper's explicit operational hazard
// (Section 4.2, "Preventing starvation"): when the responder sleeps or
// is overloaded, requesters exhaust their submission attempts and every
// timed-out HotCall degrades into a regular SDK call — a 13-27x latency
// cliff that a raw throughput graph hides until saturation.
type FallbackStormRule struct{ T Thresholds }

// Name implements Rule.
func (r *FallbackStormRule) Name() string { return "fallback-storm" }

// Evaluate implements Rule.
func (r *FallbackStormRule) Evaluate(window []Sample) []Event {
	s := newest(window)
	if s == nil {
		return nil
	}
	attempts := s.DSubmissions
	if attempts < r.T.StormMinAttempts {
		return nil
	}
	rate := s.TimeoutRate
	if s.FallbackRate > rate {
		rate = s.FallbackRate
	}
	if rate < r.T.StormWarnRate {
		return nil
	}
	sev, threshold := Warning, r.T.StormWarnRate
	if rate >= r.T.StormCritRate {
		sev, threshold = Critical, r.T.StormCritRate
	}
	return []Event{{
		Rule: r.Name(), Severity: sev, Seq: s.Seq, At: s.When,
		Value: rate, Threshold: threshold,
		Diagnosis: fmt.Sprintf(
			"responder asleep or overloaded: %.1f%% of HotCall submission attempts timed out "+
				"(%d timeouts, %d fallbacks / %d attempts this interval); each fallback trades a "+
				"~620-cycle HotCall for a ~8,600-cycle SDK ecall — check that the responder "+
				"goroutine is running, its core is not oversubscribed, and IdleTimeout is not "+
				"parking it under live traffic",
			rate*100, s.DTimeouts, s.DFallbacks, attempts),
	}}
}

// SpinWasteRule budgets the price of the paper's core-for-latency trade
// (Section 4.2, "Maximizing utilization"): the dedicated responder core
// burns cycles on every empty poll, and an occupancy collapse means the
// burned core is buying nothing.  It also watches the simulated-channel
// per-call synchronization cycles against a budget — a slow responder
// pickup inflates every requester's observed latency.
type SpinWasteRule struct{ T Thresholds }

// Name implements Rule.
func (r *SpinWasteRule) Name() string { return "spin-waste" }

// Evaluate implements Rule.
func (r *SpinWasteRule) Evaluate(window []Sample) []Event {
	s := newest(window)
	if s == nil {
		return nil
	}
	var events []Event
	if s.DPolls >= r.T.SpinMinPolls && s.Occupancy < r.T.SpinWarnOccupancy {
		sev, threshold := Warning, r.T.SpinWarnOccupancy
		if s.Occupancy < r.T.SpinCritOccupancy {
			sev, threshold = Critical, r.T.SpinCritOccupancy
		}
		wasted := s.DPolls - s.DExecutes
		events = append(events, Event{
			Rule: r.Name(), Severity: sev, Seq: s.Seq, At: s.When,
			Value: s.Occupancy, Threshold: threshold,
			Diagnosis: fmt.Sprintf(
				"responder occupancy %.4f: %d of %d polls found no work this interval; the "+
					"dedicated polling core is burning its budget idle — share the responder "+
					"across more requesters or enable IdleTimeout sleeping",
				s.Occupancy, wasted, s.DPolls),
		})
	}
	if s.DSubmissions > 0 && s.DSpinCycles > 0 {
		perCall := float64(s.DSpinCycles) / float64(s.DSubmissions)
		if perCall > r.T.SpinPerCallBudget {
			events = append(events, Event{
				Rule: r.Name(), Severity: Warning, Seq: s.Seq, At: s.When,
				Value: perCall, Threshold: r.T.SpinPerCallBudget,
				Diagnosis: fmt.Sprintf(
					"HotCall synchronization averaged %.0f cycles/call this interval (budget %.0f): "+
						"requesters are spinning long on submission or completion — the responder is "+
						"slow to pick up work, likely preempted or servicing too many channels",
					perCall, r.T.SpinPerCallBudget),
			})
		}
	}
	return events
}

// LatencySLORule is a multiwindow burn-rate alert on the HotCall
// interval p99: an interval "burns" when its p99 exceeds the objective.
// Requiring both a fast window (catches an active regression quickly)
// and a slow window (suppresses one-interval blips) to burn is the
// standard fast/slow SLO construction.
type LatencySLORule struct{ T Thresholds }

// Name implements Rule.
func (r *LatencySLORule) Name() string { return "latency-slo" }

// burning reports whether a sample is eligible and breaches its
// objective: the p99.9 against SLOObjectiveP999 on high-resolution
// samples, the interpolated p99 against SLOObjectiveP99 otherwise.
func (r *LatencySLORule) burning(s Sample) (eligible, breach bool) {
	if s.LatencyCount < r.T.SLOMinCount {
		return false, false
	}
	if s.HiRes && r.T.SLOObjectiveP999 > 0 {
		return true, s.LatencyP999 > r.T.SLOObjectiveP999
	}
	return true, s.LatencyP99 > r.T.SLOObjectiveP99
}

// burnRate returns the breaching fraction over the last n samples of the
// window, counting only eligible samples.
func (r *LatencySLORule) burnRate(window []Sample, n int) (rate float64, eligible int) {
	start := len(window) - n
	if start < 0 {
		start = 0
	}
	var breaches int
	for _, s := range window[start:] {
		ok, breach := r.burning(s)
		if !ok {
			continue
		}
		eligible++
		if breach {
			breaches++
		}
	}
	if eligible == 0 {
		return 0, 0
	}
	return float64(breaches) / float64(eligible), eligible
}

// Evaluate implements Rule.
func (r *LatencySLORule) Evaluate(window []Sample) []Event {
	s := newest(window)
	if s == nil {
		return nil
	}
	fast, fastN := r.burnRate(window, r.T.SLOFastWindow)
	slow, _ := r.burnRate(window, r.T.SLOSlowWindow)
	if fastN == 0 || fast < r.T.SLOFastBurn {
		return nil
	}
	sev := Warning
	if slow >= r.T.SLOSlowBurn {
		sev = Critical
	}
	quantile, value, objective := "p99", s.LatencyP99, r.T.SLOObjectiveP99
	if s.HiRes && r.T.SLOObjectiveP999 > 0 {
		quantile, value, objective = "p99.9", s.LatencyP999, r.T.SLOObjectiveP999
	}
	return []Event{{
		Rule: r.Name(), Severity: sev, Seq: s.Seq, At: s.When,
		Value: float64(value), Threshold: float64(objective),
		Diagnosis: fmt.Sprintf(
			"HotCall %s %d cycles over the %d-cycle objective; burn rate %.0f%% fast / %.0f%% slow "+
				"window — sustained tail regression, not a blip (look for fallback storms, EPC "+
				"thrash, or a preempted responder in the same windows)",
			quantile, value, objective, fast*100, slow*100),
	}}
}

// PoolSaturationRule watches the adaptive responder pool's ceiling: the
// controller grows the pool while occupancy stays above its watermark,
// so a pool sitting *at* MaxResponders with occupancy still above the
// watermark has no headroom left — demand outruns the configured core
// budget, and the next step is submission timeouts degrading calls onto
// the SDK-fallback cliff.  Timeouts in the same interval escalate the
// event to Critical because that cliff is already being paid.
type PoolSaturationRule struct{ T Thresholds }

// Name implements Rule.
func (r *PoolSaturationRule) Name() string { return "pool-saturation" }

// Evaluate implements Rule.
func (r *PoolSaturationRule) Evaluate(window []Sample) []Event {
	s := newest(window)
	if s == nil || s.PoolRespondersMax == 0 {
		return nil // no fabric attached to this registry
	}
	if s.PoolResponders < s.PoolRespondersMax {
		return nil // headroom remains; the controller can still grow
	}
	occ := float64(s.PoolOccupancyMilli) / 1000
	if occ < r.T.PoolSatOccupancy {
		return nil
	}
	sev := Warning
	if s.DTimeouts > 0 {
		sev = Critical
	}
	return []Event{{
		Rule: r.Name(), Severity: sev, Seq: s.Seq, At: s.When,
		Value: occ, Threshold: r.T.PoolSatOccupancy,
		Diagnosis: fmt.Sprintf(
			"responder pool saturated: %d/%d responders live with window occupancy %.2f still "+
				"over the %.2f scale-up watermark (%d timeouts this interval); the adaptive "+
				"controller has no headroom left — raise MaxResponders (more polling cores), "+
				"widen requester windows, or shed load before submissions start falling back "+
				"to SDK calls",
			s.PoolResponders, s.PoolRespondersMax, occ, r.T.PoolSatOccupancy, s.DTimeouts),
	}}
}

// EPCThrashRule alarms on paging storms: every eviction is an EWB
// (encrypt + MAC + write-out) and every re-touch an ELDU, the ~40,000x
// memory-access cliff of the paper's Section 6.3 libquantum discussion.
// A sustained eviction rate means the working set has outgrown the EPC.
type EPCThrashRule struct{ T Thresholds }

// Name implements Rule.
func (r *EPCThrashRule) Name() string { return "epc-thrash" }

// Evaluate implements Rule.
func (r *EPCThrashRule) Evaluate(window []Sample) []Event {
	s := newest(window)
	if s == nil || s.DEPCEvicts < r.T.EPCWarnEvictions {
		return nil
	}
	sev, threshold := Warning, r.T.EPCWarnEvictions
	if s.DEPCEvicts >= r.T.EPCCritEvictions {
		sev, threshold = Critical, r.T.EPCCritEvictions
	}
	return []Event{{
		Rule: r.Name(), Severity: sev, Seq: s.Seq, At: s.When,
		Value: float64(s.DEPCEvicts), Threshold: float64(threshold),
		Diagnosis: fmt.Sprintf(
			"EPC thrash: %d evictions (%d faults) this interval with %d pages resident; the "+
				"enclave working set has outgrown the EPC, so every spill pays EWB+ELDU "+
				"sealing — shrink the secure heap or shard the workload across enclaves",
			s.DEPCEvicts, s.DEPCFaults, s.EPCResident),
	}}
}

// prevEPC returns the previous sample's EPC snapshot, or nil when the
// window has no previous sample (or no collector was attached then).
func prevEPC(window []Sample) *epcstat.Snapshot {
	if len(window) < 2 {
		return nil
	}
	return window[len(window)-2].EPC
}

// epcOwnerName formats an owner for diagnoses: the label when one was
// registered, the raw ID otherwise.
func epcOwnerName(owner epc.OwnerID, label string) string {
	if label != "" {
		return fmt.Sprintf("%s(#%d)", label, owner)
	}
	return fmt.Sprintf("#%d", owner)
}

// EPCOversubscriptionRule is the early warning EPCThrashRule cannot give:
// thrash fires on the eviction storm already in progress, while this rule
// compares the observatory's summed per-owner working-set estimates
// against EPC capacity and fires while the working set is still *growing
// toward* the cliff — pages are being faulted in but nothing is being
// evicted yet, so there is still time to shed load or shrink heaps
// before every access starts paying EWB+ELDU.  Fires on the newest
// sample's snapshot (WSS is an at-time estimate, not an interval delta).
type EPCOversubscriptionRule struct{ T Thresholds }

// Name implements Rule.
func (r *EPCOversubscriptionRule) Name() string { return "epc-oversubscription" }

// Evaluate implements Rule.
func (r *EPCOversubscriptionRule) Evaluate(window []Sample) []Event {
	s := newest(window)
	if s == nil || s.EPC == nil || s.EPC.CapacityPages == 0 {
		return nil
	}
	wss := s.EPC.WSSPages
	if wss < r.T.EPCOversubMinPages {
		return nil
	}
	frac := float64(wss) / float64(s.EPC.CapacityPages)
	if frac < r.T.EPCOversubWarnFrac {
		return nil
	}
	sev, threshold := Warning, r.T.EPCOversubWarnFrac
	if frac >= r.T.EPCOversubCritFrac {
		sev, threshold = Critical, r.T.EPCOversubCritFrac
	}
	top := ""
	var topWSS uint64
	for _, o := range s.EPC.Owners {
		if o.WSSPages > topWSS {
			topWSS = o.WSSPages
			top = epcOwnerName(o.Owner, o.Label)
		}
	}
	return []Event{{
		Rule: r.Name(), Severity: sev, Seq: s.Seq, At: s.When,
		Value: frac, Threshold: threshold,
		Diagnosis: fmt.Sprintf(
			"EPC oversubscription imminent: summed working-set estimate %d pages is %.0f%% of the "+
				"%d-page EPC (largest owner %s at ~%d pages); once the working set crosses capacity "+
				"every access degrades to a ~%d-cycle fault — shed tenants, shrink secure heaps, or "+
				"shard across enclaves *now*, before the eviction storm",
			wss, frac*100, s.EPC.CapacityPages, top, topWSS, epc.FaultCost+epc.EWBCost),
	}}
}

// EPCVictimInterferenceRule attributes paging pain: an owner whose pages
// dominate the interval's evictions, mostly forced out by *other*
// owners' faults, is being starved of EPC residency by its neighbours —
// the noisy-neighbour signal the ROADMAP's EPC-aware placement policy
// needs.  It diffs consecutive samples' interference matrices, so it
// fires only with an epcstat collector attached (Options.EPC).
type EPCVictimInterferenceRule struct{ T Thresholds }

// Name implements Rule.
func (r *EPCVictimInterferenceRule) Name() string { return "epc-victim-interference" }

// Evaluate implements Rule.
func (r *EPCVictimInterferenceRule) Evaluate(window []Sample) []Event {
	s := newest(window)
	if s == nil || s.EPC == nil {
		return nil
	}
	d := s.EPC.Sub(prevEPC(window))
	if d.Evictions < r.T.EPCInterfMinEvicts {
		return nil
	}
	// Interval evictions of each victim forced by other owners' faults,
	// and the single worst culprit per victim for the diagnosis.
	labels := map[epc.OwnerID]string{}
	for _, o := range d.Owners {
		labels[o.Owner] = o.Label
	}
	byOthers := map[epc.OwnerID]uint64{}
	topCulprit := map[epc.OwnerID]epc.OwnerID{}
	topCount := map[epc.OwnerID]uint64{}
	for _, cell := range d.Interference {
		if cell.Culprit == cell.Victim {
			continue
		}
		byOthers[cell.Victim] += cell.Evictions
		if cell.Evictions > topCount[cell.Victim] {
			topCount[cell.Victim] = cell.Evictions
			topCulprit[cell.Victim] = cell.Culprit
		}
	}
	var events []Event
	for _, o := range d.Owners {
		if o.Evictions == 0 {
			continue
		}
		share := float64(o.Evictions) / float64(d.Evictions)
		caused := float64(byOthers[o.Owner]) / float64(o.Evictions)
		if share < r.T.EPCInterfVictimShare || caused < r.T.EPCInterfCauseRatio {
			continue
		}
		culprit := topCulprit[o.Owner]
		events = append(events, Event{
			Rule: r.Name(), Severity: Warning, Seq: s.Seq, At: s.When,
			Value: caused, Threshold: r.T.EPCInterfCauseRatio,
			Diagnosis: fmt.Sprintf(
				"owner %s is the EPC victim: %d of the interval's %d evictions hit its pages "+
					"(%.0f%% share) and %.0f%% of those were forced by other owners' faults, "+
					"chiefly %s (%d evictions) — a noisy neighbour is evicting its working set; "+
					"throttle the culprit or reserve residency for the victim",
				epcOwnerName(o.Owner, o.Label), o.Evictions, d.Evictions,
				share*100, caused*100, epcOwnerName(culprit, labels[culprit]), topCount[o.Owner]),
		})
	}
	return events
}

// RoutingRegretRule reads the shadow router's interval verdict: when
// the worst-routed callsite's cycles-of-regret — the predicted core
// time its declared static policy wastes against the shadow-optimal
// one — crosses the budget, the rule names the callsite, the policy it
// is on, and the policy the estimator would route it to.  This is the
// actionable half of the what-if observatory: the regret metric is
// validated against brute-force replay (internal/whatif, ≥95% ordering
// agreement), so the recommendation is a measured reroute, not a
// heuristic.  Fires only with an observatory attached (Options.WhatIf).
type RoutingRegretRule struct{ T Thresholds }

// Name implements Rule.
func (r *RoutingRegretRule) Name() string { return "routing-regret" }

// Evaluate implements Rule.
func (r *RoutingRegretRule) Evaluate(window []Sample) []Event {
	s := newest(window)
	if s == nil || s.WhatIf == nil {
		return nil
	}
	w := s.WhatIf.Worst()
	if w == nil || w.RegretCycles < r.T.RegretWarnCycles {
		return nil
	}
	sev, threshold := Warning, r.T.RegretWarnCycles
	if w.RegretCycles >= r.T.RegretCritCycles {
		sev, threshold = Critical, r.T.RegretCritCycles
	}
	return []Event{{
		Rule: r.Name(), Severity: sev, Seq: s.Seq, At: s.When,
		Value: w.RegretCycles, Threshold: threshold,
		Diagnosis: fmt.Sprintf(
			"callsite %q is mis-routed: its static %s routing cost ~%.0f cycles more than the "+
				"shadow-optimal %s policy this interval (%.0f calls/s at %.0fns service; interval "+
				"regret %.2gM cycles, cumulative %.2gM) — reroute it to %s, or tune CostParams if "+
				"the fabric's economics have drifted",
			w.Site, w.Current, w.RegretCycles, w.Best, w.RatePerS, w.ServiceNS,
			s.WhatIf.IntervalRegretCycles/1e6, s.WhatIf.CumRegretCycles/1e6, w.Best),
	}}
}

// prevCallsites indexes the previous sample's callsite rows by ID so
// the callsite rules can diff cumulative counters into interval
// deltas.  Returns nil when the window has no previous sample.
func prevCallsites(window []Sample) map[int]flight.CallsiteStats {
	if len(window) < 2 {
		return nil
	}
	prev := window[len(window)-2].Callsites
	if len(prev) == 0 {
		return nil
	}
	out := make(map[int]flight.CallsiteStats, len(prev))
	for _, cs := range prev {
		out[cs.ID] = cs
	}
	return out
}

// CallsiteStormRule is the callsite-scoped FallbackStormRule: the
// global rule says *that* HotCalls are degrading onto the SDK-fallback
// cliff, this one says *which callsite* is doing the degrading — the
// attribution the configless dispatcher needs to demote exactly the
// offending call path instead of the whole fabric.  It diffs
// consecutive samples' flight stats tables, so it fires only with a
// flight recorder attached (Options.Flight).
type CallsiteStormRule struct{ T Thresholds }

// Name implements Rule.
func (r *CallsiteStormRule) Name() string { return "callsite-storm" }

// Evaluate implements Rule.
func (r *CallsiteStormRule) Evaluate(window []Sample) []Event {
	s := newest(window)
	if s == nil || len(s.Callsites) == 0 {
		return nil
	}
	prev := prevCallsites(window)
	var events []Event
	for _, cs := range s.Callsites {
		p := prev[cs.ID] // zero row for a callsite's first interval
		dArr := sub(cs.Arrivals, p.Arrivals)
		if dArr < r.T.CallsiteMinCalls {
			continue
		}
		dTo := sub(cs.Timeouts, p.Timeouts)
		dFb := sub(cs.Fallbacks, p.Fallbacks)
		worst := dTo
		if dFb > worst {
			worst = dFb
		}
		rate := float64(worst) / float64(dArr)
		if rate < r.T.StormWarnRate {
			continue
		}
		sev, threshold := Warning, r.T.StormWarnRate
		if rate >= r.T.StormCritRate {
			sev, threshold = Critical, r.T.StormCritRate
		}
		events = append(events, Event{
			Rule: r.Name(), Severity: sev, Seq: s.Seq, At: s.When,
			Value: rate, Threshold: threshold,
			Diagnosis: fmt.Sprintf(
				"callsite %q is storming: %.1f%% of its submission attempts degraded this interval "+
					"(%d timeouts, %d fallbacks / %d attempts; last sampled trace 0x%x) — this call "+
					"path, not the whole fabric, is outrunning its shard's responders; widen its "+
					"window or route it to a hotter shard",
				cs.Name, rate*100, dTo, dFb, dArr, cs.LastTraceID),
		})
	}
	return events
}

// CallsiteSpinWasteRule is the callsite-scoped SpinWasteRule: the
// global rule prices the dedicated polling core's idle budget, this one
// names the callsite being charged for it.  The flight recorder
// attributes each digest window's empty polls across callsites by
// inverse EWMA arrival rate, so a rare callsite that keeps a spinning
// responder alive accumulates attributed waste fast — the "SGX
// Switchless Calls Made Configless" demotion signal.  Fires on
// callsites whose attributed waste grew past the interval budget while
// their arrival rate sits at or below CallsiteWasteMaxRate.
type CallsiteSpinWasteRule struct{ T Thresholds }

// Name implements Rule.
func (r *CallsiteSpinWasteRule) Name() string { return "callsite-spin-waste" }

// Evaluate implements Rule.
func (r *CallsiteSpinWasteRule) Evaluate(window []Sample) []Event {
	s := newest(window)
	if s == nil || len(s.Callsites) == 0 {
		return nil
	}
	prev := prevCallsites(window)
	var events []Event
	for _, cs := range s.Callsites {
		dWaste := cs.WastedSpin - prev[cs.ID].WastedSpin
		if dWaste < r.T.CallsiteWastePolls || cs.RateEWMA > r.T.CallsiteWasteMaxRate {
			continue
		}
		events = append(events, Event{
			Rule: r.Name(), Severity: Warning, Seq: s.Seq, At: s.When,
			Value: dWaste, Threshold: r.T.CallsiteWastePolls,
			Diagnosis: fmt.Sprintf(
				"callsite %q was charged %.0f wasted responder polls this interval at only "+
					"%.2f calls/s — a rare call path keeping a spinning responder alive; it is "+
					"the demotion candidate (sleep-tier routing or a tighter IdleTimeout), not "+
					"the busy callsites sharing its fabric",
				cs.Name, dWaste, cs.RateEWMA),
		})
	}
	return events
}

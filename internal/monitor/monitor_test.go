package monitor

import (
	"strings"
	"sync"
	"testing"

	"hotcalls/internal/core"
	"hotcalls/internal/telemetry"
)

// bump is a test helper that advances a counter by n.
func bump(reg *telemetry.Registry, name string, n uint64) {
	reg.Counter(name).Add(n)
}

func TestSamplerDeltasAndRates(t *testing.T) {
	reg := telemetry.New()
	m := New(reg, Options{})
	m.Tick() // baseline

	bump(reg, telemetry.MetricHotCallRequests, 100)
	bump(reg, telemetry.MetricHotCallTimeouts, 10)
	bump(reg, telemetry.MetricHotCallFallbacks, 8)
	bump(reg, telemetry.MetricResponderPolls, 1000)
	bump(reg, telemetry.MetricResponderExecutes, 90)
	bump(reg, telemetry.MetricSpinCycles, 60000)
	bump(reg, telemetry.MetricMEENodeHits, 75)
	bump(reg, telemetry.MetricMEENodeMiss, 25)
	reg.Gauge(telemetry.MetricEPCResident).Set(42)
	for i := 0; i < 20; i++ {
		reg.Histogram(telemetry.MetricHotCallCycles).Observe(600)
	}
	s := m.Tick()

	if s.DSubmissions != 100 || s.DTimeouts != 10 || s.DFallbacks != 8 {
		t.Fatalf("deltas wrong: %+v", s)
	}
	if s.TimeoutRate != 0.10 || s.FallbackRate != 0.08 {
		t.Fatalf("rates wrong: timeout %.3f fallback %.3f", s.TimeoutRate, s.FallbackRate)
	}
	if s.Occupancy != 0.09 {
		t.Fatalf("occupancy = %.3f, want 0.09", s.Occupancy)
	}
	if s.MEEHitRate != 0.75 {
		t.Fatalf("mee hit rate = %.3f, want 0.75", s.MEEHitRate)
	}
	if s.EPCResident != 42 {
		t.Fatalf("epc resident = %d, want 42", s.EPCResident)
	}
	if s.LatencyCount != 20 || s.LatencyP50 < 512 || s.LatencyP50 > 1023 {
		t.Fatalf("interval latency wrong: count=%d p50=%d", s.LatencyCount, s.LatencyP50)
	}

	// A quiet interval has zero deltas even though the cumulative
	// readings persist.
	q := m.Tick()
	if q.DSubmissions != 0 || q.TimeoutRate != 0 || q.LatencyCount != 0 {
		t.Fatalf("quiet interval should have zero deltas: %+v", q)
	}
	if q.Requests != 100 {
		t.Fatalf("cumulative requests = %d, want 100", q.Requests)
	}
}

func TestSamplerChannelSubmissionsFallback(t *testing.T) {
	// The simulated-cycle Channel counts hot ecalls/ocalls but not the
	// requests counter; the sampler must treat those as submissions.
	reg := telemetry.New()
	m := New(reg, Options{})
	m.Tick()
	bump(reg, telemetry.MetricHotECalls, 30)
	bump(reg, telemetry.MetricHotOCalls, 20)
	s := m.Tick()
	if s.DSubmissions != 50 {
		t.Fatalf("channel submissions = %d, want 50", s.DSubmissions)
	}
}

func TestNilRegistrySamples(t *testing.T) {
	m := New(nil, Options{})
	s := m.Tick()
	if s.Requests != 0 || s.DSubmissions != 0 {
		t.Fatalf("nil registry should sample zeros: %+v", s)
	}
	if h := m.Health(); h.Status != "ok" {
		t.Fatalf("nil registry health = %s", h.Status)
	}
}

func TestRingBounded(t *testing.T) {
	reg := telemetry.New()
	m := New(reg, Options{RingCap: 4})
	for i := 0; i < 10; i++ {
		m.Tick()
	}
	w := m.Window(0)
	if len(w) != 4 {
		t.Fatalf("window = %d samples, want 4", len(w))
	}
	for i, s := range w {
		if s.Seq != 6+i {
			t.Fatalf("window[%d].Seq = %d, want %d (oldest-first after wrap)", i, s.Seq, 6+i)
		}
	}
}

func TestEventLogBounded(t *testing.T) {
	reg := telemetry.New()
	m := New(reg, Options{EventCap: 3})
	m.Tick()
	for i := 0; i < 5; i++ {
		bump(reg, telemetry.MetricEPCEvictions, 5000)
		m.Tick()
	}
	ev := m.Events()
	if len(ev) != 3 {
		t.Fatalf("event log = %d, want 3", len(ev))
	}
	if m.DroppedEvents() == 0 {
		t.Fatal("expected dropped events")
	}
}

// TestFallbackStormOnSleepingResponder is the acceptance test: a
// responder that never picks work up turns every HotCall into a
// timeout→fallback, and the monitor must diagnose it — while the same
// workload with a live responder raises no alerts.
func TestFallbackStormOnSleepingResponder(t *testing.T) {
	reg := telemetry.New()
	var hc core.HotCall
	hc.SetTelemetry(reg)

	// Occupy the slot with an async submission that no responder will
	// ever service — the "responder asleep" condition.
	pending, err := hc.Submit(0, nil)
	if err != nil {
		t.Fatal(err)
	}

	m := New(reg, Options{})
	m.Tick() // baseline

	// Every subsequent call exhausts its submission attempts and falls
	// back to the SDK path.
	var fallbacks int
	for i := 0; i < 50; i++ {
		if _, err := hc.CallOrFallback(0, nil, func() (uint64, error) {
			fallbacks++
			return 0, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if fallbacks != 50 {
		t.Fatalf("fallbacks = %d, want 50", fallbacks)
	}

	s := m.Tick()
	if s.TimeoutRate < 0.9 {
		t.Fatalf("timeout rate = %.3f, want ~1", s.TimeoutRate)
	}
	ev := m.Events()
	var storm *Event
	for i := range ev {
		if ev[i].Rule == "fallback-storm" {
			storm = &ev[i]
		}
	}
	if storm == nil {
		t.Fatalf("fallback-storm rule did not fire; events: %+v", ev)
	}
	if storm.Severity != Critical {
		t.Fatalf("storm severity = %s, want critical", storm.Severity)
	}
	if !strings.Contains(storm.Diagnosis, "responder asleep or overloaded") {
		t.Fatalf("diagnosis does not name the cause: %q", storm.Diagnosis)
	}
	if h := m.Health(); h.Status != "critical" {
		t.Fatalf("health = %s, want critical", h.Status)
	}

	hc.Stop()
	if _, err := pending.Poll(); err == nil {
		t.Fatal("poll after stop should fail")
	}
}

// TestHealthyRunRaisesNoAlerts is the acceptance counterpart: the same
// workload with a live responder stays clean under the default rules.
func TestHealthyRunRaisesNoAlerts(t *testing.T) {
	reg := telemetry.New()
	var hc core.HotCall
	hc.Timeout = 1 << 20
	hc.SetTelemetry(reg)
	r := core.NewResponder(&hc, []func(interface{}) uint64{
		func(interface{}) uint64 { return 7 },
	})
	// Idle sleeping bounds the polls-per-call, keeping responder
	// occupancy well above the spin-waste floor on any scheduler.
	r.IdleTimeout = 20
	r.SetTelemetry(reg)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.Run()
	}()

	m := New(reg, Options{})
	m.Tick()
	for i := 0; i < 200; i++ {
		if _, err := hc.Call(0, nil); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Tick()
	hc.Stop()
	wg.Wait()

	if s.DSubmissions != 200 || s.DTimeouts != 0 {
		t.Fatalf("healthy run deltas wrong: %+v", s)
	}
	if ev := m.Events(); len(ev) != 0 {
		t.Fatalf("healthy run raised alerts: %+v", ev)
	}
	if h := m.Health(); h.Status != "ok" {
		t.Fatalf("health = %s, want ok", h.Status)
	}
}

func TestLatencySLOBurnRate(t *testing.T) {
	reg := telemetry.New()
	th := DefaultThresholds()
	m := New(reg, Options{Rules: []Rule{&LatencySLORule{T: th}}})
	m.Tick()

	// Healthy intervals: p99 well under the objective — no alert even
	// over many samples.
	for i := 0; i < 6; i++ {
		for j := 0; j < 20; j++ {
			reg.Histogram(telemetry.MetricHotCallCycles).Observe(600)
		}
		m.Tick()
	}
	if ev := m.Events(); len(ev) != 0 {
		t.Fatalf("healthy latency raised alerts: %+v", ev)
	}

	// One breaching interval is a blip: the fast window (3) is not yet
	// majority-breaching.
	for j := 0; j < 20; j++ {
		reg.Histogram(telemetry.MetricHotCallCycles).Observe(9000)
	}
	m.Tick()
	if ev := m.Events(); len(ev) != 0 {
		t.Fatalf("single blip should not alert: %+v", ev)
	}

	// Sustained breach: fast window saturates, then the slow window
	// catches up and escalates to critical.
	var sawWarning, sawCritical bool
	for i := 0; i < 6; i++ {
		for j := 0; j < 20; j++ {
			reg.Histogram(telemetry.MetricHotCallCycles).Observe(9000)
		}
		m.Tick()
		for _, e := range m.Events() {
			switch e.Severity {
			case Warning:
				sawWarning = true
			case Critical:
				sawCritical = true
			}
		}
	}
	if !sawCritical {
		t.Fatalf("sustained breach never went critical (warning seen: %v); events: %+v",
			sawWarning, m.Events())
	}
	for _, e := range m.Events() {
		if e.Rule != "latency-slo" {
			t.Fatalf("unexpected rule %q", e.Rule)
		}
		if !strings.Contains(e.Diagnosis, "burn rate") {
			t.Fatalf("diagnosis missing burn rate: %q", e.Diagnosis)
		}
	}
}

func TestEPCThrashRule(t *testing.T) {
	reg := telemetry.New()
	m := New(reg, Options{})
	m.Tick()
	bump(reg, telemetry.MetricEPCEvictions, 500)
	bump(reg, telemetry.MetricEPCFaults, 520)
	reg.Gauge(telemetry.MetricEPCResident).Set(23000)
	m.Tick()
	ev := m.Events()
	if len(ev) != 1 || ev[0].Rule != "epc-thrash" || ev[0].Severity != Warning {
		t.Fatalf("expected one epc-thrash warning, got %+v", ev)
	}
	if !strings.Contains(ev[0].Diagnosis, "working set has outgrown the EPC") {
		t.Fatalf("diagnosis: %q", ev[0].Diagnosis)
	}

	bump(reg, telemetry.MetricEPCEvictions, 10000)
	m.Tick()
	ev = m.Events()
	if ev[len(ev)-1].Severity != Critical {
		t.Fatalf("sustained thrash should be critical: %+v", ev[len(ev)-1])
	}
}

func TestSpinWasteRule(t *testing.T) {
	reg := telemetry.New()
	m := New(reg, Options{})
	m.Tick()
	// A responder burning 100k polls for 10 executes is 0.0001
	// occupancy — below even the critical floor.
	bump(reg, telemetry.MetricResponderPolls, 100000)
	bump(reg, telemetry.MetricResponderExecutes, 10)
	m.Tick()
	ev := m.Events()
	if len(ev) != 1 || ev[0].Rule != "spin-waste" || ev[0].Severity != Critical {
		t.Fatalf("expected critical spin-waste, got %+v", ev)
	}

	// Per-call sync budget: 50 calls costing 200k spin cycles is 4,000
	// cycles/call against the 2,048 budget.
	bump(reg, telemetry.MetricHotECalls, 50)
	bump(reg, telemetry.MetricSpinCycles, 200000)
	m.Tick()
	ev = m.Events()
	last := ev[len(ev)-1]
	if last.Rule != "spin-waste" || !strings.Contains(last.Diagnosis, "cycles/call") {
		t.Fatalf("expected per-call budget event, got %+v", last)
	}
}

func TestHealthWindowExpiry(t *testing.T) {
	reg := telemetry.New()
	m := New(reg, Options{HealthWindow: 3})
	m.Tick()
	bump(reg, telemetry.MetricEPCEvictions, 500)
	m.Tick()
	if h := m.Health(); h.Status != "degraded" {
		t.Fatalf("health = %s, want degraded", h.Status)
	}
	// Quiet samples age the alert out of the health window; the event
	// log still retains it.
	for i := 0; i < 5; i++ {
		m.Tick()
	}
	if h := m.Health(); h.Status != "ok" || len(h.Alerts) != 0 {
		t.Fatalf("alert should have aged out: %+v", h)
	}
	if len(m.Events()) != 1 {
		t.Fatal("event log should retain the aged-out event")
	}
}

func TestOnEventCallback(t *testing.T) {
	reg := telemetry.New()
	var got []Event
	m := New(reg, Options{OnEvent: func(e Event) { got = append(got, e) }})
	m.Tick()
	bump(reg, telemetry.MetricEPCEvictions, 500)
	m.Tick()
	if len(got) != 1 || got[0].Rule != "epc-thrash" {
		t.Fatalf("callback events: %+v", got)
	}
}

func TestRenderText(t *testing.T) {
	reg := telemetry.New()
	m := New(reg, Options{})
	m.Tick()
	bump(reg, telemetry.MetricHotCallRequests, 100)
	bump(reg, telemetry.MetricEPCEvictions, 500)
	m.Tick()
	out := m.RenderText(10)
	for _, want := range []string{"health: degraded", "seq", "p99", "epc-thrash", "alerts:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

package monitor

import (
	"fmt"
	"strings"

	"hotcalls/internal/epcstat"
	"hotcalls/internal/flight"
)

// RenderText renders the monitor's trailing n samples as an aligned
// table plus the health line and active alerts — the body of both
// `hotbench -watch` (redrawn in place) and `/debug/monitor?format=text`.
// The line count is stable for a fixed n once the ring holds n samples
// and the callsite set stops growing, which is what lets the watch loop
// repaint with a cursor-up escape.
func (m *Monitor) RenderText(n int) string {
	var b strings.Builder
	h := m.Health()
	fmt.Fprintf(&b, "health: %s", h.Status)
	if h.Last != nil {
		// Gauges carry their units; the pool gauges only exist when a
		// fabric is attached to the registry.
		fmt.Fprintf(&b, "  (sample %d, depth %d calls, epc %d pages",
			h.Last.Seq, h.Last.PendingDepth, h.Last.EPCResident)
		if h.Last.PoolRespondersMax > 0 {
			fmt.Fprintf(&b, ", pool %d/%d responders, occupancy %.3f",
				h.Last.PoolResponders, h.Last.PoolRespondersMax,
				float64(h.Last.PoolOccupancyMilli)/1000)
		}
		b.WriteByte(')')
	}
	b.WriteByte('\n')

	header := fmt.Sprintf("%5s  %8s  %6s  %6s  %6s  %8s  %8s  %8s  %8s  %8s",
		"seq", "calls", "fb%", "occ", "mee%", "p50", "p95", "p99", "spin/cl", "epc-ev")
	b.WriteString(header)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", len(header)))
	b.WriteByte('\n')
	for _, s := range m.Window(n) {
		fbRate := s.FallbackRate
		if s.TimeoutRate > fbRate {
			fbRate = s.TimeoutRate
		}
		spinPerCall := 0.0
		if s.DSubmissions > 0 {
			spinPerCall = float64(s.DSpinCycles) / float64(s.DSubmissions)
		}
		fmt.Fprintf(&b, "%5d  %8d  %6.1f  %6.3f  %6.1f  %8d  %8d  %8d  %8.0f  %8d\n",
			s.Seq, s.DSubmissions, fbRate*100, s.Occupancy, s.MEEHitRate*100,
			s.LatencyP50, s.LatencyP95, s.LatencyP99, spinPerCall, s.DEPCEvicts)
	}
	if h.Last != nil && len(h.Last.Callsites) > 0 {
		renderCallsites(&b, h.Last.Callsites)
	}
	if h.Last != nil && h.Last.EPC != nil && len(h.Last.EPC.Owners) > 0 {
		renderEPCOwners(&b, h.Last.EPC)
	}
	if len(h.Alerts) > 0 {
		b.WriteString("alerts:\n")
		for _, e := range h.Alerts {
			fmt.Fprintf(&b, "  [%s] %s: %s\n", e.Severity, e.Rule, e.Diagnosis)
		}
	}
	return b.String()
}

// renderEPCOwners renders the per-owner EPC section from the newest
// sample's observatory snapshot — the same consistent view the
// EPC-scoped rules evaluated, not a fresh flush.
func renderEPCOwners(b *strings.Builder, s *epcstat.Snapshot) {
	fmt.Fprintf(b, "epc owners (%d/%d pages resident, wss≈%d):\n",
		s.ResidentPages, s.CapacityPages, s.WSSPages)
	fmt.Fprintf(b, "  %-16s %9s %9s %9s %9s %9s\n",
		"owner", "resident", "wss", "faults", "evicted", "caused")
	for _, o := range s.Owners {
		fmt.Fprintf(b, "  %-16s %9d %9d %9d %9d %9d\n",
			epcOwnerName(o.Owner, o.Label), o.ResidentPages, o.WSSPages,
			o.Faults, o.Evictions, o.EvictionsCaused)
	}
}

// renderCallsites renders the per-callsite section from the newest
// sample's flight stats table — the same consistent view the
// callsite-scoped rules evaluated, not a fresh digest.
func renderCallsites(b *strings.Builder, stats []flight.CallsiteStats) {
	b.WriteString("callsites:\n")
	fmt.Fprintf(b, "  %-20s %10s %9s %9s %9s %9s %9s %7s %7s %9s\n",
		"name", "calls", "rate/s", "p50 svc", "p99 svc", "p50 lat", "p99 lat",
		"timeout", "fallbk", "waste")
	for _, cs := range stats {
		fmt.Fprintf(b, "  %-20s %10d %9.1f %9s %9s %9s %9s %7d %7d %9.0f\n",
			cs.Name, cs.Arrivals, cs.RateEWMA,
			flight.FmtNS(cs.ServiceP50NS), flight.FmtNS(cs.ServiceP99NS),
			flight.FmtNS(cs.LatencyP50NS), flight.FmtNS(cs.LatencyP99NS),
			cs.Timeouts, cs.Fallbacks, cs.WastedSpin)
	}
}

package monitor

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hotcalls/internal/core"
	"hotcalls/internal/telemetry"
)

// poolSample fabricates the newest sample a PoolSaturationRule sees.
func poolSample(live, max, occMilli int64, dTimeouts uint64) []Sample {
	return []Sample{{
		Seq: 1, When: time.Unix(0, 0),
		PoolResponders:     live,
		PoolRespondersMax:  max,
		PoolOccupancyMilli: occMilli,
		DTimeouts:          dTimeouts,
	}}
}

func TestPoolSaturationRule(t *testing.T) {
	r := &PoolSaturationRule{T: DefaultThresholds()}

	if ev := r.Evaluate(nil); ev != nil {
		t.Fatalf("empty window fired: %+v", ev)
	}
	if ev := r.Evaluate(poolSample(0, 0, 900, 0)); ev != nil {
		t.Fatalf("no fabric attached (max=0) fired: %+v", ev)
	}
	if ev := r.Evaluate(poolSample(2, 4, 900, 0)); ev != nil {
		t.Fatalf("pool with headroom fired: %+v", ev)
	}
	if ev := r.Evaluate(poolSample(4, 4, 100, 0)); ev != nil {
		t.Fatalf("pool at max but idle fired: %+v", ev)
	}

	ev := r.Evaluate(poolSample(4, 4, 900, 0))
	if len(ev) != 1 || ev[0].Severity != Warning {
		t.Fatalf("saturated pool: got %+v, want one Warning", ev)
	}
	if !strings.Contains(ev[0].Diagnosis, "4/4 responders") {
		t.Fatalf("diagnosis missing live/max: %q", ev[0].Diagnosis)
	}

	ev = r.Evaluate(poolSample(4, 4, 900, 3))
	if len(ev) != 1 || ev[0].Severity != Critical {
		t.Fatalf("saturated pool with timeouts: got %+v, want Critical", ev)
	}
}

// TestPoolSaturationEndToEnd drives a real CallPool pinned at one
// responder hard enough that the monitor's sampled gauges trip the rule
// through the standard Tick path — fabric → telemetry → sampler → rule,
// no fabricated samples.
func TestPoolSaturationEndToEnd(t *testing.T) {
	reg := telemetry.New()
	p := core.NewCallPool(
		[]core.PoolFunc{func(_ int, d uint64) uint64 { return d }},
		core.PoolOptions{
			Shards: 1, SlotsPerShard: 16, MinResponders: 1, MaxResponders: 1,
			Timeout: 1 << 20, ControlWindow: 8, SpinPasses: 2, YieldPasses: 4,
		})
	p.SetTelemetry(reg)
	p.Start()
	defer p.Stop()

	m := New(reg, Options{})
	m.Tick() // baseline

	r := p.Requester()
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		pending := make([]*core.PoolPending, 0, 16)
		for i := uint64(0); !stop.Load(); {
			for len(pending) < 16 {
				pd, err := r.Submit(0, i)
				if err != nil {
					return
				}
				pending = append(pending, pd)
				i++
			}
			for _, pd := range pending {
				pd.Wait()
			}
			pending = pending[:0]
		}
		for _, pd := range pending {
			pd.Poll()
		}
	}()

	// The occupancy gauge updates once per control window; give the
	// saturated pool a few monitor intervals to show it.
	deadline := time.Now().Add(5 * time.Second)
	var fired bool
	for time.Now().Before(deadline) && !fired {
		time.Sleep(time.Millisecond)
		s := m.Tick()
		for _, ev := range (&PoolSaturationRule{T: DefaultThresholds()}).Evaluate([]Sample{s}) {
			if ev.Rule == "pool-saturation" {
				fired = true
			}
		}
	}
	stop.Store(true)
	<-done
	if !fired {
		t.Fatal("pool-saturation rule never fired on a pinned, saturated pool")
	}
}

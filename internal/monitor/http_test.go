package monitor

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"hotcalls/internal/flight"
	"hotcalls/internal/telemetry"
)

func TestHealthHandler(t *testing.T) {
	reg := telemetry.New()
	m := New(reg, Options{})
	m.Tick()

	rec := httptest.NewRecorder()
	HealthHandler(m).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
	if rec.Code != 200 {
		t.Fatalf("healthy status code = %d", rec.Code)
	}
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("status = %s", h.Status)
	}

	// Drive it critical: a full-blown fallback storm.
	bump(reg, telemetry.MetricHotCallRequests, 100)
	bump(reg, telemetry.MetricHotCallTimeouts, 90)
	bump(reg, telemetry.MetricHotCallFallbacks, 90)
	m.Tick()
	rec = httptest.NewRecorder()
	HealthHandler(m).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
	if rec.Code != 503 {
		t.Fatalf("critical health should serve 503, got %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "critical" || len(h.Alerts) == 0 {
		t.Fatalf("critical health payload: %+v", h)
	}
}

func TestMonitorHandler(t *testing.T) {
	reg := telemetry.New()
	m := New(reg, Options{})
	for i := 0; i < 5; i++ {
		bump(reg, telemetry.MetricHotCallRequests, 10)
		m.Tick()
	}

	rec := httptest.NewRecorder()
	Handler(m).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/monitor?n=3", nil))
	var payload struct {
		Health  Health   `json:"health"`
		Samples []Sample `json:"samples"`
		Events  []Event  `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(payload.Samples))
	}
	if payload.Health.Status != "ok" {
		t.Fatalf("health = %s", payload.Health.Status)
	}

	rec = httptest.NewRecorder()
	Handler(m).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/monitor?format=text", nil))
	if !strings.Contains(rec.Body.String(), "health: ok") {
		t.Fatalf("text format body:\n%s", rec.Body.String())
	}
}

// TestMonitorHandlerContentTypes mirrors the flight endpoint contract:
// explicit Content-Type on every format, 400 on unknown ones.
func TestMonitorHandlerContentTypes(t *testing.T) {
	reg := telemetry.New()
	m := New(reg, Options{})
	m.Tick()
	h := Handler(m)

	cases := []struct {
		query string
		code  int
		ct    string
	}{
		{"", 200, flight.ContentTypeJSON},
		{"?format=json", 200, flight.ContentTypeJSON},
		{"?format=text", 200, flight.ContentTypeText},
		{"?format=csv", 400, ""},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/monitor"+c.query, nil))
		if rec.Code != c.code {
			t.Errorf("%q: status = %d, want %d", c.query, rec.Code, c.code)
			continue
		}
		if c.ct != "" && rec.Header().Get("Content-Type") != c.ct {
			t.Errorf("%q: content-type = %q, want %q", c.query, rec.Header().Get("Content-Type"), c.ct)
		}
	}

	rec := httptest.NewRecorder()
	HealthHandler(m).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
	if ct := rec.Header().Get("Content-Type"); ct != flight.ContentTypeJSON {
		t.Errorf("health content-type = %q", ct)
	}
}

func TestMux(t *testing.T) {
	reg := telemetry.New()
	reg.Counter(telemetry.MetricHotCallRequests).Add(7)
	m := New(reg, Options{})
	m.Tick()
	mux := Mux(reg, m)
	for path, want := range map[string]string{
		"/metrics":       "hotcall_requests_total 7",
		"/debug/health":  `"status": "ok"`,
		"/debug/monitor": `"samples"`,
	} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 || !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("%s: %d %q", path, rec.Code, rec.Body.String())
		}
	}
}

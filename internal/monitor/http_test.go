package monitor

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"hotcalls/internal/epcstat"
	"hotcalls/internal/flight"
	"hotcalls/internal/telemetry"
)

func TestHealthHandler(t *testing.T) {
	reg := telemetry.New()
	m := New(reg, Options{})
	m.Tick()

	rec := httptest.NewRecorder()
	HealthHandler(m).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
	if rec.Code != 200 {
		t.Fatalf("healthy status code = %d", rec.Code)
	}
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("status = %s", h.Status)
	}

	// Drive it critical: a full-blown fallback storm.
	bump(reg, telemetry.MetricHotCallRequests, 100)
	bump(reg, telemetry.MetricHotCallTimeouts, 90)
	bump(reg, telemetry.MetricHotCallFallbacks, 90)
	m.Tick()
	rec = httptest.NewRecorder()
	HealthHandler(m).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
	if rec.Code != 503 {
		t.Fatalf("critical health should serve 503, got %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "critical" || len(h.Alerts) == 0 {
		t.Fatalf("critical health payload: %+v", h)
	}
}

func TestMonitorHandler(t *testing.T) {
	reg := telemetry.New()
	m := New(reg, Options{})
	for i := 0; i < 5; i++ {
		bump(reg, telemetry.MetricHotCallRequests, 10)
		m.Tick()
	}

	rec := httptest.NewRecorder()
	Handler(m).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/monitor?n=3", nil))
	var payload struct {
		Health  Health   `json:"health"`
		Samples []Sample `json:"samples"`
		Events  []Event  `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(payload.Samples))
	}
	if payload.Health.Status != "ok" {
		t.Fatalf("health = %s", payload.Health.Status)
	}

	rec = httptest.NewRecorder()
	Handler(m).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/monitor?format=text", nil))
	if !strings.Contains(rec.Body.String(), "health: ok") {
		t.Fatalf("text format body:\n%s", rec.Body.String())
	}
}

// TestMonitorHandlerContentTypes mirrors the flight endpoint contract:
// explicit Content-Type on every format, 400 on unknown ones.
func TestMonitorHandlerContentTypes(t *testing.T) {
	reg := telemetry.New()
	m := New(reg, Options{})
	m.Tick()
	h := Handler(m)

	cases := []struct {
		query string
		code  int
		ct    string
	}{
		{"", 200, flight.ContentTypeJSON},
		{"?format=json", 200, flight.ContentTypeJSON},
		{"?format=text", 200, flight.ContentTypeText},
		{"?format=csv", 400, ""},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/monitor"+c.query, nil))
		if rec.Code != c.code {
			t.Errorf("%q: status = %d, want %d", c.query, rec.Code, c.code)
			continue
		}
		if c.ct != "" && rec.Header().Get("Content-Type") != c.ct {
			t.Errorf("%q: content-type = %q, want %q", c.query, rec.Header().Get("Content-Type"), c.ct)
		}
	}

	rec := httptest.NewRecorder()
	HealthHandler(m).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
	if ct := rec.Header().Get("Content-Type"); ct != flight.ContentTypeJSON {
		t.Errorf("health content-type = %q", ct)
	}
}

// TestHealthHandlerContentTypes holds /debug/health to the same contract
// as /debug/monitor and /debug/epc: explicit Content-Type per format,
// format validated before any work, 400 on unknown values — and the
// 503-on-critical semantics preserved across both renderings.
func TestHealthHandlerContentTypes(t *testing.T) {
	reg := telemetry.New()
	m := New(reg, Options{})
	m.Tick()
	h := HealthHandler(m)

	cases := []struct {
		query    string
		code     int
		ct       string
		contains string
	}{
		{"", 200, flight.ContentTypeJSON, `"status": "ok"`},
		{"?format=json", 200, flight.ContentTypeJSON, `"status": "ok"`},
		{"?format=text", 200, flight.ContentTypeText, "ok (1 samples, 0 active alerts)"},
		{"?format=csv", 400, "", "unknown format"},
		{"?format=TEXT", 400, "", "unknown format"},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health"+c.query, nil))
		if rec.Code != c.code {
			t.Errorf("%q: status = %d, want %d", c.query, rec.Code, c.code)
			continue
		}
		if c.ct != "" && rec.Header().Get("Content-Type") != c.ct {
			t.Errorf("%q: content-type = %q, want %q", c.query, rec.Header().Get("Content-Type"), c.ct)
		}
		if !strings.Contains(rec.Body.String(), c.contains) {
			t.Errorf("%q: body missing %q:\n%s", c.query, c.contains, rec.Body.String())
		}
	}

	// Critical health serves 503 in both renderings.
	bump(reg, telemetry.MetricHotCallRequests, 100)
	bump(reg, telemetry.MetricHotCallTimeouts, 90)
	bump(reg, telemetry.MetricHotCallFallbacks, 90)
	m.Tick()
	for _, query := range []string{"", "?format=text"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health"+query, nil))
		if rec.Code != 503 {
			t.Errorf("critical %q: status = %d, want 503", query, rec.Code)
		}
	}
}

func TestMux(t *testing.T) {
	reg := telemetry.New()
	reg.Counter(telemetry.MetricHotCallRequests).Add(7)
	m := New(reg, Options{})
	m.Tick()
	mux := Mux(reg, m)
	for path, want := range map[string]string{
		"/metrics":       "hotcall_requests_total 7",
		"/debug/health":  `"status": "ok"`,
		"/debug/monitor": `"samples"`,
	} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 || !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("%s: %d %q", path, rec.Code, rec.Body.String())
		}
	}

	// /debug/epc mounts only when an observatory is attached.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/epc", nil))
	if rec.Code != 404 {
		t.Fatalf("/debug/epc without a collector: %d, want 404", rec.Code)
	}
	withEPC := New(reg, Options{EPC: epcstat.New(epcstat.Options{})})
	rec = httptest.NewRecorder()
	Mux(reg, withEPC).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/epc", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), epcstat.SnapshotSchema) {
		t.Fatalf("/debug/epc with a collector: %d %q", rec.Code, rec.Body.String())
	}
}

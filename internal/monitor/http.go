package monitor

import (
	"encoding/json"
	"net/http"
	"strconv"

	"hotcalls/internal/flight"
	"hotcalls/internal/telemetry"
)

// HealthHandler serves the aggregate health verdict as JSON on
// /debug/health: {"status": "ok" | "degraded" | "critical", ...} with
// the active alerts and the newest sample.  A critical status is served
// with 503 so load-balancer probes can act on it without parsing the
// body; ok and degraded serve 200.
func HealthHandler(m *Monitor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		h := m.Health()
		w.Header().Set("Content-Type", flight.ContentTypeJSON)
		if h.Status == "critical" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h)
	})
}

// Handler serves the monitor's recent window on /debug/monitor: JSON
// with the trailing samples and the event log by default (or with
// ?format=json), the human-readable table with ?format=text, 400 on
// anything else — the same format contract as /debug/flight.  ?n=K
// bounds the sample count (default 20).
func Handler(m *Monitor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 20
		if v := req.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
				n = parsed
			}
		}
		switch req.URL.Query().Get("format") {
		case "text":
			w.Header().Set("Content-Type", flight.ContentTypeText)
			_, _ = w.Write([]byte(m.RenderText(n)))
		case "", "json":
			w.Header().Set("Content-Type", flight.ContentTypeJSON)
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Health  Health   `json:"health"`
				Samples []Sample `json:"samples"`
				Events  []Event  `json:"events"`
			}{m.Health(), m.Window(n), m.Events()})
		default:
			http.Error(w, "unknown format (want json or text)", http.StatusBadRequest)
		}
	})
}

// Mux bundles the full observability surface of a monitored server:
// /metrics (Prometheus exposition), /debug/health, /debug/monitor, and
// — when a flight recorder is attached (Options.Flight) —
// /debug/flight.
func Mux(reg *telemetry.Registry, m *Monitor) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Handler(reg))
	mux.Handle("/debug/health", HealthHandler(m))
	mux.Handle("/debug/monitor", Handler(m))
	if f := m.Flight(); f != nil {
		mux.Handle("/debug/flight", flight.Handler(f))
	}
	return mux
}

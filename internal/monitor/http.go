package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"hotcalls/internal/epcstat"
	"hotcalls/internal/flight"
	"hotcalls/internal/telemetry"
	"hotcalls/internal/whatif"
)

// HealthHandler serves the aggregate health verdict on /debug/health:
// {"status": "ok" | "degraded" | "critical", ...} with the active alerts
// and the newest sample by default (or with ?format=json), a one-line
// status with ?format=text, 400 on anything else — the same format
// contract as /debug/flight.  A critical status is served with 503 so
// load-balancer probes can act on it without parsing the body; ok and
// degraded serve 200.
func HealthHandler(m *Monitor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		format := req.URL.Query().Get("format")
		switch format {
		case "", "json", "text":
		default:
			http.Error(w, "unknown format (want json or text)", http.StatusBadRequest)
			return
		}
		h := m.Health()
		if format == "text" {
			w.Header().Set("Content-Type", flight.ContentTypeText)
			if h.Status == "critical" {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			fmt.Fprintf(w, "%s (%d samples, %d active alerts)\n",
				h.Status, h.Samples, len(h.Alerts))
			return
		}
		w.Header().Set("Content-Type", flight.ContentTypeJSON)
		if h.Status == "critical" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h)
	})
}

// Handler serves the monitor's recent window on /debug/monitor: JSON
// with the trailing samples and the event log by default (or with
// ?format=json), the human-readable table with ?format=text, 400 on
// anything else — the same format contract as /debug/flight.  ?n=K
// bounds the sample count (default 20).
func Handler(m *Monitor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 20
		if v := req.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
				n = parsed
			}
		}
		switch req.URL.Query().Get("format") {
		case "text":
			w.Header().Set("Content-Type", flight.ContentTypeText)
			_, _ = w.Write([]byte(m.RenderText(n)))
		case "", "json":
			w.Header().Set("Content-Type", flight.ContentTypeJSON)
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Health  Health   `json:"health"`
				Samples []Sample `json:"samples"`
				Events  []Event  `json:"events"`
			}{m.Health(), m.Window(n), m.Events()})
		default:
			http.Error(w, "unknown format (want json or text)", http.StatusBadRequest)
		}
	})
}

// DebugEntry is one mounted endpoint on a DebugMux, as the /debug/
// index lists it.
type DebugEntry struct {
	Path string `json:"path"`
	Desc string `json:"desc"`
}

// DebugMux is an http.ServeMux that keeps a self-describing catalogue
// of its endpoints and serves it as an index on /debug/ — so an
// operator landing on the port can discover every mounted surface
// (health, monitor, flight, incidents, epc, whatif, metrics) without
// reading the source.  Register catalogued endpoints with HandleEntry;
// plain Handle still works for unlisted ones.
type DebugMux struct {
	*http.ServeMux
	entries []DebugEntry
}

// NewDebugMux returns an empty catalogue mux with the /debug/ index
// mounted.
func NewDebugMux() *DebugMux {
	d := &DebugMux{ServeMux: http.NewServeMux()}
	d.ServeMux.Handle("/debug/", d.indexHandler())
	return d
}

// HandleEntry mounts the handler and lists it in the /debug/ index.
func (d *DebugMux) HandleEntry(path, desc string, h http.Handler) {
	d.ServeMux.Handle(path, h)
	d.entries = append(d.entries, DebugEntry{Path: path, Desc: desc})
}

// Entries returns the catalogued endpoints sorted by path.
func (d *DebugMux) Entries() []DebugEntry {
	out := make([]DebugEntry, len(d.entries))
	copy(out, d.entries)
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// indexHandler serves the endpoint catalogue at exactly /debug/ (the
// ServeMux subtree pattern also routes unknown /debug/* paths here;
// those stay 404s).  Default JSON, ?format=text for a plain listing,
// 400 on unknown formats — the shared debug contract.
func (d *DebugMux) indexHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/debug/" {
			http.NotFound(w, req)
			return
		}
		switch req.URL.Query().Get("format") {
		case "text":
			w.Header().Set("Content-Type", flight.ContentTypeText)
			for _, e := range d.Entries() {
				fmt.Fprintf(w, "%-20s %s\n", e.Path, e.Desc)
			}
		case "", "json":
			w.Header().Set("Content-Type", flight.ContentTypeJSON)
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Endpoints []DebugEntry `json:"endpoints"`
			}{d.Entries()})
		default:
			http.Error(w, "unknown format (want json or text)", http.StatusBadRequest)
		}
	})
}

// Mux bundles the full observability surface of a monitored server:
// /metrics (Prometheus exposition — registry metrics plus, when the
// collectors are attached, flight per-callsite series and what-if
// regret series), /debug/health, /debug/monitor, a /debug/ index
// listing every mounted endpoint, and — per attached collector —
// /debug/flight (Options.Flight), /debug/epc (Options.EPC), and
// /debug/whatif (Options.WhatIf).  The returned DebugMux is a ServeMux;
// callers can keep mounting (HandleEntry adds to the index).
func Mux(reg *telemetry.Registry, m *Monitor) *DebugMux {
	mux := NewDebugMux()
	mux.HandleEntry("/metrics", "Prometheus exposition (registry + flight callsites + what-if regret)",
		metricsHandler(reg, m))
	mux.HandleEntry("/debug/health", "aggregate health verdict (503 when critical)", HealthHandler(m))
	mux.HandleEntry("/debug/monitor", "recent samples, events, and rule verdicts", Handler(m))
	if f := m.Flight(); f != nil {
		mux.HandleEntry("/debug/flight", "per-callsite flight recorder stats and traces", flight.Handler(f))
	}
	if c := m.EPCStat(); c != nil {
		mux.HandleEntry("/debug/epc", "EPC pressure observatory (per-owner paging)", epcstat.Handler(c))
	}
	if o := m.WhatIf(); o != nil {
		mux.HandleEntry("/debug/whatif", "causal what-if profiler and shadow-routing regret", whatif.Handler(o))
	}
	return mux
}

// metricsHandler concatenates the Prometheus expositions of every
// attached source: the registry first (the historical /metrics body),
// then the flight recorder's per-callsite series, then the what-if
// observatory's regret series.
func metricsHandler(reg *telemetry.Registry, m *Monitor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheusWith(w, telemetry.PromOptions{
			Exemplars: req.URL.Query().Get("exemplars") == "1",
		})
		if f := m.Flight(); f != nil {
			_ = f.WritePrometheus(w)
		}
		if o := m.WhatIf(); o != nil {
			_ = o.WritePrometheus(w)
		}
	})
}

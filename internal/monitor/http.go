package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"hotcalls/internal/epcstat"
	"hotcalls/internal/flight"
	"hotcalls/internal/telemetry"
)

// HealthHandler serves the aggregate health verdict on /debug/health:
// {"status": "ok" | "degraded" | "critical", ...} with the active alerts
// and the newest sample by default (or with ?format=json), a one-line
// status with ?format=text, 400 on anything else — the same format
// contract as /debug/flight.  A critical status is served with 503 so
// load-balancer probes can act on it without parsing the body; ok and
// degraded serve 200.
func HealthHandler(m *Monitor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		format := req.URL.Query().Get("format")
		switch format {
		case "", "json", "text":
		default:
			http.Error(w, "unknown format (want json or text)", http.StatusBadRequest)
			return
		}
		h := m.Health()
		if format == "text" {
			w.Header().Set("Content-Type", flight.ContentTypeText)
			if h.Status == "critical" {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			fmt.Fprintf(w, "%s (%d samples, %d active alerts)\n",
				h.Status, h.Samples, len(h.Alerts))
			return
		}
		w.Header().Set("Content-Type", flight.ContentTypeJSON)
		if h.Status == "critical" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h)
	})
}

// Handler serves the monitor's recent window on /debug/monitor: JSON
// with the trailing samples and the event log by default (or with
// ?format=json), the human-readable table with ?format=text, 400 on
// anything else — the same format contract as /debug/flight.  ?n=K
// bounds the sample count (default 20).
func Handler(m *Monitor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 20
		if v := req.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
				n = parsed
			}
		}
		switch req.URL.Query().Get("format") {
		case "text":
			w.Header().Set("Content-Type", flight.ContentTypeText)
			_, _ = w.Write([]byte(m.RenderText(n)))
		case "", "json":
			w.Header().Set("Content-Type", flight.ContentTypeJSON)
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Health  Health   `json:"health"`
				Samples []Sample `json:"samples"`
				Events  []Event  `json:"events"`
			}{m.Health(), m.Window(n), m.Events()})
		default:
			http.Error(w, "unknown format (want json or text)", http.StatusBadRequest)
		}
	})
}

// Mux bundles the full observability surface of a monitored server:
// /metrics (Prometheus exposition), /debug/health, /debug/monitor, and
// — when the corresponding collector is attached — /debug/flight
// (Options.Flight) and /debug/epc (Options.EPC).
func Mux(reg *telemetry.Registry, m *Monitor) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Handler(reg))
	mux.Handle("/debug/health", HealthHandler(m))
	mux.Handle("/debug/monitor", Handler(m))
	if f := m.Flight(); f != nil {
		mux.Handle("/debug/flight", flight.Handler(f))
	}
	if c := m.EPCStat(); c != nil {
		mux.Handle("/debug/epc", epcstat.Handler(c))
	}
	return mux
}

package monitor

import (
	"sync"
	"testing"
	"time"

	"hotcalls/internal/core"
	"hotcalls/internal/telemetry"
)

// runCallBench drives the real HotCall protocol for b.N calls, optionally
// with a live monitor sampling at a production-like interval.  Comparing
// the two benchmarks is the instrumented-pair overhead measurement for
// the monitor (target <=1%, recorded in EXPERIMENTS.md): the monitor
// only reads registry snapshots, so the hot path never sees it.
func runCallBench(b *testing.B, interval time.Duration) {
	reg := telemetry.New()
	telemetry.RegisterStandard(reg)
	var hc core.HotCall
	hc.Timeout = 1 << 20
	hc.SetTelemetry(reg)
	r := core.NewResponder(&hc, []func(interface{}) uint64{
		func(interface{}) uint64 { return 0 },
	})
	r.SetTelemetry(reg)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.Run()
	}()
	if interval > 0 {
		m := New(reg, Options{Interval: interval, RingCap: 64})
		m.Start()
		defer m.Stop()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hc.Call(0, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	hc.Stop()
	wg.Wait()
}

// BenchmarkCallTelemetry is the baseline: telemetry attached, no monitor.
func BenchmarkCallTelemetry(b *testing.B) { runCallBench(b, 0) }

// BenchmarkCallMonitored adds a live monitor at the production default
// sampling interval (250ms).
func BenchmarkCallMonitored(b *testing.B) { runCallBench(b, 250*time.Millisecond) }

// BenchmarkCallMonitored10ms oversamples 25x faster than production to
// amplify whatever cost the sampler has; on a single-CPU host this also
// measures the scheduler churn of waking a third goroutine into a
// spinning requester/responder pair.
func BenchmarkCallMonitored10ms(b *testing.B) { runCallBench(b, 10*time.Millisecond) }

// BenchmarkCallTickerControl parks a ticker goroutine that never fires
// during the run.  On a single-CPU host it shows the same delta as
// BenchmarkCallMonitored, proving the pair's gap is the runtime's timer
// bookkeeping around the spinning requester/responder — not sampling
// work (see BenchmarkTick for the monitor's actual per-sample cost).
func BenchmarkCallTickerControl(b *testing.B) { runCallBench(b, time.Hour) }

// BenchmarkTick is the direct per-sample cost: one registry snapshot plus
// rule evaluation over the window.  Multiply by the sampling rate for the
// monitor's duty cycle (e.g. 10us/sample at 4 samples/s = 0.004% of one
// core).
func BenchmarkTick(b *testing.B) {
	reg := telemetry.New()
	telemetry.RegisterStandard(reg)
	// Populate the histogram so quantile interpolation runs its real path.
	h := reg.Histogram(telemetry.MetricHotCallCycles)
	for i := 0; i < 4096; i++ {
		h.Observe(uint64(500 + i%512))
	}
	m := New(reg, Options{RingCap: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Tick()
	}
}

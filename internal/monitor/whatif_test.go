package monitor

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hotcalls/internal/flight"
	"hotcalls/internal/whatif"
)

// whatIfFixture wires a monitor over a flight recorder and an armed
// what-if observatory on the deterministic flight clock, with the
// misrouted workload pre-declared: "hot.path" statically routed pooled
// (the fallback) while its traffic — 1500 calls of ~400ns digested
// service per 1ms interval, utilisation ~0.6 — is squarely in the
// single-slot hot channel's win regime, so every driven interval
// carries regret well above the 1e6-cycle warning threshold.
func whatIfFixture(t *testing.T, opts Options) (*Monitor, *flight.Recorder, flight.Callsite, *flightClock, *whatif.Observatory) {
	t.Helper()
	clk := newFlightClock()
	f := flight.New(flight.Options{Now: clk.now, SampleEvery: 1})
	f.Bind(1)
	cs := f.Callsite("hot.path")
	obs := whatif.NewObservatory(whatif.CostParams{})
	opts.Flight = f
	opts.WhatIf = obs
	return New(nil, opts), f, cs, clk, obs
}

// driveMisroutedInterval pushes one 1ms interval of the misrouted
// workload: 1500 calls, each advancing the clock 500ns, then idle time
// to round the interval out to 1e6ns.
func driveMisroutedInterval(f *flight.Recorder, cs flight.Callsite, clk *flightClock) {
	driveCalls(f, cs, clk, 1500)
	clk.advance(2.5e5)
}

// TestRoutingRegretRule checks the acceptance scenario: the shadow
// router flags the mis-routed callsite by name, recommends the policy
// the brute-force replay agrees is optimal, and attaches its verdict
// to the sample.
func TestRoutingRegretRule(t *testing.T) {
	m, f, cs, clk, _ := whatIfFixture(t, Options{})
	m.Tick() // baseline primes the shadow router

	driveMisroutedInterval(f, cs, clk)
	s := m.Tick()

	if s.WhatIf == nil {
		t.Fatal("sample carries no what-if verdict")
	}
	worst := s.WhatIf.Worst()
	if worst == nil {
		t.Fatal("shadow router scored no callsites")
	}
	if worst.Site != "hot.path" || worst.Best != whatif.PolicyHot || worst.Current != whatif.PolicyPooled {
		t.Fatalf("worst decision = %+v, want hot.path pooled->hot", worst)
	}
	if worst.RegretCycles < 1e6 {
		t.Fatalf("regret %.3g cycles, want >= 1e6 (warning threshold)", worst.RegretCycles)
	}

	events := eventsByRule(m.Events(), "routing-regret")
	if len(events) != 1 {
		t.Fatalf("want exactly 1 routing-regret event, got %d: %+v", len(events), events)
	}
	e := events[0]
	if e.Severity != Warning {
		t.Fatalf("severity = %v, want Warning", e.Severity)
	}
	if !strings.Contains(e.Diagnosis, `"hot.path"`) {
		t.Fatalf("diagnosis does not name the mis-routed callsite: %q", e.Diagnosis)
	}
	if !strings.Contains(e.Diagnosis, "reroute it to hot") {
		t.Fatalf("diagnosis does not recommend the optimal policy: %q", e.Diagnosis)
	}
}

// TestRoutingRegretDebounce checks the acceptance criterion that
// routing-regret fires exactly once per episode through the monitor's
// debounce: a misroute persisting across samples emits one opening
// event, stays suppressed while the episode is live, and emits exactly
// once more when the misroute returns after a quiet spell.
func TestRoutingRegretDebounce(t *testing.T) {
	m, f, cs, clk, _ := whatIfFixture(t, Options{EventDebounce: 2})
	m.Tick() // baseline

	// Episode one: the misroute persists for three samples.
	for i := 0; i < 3; i++ {
		driveMisroutedInterval(f, cs, clk)
		m.Tick()
	}
	if got := eventsByRule(m.Events(), "routing-regret"); len(got) != 1 {
		t.Fatalf("persistent misroute: want 1 event for the episode, got %d: %+v", len(got), got)
	}

	// The callsite goes quiet for EventDebounce samples: the episode ends.
	for i := 0; i < 2; i++ {
		clk.advance(1e6)
		m.Tick()
	}
	if got := eventsByRule(m.Events(), "routing-regret"); len(got) != 1 {
		t.Fatalf("quiet spell: want still 1 event, got %d", len(got))
	}

	// Episode two: the misroute comes back.
	driveMisroutedInterval(f, cs, clk)
	m.Tick()
	if got := eventsByRule(m.Events(), "routing-regret"); len(got) != 2 {
		t.Fatalf("returning misroute: want exactly 2 events (one per episode), got %d: %+v", len(got), got)
	}
}

// TestMuxWhatIfEndpoint checks that Mux mounts /debug/whatif when an
// observatory is attached, that the combined /metrics body carries the
// what-if regret series, and that the /debug/ index lists every
// mounted endpoint.
func TestMuxWhatIfEndpoint(t *testing.T) {
	m, f, cs, clk, _ := whatIfFixture(t, Options{})
	m.Tick()
	driveMisroutedInterval(f, cs, clk)
	m.Tick()

	srv := httptest.NewServer(Mux(nil, m))
	defer srv.Close()

	body := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 1<<16)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, b := body("/debug/whatif"); code != http.StatusOK || !strings.Contains(b, whatif.ReportSchema) {
		t.Fatalf("/debug/whatif: code %d body %q", code, b)
	}
	if code, b := body("/metrics"); code != http.StatusOK ||
		!strings.Contains(b, "whatif_regret_cycles_total") ||
		!strings.Contains(b, `flight_callsite_arrivals_total{callsite="hot.path"}`) {
		t.Fatalf("/metrics missing what-if or flight series: code %d body %q", code, b)
	}

	code, b := body("/debug/")
	if code != http.StatusOK {
		t.Fatalf("/debug/ index: code %d", code)
	}
	var idx struct {
		Endpoints []DebugEntry `json:"endpoints"`
	}
	if err := json.Unmarshal([]byte(b), &idx); err != nil {
		t.Fatalf("index is not JSON: %v", err)
	}
	want := []string{"/debug/flight", "/debug/health", "/debug/monitor", "/debug/whatif", "/metrics"}
	var paths []string
	for _, e := range idx.Endpoints {
		paths = append(paths, e.Path)
	}
	for _, w := range want {
		found := false
		for _, p := range paths {
			if p == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("index missing %s: %v", w, paths)
		}
	}
	for _, p := range paths {
		if p == "/debug/epc" {
			t.Fatalf("index lists /debug/epc with no EPC collector attached: %v", paths)
		}
	}

	if code, b := body("/debug/?format=text"); code != http.StatusOK || !strings.Contains(b, "/debug/whatif") {
		t.Fatalf("/debug/ text index: code %d body %q", code, b)
	}
	if code, _ := body("/debug/?format=pdf"); code != http.StatusBadRequest {
		t.Fatalf("/debug/?format=pdf: code %d, want 400", code)
	}
	if code, _ := body("/debug/nosuch"); code != http.StatusNotFound {
		t.Fatalf("/debug/nosuch: code %d, want 404", code)
	}
}

// TestMuxWithoutWhatIf checks the endpoint stays unmounted (404 via the
// index's exact-path guard) when no observatory is attached, and the
// index omits it.
func TestMuxWithoutWhatIf(t *testing.T) {
	clk := newFlightClock()
	f := flight.New(flight.Options{Now: clk.now, SampleEvery: 1})
	f.Bind(1)
	m := New(nil, Options{Flight: f})
	m.Tick()

	srv := httptest.NewServer(Mux(nil, m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/whatif")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/whatif with no observatory: code %d, want 404", resp.StatusCode)
	}
	for _, e := range Mux(nil, m).Entries() {
		if e.Path == "/debug/whatif" {
			t.Fatal("index lists /debug/whatif with no observatory attached")
		}
	}
}

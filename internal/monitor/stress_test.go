package monitor

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hotcalls/internal/core"
	"hotcalls/internal/telemetry"
)

// TestMonitorVsWorkloadRace is the satellite race test, mirroring the
// PR 2 tracer-vs-exporter pattern: a live HotCall workload hammers the
// registry from several goroutines while the monitor samples on its own
// goroutine and HTTP readers pull /debug/health and /debug/monitor
// concurrently.  Run with -race.
func TestMonitorVsWorkloadRace(t *testing.T) {
	reg := telemetry.New()
	telemetry.RegisterStandard(reg)
	var hc core.HotCall
	hc.Timeout = 1 << 20
	hc.SetTelemetry(reg)
	r := core.NewResponder(&hc, []func(interface{}) uint64{
		func(interface{}) uint64 { return 1 },
	})
	r.SetTelemetry(reg)
	var respWG sync.WaitGroup
	respWG.Add(1)
	go func() {
		defer respWG.Done()
		r.Run()
	}()

	m := New(reg, Options{Interval: time.Millisecond, RingCap: 16})
	m.Start()

	const requesters = 4
	const perRequester = 500
	var callers sync.WaitGroup
	for g := 0; g < requesters; g++ {
		callers.Add(1)
		go func() {
			defer callers.Done()
			for i := 0; i < perRequester; i++ {
				if _, err := hc.CallOrFallback(0, nil, func() (uint64, error) { return 0, nil }); err != nil {
					t.Error(err)
					return
				}
				// Feed the histogram and gauges too, so the sampler's
				// delta math races against live writers of every type.
				reg.Histogram(telemetry.MetricHotCallCycles).Observe(uint64(600 + i%64))
				reg.Gauge(telemetry.MetricEPCResident).Set(int64(i))
			}
		}()
	}

	readers := make(chan struct{})
	go func() {
		defer close(readers)
		health := HealthHandler(m)
		mon := Handler(m)
		for i := 0; i < 200; i++ {
			rec := httptest.NewRecorder()
			health.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
			rec = httptest.NewRecorder()
			mon.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/monitor?format=text", nil))
			_ = m.Window(0)
			_ = m.Events()
			m.Tick() // manual ticks interleaved with the Start goroutine
		}
	}()

	callers.Wait()
	<-readers
	hc.Stop()
	respWG.Wait()
	m.Stop()

	// The final cumulative view must account for every call.
	s := m.Tick()
	if s.Requests != requesters*perRequester {
		t.Fatalf("requests = %d, want %d", s.Requests, requesters*perRequester)
	}
	// Stop is idempotent and Start/Stop can cycle.
	m.Stop()
	m.Start()
	m.Stop()
}

package monitor

import (
	"strings"
	"testing"

	"hotcalls/internal/epcstat"
)

// epcSample wraps a synthetic observatory snapshot into a monitor sample
// for direct rule evaluation.
func epcSample(seq int, s *epcstat.Snapshot) Sample {
	return Sample{Seq: seq, EPC: s}
}

func TestEPCOversubscriptionRule(t *testing.T) {
	r := &EPCOversubscriptionRule{T: DefaultThresholds()}

	if ev := r.Evaluate(nil); ev != nil {
		t.Fatalf("empty window fired: %+v", ev)
	}
	if ev := r.Evaluate([]Sample{{Seq: 1}}); ev != nil {
		t.Fatalf("sample without a collector fired: %+v", ev)
	}

	snap := func(wss uint64) *epcstat.Snapshot {
		return &epcstat.Snapshot{
			CapacityPages: 1000,
			WSSPages:      wss,
			Owners: []epcstat.OwnerStats{
				{Owner: 1, Label: "small", WSSPages: wss / 4},
				{Owner: 2, Label: "big", WSSPages: wss - wss/4},
			},
		}
	}

	// Below the warning fraction: quiet.
	if ev := r.Evaluate([]Sample{epcSample(1, snap(800))}); ev != nil {
		t.Fatalf("80%% occupancy fired: %+v", ev)
	}
	// Tiny absolute working sets stay quiet regardless of fraction.
	tiny := &epcstat.Snapshot{CapacityPages: 32, WSSPages: 32}
	if ev := r.Evaluate([]Sample{epcSample(1, tiny)}); ev != nil {
		t.Fatalf("sub-minimum working set fired: %+v", ev)
	}

	// 85-100%: warning, naming the largest owner.
	ev := r.Evaluate([]Sample{epcSample(2, snap(880))})
	if len(ev) != 1 || ev[0].Severity != Warning {
		t.Fatalf("88%% occupancy: got %+v, want one Warning", ev)
	}
	if !strings.Contains(ev[0].Diagnosis, "big(#2)") {
		t.Fatalf("diagnosis should name the largest owner: %q", ev[0].Diagnosis)
	}
	if ev[0].Value < 0.87 || ev[0].Value > 0.89 {
		t.Fatalf("value = %v, want the occupancy fraction ~0.88", ev[0].Value)
	}

	// Past capacity: critical.
	ev = r.Evaluate([]Sample{epcSample(3, snap(1200))})
	if len(ev) != 1 || ev[0].Severity != Critical {
		t.Fatalf("120%% occupancy: got %+v, want one Critical", ev)
	}
}

func TestEPCVictimInterferenceRule(t *testing.T) {
	r := &EPCVictimInterferenceRule{T: DefaultThresholds()}

	prev := &epcstat.Snapshot{Now: 1000}
	cur := &epcstat.Snapshot{
		Now:       2000,
		Evictions: 200,
		Owners: []epcstat.OwnerStats{
			{Owner: 1, Label: "victim", Evictions: 150},
			{Owner: 2, Label: "noisy", Evictions: 50, EvictionsCaused: 200},
		},
		Interference: []epcstat.Cell{
			{Culprit: 2, Victim: 1, Evictions: 150},
			{Culprit: 2, Victim: 2, Evictions: 50},
		},
	}
	ev := r.Evaluate([]Sample{epcSample(1, prev), epcSample(2, cur)})
	if len(ev) != 1 || ev[0].Severity != Warning {
		t.Fatalf("got %+v, want one Warning", ev)
	}
	for _, want := range []string{"victim(#1)", "noisy(#2)", "150"} {
		if !strings.Contains(ev[0].Diagnosis, want) {
			t.Fatalf("diagnosis missing %q: %q", want, ev[0].Diagnosis)
		}
	}

	// Self-inflicted thrash (one owner evicting its own pages) is the
	// thrash rule's business, not an interference event.
	selfish := &epcstat.Snapshot{
		Now:       2000,
		Evictions: 200,
		Owners: []epcstat.OwnerStats{
			{Owner: 1, Label: "loner", Evictions: 200, EvictionsCaused: 200},
		},
		Interference: []epcstat.Cell{{Culprit: 1, Victim: 1, Evictions: 200}},
	}
	if ev := r.Evaluate([]Sample{epcSample(1, prev), epcSample(2, selfish)}); ev != nil {
		t.Fatalf("self-inflicted evictions fired interference: %+v", ev)
	}

	// Below the minimum interval eviction count: quiet.
	calm := &epcstat.Snapshot{
		Now:       2000,
		Evictions: 10,
		Owners:    []epcstat.OwnerStats{{Owner: 1, Evictions: 10}},
		Interference: []epcstat.Cell{
			{Culprit: 2, Victim: 1, Evictions: 10},
		},
	}
	if ev := r.Evaluate([]Sample{epcSample(1, prev), epcSample(2, calm)}); ev != nil {
		t.Fatalf("sub-minimum evictions fired: %+v", ev)
	}

	// Without a previous sample the delta is the cumulative view — the
	// rule still works on the first post-attach interval.
	if ev := r.Evaluate([]Sample{epcSample(1, cur)}); len(ev) != 1 {
		t.Fatalf("single-sample window: got %+v, want one event", ev)
	}
}

// TestEPCRulesAutoAttached checks fill(): wiring Options.EPC appends the
// EPC rule set without clobbering explicit rule lists.
func TestEPCRulesAutoAttached(t *testing.T) {
	col := epcstat.New(epcstat.Options{})
	m := New(nil, Options{EPC: col})
	var names []string
	for _, r := range m.opts.Rules {
		names = append(names, r.Name())
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"epc-thrash", "epc-oversubscription", "epc-victim-interference"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("rule set missing %q: %v", want, names)
		}
	}
	if m.EPCStat() != col {
		t.Fatal("EPCStat accessor lost the collector")
	}

	explicit := New(nil, Options{EPC: col, Rules: []Rule{&EPCThrashRule{T: DefaultThresholds()}}})
	if n := len(explicit.opts.Rules); n != 1 {
		t.Fatalf("explicit rule list grew to %d entries", n)
	}
}

package monitor

import (
	"sync"
	"time"

	"hotcalls/internal/dist"
	"hotcalls/internal/epcstat"
	"hotcalls/internal/flight"
	"hotcalls/internal/telemetry"
	"hotcalls/internal/whatif"
)

// Options tunes a Monitor.  The zero value selects the defaults noted on
// each field.
type Options struct {
	// Interval is the sampling period for Start.  Default 250ms.  Tick
	// ignores it — tests and single-shot callers drive sampling manually.
	Interval time.Duration

	// RingCap bounds the retained sample window.  Default 256.
	RingCap int

	// EventCap bounds the retained event log (oldest dropped first).
	// Default 256.
	EventCap int

	// Rules is the evaluation set; nil selects
	// DefaultRules(DefaultThresholds()).
	Rules []Rule

	// LatencyDist, when set, upgrades the latency signal: interval
	// percentiles (including the tail p99.9 the log2 histogram cannot
	// resolve) come from this high-resolution recorder instead of the
	// hotcall_cycles histogram, and the latency-SLO rule gates on the
	// p99.9 objective.  The caller attaches the same recorder to the
	// instrumented channel (e.g. Channel.SetDistribution on a Set whose
	// HotEcall/Warm recorder this is).
	LatencyDist *dist.Recorder

	// Flight, when set, attaches the call fabric's flight recorder:
	// every sample carries its per-callsite stats table (digested once
	// per tick), RenderText grows a per-callsite section, Mux serves
	// /debug/flight, and — when Rules is nil — the callsite-scoped
	// storm and spin-waste rules join the default rule set.
	Flight *flight.Recorder

	// EPC, when set, attaches the EPC pressure observatory: every
	// sample carries its snapshot (flushed once per tick), RenderText
	// grows a per-owner section, Mux serves /debug/epc, and — when
	// Rules is nil — the oversubscription early-warning and
	// victim-interference rules join the default rule set.
	EPC *epcstat.Collector

	// WhatIf, when set, attaches the what-if observatory: every tick
	// feeds the interval's flight stats to its shadow router, every
	// sample carries the router's verdict, Mux serves /debug/whatif,
	// and — when Rules is nil — the routing-regret rule joins the
	// default rule set.  Pair it with Flight; without a recorder the
	// router has no stats to score.
	WhatIf *whatif.Observatory

	// HealthWindow is how many trailing samples an event stays "active"
	// for in Health().  Default 12.
	HealthWindow int

	// OnEvent, when set, is invoked synchronously for every emitted
	// event (after it is logged).  Keep it fast; it runs on the sampling
	// goroutine.  SetOnEvent attaches or replaces it after New.
	OnEvent func(Event)

	// EventDebounce, when > 0, adds per-rule hysteresis: while a rule's
	// firing episode is live, repeat events at the same or lower
	// severity are suppressed (neither logged nor passed to OnEvent) —
	// only the opening event and severity escalations get through.  An
	// episode ends once the rule stays silent for EventDebounce
	// consecutive samples; the next firing opens a new episode and
	// emits again.  A rule flapping across its threshold therefore
	// produces one event transition per episode, not a storm.  Default
	// 0 keeps the historical emit-every-evaluation behavior.
	EventDebounce int
}

func (o *Options) fill() {
	if o.Interval <= 0 {
		o.Interval = 250 * time.Millisecond
	}
	if o.RingCap <= 0 {
		o.RingCap = 256
	}
	if o.EventCap <= 0 {
		o.EventCap = 256
	}
	if o.HealthWindow <= 0 {
		o.HealthWindow = 12
	}
	if o.Rules == nil {
		o.Rules = DefaultRules(DefaultThresholds())
		if o.Flight != nil {
			o.Rules = append(o.Rules, FlightRules(DefaultThresholds())...)
		}
		if o.EPC != nil {
			o.Rules = append(o.Rules, EPCRules(DefaultThresholds())...)
		}
		if o.WhatIf != nil {
			o.Rules = append(o.Rules, WhatIfRules(DefaultThresholds())...)
		}
	}
}

// Monitor owns a sampler, a bounded sample ring, a rule set, and a
// bounded event log.  Drive it either with Start/Stop (wall-clock
// sampling on its own goroutine) or with explicit Tick calls
// (deterministic, for tests and one-shot dumps).  All methods are
// goroutine-safe.
type Monitor struct {
	mu      sync.Mutex
	sampler *Sampler
	opts    Options

	samples []Sample // ring, capacity opts.RingCap
	head    int      // next write position
	count   int      // valid entries

	events        []Event
	droppedEvents uint64
	episodes      map[string]*episode // per-rule debounce state

	stop    chan struct{}
	done    chan struct{}
	running bool
}

// New returns a monitor over the registry the workload's telemetry is
// attached to (nil is valid and yields all-zero samples).  It takes no
// samples until Tick or Start.
func New(reg *telemetry.Registry, opts Options) *Monitor {
	opts.fill()
	sampler := NewSampler(reg)
	sampler.SetDistribution(opts.LatencyDist)
	sampler.SetFlight(opts.Flight)
	sampler.SetEPC(opts.EPC)
	sampler.SetWhatIf(opts.WhatIf)
	return &Monitor{sampler: sampler, opts: opts}
}

// Flight returns the attached flight recorder, or nil.
func (m *Monitor) Flight() *flight.Recorder { return m.opts.Flight }

// EPCStat returns the attached EPC pressure observatory, or nil.
func (m *Monitor) EPCStat() *epcstat.Collector { return m.opts.EPC }

// WhatIf returns the attached what-if observatory, or nil.
func (m *Monitor) WhatIf() *whatif.Observatory { return m.opts.WhatIf }

// SetOnEvent attaches (or replaces, or with nil detaches) the event
// callback after construction — internal/incident uses this to wire a
// capturer onto an already-running monitor.  The callback runs
// synchronously on the sampling goroutine, after debounce filtering.
func (m *Monitor) SetOnEvent(cb func(Event)) {
	m.mu.Lock()
	m.opts.OnEvent = cb
	m.mu.Unlock()
}

// episode is one rule's live firing state for EventDebounce hysteresis.
type episode struct {
	severity Severity // worst emitted severity this episode
	lastSeq  int      // newest sample the rule fired on (emitted or not)
}

// debounceLocked filters freshly-fired events through the per-rule
// episode state.  Caller holds m.mu.
func (m *Monitor) debounceLocked(fired []Event) []Event {
	if m.opts.EventDebounce <= 0 || len(fired) == 0 {
		return fired
	}
	if m.episodes == nil {
		m.episodes = make(map[string]*episode)
	}
	out := fired[:0]
	for _, e := range fired {
		ep, live := m.episodes[e.Rule]
		if live && e.Seq-ep.lastSeq > m.opts.EventDebounce {
			live = false // the rule went quiet: episode over
		}
		switch {
		case !live:
			m.episodes[e.Rule] = &episode{severity: e.Severity, lastSeq: e.Seq}
			out = append(out, e)
		case e.Severity > ep.severity:
			ep.severity = e.Severity
			ep.lastSeq = e.Seq
			out = append(out, e)
		default:
			ep.lastSeq = e.Seq // suppressed, but the episode stays live
		}
	}
	return out
}

// Tick takes one sample, evaluates every rule over the current window,
// logs emitted events, and returns the sample.
func (m *Monitor) Tick() Sample {
	m.mu.Lock()
	s := m.sampler.Sample(time.Now())
	if len(m.samples) < m.opts.RingCap {
		m.samples = append(m.samples, s)
	} else {
		m.samples[m.head] = s
	}
	m.head = (m.head + 1) % m.opts.RingCap
	if m.count < m.opts.RingCap {
		m.count++
	}
	window := m.windowLocked(m.count)
	var fired []Event
	for _, r := range m.opts.Rules {
		fired = append(fired, r.Evaluate(window)...)
	}
	fired = m.debounceLocked(fired)
	for _, e := range fired {
		if len(m.events) >= m.opts.EventCap {
			copy(m.events, m.events[1:])
			m.events = m.events[:len(m.events)-1]
			m.droppedEvents++
		}
		m.events = append(m.events, e)
	}
	cb := m.opts.OnEvent
	m.mu.Unlock()
	if cb != nil {
		for _, e := range fired {
			cb(e)
		}
	}
	return s
}

// windowLocked returns the newest n samples, oldest first.  Callers hold
// m.mu.
func (m *Monitor) windowLocked(n int) []Sample {
	if n > m.count {
		n = m.count
	}
	out := make([]Sample, 0, n)
	start := m.head - n
	if start < 0 {
		start += len(m.samples)
	}
	for i := 0; i < n; i++ {
		out = append(out, m.samples[(start+i)%len(m.samples)])
	}
	return out
}

// Window returns the newest n samples, oldest first (all retained
// samples when n <= 0).
func (m *Monitor) Window(n int) []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= 0 {
		n = m.count
	}
	return m.windowLocked(n)
}

// Events returns a copy of the retained event log, oldest first.
func (m *Monitor) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// DroppedEvents returns how many events were evicted from the bounded
// log.
func (m *Monitor) DroppedEvents() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.droppedEvents
}

// Start begins wall-clock sampling at the configured interval on a new
// goroutine.  It is a no-op when already running.
func (m *Monitor) Start() {
	m.mu.Lock()
	if m.running {
		m.mu.Unlock()
		return
	}
	m.running = true
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	stop, done := m.stop, m.done
	interval := m.opts.Interval
	m.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				m.Tick()
			}
		}
	}()
}

// Stop halts wall-clock sampling and waits for the sampling goroutine to
// exit.  The sample ring and event log are retained.
func (m *Monitor) Stop() {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	m.running = false
	stop, done := m.stop, m.done
	m.mu.Unlock()
	close(stop)
	<-done
}

// Health is the aggregate verdict over the recent window.
type Health struct {
	// Status is "ok", "degraded" (active warnings), or "critical".
	Status string `json:"status"`
	// Samples is how many samples the monitor has taken in total.
	Samples int `json:"samples"`
	// Alerts are the events still inside the health window, oldest
	// first.
	Alerts []Event `json:"alerts,omitempty"`
	// Last is the newest sample, if any.
	Last *Sample `json:"last,omitempty"`
}

// Health summarises the monitor: the worst severity among events whose
// sample is within the trailing HealthWindow samples decides the status.
func (m *Monitor) Health() Health {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := Health{Status: "ok"}
	if m.count == 0 {
		h.Samples = m.sampler.seq
		return h
	}
	w := m.windowLocked(1)
	last := w[0]
	h.Last = &last
	h.Samples = m.sampler.seq
	cutoff := last.Seq - m.opts.HealthWindow + 1
	worst := Severity(-1)
	for _, e := range m.events {
		if e.Seq < cutoff {
			continue
		}
		h.Alerts = append(h.Alerts, e)
		if e.Severity > worst {
			worst = e.Severity
		}
	}
	switch {
	case worst >= Critical:
		h.Status = "critical"
	case worst >= Warning:
		h.Status = "degraded"
	}
	return h
}

package monitor

import (
	"strings"
	"testing"

	"hotcalls/internal/dist"
	"hotcalls/internal/telemetry"
)

// TestHiResSamplerPercentiles: with a recorder attached, interval
// percentiles come from the high-resolution buckets (within ~1%, where
// the log2 histogram could be off by half a binade) and the p99.9 tail
// is populated.
func TestHiResSamplerPercentiles(t *testing.T) {
	reg := telemetry.New()
	rec := dist.NewRecorder(0)
	m := New(reg, Options{LatencyDist: rec})
	m.Tick()

	// 999 fast calls and one slow one: p50 ~620, p99.9 picks up the tail.
	for i := 0; i < 999; i++ {
		rec.Record(620)
	}
	rec.Record(9000)
	s := m.Tick()
	if !s.HiRes {
		t.Fatal("sample not marked HiRes with a recorder attached")
	}
	if s.LatencyCount != 1000 {
		t.Fatalf("interval count %d, want 1000", s.LatencyCount)
	}
	if s.LatencyP50 < 610 || s.LatencyP50 > 630 {
		t.Fatalf("hi-res p50 %d, want ~620 (the log2 histogram would report ~768)", s.LatencyP50)
	}
	if s.LatencyP999 < 8000 || s.LatencyP999 > 10000 {
		t.Fatalf("hi-res p99.9 %d, want ~9000", s.LatencyP999)
	}

	// Calls recorded before monitoring started must not leak into the
	// first interval: a fresh monitor over the same recorder starts at
	// zero.
	m2 := New(reg, Options{LatencyDist: rec})
	m2.Tick()
	if s2 := m2.Tick(); s2.LatencyCount != 0 {
		t.Fatalf("fresh monitor counted %d pre-existing calls", s2.LatencyCount)
	}
}

// TestHiResSLOGatesOnP999: the latency-SLO rule gates on the p99.9
// objective for hi-res samples — a tail-only regression that leaves the
// p99 healthy still alerts, which the coarse path cannot do.
func TestHiResSLOGatesOnP999(t *testing.T) {
	reg := telemetry.New()
	rec := dist.NewRecorder(0)
	th := DefaultThresholds()
	m := New(reg, Options{
		LatencyDist: rec,
		Rules:       []Rule{&LatencySLORule{T: th}},
	})
	m.Tick()

	// Every interval: 995 healthy calls, 5 at 3x the p99.9 objective.
	// p99 stays at 620 (under the 2048 p99 objective); p99.9 breaches.
	for i := 0; i < 8; i++ {
		for j := 0; j < 995; j++ {
			rec.Record(620)
		}
		for j := 0; j < 5; j++ {
			rec.Record(3 * th.SLOObjectiveP999)
		}
		m.Tick()
	}
	ev := m.Events()
	if len(ev) == 0 {
		t.Fatal("tail-only regression raised no alert through the hi-res path")
	}
	for _, e := range ev {
		if e.Rule != "latency-slo" {
			t.Fatalf("unexpected rule %q", e.Rule)
		}
		if !strings.Contains(e.Diagnosis, "p99.9") {
			t.Fatalf("diagnosis does not name the p99.9 objective: %q", e.Diagnosis)
		}
		if uint64(e.Threshold) != th.SLOObjectiveP999 {
			t.Fatalf("threshold %v, want %d", e.Threshold, th.SLOObjectiveP999)
		}
	}

	// The same stream through the coarse path stays quiet: the log2 p99
	// never breaches, demonstrating what the upgrade buys.
	mc := New(reg, Options{Rules: []Rule{&LatencySLORule{T: th}}})
	mc.Tick()
	for i := 0; i < 8; i++ {
		for j := 0; j < 995; j++ {
			reg.Histogram(telemetry.MetricHotCallCycles).Observe(620)
		}
		for j := 0; j < 5; j++ {
			reg.Histogram(telemetry.MetricHotCallCycles).Observe(3 * th.SLOObjectiveP999)
		}
		mc.Tick()
	}
	if ev := mc.Events(); len(ev) != 0 {
		t.Fatalf("coarse path unexpectedly alerted on a tail-only regression: %+v", ev)
	}
}

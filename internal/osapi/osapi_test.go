package osapi

import (
	"bytes"
	"errors"
	"testing"

	"hotcalls/internal/mem"
	"hotcalls/internal/sim"
)

func newKernel() *Kernel {
	return NewKernel(mem.New(sim.NewRNG(3)))
}

func TestSyscallCostCharged(t *testing.T) {
	k := newKernel()
	var clk sim.Clock
	k.GetPID(&clk)
	if clk.Now() != SyscallCost {
		t.Fatalf("getpid cost = %d, want %d", clk.Now(), SyscallCost)
	}
}

func TestSocketSendRecvLoopback(t *testing.T) {
	k := newKernel()
	var clk sim.Clock
	a := k.Socket(&clk)
	lfd := k.Socket(&clk)
	if err := k.Listen(&clk, lfd); err != nil {
		t.Fatal(err)
	}
	_ = a
	client, err := k.InjectConnection(lfd)
	if err != nil {
		t.Fatal(err)
	}
	server, err := k.Accept(&clk, lfd)
	if err != nil {
		t.Fatal(err)
	}
	// Client -> server.
	if err := k.Inject(server, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if !k.Readable(server) {
		t.Fatal("server socket should be readable")
	}
	buf := make([]byte, 64)
	n, err := k.Recv(&clk, "read", server, mem.PlainBase+0x100000, buf)
	if err != nil || n != 5 || !bytes.Equal(buf[:5], []byte("hello")) {
		t.Fatalf("recv = (%d, %v, %q)", n, err, buf[:n])
	}
	// Server -> client.
	if _, err := k.Send(&clk, "sendmsg", server, mem.PlainBase+0x100000, []byte("world")); err != nil {
		t.Fatal(err)
	}
	resp, ok := k.TakeRX(client)
	if !ok || !bytes.Equal(resp, []byte("world")) {
		t.Fatalf("client got %q", resp)
	}
}

func TestRecvWouldBlock(t *testing.T) {
	k := newKernel()
	var clk sim.Clock
	fd := k.Socket(&clk)
	if _, err := k.Recv(&clk, "read", fd, mem.PlainBase, make([]byte, 8)); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("err = %v", err)
	}
}

func TestAcceptWithoutListenerFails(t *testing.T) {
	k := newKernel()
	var clk sim.Clock
	fd := k.Socket(&clk)
	if _, err := k.Accept(&clk, fd); !errors.Is(err, ErrNotListener) {
		t.Fatalf("err = %v", err)
	}
	if _, err := k.InjectConnection(fd); !errors.Is(err, ErrNotListener) {
		t.Fatalf("inject err = %v", err)
	}
}

func TestPollCountsReadiness(t *testing.T) {
	k := newKernel()
	var clk sim.Clock
	a, b := k.Socket(&clk), k.Socket(&clk)
	k.Inject(a, []byte("x"))
	if got := k.Poll(&clk, a, b); got != 1 {
		t.Fatalf("poll = %d, want 1", got)
	}
}

func TestFileReadAndSendfile(t *testing.T) {
	k := newKernel()
	var clk sim.Clock
	page := make([]byte, 20*1024)
	for i := range page {
		page[i] = byte(i)
	}
	k.WriteFS("/www/index.html", page)

	fd, err := k.Open(&clk, "/www/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if size, err := k.Fstat(&clk, fd); err != nil || size != len(page) {
		t.Fatalf("fstat = (%d, %v)", size, err)
	}
	buf := make([]byte, 4096)
	if n, err := k.ReadFile(&clk, fd, mem.PlainBase+0x200000, buf); err != nil || n != 4096 {
		t.Fatalf("read = (%d, %v)", n, err)
	}
	if !bytes.Equal(buf, page[:4096]) {
		t.Fatal("file data wrong")
	}

	lfd := k.Socket(&clk)
	k.Listen(&clk, lfd)
	client, _ := k.InjectConnection(lfd)
	conn, _ := k.Accept(&clk, lfd)
	fd2, _ := k.Open(&clk, "/www/index.html")
	n, err := k.Sendfile(&clk, conn, fd2)
	if err != nil || n != len(page) {
		t.Fatalf("sendfile = (%d, %v)", n, err)
	}
	got, ok := k.TakeRX(client)
	if !ok || !bytes.Equal(got, page) {
		t.Fatal("sendfile payload corrupted")
	}
	if k.TX < uint64(len(page)) {
		t.Fatal("TX counter not advanced")
	}
}

func TestOpenMissingFile(t *testing.T) {
	k := newKernel()
	var clk sim.Clock
	if _, err := k.Open(&clk, "/nope"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("err = %v", err)
	}
}

func TestCloseReleasesFD(t *testing.T) {
	k := newKernel()
	var clk sim.Clock
	fd := k.Socket(&clk)
	if err := k.Close(&clk, fd); err != nil {
		t.Fatal(err)
	}
	if err := k.Close(&clk, fd); !errors.Is(err, ErrBadFD) {
		t.Fatalf("double close err = %v", err)
	}
}

func TestSyscallCounters(t *testing.T) {
	k := newKernel()
	var clk sim.Clock
	k.GetPID(&clk)
	k.GetPID(&clk)
	k.Time(&clk)
	c := k.Syscalls()
	if c["getpid"] != 2 || c["time"] != 1 {
		t.Fatalf("counters = %v", c)
	}
}

func TestLargeTransfersCostMoreCycles(t *testing.T) {
	k := newKernel()
	var small, large sim.Clock
	fd := k.Socket(&small)
	k.Inject(fd, make([]byte, 64))
	k.Recv(&small, "read", fd, mem.PlainBase+0x300000, make([]byte, 64))

	fd2 := k.Socket(&large)
	k.Inject(fd2, make([]byte, 16384))
	k.Recv(&large, "read", fd2, mem.PlainBase+0x400000, make([]byte, 16384))
	if large.Now() <= small.Now() {
		t.Fatalf("16 KB recv (%d) should cost more than 64 B recv (%d)", large.Now(), small.Now())
	}
}

func TestReadFileAdvancesPosition(t *testing.T) {
	k := newKernel()
	var clk sim.Clock
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i)
	}
	k.WriteFS("/f", data)
	fd, err := k.Open(&clk, "/f")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	var got []byte
	for {
		n, err := k.ReadFile(&clk, fd, mem.PlainBase+0x500000, buf)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("chunked read returned %d bytes, corrupted", len(got))
	}
}

func TestIndependentOpensHaveIndependentPositions(t *testing.T) {
	k := newKernel()
	var clk sim.Clock
	k.WriteFS("/f", []byte("abcdefgh"))
	fd1, _ := k.Open(&clk, "/f")
	fd2, _ := k.Open(&clk, "/f")
	buf := make([]byte, 4)
	k.ReadFile(&clk, fd1, mem.PlainBase, buf)
	if string(buf) != "abcd" {
		t.Fatalf("fd1 read %q", buf)
	}
	k.ReadFile(&clk, fd2, mem.PlainBase, buf)
	if string(buf) != "abcd" {
		t.Fatalf("fd2 should start at 0, read %q", buf)
	}
}

func TestBadFDEverywhere(t *testing.T) {
	k := newKernel()
	var clk sim.Clock
	if _, err := k.Send(&clk, "send", 99, 0, []byte("x")); !errors.Is(err, ErrBadFD) {
		t.Errorf("Send: %v", err)
	}
	if _, err := k.Recv(&clk, "recv", 99, 0, make([]byte, 1)); !errors.Is(err, ErrBadFD) {
		t.Errorf("Recv: %v", err)
	}
	if _, err := k.Fstat(&clk, 99); !errors.Is(err, ErrBadFD) {
		t.Errorf("Fstat: %v", err)
	}
	if _, err := k.ReadFile(&clk, 99, 0, make([]byte, 1)); !errors.Is(err, ErrBadFD) {
		t.Errorf("ReadFile: %v", err)
	}
	if _, err := k.Sendfile(&clk, 99, 98); !errors.Is(err, ErrBadFD) {
		t.Errorf("Sendfile: %v", err)
	}
	if err := k.Shutdown(&clk, 99); !errors.Is(err, ErrBadFD) {
		t.Errorf("Shutdown: %v", err)
	}
	if err := k.Inject(99, []byte("x")); !errors.Is(err, ErrBadFD) {
		t.Errorf("Inject: %v", err)
	}
}

func TestKernelBufferRingWraps(t *testing.T) {
	// The kernel buffer allocator recycles after 1 GB; hammer it past
	// the wrap point and confirm transfers still work.
	k := newKernel()
	var clk sim.Clock
	fd := k.Socket(&clk)
	payload := make([]byte, 1<<20)
	for i := 0; i < 1100; i++ { // > 1 GB of kernel buffer churn
		k.Inject(fd, payload[:1024])
		if _, err := k.Send(&clk, "send", fd, mem.PlainBase, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Recv(&clk, "recv", fd, mem.PlainBase, payload[:1024]); err != nil {
			t.Fatal(err)
		}
	}
}

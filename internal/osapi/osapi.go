// Package osapi is the untrusted operating-system substrate the
// applications' out-calls land on: an in-memory kernel with sockets, a
// virtual file system, readiness polling, time, and the transfer costs of
// moving data across the user/kernel boundary.
//
// Every system call charges the 150-cycle user/kernel transition the paper
// uses as its baseline ("[45] estimates a transfer to the OS and back in
// 150 cycles") — which is exactly what makes an 8,300-cycle ocall a
// 54-113x degradation.
package osapi

import (
	"errors"
	"fmt"

	"hotcalls/internal/mem"
	"hotcalls/internal/sim"
)

// SyscallCost is the user/kernel round trip (FlexSC, cited as [45]).
const SyscallCost = 150

// HypercallCost is the KVM hypercall baseline the paper quotes for
// comparison (Dall et al., cited as [15]).
const HypercallCost = 1300

// Kernel address-space landmarks: socket and page-cache buffers live in
// plaintext kernel memory.
const (
	kernBufBase = mem.PlainBase + 0x8000_0000
	kernBufSpan = 1 << 30
)

// Errors returned by the kernel.
var (
	ErrBadFD       = errors.New("osapi: bad file descriptor")
	ErrWouldBlock  = errors.New("osapi: operation would block")
	ErrNotListener = errors.New("osapi: not a listening socket")
	ErrNoSuchFile  = errors.New("osapi: no such file")
)

type packet struct {
	data []byte
	addr uint64 // kernel buffer address backing this packet
}

type socket struct {
	fd       int
	rx       []packet // packets waiting to be received
	accepted []int    // pending connections on a listener
	listener bool
	peer     int // fd of the connected peer, -1 if none
	sent     uint64
}

type file struct {
	name string
	data []byte
	addr uint64 // page-cache address
	pos  int
}

// Kernel is the simulated operating system for one machine.  It is not
// safe for concurrent use; application simulations are single-threaded.
type Kernel struct {
	Mem *mem.System

	sockets map[int]*socket
	files   map[int]*file
	fs      map[string][]byte
	fsAddr  map[string]uint64
	nextFD  int
	bufNext uint64
	pid     int

	// TX is the total payload bytes accepted by Send/Sendto/Writev —
	// the iperf-style throughput counter.
	TX uint64

	syscalls map[string]uint64
}

// NewKernel returns a kernel over the given memory system.
func NewKernel(m *mem.System) *Kernel {
	return &Kernel{
		Mem:      m,
		sockets:  make(map[int]*socket),
		files:    make(map[int]*file),
		fs:       make(map[string][]byte),
		fsAddr:   make(map[string]uint64),
		nextFD:   3,
		bufNext:  kernBufBase,
		pid:      4242,
		syscalls: make(map[string]uint64),
	}
}

// Syscalls returns the per-name system-call counts.
func (k *Kernel) Syscalls() map[string]uint64 {
	out := make(map[string]uint64, len(k.syscalls))
	for n, c := range k.syscalls {
		out[n] = c
	}
	return out
}

func (k *Kernel) enter(clk *sim.Clock, name string) {
	k.syscalls[name]++
	clk.Advance(SyscallCost)
}

func (k *Kernel) kalloc(size uint64) uint64 {
	addr := k.bufNext
	k.bufNext += (size + 63) / 64 * 64
	if k.bufNext > kernBufBase+kernBufSpan {
		k.bufNext = kernBufBase // ring around: kernel buffers recycle
		addr = k.bufNext
		k.bufNext += (size + 63) / 64 * 64
	}
	return addr
}

// --- Sockets ---

// Socket creates a datagram/stream socket.
func (k *Kernel) Socket(clk *sim.Clock) int {
	k.enter(clk, "socket")
	return k.newSocket()
}

func (k *Kernel) newSocket() int {
	fd := k.nextFD
	k.nextFD++
	k.sockets[fd] = &socket{fd: fd, peer: -1}
	return fd
}

// Listen marks a socket as accepting connections.
func (k *Kernel) Listen(clk *sim.Clock, fd int) error {
	k.enter(clk, "listen")
	s, ok := k.sockets[fd]
	if !ok {
		return ErrBadFD
	}
	s.listener = true
	return nil
}

// InjectConnection queues a new client connection on a listener and
// returns the client-side fd.  Workload generators use this without cost —
// the client runs on other cores.
func (k *Kernel) InjectConnection(listenFD int) (clientFD int, err error) {
	l, ok := k.sockets[listenFD]
	if !ok || !l.listener {
		return 0, ErrNotListener
	}
	server := k.newSocket()
	client := k.newSocket()
	k.sockets[server].peer = client
	k.sockets[client].peer = server
	l.accepted = append(l.accepted, server)
	return client, nil
}

// Accept pops a pending connection off a listener.
func (k *Kernel) Accept(clk *sim.Clock, fd int) (int, error) {
	k.enter(clk, "accept")
	l, ok := k.sockets[fd]
	if !ok || !l.listener {
		return 0, ErrNotListener
	}
	if len(l.accepted) == 0 {
		return 0, ErrWouldBlock
	}
	conn := l.accepted[0]
	l.accepted = l.accepted[1:]
	return conn, nil
}

// Inject queues payload bytes for reception on fd, as if a remote peer
// had sent them.  Generators use this without cost.
func (k *Kernel) Inject(fd int, data []byte) error {
	s, ok := k.sockets[fd]
	if !ok {
		return ErrBadFD
	}
	cp := append([]byte(nil), data...)
	s.rx = append(s.rx, packet{data: cp, addr: k.kalloc(uint64(len(cp)))})
	return nil
}

// Readable reports whether fd has queued data, without a syscall.
func (k *Kernel) Readable(fd int) bool {
	s, ok := k.sockets[fd]
	return ok && len(s.rx) > 0
}

// Recv copies one queued packet into the user buffer at userAddr and
// charges the kernel-to-user copy.  It returns the byte count.
func (k *Kernel) Recv(clk *sim.Clock, name string, fd int, userAddr uint64, userBuf []byte) (int, error) {
	k.enter(clk, name)
	s, ok := k.sockets[fd]
	if !ok {
		return 0, ErrBadFD
	}
	if len(s.rx) == 0 {
		return 0, ErrWouldBlock
	}
	pkt := s.rx[0]
	s.rx = s.rx[1:]
	n := copy(userBuf, pkt.data)
	k.Mem.Copy(clk, userAddr, pkt.addr, uint64(n))
	return n, nil
}

// Send copies user bytes into a kernel buffer and delivers them to the
// peer socket (or counts them as transmitted when the peer is remote).
func (k *Kernel) Send(clk *sim.Clock, name string, fd int, userAddr uint64, data []byte) (int, error) {
	k.enter(clk, name)
	s, ok := k.sockets[fd]
	if !ok {
		return 0, ErrBadFD
	}
	kaddr := k.kalloc(uint64(len(data)))
	k.Mem.Copy(clk, kaddr, userAddr, uint64(len(data)))
	k.TX += uint64(len(data))
	s.sent += uint64(len(data))
	if peer, ok := k.sockets[s.peer]; ok {
		peer.rx = append(peer.rx, packet{data: append([]byte(nil), data...), addr: kaddr})
	}
	return len(data), nil
}

// Sent returns the number of bytes transmitted through fd.
func (k *Kernel) Sent(fd int) uint64 {
	if s, ok := k.sockets[fd]; ok {
		return s.sent
	}
	return 0
}

// TakeRX pops one packet destined to fd without cost — the generator side
// consuming server responses.
func (k *Kernel) TakeRX(fd int) ([]byte, bool) {
	s, ok := k.sockets[fd]
	if !ok || len(s.rx) == 0 {
		return nil, false
	}
	pkt := s.rx[0]
	s.rx = s.rx[1:]
	return pkt.data, true
}

// Close releases a descriptor.
func (k *Kernel) Close(clk *sim.Clock, fd int) error {
	k.enter(clk, "close")
	if _, ok := k.sockets[fd]; ok {
		delete(k.sockets, fd)
		return nil
	}
	if _, ok := k.files[fd]; ok {
		delete(k.files, fd)
		return nil
	}
	return ErrBadFD
}

// Shutdown half-closes a socket.
func (k *Kernel) Shutdown(clk *sim.Clock, fd int) error {
	k.enter(clk, "shutdown")
	if _, ok := k.sockets[fd]; !ok {
		return ErrBadFD
	}
	return nil
}

// --- Cheap metadata syscalls: cost only ---

// Poll checks readiness of a set of descriptors.
func (k *Kernel) Poll(clk *sim.Clock, fds ...int) int {
	k.enter(clk, "poll")
	ready := 0
	for _, fd := range fds {
		if k.Readable(fd) {
			ready++
		}
	}
	return ready
}

// EpollCtl registers interest; the model only charges the transition.
func (k *Kernel) EpollCtl(clk *sim.Clock) { k.enter(clk, "epoll_ctl") }

// Fcntl manipulates descriptor flags.
func (k *Kernel) Fcntl(clk *sim.Clock) { k.enter(clk, "fcntl") }

// Setsockopt sets socket options.
func (k *Kernel) Setsockopt(clk *sim.Clock) { k.enter(clk, "setsockopt") }

// Ioctl performs a device control call.
func (k *Kernel) Ioctl(clk *sim.Clock) { k.enter(clk, "ioctl") }

// Time returns wall-clock seconds derived from the calling core's cycles.
func (k *Kernel) Time(clk *sim.Clock) uint64 {
	k.enter(clk, "time")
	return uint64(sim.Seconds(clk.Now()))
}

// GetPID returns the process ID (OpenSSL calls this on every cryptographic
// context operation, which is why it shows up so high in Table 2).
func (k *Kernel) GetPID(clk *sim.Clock) int {
	k.enter(clk, "getpid")
	return k.pid
}

// --- Files ---

// WriteFS installs a file into the in-memory file system (no cost: setup).
func (k *Kernel) WriteFS(name string, data []byte) {
	k.fs[name] = append([]byte(nil), data...)
	k.fsAddr[name] = k.kalloc(uint64(len(data)))
}

// Open opens a file.
func (k *Kernel) Open(clk *sim.Clock, name string) (int, error) {
	k.enter(clk, "open64")
	data, ok := k.fs[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchFile, name)
	}
	fd := k.nextFD
	k.nextFD++
	k.files[fd] = &file{name: name, data: data, addr: k.fsAddr[name]}
	return fd, nil
}

// Fstat returns a file's size.
func (k *Kernel) Fstat(clk *sim.Clock, fd int) (int, error) {
	k.enter(clk, "fxstat64")
	f, ok := k.files[fd]
	if !ok {
		return 0, ErrBadFD
	}
	return len(f.data), nil
}

// ReadFile copies file bytes into the user buffer.
func (k *Kernel) ReadFile(clk *sim.Clock, fd int, userAddr uint64, userBuf []byte) (int, error) {
	k.enter(clk, "read")
	f, ok := k.files[fd]
	if !ok {
		return 0, ErrBadFD
	}
	n := copy(userBuf, f.data[f.pos:])
	k.Mem.Copy(clk, userAddr, f.addr+uint64(f.pos), uint64(n))
	f.pos += n
	return n, nil
}

// Sendfile streams a whole file to a socket inside the kernel: no
// user-space copy, which is why lighttpd uses it for page bodies.
func (k *Kernel) Sendfile(clk *sim.Clock, outFD, inFD int) (int, error) {
	k.enter(clk, "sendfile64")
	f, ok := k.files[inFD]
	if !ok {
		return 0, ErrBadFD
	}
	s, ok := k.sockets[outFD]
	if !ok {
		return 0, ErrBadFD
	}
	// Kernel-side page-cache to socket-buffer move.
	k.Mem.StreamRead(clk, f.addr, uint64(len(f.data)))
	k.TX += uint64(len(f.data))
	s.sent += uint64(len(f.data))
	if peer, ok := k.sockets[s.peer]; ok {
		peer.rx = append(peer.rx, packet{data: append([]byte(nil), f.data...), addr: f.addr})
	}
	return len(f.data), nil
}

package core

// This file is the HotCalls fabric: the multi-requester design the paper
// sketches but never builds (Section 4.2, "Maximizing utilization" /
// "Conserving resources at idle times"), grown into a runnable runtime.
//
// The single HotCall slot of hotcalls.go pairs all requesters with one
// responder through one spin lock: every submission ping-pongs the same
// cache line between cores, and only one call can be in flight at a time.
// The fabric replaces that with a CallPool:
//
//   - One shard per requester goroutine.  A shard is a small ring of
//     cache-line-padded slots owned by exactly one requester, so the
//     submission path takes no lock at all: the requester writes the
//     call's id and data into its next ring slot and publishes it with
//     one release store.  Requester-written words and responder-written
//     words live on separate cache lines, so a responder finishing one
//     call never invalidates the line a requester is busy writing.
//
//   - A pool of responders (scale.go) claims work across shards through
//     a per-shard tail cursor: one compare-and-swap claims a posted slot
//     exclusively, so any number of responders can drain any shard
//     without double-executing a call.
//
//   - The ring depth is the per-requester window: a requester may keep
//     up to SlotsPerShard asynchronous calls in flight (Submit/Wait),
//     which is what lets one polling quantum of a responder drain a
//     whole batch — the "merging several threads' queues" economics of
//     Section 4.2 — instead of paying a scheduling handoff per call.
//
// The request path allocates nothing: call data is a typed uint64 (no
// interface{} boxing), and async PoolPending handles come from a
// sync.Pool.  TestPoolCallZeroAlloc and BenchmarkPoolCall assert this.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"hotcalls/internal/flight"
	"hotcalls/internal/sdk"
	"hotcalls/internal/telemetry"
)

// cacheLine is the coherence granule the slot layout is padded to.  x86
// parts prefetch line pairs, so hot structures are padded to two lines
// where adjacent-line false sharing would hurt.
const cacheLine = 64

// Slot states.  A slot cycles posted ← idle ← done ← posted; the claim
// step (responder taking ownership) is the shard tail CAS, not a state
// transition, so the responder writes the state word exactly once per
// call (the done release-store that doubles as the completion signal).
const (
	slotIdle uint32 = iota
	slotPosted
	slotDone
)

// poolSlot is one call cell.  Layout matters:
//
//	line 0 (requester-written): state, id, data, nseg.  The state word is
//	  the handoff flag both sides read, but only the requester and the
//	  one claiming responder ever write it, one store each per call.
//	  nseg rides here so the 0-segment legacy path clears it on a line it
//	  is already writing, never touching line 1.
//	line 1 (requester-written): the scatter-gather descriptor block
//	  (ring.go).  Only zero-copy calls write it; the slotPosted release
//	  store on line 0 is its publication fence, exactly as for fr.
//	line 2 (responder-written): ret.  Kept off the requester lines so the
//	  responder storing a result does not invalidate a line a pipelining
//	  requester is concurrently posting its next call on.
//
// fr is the call's flight record (nil on unsampled calls or with the
// recorder detached).  It rides line 0 with the other requester-written
// words: the requester stores it before the slotPosted release store and
// the responder reads it after the acquire load of state, so the
// existing handoff protocol is also its publication fence.
type poolSlot struct {
	state atomic.Uint32
	_     [4]byte
	id    CallID
	data  uint64
	fr    *flight.Record
	nseg  uint32
	_     [cacheLine - 36]byte
	segs  [MaxSegs]Segment
	_     [cacheLine - 12*MaxSegs]byte
	ret   uint64
	_     [cacheLine - 8]byte
}

// PoolFunc is a fabric call-table entry.  requester identifies the
// submitting shard (stable for the life of the pool), which is how
// applications address per-requester buffers without boxing pointers
// through the call word; data is the call's typed payload.
type PoolFunc func(requester int, data uint64) uint64

// shard is one requester's ring.  head is owned by the requester alone
// (no atomics needed); tail is the responders' claim cursor.  They sit
// on separate cache lines so requester posting and responder claiming
// never false-share.
type shard struct {
	slots []poolSlot
	mask  uint64

	_    [cacheLine - 24]byte
	head uint64 // next post position; requester-owned
	_    [cacheLine - 8]byte
	tail atomic.Uint64 // next claim position; responder-shared
	_    [cacheLine - 8]byte
}

// hasWork reports whether the slot at the claim cursor is posted.
func (sh *shard) hasWork() bool {
	return sh.slots[sh.tail.Load()&sh.mask].state.Load() == slotPosted
}

// PoolOptions tunes a CallPool.  The zero value selects the defaults
// noted on each field.
type PoolOptions struct {
	// Shards is the number of requester slots rings (default
	// GOMAXPROCS).  Requester() hands them out; creating more
	// requesters than shards panics.
	Shards int

	// SlotsPerShard is the ring depth — the per-requester async window
	// (default 64, rounded up to a power of two).
	SlotsPerShard int

	// MinResponders and MaxResponders bound the adaptive responder pool
	// (defaults 1 and GOMAXPROCS; see scale.go).
	MinResponders int
	MaxResponders int

	// Timeout is the submission-attempt limit before Call/Submit gives
	// up with ErrTimeout, the paper's starvation fallback (default
	// DefaultTimeout).  Each attempt re-checks the requester's own ring
	// slot, so a timeout means the window stayed full — the responders
	// are saturated — for that many attempts.
	Timeout int

	// ScaleUpOccupancy and ScaleDownOccupancy are the window-occupancy
	// watermarks of the adaptive controller (defaults 0.5 and 0.05):
	// occupancy is executes/polls over the last control window, i.e.
	// the fraction of slot inspections that found work.
	ScaleUpOccupancy   float64
	ScaleDownOccupancy float64

	// ControlWindow is how many primary-responder scan passes elapse
	// between adaptive decisions (default 256).
	ControlWindow int

	// SpinPasses is how many consecutive empty scan passes a responder
	// burns hot before it starts yielding (default 16); YieldPasses is
	// how many yielding passes before it goes to sleep on the pool's
	// condition variable (default 64).  Together they are the
	// spin→yield→sleep backoff ladder of Section 4.2's idle story.
	SpinPasses  int
	YieldPasses int

	// RingSlabs enables the zero-copy payload rings (ring.go): each
	// requester shard gets this many fixed-size slabs carved from one
	// shared allocation at pool construction (default 0 — no rings).
	RingSlabs int

	// RingSlabBytes is the slab size (default 64 KiB when rings are
	// enabled).  A scatter-gather segment never crosses a slab, so this
	// bounds the largest single zero-copy transfer unit.
	RingSlabBytes int
}

func (o *PoolOptions) fill() {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.SlotsPerShard <= 0 {
		o.SlotsPerShard = 64
	}
	// Round the ring up to a power of two so post/claim positions mask
	// instead of dividing.
	n := 1
	for n < o.SlotsPerShard {
		n <<= 1
	}
	o.SlotsPerShard = n
	if o.MinResponders <= 0 {
		o.MinResponders = 1
	}
	if o.MaxResponders <= 0 {
		o.MaxResponders = runtime.GOMAXPROCS(0)
	}
	if o.MaxResponders < o.MinResponders {
		o.MaxResponders = o.MinResponders
	}
	if o.Timeout <= 0 {
		o.Timeout = DefaultTimeout
	}
	if o.ScaleUpOccupancy <= 0 {
		o.ScaleUpOccupancy = 0.5
	}
	if o.ScaleDownOccupancy <= 0 {
		o.ScaleDownOccupancy = 0.05
	}
	if o.ControlWindow <= 0 {
		o.ControlWindow = 256
	}
	if o.SpinPasses <= 0 {
		o.SpinPasses = 16
	}
	if o.YieldPasses <= 0 {
		o.YieldPasses = 64
	}
	if o.RingSlabs > 0 && o.RingSlabBytes <= 0 {
		o.RingSlabBytes = 64 << 10
	}
}

// CallPool is the fabric: sharded slot rings on the requester side, an
// adaptive responder pool (scale.go) on the other.  Create with
// NewCallPool, attach telemetry before Start, hand out shards with
// Requester, and Stop when done.
type CallPool struct {
	opts   PoolOptions
	shards []*shard
	table  []PoolFunc

	// vtable is the scatter-gather call table (SetVecTable); a posted
	// slot with nseg > 0 dispatches here instead of table.
	vtable []PoolVecFunc

	// rings holds one zero-copy payload ring per shard, nil unless
	// PoolOptions.RingSlabs > 0 (see ring.go).
	rings []*PayloadRing

	nextShard atomic.Int32
	stopped   atomic.Bool

	// Idle-responder parking.  sleepers counts responders inside the
	// wake wait; requesters signal after posting only when it is
	// non-zero, so the loaded steady state never touches the mutex.
	sleepers atomic.Int32
	wake     sdk.Cond

	// Adaptive-pool state (scale.go).
	minR, maxR atomic.Int32
	target     atomic.Int32
	live       atomic.Int32
	polls      atomic.Uint64 // slot inspections, pool-wide
	executes   atomic.Uint64 // claimed calls, pool-wide
	wg         sync.WaitGroup

	// Controller bookkeeping: last-window totals, read and written only
	// by the primary responder inside control(), so plain fields.
	ctrlPolls    uint64
	ctrlExecutes uint64

	pendingPool sync.Pool
	batchPool   sync.Pool

	// flight is the per-callsite flight recorder, nil until SetFlight.
	// The hot path pays one nil-check when detached; when attached,
	// every call costs one arrival count and 1-in-SampleEvery calls
	// get a full causal-timeline record (see internal/flight).
	flight *flight.Recorder

	// Telemetry handles, nil (no-op) until SetTelemetry; cached so the
	// hot path never does a registry lookup.
	requests   *telemetry.Counter
	timeouts   *telemetry.Counter
	pollCtr    *telemetry.Counter
	executeCtr *telemetry.Counter
	sleepCtr   *telemetry.Counter
	scaleUps   *telemetry.Counter
	scaleDowns *telemetry.Counter
	liveGauge  *telemetry.Gauge
	maxGauge   *telemetry.Gauge
	occGauge   *telemetry.Gauge
	respOcc    []*telemetry.Gauge // per-responder occupancy, indexed by responder
}

// NewCallPool builds a fabric over the given call table.  Responders do
// not run until Start.
func NewCallPool(table []PoolFunc, opts PoolOptions) *CallPool {
	opts.fill()
	p := &CallPool{opts: opts, table: table}
	p.shards = make([]*shard, opts.Shards)
	for i := range p.shards {
		p.shards[i] = &shard{
			slots: make([]poolSlot, opts.SlotsPerShard),
			mask:  uint64(opts.SlotsPerShard - 1),
		}
	}
	if opts.RingSlabs > 0 {
		p.rings = make([]*PayloadRing, opts.Shards)
		for i := range p.rings {
			p.rings[i] = newPayloadRing(opts.RingSlabs, opts.RingSlabBytes)
		}
	}
	p.minR.Store(int32(opts.MinResponders))
	p.maxR.Store(int32(opts.MaxResponders))
	p.target.Store(int32(opts.MinResponders))
	p.pendingPool.New = func() any { return new(PoolPending) }
	p.batchPool.New = func() any { return new(PoolBatch) }
	return p
}

// SetVecTable attaches the scatter-gather call table: entry id handles
// zero-copy calls posted with CallZC/SubmitZC/SubmitV segments.  The id
// space is independent of the plain table (a slot's segment count picks
// the table).  Attach before Start.
func (p *CallPool) SetVecTable(vt []PoolVecFunc) { p.vtable = vt }

// SetTelemetry attaches the fabric's counters and gauges from the
// registry: submission traffic, responder economics (the same
// responder poll/execute/sleep counters the single-slot protocol
// feeds, so existing occupancy monitoring keeps working), and the
// adaptive controller's decisions.  A nil registry detaches.  Attach
// before Start.
func (p *CallPool) SetTelemetry(reg *telemetry.Registry) {
	p.requests = reg.Counter(telemetry.MetricHotCallRequests)
	p.timeouts = reg.Counter(telemetry.MetricHotCallTimeouts)
	p.pollCtr = reg.Counter(telemetry.MetricResponderPolls)
	p.executeCtr = reg.Counter(telemetry.MetricResponderExecutes)
	p.sleepCtr = reg.Counter(telemetry.MetricResponderSleeps)
	p.scaleUps = reg.Counter(telemetry.MetricPoolScaleUps)
	p.scaleDowns = reg.Counter(telemetry.MetricPoolScaleDowns)
	p.liveGauge = reg.Gauge(telemetry.MetricPoolResponders)
	p.maxGauge = reg.Gauge(telemetry.MetricPoolRespondersMax)
	p.occGauge = reg.Gauge(telemetry.MetricPoolOccupancyMilli)
	if reg == nil {
		p.respOcc = nil
		return
	}
	p.respOcc = make([]*telemetry.Gauge, p.opts.MaxResponders)
	for i := range p.respOcc {
		p.respOcc[i] = reg.Gauge(telemetry.PoolResponderOccupancyMetric(i))
	}
	p.maxGauge.Set(int64(p.opts.MaxResponders))
}

// SetFlight attaches the flight recorder: binds one record ring per
// shard, points its wasted-spin attribution at the pool's poll/execute
// totals, and turns on per-callsite arrival counting and timeline
// sampling for every subsequent call.  A nil recorder detaches.
// Attach before Start.
func (p *CallPool) SetFlight(rec *flight.Recorder) {
	if rec != nil {
		rec.Bind(len(p.shards))
		rec.SetOccupancySource(p.Stats)
	}
	p.flight = rec
}

// Flight returns the attached flight recorder (nil when detached).
func (p *CallPool) Flight() *flight.Recorder { return p.flight }

// Requester binds the next free shard to the calling goroutine and
// returns its handle.  A Requester must be used from one goroutine at a
// time; the pool supports at most Shards of them.
func (p *CallPool) Requester() *Requester {
	idx := int(p.nextShard.Add(1)) - 1
	if idx >= len(p.shards) {
		panic("core: CallPool requesters exhausted (raise PoolOptions.Shards)")
	}
	return &Requester{pool: p, shard: p.shards[idx], idx: idx}
}

// Stop shuts the fabric down: responders exit after their current call,
// sleeping responders are woken, and subsequent or in-flight
// submissions fail with ErrStopped.
func (p *CallPool) Stop() {
	p.stopped.Store(true)
	p.wake.Broadcast()
	p.wg.Wait()
	p.liveGauge.Set(0)
}

// Stopped reports whether Stop has been called.
func (p *CallPool) Stopped() bool { return p.stopped.Load() }

// Requester is one shard's submission handle.
type Requester struct {
	pool  *CallPool
	shard *shard
	idx   int
}

// Index returns the requester's stable shard index, the value handlers
// receive as their requester argument.
func (r *Requester) Index() int { return r.idx }

// post plants one call in the requester's ring, spinning through the
// attempt budget when the window is full.  On success the slot pointer
// and the call's flight record (nil when unsampled or detached) are
// returned for the completion wait.  The flight stamp happens before
// the submission spin, so a window-full wait is part of the recorded
// latency; the record is closed on every exit path, so a timeout or
// shutdown never leaves an open record to wedge the digest.
func (r *Requester) post(cs flight.Callsite, id CallID, data uint64) (*poolSlot, *flight.Record, error) {
	p := r.pool
	sh := r.shard
	p.requests.Inc()
	var fr *flight.Record
	// Two-step Arrive/Open instead of Begin: Arrive inlines, so the
	// 255-in-256 unsampled calls pay no function call here.
	if f := p.flight; f != nil && f.Arrive(cs, r.idx) {
		fr = f.Open(cs, r.idx, uint16(id))
		// Pool-state context only on sampled calls: these gauges live
		// on responder-shared cache lines, so reading them per call
		// would put a coherence miss on the unsampled path.
		fr.Context(int(sh.head-sh.tail.Load()), int(p.live.Load()), int(p.sleepers.Load()))
	}
	for attempt := 0; attempt < p.opts.Timeout; attempt++ {
		if p.stopped.Load() {
			p.flight.Stopped(fr)
			return nil, nil, ErrStopped
		}
		s := &sh.slots[sh.head&sh.mask]
		if s.state.Load() == slotIdle {
			s.id = id
			s.data = data
			if p.flight != nil {
				// Unconditional when attached (nil on unsampled calls)
				// so a slot never carries a stale record across reuse.
				s.fr = fr
			}
			// Clear the segment count so a reused slot never replays a
			// prior zero-copy call's descriptors; nseg lives on this
			// line, so the store costs no extra coherence traffic.
			s.nseg = 0
			s.state.Store(slotPosted)
			sh.head++
			if p.sleepers.Load() != 0 {
				p.wake.Signal()
			}
			return s, fr, nil
		}
		// Window full: every slot in the ring holds an in-flight or
		// un-reaped call.  Yield so responders (and, on a single
		// hardware thread, the goroutine that must reap) can run.
		pause()
	}
	p.timeouts.Inc()
	p.flight.Timeout(cs, r.idx, fr)
	return nil, nil, ErrTimeout
}

// Call executes call-table entry id with data through the fabric and
// waits for the result.  It returns ErrTimeout when the requester's
// window stayed full for the attempt budget (fall back to a regular SDK
// call, as in the paper's starvation mitigation) and ErrStopped after
// Stop.  The path performs no allocation.  Calls made through Call
// aggregate under the flight recorder's "(unlabelled)" callsite; use
// CallAt to attribute them.
func (r *Requester) Call(id CallID, data uint64) (uint64, error) {
	return r.CallAt(flight.Callsite{}, id, data)
}

// CallAt is Call stamped with a registered flight-recorder callsite, so
// the call's arrival rate, timeline, and wasted-spin share aggregate
// under that callsite in /debug/flight.
func (r *Requester) CallAt(cs flight.Callsite, id CallID, data uint64) (uint64, error) {
	s, fr, err := r.post(cs, id, data)
	if err != nil {
		return 0, err
	}
	for {
		if s.state.Load() == slotDone {
			ret := s.ret
			if fr != nil {
				// Complete = Return + the armed tail sampler's outlier
				// check (one plain cutoff load + compare).
				r.pool.flight.Complete(fr)
			}
			s.state.Store(slotIdle)
			return ret, nil
		}
		if r.pool.stopped.Load() {
			r.pool.flight.Stopped(fr)
			return 0, ErrStopped
		}
		pause()
	}
}

// CallOrFallback is Call with the paper's starvation mitigation: a
// submission timeout degrades to the fallback path instead of failing.
func (r *Requester) CallOrFallback(id CallID, data uint64, fallback func() (uint64, error)) (uint64, error) {
	return r.CallOrFallbackAt(flight.Callsite{}, id, data, fallback)
}

// CallOrFallbackAt is CallOrFallback with per-callsite flight
// attribution; fallback degradations count against the callsite.
func (r *Requester) CallOrFallbackAt(cs flight.Callsite, id CallID, data uint64, fallback func() (uint64, error)) (uint64, error) {
	ret, err := r.CallAt(cs, id, data)
	if err == ErrTimeout {
		r.pool.flight.Fallback(cs)
		return fallback()
	}
	return ret, err
}

// PoolPending is a handle to an asynchronous fabric call.  Handles come
// from a sync.Pool and are recycled when the call is collected, so the
// steady-state Submit/Wait path allocates nothing.  A collected handle
// must not be reused.
type PoolPending struct {
	pool *CallPool
	slot *poolSlot
	fr   *flight.Record

	// Slab-recycle attachment (RecycleSlab): slabs given back to ring
	// when the completion is reaped.  A call references at most MaxSegs
	// distinct slabs, so a fixed array keeps the handle allocation-free.
	ring   *PayloadRing
	rslab  [MaxSegs]uint32
	nrslab uint8
}

// RecycleSlab attaches a slab to the pending call: it returns to ring's
// free list when Poll or Wait reaps the completion.  Duplicates are
// deduplicated so every segment of a scatter-gather call may be
// attached without double-releasing a shared slab.
func (pd *PoolPending) RecycleSlab(ring *PayloadRing, slab uint32) {
	for i := 0; i < int(pd.nrslab); i++ {
		if pd.rslab[i] == slab {
			return
		}
	}
	pd.ring = ring
	pd.rslab[pd.nrslab] = slab
	pd.nrslab++
}

// releaseSlabs returns attached slabs to their ring.  Runs on the
// requester goroutine (Poll/Wait), which owns the free list.
func (pd *PoolPending) releaseSlabs() {
	for i := 0; i < int(pd.nrslab); i++ {
		pd.ring.Release(pd.rslab[i])
	}
}

// Submit plants a call without waiting.  Up to SlotsPerShard calls may
// be in flight per requester; beyond that Submit spins on the window
// and eventually returns ErrTimeout.  Calls complete in submission
// order per requester (the ring is FIFO), so collecting the oldest
// Pending first keeps the window moving.
func (r *Requester) Submit(id CallID, data uint64) (*PoolPending, error) {
	return r.SubmitAt(flight.Callsite{}, id, data)
}

// SubmitAt is Submit stamped with a registered flight-recorder
// callsite (see CallAt).
func (r *Requester) SubmitAt(cs flight.Callsite, id CallID, data uint64) (*PoolPending, error) {
	s, fr, err := r.post(cs, id, data)
	if err != nil {
		return nil, err
	}
	pd := r.pool.pendingPool.Get().(*PoolPending)
	pd.pool = r.pool
	pd.slot = s
	pd.fr = fr
	return pd, nil
}

// Poll checks for completion without blocking.  Once it returns a
// result the handle is recycled and the slot is free for reuse.
func (pd *PoolPending) Poll() (uint64, error) {
	s := pd.slot
	if s.state.Load() == slotDone {
		ret := s.ret
		if pd.fr != nil {
			pd.pool.flight.Complete(pd.fr)
		}
		s.state.Store(slotIdle)
		pd.releaseSlabs()
		pd.release()
		return ret, nil
	}
	if pd.pool.stopped.Load() {
		pd.pool.flight.Stopped(pd.fr)
		pd.releaseSlabs()
		pd.release()
		return 0, ErrStopped
	}
	return 0, ErrNotComplete
}

// Wait blocks (yielding) until the call completes.
func (pd *PoolPending) Wait() (uint64, error) {
	for {
		ret, err := pd.Poll()
		if err != ErrNotComplete {
			return ret, err
		}
		pause()
	}
}

func (pd *PoolPending) release() {
	pool := pd.pool
	pd.pool = nil
	pd.slot = nil
	pd.fr = nil
	pd.ring = nil
	pd.nrslab = 0
	pool.pendingPool.Put(pd)
}

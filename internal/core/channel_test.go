package core

import (
	"testing"

	"hotcalls/internal/edl"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sgx"
	"hotcalls/internal/sim"
)

const chanEDL = `
enclave {
    trusted {
        public int ecall_work([in, out, size=len] uint8_t* buf, size_t len);
        public int ecall_empty(void);
    };
    untrusted {
        int ocall_empty(void);
        int ocall_read([out, size=cap] uint8_t* buf, size_t cap);
        int ocall_send([in, size=len] uint8_t* buf, size_t len);
    };
};
`

type chanFixture struct {
	p  *sgx.Platform
	e  *sgx.Enclave
	rt *sdk.Runtime
	ch *Channel
}

func newChanFixture(t testing.TB) *chanFixture {
	t.Helper()
	p := sgx.NewPlatform(7)
	var clk sim.Clock
	e := p.ECreate(&clk, 64<<20, 2, sgx.Attributes{})
	e.EAdd(&clk, 0, make([]byte, sgx.PageSize))
	if err := e.EInit(&clk); err != nil {
		t.Fatal(err)
	}
	rt := sdk.New(p, e, edl.MustParse(chanEDL))
	rt.MustBindECall("ecall_empty", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 { return 3 })
	rt.MustBindECall("ecall_work", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		for i := range args[0].Buf.Data {
			args[0].Buf.Data[i] += 1
		}
		return 0
	})
	rt.MustBindOCall("ocall_empty", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 { return 5 })
	rt.MustBindOCall("ocall_read", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		for i := range args[0].Buf.Data {
			args[0].Buf.Data[i] = byte(i)
		}
		return uint64(len(args[0].Buf.Data))
	})
	rt.MustBindOCall("ocall_send", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		var sum uint64
		for _, b := range args[0].Buf.Data {
			sum += uint64(b)
		}
		return sum
	})
	return &chanFixture{p: p, e: e, rt: rt, ch: NewChannel(rt, p.RNG)}
}

func (f *chanFixture) enclaveBuf(t testing.TB, size int) *sdk.Buffer {
	t.Helper()
	var clk sim.Clock
	addr, err := f.e.Alloc(&clk, uint64(size))
	if err != nil {
		t.Fatal(err)
	}
	return &sdk.Buffer{Addr: addr, Data: make([]byte, size)}
}

func TestHotOCallDataPath(t *testing.T) {
	f := newChanFixture(t)
	var clk sim.Clock
	dst := f.enclaveBuf(t, 64)
	ret, err := f.ch.HotOCall(&clk, "ocall_read", sdk.Buf(dst), sdk.Scalar(64))
	if err != nil {
		t.Fatal(err)
	}
	if ret != 64 {
		t.Fatalf("ret = %d", ret)
	}
	for i, b := range dst.Data {
		if b != byte(i) {
			t.Fatalf("dst[%d] = %d", i, b)
		}
	}
}

func TestHotOCallSendSums(t *testing.T) {
	f := newChanFixture(t)
	var clk sim.Clock
	src := f.enclaveBuf(t, 100)
	var want uint64
	for i := range src.Data {
		src.Data[i] = byte(i * 5)
		want += uint64(byte(i * 5))
	}
	ret, err := f.ch.HotOCall(&clk, "ocall_send", sdk.Buf(src), sdk.Scalar(100))
	if err != nil {
		t.Fatal(err)
	}
	if ret != want {
		t.Fatalf("sum = %d, want %d", ret, want)
	}
}

func TestHotECallDataPath(t *testing.T) {
	f := newChanFixture(t)
	var clk sim.Clock
	buf := f.rt.Arena.AllocBuffer(&clk, 32)
	for i := range buf.Data {
		buf.Data[i] = byte(i)
	}
	if _, err := f.ch.HotECall(&clk, "ecall_work", sdk.Buf(buf), sdk.Scalar(32)); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf.Data {
		if b != byte(i)+1 {
			t.Fatalf("buf[%d] = %d", i, b)
		}
	}
}

func TestHotCallSpeedupOverSDK(t *testing.T) {
	// The headline claim: HotCalls are 13-27x faster than SDK calls.
	f := newChanFixture(t)

	// Warm both paths.
	var warm sim.Clock
	for i := 0; i < 50; i++ {
		f.ch.HotOCall(&warm, "ocall_empty")
	}
	hot := sim.MeasureN(f.p.RNG, 5000, func() uint64 {
		var clk sim.Clock
		if _, err := f.ch.HotOCall(&clk, "ocall_empty"); err != nil {
			panic(err)
		}
		return clk.Now()
	}).Sample.Median()

	var ocallCycles uint64
	f.rt.MustBindECall("ecall_empty", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		start := ctx.Clk.Now()
		if _, err := ctx.OCall("ocall_empty"); err != nil {
			panic(err)
		}
		ocallCycles = ctx.Clk.Since(start)
		return 0
	})
	for i := 0; i < 50; i++ {
		var clk sim.Clock
		f.rt.ECall(&clk, "ecall_empty")
	}
	sdkCost := sim.MeasureN(f.p.RNG, 5000, func() uint64 {
		var clk sim.Clock
		f.rt.ECall(&clk, "ecall_empty")
		return ocallCycles
	}).Sample.Median()

	speedup := sdkCost / hot
	t.Logf("hot ocall median = %.0f, SDK ocall median = %.0f, speedup = %.1fx", hot, sdkCost, speedup)
	if speedup < 10 || speedup > 30 {
		t.Errorf("speedup = %.1fx, paper reports 13-27x", speedup)
	}
}

func TestHotCallCountersRecorded(t *testing.T) {
	f := newChanFixture(t)
	var clk sim.Clock
	f.ch.HotOCall(&clk, "ocall_empty")
	f.ch.HotOCall(&clk, "ocall_empty")
	f.ch.HotECall(&clk, "ecall_empty")
	c := f.rt.Counters()
	if c["ocall_empty"] != 2 || c["ecall_empty"] != 1 {
		t.Fatalf("counters = %v", c)
	}
}

func TestHotOCallSecurityChecksStillApply(t *testing.T) {
	// HotCalls reuse the SDK marshalling, so boundary checks must be
	// enforced identically (Section 5).
	f := newChanFixture(t)
	var clk sim.Clock
	outside := f.rt.Arena.AllocBuffer(&clk, 64)
	if _, err := f.ch.HotOCall(&clk, "ocall_send", sdk.Buf(outside), sdk.Scalar(64)); err == nil {
		t.Fatal("hot ocall accepted an out-of-enclave source buffer")
	}
}

func TestHotOCallUnknown(t *testing.T) {
	f := newChanFixture(t)
	var clk sim.Clock
	if _, err := f.ch.HotOCall(&clk, "nope"); err == nil {
		t.Fatal("unknown hot ocall accepted")
	}
	if _, err := f.ch.HotECall(&clk, "nope"); err == nil {
		t.Fatal("unknown hot ecall accepted")
	}
}

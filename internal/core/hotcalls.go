// Package core implements HotCalls, the paper's contribution: an
// alternative interface for calling functions across the enclave boundary
// that replaces the 8,200-17,000 cycle SGX context switch with a shared
// un-encrypted memory word guarded by a spin lock, polled by a dedicated
// responder thread (Figure 9).  HotCalls cost ~620 cycles in most cases, a
// 13-27x improvement over SDK ecalls/ocalls.
//
// The package has two layers:
//
//   - HotCall / Responder: a real, runnable implementation of the
//     protocol using the sgx_spin_lock equivalent from internal/sdk.  It
//     is exercised by race-enabled tests and real testing.B benchmarks.
//
//   - LatencyModel and Channel (channel.go): the calibrated cycle-level
//     model the experiment harness uses to regenerate Figure 3 and the
//     application results, where latency must be measured in simulated
//     clock cycles.
package core

import (
	"errors"
	"runtime"
	"sync/atomic"

	"hotcalls/internal/flight"
	"hotcalls/internal/sdk"
	"hotcalls/internal/telemetry"
)

// CallID indexes the responder's call table, exactly like the SDK's
// ocall_index (Section 5: "the call_ID in HotCalls is comparable to the
// ocall_index variable used by the SDK").
type CallID int

// Errors returned by Call.
var (
	ErrTimeout = errors.New("core: responder busy, timeout expired (fall back to SDK call)")
	ErrStopped = errors.New("core: responder stopped")
)

// DefaultTimeout is the maximum number of submission attempts before the
// requester falls back to a regular SDK call.  The paper sets it to 10 and
// reports it never expired in their evaluation (Section 4.2, "Preventing
// starvation").
const DefaultTimeout = 10

// call states held in the shared memory word.
const (
	stateIdle uint32 = iota
	stateRequested
	stateRunning
	stateDone
)

// HotCall is the shared un-encrypted communication area of Figure 9: a
// spin lock, a state flag, the requested call's ID, and the *data pointer.
// One HotCall pairs any number of requesters with one responder.
//
// Field layout is deliberate.  The handoff group (lock, state, id, data)
// lives alone on line 0: both sides write it, but only under the lock,
// so it ping-pongs exactly once per direction per call.  The return slot
// sits on its own line so the responder publishing a result does not
// invalidate the line the next submission is spinning on.  The control
// flags and cold configuration live past a third pad: stopped/sleeping
// are read every poll iteration by both sides, and before this layout
// they shared a line with ret — every completion store invalidated the
// read-mostly flags in every spinning requester's cache.  The
// before/after BenchmarkCall pair in EXPERIMENTS.md quantifies the fix.
//
// The zero value is ready to use; start a Responder on it.
type HotCall struct {
	// Line 0: the lock-guarded handoff words (4+4+8+16 bytes).
	lock  sdk.SpinLock
	state uint32
	id    CallID
	data  interface{}
	_     [cacheLine - 32]byte

	// Line 1: the responder-written return slot.
	ret uint64
	_   [cacheLine - 8]byte

	// Line 2+: read-mostly control flags and cold configuration.
	stopped  atomic.Bool
	sleeping atomic.Bool
	wake     sdk.Cond

	// Timeout is the submission-attempt limit (DefaultTimeout if zero).
	Timeout int

	// flight is the per-callsite flight recorder, nil until SetFlight;
	// fr is the in-flight call's record, guarded by lock like the other
	// handoff words (the single slot holds at most one call).
	flight *flight.Recorder
	fr     *flight.Record

	// Telemetry handles, cached at SetTelemetry time so the hot path
	// pays one nil-check branch per counter and never a registry lookup.
	// All nil (no-op) when telemetry is disabled — the overhead budget
	// is proven by BenchmarkCall vs BenchmarkCallInstrumented.
	requests  *telemetry.Counter
	timeouts  *telemetry.Counter
	fallbacks *telemetry.Counter
	depth     *telemetry.Gauge
}

// SetTelemetry attaches request/timeout/fallback counters and the
// in-flight depth gauge from the registry.  A nil registry detaches (the
// handles become no-op nils).
func (h *HotCall) SetTelemetry(reg *telemetry.Registry) {
	h.requests = reg.Counter(telemetry.MetricHotCallRequests)
	h.timeouts = reg.Counter(telemetry.MetricHotCallTimeouts)
	h.fallbacks = reg.Counter(telemetry.MetricHotCallFallbacks)
	h.depth = reg.Gauge(telemetry.MetricPendingDepth)
}

// SetFlight attaches the flight recorder to the single-slot protocol
// (one record ring: the slot is one logical requester lane).  A nil
// recorder detaches.  Attach before starting the responder.
func (h *HotCall) SetFlight(rec *flight.Recorder) {
	if rec != nil {
		rec.Bind(1)
	}
	h.flight = rec
}

// pause yields the processor inside a busy-wait loop — the PAUSE
// instruction of Section 4.2, which on a Go runtime must also let the
// other side's goroutine run when hardware threads are scarce.
func pause() { runtime.Gosched() }

// Call requests the responder to execute call-table entry id with data and
// waits for the result.  It returns ErrTimeout if the responder stayed
// busy for Timeout submission attempts: the caller should fall back to a
// regular SDK call (see CallOrFallback).
func (h *HotCall) Call(id CallID, data interface{}) (uint64, error) {
	return h.CallAt(flight.Callsite{}, id, data)
}

// CallAt is Call stamped with a registered flight-recorder callsite.
// Timeline records ride the lock-guarded handoff: the requester plants
// the record with the request, the responder stamps its side, and the
// requester closes the record at wait return.
func (h *HotCall) CallAt(cs flight.Callsite, id CallID, data interface{}) (uint64, error) {
	timeout := h.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	h.requests.Inc()
	var fr *flight.Record
	f := h.flight
	// Submission: acquire the lock, verify the responder is free, plant
	// the request, signal "go" by flipping the state, release the lock.
	// The attempts use TryLock so that a wedged lock (an adversary, or a
	// stuck responder) degrades to the timeout-and-fallback path instead
	// of an unbounded spin — the Section 4.2 starvation mitigation.
	// The flight record is opened under the lock: the single slot has
	// many concurrent requesters, and holding the lock satisfies the
	// recorder's single-producer lane contract.
	submitted := false
	for attempt := 0; attempt < timeout; attempt++ {
		if h.stopped.Load() {
			return 0, ErrStopped
		}
		if h.lock.TryLock() {
			if h.state == stateIdle {
				h.id = id
				h.data = data
				if f != nil && f.Arrive(cs, 0) {
					fr = f.Open(cs, 0, uint16(id))
					sleepers := 0
					if h.sleeping.Load() {
						sleepers = 1
					}
					fr.Context(1, 1, sleepers)
				}
				h.fr = fr
				h.state = stateRequested
				h.lock.Unlock()
				submitted = true
				break
			}
			h.lock.Unlock()
		}
		pause()
	}
	if !submitted {
		h.timeouts.Inc()
		f.Timeout(cs, 0, nil) // exact count; no record was ever opened
		return 0, ErrTimeout
	}
	h.depth.Inc()
	if h.sleeping.Load() {
		h.wake.Broadcast()
	}
	// Completion: poll until the responder marks the call done.
	// TryLock again, so Stop (or a lock-wedging adversary, whose only
	// power is denial of service) cannot trap the requester forever.
	for {
		if h.lock.TryLock() {
			if h.state == stateDone {
				ret := h.ret
				h.state = stateIdle
				h.data = nil
				h.fr = nil
				h.lock.Unlock()
				h.depth.Dec()
				if fr != nil {
					f.Complete(fr)
				}
				return ret, nil
			}
			h.lock.Unlock()
		}
		if h.stopped.Load() {
			h.depth.Dec()
			f.Stopped(fr)
			return 0, ErrStopped
		}
		pause()
	}
}

// CallOrFallback is Call with the paper's starvation mitigation: when the
// submission timeout expires, the request is served through the fallback
// path (a regular SDK call) instead of failing.
func (h *HotCall) CallOrFallback(id CallID, data interface{}, fallback func() (uint64, error)) (uint64, error) {
	return h.CallOrFallbackAt(flight.Callsite{}, id, data, fallback)
}

// CallOrFallbackAt is CallOrFallback with per-callsite flight
// attribution; fallback degradations count against the callsite.
func (h *HotCall) CallOrFallbackAt(cs flight.Callsite, id CallID, data interface{}, fallback func() (uint64, error)) (uint64, error) {
	ret, err := h.CallAt(cs, id, data)
	if errors.Is(err, ErrTimeout) {
		h.fallbacks.Inc()
		h.flight.Fallback(cs)
		return fallback()
	}
	return ret, err
}

// Stop shuts the responder down.  In-flight calls complete; subsequent
// calls fail with ErrStopped.
func (h *HotCall) Stop() {
	h.stopped.Store(true)
	h.wake.Broadcast()
}

// Responder is the On-Call thread of Figure 9: it polls the shared memory
// for requests and dispatches them through its call table.
type Responder struct {
	hc    *HotCall
	table []func(data interface{}) uint64

	// IdleTimeout is the number of empty polls after which the responder
	// conserves resources by sleeping on a condition variable until the
	// next requester wakes it (Section 4.2, "Conserving resources at
	// idle times").  Zero disables sleeping.
	IdleTimeout int

	polls    atomic.Uint64
	executes atomic.Uint64
	sleeps   atomic.Uint64

	// Registry mirrors of the atomics above (nil/no-op when telemetry is
	// off): the health monitor derives occupancy and spin waste from
	// their deltas without reaching into the Responder.
	pollCtr    *telemetry.Counter
	executeCtr *telemetry.Counter
	sleepCtr   *telemetry.Counter
}

// SetTelemetry attaches the responder's poll/execute/sleep counters from
// the registry.  A nil registry detaches.
func (r *Responder) SetTelemetry(reg *telemetry.Registry) {
	r.pollCtr = reg.Counter(telemetry.MetricResponderPolls)
	r.executeCtr = reg.Counter(telemetry.MetricResponderExecutes)
	r.sleepCtr = reg.Counter(telemetry.MetricResponderSleeps)
}

// NewResponder returns a responder for the shared area with the given call
// table.
func NewResponder(hc *HotCall, table []func(data interface{}) uint64) *Responder {
	return &Responder{hc: hc, table: table}
}

// Run polls until Stop is called on the HotCall.  Run the responder on its
// own goroutine — it stands in for the dedicated logical core the paper's
// design dedicates to polling.
func (r *Responder) Run() {
	h := r.hc
	idle := 0
	for {
		if h.stopped.Load() {
			return
		}
		r.polls.Add(1)
		r.pollCtr.Inc()
		h.lock.Lock()
		if h.state == stateRequested {
			id, data := h.id, h.data
			fr := h.fr
			h.state = stateRunning
			h.lock.Unlock()
			idle = 0

			f := h.flight
			if fr != nil && f != nil {
				now := f.Now()
				fr.Claim(0, now)
				fr.ExecStart(now)
			}
			var ret uint64
			if int(id) < 0 || int(id) >= len(r.table) {
				// A corrupted call_ID executes no function; the
				// requester sees a sentinel.  (Section 5: a
				// manipulated call_ID makes untrusted code run
				// the wrong function — no new vulnerability —
				// but a bounds check is free.)
				ret = ^uint64(0)
			} else {
				ret = r.table[id](data)
				r.executes.Add(1)
				r.executeCtr.Inc()
			}
			if fr != nil && f != nil {
				fr.ExecEnd(f.Now())
			}

			h.lock.Lock()
			h.ret = ret
			h.state = stateDone
			h.lock.Unlock()
			continue
		}
		h.lock.Unlock()
		idle++
		if r.IdleTimeout > 0 && idle >= r.IdleTimeout {
			// Sleep until a requester signals.
			r.sleeps.Add(1)
			r.sleepCtr.Inc()
			h.sleeping.Store(true)
			h.wake.Wait(func() bool {
				h.lock.Lock()
				pending := h.state == stateRequested
				h.lock.Unlock()
				return pending || h.stopped.Load()
			})
			h.sleeping.Store(false)
			idle = 0
			continue
		}
		pause()
	}
}

// Stats returns the responder's poll, execute, and sleep counts.
func (r *Responder) Stats() (polls, executes, sleeps uint64) {
	return r.polls.Load(), r.executes.Load(), r.sleeps.Load()
}

// Utilization is the fraction of polls that found work — the metric of
// Section 4.2, "Maximizing utilization".
func (r *Responder) Utilization() float64 {
	p := r.polls.Load()
	if p == 0 {
		return 0
	}
	return float64(r.executes.Load()) / float64(p)
}

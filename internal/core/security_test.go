package core

// Section 5 of the paper argues HotCalls introduce no new vulnerability
// because every untrusted-memory structure they use (the data pointer, the
// call_ID, the spin lock) has an exact counterpart in the SDK's own
// ecall/ocall implementation, and the marshalling is the same generated
// code.  These tests exercise each paragraph of that argument.

import (
	"sync"
	"testing"

	"hotcalls/internal/sdk"
	"hotcalls/internal/sim"
)

// "Using shared plaintext memory for communication": HotCalls marshal with
// the SDK's code, so the boundary checks are bit-for-bit the same — an
// enclave pointer smuggled into an ecall [in] buffer fails both paths with
// the same error.
func TestSecuritySameMarshallingChecks(t *testing.T) {
	f := newChanFixture(t)
	var clk sim.Clock
	// Craft a "buffer" that claims an in-enclave address: a leak attempt.
	evil := &sdk.Buffer{Addr: f.e.Base() + 128, Data: make([]byte, 32)}

	_, sdkErr := f.rt.ECall(&clk, "ecall_work", sdk.Buf(evil), sdk.Scalar(32))
	_, hotErr := f.ch.HotECall(&clk, "ecall_work", sdk.Buf(evil), sdk.Scalar(32))
	if sdkErr == nil || hotErr == nil {
		t.Fatal("leak attempt accepted")
	}
	if sdkErr.Error() != hotErr.Error() {
		t.Fatalf("SDK and HotCalls diverge on the same attack:\n  sdk: %v\n  hot: %v", sdkErr, hotErr)
	}
}

// "Attacks on the data pointer": a tampered data pointer reaches the same
// generated wrapper either way; out-of-enclave ocall sources are rejected
// identically.
func TestSecurityDataPointerAttack(t *testing.T) {
	f := newChanFixture(t)
	var clk sim.Clock
	outside := f.rt.Arena.AllocBuffer(&clk, 64)

	var sdkErr error
	f.rt.MustBindECall("ecall_empty", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		_, sdkErr = ctx.OCall("ocall_send", sdk.Buf(outside), sdk.Scalar(64))
		return 0
	})
	f.rt.ECall(&clk, "ecall_empty")
	_, hotErr := f.ch.HotOCall(&clk, "ocall_send", sdk.Buf(outside), sdk.Scalar(64))

	if sdkErr == nil || hotErr == nil {
		t.Fatal("exfiltration pointer accepted")
	}
	if sdkErr.Error() != hotErr.Error() {
		t.Fatalf("divergent rejection: sdk=%v hot=%v", sdkErr, hotErr)
	}
}

// "Requesting a function via call_ID": a manipulated call_ID makes the
// untrusted side run the wrong function — the same power the adversary
// already has over the SDK's ocall_index.  It must not crash the
// responder, and out-of-table IDs return a sentinel.
func TestSecurityCallIDManipulation(t *testing.T) {
	var hc HotCall
	executed := make([]int, 3)
	table := make([]func(interface{}) uint64, 3)
	for i := range table {
		i := i
		table[i] = func(interface{}) uint64 { executed[i]++; return uint64(i) }
	}
	r, wg := startResponder(&hc, table)
	defer func() { hc.Stop(); wg.Wait() }()

	// The adversary flips the requested ID from 0 to 2: the wrong
	// function runs, but nothing worse happens.
	if ret, err := hc.Call(2, nil); err != nil || ret != 2 {
		t.Fatalf("manipulated ID: (%d, %v)", ret, err)
	}
	if executed[2] != 1 || executed[0] != 0 {
		t.Fatalf("execution counts: %v", executed)
	}
	// An out-of-range ID is caught by the bounds check.
	if ret, err := hc.Call(999, nil); err != nil || ret != ^uint64(0) {
		t.Fatalf("out-of-table ID: (%d, %v)", ret, err)
	}
	// The responder is still alive and serving.
	if ret, err := hc.Call(1, nil); err != nil || ret != 1 {
		t.Fatalf("responder dead after attacks: (%d, %v)", ret, err)
	}
	_ = r
}

// "Using the spin-lock located in shared memory": tampering with the lock
// can only cause denial of service (out of the SGX threat model), never a
// wrong result for completed calls.  A permanently held lock makes the
// requester time out into the SDK fallback path.
func TestSecuritySpinLockDoSOnly(t *testing.T) {
	var hc HotCall
	hc.Timeout = 8
	_, wg := startResponder(&hc, []func(interface{}) uint64{
		func(interface{}) uint64 { return 42 },
	})
	defer func() { hc.Stop(); wg.Wait() }()

	// Healthy calls first.
	for i := 0; i < 10; i++ {
		if ret, err := hc.Call(0, nil); err != nil || ret != 42 {
			t.Fatalf("healthy call: (%d, %v)", ret, err)
		}
	}
	// Adversary wedges the lock: requesters experience DoS (timeout)
	// and fall back to the SDK path, exactly the Section 4.2 mitigation.
	hc.lock.Lock()
	ret, err := hc.CallOrFallback(0, nil, func() (uint64, error) { return 7777, nil })
	if err != nil || ret != 7777 {
		t.Fatalf("fallback under wedged lock: (%d, %v)", ret, err)
	}
	hc.lock.Unlock()
	// Service resumes once the DoS stops.
	if ret, err := hc.Call(0, nil); err != nil || ret != 42 {
		t.Fatalf("post-DoS call: (%d, %v)", ret, err)
	}
}

// Responder death mid-stream must surface as ErrStopped on waiting
// requesters rather than a hang (failure injection beyond the paper).
func TestSecurityResponderDeath(t *testing.T) {
	var hc HotCall
	hc.Timeout = 1 << 20
	slow := make(chan struct{})
	_, wg := startResponder(&hc, []func(interface{}) uint64{
		func(interface{}) uint64 { <-slow; return 1 },
	})
	var callErr error
	var callWg sync.WaitGroup
	callWg.Add(1)
	go func() {
		defer callWg.Done()
		_, callErr = hc.Call(0, nil)
	}()
	// Let the call get picked up, then kill the system.
	for {
		hc.lock.Lock()
		running := hc.state == stateRunning
		hc.lock.Unlock()
		if running {
			break
		}
		pause()
	}
	hc.Stop()
	close(slow) // the in-flight handler finishes
	wg.Wait()
	callWg.Wait()
	// The requester either got the completed result or a clean stop —
	// never a hang (reaching here proves no deadlock).
	if callErr != nil && callErr != ErrStopped {
		t.Fatalf("unexpected error: %v", callErr)
	}
}

// Data confidentiality: the marshalled request data for a HotOCall [in]
// parameter is a copy in untrusted memory — mutating it after the call
// must not affect the enclave-side original (no TOCTOU back-channel).
func TestSecurityStagingIsACopy(t *testing.T) {
	f := newChanFixture(t)
	var clk sim.Clock
	src := f.enclaveBuf(t, 32)
	for i := range src.Data {
		src.Data[i] = 0x5a
	}
	var staged *sdk.Buffer
	f.rt.MustBindOCall("ocall_send", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		staged = args[0].Buf
		return 0
	})
	if _, err := f.ch.HotOCall(&clk, "ocall_send", sdk.Buf(src), sdk.Scalar(32)); err != nil {
		t.Fatal(err)
	}
	if staged == src {
		t.Fatal("untrusted side received the enclave buffer itself")
	}
	staged.Data[0] = 0xff // adversary scribbles after the call
	if src.Data[0] != 0x5a {
		t.Fatal("untrusted write reached enclave memory")
	}
}

package core

import (
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"hotcalls/internal/flight"
)

// TestPoolFlightCausalTimeline is the ISSUE's acceptance test: run a
// known scripted workload through the fabric with the recorder
// sampling every call, then reconstruct the causal timelines through
// the /debug/flight endpoint and check every record tells the story in
// order — submit, claim, execute start/end, wait return — attributed
// to the right callsite.
func TestPoolFlightCausalTimeline(t *testing.T) {
	const spinNS = 20_000
	table := []PoolFunc{
		func(_ int, d uint64) uint64 { return d }, // echo
		func(_ int, d uint64) uint64 { // busy: a visible service time
			start := time.Now()
			for time.Since(start) < spinNS*time.Nanosecond {
			}
			return d
		},
	}
	p := NewCallPool(table, PoolOptions{Shards: 2, SlotsPerShard: 8, Timeout: 1 << 20})
	rec := flight.New(flight.Options{SampleEvery: 1})
	p.SetFlight(rec)
	csEcho := rec.Callsite("script.echo")
	csBusy := rec.Callsite("script.busy")
	p.Start()
	defer p.Stop()

	// Scripted workload: requester 0 makes 8 echo calls, requester 1
	// makes 4 busy calls.
	r0, r1 := p.Requester(), p.Requester()
	for i := 0; i < 8; i++ {
		if _, err := r0.CallAt(csEcho, 0, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := r1.CallAt(csBusy, 1, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(flight.Handler(rec))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/flight?records=64")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump struct {
		Callsites []flight.CallsiteStats `json:"callsites"`
		Records   []flight.RecordView    `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}

	if len(dump.Records) != 12 {
		t.Fatalf("records = %d, want 12", len(dump.Records))
	}
	perSite := map[string]int{}
	for _, v := range dump.Records {
		perSite[v.Name]++
		if !(v.SubmitNS <= v.ClaimNS && v.ClaimNS <= v.ExecStartNS &&
			v.ExecStartNS <= v.ExecEndNS && v.ExecEndNS <= v.ReturnNS) {
			t.Errorf("causal order violated: %+v", v)
		}
		if v.Responder < 0 {
			t.Errorf("completed call with no responder: %+v", v)
		}
		switch v.Name {
		case "script.echo":
			if v.Shard != 0 || v.CallID != 0 {
				t.Errorf("echo record misattributed: %+v", v)
			}
		case "script.busy":
			if v.Shard != 1 || v.CallID != 1 {
				t.Errorf("busy record misattributed: %+v", v)
			}
			if svc := v.ExecEndNS - v.ExecStartNS; svc < spinNS {
				t.Errorf("busy service %dns < scripted %dns spin", svc, spinNS)
			}
		default:
			t.Errorf("unexpected callsite %q", v.Name)
		}
	}
	if perSite["script.echo"] != 8 || perSite["script.busy"] != 4 {
		t.Errorf("per-callsite records = %v, want echo:8 busy:4", perSite)
	}

	stats := map[string]flight.CallsiteStats{}
	for _, cs := range dump.Callsites {
		stats[cs.Name] = cs
	}
	if stats["script.echo"].Arrivals != 8 || stats["script.busy"].Arrivals != 4 {
		t.Errorf("stats arrivals wrong: %+v", dump.Callsites)
	}
	if stats["script.busy"].ServiceP50NS < spinNS/2 {
		t.Errorf("busy service p50 = %dns, want >= ~%d", stats["script.busy"].ServiceP50NS, spinNS/2)
	}
	if stats["script.echo"].LastTraceID == 0 {
		t.Error("echo stats carry no exemplar trace ID")
	}
}

// TestPoolFlightSubmitWait covers the async path: SubmitAt/Wait must
// close records just like CallAt.
func TestPoolFlightSubmitWait(t *testing.T) {
	p := NewCallPool([]PoolFunc{func(_ int, d uint64) uint64 { return d * 2 }},
		PoolOptions{Shards: 1, SlotsPerShard: 8, Timeout: 1 << 20})
	rec := flight.New(flight.Options{SampleEvery: 1})
	p.SetFlight(rec)
	cs := rec.Callsite("async.op")
	p.Start()
	defer p.Stop()

	r := p.Requester()
	var pending []*PoolPending
	for i := 0; i < 8; i++ {
		pd, err := r.SubmitAt(cs, 0, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, pd)
	}
	for i, pd := range pending {
		ret, err := pd.Wait()
		if err != nil || ret != uint64(i*2) {
			t.Fatalf("wait %d: ret=%d err=%v", i, ret, err)
		}
	}
	rec.Digest()
	if got := rec.Digested(); got != 8 {
		t.Fatalf("digested = %d, want 8", got)
	}
	for _, v := range rec.Records(16) {
		if v.ReturnNS < v.ExecEndNS {
			t.Errorf("async record closed before execute end: %+v", v)
		}
	}
}

// TestSingleSlotFlight runs the pre-fabric protocol with the recorder
// attached: same causal guarantees through the lock-guarded slot.
func TestSingleSlotFlight(t *testing.T) {
	var hc HotCall
	hc.Timeout = 1 << 20
	rec := flight.New(flight.Options{SampleEvery: 1})
	hc.SetFlight(rec)
	cs := rec.Callsite("single.op")

	r := NewResponder(&hc, []func(interface{}) uint64{
		func(d interface{}) uint64 { return d.(uint64) + 1 },
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); r.Run() }()

	for i := 0; i < 4; i++ {
		ret, err := hc.CallAt(cs, 0, uint64(i))
		if err != nil || ret != uint64(i+1) {
			t.Fatalf("call %d: ret=%d err=%v", i, ret, err)
		}
	}
	hc.Stop()
	wg.Wait()

	views := rec.Records(8)
	if len(views) != 4 {
		t.Fatalf("records = %d, want 4", len(views))
	}
	for _, v := range views {
		if v.Name != "single.op" || v.Responder != 0 {
			t.Errorf("single-slot record misattributed: %+v", v)
		}
		if !(v.SubmitNS <= v.ExecStartNS && v.ExecEndNS <= v.ReturnNS) {
			t.Errorf("single-slot causal order violated: %+v", v)
		}
	}
}

// TestPoolFlightStressRace crosses every moving part under the race
// detector: requester traffic with the recorder sampling heavily,
// concurrent Records/Digest/Stats readers, SetResponderBounds churn,
// and a final Stop racing in-flight calls.  The assertions are the
// seqlock invariants; mostly this test exists so `go test -race`
// explores the recorder's memory orderings.
func TestPoolFlightStressRace(t *testing.T) {
	workers := 4
	p := NewCallPool([]PoolFunc{func(_ int, d uint64) uint64 { return d }},
		PoolOptions{Shards: workers, SlotsPerShard: 16, Timeout: 1 << 16,
			MaxResponders: 4, ControlWindow: 8})
	rec := flight.New(flight.Options{SampleEvery: 2, RingRecords: 32})
	p.SetFlight(rec)
	cs := rec.Callsite("stress.op")
	p.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Requester traffic.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(r *Requester) {
			defer wg.Done()
			for i := 0; ; i++ {
				if _, err := r.CallAt(cs, 0, uint64(i)); err != nil {
					return // ErrStopped/ErrTimeout end the worker
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(p.Requester())
	}
	// Recorder readers.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, v := range rec.Records(32) {
					if v.ReturnNS < v.SubmitNS {
						t.Errorf("torn view: %+v", v)
						return
					}
				}
				rec.Stats() // digests under the hood
			}
		}()
	}
	// Responder-bounds churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p.SetResponderBounds(1, 1+i%4)
			runtime.Gosched()
		}
	}()

	time.Sleep(50 * time.Millisecond)
	close(stop)
	p.Stop() // race Stop against whatever is still in flight
	wg.Wait()
	rec.Digest() // post-stop digest must not wedge or panic
}

// TestPoolCallFlightZeroAlloc pins the recorder-on hot path at zero
// allocations, sampled and unsampled calls alike.
// TestPoolCallTailSamplerZeroAlloc asserts the armed tail sampler adds
// no allocation to the fabric call path while no call is an outlier —
// the Complete cutoff check is a plain load + compare, and outlier
// rings are preallocated at Bind.
func TestPoolCallTailSamplerZeroAlloc(t *testing.T) {
	p := NewCallPool([]PoolFunc{func(_ int, d uint64) uint64 { return d }},
		PoolOptions{Shards: 1, SlotsPerShard: 8, Timeout: 1 << 20})
	rec := flight.New(flight.Options{SampleEvery: 2})
	rec.ArmTailSampler(flight.TailOptions{}) // arm before Bind (SetFlight)
	p.SetFlight(rec)
	cs := rec.Callsite("alloc.tail")
	p.Start()
	defer p.Stop()
	r := p.Requester()

	allocs := testing.AllocsPerRun(200, func() {
		if _, err := r.CallAt(cs, 0, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("tail-armed Call allocates %v per op, want 0", allocs)
	}
	if n := len(rec.Outliers(16)); n != 0 {
		t.Fatalf("healthy sub-ms calls captured %d outliers, want 0", n)
	}
}

func TestPoolCallFlightZeroAlloc(t *testing.T) {
	p := NewCallPool([]PoolFunc{func(_ int, d uint64) uint64 { return d }},
		PoolOptions{Shards: 1, SlotsPerShard: 8, Timeout: 1 << 20})
	rec := flight.New(flight.Options{SampleEvery: 2})
	p.SetFlight(rec)
	cs := rec.Callsite("alloc.op")
	p.Start()
	defer p.Stop()
	r := p.Requester()

	allocs := testing.AllocsPerRun(200, func() {
		if _, err := r.CallAt(cs, 0, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("recorder-on Call allocates %v per op, want 0", allocs)
	}
}

// BenchmarkPoolCallFlight is BenchmarkPoolCall with the flight
// recorder attached at production settings — the recorder-on half of
// the EXPERIMENTS.md overhead pair (gate: within 1% of BenchmarkPoolCall).
func BenchmarkPoolCallFlight(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	p := NewCallPool([]PoolFunc{func(_ int, d uint64) uint64 { return d }},
		PoolOptions{Shards: workers, SlotsPerShard: poolBenchWindow, Timeout: 1 << 20})
	rec := flight.New(flight.Options{})
	p.SetFlight(rec)
	p.Start()
	defer p.Stop()
	reqs := make([]*Requester, workers)
	for i := range reqs {
		reqs[i] = p.Requester()
	}
	b.ReportAllocs()
	b.ResetTimer()
	benchPoolWorkers(b, p, reqs, b.N)
}

package core

// This file extends HotCalls beyond the paper with asynchronous
// submission, the direction the idea later took in Intel's SDK "switchless
// calls": a requester that does not need the result immediately can submit
// the call, keep computing inside the enclave, and collect the result
// later.  The synchronization protocol and security argument are unchanged
// — the same spin lock, state word, call_ID, and data pointer — only the
// requester-side completion wait is deferred.

import "errors"

// ErrNotComplete is returned by Pending.Poll while the call is in flight.
var ErrNotComplete = errors.New("core: async call not complete")

// Pending is a handle to an asynchronous HotCall.
type Pending struct {
	h        *HotCall
	done     bool
	released bool
	ret      uint64
}

// release decrements the in-flight depth gauge exactly once per Pending,
// whether the call completed or was abandoned by Stop.
func (p *Pending) release() {
	if !p.released {
		p.released = true
		p.h.depth.Dec()
	}
}

// Submit plants a request without waiting for completion.  It returns
// ErrTimeout when the responder slot stays busy for the configured number
// of attempts (fall back to a synchronous SDK call), and ErrStopped after
// Stop.
//
// Only one call — synchronous or asynchronous — may be in flight per
// HotCall slot; collect the Pending before reusing the slot.
func (h *HotCall) Submit(id CallID, data interface{}) (*Pending, error) {
	timeout := h.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	h.requests.Inc()
	for attempt := 0; attempt < timeout; attempt++ {
		if h.stopped.Load() {
			return nil, ErrStopped
		}
		if h.lock.TryLock() {
			if h.state == stateIdle {
				h.id = id
				h.data = data
				h.state = stateRequested
				h.lock.Unlock()
				h.depth.Inc()
				if h.sleeping.Load() {
					h.wake.Broadcast()
				}
				return &Pending{h: h}, nil
			}
			h.lock.Unlock()
		}
		pause()
	}
	h.timeouts.Inc()
	return nil, ErrTimeout
}

// Poll checks for completion without blocking.  Once it returns a result,
// the slot is free for the next call.
func (p *Pending) Poll() (uint64, error) {
	if p.done {
		return p.ret, nil
	}
	if p.h.stopped.Load() {
		p.release()
		return 0, ErrStopped
	}
	if !p.h.lock.TryLock() {
		return 0, ErrNotComplete
	}
	if p.h.state != stateDone {
		p.h.lock.Unlock()
		return 0, ErrNotComplete
	}
	p.ret = p.h.ret
	p.h.state = stateIdle
	p.h.data = nil
	p.h.lock.Unlock()
	p.done = true
	p.release()
	return p.ret, nil
}

// Wait blocks (spinning with PAUSE) until the call completes.
func (p *Pending) Wait() (uint64, error) {
	for {
		ret, err := p.Poll()
		if !errors.Is(err, ErrNotComplete) {
			return ret, err
		}
		pause()
	}
}

// MultiResponder services several HotCall slots with one polling core —
// the paper's "sharing the responder thread with several requesters"
// (Section 4.2) taken to its natural design: one channel per requester
// thread, no inter-requester lock contention, one burned core total.
type MultiResponder struct {
	slots []*HotCall
	table []func(data interface{}) uint64
	pass  int // rotates the scan start so no slot holds first-served priority
}

// NewMultiResponder returns a responder servicing all the given slots with
// a shared call table.
func NewMultiResponder(slots []*HotCall, table []func(data interface{}) uint64) *MultiResponder {
	return &MultiResponder{slots: slots, table: table}
}

// Run polls the slots until every slot is stopped.  Each pass starts one
// slot later than the last: a strict 0..n-1 scan gives slot 0 first
// claim on every responder quantum, and under saturation that priority
// compounds into starvation of the high-indexed slots (the fairness hole
// TestMultiResponderScanFairness pins).  Rotation hands the head of the
// line to every slot in turn.
func (m *MultiResponder) Run() {
	for m.runPass() {
		pause()
	}
}

// runPass scans every slot once, starting at the rotated offset, and
// executes any requested calls it finds.  It returns false once every
// slot is stopped.  Split from Run so tests can drive passes
// deterministically.
func (m *MultiResponder) runPass() (alive bool) {
	n := len(m.slots)
	start := m.pass
	m.pass++
	for k := 0; k < n; k++ {
		h := m.slots[(start+k)%n]
		if h.stopped.Load() {
			continue
		}
		alive = true
		if !h.lock.TryLock() {
			continue
		}
		if h.state != stateRequested {
			h.lock.Unlock()
			continue
		}
		id, data := h.id, h.data
		h.state = stateRunning
		h.lock.Unlock()

		var ret uint64
		if int(id) < 0 || int(id) >= len(m.table) {
			ret = ^uint64(0)
		} else {
			ret = m.table[id](data)
		}

		h.lock.Lock()
		h.ret = ret
		h.state = stateDone
		h.lock.Unlock()
	}
	return alive
}

package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hotcalls/internal/telemetry"
)

// zcPool builds a ring-enabled pool whose vec table sums the referenced
// slab bytes and stamps the low data byte into the first segment — an
// in-place write the requester can observe, proving the responder worked
// on the shared slab rather than a copy.
func zcPool(shards, maxResponders int) *CallPool {
	opts := fastPool(shards, maxResponders)
	opts.RingSlabs = 8
	opts.RingSlabBytes = 4096
	p := NewCallPool(echoTable(), opts)
	p.SetVecTable([]PoolVecFunc{
		func(requester int, data uint64, segs []Segment) uint64 {
			ring := p.Ring(requester)
			var sum uint64
			for _, sg := range segs {
				for _, b := range ring.Bytes(sg) {
					sum += uint64(b)
				}
			}
			ring.Bytes(segs[0])[0] = byte(data)
			return sum
		},
	})
	return p
}

func TestPayloadRingAcquireRelease(t *testing.T) {
	pr := newPayloadRing(4, 1024)
	if pr.Slabs() != 4 || pr.SlabBytes() != 1024 || pr.FreeSlabs() != 4 {
		t.Fatalf("ring shape = (%d, %d, %d)", pr.Slabs(), pr.SlabBytes(), pr.FreeSlabs())
	}
	seen := map[uint32]bool{}
	for i := 0; i < 4; i++ {
		slab, buf, ok := pr.Acquire()
		if !ok || len(buf) != 1024 {
			t.Fatalf("Acquire %d = (%d, %d bytes, %v)", i, slab, len(buf), ok)
		}
		if seen[slab] {
			t.Fatalf("slab %d handed out twice", slab)
		}
		seen[slab] = true
	}
	if _, _, ok := pr.Acquire(); ok {
		t.Fatal("Acquire succeeded with every slab in flight")
	}
	pr.Release(2)
	if slab, _, ok := pr.Acquire(); !ok || slab != 2 {
		t.Fatalf("reacquire = (%d, %v), want slab 2", slab, ok)
	}
	// Segment addressing views the same backing bytes as the slab.
	pr.Slab(1)[10] = 0xAA
	if got := pr.Bytes(Segment{Slab: 1, Off: 10, Len: 1})[0]; got != 0xAA {
		t.Fatalf("segment view = %#x, want 0xAA", got)
	}
}

func TestPoolCallZCRoundTrip(t *testing.T) {
	p := zcPool(1, 2)
	p.Start()
	defer p.Stop()
	r := p.Requester()
	ring := r.Ring()
	if ring == nil {
		t.Fatal("ring-enabled pool returned nil ring")
	}

	slab, buf, ok := ring.Acquire()
	if !ok {
		t.Fatal("no free slab")
	}
	for i := 0; i < 100; i++ {
		buf[i] = 1
	}
	// Scatter-gather: two disjoint windows of one slab.
	segs := [2]Segment{
		{Slab: slab, Off: 0, Len: 60},
		{Slab: slab, Off: 60, Len: 40},
	}
	ret, err := r.CallZC(0, 0x7f, segs[:])
	if err != nil {
		t.Fatal(err)
	}
	if ret != 100 {
		t.Fatalf("sum = %d, want 100", ret)
	}
	if buf[0] != 0x7f {
		t.Fatalf("in-place responder write lost: buf[0] = %#x", buf[0])
	}
	ring.Release(slab)
}

func TestPoolCallZCWithoutVecTable(t *testing.T) {
	opts := fastPool(1, 1)
	opts.RingSlabs = 2
	p := NewCallPool(echoTable(), opts) // no SetVecTable
	p.Start()
	defer p.Stop()
	r := p.Requester()
	slab, _, _ := r.Ring().Acquire()
	segs := [1]Segment{{Slab: slab, Off: 0, Len: 8}}
	ret, err := r.CallZC(0, 0, segs[:])
	if err != nil || ret != ^uint64(0) {
		t.Fatalf("vec call without table = (%#x, %v), want sentinel", ret, err)
	}
}

// TestPoolSlotReuseClearsDescriptors posts a scatter-gather call and
// then enough plain calls to lap the slot ring, proving a reused slot
// never replays the prior call's descriptors into the vec table.
func TestPoolSlotReuseClearsDescriptors(t *testing.T) {
	p := zcPool(1, 1)
	p.Start()
	defer p.Stop()
	r := p.Requester()
	slab, buf, _ := r.Ring().Acquire()
	buf[0] = 5
	segs := [1]Segment{{Slab: slab, Off: 0, Len: 1}}
	if ret, err := r.CallZC(0, 5, segs[:]); err != nil || ret != 5 {
		t.Fatalf("ZC call = (%d, %v)", ret, err)
	}
	r.Ring().Release(slab)
	for i := uint64(0); i < 64; i++ {
		ret, err := r.Call(0, i)
		if err != nil || ret != i {
			t.Fatalf("plain call %d after ZC = (%d, %v); stale descriptors?", i, ret, err)
		}
	}
}

func TestPoolSubmitZCRecycleSlab(t *testing.T) {
	p := zcPool(1, 1)
	p.Start()
	defer p.Stop()
	r := p.Requester()
	ring := r.Ring()

	slab, buf, _ := ring.Acquire()
	buf[0] = 3
	before := ring.FreeSlabs()
	segs := [1]Segment{{Slab: slab, Off: 0, Len: 1}}
	pd, err := r.SubmitZC(0, 0, segs[:])
	if err != nil {
		t.Fatal(err)
	}
	pd.RecycleSlab(ring, slab)
	pd.RecycleSlab(ring, slab) // duplicate attach must not double-release
	if _, err := pd.Wait(); err != nil {
		t.Fatal(err)
	}
	if ring.FreeSlabs() != before+1 {
		t.Fatalf("free slabs = %d, want %d (slab recycled exactly once on Wait)",
			ring.FreeSlabs(), before+1)
	}
}

func TestPoolSubmitVWaitAll(t *testing.T) {
	p := zcPool(1, 2)
	p.Start()
	defer p.Stop()
	r := p.Requester()
	ring := r.Ring()

	// A window mixing scatter-gather and plain uint64 calls.
	const window = 8
	var calls [window]VecCall
	var segs [window][1]Segment
	var slabs []uint32
	for i := 0; i < window; i++ {
		if i%2 == 0 {
			slab, buf, ok := ring.Acquire()
			if !ok {
				t.Fatal("no free slab")
			}
			buf[0] = byte(i)
			segs[i] = [1]Segment{{Slab: slab, Off: 0, Len: 1}}
			calls[i] = VecCall{ID: 0, Data: uint64(i), Segs: segs[i][:]}
			slabs = append(slabs, slab)
		} else {
			calls[i] = VecCall{ID: 0, Data: uint64(100 + i)}
		}
	}
	b, err := r.SubmitV(calls[:])
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != window {
		t.Fatalf("batch posted %d, want %d", b.Len(), window)
	}
	for _, slab := range slabs {
		b.RecycleSlab(ring, slab)
	}
	var rets [window]uint64
	if err := b.WaitAll(rets[:]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < window; i++ {
		want := uint64(i) // vec path: byte sum
		if i%2 == 1 {
			want = uint64(100 + i) // plain path: echo
		}
		if rets[i] != want {
			t.Fatalf("rets[%d] = %d, want %d", i, rets[i], want)
		}
	}
	if ring.FreeSlabs() != ring.Slabs() {
		t.Fatalf("slabs leaked: %d free of %d", ring.FreeSlabs(), ring.Slabs())
	}
}

// TestPoolCallZeroCopyZeroAlloc pins the unsampled zero-copy submit
// path's performance contract, mirroring TestPoolCallZeroAlloc: the
// requester side runs with zero heap allocations per operation, and by
// construction with no LOCK-prefixed read-modify-write on the submit
// side — the head cursor and free-slab list are requester-owned plain
// fields, descriptors land on a requester-written line of the
// heap-resident slot, and publication is a single release store of the
// state word.  AllocsPerRun pins the allocation half; the
// synchronization half is structural (no CAS/Add appears in
// postZC/Acquire/Release).
func TestPoolCallZeroCopyZeroAlloc(t *testing.T) {
	p := zcPool(1, 1)
	p.SetTelemetry(telemetry.New()) // live counters must stay alloc-free too
	p.Start()
	defer p.Stop()
	r := p.Requester()
	ring := r.Ring()

	slab, buf, _ := ring.Acquire()
	buf[0] = 1

	// Warm both handle pools.
	var segsW [1]Segment
	segsW[0] = Segment{Slab: slab, Off: 0, Len: 1}
	if pd, err := r.SubmitZC(0, 0, segsW[:]); err != nil {
		t.Fatal(err)
	} else if _, err := pd.Wait(); err != nil {
		t.Fatal(err)
	}
	var callsW [2]VecCall
	callsW[0] = VecCall{ID: 0, Segs: segsW[:]}
	callsW[1] = VecCall{ID: 0, Data: 9}
	if b, err := r.SubmitV(callsW[:]); err != nil {
		t.Fatal(err)
	} else if err := b.WaitAll(nil); err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(200, func() {
		segs := [2]Segment{
			{Slab: slab, Off: 0, Len: 1},
			{Slab: slab, Off: 1, Len: 1},
		}
		if _, err := r.CallZC(0, 1, segs[:]); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("CallZC allocates %.1f per op, want 0", n)
	}

	var calls [2]VecCall
	var segs [2][1]Segment
	var rets [2]uint64
	if n := testing.AllocsPerRun(200, func() {
		s2, _, ok := ring.Acquire()
		if !ok {
			t.Fatal("no free slab")
		}
		segs[0] = [1]Segment{{Slab: s2, Off: 0, Len: 1}}
		calls[0] = VecCall{ID: 0, Segs: segs[0][:]}
		calls[1] = VecCall{ID: 0, Data: 4}
		b, err := r.SubmitV(calls[:])
		if err != nil {
			t.Fatal(err)
		}
		b.RecycleSlab(ring, s2)
		if err := b.WaitAll(rets[:]); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("SubmitV/WaitAll allocates %.1f per op, want 0", n)
	}
}

// TestPoolZeroCopyConcurrentStress crosses concurrent requesters, slab
// recycling through both pending and batch handles, and responder churn
// (the adaptive controller growing and shrinking under bursty load) —
// run under -race by make test-race.
func TestPoolZeroCopyConcurrentStress(t *testing.T) {
	const requesters = 4
	p := zcPool(requesters, 3)
	p.SetTelemetry(telemetry.New())
	p.Start()
	defer p.Stop()

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, requesters)
	for ri := 0; ri < requesters; ri++ {
		r := p.Requester()
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			ring := r.Ring()
			var calls [4]VecCall
			var segs [4][2]Segment
			var slabs [4]uint32
			var rets [4]uint64
			for i := 0; !stop.Load(); i++ {
				// Phase 1: sync ZC call with manual release.
				slab, buf, ok := ring.Acquire()
				if !ok {
					errs <- nil
					return
				}
				buf[0], buf[1] = byte(i), byte(i>>8)
				sg := [2]Segment{{Slab: slab, Off: 0, Len: 1}, {Slab: slab, Off: 1, Len: 1}}
				if _, err := r.CallZC(0, uint64(i), sg[:]); err != nil {
					errs <- err
					return
				}
				ring.Release(slab)

				// Phase 2: async ZC with recycle-on-Wait.
				slab2, _, ok := ring.Acquire()
				if !ok {
					errs <- nil
					return
				}
				sg2 := [1]Segment{{Slab: slab2, Off: 0, Len: 4}}
				pd, err := r.SubmitZC(0, 0, sg2[:])
				if err != nil {
					errs <- err
					return
				}
				pd.RecycleSlab(ring, slab2)
				if _, err := pd.Wait(); err != nil {
					errs <- err
					return
				}

				// Phase 3: vectored window with batch recycle.
				n := 0
				for ; n < len(calls); n++ {
					s3, _, ok := ring.Acquire()
					if !ok {
						break
					}
					slabs[n] = s3
					segs[n] = [2]Segment{{Slab: s3, Off: 0, Len: 8}, {Slab: s3, Off: 8, Len: 8}}
					calls[n] = VecCall{ID: 0, Segs: segs[n][:]}
				}
				if n > 0 {
					b, err := r.SubmitV(calls[:n])
					if err != nil {
						errs <- err
						return
					}
					for j := 0; j < n; j++ {
						b.RecycleSlab(ring, slabs[j])
					}
					if err := b.WaitAll(rets[:n]); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- nil
		}(ri)
	}
	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	for i := 0; i < requesters; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

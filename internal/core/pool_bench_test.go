package core

import (
	"runtime"
	"sync"
	"testing"
)

// poolBenchWindow is the async depth each benchmark requester keeps in
// flight.  One responder quantum drains the whole window, so the
// per-call scheduling handoff of the single-slot protocol is amortized
// across the batch — the Section 4.2 "merging several threads' queues"
// economics, and where the fabric's throughput comes from on any core
// count.
const poolBenchWindow = 64

// benchPoolWorkers drives total calls through the fabric from `workers`
// requester goroutines, each pipelining a full window.
func benchPoolWorkers(b *testing.B, p *CallPool, reqs []*Requester, total int) {
	var wg sync.WaitGroup
	per := total / len(reqs)
	extra := total - per*len(reqs)
	for w, r := range reqs {
		n := per
		if w == 0 {
			n += extra
		}
		wg.Add(1)
		go func(r *Requester, n int) {
			defer wg.Done()
			pending := make([]*PoolPending, 0, poolBenchWindow)
			for i := 0; i < n; {
				for len(pending) < poolBenchWindow && i < n {
					pd, err := r.Submit(0, uint64(i))
					if err != nil {
						b.Error(err)
						return
					}
					pending = append(pending, pd)
					i++
				}
				for _, pd := range pending {
					if _, err := pd.Wait(); err != nil {
						b.Error(err)
						return
					}
				}
				pending = pending[:0]
			}
		}(r, n)
	}
	wg.Wait()
}

// BenchmarkPoolCall is the fabric side of the ISSUE's acceptance pair:
// GOMAXPROCS requesters, each on its own shard, windowed submission, the
// adaptive responder pool free to scale to GOMAXPROCS.  Compare ops/sec
// against BenchmarkSingleSlotFunnel (same worker count, same call table,
// one HotCall slot); the fabric must deliver >= 4x.  ReportAllocs pins
// the zero-allocation hot path.
func BenchmarkPoolCall(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	p := NewCallPool([]PoolFunc{func(_ int, d uint64) uint64 { return d }},
		PoolOptions{Shards: workers, SlotsPerShard: poolBenchWindow, Timeout: 1 << 20})
	p.Start()
	defer p.Stop()
	reqs := make([]*Requester, workers)
	for i := range reqs {
		reqs[i] = p.Requester()
	}
	b.ReportAllocs()
	b.ResetTimer()
	benchPoolWorkers(b, p, reqs, b.N)
}

// BenchmarkSingleSlotFunnel funnels the same load — GOMAXPROCS worker
// goroutines, the same echo call — through one pre-fabric HotCall slot
// and its dedicated responder.  This is the baseline the >= 4x
// acceptance criterion is measured against.
func BenchmarkSingleSlotFunnel(b *testing.B) {
	var hc HotCall
	hc.Timeout = 1 << 20
	r := NewResponder(&hc, []func(interface{}) uint64{
		func(d interface{}) uint64 { return d.(uint64) },
	})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		r.Run()
	}()
	defer func() { hc.Stop(); rwg.Wait() }()

	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / workers
	extra := b.N - per*workers
	for w := 0; w < workers; w++ {
		n := per
		if w == 0 {
			n += extra
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if _, err := hc.Call(0, uint64(i)); err != nil {
					b.Error(err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
}

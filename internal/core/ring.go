package core

// This file is the fabric's zero-copy bulk-transfer layer: pre-registered
// payload rings, scatter-gather descriptors, and vectored submit.
//
// The base fabric (pool.go) moves one typed uint64 per call; anything
// larger pays the SDK's per-byte staging copies (internal/sdk/staging.go),
// which is exactly the overhead the paper's Figure 6 charges growing
// buffers with.  The zero-copy path removes the copies instead of
// accelerating them:
//
//   - PayloadRing: a per-requester pool of fixed-size slabs carved from
//     one untrusted shared allocation at pool construction.  The
//     requester writes payload bytes into a slab it owns and posts a
//     {slab, offset, length} descriptor; the responder reads and writes
//     the bytes in place.  Slab ownership follows the slot protocol the
//     fabric already has — the requester's slotPosted release store
//     publishes the payload bytes along with the descriptors, and the
//     responder's slotDone store publishes any in-place results — so the
//     bytes need no synchronization of their own.
//
//   - Segment: one {slab, offset, length} descriptor.  A call carries up
//     to MaxSegs of them (scatter-gather), so a protocol header and a
//     payload body travel as two references instead of one coalescing
//     copy.
//
//   - SubmitV: vectored submit.  A window of calls is posted with one
//     slot release-store each but a single sleeper check and responder
//     wakeup, and the responder side (scale.go) claims the whole posted
//     run with one tail CAS — amortizing the claim path the way the
//     paper amortizes EENTER across batched calls.
//
// The free-slab list is owned by the requester goroutine alone (plain
// fields, no atomics), mirroring the shard head cursor.  Slabs attached
// to a pending call via RecycleSlab are released when the completion is
// reaped (Poll/Wait/WaitAll), which is what lets a pipelined packet path
// recycle its buffer exactly when the last call touching it completes.

import "hotcalls/internal/flight"

// MaxSegs is the scatter-gather limit per call: enough for a
// header+body+trailer split while keeping the descriptor block on one
// requester-written cache line of the slot.
const MaxSegs = 4

// Segment is one zero-copy payload reference: Len bytes starting Off
// into the requester's slab Slab.
type Segment struct {
	Slab uint32
	Off  uint32
	Len  uint32
}

// PoolVecFunc is a scatter-gather call-table entry.  segs aliases the
// call slot's descriptor block and is valid only until the handler
// returns; the referenced bytes live in the requester's PayloadRing
// (pool.Ring(requester)) and may be read and written in place.
type PoolVecFunc func(requester int, data uint64, segs []Segment) uint64

// PayloadRing is one requester's slab pool.  All methods except the
// responder-side addressing helpers (Slab, Bytes) must be called from
// the owning requester goroutine only; the free list is deliberately
// unsynchronized, like the shard's head cursor.
type PayloadRing struct {
	mem       []byte   // one contiguous carve, sliced into slabs
	slabs     [][]byte // slab i is mem[i*slabBytes : (i+1)*slabBytes]
	free      []uint32 // LIFO free list; requester-owned
	slabBytes int

	// touch, when set, attributes byte accesses to an owner — the hook
	// the EPC observatory uses to tag slab pages (see SetTouch).
	touch func(slab uint32, off, n int)
}

func newPayloadRing(nslabs, slabBytes int) *PayloadRing {
	pr := &PayloadRing{
		mem:       make([]byte, nslabs*slabBytes),
		slabs:     make([][]byte, nslabs),
		free:      make([]uint32, 0, nslabs),
		slabBytes: slabBytes,
	}
	for i := 0; i < nslabs; i++ {
		pr.slabs[i] = pr.mem[i*slabBytes : (i+1)*slabBytes : (i+1)*slabBytes]
		// Push in reverse so Acquire hands out slab 0 first.
		pr.free = append(pr.free, uint32(nslabs-1-i))
	}
	return pr
}

// SlabBytes returns the fixed slab size.
func (pr *PayloadRing) SlabBytes() int { return pr.slabBytes }

// Slabs returns the slab count.
func (pr *PayloadRing) Slabs() int { return len(pr.slabs) }

// FreeSlabs returns how many slabs are currently unclaimed.
func (pr *PayloadRing) FreeSlabs() int { return len(pr.free) }

// Acquire pops a free slab, returning its index and byte window.  ok is
// false when every slab is attached to an in-flight call — the caller's
// window is full and it must reap completions first (the same
// backpressure story as a full slot ring).
func (pr *PayloadRing) Acquire() (slab uint32, buf []byte, ok bool) {
	n := len(pr.free)
	if n == 0 {
		return 0, nil, false
	}
	slab = pr.free[n-1]
	pr.free = pr.free[:n-1]
	return slab, pr.slabs[slab], true
}

// Release returns a slab to the free list.  Must only be called by the
// owning requester, and only after every call referencing the slab has
// been reaped.
func (pr *PayloadRing) Release(slab uint32) {
	pr.free = append(pr.free, slab)
}

// Slab addresses one slab's full byte window.  Safe from the responder:
// the slot handoff protocol orders all accesses.
func (pr *PayloadRing) Slab(slab uint32) []byte { return pr.slabs[slab] }

// Bytes addresses the window a segment describes.
func (pr *PayloadRing) Bytes(seg Segment) []byte {
	return pr.slabs[seg.Slab][seg.Off : uint64(seg.Off)+uint64(seg.Len)]
}

// SetTouch installs the byte-access attribution hook.  The EPC pressure
// observatory's owner tagging rides through here: the openvpn port, for
// example, installs a closure that maps a touched slab window to its
// simulated EPC pages and charges them to the connection's owner ID.
func (pr *PayloadRing) SetTouch(fn func(slab uint32, off, n int)) { pr.touch = fn }

// Touch attributes one segment's byte window through the installed hook
// (no-op when detached).
func (pr *PayloadRing) Touch(seg Segment) {
	if pr.touch != nil {
		pr.touch(seg.Slab, int(seg.Off), int(seg.Len))
	}
}

// Ring returns the payload ring bound to a requester shard (nil when the
// pool was built without rings).  Handlers use this to address the
// segments they receive.
func (p *CallPool) Ring(requester int) *PayloadRing {
	if p.rings == nil {
		return nil
	}
	return p.rings[requester]
}

// Ring returns this requester's payload ring (nil when the pool was
// built without rings; see PoolOptions.RingSlabs).
func (r *Requester) Ring() *PayloadRing { return r.pool.Ring(r.idx) }

// segTotal sums a descriptor list's byte length.
func segTotal(segs []Segment) (n uint64) {
	for i := range segs {
		n += uint64(segs[i].Len)
	}
	return n
}

// postZC is post with scatter-gather descriptors: identical slot
// protocol, plus the descriptor block written on its own
// requester-owned line before the slotPosted release store that
// publishes slab bytes and descriptors together.  signal=false defers
// the sleeper wakeup to the caller (SubmitV's single-wakeup batching).
// Payload bytes are counted per callsite for the flight recorder, so
// the what-if router can price per-byte cost (len(segs) must be in
// [1, MaxSegs]; Call/Submit cover the 0-segment case).
func (r *Requester) postZC(cs flight.Callsite, id CallID, data uint64, segs []Segment, signal bool) (*poolSlot, *flight.Record, error) {
	p := r.pool
	sh := r.shard
	p.requests.Inc()
	var fr *flight.Record
	if f := p.flight; f != nil {
		total := segTotal(segs)
		f.AddBytes(cs, r.idx, total)
		if f.Arrive(cs, r.idx) {
			fr = f.Open(cs, r.idx, uint16(id))
			fr.SetBytes(total)
			fr.Context(int(sh.head-sh.tail.Load()), int(p.live.Load()), int(p.sleepers.Load()))
		}
	}
	for attempt := 0; attempt < p.opts.Timeout; attempt++ {
		if p.stopped.Load() {
			p.flight.Stopped(fr)
			return nil, nil, ErrStopped
		}
		s := &sh.slots[sh.head&sh.mask]
		if s.state.Load() == slotIdle {
			s.id = id
			s.data = data
			if p.flight != nil {
				s.fr = fr
			}
			s.nseg = uint32(len(segs))
			copy(s.segs[:], segs)
			s.state.Store(slotPosted)
			sh.head++
			if signal && p.sleepers.Load() != 0 {
				p.wake.Signal()
			}
			return s, fr, nil
		}
		pause()
	}
	p.timeouts.Inc()
	p.flight.Timeout(cs, r.idx, fr)
	return nil, nil, ErrTimeout
}

// CallZC executes a scatter-gather call and waits for the result: the
// responder's vec-table handler reads and writes the referenced slab
// windows in place, with no per-byte copy on either side.  See CallZCAt
// for flight attribution.
func (r *Requester) CallZC(id CallID, data uint64, segs []Segment) (uint64, error) {
	return r.CallZCAt(flight.Callsite{}, id, data, segs)
}

// CallZCAt is CallZC stamped with a registered flight-recorder callsite.
func (r *Requester) CallZCAt(cs flight.Callsite, id CallID, data uint64, segs []Segment) (uint64, error) {
	s, fr, err := r.postZC(cs, id, data, segs, true)
	if err != nil {
		return 0, err
	}
	for {
		if s.state.Load() == slotDone {
			ret := s.ret
			if fr != nil {
				r.pool.flight.Complete(fr)
			}
			s.state.Store(slotIdle)
			return ret, nil
		}
		if r.pool.stopped.Load() {
			r.pool.flight.Stopped(fr)
			return 0, ErrStopped
		}
		pause()
	}
}

// SubmitZC plants a scatter-gather call without waiting.  Slabs the call
// should give back on completion are attached with
// PoolPending.RecycleSlab.
func (r *Requester) SubmitZC(id CallID, data uint64, segs []Segment) (*PoolPending, error) {
	return r.SubmitZCAt(flight.Callsite{}, id, data, segs)
}

// SubmitZCAt is SubmitZC stamped with a registered flight-recorder
// callsite.
func (r *Requester) SubmitZCAt(cs flight.Callsite, id CallID, data uint64, segs []Segment) (*PoolPending, error) {
	s, fr, err := r.postZC(cs, id, data, segs, true)
	if err != nil {
		return nil, err
	}
	pd := r.pool.pendingPool.Get().(*PoolPending)
	pd.pool = r.pool
	pd.slot = s
	pd.fr = fr
	return pd, nil
}

// VecCall is one entry of a vectored submit window.
type VecCall struct {
	ID   CallID
	Data uint64
	// Segs is the call's scatter-gather list (nil for a plain uint64
	// call riding the batch).
	Segs []Segment
}

// SubmitV posts a window of calls as one batch: every call is published
// with its own slot release store, but the sleeper check and responder
// wakeup happen once for the whole window, and the responder claims the
// posted run with a single tail CAS (scale.go).  See SubmitVAt.
func (r *Requester) SubmitV(calls []VecCall) (*PoolBatch, error) {
	return r.SubmitVAt(flight.Callsite{}, calls)
}

// SubmitVAt is SubmitV stamped with a registered flight-recorder
// callsite.  On ErrTimeout or ErrStopped mid-window the batch returned
// covers the calls already posted (nil only when nothing was posted);
// the caller must still WaitAll it.
func (r *Requester) SubmitVAt(cs flight.Callsite, calls []VecCall) (*PoolBatch, error) {
	p := r.pool
	sh := r.shard
	b := p.batchPool.Get().(*PoolBatch)
	b.pool = p
	b.shard = sh
	b.start = sh.head
	b.n = 0
	var err error
	for i := range calls {
		c := &calls[i]
		if _, _, err = r.postZC(cs, c.ID, c.Data, c.Segs, false); err != nil {
			break
		}
		b.n++
	}
	if p.sleepers.Load() != 0 && b.n > 0 {
		p.wake.Signal()
	}
	if b.n == 0 {
		b.release()
		return nil, err
	}
	return b, err
}

// PoolBatch is the handle to one vectored submit window.  Handles come
// from a sync.Pool and are recycled by WaitAll, so the steady-state
// SubmitV/WaitAll path allocates nothing once a batch's recycle list has
// grown to its working size.
type PoolBatch struct {
	pool  *CallPool
	shard *shard
	start uint64
	n     int

	ring   *PayloadRing
	rslabs []uint32 // slabs to release when the batch is reaped
}

// Len returns how many calls the batch posted (smaller than the request
// only after a mid-window timeout or stop).  Capture it before WaitAll,
// which recycles the handle.
func (b *PoolBatch) Len() int { return b.n }

// RecycleSlab attaches a slab to the batch: it returns to ring's free
// list when WaitAll reaps the batch.  Duplicate attachments are
// deduplicated, so every segment of a scatter-gather window may be
// attached without double-releasing a shared slab.
func (b *PoolBatch) RecycleSlab(ring *PayloadRing, slab uint32) {
	for _, have := range b.rslabs {
		if have == slab {
			return
		}
	}
	b.ring = ring
	b.rslabs = append(b.rslabs, slab)
}

// WaitAll blocks (yielding) until every call in the batch completes,
// copying results into rets (when non-nil) in submission order, then
// releases attached slabs and recycles the handle.  On ErrStopped the
// unreaped remainder of the window is abandoned with the pool.
func (b *PoolBatch) WaitAll(rets []uint64) error {
	p := b.pool
	sh := b.shard
	var err error
	for j := 0; j < b.n && err == nil; j++ {
		s := &sh.slots[(b.start+uint64(j))&sh.mask]
		for {
			if s.state.Load() == slotDone {
				if rets != nil && j < len(rets) {
					rets[j] = s.ret
				}
				if p.flight != nil && s.fr != nil {
					p.flight.Complete(s.fr)
				}
				s.state.Store(slotIdle)
				break
			}
			if p.stopped.Load() {
				if p.flight != nil {
					p.flight.Stopped(s.fr)
				}
				err = ErrStopped
				break
			}
			pause()
		}
	}
	for _, slab := range b.rslabs {
		b.ring.Release(slab)
	}
	b.release()
	return err
}

func (b *PoolBatch) release() {
	pool := b.pool
	b.pool = nil
	b.shard = nil
	b.ring = nil
	b.n = 0
	b.rslabs = b.rslabs[:0]
	pool.batchPool.Put(b)
}

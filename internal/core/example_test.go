package core_test

import (
	"fmt"

	"hotcalls/internal/core"
)

// The minimal HotCalls setup: a shared slot, a responder goroutine with a
// call table, and synchronous calls from the requester.
func ExampleHotCall() {
	var hc core.HotCall
	responder := core.NewResponder(&hc, []func(interface{}) uint64{
		func(d interface{}) uint64 { return d.(uint64) * 2 },
	})
	go responder.Run()
	defer hc.Stop()

	ret, err := hc.Call(0, uint64(21))
	fmt.Println(ret, err)
	// Output: 42 <nil>
}

// Asynchronous submission overlaps enclave work with the untrusted call.
func ExampleHotCall_submit() {
	var hc core.HotCall
	responder := core.NewResponder(&hc, []func(interface{}) uint64{
		func(d interface{}) uint64 { return d.(uint64) + 1 },
	})
	go responder.Run()
	defer hc.Stop()

	pending, err := hc.Submit(0, uint64(99))
	if err != nil {
		fmt.Println(err)
		return
	}
	// ... useful work here, while the responder executes ...
	ret, err := pending.Wait()
	fmt.Println(ret, err)
	// Output: 100 <nil>
}

// The starvation mitigation of Section 4.2: when the responder stays busy
// past the timeout, fall back to the regular SDK call path.
func ExampleHotCall_CallOrFallback() {
	var hc core.HotCall
	hc.Timeout = 3
	block := make(chan struct{})
	responder := core.NewResponder(&hc, []func(interface{}) uint64{
		func(interface{}) uint64 { <-block; return 1 },
	})
	go responder.Run()

	// Occupy the responder with a slow asynchronous call...
	pending, _ := hc.Submit(0, nil)
	// ...so this one times out and takes the fallback (SDK) path.
	ret, err := hc.CallOrFallback(0, nil, func() (uint64, error) {
		return 7, nil // the SDK ocall would run here
	})
	fmt.Println(ret, err)

	close(block)
	pending.Wait()
	hc.Stop()
	// Output: 7 <nil>
}

package core

import (
	"hotcalls/internal/dist"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sim"
	"hotcalls/internal/telemetry"
)

// Channel is the simulated-cycle HotCalls endpoint used by the experiment
// harness and the application simulations.  It performs calls against an
// sdk.Runtime's bound edge functions using the SDK's own marshalling code
// (sdk.StageOCallArgs / sdk.StageECallArgs — the Section 5 security
// argument), but replaces the EENTER/EEXIT context switches with the
// HotCalls spin-lock protocol, whose cost comes from LatencyModel.
//
// A HotOCall's untrusted landing function runs on the responder's core
// while the requester spins, so the requester-observed cost is the
// synchronization latency plus the handler's own execution time.
type Channel struct {
	RT    *sdk.Runtime
	Model *LatencyModel

	// tel caches the channel's telemetry handles; all nil (no-op) until
	// SetTelemetry attaches a registry.
	tel channelTel

	// dist records full-resolution per-call latency distributions; nil
	// (one branch per call) until SetDistribution attaches a set.
	dist *dist.Set
}

// channelTel is the set of handles the HotCall channel paths touch.
type channelTel struct {
	ecalls, ocalls *telemetry.Counter
	spin           *telemetry.Counter
	cycles         *telemetry.Histogram
	tracer         *telemetry.Tracer
}

// NewChannel returns a HotCalls channel over the given runtime.
func NewChannel(rt *sdk.Runtime, rng *sim.RNG) *Channel {
	return &Channel{RT: rt, Model: NewLatencyModel(rng)}
}

// SetTelemetry attaches the observability registry to the channel:
// HotCall ecall/ocall counters, the round-trip cycle histogram, and
// (when tracing is enabled) one span per crossing.  A nil registry
// detaches.
func (ch *Channel) SetTelemetry(reg *telemetry.Registry) {
	ch.tel = channelTel{
		ecalls: reg.Counter(telemetry.MetricHotECalls),
		ocalls: reg.Counter(telemetry.MetricHotOCalls),
		spin:   reg.Counter(telemetry.MetricSpinCycles),
		cycles: reg.Histogram(telemetry.MetricHotCallCycles),
		tracer: reg.Tracer(),
	}
}

// SetDistribution attaches (or, with nil, detaches) the high-resolution
// distribution set.  Each completed HotCall records its requester-observed
// round-trip cycles under the set's current temperature label.
func (ch *Channel) SetDistribution(d *dist.Set) { ch.dist = d }

// HotOCall performs an out-call through the HotCalls interface: the
// trusted side marshals with the SDK-generated code, signals the request
// through shared plaintext memory, and the untrusted responder executes
// the landing function.
func (ch *Channel) HotOCall(clk *sim.Clock, name string, args ...sdk.Arg) (uint64, error) {
	decl, fn, err := ch.RT.UntrustedBinding(name)
	if err != nil {
		return 0, err
	}
	ch.RT.CountCall(name)
	ch.tel.ocalls.Inc()
	callStart := clk.Now()

	tr := ch.tel.tracer
	deep := tr.Detailed()
	outer, finish, err := ch.RT.StageOCallArgs(clk, decl, args)
	if err != nil {
		return 0, err
	}
	if deep && clk.Now() > callStart {
		tr.Emit(telemetry.KindMarshal, "stage:"+name, callStart, clk.Since(callStart), 0)
	}
	// Synchronization: request submission, responder pickup, completion
	// polling.  The handler runs on the responder core while the
	// requester spins, so its execution time adds to the observed
	// latency.
	spinStart := clk.Now()
	clk.AdvanceF(ch.Model.Sample())
	ch.tel.spin.Add(clk.Since(spinStart))
	if deep {
		tr.Emit(telemetry.KindSpin, "hotcall-sync", spinStart, clk.Since(spinStart), 0)
	}
	var handlerClk sim.Clock
	handlerStart := clk.Now()
	ret := fn(&sdk.Ctx{Clk: &handlerClk, RT: ch.RT}, outer)
	clk.Advance(handlerClk.Now())
	if deep && clk.Now() > handlerStart {
		// The handler body ran on the responder's own clock; its span is
		// re-anchored on the requester timeline.
		tr.Emit(telemetry.KindHandler, "handler:"+name, handlerStart, clk.Since(handlerStart), 0)
	}

	copyOutStart := clk.Now()
	finish()
	if deep && clk.Now() > copyOutStart {
		tr.Emit(telemetry.KindMarshal, "copyout:"+name, copyOutStart, clk.Since(copyOutStart), 0)
	}
	ch.tel.cycles.ObserveSince(callStart, clk.Now())
	ch.dist.Observe(dist.HotOcall, clk.Since(callStart))
	if tr != nil {
		tr.Emit(telemetry.KindHotOCall, "hotocall:"+name, callStart, clk.Since(callStart), 0)
	}
	return ret, nil
}

// HotECall performs an enclave call through the HotCalls interface: the
// responder thread inside the enclave polls for requests, so no EENTER is
// needed.  Marshalling again reuses the SDK code path.
func (ch *Channel) HotECall(clk *sim.Clock, name string, args ...sdk.Arg) (uint64, error) {
	decl, fn, err := ch.RT.TrustedBinding(name)
	if err != nil {
		return 0, err
	}
	ch.RT.CountCall(name)
	ch.tel.ecalls.Inc()
	callStart := clk.Now()

	tr := ch.tel.tracer
	deep := tr.Detailed()
	inner, finish, err := ch.RT.StageECallArgs(clk, decl, args)
	if err != nil {
		return 0, err
	}
	if deep && clk.Now() > callStart {
		tr.Emit(telemetry.KindMarshal, "stage:"+name, callStart, clk.Since(callStart), 0)
	}
	spinStart := clk.Now()
	clk.AdvanceF(ch.Model.Sample())
	ch.tel.spin.Add(clk.Since(spinStart))
	if deep {
		tr.Emit(telemetry.KindSpin, "hotcall-sync", spinStart, clk.Since(spinStart), 0)
	}
	var handlerClk sim.Clock
	// The handler runs on the resident enclave worker; its own ocalls
	// route back through this channel.
	handlerStart := clk.Now()
	ret := fn(&sdk.Ctx{Clk: &handlerClk, RT: ch.RT, Router: ch}, inner)
	clk.Advance(handlerClk.Now())
	if deep && clk.Now() > handlerStart {
		tr.Emit(telemetry.KindHandler, "handler:"+name, handlerStart, clk.Since(handlerStart), 0)
	}

	copyOutStart := clk.Now()
	finish()
	if deep && clk.Now() > copyOutStart {
		tr.Emit(telemetry.KindMarshal, "copyout:"+name, copyOutStart, clk.Since(copyOutStart), 0)
	}
	ch.tel.cycles.ObserveSince(callStart, clk.Now())
	ch.dist.Observe(dist.HotEcall, clk.Since(callStart))
	if tr != nil {
		tr.Emit(telemetry.KindHotECall, "hotecall:"+name, callStart, clk.Since(callStart), 0)
	}
	return ret, nil
}

// RouteOCall implements sdk.OCallRouter: out-calls from handlers running
// under HotCalls go through the shared-memory channel.
func (ch *Channel) RouteOCall(clk *sim.Clock, name string, args ...sdk.Arg) (uint64, error) {
	return ch.HotOCall(clk, name, args...)
}

package core

import (
	"hotcalls/internal/sdk"
	"hotcalls/internal/sim"
)

// Channel is the simulated-cycle HotCalls endpoint used by the experiment
// harness and the application simulations.  It performs calls against an
// sdk.Runtime's bound edge functions using the SDK's own marshalling code
// (sdk.StageOCallArgs / sdk.StageECallArgs — the Section 5 security
// argument), but replaces the EENTER/EEXIT context switches with the
// HotCalls spin-lock protocol, whose cost comes from LatencyModel.
//
// A HotOCall's untrusted landing function runs on the responder's core
// while the requester spins, so the requester-observed cost is the
// synchronization latency plus the handler's own execution time.
type Channel struct {
	RT    *sdk.Runtime
	Model *LatencyModel
}

// NewChannel returns a HotCalls channel over the given runtime.
func NewChannel(rt *sdk.Runtime, rng *sim.RNG) *Channel {
	return &Channel{RT: rt, Model: NewLatencyModel(rng)}
}

// HotOCall performs an out-call through the HotCalls interface: the
// trusted side marshals with the SDK-generated code, signals the request
// through shared plaintext memory, and the untrusted responder executes
// the landing function.
func (ch *Channel) HotOCall(clk *sim.Clock, name string, args ...sdk.Arg) (uint64, error) {
	decl, fn, err := ch.RT.UntrustedBinding(name)
	if err != nil {
		return 0, err
	}
	ch.RT.CountCall(name)

	outer, finish, err := ch.RT.StageOCallArgs(clk, decl, args)
	if err != nil {
		return 0, err
	}
	// Synchronization: request submission, responder pickup, completion
	// polling.  The handler runs on the responder core while the
	// requester spins, so its execution time adds to the observed
	// latency.
	clk.AdvanceF(ch.Model.Sample())
	var handlerClk sim.Clock
	ret := fn(&sdk.Ctx{Clk: &handlerClk, RT: ch.RT}, outer)
	clk.Advance(handlerClk.Now())

	finish()
	return ret, nil
}

// HotECall performs an enclave call through the HotCalls interface: the
// responder thread inside the enclave polls for requests, so no EENTER is
// needed.  Marshalling again reuses the SDK code path.
func (ch *Channel) HotECall(clk *sim.Clock, name string, args ...sdk.Arg) (uint64, error) {
	decl, fn, err := ch.RT.TrustedBinding(name)
	if err != nil {
		return 0, err
	}
	ch.RT.CountCall(name)

	inner, finish, err := ch.RT.StageECallArgs(clk, decl, args)
	if err != nil {
		return 0, err
	}
	clk.AdvanceF(ch.Model.Sample())
	var handlerClk sim.Clock
	// The handler runs on the resident enclave worker; its own ocalls
	// route back through this channel.
	ret := fn(&sdk.Ctx{Clk: &handlerClk, RT: ch.RT, Router: ch}, inner)
	clk.Advance(handlerClk.Now())

	finish()
	return ret, nil
}

// RouteOCall implements sdk.OCallRouter: out-calls from handlers running
// under HotCalls go through the shared-memory channel.
func (ch *Channel) RouteOCall(clk *sim.Clock, name string, args ...sdk.Arg) (uint64, error) {
	return ch.HotOCall(clk, name, args...)
}

package core

import (
	"errors"
	"testing"

	"hotcalls/internal/telemetry"
)

// TestTimeoutFallbackTelemetry covers the starvation-mitigation path end
// to end with the observability registry attached: a wedged responder
// must surface as ErrTimeout, route CallOrFallback to the SDK fallback,
// and leave the request/timeout/fallback counters telling that story.
func TestTimeoutFallbackTelemetry(t *testing.T) {
	reg := telemetry.New()
	var hc HotCall
	hc.SetTelemetry(reg)
	hc.Timeout = 5
	hc.lock.Lock()
	hc.state = stateRunning // responder "busy forever"
	hc.lock.Unlock()

	if _, err := hc.Call(0, nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if got := reg.Counter(telemetry.MetricHotCallRequests).Load(); got != 1 {
		t.Errorf("%s = %d, want 1", telemetry.MetricHotCallRequests, got)
	}
	if got := reg.Counter(telemetry.MetricHotCallTimeouts).Load(); got != 1 {
		t.Errorf("%s = %d, want 1", telemetry.MetricHotCallTimeouts, got)
	}
	if got := reg.Counter(telemetry.MetricHotCallFallbacks).Load(); got != 0 {
		t.Errorf("%s = %d before any fallback, want 0", telemetry.MetricHotCallFallbacks, got)
	}

	fallbackRan := false
	ret, err := hc.CallOrFallback(0, nil, func() (uint64, error) {
		fallbackRan = true
		return 777, nil
	})
	if err != nil || ret != 777 {
		t.Fatalf("fallback = (%d, %v)", ret, err)
	}
	if !fallbackRan {
		t.Fatal("fallback did not run on timeout")
	}
	if got := reg.Counter(telemetry.MetricHotCallRequests).Load(); got != 2 {
		t.Errorf("%s = %d, want 2", telemetry.MetricHotCallRequests, got)
	}
	if got := reg.Counter(telemetry.MetricHotCallTimeouts).Load(); got != 2 {
		t.Errorf("%s = %d, want 2", telemetry.MetricHotCallTimeouts, got)
	}
	if got := reg.Counter(telemetry.MetricHotCallFallbacks).Load(); got != 1 {
		t.Errorf("%s = %d, want 1", telemetry.MetricHotCallFallbacks, got)
	}
}

// TestCallSuccessTelemetry checks the happy path: successful calls count
// as requests only — no timeouts, no fallbacks.
func TestCallSuccessTelemetry(t *testing.T) {
	reg := telemetry.New()
	var hc HotCall
	hc.SetTelemetry(reg)
	_, wg := startResponder(&hc, []func(interface{}) uint64{
		func(d interface{}) uint64 { return d.(uint64) + 1 },
	})
	defer func() { hc.Stop(); wg.Wait() }()

	const calls = 25
	for i := uint64(0); i < calls; i++ {
		if ret, err := hc.Call(0, i); err != nil || ret != i+1 {
			t.Fatalf("Call(0, %d) = (%d, %v)", i, ret, err)
		}
	}
	if got := reg.Counter(telemetry.MetricHotCallRequests).Load(); got != calls {
		t.Errorf("%s = %d, want %d", telemetry.MetricHotCallRequests, got, calls)
	}
	if got := reg.Counter(telemetry.MetricHotCallTimeouts).Load(); got != 0 {
		t.Errorf("%s = %d, want 0", telemetry.MetricHotCallTimeouts, got)
	}
	if got := reg.Counter(telemetry.MetricHotCallFallbacks).Load(); got != 0 {
		t.Errorf("%s = %d, want 0", telemetry.MetricHotCallFallbacks, got)
	}
}

// TestSetTelemetryNilDetaches verifies a nil registry restores the
// zero-cost disabled state.
func TestSetTelemetryNilDetaches(t *testing.T) {
	reg := telemetry.New()
	var hc HotCall
	hc.SetTelemetry(reg)
	hc.SetTelemetry(nil)
	_, wg := startResponder(&hc, []func(interface{}) uint64{
		func(interface{}) uint64 { return 0 },
	})
	defer func() { hc.Stop(); wg.Wait() }()
	if _, err := hc.Call(0, nil); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(telemetry.MetricHotCallRequests).Load(); got != 0 {
		t.Errorf("detached registry still counted %d requests", got)
	}
}

package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hotcalls/internal/telemetry"
)

// echoTable is the minimal fabric call table: entry 0 echoes its payload.
func echoTable() []PoolFunc {
	return []PoolFunc{
		func(_ int, data uint64) uint64 { return data },
		func(requester int, data uint64) uint64 { return data + uint64(requester) },
	}
}

// fastPool returns options tuned for tests: tiny control window and
// backoff ladder so adaptive transitions happen in microseconds, not
// milliseconds.
func fastPool(shards, maxResponders int) PoolOptions {
	return PoolOptions{
		Shards:        shards,
		SlotsPerShard: 16,
		MinResponders: 1,
		MaxResponders: maxResponders,
		Timeout:       1 << 20,
		ControlWindow: 8,
		SpinPasses:    2,
		YieldPasses:   4,
	}
}

func TestPoolCallRoundTrip(t *testing.T) {
	p := NewCallPool(echoTable(), fastPool(2, 2))
	p.Start()
	defer p.Stop()

	r := p.Requester()
	for i := uint64(0); i < 500; i++ {
		ret, err := r.Call(0, i)
		if err != nil || ret != i {
			t.Fatalf("Call(%d) = (%d, %v)", i, ret, err)
		}
	}
	// Entry 1 sees the requester's shard index.
	ret, err := r.Call(1, 100)
	if err != nil || ret != 100+uint64(r.Index()) {
		t.Fatalf("Call with requester arg = (%d, %v), idx %d", ret, err, r.Index())
	}
}

func TestPoolSubmitWindowPipelines(t *testing.T) {
	p := NewCallPool(echoTable(), fastPool(1, 1))
	p.Start()
	defer p.Stop()

	r := p.Requester()
	const window = 16
	pending := make([]*PoolPending, 0, window)
	next := uint64(0)
	collected := uint64(0)
	for collected < 2000 {
		for len(pending) < window {
			pd, err := r.Submit(0, next)
			if err != nil {
				t.Fatal(err)
			}
			pending = append(pending, pd)
			next++
		}
		// Collect in FIFO order — the ring completes oldest-first.
		ret, err := pending[0].Wait()
		if err != nil || ret != collected {
			t.Fatalf("call %d = (%d, %v)", collected, ret, err)
		}
		pending = pending[:copy(pending, pending[1:])]
		collected++
	}
	for _, pd := range pending {
		if _, err := pd.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPoolCorruptedCallID(t *testing.T) {
	p := NewCallPool(echoTable(), fastPool(1, 1))
	p.Start()
	defer p.Stop()
	r := p.Requester()
	ret, err := r.Call(CallID(99), 7)
	if err != nil || ret != ^uint64(0) {
		t.Fatalf("out-of-table call = (%#x, %v), want sentinel", ret, err)
	}
}

func TestPoolRequesterExhaustionPanics(t *testing.T) {
	p := NewCallPool(echoTable(), fastPool(1, 1))
	p.Requester()
	defer func() {
		if recover() == nil {
			t.Fatal("second Requester on a 1-shard pool did not panic")
		}
	}()
	p.Requester()
}

func TestPoolStop(t *testing.T) {
	p := NewCallPool(echoTable(), fastPool(2, 2))
	p.Start()
	r := p.Requester()
	if _, err := r.Call(0, 1); err != nil {
		t.Fatal(err)
	}
	p.Stop()
	if p.Responders() != 0 {
		t.Fatalf("%d responders alive after Stop", p.Responders())
	}
	if _, err := r.Call(0, 2); !errors.Is(err, ErrStopped) {
		t.Fatalf("Call after Stop: %v, want ErrStopped", err)
	}
	if _, err := r.Submit(0, 3); !errors.Is(err, ErrStopped) {
		t.Fatalf("Submit after Stop: %v, want ErrStopped", err)
	}
}

func TestPoolSubmitTimeoutWhenSaturated(t *testing.T) {
	// No responders started: the window fills and stays full, so the
	// attempt budget expires — the paper's starvation signal.
	opts := fastPool(1, 1)
	opts.SlotsPerShard = 2
	opts.Timeout = 3
	p := NewCallPool(echoTable(), opts)
	r := p.Requester()
	for i := 0; i < 2; i++ {
		if _, err := r.Submit(0, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Submit(0, 9); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Submit on full window: %v, want ErrTimeout", err)
	}
	// CallOrFallback degrades to the fallback path on the same signal.
	ret, err := r.CallOrFallback(0, 9, func() (uint64, error) { return 42, nil })
	if err != nil || ret != 42 {
		t.Fatalf("CallOrFallback = (%d, %v), want fallback 42", ret, err)
	}
}

// TestPoolCallZeroAlloc is the zero-allocation contract of the tentpole:
// the synchronous path and the windowed submit/collect path allocate
// nothing in steady state.
func TestPoolCallZeroAlloc(t *testing.T) {
	p := NewCallPool(echoTable(), fastPool(1, 1))
	p.SetTelemetry(telemetry.New()) // live counters must stay alloc-free too
	p.Start()
	defer p.Stop()
	r := p.Requester()

	// Warm: first Submit populates the sync.Pool.
	if pd, err := r.Submit(0, 0); err != nil {
		t.Fatal(err)
	} else if _, err := pd.Wait(); err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(200, func() {
		if _, err := r.Call(0, 1); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Call allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		pd, err := r.Submit(0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pd.Wait(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Submit/Wait allocates %.1f per op, want 0", n)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		runtime.Gosched()
	}
}

// poolLoad drives windowed async traffic through r until stop flips —
// the batch submission pattern the fabric is built for, and the only
// load shape that shows the controller real occupancy on a single
// hardware thread (synchronous one-at-a-time calls leave the responder
// scanning empty rings between requester quanta).
func poolLoad(r *Requester, stop *atomic.Bool) {
	const window = 16
	pending := make([]*PoolPending, 0, window)
	for i := uint64(0); !stop.Load(); {
		for len(pending) < window {
			pd, err := r.Submit(0, i)
			if err != nil {
				return
			}
			pending = append(pending, pd)
			i++
		}
		for _, pd := range pending {
			if _, err := pd.Wait(); err != nil {
				return
			}
		}
		pending = pending[:0]
	}
	for _, pd := range pending {
		pd.Poll()
	}
}

// TestPoolAdaptiveScaleUp drives sustained traffic through every shard
// and requires the controller to grow the responder pool from its floor.
func TestPoolAdaptiveScaleUp(t *testing.T) {
	const shards = 2
	p := NewCallPool(echoTable(), fastPool(shards, 3))
	p.SetTelemetry(telemetry.New())
	p.Start()
	defer p.Stop()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		r := p.Requester()
		wg.Add(1)
		go func() {
			defer wg.Done()
			poolLoad(r, &stop)
		}()
	}
	waitFor(t, 5*time.Second, func() bool { return p.Responders() > 1 },
		"adaptive scale-up under sustained load")
	stop.Store(true)
	wg.Wait()
}

// TestPoolIdleShrink is the idle acceptance test: after load stops, the
// pool must walk back down to exactly one responder, asleep on the wake
// condition — the "conserving resources at idle times" end state.
func TestPoolIdleShrink(t *testing.T) {
	const shards = 2
	p := NewCallPool(echoTable(), fastPool(shards, 3))
	p.Start()
	defer p.Stop()

	var stop atomic.Bool
	var wg sync.WaitGroup
	reqs := make([]*Requester, shards)
	for s := 0; s < shards; s++ {
		reqs[s] = p.Requester()
		r := reqs[s]
		wg.Add(1)
		go func() {
			defer wg.Done()
			poolLoad(r, &stop)
		}()
	}
	waitFor(t, 5*time.Second, func() bool { return p.Responders() > 1 }, "scale-up before shrink")
	stop.Store(true)
	wg.Wait()

	waitFor(t, 5*time.Second, func() bool {
		return p.Responders() == 1 && p.SleepingResponders() == 1
	}, "idle shrink to one sleeping responder")

	// The parked pool still serves the next burst (shard 0's goroutine
	// has exited, so its requester handle is free to reuse).
	if ret, err := reqs[0].Call(0, 77); err != nil || ret != 77 {
		t.Fatalf("call after idle shrink = (%d, %v)", ret, err)
	}
}

// TestPoolConcurrentChurn is the -race coverage for the fabric:
// concurrent requesters on every shard, the responder bounds being
// rewritten underneath the controller, and a Stop racing the traffic.
func TestPoolConcurrentChurn(t *testing.T) {
	shards := runtime.GOMAXPROCS(0) + 2
	opts := fastPool(shards, 4)
	opts.Timeout = 64 // let saturation surface as ErrTimeout, not a hang
	p := NewCallPool(echoTable(), opts)
	p.SetTelemetry(telemetry.New())
	p.Start()

	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		r := p.Requester()
		wg.Add(1)
		go func() {
			defer wg.Done()
			pending := make([]*PoolPending, 0, 8)
			for i := uint64(0); ; i++ {
				pd, err := r.Submit(0, i)
				if errors.Is(err, ErrStopped) {
					break
				}
				if errors.Is(err, ErrTimeout) {
					continue
				}
				pending = append(pending, pd)
				if len(pending) == cap(pending) {
					for _, pd := range pending {
						if _, err := pd.Wait(); errors.Is(err, ErrStopped) {
							break
						}
					}
					pending = pending[:0]
				}
			}
			for _, pd := range pending {
				pd.Poll() // drain whatever completed before Stop
			}
		}()
	}
	// Resize churn while traffic flows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			p.SetResponderBounds(1+i%2, 2+i%3)
			runtime.Gosched()
		}
	}()
	time.Sleep(20 * time.Millisecond)
	p.Stop()
	wg.Wait()

	polls, execs := p.Stats()
	if polls == 0 || execs == 0 {
		t.Fatalf("no traffic observed: polls=%d execs=%d", polls, execs)
	}
}

// TestPoolTelemetryExports checks the controller's decisions land in the
// registry: live/max responder gauges, occupancy, and scale event
// counters.
func TestPoolTelemetryExports(t *testing.T) {
	reg := telemetry.New()
	p := NewCallPool(echoTable(), fastPool(1, 2))
	p.SetTelemetry(reg)
	p.Start()
	r := p.Requester()
	for i := uint64(0); i < 200; i++ {
		if _, err := r.Call(0, i); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters[telemetry.MetricHotCallRequests] < 200 {
		t.Fatalf("requests counter = %d, want >= 200", snap.Counters[telemetry.MetricHotCallRequests])
	}
	if snap.Counters[telemetry.MetricResponderPolls] == 0 {
		t.Fatal("responder polls counter never moved")
	}
	if snap.Counters[telemetry.MetricResponderExecutes] < 200 {
		t.Fatalf("executes counter = %d, want >= 200", snap.Counters[telemetry.MetricResponderExecutes])
	}
	if g := snap.Gauges[telemetry.MetricPoolResponders]; g < 1 {
		t.Fatalf("live-responder gauge = %d, want >= 1", g)
	}
	if g := snap.Gauges[telemetry.MetricPoolRespondersMax]; g != 2 {
		t.Fatalf("max-responder gauge = %d, want 2", g)
	}
	p.Stop()
	if g := reg.Snapshot().Gauges[telemetry.MetricPoolResponders]; g != 0 {
		t.Fatalf("live-responder gauge = %d after Stop, want 0", g)
	}
}

// TestMultiResponderScanFairness pins the rotation fix: each pass must
// hand first service to a different slot.  The pre-fix linear scan
// serves slot 0 first on every pass — permanent priority that compounds
// into starvation under saturation — and fails this test on its second
// pass.
func TestMultiResponderScanFairness(t *testing.T) {
	const n = 4
	hcs := make([]*HotCall, n)
	for i := range hcs {
		hcs[i] = &HotCall{}
	}
	var order []uint64
	m := NewMultiResponder(hcs, []func(interface{}) uint64{
		func(d interface{}) uint64 { order = append(order, d.(uint64)); return 0 },
	})
	for pass := 0; pass < 2*n; pass++ {
		order = order[:0]
		pending := make([]*Pending, n)
		for i := range hcs {
			pd, err := hcs[i].Submit(0, uint64(i))
			if err != nil {
				t.Fatal(err)
			}
			pending[i] = pd
		}
		// Drive exactly one scan pass, synchronously: service order is
		// deterministic, no responder goroutine involved.
		if !m.runPass() {
			t.Fatal("runPass reported all slots stopped")
		}
		for i, pd := range pending {
			if _, err := pd.Wait(); err != nil {
				t.Fatalf("slot %d: %v", i, err)
			}
		}
		if want := uint64(pass % n); order[0] != want {
			t.Fatalf("pass %d served slot %d first, want %d: scan start must rotate",
				pass, order[0], want)
		}
	}
}

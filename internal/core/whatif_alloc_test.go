package core_test

import (
	"testing"

	"hotcalls/internal/core"
	"hotcalls/internal/flight"
	"hotcalls/internal/whatif"
)

// TestPoolCallWhatIfZeroAlloc extends the fabric's zero-alloc
// assertions to the shadow-routing observatory: with the what-if
// observatory armed over the flight recorder and Observe running
// between batches, the (recorder-on) call path must stay at zero
// allocations.  The observatory never touches the call path — it only
// reads the digested stats table, so arming it adds no stores, no
// shared state, and therefore no LOCK-prefixed synchronization to the
// unsampled producer-private counters the fabric call rides on.
// (External test package: whatif imports core for its cost model, so
// this pairing can only be exercised from outside.)
func TestPoolCallWhatIfZeroAlloc(t *testing.T) {
	p := core.NewCallPool([]core.PoolFunc{func(_ int, d uint64) uint64 { return d }},
		core.PoolOptions{Shards: 1, SlotsPerShard: 8, Timeout: 1 << 20})
	rec := flight.New(flight.Options{SampleEvery: 2})
	p.SetFlight(rec)
	cs := rec.Callsite("alloc.whatif")
	obs := whatif.NewObservatory(whatif.CostParams{})
	obs.Router().Declare("alloc.whatif", whatif.PolicyPooled)
	p.Start()
	defer p.Stop()
	r := p.Requester()

	for batch := 0; batch < 3; batch++ {
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := r.CallAt(cs, 0, 1); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("observatory-armed Call allocates %v per op, want 0", allocs)
		}
		obs.Observe(rec.Stats(), 1e9)
	}
	if snap := obs.Router().Snapshot(); snap.Schema != whatif.RoutingSchema {
		t.Fatalf("observatory never snapshotted: %+v", snap)
	}
}

package core

import (
	"sync"
	"testing"
)

// Section 4.2, "Maximizing utilization": the responder burns its core
// polling; utilization is the fraction of polls that execute work, and it
// can be improved by sharing one responder among several requesters.
func TestUtilizationGrowsWithSharing(t *testing.T) {
	measure := func(requesters int) float64 {
		var hc HotCall
		hc.Timeout = 1 << 20
		r := NewResponder(&hc, []func(interface{}) uint64{
			func(interface{}) uint64 { return 0 },
		})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Run()
		}()
		var callers sync.WaitGroup
		for g := 0; g < requesters; g++ {
			callers.Add(1)
			go func() {
				defer callers.Done()
				for i := 0; i < 400; i++ {
					if _, err := hc.Call(0, nil); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		callers.Wait()
		hc.Stop()
		wg.Wait()
		return r.Utilization()
	}
	one := measure(1)
	four := measure(4)
	t.Logf("utilization: 1 requester %.3f, 4 requesters %.3f", one, four)
	if one <= 0 || one > 1 || four <= 0 || four > 1 {
		t.Fatalf("utilization out of range: %.3f, %.3f", one, four)
	}
	// On a multi-core scheduler sharing raises utilization; on a single
	// hardware thread the Gosched round-robin pins both near 0.5, so only
	// non-degradation can be asserted portably.
	if four < one*0.85 {
		t.Errorf("sharing the responder degraded utilization: %.3f vs %.3f", four, one)
	}
}

// Section 4.2, "Conserving resources at idle times": a sleeping responder
// stops burning polls, and the next request wakes it.
func TestIdleSleepStopsPolling(t *testing.T) {
	var hc HotCall
	r := NewResponder(&hc, []func(interface{}) uint64{
		func(interface{}) uint64 { return 9 },
	})
	r.IdleTimeout = 5
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.Run()
	}()
	defer func() { hc.Stop(); wg.Wait() }()

	// Wait for the responder to fall asleep.
	for i := 0; i < 100000 && !hc.sleeping.Load(); i++ {
		pause()
	}
	if !hc.sleeping.Load() {
		t.Skip("responder did not reach sleep on this scheduler")
	}
	pollsAsleep, _, _ := r.Stats()
	for i := 0; i < 1000; i++ {
		pause()
	}
	pollsLater, _, _ := r.Stats()
	if pollsLater > pollsAsleep+2 {
		t.Errorf("responder kept polling while asleep: %d -> %d", pollsAsleep, pollsLater)
	}
	// A request must still complete (requester signals the wake).
	if ret, err := hc.Call(0, nil); err != nil || ret != 9 {
		t.Fatalf("post-sleep call = (%d, %v)", ret, err)
	}
}

package core

import "hotcalls/internal/sim"

// LatencyModel produces HotCall round-trip latencies in simulated cycles,
// calibrated to the paper's Figure 3: over 78% of calls complete in less
// than 620 cycles and 99.97% within 1,400 cycles.
//
// The shape is mechanistic: a fixed request-setup plus dispatch cost, two
// loop-phase alignment terms (the requester arrives at a uniformly random
// point of the responder's poll loop, and later observes completion at a
// uniformly random point of its own completion-poll loop), occasional
// extra lock-acquisition rounds when the PAUSE windows of the two sides
// collide, and a rare long tail from interrupts hitting the responder.
type LatencyModel struct {
	rng *sim.RNG

	// Calibrated parameters.
	Fixed      float64 // request setup + dispatch + return pickup
	LoopPeriod float64 // poll-loop length: lock, check, PAUSE
	RetryProb  float64 // probability of at least one lock-contention retry
	RetryGeom  float64 // per-round continuation probability of retrying
	TailProb   float64 // probability of an interrupt-induced spike
	TailBase   float64
	TailMean   float64
}

// NewLatencyModel returns the calibrated model.
func NewLatencyModel(rng *sim.RNG) *LatencyModel {
	return &LatencyModel{
		rng:        rng,
		Fixed:      400,
		LoopPeriod: 140,
		RetryProb:  0.15,
		RetryGeom:  0.35,
		TailProb:   0.0004,
		TailBase:   900,
		TailMean:   400,
	}
}

// Mean returns the closed-form expected round-trip latency: the fixed
// cost, the two uniform loop-phase terms (LoopPeriod/2 each), the
// expected contention rounds (RetryProb first rounds, each continuing
// with probability RetryGeom), and the rare interrupt tail.  The
// profiler's cross-validation test (internal/profile) checks the
// trace-attributed spin-wait mean against this expression.
func (m *LatencyModel) Mean() float64 {
	retry := m.RetryProb * m.LoopPeriod / (1 - m.RetryGeom)
	return m.Fixed + m.LoopPeriod + retry + m.TailProb*(m.TailBase+m.TailMean)
}

// Scale returns a copy of the model with every cycle-valued parameter
// multiplied by f, probabilities untouched, sharing the receiver's RNG
// stream.  Mean and Sample scale by exactly f, which is what makes the
// model usable as the "actually applied" arm of a what-if causal
// validation: predict a virtual speedup from a recorded workload, then
// re-run the workload on a Scale(1-delta) model and compare.
func (m *LatencyModel) Scale(f float64) *LatencyModel {
	s := *m
	s.Fixed *= f
	s.LoopPeriod *= f
	s.TailBase *= f
	s.TailMean *= f
	return &s
}

// Sample draws one HotCall round-trip latency in cycles.
func (m *LatencyModel) Sample() float64 {
	lat := m.Fixed +
		m.rng.Uniform(0, m.LoopPeriod) + // responder pickup phase
		m.rng.Uniform(0, m.LoopPeriod) // requester completion phase
	if m.rng.Bool(m.RetryProb) {
		// Contention: one or more extra poll rounds, geometrically
		// distributed.
		lat += m.LoopPeriod
		for m.rng.Bool(m.RetryGeom) {
			lat += m.LoopPeriod
		}
	}
	if m.rng.Bool(m.TailProb) {
		lat += m.TailBase + m.rng.Exp(m.TailMean)
	}
	return lat
}

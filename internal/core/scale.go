package core

// This file is the fabric's responder side: a pool of polling goroutines
// that claim work across every shard, sized adaptively the way "SGX
// Switchless Calls Made Configless" argues the worker knob should be —
// from observed occupancy, not static configuration.  The paper's own
// Section 4.2 frames the trade: every polling core is burned capacity,
// so the pool grows a responder only while slot inspections keep finding
// work, and idles surplus responders down the spin→yield→sleep ladder
// until one sleeping responder remains.

// Start launches the responder pool at MinResponders.  The primary
// responder (index 0) doubles as the adaptive controller; it is never
// retired, so the pool always has a responder to wake.
func (p *CallPool) Start() {
	n := int(p.target.Load())
	for i := 0; i < n; i++ {
		p.spawn(i)
	}
}

// spawn launches one responder goroutine.  Called from Start and from
// the controller (primary responder) only, so spawns never race.
func (p *CallPool) spawn(idx int) {
	p.wg.Add(1)
	p.liveGauge.Set(int64(p.live.Add(1)))
	go p.runResponder(idx)
}

// Responders returns the number of live responder goroutines.
func (p *CallPool) Responders() int { return int(p.live.Load()) }

// SleepingResponders returns how many responders are parked on the wake
// condition variable.
func (p *CallPool) SleepingResponders() int { return int(p.sleepers.Load()) }

// Stats returns the pool-wide slot-inspection and execution totals; the
// ratio is the occupancy the adaptive controller steers by.
func (p *CallPool) Stats() (polls, executes uint64) {
	return p.polls.Load(), p.executes.Load()
}

// SetResponderBounds adjusts the adaptive pool's [min, max] responder
// range at runtime.  min is clamped to at least 1.  The controller
// enforces the new bounds at its next decision point, so they take
// effect while traffic is flowing.
func (p *CallPool) SetResponderBounds(min, max int) {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	p.minR.Store(int32(min))
	p.maxR.Store(int32(max))
	p.maxGauge.Set(int64(max))
	// Kick sleeping responders so a lowered max retires parked surplus
	// promptly instead of on the next wake.
	p.wake.Broadcast()
}

// runResponder is one responder's loop: claim work across all shards
// with a rotating scan start, back off through the spin→yield→sleep
// ladder when passes come up empty, and retire when the adaptive target
// drops below this responder's index.
func (p *CallPool) runResponder(idx int) {
	defer p.wg.Done()
	defer func() { p.liveGauge.Set(int64(p.live.Add(-1))) }()

	spin := p.opts.SpinPasses
	yield := p.opts.YieldPasses
	empty := 0
	pass := idx // stagger scan starts across responders
	// Window counters for this responder's occupancy gauge.
	var winPolls, winExec uint64

	for {
		if p.stopped.Load() {
			return
		}
		if idx > 0 && int32(idx) >= p.target.Load() {
			return // retired by the controller
		}
		polls, execs := p.scanPass(idx, pass)
		pass++
		winPolls += polls
		winExec += execs
		p.polls.Add(polls)
		p.executes.Add(execs)
		p.pollCtr.Add(polls)
		if execs > 0 {
			p.executeCtr.Add(execs)
		}

		if idx == 0 && pass%p.opts.ControlWindow == 0 {
			p.control()
		}
		if idx < len(p.respOcc) && pass%p.opts.ControlWindow == 0 {
			p.respOcc[idx].Set(occupancyMilli(winPolls, winExec))
			winPolls, winExec = 0, 0
		}

		if execs > 0 {
			empty = 0
			continue
		}
		empty++
		switch {
		case empty <= spin:
			// Hot re-scan: the cheapest way to catch a call posted
			// microseconds after the last look.
		case empty <= spin+yield:
			pause()
		default:
			// The primary reaches the sleep threshold with surplus
			// responders still live when idleness set in mid-window: it
			// must not park yet, or no controller pass would ever shed
			// them and the pool would idle at N sleepers instead of
			// one.  Force a decision now and hold the yield rung until
			// the pool has drained to the floor.
			if idx == 0 && (p.target.Load() > p.minR.Load() || p.live.Load() > p.target.Load()) {
				p.control()
				empty = spin
				pause()
				continue
			}
			// Sleep until a requester posts, Stop, or retirement.  The
			// sleeper count is published before the condition check, so
			// a requester that misses it in post() is one whose work
			// the check below already sees (both are seq-cst atomics).
			p.sleepCtr.Inc()
			p.sleepers.Add(1)
			p.wake.Wait(func() bool {
				if p.stopped.Load() || (idx > 0 && int32(idx) >= p.target.Load()) {
					return true
				}
				return p.hasAnyWork()
			})
			p.sleepers.Add(-1)
			empty = 0
		}
	}
}

// maxClaimBatch bounds how many posted calls one tail CAS may claim.
// Large enough to amortize the claim across a SubmitV window, small
// enough that two responders sharing a hot shard still interleave.
const maxClaimBatch = 16

// scanPass visits every shard once, starting at a rotated offset so no
// shard holds permanent first-served priority, and drains up to a ring's
// worth of posted calls per shard.  idx identifies the responder for
// flight-record claim stamps.  It returns the number of slot
// inspections and executed calls.
//
// Claiming is batched: the responder counts the posted run at the claim
// cursor and takes the whole run with one tail CAS (bounded by
// maxClaimBatch), so a vectored submit window costs one synchronized
// claim instead of one per call — the responder-side half of SubmitV's
// amortization.  A run of one degenerates to exactly the old
// slot-at-a-time protocol.
func (p *CallPool) scanPass(idx, pass int) (polls, execs uint64) {
	n := len(p.shards)
	for k := 0; k < n; k++ {
		shardIdx := (pass + k) % n
		sh := p.shards[shardIdx]
		// Bound the per-visit drain by the ring depth: a requester that
		// posts as fast as we execute must not pin the responder to one
		// shard forever.
		for drained := 0; drained < len(sh.slots); {
			t := sh.tail.Load()
			// Count the posted run from the claim cursor.
			limit := len(sh.slots) - drained
			if limit > maxClaimBatch {
				limit = maxClaimBatch
			}
			run := 0
			for run < limit && sh.slots[(t+uint64(run))&sh.mask].state.Load() == slotPosted {
				run++
			}
			if run < limit {
				polls++ // the inspection that ended the run
			}
			if run == 0 {
				break
			}
			polls += uint64(run)
			if !sh.tail.CompareAndSwap(t, t+uint64(run)) {
				continue // another responder claimed here; re-look
			}
			// The CAS makes calls t..t+run-1 exclusively ours: execute
			// each, publish its result on the responder-written line,
			// then signal completion with the one state store.  Sampled
			// calls carry a flight record in s.fr (published by the
			// slotPosted store); three clock reads bracket the handler
			// so the record's causal timeline separates claim latency
			// from handler service time.
			for j := 0; j < run; j++ {
				s := &sh.slots[(t+uint64(j))&sh.mask]
				id, data := s.id, s.data
				fr := s.fr
				f := p.flight
				if fr != nil && f != nil {
					now := f.Now()
					fr.Claim(idx, now)
					fr.ExecStart(now)
				}
				var ret uint64
				if nseg := s.nseg; nseg > 0 {
					// Scatter-gather call: dispatch through the vec
					// table with the slot's own descriptor block (no
					// copy; the handler must not retain the slice).
					if p.vtable == nil || int(id) < 0 || int(id) >= len(p.vtable) || p.vtable[id] == nil {
						ret = ^uint64(0)
					} else {
						ret = p.vtable[id](shardIdx, data, s.segs[:nseg])
					}
				} else if int(id) < 0 || int(id) >= len(p.table) {
					ret = ^uint64(0) // corrupted call_ID: sentinel, as in hotcalls.go
				} else {
					ret = p.table[id](shardIdx, data)
				}
				if fr != nil && f != nil {
					fr.ExecEnd(f.Now())
				}
				s.ret = ret
				s.state.Store(slotDone)
			}
			execs += uint64(run)
			drained += run
		}
	}
	return polls, execs
}

// hasAnyWork reports whether any shard has a posted, unclaimed call.
func (p *CallPool) hasAnyWork() bool {
	for _, sh := range p.shards {
		if sh.hasWork() {
			return true
		}
	}
	return false
}

// control is the adaptive decision point, run on the primary responder
// every ControlWindow passes: compute the pool-wide occupancy over the
// window just finished and grow or shrink the responder count toward
// the watermarks.  Transitions settle one at a time — no new decision
// while a retiring responder is still draining — so live never
// overshoots the bounds.
func (p *CallPool) control() {
	polls := p.polls.Load()
	execs := p.executes.Load()
	dPolls := polls - p.ctrlPolls
	dExecs := execs - p.ctrlExecutes
	p.ctrlPolls, p.ctrlExecutes = polls, execs

	var occ float64
	if dPolls > 0 {
		occ = float64(dExecs) / float64(dPolls)
	}
	p.occGauge.Set(occupancyMilli(dPolls, dExecs))

	target := p.target.Load()
	if p.live.Load() != target {
		return // a previous decision is still taking effect
	}
	min, max := p.minR.Load(), p.maxR.Load()
	switch {
	case target < min:
		p.scaleUp(target)
	case target > max:
		p.scaleDown(target)
	case occ >= p.opts.ScaleUpOccupancy && target < max:
		p.scaleUp(target)
	case occ <= p.opts.ScaleDownOccupancy && target > min:
		p.scaleDown(target)
	}
}

// scaleUp grows the pool by one responder.
func (p *CallPool) scaleUp(target int32) {
	p.target.Store(target + 1)
	p.scaleUps.Inc()
	p.spawn(int(target))
}

// scaleDown retires the highest-indexed responder: it exits at its next
// pass boundary (or wakes from sleep to exit).
func (p *CallPool) scaleDown(target int32) {
	p.target.Store(target - 1)
	p.scaleDowns.Inc()
	p.wake.Broadcast()
}

// occupancyMilli renders an occupancy fraction as the integer gauge unit
// (thousandths) the telemetry registry exports.
func occupancyMilli(polls, execs uint64) int64 {
	return int64(float64(execs) / float64(maxU64(polls, 1)) * 1000)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

package core

import (
	"errors"
	"sync"
	"testing"
)

func TestAsyncSubmitAndWait(t *testing.T) {
	var hc HotCall
	_, wg := startResponder(&hc, []func(interface{}) uint64{
		func(d interface{}) uint64 { return d.(uint64) + 100 },
	})
	defer func() { hc.Stop(); wg.Wait() }()

	p, err := hc.Submit(0, uint64(5))
	if err != nil {
		t.Fatal(err)
	}
	ret, err := p.Wait()
	if err != nil || ret != 105 {
		t.Fatalf("Wait = (%d, %v)", ret, err)
	}
	// Repeated Poll after completion keeps returning the result.
	if ret, err := p.Poll(); err != nil || ret != 105 {
		t.Fatalf("post-completion Poll = (%d, %v)", ret, err)
	}
}

func TestAsyncPollNotComplete(t *testing.T) {
	var hc HotCall
	release := make(chan struct{})
	_, wg := startResponder(&hc, []func(interface{}) uint64{
		func(interface{}) uint64 { <-release; return 1 },
	})
	p, err := hc.Submit(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Poll(); !errors.Is(err, ErrNotComplete) {
		// The responder may not have even started; either way the
		// call cannot be complete yet.
		t.Fatalf("Poll before completion: err = %v, want ErrNotComplete", err)
	}
	close(release)
	if ret, err := p.Wait(); err != nil || ret != 1 {
		t.Fatalf("Wait = (%d, %v)", ret, err)
	}
	hc.Stop()
	wg.Wait()
}

func TestAsyncOverlapsComputation(t *testing.T) {
	// The point of async submission: the requester does useful work
	// while the responder executes.
	var hc HotCall
	_, wg := startResponder(&hc, []func(interface{}) uint64{
		func(d interface{}) uint64 { return d.(uint64) * 2 },
	})
	defer func() { hc.Stop(); wg.Wait() }()

	var sum uint64
	for i := uint64(0); i < 200; i++ {
		p, err := hc.Submit(0, i)
		if err != nil {
			t.Fatal(err)
		}
		// "Enclave work" overlapping the call.
		for j := 0; j < 50; j++ {
			sum += i * uint64(j)
		}
		ret, err := p.Wait()
		if err != nil || ret != i*2 {
			t.Fatalf("call %d = (%d, %v)", i, ret, err)
		}
	}
	if sum == 0 {
		t.Fatal("overlap work elided")
	}
}

func TestAsyncSubmitTimeout(t *testing.T) {
	var hc HotCall
	hc.Timeout = 3
	hc.lock.Lock() // wedged
	if _, err := hc.Submit(0, nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	hc.lock.Unlock()
}

func TestAsyncStoppedSurfaces(t *testing.T) {
	var hc HotCall
	hc.Stop()
	if _, err := hc.Submit(0, nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("Submit after stop: %v", err)
	}
}

func TestMultiResponderServesManySlots(t *testing.T) {
	const slots = 4
	hcs := make([]*HotCall, slots)
	for i := range hcs {
		hcs[i] = &HotCall{Timeout: 1 << 20}
	}
	m := NewMultiResponder(hcs, []func(interface{}) uint64{
		func(d interface{}) uint64 { return d.(uint64) ^ 0xf0f0 },
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Run()
	}()

	var callers sync.WaitGroup
	errs := make(chan error, slots)
	for s := 0; s < slots; s++ {
		callers.Add(1)
		go func(s int) {
			defer callers.Done()
			for i := uint64(0); i < 200; i++ {
				v := uint64(s)<<32 | i
				ret, err := hcs[s].Call(0, v)
				if err != nil {
					errs <- err
					return
				}
				if ret != v^0xf0f0 {
					errs <- errors.New("wrong result on shared responder")
					return
				}
			}
			errs <- nil
		}(s)
	}
	callers.Wait()
	for s := 0; s < slots; s++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range hcs {
		h.Stop()
	}
	wg.Wait()
}

func TestMultiResponderExitsWhenAllStopped(t *testing.T) {
	hcs := []*HotCall{{}, {}}
	m := NewMultiResponder(hcs, nil)
	done := make(chan struct{})
	go func() {
		m.Run()
		close(done)
	}()
	hcs[0].Stop()
	hcs[1].Stop()
	<-done // must return; a hang fails the test by timeout
}

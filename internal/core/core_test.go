package core

import (
	"errors"
	"sync"
	"testing"

	"hotcalls/internal/sim"
)

func startResponder(hc *HotCall, table []func(interface{}) uint64) (*Responder, *sync.WaitGroup) {
	r := NewResponder(hc, table)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.Run()
	}()
	return r, &wg
}

func TestHotCallBasic(t *testing.T) {
	var hc HotCall
	table := []func(interface{}) uint64{
		func(d interface{}) uint64 { return d.(uint64) + 1 },
		func(d interface{}) uint64 { return d.(uint64) * 2 },
	}
	_, wg := startResponder(&hc, table)
	defer func() { hc.Stop(); wg.Wait() }()

	if ret, err := hc.Call(0, uint64(41)); err != nil || ret != 42 {
		t.Fatalf("Call(0, 41) = (%d, %v)", ret, err)
	}
	if ret, err := hc.Call(1, uint64(21)); err != nil || ret != 42 {
		t.Fatalf("Call(1, 21) = (%d, %v)", ret, err)
	}
}

func TestHotCallSequence(t *testing.T) {
	var hc HotCall
	table := []func(interface{}) uint64{
		func(d interface{}) uint64 { return d.(uint64) ^ 0xdead },
	}
	_, wg := startResponder(&hc, table)
	defer func() { hc.Stop(); wg.Wait() }()
	for i := uint64(0); i < 2000; i++ {
		ret, err := hc.Call(0, i)
		if err != nil {
			t.Fatal(err)
		}
		if ret != i^0xdead {
			t.Fatalf("call %d returned %d", i, ret)
		}
	}
}

func TestHotCallConcurrentRequesters(t *testing.T) {
	var hc HotCall
	hc.Timeout = 1 << 20 // requesters contend; give them room
	table := []func(interface{}) uint64{
		func(d interface{}) uint64 { return d.(uint64) * 3 },
	}
	_, wg := startResponder(&hc, table)
	defer func() { hc.Stop(); wg.Wait() }()

	const requesters, callsEach = 4, 300
	errs := make(chan error, requesters)
	for g := 0; g < requesters; g++ {
		go func(g int) {
			for i := 0; i < callsEach; i++ {
				v := uint64(g*callsEach + i)
				ret, err := hc.Call(0, v)
				if err != nil {
					errs <- err
					return
				}
				if ret != v*3 {
					errs <- errors.New("wrong result under contention")
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < requesters; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestHotCallBadID(t *testing.T) {
	var hc HotCall
	_, wg := startResponder(&hc, []func(interface{}) uint64{
		func(interface{}) uint64 { return 0 },
	})
	defer func() { hc.Stop(); wg.Wait() }()
	ret, err := hc.Call(99, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ret != ^uint64(0) {
		t.Fatalf("bad ID returned %d, want sentinel", ret)
	}
}

func TestHotCallStop(t *testing.T) {
	var hc HotCall
	_, wg := startResponder(&hc, []func(interface{}) uint64{
		func(interface{}) uint64 { return 1 },
	})
	hc.Stop()
	wg.Wait()
	if _, err := hc.Call(0, nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

func TestHotCallTimeoutFallback(t *testing.T) {
	// No responder running and the slot held busy: Call must time out,
	// and CallOrFallback must route to the fallback (the SDK path).
	var hc HotCall
	hc.Timeout = 5
	hc.lock.Lock()
	hc.state = stateRunning // responder "busy forever"
	hc.lock.Unlock()

	if _, err := hc.Call(0, nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	ret, err := hc.CallOrFallback(0, nil, func() (uint64, error) { return 777, nil })
	if err != nil || ret != 777 {
		t.Fatalf("fallback = (%d, %v)", ret, err)
	}
}

func TestResponderSleepAndWake(t *testing.T) {
	var hc HotCall
	r := NewResponder(&hc, []func(interface{}) uint64{
		func(d interface{}) uint64 { return d.(uint64) + 5 },
	})
	r.IdleTimeout = 10
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.Run()
	}()
	defer func() { hc.Stop(); wg.Wait() }()

	// First call works while awake.
	if ret, err := hc.Call(0, uint64(1)); err != nil || ret != 6 {
		t.Fatalf("call = (%d, %v)", ret, err)
	}
	// Let the responder go to sleep, then verify a call still completes
	// (the requester must notice the sleep flag and signal).
	for i := 0; i < 10000 && r.sleeps.Load() == 0; i++ {
		pause()
	}
	if r.sleeps.Load() == 0 {
		t.Skip("responder did not reach sleep on this scheduler")
	}
	if ret, err := hc.Call(0, uint64(10)); err != nil || ret != 15 {
		t.Fatalf("post-sleep call = (%d, %v)", ret, err)
	}
}

func TestResponderStats(t *testing.T) {
	var hc HotCall
	r, wg := startResponder(&hc, []func(interface{}) uint64{
		func(interface{}) uint64 { return 0 },
	})
	for i := 0; i < 50; i++ {
		hc.Call(0, nil)
	}
	hc.Stop()
	wg.Wait()
	polls, executes, _ := r.Stats()
	if executes != 50 {
		t.Fatalf("executes = %d, want 50", executes)
	}
	if polls < executes {
		t.Fatalf("polls = %d < executes", polls)
	}
	if u := r.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
}

// --- Latency model (Figure 3) ---

func TestFigure3LatencyModel(t *testing.T) {
	rng := sim.NewRNG(99)
	m := NewLatencyModel(rng)
	s := sim.NewSample(sim.TotalRuns)
	for i := 0; i < sim.TotalRuns; i++ {
		s.Add(m.Sample())
	}
	med := s.Median()
	f620 := s.FractionBelow(620)
	f1400 := s.FractionBelow(1400)
	t.Logf("median=%.0f  P(<=620)=%.3f  P(<=1400)=%.5f", med, f620, f1400)
	// Paper: most calls ~620 cycles; over 78% below 620; 99.97% within
	// 1,400.
	if med < 450 || med > 620 {
		t.Errorf("median = %.0f, want ~540-620", med)
	}
	if f620 < 0.75 || f620 > 0.90 {
		t.Errorf("P(<=620) = %.3f, want ~0.78", f620)
	}
	if f1400 < 0.995 {
		t.Errorf("P(<=1400) = %.5f, want >= 0.995 (paper: 0.9997)", f1400)
	}
}

func TestLatencyModelDeterminism(t *testing.T) {
	a := NewLatencyModel(sim.NewRNG(5))
	b := NewLatencyModel(sim.NewRNG(5))
	for i := 0; i < 1000; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("model not deterministic under equal seeds")
		}
	}
}

package core

import (
	"testing"

	"hotcalls/internal/dist"
	"hotcalls/internal/sim"
)

// benchHotECall drives b.N empty HotEcalls through the channel — the
// full simulated protocol: staging, sync-latency sample, handler,
// copy-out — with whatever instrumentation the caller attached.
func benchHotECall(b *testing.B, ch *Channel) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var clk sim.Clock
		if _, err := ch.HotECall(&clk, "ecall_empty"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotECallChannel is the bare baseline: no distribution set
// attached, the Observe hook is a single nil check.
func BenchmarkHotECallChannel(b *testing.B) {
	f := newChanFixture(b)
	benchHotECall(b, f.ch)
}

// BenchmarkHotECallChannelDist measures the same path with a live
// dist.Set recording every call: one bucket atomic add, one sequence
// add, and a 1-in-stride reservoir append.  The acceptance budget is 1%
// over BenchmarkHotECallChannel (measured deltas in EXPERIMENTS.md,
// "Distribution recorder overhead"); if the pair drifts past that, the
// Record fast path has grown — fix it rather than shipping the
// regression.
func BenchmarkHotECallChannelDist(b *testing.B) {
	f := newChanFixture(b)
	f.ch.SetDistribution(dist.NewSet(0))
	benchHotECall(b, f.ch)
}

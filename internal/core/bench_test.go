package core

import (
	"sync"
	"testing"

	"hotcalls/internal/telemetry"
)

// benchCall drives b.N HotCalls against a live responder — the real
// protocol, not the latency model.
func benchCall(b *testing.B, hc *HotCall) {
	hc.Timeout = 1 << 20
	r := NewResponder(hc, []func(interface{}) uint64{
		func(d interface{}) uint64 { return d.(uint64) },
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.Run()
	}()
	defer func() { hc.Stop(); wg.Wait() }()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hc.Call(0, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCall is the uninstrumented baseline: no registry attached, the
// telemetry handles are nil and every hook is a single predicted branch.
func BenchmarkCall(b *testing.B) {
	var hc HotCall
	benchCall(b, &hc)
}

// BenchmarkCallInstrumented measures the same path with a live registry
// attached (counters enabled, tracing off — the -metrics configuration).
//
// The disabled-telemetry contract is BenchmarkCall staying within 5% of
// the pre-telemetry baseline; the instrumented delta over BenchmarkCall
// is the price of *enabled* counters (three sharded atomic adds per
// call).  If BenchmarkCall regresses by more than 5% against a build
// with the hooks removed, the nil-handle fast path has been broken —
// fix the instrumentation, do not ship the regression.  Measured deltas
// are recorded in EXPERIMENTS.md.
func BenchmarkCallInstrumented(b *testing.B) {
	reg := telemetry.New()
	var hc HotCall
	hc.SetTelemetry(reg)
	benchCall(b, &hc)
}

package bench

import (
	"math"
	"strings"
	"testing"
)

func TestAblationCallsSavings(t *testing.T) {
	r := report(t, "ablation-calls")
	byName := map[string]Value{}
	for _, v := range r.Values {
		byName[v.Name] = v
	}
	// Savings the paper quantifies must reproduce closely.
	for name, tol := range map[string]float64{
		"ocall: in&out instead of out":        0.10,
		"ecall: user_check instead of out":    0.10,
		"deliver via ocall-in, not ecall-out": 0.10,
		"ocall out: No-Redundant-Zeroing":     0.10,
	} {
		v, ok := byName[name]
		if !ok {
			t.Fatalf("missing ablation %q", name)
		}
		if dev := math.Abs(v.Deviation()); dev > tol {
			t.Errorf("%s: saving %.0f vs paper %.0f (%.0f%% off)", name, v.Got, v.Paper, dev*100)
		}
	}
	// The ecall in&out saving should be near the paper's 885 (our
	// staging gives slightly more because the in&out copy-in finds a
	// colder source); keep a loose band.
	if v := byName["ecall: in&out instead of out"]; v.Got < 600 || v.Got > 1400 {
		t.Errorf("ecall in&out saving = %.0f, want ~885", v.Got)
	}
	// The proposed optimized memset must save most of the byte-wise cost.
	for _, name := range []string{"ecall out: optimized memset/memcpy", "ocall out: optimized memset/memcpy"} {
		if v := byName[name]; v.Got < 1500 {
			t.Errorf("%s: saving = %.0f, want ~1,900", name, v.Got)
		}
	}
}

func TestAblationCoresVerdict(t *testing.T) {
	// Section 4.4: HotCalls are preferred over a second worker thread
	// when they more than double throughput — which the paper's three
	// applications all do.
	r := report(t, "ablation-cores")
	for _, v := range r.Values {
		if v.Got <= 2.0 {
			t.Errorf("%s = %.2fx: the responder core should more than double throughput", v.Name, v.Got)
		}
	}
	if !strings.Contains(r.Table, "prefer HotCalls responder") {
		t.Error("verdict column missing")
	}
}

func TestLoadCurveSaturation(t *testing.T) {
	r := report(t, "loadcurve")
	get := func(name string) float64 {
		for _, v := range r.Values {
			if v.Name == name {
				return v.Got
			}
		}
		t.Fatalf("missing %s", name)
		return 0
	}
	// A saturated single-threaded server: throughput is flat across
	// concurrency while latency grows roughly linearly (Little's law).
	for _, mode := range []string{"sgx", "hotcalls+nrz"} {
		x50 := get(mode + "@50 throughput")
		x400 := get(mode + "@400 throughput")
		if x400 < x50*0.93 || x400 > x50*1.07 {
			t.Errorf("%s: throughput not flat under load: %0.f vs %.0f", mode, x50, x400)
		}
		l50 := get(mode + "@50 latency")
		l400 := get(mode + "@400 latency")
		ratio := l400 / l50
		if ratio < 6.5 || ratio > 9.5 {
			t.Errorf("%s: latency scaled %.1fx for 8x concurrency, want ~8x", mode, ratio)
		}
	}
	// The HotCalls curve dominates at every operating point.
	for _, n := range []int{25, 50, 100, 200, 400} {
		sgx := get(itoa2("sgx@", n, " throughput"))
		hot := get(itoa2("hotcalls+nrz@", n, " throughput"))
		if hot <= sgx*2 {
			t.Errorf("at %d outstanding: hotcalls %.0f should be >2x sgx %.0f", n, hot, sgx)
		}
	}
}

func itoa2(prefix string, n int, suffix string) string {
	return prefix + itoa(n) + suffix
}

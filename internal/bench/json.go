package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"hotcalls/internal/sim"
)

// This file renders experiment results as machine-readable JSON
// (BENCH_hotcalls.json): the perf trajectory future changes diff
// against, instead of re-parsing the human tables.

// JSONValue is one measured point.
type JSONValue struct {
	Name         string  `json:"name"`
	Got          float64 `json:"got"`
	Paper        float64 `json:"paper,omitempty"`
	Unit         string  `json:"unit"`
	DeviationPct float64 `json:"deviation_pct,omitempty"`
}

// JSONExperiment is one experiment's measured values.
type JSONExperiment struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Values []JSONValue `json:"values"`
}

// JSONSummary pulls the headline comparisons out of the per-experiment
// values: the warm crossing medians, the HotCall median, and the
// speedups the paper's abstract leads with.
type JSONSummary struct {
	EcallWarmMedianCycles float64 `json:"ecall_warm_median_cycles,omitempty"`
	OcallWarmMedianCycles float64 `json:"ocall_warm_median_cycles,omitempty"`
	HotCallMedianCycles   float64 `json:"hotcall_median_cycles,omitempty"`
	HotCallVsEcallSpeedup float64 `json:"hotcall_vs_ecall_speedup,omitempty"`
	HotCallVsOcallSpeedup float64 `json:"hotcall_vs_ocall_speedup,omitempty"`
}

// JSONReport is the whole artifact.
type JSONReport struct {
	Schema      string           `json:"schema"`
	GeneratedAt string           `json:"generated_at"`
	GoVersion   string           `json:"go_version"`
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	FrequencyHz uint64           `json:"sim_frequency_hz"`
	MicroRuns   int              `json:"micro_runs"`
	Summary     JSONSummary      `json:"summary"`
	Experiments []JSONExperiment `json:"experiments"`
}

// BuildJSONReport converts a set of finished experiment reports into the
// JSON artifact, computing deviations and the headline summary.
func BuildJSONReport(reports []*Report) JSONReport {
	out := JSONReport{
		Schema:      "hotcalls-bench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		FrequencyHz: sim.FrequencyHz,
		MicroRuns:   microRuns,
	}
	for _, r := range reports {
		je := JSONExperiment{ID: r.ID, Title: r.Title}
		for _, v := range r.Values {
			jv := JSONValue{Name: v.Name, Got: v.Got, Paper: v.Paper, Unit: v.Unit}
			if v.Paper != 0 {
				jv.DeviationPct = v.Deviation() * 100
			}
			je.Values = append(je.Values, jv)
			switch {
			case r.ID == "table1" && v.Name == "Ecall (warm cache)":
				out.Summary.EcallWarmMedianCycles = v.Got
			case r.ID == "table1" && v.Name == "Ocall (warm cache)":
				out.Summary.OcallWarmMedianCycles = v.Got
			case r.ID == "fig3" && v.Name == "hotcall median":
				out.Summary.HotCallMedianCycles = v.Got
			}
		}
		out.Experiments = append(out.Experiments, je)
	}
	if h := out.Summary.HotCallMedianCycles; h > 0 {
		out.Summary.HotCallVsEcallSpeedup = out.Summary.EcallWarmMedianCycles / h
		out.Summary.HotCallVsOcallSpeedup = out.Summary.OcallWarmMedianCycles / h
	}
	return out
}

// WriteJSONReport renders the artifact with stable indentation so
// successive runs diff cleanly.
func WriteJSONReport(w io.Writer, reports []*Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildJSONReport(reports))
}

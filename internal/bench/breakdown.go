package bench

import (
	"fmt"

	"hotcalls/internal/apps/lighttpd"
	"hotcalls/internal/apps/memcached"
	"hotcalls/internal/apps/openvpn"
	"hotcalls/internal/apps/porting"
	"hotcalls/internal/sim"
)

// runBreakdown attributes each application's cycles to edge calls, TLB
// refills, application phases, and residual memory/kernel work — the
// inside view of Table 2's core-time estimate (the paper computes 42%,
// 57%, 56% of core time spent facilitating calls for memcached, openVPN,
// lighttpd from call counts; here the same shares fall out of direct
// attribution) and of why HotCalls reclaim those cycles.
func runBreakdown() *Report {
	r := &Report{ID: "breakdown", Title: "Cycle attribution per request (profiler view of Table 2's core-time column)"}
	// "edge-calls" is the full interface envelope: call machinery,
	// marshalling, and the kernel service inside the landing functions —
	// a superset of the paper's warm-call-only estimate, so the SGX
	// shares sit a few points above Table 2's 42/57/56%.
	tbl := &table{header: []string{"app", "mode", "edge-calls", "tlb-refills", "app phases", "total cyc/req"}}

	paperCallShare := map[string]float64{"memcached": 42, "openvpn": 57, "lighttpd": 56}

	type runner struct {
		name  string
		drive func(mode porting.Mode) (*porting.Profile, uint64, uint64) // profile, totalCycles, requests
	}
	runners := []runner{
		{"memcached", func(mode porting.Mode) (*porting.Profile, uint64, uint64) {
			s := memcached.NewServer(mode)
			prof := s.App.EnableProfile()
			w := memcached.NewWorkload(s, seedFor(17))
			var clk sim.Clock
			const n = 2000
			for i := 0; i < n; i++ {
				w.InjectNext()
				s.ServeOne(&clk)
				w.DrainResponse()
			}
			return prof, clk.Now(), n
		}},
		{"openvpn", func(mode porting.Mode) (*porting.Profile, uint64, uint64) {
			s := openvpn.NewServer(mode)
			prof := s.App.EnableProfile()
			var ck [16]byte
			var mk [32]byte
			copy(ck[:], "tunnel-cipher-k!")
			copy(mk[:], "tunnel-hmac-key-tunnel-hmac-key-")
			seal := openvpn.NewCipher(ck, mk)
			payload := make([]byte, openvpn.IperfPayload)
			var clk sim.Clock
			const n = 1500
			for i := 0; i < n; i++ {
				s.ServePacket(&clk, seal, payload, false)
			}
			return prof, clk.Now(), n
		}},
		{"lighttpd", func(mode porting.Mode) (*porting.Profile, uint64, uint64) {
			s := lighttpd.NewServer(mode)
			prof := s.App.EnableProfile()
			var clk sim.Clock
			const n = 800
			for i := 0; i < n; i++ {
				client := s.InjectRequest("/")
				s.ServeOne(&clk)
				for {
					if _, ok := s.App.Kernel.TakeRX(client); !ok {
						break
					}
				}
			}
			return prof, clk.Now(), n
		}},
	}

	for _, rn := range runners {
		for _, mode := range []porting.Mode{porting.SGX, porting.HotCallsNRZ} {
			prof, total, n := rn.drive(mode)
			r.Values = append(r.Values, Value{
				Name: rn.name + " " + mode.String() + " cycles/request",
				Got:  float64(total) / float64(n),
				Unit: "cycles",
			})
			t := prof.Totals()
			app := t[porting.CatAppWork] + t[porting.CatDataStore] + t[porting.CatCrypto]
			pctOf := func(c uint64) string { return fmt.Sprintf("%.1f%%", float64(c)/float64(total)*100) }
			tbl.add(rn.name, mode.String(),
				pctOf(t[porting.CatEdgeCalls]), pctOf(t[porting.CatTLB]), pctOf(app),
				f0(float64(total)/float64(n)))
			if mode == porting.SGX {
				share := float64(t[porting.CatEdgeCalls]) / float64(total) * 100
				r.Values = append(r.Values, Value{
					Name:  rn.name + " sgx edge-call share",
					Got:   share,
					Paper: paperCallShare[rn.name],
					Unit:  "%",
				})
			} else {
				share := float64(t[porting.CatEdgeCalls]) / float64(total) * 100
				r.Values = append(r.Values, Value{
					Name: rn.name + " hotcalls edge-call share", Got: share, Unit: "%",
				})
			}
		}
	}
	r.Table = tbl.String()
	return r
}

func init() {
	register(Experiment{ID: "breakdown", Title: "Cycle attribution (profiler)", Run: runBreakdown})
}

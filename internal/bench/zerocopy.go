package bench

// The zerocopy experiment quantifies what the zero-copy payload rings
// buy over staged marshalling, at three layers:
//
//  1. A simulated-cycle sweep (2-32 KB) of staged [in,out] edge
//     crossings against [zerocopy] ring-backed crossings, for both
//     ecalls and ocalls — the direction-aware marshalling core's own
//     accounting, byte-deterministic under a fixed seed.
//  2. A wall-clock fabric pair: the same windowed CallPool drive loop
//     run with staged-copy payload handling (the four copies a reusable
//     staging buffer forces: app->stage, stage->private, private->stage,
//     stage->app) and with scatter-gather descriptors into a payload
//     ring (zero copies).  Interleaved round by round in one process,
//     the gated artifact is the median same-round throughput ratio,
//     which cancels host speed — the flight experiment's design.
//  3. The openvpn fabric port's iperf-like streaming driver: windowed
//     vectored submit (Pump) against the synchronous zero-copy relay
//     (PumpSync), again as interleaved same-run ratios; the absolute
//     Mbit/s columns are informational.

import (
	"fmt"
	"os"
	"strings"
	"time"

	"hotcalls/internal/apps/openvpn"
	"hotcalls/internal/core"
	"hotcalls/internal/edl"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sim"
)

// zcSweepEDL declares the staged and zero-copy edge crossings the
// simulated sweep compares.  ecall_driver hosts the ocall measurements
// (measureOcall brackets inside it).
const zcSweepEDL = `
enclave {
    trusted {
        public int ecall_staged([in, out, size=len] uint8_t* buf, size_t len);
        public int ecall_zc([zerocopy, size=len] uint8_t* buf, size_t len);
        public int ecall_driver(void);
    };
    untrusted {
        int ocall_staged([in, out, size=len] uint8_t* buf, size_t len);
        int ocall_zc([zerocopy, size=len] uint8_t* buf, size_t len);
    };
};
`

// zcSweepKB is the payload axis, extending the Figure 4/5 sweep (1-16
// KB) up to the 32 KB point the acceptance gate checks.
var zcSweepKB = []uint64{2, 4, 8, 16, 32}

const (
	// zcSweepRuns per simulated point; medians stabilize far earlier.
	zcSweepRuns = 1500
	// zcPairRounds staged/zero-copy rounds per fabric size point; the
	// median same-round ratio is gated.
	zcPairRounds = 7
	// zcPairWindow is the vectored-submit depth of the fabric pair.
	zcPairWindow = 16
	// vpnPairRounds and vpnPairPackets size the openvpn streaming pair.
	vpnPairRounds  = 5
	vpnPairPackets = 2000
)

// zeroCopyCSVPath is where runZeroCopy also writes the sweep CSV; empty
// skips the file.  Set via SetZeroCopyCSV (hotbench's -zerocopy-csv
// flag; CI uploads it as the sweep artifact).
var zeroCopyCSVPath string

// SetZeroCopyCSV directs the zerocopy experiment to also write its
// sweep series CSV to the given path.
func SetZeroCopyCSV(path string) { zeroCopyCSVPath = path }

// newZCSweepFixture is a microbenchmark fixture speaking zcSweepEDL.
func newZCSweepFixture(seed uint64) *microFixture {
	f := newMicroFixture(seed)
	f.rt.EDL = edl.MustParse(zcSweepEDL)
	noop := func(ctx *sdk.Ctx, args []sdk.Arg) uint64 { return 0 }
	f.rt.MustBindECall("ecall_staged", noop)
	f.rt.MustBindECall("ecall_zc", noop)
	f.rt.MustBindOCall("ocall_staged", noop)
	f.rt.MustBindOCall("ocall_zc", noop)
	return f
}

// zcSimPoint is one payload size's simulated medians (cycles).
type zcSimPoint struct {
	kb                       uint64
	ecallStaged, ecallZC     float64
	ocallStaged, ocallZC     float64
}

// zcSimSweep measures the staged-vs-zero-copy crossing cost over the
// payload axis in simulated cycles.  Each variant gets a fresh fixture
// so the RNG streams of every point are independent of sweep order.
func zcSimSweep(runs int) []zcSimPoint {
	out := make([]zcSimPoint, 0, len(zcSweepKB))
	for _, kb := range zcSweepKB {
		size := kb << 10
		pt := zcSimPoint{kb: kb}

		// Staged ecall: an untrusted buffer marshalled both ways.
		f := newZCSweepFixture(131)
		var clk sim.Clock
		buf := f.rt.Arena.AllocBuffer(&clk, size)
		pt.ecallStaged = f.measureEcall("ecall_staged", runs, nil,
			sdk.Buf(buf), sdk.Scalar(size)).Median()

		// Zero-copy ecall: the same buffer registered as a shared ring,
		// handed through after the ring-membership check.
		f = newZCSweepFixture(131)
		buf = f.rt.Arena.AllocBuffer(&clk, size)
		if err := f.rt.RegisterSharedRing(buf.Addr, size); err != nil {
			panic(err)
		}
		pt.ecallZC = f.measureEcall("ecall_zc", runs, nil,
			sdk.Buf(buf), sdk.Scalar(size)).Median()

		// Staged ocall: an enclave buffer staged out and back.
		f = newZCSweepFixture(137)
		ebuf := mustEnclaveBuf(f, size)
		pt.ocallStaged = f.measureOcall("ocall_staged", runs, nil,
			sdk.Buf(ebuf), sdk.Scalar(size)).Median()

		// Zero-copy ocall: a ring slab crossing outward in place.
		f = newZCSweepFixture(137)
		buf = f.rt.Arena.AllocBuffer(&clk, size)
		if err := f.rt.RegisterSharedRing(buf.Addr, size); err != nil {
			panic(err)
		}
		pt.ocallZC = f.measureOcall("ocall_zc", runs, nil,
			sdk.Buf(buf), sdk.Scalar(size)).Median()

		out = append(out, pt)
	}
	return out
}

// zcFabricSink defeats dead-code elimination of the handlers' payload
// touches; written only from the responder goroutine.
var zcFabricSink byte

// measureZCFabric runs one payload size's interleaved staged-copy vs
// zero-copy fabric pair and returns the median rates (ops/s) and the
// median same-round ratio.
func measureZCFabric(size, calls int) (copyRate, zcRate, ratio float64) {
	// Staged-variant buffers: one staging slot per window entry (the
	// reusable shared buffer a copying interface forces), one private
	// scratch on the handler side, and the app-side source/sink.
	stage := make([][]byte, zcPairWindow)
	for i := range stage {
		stage[i] = make([]byte, size)
	}
	scratch := make([]byte, size)
	payload := make([]byte, size)
	outBuf := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}

	pool := core.NewCallPool([]core.PoolFunc{
		// Staged handler: consume the staged request into private
		// memory, produce the response back into the staging slot.
		func(_ int, d uint64) uint64 {
			s := stage[d]
			copy(scratch, s)
			zcFabricSink ^= scratch[0] ^ scratch[len(scratch)-1]
			copy(s, scratch)
			return uint64(len(s))
		},
	}, core.PoolOptions{
		Shards:        1,
		SlotsPerShard: zcPairWindow,
		MinResponders: 1,
		MaxResponders: 1,
		Timeout:       1 << 20,
		RingSlabs:     zcPairWindow + 4,
		RingSlabBytes: size,
	})
	pool.SetVecTable([]core.PoolVecFunc{
		// Zero-copy handler: the descriptors already point at the
		// payload; read and write in place, no copies on either side.
		func(req int, _ uint64, segs []core.Segment) uint64 {
			ring := pool.Ring(req)
			var total uint64
			for _, sg := range segs {
				b := ring.Bytes(sg)
				zcFabricSink ^= b[0] ^ b[len(b)-1]
				b[0] ^= 1
				total += uint64(sg.Len)
			}
			return total
		},
	})
	pool.Start()
	defer pool.Stop()
	r := pool.Requester()
	ring := r.Ring()

	// The zero-copy app writes its payload straight into ring slabs —
	// where a NIC would have put it — once, up front.
	for s := 0; s < ring.Slabs(); s++ {
		copy(ring.Slab(uint32(s)), payload)
	}

	var vcalls [zcPairWindow]core.VecCall
	var segs [zcPairWindow][2]core.Segment
	var slabs [zcPairWindow]uint32
	var rets [zcPairWindow]uint64

	driveCopy := func() float64 {
		start := time.Now()
		for i := 0; i < calls; {
			n := 0
			for n < zcPairWindow && i < calls {
				copy(stage[n], payload) // copy 1: app -> staging
				vcalls[n] = core.VecCall{ID: 0, Data: uint64(n)}
				n++
				i++
			}
			b, err := r.SubmitV(vcalls[:n])
			if b == nil {
				panic(err)
			}
			posted := b.Len() // WaitAll recycles the handle; capture first
			if werr := b.WaitAll(rets[:posted]); werr != nil {
				panic(werr)
			}
			if posted != n {
				panic("zerocopy: short post in staged round")
			}
			for k := 0; k < n; k++ {
				copy(outBuf, stage[k]) // copy 4: staging -> app
			}
		}
		return float64(calls) / time.Since(start).Seconds()
	}

	half := uint32(size / 2)
	driveZC := func() float64 {
		start := time.Now()
		for i := 0; i < calls; {
			n := 0
			for n < zcPairWindow && i < calls {
				slab, _, ok := ring.Acquire()
				if !ok {
					break
				}
				slabs[n] = slab
				segs[n] = [2]core.Segment{
					{Slab: slab, Off: 0, Len: half},
					{Slab: slab, Off: half, Len: uint32(size) - half},
				}
				vcalls[n] = core.VecCall{ID: 0, Segs: segs[n][:]}
				n++
				i++
			}
			b, err := r.SubmitV(vcalls[:n])
			if b == nil {
				panic(err)
			}
			posted := b.Len() // WaitAll recycles the handle; capture first
			if werr := b.WaitAll(rets[:posted]); werr != nil {
				panic(werr)
			}
			for k := 0; k < n; k++ {
				ring.Release(slabs[k])
			}
			if posted != n {
				panic("zerocopy: short post in zero-copy round")
			}
		}
		return float64(calls) / time.Since(start).Seconds()
	}

	copies := make([]float64, zcPairRounds)
	zcs := make([]float64, zcPairRounds)
	ratios := make([]float64, zcPairRounds)
	for i := 0; i < zcPairRounds; i++ {
		copies[i] = driveCopy()
		zcs[i] = driveZC()
		ratios[i] = zcs[i] / copies[i]
	}
	return medianOf(copies), medianOf(zcs), medianOf(ratios)
}

// measureVPNStreaming runs the openvpn fabric port's iperf-like driver:
// interleaved synchronous vs windowed relay rounds over the zero-copy
// ring path.  Returns median Mbit/s for each and the median same-round
// ratio.
func measureVPNStreaming() (syncMbits, winMbits, ratio float64) {
	s := openvpn.NewPoolServer(1, core.PoolOptions{
		MinResponders: 1,
		Timeout:       1 << 20,
	})
	s.Start()
	defer s.Stop()
	c := s.Conn(0)
	payload := make([]byte, openvpn.IperfPayload)
	for i := range payload {
		payload[i] = byte(i * 7)
	}

	mbits := func(bytes uint64, secs float64) float64 {
		return float64(bytes) * 8 / secs / 1e6
	}
	syncs := make([]float64, vpnPairRounds)
	wins := make([]float64, vpnPairRounds)
	ratios := make([]float64, vpnPairRounds)
	for i := 0; i < vpnPairRounds; i++ {
		start := time.Now()
		total, err := c.PumpSync(payload, vpnPairPackets)
		if err != nil {
			panic(err)
		}
		syncs[i] = mbits(total, time.Since(start).Seconds())

		start = time.Now()
		total, err = c.Pump(payload, vpnPairPackets)
		if err != nil {
			panic(err)
		}
		wins[i] = mbits(total, time.Since(start).Seconds())
		ratios[i] = wins[i] / syncs[i]
	}
	return medianOf(syncs), medianOf(wins), medianOf(ratios)
}

// zcPairCalls picks the fabric pair's call budget per round: enough
// moved bytes that the timer resolves cleanly at every size, small
// enough that the whole sweep stays around a second.
func zcPairCalls(kb uint64) int {
	return int(32000 / kb)
}

// runZeroCopy regenerates the staged-vs-zero-copy comparison.
func runZeroCopy() *Report {
	r := &Report{
		ID:    "zerocopy",
		Title: "Zero-copy payload rings: staged vs in-place transfer (sim sweep, fabric pairs, openvpn streaming)",
		CSV:   map[string]string{},
	}

	// Layer 1: the simulated crossing-cost sweep.
	sweep := zcSimSweep(zcSweepRuns)
	tbl := &table{header: []string{"size (KB)", "ecall staged", "ecall zc", "ratio",
		"ocall staged", "ocall zc", "ratio"}}
	var csv strings.Builder
	csv.WriteString("size_bytes,ecall_staged_cycles,ecall_zerocopy_cycles,ocall_staged_cycles,ocall_zerocopy_cycles\n")
	for _, pt := range sweep {
		er := pt.ecallStaged / pt.ecallZC
		or := pt.ocallStaged / pt.ocallZC
		tbl.add(fmt.Sprint(pt.kb), f0(pt.ecallStaged), f0(pt.ecallZC), f2(er)+"x",
			f0(pt.ocallStaged), f0(pt.ocallZC), f2(or)+"x")
		fmt.Fprintf(&csv, "%d,%.0f,%.0f,%.0f,%.0f\n", pt.kb<<10,
			pt.ecallStaged, pt.ecallZC, pt.ocallStaged, pt.ocallZC)
		r.Values = append(r.Values,
			Value{Name: fmt.Sprintf("sim ecall %dKB", pt.kb), Got: er, Unit: "x"},
			Value{Name: fmt.Sprintf("sim ocall %dKB", pt.kb), Got: or, Unit: "x"},
		)
	}
	r.CSV["zerocopy_sweep.csv"] = csv.String()
	if zeroCopyCSVPath != "" {
		if err := os.WriteFile(zeroCopyCSVPath, []byte(csv.String()), 0o644); err != nil {
			panic(err)
		}
	}

	// Layer 2: the wall-clock fabric pairs.
	tbl2 := &table{header: []string{"size (KB)", "staged Mops/s", "zero-copy Mops/s", "ratio"}}
	for _, kb := range zcSweepKB {
		copyRate, zcRate, ratio := measureZCFabric(int(kb<<10), zcPairCalls(kb))
		tbl2.add(fmt.Sprint(kb), f2(copyRate/1e6), f2(zcRate/1e6), f2(ratio)+"x")
		r.Values = append(r.Values, Value{
			Name: fmt.Sprintf("fabric rw %dKB", kb), Got: ratio, Unit: "x",
		})
	}

	// Layer 3: the openvpn streaming pair.
	syncM, winM, vratio := measureVPNStreaming()
	tbl3 := &table{header: []string{"openvpn fabric relay", "Mbit/s (median)", "ratio"}}
	tbl3.add("synchronous zero-copy relay", f1(syncM), "1.00x")
	tbl3.add("windowed vectored submit", f1(winM), f2(vratio)+"x")
	r.Values = append(r.Values, Value{Name: "openvpn windowed vs sync", Got: vratio, Unit: "x"})

	r.Table = tbl.String() + "\n" + tbl2.String() + "\n" + tbl3.String()
	return r
}

func init() {
	register(Experiment{ID: "zerocopy", Title: "Zero-copy ring transfer sweep", Run: runZeroCopy})
}

package bench

import (
	"fmt"
	"strings"

	"hotcalls/internal/core"
	"hotcalls/internal/sim"
	"hotcalls/internal/telemetry"
)

// runFig3 regenerates Figure 3: the CDF of HotEcall/HotOcall latency.
// Paper: over 78% of calls below 620 cycles, 99.97% within 1,400 cycles —
// a 13-27x improvement over the SDK mechanism.
func runFig3() *Report {
	r := &Report{ID: "fig3", Title: "Figure 3: CDF of HotCall latency", CSV: map[string]string{}}
	rng := sim.NewRNG(seedFor(131))
	model := core.NewLatencyModel(rng)
	// Feed the harness registry so a -metrics dump covers the HotCall
	// path too (nil-safe handles when telemetry is off).
	hotEcalls := tel.Counter(telemetry.MetricHotECalls)
	hotCycles := tel.Histogram(telemetry.MetricHotCallCycles)
	s := sim.NewSample(sim.TotalRuns)
	for i := 0; i < sim.TotalRuns; i++ {
		v := model.Sample()
		s.Add(v)
		hotEcalls.Inc()
		hotCycles.Observe(uint64(v))
	}
	below620 := s.FractionBelow(620) * 100
	below1400 := s.FractionBelow(1400) * 100

	tbl := &table{header: []string{"metric", "measured", "paper"}}
	tbl.add("median (cycles)", f0(s.Median()), "~620 \"in most cases\"")
	tbl.add("fraction <= 620 cycles", fmt.Sprintf("%.1f%%", below620), ">78%")
	tbl.add("fraction <= 1400 cycles", fmt.Sprintf("%.2f%%", below1400), "99.97%")
	tbl.add("p99.97 (cycles)", f0(s.Percentile(99.97)), "~1400")
	r.Table = tbl.String() + "\n" + asciiCDF("HotCall latency CDF", s.CDF(60), 60, 10)
	r.Values = []Value{
		{Name: "hotcall median", Got: s.Median(), Paper: 620, Unit: "cycles"},
		{Name: "fraction below 620", Got: below620, Paper: 78, Unit: "%"},
		{Name: "fraction below 1400", Got: below1400, Paper: 99.97, Unit: "%"},
	}

	var csv strings.Builder
	csv.WriteString("cycles,fraction\n")
	for _, p := range s.CDF(200) {
		fmt.Fprintf(&csv, "%.0f,%.4f\n", p.Value, p.Fraction)
	}
	r.CSV["fig3.csv"] = csv.String()
	return r
}

func init() {
	register(Experiment{ID: "fig3", Title: "HotCall latency CDF (Figure 3)", Run: runFig3})
}

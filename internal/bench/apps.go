package bench

import (
	"fmt"
	"sort"
	"strings"

	"hotcalls/internal/apps/lighttpd"
	"hotcalls/internal/apps/memcached"
	"hotcalls/internal/apps/openvpn"
	"hotcalls/internal/apps/porting"
	"hotcalls/internal/osapi"
	"hotcalls/internal/sim"
)

// appSimSeconds is the simulated duration of each application run.
const appSimSeconds = 0.05

// appResult is one application x mode data point.
type appResult struct {
	throughput float64 // requests/s or Mbit/s
	latency    float64 // seconds
}

// paper values for Figures 10 and 11.
var paperApps = map[string]map[porting.Mode]appResult{
	"memcached": {
		porting.Native:      {316500, 0.63e-3},
		porting.SGX:         {66500, 2.97e-3},
		porting.HotCalls:    {162000, 1.23e-3},
		porting.HotCallsNRZ: {185000, 1.08e-3},
	},
	"openvpn": {
		porting.Native:      {866, 1.427e-3},
		porting.SGX:         {309, 4.579e-3},
		porting.HotCalls:    {694, 1.873e-3},
		porting.HotCallsNRZ: {823, 1.747e-3},
	},
	"lighttpd": {
		porting.Native:      {53400, 1.52e-3},
		porting.SGX:         {12100, 8.25e-3},
		porting.HotCalls:    {40400, 2.40e-3},
		porting.HotCallsNRZ: {44800, 2.13e-3},
	},
}

func appUnit(app string) string {
	if app == "openvpn" {
		return "Mbit/s"
	}
	return "req/s"
}

// runApp executes one application in one mode and returns the two numbers
// the figures need.
func runApp(app string, mode porting.Mode) appResult {
	switch app {
	case "memcached":
		m := memcached.Run(mode, appSimSeconds)
		return appResult{m.Throughput, m.AvgLatency}
	case "openvpn":
		m := openvpn.RunIperf(mode, appSimSeconds)
		p := openvpn.RunPing(mode, appSimSeconds/2)
		return appResult{m.BandwidthMbs, p.AvgLatency}
	case "lighttpd":
		m := lighttpd.Run(mode, appSimSeconds)
		return appResult{m.Throughput, m.AvgLatency}
	}
	panic("bench: unknown app " + app)
}

var appOrder = []string{"memcached", "openvpn", "lighttpd"}

// runAppFigure produces Figure 10 (throughput, normalized to native) or
// Figure 11 (latency in milliseconds).
func runAppFigure(id string, latency bool) *Report {
	title := "Figure 10: application throughput by interface (normalized to native)"
	if latency {
		title = "Figure 11: application latency by interface"
	}
	r := &Report{ID: id, Title: title, CSV: map[string]string{}}
	tbl := &table{header: []string{"app", "mode", "measured", "paper", "dev", "normalized"}}
	var csv strings.Builder
	csv.WriteString("app,mode,measured,paper\n")
	for _, app := range appOrder {
		var native float64
		for _, mode := range porting.Modes {
			res := runApp(app, mode)
			got, paper := res.throughput, paperApps[app][mode].throughput
			unit := appUnit(app)
			if latency {
				got, paper = res.latency*1e3, paperApps[app][mode].latency*1e3
				unit = "ms"
			}
			if mode == porting.Native {
				native = got
			}
			norm := got / native
			r.Values = append(r.Values, Value{
				Name: fmt.Sprintf("%s %s", app, mode), Got: got, Paper: paper, Unit: unit,
			})
			tbl.add(app, mode.String(),
				fmt.Sprintf("%.1f %s", got, unit),
				fmt.Sprintf("%.1f %s", paper, unit),
				pct(got, paper), f2(norm))
			fmt.Fprintf(&csv, "%s,%s,%.2f,%.2f\n", app, mode, got, paper)
		}
	}
	r.Table = tbl.String()
	r.CSV[id+".csv"] = csv.String()
	return r
}

// runTable2 regenerates Table 2: the most frequent API calls of each
// application running in the unoptimized SGX port, in thousands of calls
// per second, plus the core time spent facilitating them.
func runTable2() *Report {
	r := &Report{ID: "table2", Title: "Table 2: API call frequency in the unoptimized SGX ports"}
	tbl := &table{header: []string{"application", "call", "k calls/s", "paper k/s"}}

	// The paper's per-call rates at the SGX ports' throughputs.
	paperRates := map[string]map[string]float64{
		"memcached": {"read": 66.5, "sendmsg": 66.5, "RunEnclaveFucntion": 66.5},
		"openvpn":   {"poll": 87, "time": 87, "getpid": 13.6, "write": 30, "recvfrom": 30, "read": 13.6, "sendto": 13.6},
		"lighttpd":  {"read": 49, "fcntl": 25, "epoll_ctl": 25, "close": 25, "setsockopt": 25, "fxstat64": 25, "inet_ntop": 12, "accept": 12, "inet_addr": 12, "ioctl": 12, "open64_2": 12, "sendfile64": 12, "shutdown": 12, "writev": 12},
	}
	paperTotals := map[string]float64{"memcached": 200, "openvpn": 275, "lighttpd": 270}
	paperCoreTime := map[string]float64{"memcached": 42, "openvpn": 57, "lighttpd": 56}

	measure := func(app string) (counters map[string]uint64, seconds float64, ecallName string) {
		switch app {
		case "memcached":
			s := memcached.NewServer(porting.SGX)
			w := memcached.NewWorkload(s, seedFor(77))
			s.App.ResetCounters()
			m := porting.RunClosedLoop(memcached.Outstanding, sim.Cycles(appSimSeconds), func(clk *sim.Clock) {
				w.InjectNext()
				s.ServeOne(clk)
				w.DrainResponse()
			})
			return s.App.Counters(), m.SimSeconds, "ecall_run_enclave_function"
		case "openvpn":
			s := openvpn.NewServer(porting.SGX)
			var ck [16]byte
			var mk [32]byte
			copy(ck[:], "tunnel-cipher-k!")
			copy(mk[:], "tunnel-hmac-key-tunnel-hmac-key-")
			seal := openvpn.NewCipher(ck, mk)
			payload := make([]byte, openvpn.IperfPayload)
			s.App.ResetCounters()
			m := porting.RunClosedLoop(64, sim.Cycles(appSimSeconds), func(clk *sim.Clock) {
				s.ServePacket(clk, seal, payload, false)
			})
			return s.App.Counters(), m.SimSeconds, "ecall_process_event"
		default:
			s := lighttpd.NewServer(porting.SGX)
			s.App.ResetCounters()
			m := porting.RunClosedLoop(lighttpd.Outstanding, sim.Cycles(appSimSeconds), func(clk *sim.Clock) {
				client := s.InjectRequest("/")
				s.ServeOne(clk)
				for {
					if _, ok := s.App.Kernel.TakeRX(client); !ok {
						break
					}
				}
			})
			return s.App.Counters(), m.SimSeconds, "ecall_handle_connection"
		}
	}

	for _, app := range appOrder {
		counters, seconds, ecallName := measure(app)
		var names []string
		var totalCalls uint64
		for name, count := range counters {
			if name == "ecall_main" {
				continue
			}
			names = append(names, name)
			totalCalls += count
		}
		sort.Slice(names, func(i, j int) bool { return counters[names[i]] > counters[names[j]] })
		for _, name := range names {
			rate := float64(counters[name]) / seconds / 1000
			short := strings.TrimPrefix(name, "ocall_")
			if name == ecallName {
				short = "RunEnclaveFucntion" // the paper's (sic) spelling
			}
			paper := paperRates[app][short]
			if paper == 0 && short == "open64" {
				paper = paperRates[app]["open64_2"]
			}
			if paper > 0 {
				r.Values = append(r.Values, Value{Name: app + " " + short, Got: rate, Paper: paper, Unit: "k calls/s"})
				tbl.add(app, short, f1(rate), f1(paper))
			} else {
				tbl.add(app, short, f1(rate), "-")
			}
		}
		totalRate := float64(totalCalls) / seconds / 1000
		// Core time: N_calls x 8,300 / 4 GHz, the paper's estimate.
		coreTime := totalRate * 1000 * 8300 / sim.FrequencyHz * 100
		r.Values = append(r.Values,
			Value{Name: app + " total calls", Got: totalRate, Paper: paperTotals[app], Unit: "k calls/s"},
			Value{Name: app + " core time", Got: coreTime, Paper: paperCoreTime[app], Unit: "%"},
		)
		tbl.add(app, "TOTAL", f1(totalRate), f1(paperTotals[app]))
		tbl.add(app, fmt.Sprintf("core time %.0f%%", coreTime), "", fmt.Sprintf("paper %v%%", paperCoreTime[app]))
	}
	_ = osapi.SyscallCost
	r.Table = tbl.String()
	return r
}

func init() {
	register(Experiment{ID: "table2", Title: "API call frequencies (Table 2)", Run: runTable2})
	register(Experiment{ID: "fig10", Title: "Application throughput (Figure 10)", Run: func() *Report {
		return runAppFigure("fig10", false)
	}})
	register(Experiment{ID: "fig11", Title: "Application latency (Figure 11)", Run: func() *Report {
		return runAppFigure("fig11", true)
	}})
}

package bench

// This file collects the raw measurements behind REPORT.md — the paper's
// full measurement plan re-run with the high-resolution distribution
// recorder (internal/dist) attached to the production instrumentation
// hooks, rather than with the sample arrays the table experiments use.
// Rendering and the fidelity comparison live in internal/report, which
// sits above both this package and internal/regress (regress imports
// bench, so the comparison cannot run here without a cycle).

import (
	"fmt"

	"hotcalls/internal/apps/lighttpd"
	"hotcalls/internal/apps/memcached"
	"hotcalls/internal/apps/porting"
	"hotcalls/internal/core"
	"hotcalls/internal/dist"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sim"
)

// ReportConfig sizes one report run.  The zero value means "paper scale":
// the defaults reproduce the committed REPORT.md byte for byte.
type ReportConfig struct {
	Seed         uint64  // base seed (sim.DefaultSeed reproduces the baseline)
	WarmRuns     int     // per warm series; default microRuns (20,000)
	ColdRuns     int     // per cold series; default microRuns/4
	AppSeconds   float64 // simulated seconds per application point; default appSimSeconds
	ReservoirCap int     // raw samples kept per series; default dist.DefaultReservoirCap
}

// WithDefaults fills unset fields with the paper-scale values.
func (c ReportConfig) WithDefaults() ReportConfig {
	if c.WarmRuns <= 0 {
		c.WarmRuns = microRuns
	}
	if c.ColdRuns <= 0 {
		c.ColdRuns = microRuns / 4
	}
	if c.AppSeconds <= 0 {
		c.AppSeconds = appSimSeconds
	}
	if c.ReservoirCap <= 0 {
		c.ReservoirCap = dist.DefaultReservoirCap
	}
	return c
}

// CallSeries is one measured latency distribution.
type CallSeries struct {
	Name string
	Snap dist.Snapshot
}

// SweepPoint is one buffer size of the Figure 6/7 read/write sweep.
type SweepPoint struct {
	KB               uint64
	ReadPlain        float64
	ReadEnc          float64
	ReadOverheadPct  float64
	PaperReadPct     float64 // Figure 6's published overhead
	WritePlain       float64
	WriteEnc         float64
	WriteOverheadPct float64
}

// AppPoint is one application x mode throughput measurement.
type AppPoint struct {
	App        string
	Mode       porting.Mode
	Throughput float64
	Paper      float64
	Unit       string
}

// ReportData is everything the report renders: the six call-latency
// distributions, the EENTER/EEXIT leaf distributions, the buffer sweep,
// and the application runs.
type ReportData struct {
	Cfg        ReportConfig
	Calls      []CallSeries // ecall/ocall/hotecall x warm/cold, paper order
	Leaves     []CallSeries // eenter/eexit leaves of the warm-ecall run
	Sweep      []SweepPoint
	Apps       []AppPoint
	AppLatency []CallSeries // per-request latency under HotCalls
}

// CollectReport runs the full measurement plan.  Every stream seed
// derives from cfg.Seed through sim.SeedMix, so two runs with the same
// config produce identical data.
func CollectReport(cfg ReportConfig) *ReportData {
	cfg = cfg.WithDefaults()
	SetSeed(cfg.Seed)
	d := &ReportData{Cfg: cfg}

	for _, kind := range []dist.Kind{dist.Ecall, dist.Ocall, dist.HotEcall} {
		for _, temp := range []dist.Temp{dist.Warm, dist.Cold} {
			set := measureCallDist(cfg, kind, temp)
			d.Calls = append(d.Calls, CallSeries{
				Name: dist.SeriesName(kind, temp),
				Snap: set.Recorder(kind, temp).Snapshot(),
			})
			if kind == dist.Ecall && temp == dist.Warm {
				// The warm-ecall run also exercises the leaf hooks: each
				// crossing is one EENTER and one EEXIT.
				d.Leaves = append(d.Leaves,
					CallSeries{Name: "eenter_warm", Snap: set.Recorder(dist.EEnterLeaf, dist.Warm).Snapshot()},
					CallSeries{Name: "eexit_warm", Snap: set.Recorder(dist.EExitLeaf, dist.Warm).Snapshot()},
				)
			}
		}
	}

	for _, kb := range []uint64{2, 4, 8, 16, 32} {
		size := kb << 10
		rp, re := readMedian(plainBuf, size), readMedian(enclaveBuf, size)
		wp, we := writeMedian(plainBuf, size), writeMedian(enclaveBuf, size)
		d.Sweep = append(d.Sweep, SweepPoint{
			KB: kb,
			ReadPlain: rp, ReadEnc: re,
			ReadOverheadPct: (re - rp) / rp * 100,
			PaperReadPct:    paperReadOverheads[kb],
			WritePlain:      wp, WriteEnc: we,
			WriteOverheadPct: (we - wp) / wp * 100,
		})
	}

	for _, app := range []string{"memcached", "lighttpd"} {
		for _, mode := range porting.Modes {
			var thr float64
			switch app {
			case "memcached":
				thr = memcached.Run(mode, cfg.AppSeconds).Throughput
			case "lighttpd":
				thr = lighttpd.Run(mode, cfg.AppSeconds).Throughput
			}
			d.Apps = append(d.Apps, AppPoint{
				App: app, Mode: mode,
				Throughput: thr,
				Paper:      paperApps[app][mode].throughput,
				Unit:       appUnit(app),
			})
		}
		d.AppLatency = append(d.AppLatency, CallSeries{
			Name: app + "_hotcalls_request",
			Snap: appRequestDist(app, cfg),
		})
	}
	return d
}

// measureCallDist measures one (kind, temperature) series on a fresh
// fixture with the distribution set attached to the production hooks.
// The fixture is warmed up with the set detached, so start-up transients
// cannot pollute the recorded tail; cold series evict the cache hierarchy
// before every call (warm-up included), matching Table 1's protocol.
func measureCallDist(cfg ReportConfig, kind dist.Kind, temp dist.Temp) *dist.Set {
	runs := cfg.WarmRuns
	if temp == dist.Cold {
		runs = cfg.ColdRuns
	}
	set := dist.NewSet(cfg.ReservoirCap)
	set.SetTemp(temp)

	var (
		f    *microFixture
		ch   *core.Channel
		call func()
	)
	switch kind {
	case dist.Ecall:
		f = newMicroFixture(141)
		call = func() {
			if temp == dist.Cold {
				f.p.Mem.EvictAll()
			}
			var clk sim.Clock
			if _, err := f.rt.ECall(&clk, "ecall_empty"); err != nil {
				panic(err)
			}
		}
	case dist.Ocall:
		// Ocalls issue from inside a driver ecall, as in measureOcall;
		// only the Ocall recorder is read, so the driver's own ecall
		// observations do not mix in.
		f = newMicroFixture(151)
		f.rt.MustBindECall("ecall_driver", func(ctx *sdk.Ctx, _ []sdk.Arg) uint64 {
			if temp == dist.Cold {
				f.p.Mem.EvictAll()
			}
			if _, err := ctx.OCall("ocall_empty"); err != nil {
				panic(err)
			}
			return 0
		})
		call = func() {
			var clk sim.Clock
			if _, err := f.rt.ECall(&clk, "ecall_driver"); err != nil {
				panic(err)
			}
		}
	case dist.HotEcall:
		f = newMicroFixture(161)
		ch = core.NewChannel(f.rt, sim.NewRNG(seedFor(163)))
		call = func() {
			if temp == dist.Cold {
				f.p.Mem.EvictAll()
			}
			var clk sim.Clock
			if _, err := ch.HotECall(&clk, "ecall_empty"); err != nil {
				panic(err)
			}
		}
	default:
		panic(fmt.Sprintf("bench: no report series for kind %v", kind))
	}

	for i := 0; i < 50; i++ {
		call()
	}
	f.p.SetDistribution(set)
	f.rt.SetDistribution(set)
	if ch != nil {
		ch.SetDistribution(set)
	}
	for i := 0; i < runs; i++ {
		call()
	}
	return set
}

// appRequestDist runs one application under HotCalls with the per-request
// distribution recorder enabled and returns the request-latency snapshot.
func appRequestDist(app string, cfg ReportConfig) dist.Snapshot {
	rec := dist.NewRecorder(cfg.ReservoirCap)
	switch app {
	case "memcached":
		s := memcached.NewServer(porting.HotCalls)
		s.EnableDistribution(rec)
		w := memcached.NewWorkload(s, seedFor(77))
		porting.RunClosedLoop(memcached.Outstanding, sim.Cycles(cfg.AppSeconds), func(clk *sim.Clock) {
			w.InjectNext()
			s.ServeOne(clk)
			if _, err := w.DrainResponse(); err != nil {
				panic(err)
			}
		})
	case "lighttpd":
		s := lighttpd.NewServer(porting.HotCalls)
		s.EnableDistribution(rec)
		porting.RunClosedLoop(lighttpd.Outstanding, sim.Cycles(cfg.AppSeconds), func(clk *sim.Clock) {
			client := s.InjectRequest("/")
			s.ServeOne(clk)
			for {
				if _, ok := s.App.Kernel.TakeRX(client); !ok {
					break
				}
			}
		})
	default:
		panic("bench: no request distribution for app " + app)
	}
	return rec.Snapshot()
}

// Snapshot returns one named call series, or a zero snapshot.
func (d *ReportData) Snapshot(name string) dist.Snapshot {
	for _, lists := range [][]CallSeries{d.Calls, d.Leaves, d.AppLatency} {
		for _, s := range lists {
			if s.Name == name {
				return s.Snap
			}
		}
	}
	return dist.Snapshot{}
}

// FidelityPair builds the synthetic baseline/candidate artifact pair the
// fidelity gate diffs: one experiment with ID "fidelity" whose baseline
// values are the paper's published numbers and whose candidate values are
// this run's measurements.  internal/regress flattens these to
// "fidelity/<metric>" keys, which PaperFidelityPolicy's overrides match.
func (d *ReportData) FidelityPair() (base, cand JSONReport) {
	med := func(name string) float64 { return d.Snapshot(name).Quantile(0.5) }
	thr := func(app string, mode porting.Mode) float64 {
		for _, a := range d.Apps {
			if a.App == app && a.Mode == mode {
				return a.Throughput
			}
		}
		return 0
	}
	vals := []Value{
		{Name: "ecall_warm_median_cycles", Got: med("ecall_warm"), Paper: 8640, Unit: "cycles"},
		{Name: "ecall_cold_median_cycles", Got: med("ecall_cold"), Paper: 14170, Unit: "cycles"},
		{Name: "ocall_warm_median_cycles", Got: med("ocall_warm"), Paper: 8314, Unit: "cycles"},
		{Name: "ocall_cold_median_cycles", Got: med("ocall_cold"), Paper: 14160, Unit: "cycles"},
		{Name: "hotcall_median_cycles", Got: med("hotecall_warm"), Paper: 620, Unit: "cycles"},
		// The paper states Figure 3 as fractions ("over 78% below 620
		// cycles, 99.97% within 1,400"); gate on the same form — the
		// p99.97 order statistic itself is the top handful of samples
		// and too seed-sensitive to gate on.
		{Name: "hotcall_frac_below_620_pct", Got: d.Snapshot("hotecall_warm").FractionBelow(620) * 100, Paper: 78, Unit: "%"},
		{Name: "hotcall_frac_below_1400_pct", Got: d.Snapshot("hotecall_warm").FractionBelow(1400) * 100, Paper: 99.97, Unit: "%"},
		{Name: "hotcall_vs_ecall_speedup", Got: med("ecall_warm") / med("hotecall_warm"), Paper: 8640.0 / 620, Unit: "x"},
		{Name: "hotcall_vs_ocall_speedup", Got: med("ocall_warm") / med("hotecall_warm"), Paper: 8314.0 / 620, Unit: "x"},
	}
	var writeSum float64
	for _, p := range d.Sweep {
		vals = append(vals, Value{
			Name: fmt.Sprintf("read_overhead_%dkb_pct", p.KB),
			Got:  p.ReadOverheadPct, Paper: p.PaperReadPct, Unit: "%",
		})
		writeSum += p.WriteOverheadPct
	}
	if n := len(d.Sweep); n > 0 {
		vals = append(vals, Value{Name: "write_overhead_mean_pct", Got: writeSum / float64(n), Paper: 6, Unit: "%"})
	}
	vals = append(vals,
		Value{Name: "memcached_hotcalls_speedup", Got: thr("memcached", porting.HotCalls) / thr("memcached", porting.SGX), Paper: 162000.0 / 66500, Unit: "x"},
		Value{Name: "lighttpd_hotcalls_speedup", Got: thr("lighttpd", porting.HotCalls) / thr("lighttpd", porting.SGX), Paper: 40400.0 / 12100, Unit: "x"},
	)

	be := JSONExperiment{ID: "fidelity", Title: "paper fidelity"}
	ce := JSONExperiment{ID: "fidelity", Title: "paper fidelity"}
	for _, v := range vals {
		be.Values = append(be.Values, JSONValue{Name: v.Name, Got: v.Paper, Unit: v.Unit})
		ce.Values = append(ce.Values, JSONValue{Name: v.Name, Got: v.Got, Paper: v.Paper, Unit: v.Unit})
	}
	base = JSONReport{Schema: "hotcalls-bench/v1", Experiments: []JSONExperiment{be}}
	cand = JSONReport{Schema: "hotcalls-bench/v1", Experiments: []JSONExperiment{ce}}
	return base, cand
}

package bench

import (
	"math"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table2", "fig10", "fig11", "ablation-calls", "ablation-cores", "breakdown", "epc", "flight", "incident", "loadcurve", "profile", "scaling", "whatif", "zerocopy"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
		if Get(id) == nil {
			t.Errorf("Get(%s) = nil", id)
		}
	}
	if Get("nope") != nil {
		t.Error("Get of unknown ID should be nil")
	}
}

// runOnce caches experiment runs so multiple assertions share one run.
var reportCache = map[string]*Report{}

func report(t *testing.T, id string) *Report {
	t.Helper()
	if r, ok := reportCache[id]; ok {
		return r
	}
	e := Get(id)
	if e == nil {
		t.Fatalf("experiment %s missing", id)
	}
	r := e.Run()
	reportCache[id] = r
	return r
}

func TestTable1AllRowsClose(t *testing.T) {
	r := report(t, "table1")
	if len(r.Values) != 18 {
		t.Fatalf("table1 has %d values, want 18", len(r.Values))
	}
	for _, v := range r.Values {
		if dev := math.Abs(v.Deviation()); dev > 0.10 {
			t.Errorf("%s: got %.0f, paper %.0f (%.1f%% off)", v.Name, v.Got, v.Paper, dev*100)
		}
	}
	if !strings.Contains(r.Table, "Ecall (warm cache)") {
		t.Error("rendered table missing rows")
	}
}

func TestFig2RangesRespected(t *testing.T) {
	r := report(t, "fig2")
	for _, v := range r.Values {
		// CDF endpoints within 10% of the paper's reported bands.
		if dev := math.Abs(v.Deviation()); dev > 0.10 {
			t.Errorf("%s: got %.0f, paper %.0f", v.Name, v.Got, v.Paper)
		}
	}
	if len(r.CSV) != 4 {
		t.Errorf("fig2 should emit 4 CDF series, got %d", len(r.CSV))
	}
}

func TestFig3Targets(t *testing.T) {
	r := report(t, "fig3")
	for _, v := range r.Values {
		switch v.Name {
		case "fraction below 620":
			if v.Got < 75 || v.Got > 90 {
				t.Errorf("P(<=620) = %.1f%%, want ~78%%", v.Got)
			}
		case "fraction below 1400":
			if v.Got < 99.5 {
				t.Errorf("P(<=1400) = %.2f%%, want ~99.97%%", v.Got)
			}
		case "hotcall median":
			if v.Got < 450 || v.Got > 620 {
				t.Errorf("median = %.0f, want at most 620", v.Got)
			}
		}
	}
}

func TestFig4Fig5Shapes(t *testing.T) {
	for _, id := range []string{"fig4", "fig5"} {
		r := report(t, id)
		// Values come in (in, out, inout) triples per size; out must be
		// the most expensive everywhere, and costs must grow with size.
		get := func(dir string, kb int) float64 {
			for _, v := range r.Values {
				if strings.Contains(v.Name, dir+" ") && strings.HasSuffix(v.Name, "KB") &&
					strings.Contains(v.Name, " "+itoa(kb)+"KB") {
					return v.Got
				}
			}
			t.Fatalf("%s: missing %s %dKB", id, dir, kb)
			return 0
		}
		for _, kb := range []int{1, 2, 4, 8, 16} {
			in, out, inout := get("in", kb), get("out", kb), get("inout", kb)
			if !(out > inout && inout > in) {
				t.Errorf("%s %dKB: ordering wrong: in=%.0f out=%.0f inout=%.0f", id, kb, in, out, inout)
			}
		}
		if get("out", 16) <= get("out", 1) {
			t.Errorf("%s: out cost should grow with size", id)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestFig6OverheadCurve(t *testing.T) {
	r := report(t, "fig6")
	// Endpoints tight; the curve must be non-decreasing.
	var prev float64
	for _, v := range r.Values {
		if v.Got < prev-5 {
			t.Errorf("fig6 overhead decreased: %s = %.1f after %.1f", v.Name, v.Got, prev)
		}
		prev = v.Got
	}
	first, last := r.Values[0], r.Values[len(r.Values)-1]
	if math.Abs(first.Got-first.Paper) > 12 {
		t.Errorf("2KB overhead = %.1f%%, paper %.1f%%", first.Got, first.Paper)
	}
	if math.Abs(last.Got-last.Paper) > 15 {
		t.Errorf("32KB overhead = %.1f%%, paper %.1f%%", last.Got, last.Paper)
	}
}

func TestFig7WriteOverheadFlat(t *testing.T) {
	r := report(t, "fig7")
	for _, v := range r.Values {
		if v.Got < 2 || v.Got > 12 {
			t.Errorf("%s = %.1f%%, want ~6%%", v.Name, v.Got)
		}
	}
}

func TestFig8Slowdowns(t *testing.T) {
	r := report(t, "fig8")
	byName := map[string]float64{}
	for _, v := range r.Values {
		byName[v.Name] = v.Got
	}
	if s := byName["mcf"]; s < 1.3 || s > 1.8 {
		t.Errorf("mcf = %.2fx, paper 1.55x", s)
	}
	if s := byName["libquantum"]; s < 4.2 || s > 6.2 {
		t.Errorf("libquantum = %.2fx, paper 5.2x", s)
	}
	if byName["libquantum"] < byName["mcf"] {
		t.Error("libquantum must dominate mcf")
	}
}

func TestTable2RatesAndCoreTime(t *testing.T) {
	r := report(t, "table2")
	for _, v := range r.Values {
		if v.Paper == 0 {
			continue
		}
		tol := 0.20
		if strings.Contains(v.Name, "core time") || strings.Contains(v.Name, "total") {
			tol = 0.20
		}
		if dev := math.Abs(v.Deviation()); dev > tol {
			t.Errorf("%s: got %.1f, paper %.1f (%.0f%% off)", v.Name, v.Got, v.Paper, dev*100)
		}
	}
}

func TestFig10Fig11AllPoints(t *testing.T) {
	for _, id := range []string{"fig10", "fig11"} {
		r := report(t, id)
		if len(r.Values) != 12 {
			t.Fatalf("%s has %d points, want 12", id, len(r.Values))
		}
		for _, v := range r.Values {
			// Calibrated points within 12%, predictions within 25%.
			tol := 0.25
			if strings.Contains(v.Name, "native") || strings.Contains(v.Name, " sgx") {
				tol = 0.15
			}
			if dev := math.Abs(v.Deviation()); dev > tol {
				t.Errorf("%s %s: got %.1f %s, paper %.1f (%.0f%% off)",
					id, v.Name, v.Got, v.Unit, v.Paper, dev*100)
			}
		}
	}
}

func TestFig10SpeedupClaims(t *testing.T) {
	// Headline claims: HotCalls+NRZ boosts throughput 2.6-3.7x over the
	// unoptimized SGX port.
	r := report(t, "fig10")
	byName := map[string]float64{}
	for _, v := range r.Values {
		byName[v.Name] = v.Got
	}
	for _, app := range appOrder {
		boost := byName[app+" hotcalls+nrz"] / byName[app+" sgx"]
		if boost < 2.3 || boost > 4.2 {
			t.Errorf("%s: NRZ boost = %.2fx, paper range 2.6-3.7x", app, boost)
		}
	}
}

func TestFig11LatencyReductionClaims(t *testing.T) {
	// Headline claims: latency reduced by 62-74% vs the unoptimized port.
	r := report(t, "fig11")
	byName := map[string]float64{}
	for _, v := range r.Values {
		byName[v.Name] = v.Got
	}
	for _, app := range appOrder {
		reduction := 1 - byName[app+" hotcalls+nrz"]/byName[app+" sgx"]
		if reduction < 0.5 || reduction > 0.85 {
			t.Errorf("%s: latency reduction = %.0f%%, paper range 62-74%%", app, reduction*100)
		}
	}
}

func TestReportsRender(t *testing.T) {
	for _, e := range All() {
		r := report(t, e.ID)
		if r.ID != e.ID {
			t.Errorf("%s: report ID mismatch", e.ID)
		}
		if r.Table == "" {
			t.Errorf("%s: empty rendered table", e.ID)
		}
		if len(r.Values) == 0 {
			t.Errorf("%s: no structured values", e.ID)
		}
	}
}

// TestProfileCrossValidation pins the experiment-level form of the
// profiler's acceptance criterion: every trace-attributed component is
// within ±5% of the analytic model (the full per-component matrix,
// including absent components, lives in internal/profile's tests).
func TestProfileCrossValidation(t *testing.T) {
	r := report(t, "profile")
	if len(r.Values) == 0 {
		t.Fatal("profile experiment produced no values")
	}
	for _, v := range r.Values {
		if dev := math.Abs(v.Deviation()); dev > 0.05 {
			t.Errorf("%s: trace %.1f vs analytic %.1f (%.1f%% apart)", v.Name, v.Got, v.Paper, dev*100)
		}
	}
	if !strings.Contains(r.Table, "hotecall:ecall_empty") {
		t.Errorf("profile table missing hotcall row:\n%s", r.Table)
	}
}

func TestBreakdownSharesReflectTable2(t *testing.T) {
	r := report(t, "breakdown")
	byName := map[string]float64{}
	for _, v := range r.Values {
		byName[v.Name] = v.Got
	}
	// The SGX edge-call share is the paper's Table 2 core-time column
	// measured from the inside.  The profiled envelope also includes
	// marshalling and kernel service, so it sits somewhat above the
	// paper's warm-call-only arithmetic — but must track it.
	for app, paper := range map[string]float64{"memcached": 42, "openvpn": 57, "lighttpd": 56} {
		got := byName[app+" sgx edge-call share"]
		if got < paper*0.9 || got > paper*1.35 {
			t.Errorf("%s sgx call share = %.1f%%, paper estimate %.0f%%", app, got, paper)
		}
		hot := byName[app+" hotcalls edge-call share"]
		if hot >= got/2 {
			t.Errorf("%s: hotcalls call share %.1f%% should be far below sgx %.1f%%", app, hot, got)
		}
	}
}

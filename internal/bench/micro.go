package bench

import (
	"fmt"
	"strings"

	"hotcalls/internal/edl"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sgx"
	"hotcalls/internal/sim"
)

// microEDL declares the edge functions of the Section 3 microbenchmarks.
const microEDL = `
enclave {
    trusted {
        public int ecall_empty(void);
        public int ecall_in([in, size=len] uint8_t* buf, size_t len);
        public int ecall_out([out, size=len] uint8_t* buf, size_t len);
        public int ecall_inout([in, out, size=len] uint8_t* buf, size_t len);
        public int ecall_driver(void);
    };
    untrusted {
        int ocall_empty(void);
        int ocall_in([in, size=len] uint8_t* buf, size_t len);
        int ocall_out([out, size=len] uint8_t* buf, size_t len);
        int ocall_inout([in, out, size=len] uint8_t* buf, size_t len);
    };
};
`

// microFixture is the platform + enclave + runtime the microbenchmarks run
// on, mirroring the paper's testbed setup.
type microFixture struct {
	p  *sgx.Platform
	e  *sgx.Enclave
	rt *sdk.Runtime
}

func newMicroFixture(seed uint64) *microFixture {
	p := sgx.NewPlatform(seedFor(seed))
	var clk sim.Clock
	e := p.ECreate(&clk, 64<<20, 4, sgx.Attributes{})
	for i := 0; i < 4; i++ {
		if err := e.EAdd(&clk, uint64(i)*sgx.PageSize, make([]byte, sgx.PageSize)); err != nil {
			panic(err)
		}
	}
	if err := e.EInit(&clk); err != nil {
		panic(err)
	}
	rt := sdk.New(p, e, edl.MustParse(microEDL))
	noop := func(ctx *sdk.Ctx, args []sdk.Arg) uint64 { return 0 }
	for _, name := range []string{"ecall_empty", "ecall_in", "ecall_out", "ecall_inout"} {
		rt.MustBindECall(name, noop)
	}
	for _, name := range []string{"ocall_empty", "ocall_in", "ocall_out", "ocall_inout"} {
		rt.MustBindOCall(name, noop)
	}
	// Attach the harness registry (no-op handles when none is set).
	p.SetTelemetry(tel)
	rt.SetTelemetry(tel)
	return &microFixture{p: p, e: e, rt: rt}
}

// measureEcall measures one ecall variant under the Section 3.1
// methodology.  setup runs untimed before each measurement.
func (f *microFixture) measureEcall(name string, runs int, setup func(), args ...sdk.Arg) *sim.Sample {
	for i := 0; i < 50; i++ {
		var clk sim.Clock
		if setup != nil {
			setup()
		}
		if _, err := f.rt.ECall(&clk, name, args...); err != nil {
			panic(err)
		}
	}
	return sim.MeasureN(f.p.RNG, runs, func() uint64 {
		if setup != nil {
			setup()
		}
		var clk sim.Clock
		if _, err := f.rt.ECall(&clk, name, args...); err != nil {
			panic(err)
		}
		return clk.Now()
	}).Sample
}

// measureOcall measures one ocall variant issued from inside a driver
// ecall, timing only the ocall itself (RDTSCP cannot run inside the
// enclave, but the simulation can bracket precisely).
func (f *microFixture) measureOcall(name string, runs int, setup func(), args ...sdk.Arg) *sim.Sample {
	var ocallCycles uint64
	f.rt.MustBindECall("ecall_driver", func(ctx *sdk.Ctx, a []sdk.Arg) uint64 {
		if setup != nil {
			setup()
		}
		start := ctx.Clk.Now()
		if _, err := ctx.OCall(name, args...); err != nil {
			panic(err)
		}
		ocallCycles = ctx.Clk.Since(start)
		return 0
	})
	run := func() uint64 {
		var clk sim.Clock
		if _, err := f.rt.ECall(&clk, "ecall_driver"); err != nil {
			panic(err)
		}
		return ocallCycles
	}
	for i := 0; i < 50; i++ {
		run()
	}
	return sim.MeasureN(f.p.RNG, runs, run).Sample
}

const microRuns = 20000

// runTable1 regenerates Table 1: the ten microbenchmarks of Section 3.
func runTable1() *Report {
	r := &Report{ID: "table1", Title: "Table 1: microbenchmarks of fundamental SGX operations"}
	tbl := &table{header: []string{"#", "Micro-benchmark", "Median (cycles)", "Paper", "Dev"}}
	addRow := func(num int, name string, got, paper float64) {
		r.Values = append(r.Values, Value{Name: name, Got: got, Paper: paper, Unit: "cycles"})
		tbl.add(fmt.Sprint(num), name, f0(got), f0(paper), pct(got, paper))
	}

	// Rows 1-2: empty ecall, warm and cold.
	f := newMicroFixture(101)
	warm := f.measureEcall("ecall_empty", microRuns, nil)
	addRow(1, "Ecall (warm cache)", warm.Median(), 8640)
	cold := f.measureEcall("ecall_empty", microRuns/4, func() { f.p.Mem.EvictAll() })
	addRow(2, "Ecall (cold cache)", cold.Median(), 14170)

	// Row 3: ecall + 2 KB buffer to / from / to&from.  (The `from`
	// paper value is 11,712 per the Section 3.5 text; the table's
	// 11,172 contradicts the paper's own arithmetic.)
	for _, c := range []struct {
		fn    string
		label string
		paper float64
	}{
		{"ecall_in", "Ecall 2KB to enclave (in)", 9861},
		{"ecall_out", "Ecall 2KB from enclave (out)", 11712},
		{"ecall_inout", "Ecall 2KB to&from (in,out)", 10827},
	} {
		ff := newMicroFixture(103)
		var clk sim.Clock
		buf := ff.rt.Arena.AllocBuffer(&clk, 2048)
		s := ff.measureEcall(c.fn, microRuns/4, func() { ff.p.Mem.EvictRange(buf.Addr, 2048) },
			sdk.Buf(buf), sdk.Scalar(2048))
		addRow(3, c.label, s.Median(), c.paper)
	}

	// Rows 4-5: empty ocall, warm and cold.
	f2 := newMicroFixture(105)
	owarm := f2.measureOcall("ocall_empty", microRuns, nil)
	addRow(4, "Ocall (warm cache)", owarm.Median(), 8314)
	ocold := f2.measureOcall("ocall_empty", microRuns/4, func() { f2.p.Mem.EvictAll() })
	addRow(5, "Ocall (cold cache)", ocold.Median(), 14160)

	// Row 6: ocall + 2 KB buffer to / from / to&from.
	for _, c := range []struct {
		fn    string
		label string
		paper float64
	}{
		{"ocall_in", "Ocall 2KB to untrusted (in)", 9252},
		{"ocall_out", "Ocall 2KB from untrusted (out)", 11418},
		{"ocall_inout", "Ocall 2KB to&from (in,out)", 9801},
	} {
		ff := newMicroFixture(107)
		ebuf := mustEnclaveBuf(ff, 2048)
		s := ff.measureOcall(c.fn, microRuns/4, nil, sdk.Buf(ebuf), sdk.Scalar(2048))
		addRow(6, c.label, s.Median(), c.paper)
	}

	// Rows 7-10: memory microbenchmarks (encrypted / plaintext).
	for _, v := range memoryRows() {
		r.Values = append(r.Values, v)
		tbl.add(fmt.Sprint(rowNum(v.Name)), v.Name, f0(v.Got), f0(v.Paper), pct(v.Got, v.Paper))
	}

	r.Table = tbl.String()
	return r
}

func rowNum(name string) int {
	switch {
	case strings.Contains(name, "Reading"):
		return 7
	case strings.Contains(name, "Writing"):
		return 8
	case strings.Contains(name, "load miss"):
		return 9
	default:
		return 10
	}
}

func mustEnclaveBuf(f *microFixture, size uint64) *sdk.Buffer {
	var clk sim.Clock
	addr, err := f.e.Alloc(&clk, size)
	if err != nil {
		panic(err)
	}
	return &sdk.Buffer{Addr: addr, Data: make([]byte, size)}
}

// runFig2 regenerates Figure 2: CDFs of ecall and ocall latency, warm and
// cold.
func runFig2() *Report {
	r := &Report{ID: "fig2", Title: "Figure 2: CDFs of ecall/ocall performance (warm and cold cache)", CSV: map[string]string{}}
	tbl := &table{header: []string{"series", "p0.1", "p50", "p99.9", "paper range"}}
	var plots strings.Builder
	series := []struct {
		name  string
		cold  bool
		ocall bool
		lo    float64 // paper's reported 99.9% band
		hi    float64
	}{
		{"ecall-warm", false, false, 8600, 8680},
		{"ecall-cold", true, false, 12500, 17000},
		{"ocall-warm", false, true, 8200, 8400},
		{"ocall-cold", true, true, 12500, 17000},
	}
	for _, sr := range series {
		f := newMicroFixture(111)
		var s *sim.Sample
		setup := func() {}
		if sr.cold {
			setup = func() { f.p.Mem.EvictAll() }
		}
		runs := microRuns
		if sr.cold {
			runs = microRuns / 4
		}
		if sr.ocall {
			s = f.measureOcall("ocall_empty", runs, setup)
		} else {
			s = f.measureEcall("ecall_empty", runs, setup)
		}
		tbl.add(sr.name, f0(s.Percentile(0.1)), f0(s.Median()), f0(s.Percentile(99.9)),
			fmt.Sprintf("[%.0f, %.0f]", sr.lo, sr.hi))
		r.Values = append(r.Values,
			Value{Name: sr.name + " p0.1", Got: s.Percentile(0.1), Paper: sr.lo, Unit: "cycles"},
			Value{Name: sr.name + " p99.9", Got: s.Percentile(99.9), Paper: sr.hi, Unit: "cycles"},
		)
		var csv strings.Builder
		csv.WriteString("cycles,fraction\n")
		for _, p := range s.CDF(200) {
			fmt.Fprintf(&csv, "%.0f,%.4f\n", p.Value, p.Fraction)
		}
		r.CSV["fig2_"+sr.name+".csv"] = csv.String()
		plots.WriteString(asciiCDF(sr.name, s.CDF(60), 60, 10))
		plots.WriteByte('\n')
	}
	r.Table = tbl.String() + "\n" + plots.String()
	return r
}

// runFig4 and runFig5 regenerate the buffer-transfer sweeps.
func runBufferSweep(id, title string, ocall bool) *Report {
	r := &Report{ID: id, Title: title, CSV: map[string]string{}}
	tbl := &table{header: []string{"size (KB)", "in", "out", "in&out"}}
	var csv strings.Builder
	csv.WriteString("size_bytes,in,out,inout\n")
	for _, kb := range []uint64{1, 2, 4, 8, 16} {
		size := kb << 10
		medians := map[string]float64{}
		for _, dir := range []string{"in", "out", "inout"} {
			f := newMicroFixture(113)
			var s *sim.Sample
			if ocall {
				ebuf := mustEnclaveBuf(f, size)
				s = f.measureOcall("ocall_"+dir, 2000, nil, sdk.Buf(ebuf), sdk.Scalar(size))
			} else {
				var clk sim.Clock
				buf := f.rt.Arena.AllocBuffer(&clk, size)
				sz := size
				s = f.measureEcall("ecall_"+dir, 2000, func() { f.p.Mem.EvictRange(buf.Addr, sz) },
					sdk.Buf(buf), sdk.Scalar(size))
			}
			medians[dir] = s.Median()
			r.Values = append(r.Values, Value{
				Name: fmt.Sprintf("%s %s %dKB", id, dir, kb), Got: s.Median(), Unit: "cycles",
			})
		}
		tbl.add(fmt.Sprint(kb), f0(medians["in"]), f0(medians["out"]), f0(medians["inout"]))
		fmt.Fprintf(&csv, "%d,%.0f,%.0f,%.0f\n", size, medians["in"], medians["out"], medians["inout"])
	}
	r.Table = tbl.String()
	r.CSV[id+".csv"] = csv.String()
	return r
}

func init() {
	register(Experiment{ID: "table1", Title: "Microbenchmark medians (Table 1)", Run: runTable1})
	register(Experiment{ID: "fig2", Title: "Ecall/ocall CDFs (Figure 2)", Run: runFig2})
	register(Experiment{ID: "fig4", Title: "Ecall buffer-transfer sweep (Figure 4)", Run: func() *Report {
		return runBufferSweep("fig4", "Figure 4: ecall + buffer transfer latency by size and direction", false)
	}})
	register(Experiment{ID: "fig5", Title: "Ocall buffer-transfer sweep (Figure 5)", Run: func() *Report {
		return runBufferSweep("fig5", "Figure 5: ocall + buffer transfer latency by size and direction", true)
	}})
}

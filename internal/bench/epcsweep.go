package bench

// The epc experiment reproduces the paper's oversubscription cliff
// (Section 3.4: libquantum's 96 MB working set against the 93 MB EPC)
// at experiment scale and validates the pressure observatory against it.
// A streaming working set sweeps a 16 MB EPC at fractions of capacity
// from 0.5x to 1.5x; below capacity only compulsory faults remain after
// the first sweep, while just past capacity the clock replacement
// degenerates to FIFO under the cyclic scan and *every* touch faults —
// the cliff.  Both regimes have a closed-form model (faults and
// evictions as a function of working-set pages, capacity, and sweeps),
// and the streaming drive consumes no RNG, so the measured paging
// cycles — the cycle difference against an identical run with an
// unconstrained EPC — must match the model exactly.  The same fixtures
// cross-check the observatory's working-set estimate against the true
// page count, and an interleaved on/off pair prices the observer on the
// resident-touch hot path (same design and gate as the flight
// recorder's overhead pair).

import (
	"fmt"
	"os"
	"strings"
	"time"

	"hotcalls/internal/epc"
	"hotcalls/internal/epcstat"
	"hotcalls/internal/mem"
	"hotcalls/internal/sim"
)

// epcSVGPath is where runEPCSweep writes the fault heatmap SVG; empty
// skips the file.  Set via SetEPCSVGPath (hotbench's -epc-svg flag).
var epcSVGPath string

// SetEPCSVGPath directs the epc experiment to also render the
// oversubscribed fixture's /debug/epc fault heatmap to the given file.
func SetEPCSVGPath(path string) { epcSVGPath = path }

const (
	// epcSweepCapacity is the sweep fixture's EPC: small enough that the
	// 1.5x point stays fast, large enough that the heatmap and sampler
	// run at their production sampling rate (auto bits > 0).
	epcSweepCapacity = 16 << 20 // 4096 pages
	// epcSweepRounds full passes over the working set per fixture.
	epcSweepRounds = 3
	// epcPairRounds observer-on/off rounds; the median ratio is gated.
	epcPairRounds = 7
	// epcPairTouches per round: ~50 ms of resident-touch traffic.
	epcPairTouches = 1 << 20
)

// epcSweepFractions are the working-set sizes as fractions of EPC
// capacity — straddling the cliff at 1.0.
var epcSweepFractions = []float64{0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5}

// epcModel returns the analytic fault/eviction counts for a cyclic
// sequential sweep: P working-set pages, C capacity pages, R rounds.
// With P <= C the first round faults every page in and later rounds
// hit; with P > C the clock algorithm degenerates to FIFO under the
// scan (the hand always evicts the page the sweep will reach next), so
// every later-round touch faults.
func epcModel(P, C, R uint64) (faults, evicts uint64) {
	faults = P
	if P > C {
		faults += (R - 1) * P
		evicts = (P - C) + (R-1)*P
	}
	return faults, evicts
}

// epcSweepPoint is one fixture's measured and modeled outcome.
type epcSweepPoint struct {
	frac                     float64
	pages                    uint64
	faults, evicts           uint64
	modelFaults, modelEvicts uint64
	pagingCycles             uint64 // measured vs an unconstrained EPC
	modelCycles              uint64
	wss                      uint64
	snap                     *epcstat.Snapshot
}

// runEPCPoint drives one working-set fraction through the memory
// hierarchy twice — constrained and unconstrained EPC — and returns the
// measured-vs-model point.  The streaming sweep consumes no RNG, so the
// two runs differ only in paging work and the cycle difference is the
// paging cost exactly.
func runEPCPoint(frac float64) epcSweepPoint {
	C := uint64(epcSweepCapacity / epc.PageSize)
	P := uint64(frac * float64(C))
	wsBytes := P * epc.PageSize

	sweep := func(sys *mem.System) uint64 {
		var clk sim.Clock
		for r := 0; r < epcSweepRounds; r++ {
			sys.StreamRead(&clk, mem.EnclaveBase, wsBytes)
		}
		return clk.Now()
	}

	// Constrained run, with the observatory attached.  mem touches the
	// EPC once per 64-byte line, so one full pass is 64 touches per page;
	// the WSS window covers exactly one pass.
	sys := mem.NewWithEPC(sim.NewRNG(seedFor(401)), epcSweepCapacity)
	col := epcstat.New(epcstat.Options{WindowTouches: 64 * P})
	sys.SetEPCStat(col)
	cycles := sweep(sys)
	_, faults, evicts := sys.EPC.Stats()

	// Unconstrained baseline: same addresses, same LLC/MEE traffic, EPC
	// large enough that only the P compulsory faults remain.
	base := mem.NewWithEPC(sim.NewRNG(seedFor(401)), int(wsBytes)+16*epc.PageSize)
	baseCycles := sweep(base)

	mf, me := epcModel(P, C, epcSweepRounds)
	pt := epcSweepPoint{
		frac:         frac,
		pages:        P,
		faults:       faults,
		evicts:       evicts,
		modelFaults:  mf,
		modelEvicts:  me,
		pagingCycles: cycles - baseCycles,
		modelCycles:  (mf - P) * epc.FaultCost, // extra faults over the baseline's compulsory P
		snap:         col.Snapshot(),
	}
	pt.modelCycles += me * epc.EWBCost
	if pt.snap != nil {
		pt.wss = pt.snap.WSSPages
	}
	return pt
}

// epcTouchRate measures resident-touch throughput (touches/s) over a
// warmed working set: every touch takes the manager's hot path — lock,
// touch counter, sampling gate, map hit — plus the observer's sampled
// subset when one is attached.
func epcTouchRate(m *epc.Manager, pages uint64, touches int) float64 {
	start := time.Now()
	p := uint64(0)
	for i := 0; i < touches; i++ {
		m.TouchAs(1, p)
		p++
		if p == pages {
			p = 0
		}
	}
	return float64(touches) / time.Since(start).Seconds()
}

// runEPCSweep regenerates the oversubscription cliff and the observer
// overhead pair.
func runEPCSweep() *Report {
	r := &Report{
		ID:    "epc",
		Title: "EPC oversubscription cliff (paging vs analytic model) and observer overhead",
		CSV:   map[string]string{},
	}

	tbl := &table{header: []string{"ws", "pages", "faults (model)", "evicts (model)", "paging Mcyc (model)", "vs model", "wss≈"}}
	var csv strings.Builder
	csv.WriteString("fraction,pages,faults,model_faults,evictions,model_evictions,paging_cycles,model_cycles,wss_pages\n")
	var oversub *epcSweepPoint
	for _, frac := range epcSweepFractions {
		pt := runEPCPoint(frac)
		ratio := 1.0
		if pt.modelCycles > 0 {
			ratio = float64(pt.pagingCycles) / float64(pt.modelCycles)
			r.Values = append(r.Values, Value{
				Name: fmt.Sprintf("ws=%.2fC paging-vs-model", frac), Got: ratio, Unit: "x"})
		}
		r.Values = append(r.Values, Value{
			Name: fmt.Sprintf("ws=%.2fC faults-vs-model", frac),
			Got:  float64(pt.faults) / float64(pt.modelFaults), Unit: "x"})
		if frac == 0.9 || frac == 1.25 {
			r.Values = append(r.Values, Value{
				Name: fmt.Sprintf("ws=%.2fC wss-vs-pages", frac),
				Got:  float64(pt.wss) / float64(pt.pages), Unit: "x"})
		}
		tbl.add(
			fmt.Sprintf("%.2fC", frac),
			fmt.Sprint(pt.pages),
			fmt.Sprintf("%d (%d)", pt.faults, pt.modelFaults),
			fmt.Sprintf("%d (%d)", pt.evicts, pt.modelEvicts),
			fmt.Sprintf("%.2f (%.2f)", float64(pt.pagingCycles)/1e6, float64(pt.modelCycles)/1e6),
			f2(ratio)+"x",
			fmt.Sprint(pt.wss),
		)
		fmt.Fprintf(&csv, "%.2f,%d,%d,%d,%d,%d,%d,%d,%d\n",
			frac, pt.pages, pt.faults, pt.modelFaults, pt.evicts, pt.modelEvicts,
			pt.pagingCycles, pt.modelCycles, pt.wss)
		if pt.frac == 1.1 {
			p := pt
			oversub = &p
		}
	}
	r.CSV["epc_sweep.csv"] = csv.String()

	// The oversubscribed point's fault heatmap is the /debug/epc visual;
	// -csv captures it and -epc-svg (make epc-demo, CI) writes it alone.
	if oversub != nil && oversub.snap != nil {
		svg := epcstat.HeatSVG(oversub.snap)
		r.CSV["epc_heatmap.svg"] = svg
		if epcSVGPath != "" {
			if err := os.WriteFile(epcSVGPath, []byte(svg), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "epc: heatmap write failed: %v\n", err)
			}
		}
	}

	// Observer overhead pair: interleaved rounds over a warmed 0.9C
	// working set, same median-of-ratios design as the flight recorder's
	// pair — same-round ratios cancel host speed on shared CI hosts.
	// The pair runs at the production EPC size so the auto-sized sampler
	// lands on its production rate (1-in-32), not the tiny sweep
	// fixture's aggressive 1-in-4.
	var key [16]byte
	copy(key[:], "epc-bench-seal-k")
	capPages := uint64(epc.DefaultCapacityBytes / epc.PageSize)
	pages := capPages * 9 / 10
	mgrOff := epc.NewManager(epc.DefaultCapacityBytes, key)
	mgrOn := epc.NewManager(epc.DefaultCapacityBytes, key)
	colOn := epcstat.New(epcstat.Options{})
	colOn.Attach(mgrOn)
	// Warm both managers: fault the set in, then one resident pass so the
	// observer's per-owner state and sample set exist before timing.
	epcTouchRate(mgrOff, pages, 2*int(pages))
	epcTouchRate(mgrOn, pages, 2*int(pages))

	off := make([]float64, epcPairRounds)
	on := make([]float64, epcPairRounds)
	ratios := make([]float64, epcPairRounds)
	for i := 0; i < epcPairRounds; i++ {
		off[i] = epcTouchRate(mgrOff, pages, epcPairTouches)
		on[i] = epcTouchRate(mgrOn, pages, epcPairTouches)
		mgrOn.FlushObserver() // publish off the timed path, like rec.Digest
		ratios[i] = on[i] / off[i]
	}
	ratio := medianOf(ratios)

	tbl2 := &table{header: []string{"configuration", "Mtouches/s (median)", "ratio"}}
	tbl2.add("resident touches, observer off", f2(medianOf(off)/1e6), "1.00x")
	tbl2.add(fmt.Sprintf("resident touches, observer on (1-in-%d touch sampling)", 1<<colOn.SampleBits()),
		f2(medianOf(on)/1e6), f2(ratio)+"x")
	r.Table = tbl.String() + "\n" + tbl2.String()
	r.Values = append(r.Values, Value{Name: "observer-on vs observer-off", Got: ratio, Unit: "x"})
	return r
}

func init() {
	register(Experiment{ID: "epc", Title: "EPC oversubscription cliff and observer overhead", Run: runEPCSweep})
}

package bench

import "testing"

// TestZeroCopySweep32KBRatio pins the acceptance floor on the simulated
// sweep: at the 32 KB point, zero-copy ring crossings must beat staged
// [in,out] marshalling by at least 2x on both edges.  The sweep runs in
// simulated cycles under the default seed, so the check is exact and
// cannot flake on a loaded CI host; the wall-clock fabric pairs gate
// the same property through make bench-regress.
func TestZeroCopySweep32KBRatio(t *testing.T) {
	pts := zcSimSweep(300)
	var got *zcSimPoint
	for i := range pts {
		if pts[i].kb == 32 {
			got = &pts[i]
		}
	}
	if got == nil {
		t.Fatal("sweep has no 32KB point")
	}
	if r := got.ecallStaged / got.ecallZC; r < 2 {
		t.Errorf("32KB ecall staged/zerocopy = %.2fx (staged %.0f, zc %.0f cycles), want >= 2x",
			r, got.ecallStaged, got.ecallZC)
	}
	if r := got.ocallStaged / got.ocallZC; r < 2 {
		t.Errorf("32KB ocall staged/zerocopy = %.2fx (staged %.0f, zc %.0f cycles), want >= 2x",
			r, got.ocallStaged, got.ocallZC)
	}

	// The ratio must grow with payload size: staged cost is linear in
	// bytes moved, zero-copy cost is flat.
	first := pts[0]
	if f, l := first.ecallStaged/first.ecallZC, got.ecallStaged/got.ecallZC; l <= f {
		t.Errorf("ecall ratio not growing with size: %dKB %.2fx vs 32KB %.2fx", first.kb, f, l)
	}
}

package bench

import (
	"hotcalls/internal/core"
	"hotcalls/internal/edl"
	"hotcalls/internal/profile"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sgx"
	"hotcalls/internal/sim"
	"hotcalls/internal/telemetry"
)

// runProfile cross-validates the trace-attributed profiler against the
// analytic cost model: the same warm ecall, warm ocall, and HotCall
// workloads are run under deep tracing, the resulting call trees are
// folded into per-component breakdowns, and each component is compared
// against what the closed-form model predicts.  Agreement within ±5%
// per component is the profiler's headline acceptance criterion.
func runProfile() *Report {
	const profileEDL = `
enclave {
    trusted {
        public int ecall_empty(void);
        public int ecall_driver(void);
    };
    untrusted {
        int ocall_empty(void);
    };
};
`
	r := &Report{ID: "profile", Title: "Profiler cross-validation: trace-attributed vs analytic cycles"}

	p := sgx.NewPlatform(7)
	var setup sim.Clock
	e := p.ECreate(&setup, 64<<20, 4, sgx.Attributes{})
	for i := 0; i < 4; i++ {
		if err := e.EAdd(&setup, uint64(i)*sgx.PageSize, make([]byte, sgx.PageSize)); err != nil {
			panic(err)
		}
	}
	if err := e.EInit(&setup); err != nil {
		panic(err)
	}
	rt := sdk.New(p, e, edl.MustParse(profileEDL))
	noop := func(ctx *sdk.Ctx, args []sdk.Arg) uint64 { return 0 }
	rt.MustBindECall("ecall_empty", noop)
	rt.MustBindOCall("ocall_empty", noop)
	rt.MustBindECall("ecall_driver", func(ctx *sdk.Ctx, a []sdk.Arg) uint64 {
		if _, err := ctx.OCall("ocall_empty"); err != nil {
			panic(err)
		}
		return 0
	})

	// Warm every path before attaching the tracer so the traced runs see
	// only steady-state costs.
	for i := 0; i < 50; i++ {
		var clk sim.Clock
		rt.ECall(&clk, "ecall_empty")
		rt.ECall(&clk, "ecall_driver")
	}

	// A private deep-tracing registry: this experiment profiles itself
	// regardless of hotbench's -profile flag.
	reg := telemetry.New()
	reg.EnableDeepTracing(1 << 20)
	p.SetTelemetry(reg)
	rt.SetTelemetry(reg)
	ch := core.NewChannel(rt, p.RNG)
	ch.SetTelemetry(reg)

	const (
		sdkRuns = 400
		hotRuns = 4000
	)
	var clk sim.Clock
	for i := 0; i < sdkRuns; i++ {
		rt.ECall(&clk, "ecall_empty")
	}
	for i := 0; i < sdkRuns; i++ {
		rt.ECall(&clk, "ecall_driver")
	}
	for i := 0; i < hotRuns; i++ {
		ch.HotECall(&clk, "ecall_empty")
	}

	prof := profile.Analyze(reg.Tracer().Events())

	tbl := &table{header: []string{"call site", "component", "trace cyc/call", "analytic", "deviation"}}
	for _, tc := range []struct {
		site string
		want profile.Analytic
	}{
		{"ecall:ecall_empty", profile.AnalyticWarmECall()},
		{"ocall:ocall_empty", profile.AnalyticWarmOCall()},
		{"hotecall:ecall_empty", profile.AnalyticHotCall(ch.Model)},
	} {
		b := prof.Calls[tc.site]
		if b == nil {
			tbl.add(tc.site, "MISSING", "-", "-", "-")
			continue
		}
		for c := profile.Category(0); c < profile.NumCategories; c++ {
			want := tc.want.Component(c)
			if want == 0 {
				continue
			}
			got := b.PerCall(c)
			tbl.add(tc.site, c.String(), f1(got), f1(want), pct(got, want))
			r.Values = append(r.Values, Value{
				Name: tc.site + " " + c.String(), Got: got, Paper: want, Unit: "cycles",
			})
		}
		tbl.add(tc.site, "total", f1(b.Mean()), f1(tc.want.Total()), pct(b.Mean(), tc.want.Total()))
		r.Values = append(r.Values, Value{
			Name: tc.site + " total", Got: b.Mean(), Paper: tc.want.Total(), Unit: "cycles",
		})
	}
	r.Table = tbl.String()
	return r
}

func init() {
	register(Experiment{ID: "profile", Title: "Profiler cross-validation (trace vs analytic)", Run: runProfile})
}

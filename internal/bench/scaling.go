package bench

// The scaling experiment measures the HotCalls fabric (internal/core
// CallPool) with real goroutines and wall-clock time — not the simulated
// platform: the throughput curve over requester and responder counts,
// normalized against the pre-fabric single-slot protocol, plus the
// fabric-routed memcached and lighttpd request paths.  Every gated value
// is a same-run ratio ("x"), so the artifact survives host speed
// differences; the absolute ops/s columns in the table are informational.

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"hotcalls/internal/apps/lighttpd"
	"hotcalls/internal/apps/memcached"
	"hotcalls/internal/core"
	"hotcalls/internal/flight"
)

// scalingWindow is the async depth each requester pipelines, matching
// the fabric's default shard ring.
const scalingWindow = 64

// Call budgets per measured point: large enough that scheduler warmup
// and timer resolution vanish into the noise floor, small enough that
// the whole curve runs in about a second.
const (
	scalingSingleCalls = 100_000
	scalingPoolCalls   = 400_000
	scalingAppSync     = 30_000
	scalingAppWindowed = 120_000
)

// measureSingleSlot funnels calls from `workers` goroutines through one
// HotCall slot and returns ops/second — the pre-fabric baseline.
func measureSingleSlot(workers, calls int) float64 {
	var hc core.HotCall
	hc.Timeout = 1 << 20
	var cs flight.Callsite
	if flightRec != nil {
		hc.SetFlight(flightRec)
		cs = flightRec.Callsite("bench.hotcall")
	}
	r := core.NewResponder(&hc, []func(interface{}) uint64{
		func(d interface{}) uint64 { return d.(uint64) },
	})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		r.Run()
	}()
	defer func() { hc.Stop(); rwg.Wait() }()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := calls / workers
		if w == 0 {
			n += calls - (calls/workers)*workers
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if _, err := hc.CallAt(cs, 0, uint64(i)); err != nil {
					panic(err)
				}
			}
		}(n)
	}
	wg.Wait()
	return float64(calls) / time.Since(start).Seconds()
}

// measurePool drives windowed traffic from `requesters` shards through a
// fabric whose responder pool is pinned at `responders`, and returns
// ops/second.
func measurePool(requesters, responders, calls int) float64 {
	return measurePoolRec(requesters, responders, calls, flightRec)
}

// measurePoolRec is measurePool with an explicit flight recorder — nil
// runs bare.  The flight-overhead experiment alternates the two
// configurations in one process so the ratio survives host noise.
func measurePoolRec(requesters, responders, calls int, rec *flight.Recorder) float64 {
	p := core.NewCallPool(
		[]core.PoolFunc{func(_ int, d uint64) uint64 { return d }},
		core.PoolOptions{
			Shards:        requesters,
			SlotsPerShard: scalingWindow,
			MinResponders: responders,
			MaxResponders: responders,
			Timeout:       1 << 20,
		})
	var cs flight.Callsite
	if rec != nil {
		p.SetFlight(rec)
		cs = rec.Callsite("bench.pool")
	}
	p.Start()
	defer p.Stop()

	reqs := make([]*core.Requester, requesters)
	for i := range reqs {
		reqs[i] = p.Requester()
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w, r := range reqs {
		n := calls / requesters
		if w == 0 {
			n += calls - (calls/requesters)*requesters
		}
		wg.Add(1)
		go func(r *core.Requester, n int) {
			defer wg.Done()
			pending := make([]*core.PoolPending, 0, scalingWindow)
			for i := 0; i < n; {
				for len(pending) < scalingWindow && i < n {
					pd, err := r.SubmitAt(cs, 0, uint64(i))
					if err != nil {
						panic(err)
					}
					pending = append(pending, pd)
					i++
				}
				for _, pd := range pending {
					if _, err := pd.Wait(); err != nil {
						panic(err)
					}
				}
				pending = pending[:0]
			}
		}(r, n)
	}
	wg.Wait()
	return float64(calls) / time.Since(start).Seconds()
}

// measureMemcachedFabric returns the fabric-routed memcached request
// rate, synchronous and windowed, in requests/second.
func measureMemcachedFabric() (syncRate, windowedRate float64) {
	s := memcached.NewPoolServer(1, core.PoolOptions{Timeout: 1 << 20})
	if flightRec != nil {
		s.SetFlight(flightRec)
	}
	s.Start()
	defer s.Stop()
	c := s.Conn(0)
	val := make([]byte, memcached.ValueSize)
	for i := range val {
		val[i] = byte(i)
	}
	req := func(i int) *memcached.Request {
		if i%2 == 0 {
			return &memcached.Request{Op: memcached.OpSet, Key: "scaling-key", Value: val}
		}
		return &memcached.Request{Op: memcached.OpGet, Key: "scaling-key"}
	}

	start := time.Now()
	for i := 0; i < scalingAppSync; i++ {
		if _, err := c.Do(req(i)); err != nil {
			panic(err)
		}
	}
	syncRate = float64(scalingAppSync) / time.Since(start).Seconds()

	start = time.Now()
	pending := make([]memcached.PendingResponse, 0, 16)
	for i := 0; i < scalingAppWindowed; {
		for len(pending) < cap(pending) && i < scalingAppWindowed {
			pr, err := c.Submit(req(i))
			if err != nil {
				panic(err)
			}
			pending = append(pending, pr)
			i++
		}
		for _, pr := range pending {
			if _, err := pr.Wait(); err != nil {
				panic(err)
			}
		}
		pending = pending[:0]
	}
	windowedRate = float64(scalingAppWindowed) / time.Since(start).Seconds()
	return syncRate, windowedRate
}

// measureLighttpdFabric returns the fabric-routed lighttpd request rate,
// synchronous and windowed, in requests/second.
func measureLighttpdFabric() (syncRate, windowedRate float64) {
	s := lighttpd.NewPoolServer(1, core.PoolOptions{Timeout: 1 << 20})
	if flightRec != nil {
		s.SetFlight(flightRec)
	}
	s.Start()
	defer s.Stop()
	c := s.Conn(0)
	const raw = "GET /index.html HTTP/1.0\r\nHost: bench\r\n\r\n"

	start := time.Now()
	for i := 0; i < scalingAppSync; i++ {
		if _, err := c.Do(raw); err != nil {
			panic(err)
		}
	}
	syncRate = float64(scalingAppSync) / time.Since(start).Seconds()

	start = time.Now()
	pending := make([]lighttpd.PendingResponse, 0, 16)
	for i := 0; i < scalingAppWindowed; {
		for len(pending) < cap(pending) && i < scalingAppWindowed {
			pr, err := c.Submit(raw)
			if err != nil {
				panic(err)
			}
			pending = append(pending, pr)
			i++
		}
		for _, pr := range pending {
			if _, err := pr.Wait(); err != nil {
				panic(err)
			}
		}
		pending = pending[:0]
	}
	windowedRate = float64(scalingAppWindowed) / time.Since(start).Seconds()
	return syncRate, windowedRate
}

// scalingRequesterCounts picks the requester axis: 1, 2, 4 and
// GOMAXPROCS, deduplicated and sorted.  Counts above GOMAXPROCS are
// still meaningful — shards are goroutines, and oversubscription is
// exactly how the fabric will run under real traffic.
func scalingRequesterCounts() []int {
	maxProcs := runtime.GOMAXPROCS(0)
	seen := map[int]bool{}
	var out []int
	for _, n := range []int{1, 2, 4, maxProcs} {
		if n >= 1 && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// runScaling regenerates the fabric scaling curve.
func runScaling() *Report {
	r := &Report{ID: "scaling", Title: "HotCalls fabric throughput scaling (real goroutines, wall clock)"}
	maxProcs := runtime.GOMAXPROCS(0)
	responders := []int{1}
	if maxProcs > 1 {
		responders = append(responders, maxProcs)
	}

	base := measureSingleSlot(maxProcs, scalingSingleCalls)

	tbl := &table{header: []string{"configuration", "Mops/s", "vs single slot"}}
	tbl.add(fmt.Sprintf("single HotCall slot, %d requesters (baseline)", maxProcs),
		f2(base/1e6), "1.00x")

	for _, nr := range scalingRequesterCounts() {
		for _, resp := range responders {
			rate := measurePool(nr, resp, scalingPoolCalls)
			speedup := rate / base
			name := fmt.Sprintf("pool %drx%dw vs single slot", nr, resp)
			tbl.add(fmt.Sprintf("fabric, %d requesters x %d responders, window %d", nr, resp, scalingWindow),
				f2(rate/1e6), f2(speedup)+"x")
			r.Values = append(r.Values, Value{Name: name, Got: speedup, Unit: "x"})
		}
	}

	mcSync, mcWin := measureMemcachedFabric()
	ltSync, ltWin := measureLighttpdFabric()
	tbl.add("memcached fabric route, synchronous", f2(mcSync/1e6), "-")
	tbl.add("memcached fabric route, windowed", f2(mcWin/1e6), f2(mcWin/mcSync)+"x sync")
	tbl.add("lighttpd fabric route, synchronous", f2(ltSync/1e6), "-")
	tbl.add("lighttpd fabric route, windowed", f2(ltWin/1e6), f2(ltWin/ltSync)+"x sync")
	r.Values = append(r.Values,
		Value{Name: "memcached windowed vs sync", Got: mcWin / mcSync, Unit: "x"},
		Value{Name: "lighttpd windowed vs sync", Got: ltWin / ltSync, Unit: "x"},
	)

	r.Table = tbl.String()
	return r
}

func init() {
	register(Experiment{ID: "scaling", Title: "Fabric throughput scaling", Run: runScaling})
}

package bench

import (
	"fmt"

	"hotcalls/internal/apps/lighttpd"
	"hotcalls/internal/apps/memcached"
	"hotcalls/internal/apps/openvpn"
	"hotcalls/internal/apps/porting"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sim"
)

// runAblationCalls quantifies the Section 3.5 "Lessons Learned" — the best
// practices the paper derives from the microbenchmarks — plus the
// Section 3.5 "Further optimizations" (word-wide memset, AVX memcpy)
// implemented behind the runtime's OptimizedMemops switch.
func runAblationCalls() *Report {
	r := &Report{ID: "ablation-calls", Title: "Section 3.5 lessons learned: transfer-method ablations (2 KB buffers)"}
	tbl := &table{header: []string{"strategy", "baseline", "optimized", "saving", "paper saving"}}

	measureEcallVariant := func(fn string, optimized bool) float64 {
		f := newMicroFixture(401)
		f.rt.OptimizedMemops = optimized
		var clk sim.Clock
		buf := f.rt.Arena.AllocBuffer(&clk, 2048)
		s := f.measureEcall(fn, 2000, func() { f.p.Mem.EvictRange(buf.Addr, 2048) },
			sdk.Buf(buf), sdk.Scalar(2048))
		return s.Median()
	}
	measureOcallVariant := func(fn string, optimized, nrz bool) float64 {
		f := newMicroFixture(403)
		f.rt.OptimizedMemops = optimized
		f.rt.NoRedundantZeroing = nrz
		ebuf := mustEnclaveBuf(f, 2048)
		return f.measureOcall(fn, 2000, nil, sdk.Buf(ebuf), sdk.Scalar(2048)).Median()
	}
	add := func(name string, base, opt, paperSaving float64) {
		saving := base - opt
		r.Values = append(r.Values, Value{Name: name, Got: saving, Paper: paperSaving, Unit: "cycles"})
		paperStr := "-"
		if paperSaving != 0 {
			paperStr = f0(paperSaving)
		}
		tbl.add(name, f0(base), f0(opt), f0(saving), paperStr)
	}

	// 1. "Selecting the right transfer method": in&out instead of out
	// saves the redundant zeroing (paper: 885 cycles for ecalls, 1,617
	// for ocalls at 2 KB).
	ecallOut := measureEcallVariant("ecall_out", false)
	ecallInOut := measureEcallVariant("ecall_inout", false)
	add("ecall: in&out instead of out", ecallOut, ecallInOut, 885)
	ocallOut := measureOcallVariant("ocall_out", false, false)
	ocallInOut := measureOcallVariant("ocall_inout", false, false)
	add("ocall: in&out instead of out", ocallOut, ocallInOut, 1617)

	// 2. "Opting for user_check": zero-copy output saves ~3,000 cycles
	// at 2 KB (paper: 11,712 vs 8,640).
	f := newMicroFixture(405)
	var clk sim.Clock
	buf := f.rt.Arena.AllocBuffer(&clk, 2048)
	userCheck := f.measureEcall("ecall_empty", 2000, func() { f.p.Mem.EvictRange(buf.Addr, 2048) })
	add("ecall: user_check instead of out", ecallOut, userCheck.Median(), 3072)

	// 3. "Ocalls vs Ecalls": delivering data from the enclave through an
	// ocall [in] beats returning it via an ecall [out] (paper: 9,252 vs
	// 11,712).
	ocallIn := measureOcallVariant("ocall_in", false, false)
	add("deliver via ocall-in, not ecall-out", ecallOut, ocallIn, 2460)

	// 4. "Further optimizations": word-wide memset + AVX memcpy.
	ecallOutFast := measureEcallVariant("ecall_out", true)
	add("ecall out: optimized memset/memcpy", ecallOut, ecallOutFast, 0)
	ocallOutFast := measureOcallVariant("ocall_out", true, false)
	add("ocall out: optimized memset/memcpy", ocallOut, ocallOutFast, 0)

	// 5. No-Redundant-Zeroing on the ocall [out] path (Section 6).
	ocallOutNRZ := measureOcallVariant("ocall_out", false, true)
	add("ocall out: No-Redundant-Zeroing", ocallOut, ocallOutNRZ, 2048)

	r.Table = tbl.String()
	return r
}

// runAblationCores regenerates the Section 4.4 analysis: dedicating a
// logical core to the HotCalls responder is worthwhile only when it more
// than doubles throughput — otherwise the core would serve better as a
// second worker thread (whose best case is 2x).
func runAblationCores() *Report {
	r := &Report{ID: "ablation-cores", Title: "Section 4.4: HotCalls responder core vs. a second worker thread"}
	tbl := &table{header: []string{"app", "sgx x1", "sgx x2 workers (bound)", "hotcalls (1+responder)", "verdict"}}

	type point struct {
		name     string
		sgx, hot float64
	}
	points := []point{}
	{
		m := memcached.Run(porting.SGX, appSimSeconds/2)
		h := memcached.Run(porting.HotCallsNRZ, appSimSeconds/2)
		points = append(points, point{"memcached", m.Throughput, h.Throughput})
	}
	{
		m := openvpn.RunIperf(porting.SGX, appSimSeconds/2)
		h := openvpn.RunIperf(porting.HotCallsNRZ, appSimSeconds/2)
		points = append(points, point{"openvpn", m.BandwidthMbs, h.BandwidthMbs})
	}
	{
		m := lighttpd.Run(porting.SGX, appSimSeconds/2)
		h := lighttpd.Run(porting.HotCallsNRZ, appSimSeconds/2)
		points = append(points, point{"lighttpd", m.Throughput, h.Throughput})
	}
	for _, p := range points {
		twoWorkers := p.sgx * 2 // the second worker's absolute best case
		verdict := "prefer second worker"
		if p.hot > twoWorkers {
			verdict = "prefer HotCalls responder"
		}
		boost := p.hot / p.sgx
		r.Values = append(r.Values, Value{Name: p.name + " boost", Got: boost, Paper: 0, Unit: "x"})
		tbl.add(p.name, f0(p.sgx), f0(twoWorkers), fmt.Sprintf("%.0f (%.1fx)", p.hot, boost), verdict)
	}
	r.Table = tbl.String()
	return r
}

func init() {
	register(Experiment{ID: "ablation-calls", Title: "Transfer-method ablations (Section 3.5)", Run: runAblationCalls})
	register(Experiment{ID: "ablation-cores", Title: "Responder-core analysis (Section 4.4)", Run: runAblationCores})
}

package bench

// The whatif experiment validates the causal what-if profiler and the
// shadow call-router end to end, and gates the cost of arming the
// observatory on the live fabric.
//
// Causal validation: for every cost-model component, the profiler's
// predicted throughput gain from a 10% virtual speedup is checked
// against the gain actually obtained by regenerating the workload with
// that component's cost scaled down 10% — the Coz experiment run both
// ways.  The workload generator forks one RNG stream per component, so
// the scaled run replays identical costs everywhere else and the
// comparison is exact up to the profiler's own model error.
//
// Routing validation: the estimator's per-callsite policy ordering is
// brute-force checked by discrete-event replay over a rate x service
// grid (the same OrderingAgreement sweep the unit tests gate at 95%),
// and a deliberately mis-routed callsite must be flagged with the
// right recommendation.
//
// Overhead: the estimator-armed vs estimator-off pair reuses the
// flight experiment's interleaved same-process design — the observatory
// only reads the digested stats table between rounds, so the gated
// median ratio is ~1.00x; it sinking would mean shadow scoring leaked
// onto the call path.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"hotcalls/internal/flight"
	"hotcalls/internal/profile"
	"hotcalls/internal/sim"
	"hotcalls/internal/whatif"
)

// whatIfJSONPath is where the experiment also writes the full what-if
// report (causal profile + routing snapshot) as JSON; empty skips the
// artifact.  Set via SetWhatIfJSON (hotbench's -whatif-json flag).
var whatIfJSONPath string

// SetWhatIfJSON directs the whatif experiment to also write its report
// artifact (the /debug/whatif JSON body) to the given path.
func SetWhatIfJSON(path string) { whatIfJSONPath = path }

const (
	// whatIfCalls per generated workload: enough that per-component
	// sample means sit well inside the 5% validation band.
	whatIfCalls = 20000
	// whatIfDelta is the virtual-speedup fraction under test.
	whatIfDelta = 0.10
	// whatIfPairRounds armed/off rounds; the median ratio is gated.
	whatIfPairRounds = 7
	// whatIfPairCalls per round of fabric traffic.
	whatIfPairCalls = 200_000
)

// whatIfInterval builds one shadow-router interval: arrivals of the
// given per-second rate over 1s at the given service time.
func whatIfInterval(id int, site string, arrivals uint64, serviceNS uint64) flight.CallsiteStats {
	return flight.CallsiteStats{ID: id, Name: site, Arrivals: arrivals, ServiceP50NS: serviceNS}
}

// runWhatIf regenerates the causal-validation table and the routing
// checks, and measures the armed/off overhead pair.
func runWhatIf() *Report {
	r := &Report{ID: "whatif", Title: "What-if observatory (causal profiler validation + shadow-routing regret)"}

	// Causal validation: predicted vs applied, per component.
	model := whatif.DefaultModel()
	base := model.Generate(sim.NewRNG(42), whatIfCalls)
	prof := whatif.AnalyzeCausal(base, whatIfDelta)
	tbl := &table{header: []string{"component", "share", "predicted", "applied", "error"}}
	worstErr := 0.0
	for _, c := range prof.Components {
		var cat profile.Category
		for k := profile.Category(0); k < profile.NumCategories; k++ {
			if k.String() == c.Component {
				cat = k
			}
		}
		scaled := model.Scaled(cat, 1-whatIfDelta).Generate(sim.NewRNG(42), whatIfCalls)
		applied := 100 * (float64(base.TotalCycles())/float64(scaled.TotalCycles()) - 1)
		relErr := math.Abs(c.PredictedDeltaPct-applied) / applied
		if relErr > worstErr {
			worstErr = relErr
		}
		tbl.add(c.Component, fmt.Sprintf("%.3f", c.Share),
			fmt.Sprintf("+%.3f%%", c.PredictedDeltaPct),
			fmt.Sprintf("+%.3f%%", applied),
			fmt.Sprintf("%.2f%%", relErr*100))
	}
	// Gated as an agreement fraction (1.0 = profiler exactly matches the
	// applied speedup; the tests assert every component within 5%).
	r.Values = append(r.Values, Value{Name: "causal-agreement", Got: 1 - worstErr, Unit: "frac"})

	// Routing validation 1: estimator vs brute-force replay ordering.
	agree := whatif.OrderingAgreement(whatif.CostParams{}, []uint64{0, 7, 42, 123}, 2)
	r.Values = append(r.Values, Value{Name: "ordering-agreement", Got: agree.Fraction(), Unit: "frac"})

	// Routing validation 2: a mis-routed callsite — hot-regime traffic
	// statically declared sync — must be flagged with the right
	// recommendation and positive regret.
	obs := whatif.NewObservatory(whatif.CostParams{})
	obs.SetCausal(prof)
	obs.Router().Declare("demo.misroute", whatif.PolicySync)
	obs.Observe([]flight.CallsiteStats{whatIfInterval(0, "demo.misroute", 0, 500)}, 0)
	verdict := obs.Observe([]flight.CallsiteStats{whatIfInterval(0, "demo.misroute", 1_000_000, 500)}, 1e9)
	detected := 0.0
	if w := verdict.Worst(); w != nil && w.Best == whatif.PolicyHot && w.RegretCycles > 0 {
		detected = 1
	}
	r.Values = append(r.Values, Value{Name: "misroute-detected", Got: detected, Unit: "calls"})

	// Overhead pair: same fabric drive loop, recorder attached in both
	// configurations; the armed rounds additionally run the shadow
	// router over each round's digested stats.
	rec := flight.New(flight.Options{})
	armedObs := whatif.NewObservatory(whatif.CostParams{})
	armedObs.Router().DeclareDefault(whatif.PolicyPooled)
	off := make([]float64, whatIfPairRounds)
	armed := make([]float64, whatIfPairRounds)
	ratios := make([]float64, whatIfPairRounds)
	for i := 0; i < whatIfPairRounds; i++ {
		off[i] = measurePoolRec(1, 1, whatIfPairCalls, rec)
		rec.Digest()
		armed[i] = measurePoolRec(1, 1, whatIfPairCalls, rec)
		armedObs.Observe(rec.Stats(), 1e9)
		ratios[i] = armed[i] / off[i]
	}
	ratio := medianOf(ratios)
	r.Values = append(r.Values, Value{Name: "estimator-armed vs estimator-off", Got: ratio, Unit: "x"})

	var sb strings.Builder
	fmt.Fprintf(&sb, "causal validation (delta=%.0f%%, %d calls, seed 42):\n%s\n",
		whatIfDelta*100, whatIfCalls, tbl.String())
	fmt.Fprintf(&sb, "shadow routing: ordering agreement %.1f%% over %d callsite-intervals (replay, seeds 0/7/42/123)\n",
		agree.Fraction()*100, agree.Total)
	if w := verdict.Worst(); w != nil {
		fmt.Fprintf(&sb, "misroute demo: %q %s -> recommend %s, regret %.3gM cycles/interval\n",
			w.Site, w.Current, w.Best, w.RegretCycles/1e6)
	}
	fmt.Fprintf(&sb, "overhead: estimator-armed vs estimator-off median ratio %.2fx (%d interleaved rounds)\n",
		ratio, whatIfPairRounds)
	r.Table = sb.String()

	if whatIfJSONPath != "" {
		obs.Observe([]flight.CallsiteStats{whatIfInterval(0, "demo.misroute", 2_000_000, 500)}, 1e9)
		data, err := json.MarshalIndent(obs.Report(), "", "  ")
		if err == nil {
			err = os.WriteFile(whatIfJSONPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(&sb, "artifact error: %v\n", err)
			r.Table = sb.String()
		}
	}
	return r
}

func init() {
	register(Experiment{ID: "whatif", Title: "What-if observatory", Run: runWhatIf})
}

package bench

// The flight experiment measures the flight recorder's hot-path cost on
// the fabric: the same windowed CallPool drive loop as the scaling
// experiment, run bare and with a live recorder at the default sampling
// rate, interleaved round by round in one process.  Separate-process
// benchmark pairs drift ±15% run to run on shared 1-vCPU CI hosts —
// more than an order of magnitude over the recorder's true cost — so
// the gated artifact is the median of same-round throughput ratios,
// which cancels host speed and most scheduler drift.

import (
	"fmt"
	"sort"

	"hotcalls/internal/flight"
)

const (
	// flightPairRounds bare/recorded rounds; the median ratio is gated.
	flightPairRounds = 7
	// flightPairCalls per round: ~40ms of fabric traffic per point.
	flightPairCalls = 200_000
)

// runFlightCost regenerates the recorder-on/off overhead pair.
func runFlightCost() *Report {
	r := &Report{ID: "flight", Title: "Flight recorder hot-path overhead (recorder-on/off interleaved pairs)"}
	rec := flight.New(flight.Options{})

	bare := make([]float64, flightPairRounds)
	recd := make([]float64, flightPairRounds)
	ratios := make([]float64, flightPairRounds)
	for i := 0; i < flightPairRounds; i++ {
		bare[i] = measurePoolRec(1, 1, flightPairCalls, nil)
		recd[i] = measurePoolRec(1, 1, flightPairCalls, rec)
		// Digest off the measured path so ring reuse between rounds
		// doesn't depend on reader progress.
		rec.Digest()
		ratios[i] = recd[i] / bare[i]
	}
	ratio := medianOf(ratios)

	// Tail-sampler pair: same interleaved-median design, comparing the
	// recorder with the tail sampler armed against the recorder with it
	// off.  On a healthy fabric no call crosses the outlier cutoff, so
	// the armed hot path adds only the Complete cutoff check on sampled
	// calls (a plain load + compare) — the gated median ratio is ~1.00x.
	tailRec := flight.New(flight.Options{})
	tailRec.ArmTailSampler(flight.TailOptions{})
	tailOff := make([]float64, flightPairRounds)
	tailOn := make([]float64, flightPairRounds)
	tailRatios := make([]float64, flightPairRounds)
	for i := 0; i < flightPairRounds; i++ {
		tailOff[i] = measurePoolRec(1, 1, flightPairCalls, rec)
		rec.Digest()
		tailOn[i] = measurePoolRec(1, 1, flightPairCalls, tailRec)
		tailRec.Digest()
		tailRatios[i] = tailOn[i] / tailOff[i]
	}
	tailRatio := medianOf(tailRatios)

	tbl := &table{header: []string{"configuration", "Mops/s (median)", "ratio"}}
	tbl.add("fabric 1rx1w, recorder off", f2(medianOf(bare)/1e6), "1.00x")
	tbl.add(fmt.Sprintf("fabric 1rx1w, recorder on (1-in-%d sampling)", flight.DefaultSampleEvery),
		f2(medianOf(recd)/1e6), f2(ratio)+"x")
	tbl.add("fabric 1rx1w, recorder on, tail sampler off", f2(medianOf(tailOff)/1e6), "1.00x")
	tbl.add("fabric 1rx1w, recorder on, tail sampler armed", f2(medianOf(tailOn)/1e6), f2(tailRatio)+"x")
	r.Table = tbl.String()
	r.Values = append(r.Values, Value{Name: "recorder-on vs recorder-off", Got: ratio, Unit: "x"})
	r.Values = append(r.Values, Value{Name: "tail-armed vs tail-off", Got: tailRatio, Unit: "x"})
	return r
}

// medianOf returns the median of a copy of vs.
func medianOf(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func init() {
	register(Experiment{ID: "flight", Title: "Flight recorder overhead", Run: runFlightCost})
}

package bench

import (
	"fmt"
	"strings"

	"hotcalls/internal/mem"
	"hotcalls/internal/sim"
	"hotcalls/internal/spec"
)

// memMedian measures one memory microbenchmark under the Section 3.1
// protocol: evict the target, run the access pattern, median over many
// runs.
func memMedian(runs int, setup func(s *mem.System), op func(s *mem.System, clk *sim.Clock)) float64 {
	rng := sim.NewRNG(seedFor(211))
	s := mem.New(rng)
	return sim.MeasureN(rng, runs, func() uint64 {
		setup(s)
		var clk sim.Clock
		op(s, &clk)
		return clk.Now()
	}).Sample.Median()
}

const (
	plainBuf   = mem.PlainBase + (1 << 28)
	enclaveBuf = mem.EnclaveBase
)

func readMedian(base, size uint64) float64 {
	return memMedian(2000,
		func(s *mem.System) { s.EvictRange(base, size) },
		func(s *mem.System, clk *sim.Clock) {
			s.StreamRead(clk, base, size)
			s.MFence(clk)
		})
}

func writeMedian(base, size uint64) float64 {
	return memMedian(1500,
		func(s *mem.System) { s.EvictRange(base, size) },
		func(s *mem.System, clk *sim.Clock) {
			s.StreamWrite(clk, base, size)
			s.FlushRange(clk, base, size)
			s.MFence(clk)
		})
}

func missMedian(base uint64, write bool) float64 {
	return memMedian(4000,
		func(s *mem.System) { s.EvictRange(base, 64) },
		func(s *mem.System, clk *sim.Clock) {
			if write {
				s.Store(clk, base)
			} else {
				s.Load(clk, base)
			}
		})
}

// memoryRows produces Table 1 rows 7-10.
func memoryRows() []Value {
	return []Value{
		{Name: "Reading 2KB encrypted", Got: readMedian(enclaveBuf, 2048), Paper: 1124, Unit: "cycles"},
		{Name: "Reading 2KB plaintext", Got: readMedian(plainBuf, 2048), Paper: 727, Unit: "cycles"},
		{Name: "Writing 2KB encrypted", Got: writeMedian(enclaveBuf, 2048), Paper: 6875, Unit: "cycles"},
		{Name: "Writing 2KB plaintext", Got: writeMedian(plainBuf, 2048), Paper: 6458, Unit: "cycles"},
		{Name: "Cache load miss encrypted", Got: missMedian(enclaveBuf, false), Paper: 400, Unit: "cycles"},
		{Name: "Cache load miss plaintext", Got: missMedian(plainBuf, false), Paper: 308, Unit: "cycles"},
		{Name: "Cache store miss encrypted", Got: missMedian(enclaveBuf, true), Paper: 575, Unit: "cycles"},
		{Name: "Cache store miss plaintext", Got: missMedian(plainBuf, true), Paper: 481, Unit: "cycles"},
	}
}

// paperReadOverheads are Figure 6's reported encrypted-read overheads for
// 2, 4, 8, 16, 32 KB buffers.
var paperReadOverheads = map[uint64]float64{2: 54.5, 4: 68, 8: 71, 16: 94, 32: 102}

// runFig6 regenerates Figure 6: consecutive reads, encrypted vs plaintext.
func runFig6() *Report {
	r := &Report{ID: "fig6", Title: "Figure 6: consecutive memory reads, encrypted vs plaintext", CSV: map[string]string{}}
	tbl := &table{header: []string{"size (KB)", "plaintext", "encrypted", "overhead", "paper"}}
	var csv strings.Builder
	csv.WriteString("size_bytes,plain_cycles,enc_cycles,overhead_pct\n")
	for _, kb := range []uint64{1, 2, 4, 8, 16, 32} {
		size := kb << 10
		plain := readMedian(plainBuf, size)
		enc := readMedian(enclaveBuf, size)
		ovh := (enc - plain) / plain * 100
		paperStr := "-"
		if p, ok := paperReadOverheads[kb]; ok {
			paperStr = fmt.Sprintf("%.1f%%", p)
			r.Values = append(r.Values, Value{Name: fmt.Sprintf("read overhead %dKB", kb), Got: ovh, Paper: p, Unit: "%"})
		}
		tbl.add(fmt.Sprint(kb), f0(plain), f0(enc), fmt.Sprintf("%.1f%%", ovh), paperStr)
		fmt.Fprintf(&csv, "%d,%.0f,%.0f,%.1f\n", size, plain, enc, ovh)
	}
	r.Table = tbl.String()
	r.CSV["fig6.csv"] = csv.String()
	return r
}

// runFig7 regenerates Figure 7: consecutive writes (~6% overhead).
func runFig7() *Report {
	r := &Report{ID: "fig7", Title: "Figure 7: consecutive memory writes, encrypted vs plaintext", CSV: map[string]string{}}
	tbl := &table{header: []string{"size (KB)", "plaintext", "encrypted", "overhead", "paper"}}
	var csv strings.Builder
	csv.WriteString("size_bytes,plain_cycles,enc_cycles,overhead_pct\n")
	for _, kb := range []uint64{1, 2, 4, 8, 16, 32} {
		size := kb << 10
		plain := writeMedian(plainBuf, size)
		enc := writeMedian(enclaveBuf, size)
		ovh := (enc - plain) / plain * 100
		r.Values = append(r.Values, Value{Name: fmt.Sprintf("write overhead %dKB", kb), Got: ovh, Paper: 6, Unit: "%"})
		tbl.add(fmt.Sprint(kb), f0(plain), f0(enc), fmt.Sprintf("%.1f%%", ovh), "~6%")
		fmt.Fprintf(&csv, "%d,%.0f,%.0f,%.1f\n", size, plain, enc, ovh)
	}
	r.Table = tbl.String()
	r.CSV["fig7.csv"] = csv.String()
	return r
}

// runFig8 regenerates Figure 8: the memory-encryption overhead bars —
// load/store microbenchmarks plus the SPEC-like kernels.
func runFig8() *Report {
	r := &Report{ID: "fig8", Title: "Figure 8: memory encryption overhead (microbenchmarks and SPEC kernels)"}
	tbl := &table{header: []string{"benchmark", "slowdown", "paper"}}
	add := func(name string, got, paper float64, paperStr string) {
		r.Values = append(r.Values, Value{Name: name, Got: got, Paper: paper, Unit: "x"})
		tbl.add(name, f2(got), paperStr)
	}

	lp, le := readMedian(plainBuf, 2048), readMedian(enclaveBuf, 2048)
	add("L 2KB (consecutive loads)", le/lp, 1124.0/727, "1.55x")
	sp, se := writeMedian(plainBuf, 2048), writeMedian(enclaveBuf, 2048)
	add("S 2KB (consecutive stores)", se/sp, 6875.0/6458, "1.06x")
	mlp, mle := missMedian(plainBuf, false), missMedian(enclaveBuf, false)
	add("L miss (cache load miss)", mle/mlp, 400.0/308, "1.30x")
	msp, mse := missMedian(plainBuf, true), missMedian(enclaveBuf, true)
	add("S miss (cache store miss)", mse/msp, 575.0/481, "1.20x")

	for _, k := range spec.Kernels {
		res := k.Run(seedFor(301), 3)
		paper, paperStr := 0.0, "-"
		switch k.Name {
		case "mcf":
			paper, paperStr = 1.55, "1.55x"
		case "libquantum":
			paper, paperStr = 5.2, "5.2x"
		}
		add(k.Name, res.Slowdown, paper, paperStr)
	}
	r.Table = tbl.String()
	return r
}

func init() {
	register(Experiment{ID: "fig6", Title: "Consecutive reads (Figure 6)", Run: runFig6})
	register(Experiment{ID: "fig7", Title: "Consecutive writes (Figure 7)", Run: runFig7})
	register(Experiment{ID: "fig8", Title: "Encryption overhead bars (Figure 8)", Run: runFig8})
}

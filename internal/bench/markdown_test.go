package bench

import (
	"strings"
	"testing"

	"hotcalls/internal/sim"
)

func TestAsciiCDFShape(t *testing.T) {
	points := []sim.CDFPoint{}
	for i := 1; i <= 40; i++ {
		points = append(points, sim.CDFPoint{Value: float64(i * 100), Fraction: float64(i) / 40})
	}
	plot := asciiCDF("test", points, 40, 8)
	if !strings.Contains(plot, "test") || !strings.Contains(plot, "*") {
		t.Fatalf("plot missing content:\n%s", plot)
	}
	lines := strings.Split(strings.TrimRight(plot, "\n"), "\n")
	if len(lines) != 1+8+2 { // title + rows + axis + labels
		t.Fatalf("plot has %d lines:\n%s", len(lines), plot)
	}
	// A monotone CDF puts stars on or above the diagonal: top row ends
	// with the max, bottom row starts near the min.
	if !strings.Contains(lines[1], "*") {
		t.Error("top fraction row empty")
	}
}

func TestAsciiCDFDegenerate(t *testing.T) {
	if asciiCDF("x", nil, 40, 8) != "" {
		t.Error("empty points should render nothing")
	}
	one := []sim.CDFPoint{{Value: 5, Fraction: 1}}
	if plot := asciiCDF("x", one, 40, 8); !strings.Contains(plot, "*") {
		t.Error("single-point CDF should still plot")
	}
	if asciiCDF("x", one, 2, 8) != "" {
		t.Error("too-narrow plot should render nothing")
	}
}

func TestMarkdownStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	md := Markdown()
	for _, want := range []string{
		"# EXPERIMENTS", "## table1", "## fig10", "## ablation-cores",
		"Known divergences", "Worst deviation",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

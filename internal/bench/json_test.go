package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestBuildJSONReport feeds synthetic reports shaped like table1/fig3 and
// checks the summary extraction and speedup arithmetic.
func TestBuildJSONReport(t *testing.T) {
	reports := []*Report{
		{ID: "table1", Title: "Table 1", Values: []Value{
			{Name: "Ecall (warm cache)", Got: 8640, Paper: 8640, Unit: "cycles"},
			{Name: "Ocall (warm cache)", Got: 8314, Paper: 8314, Unit: "cycles"},
		}},
		{ID: "fig3", Title: "Figure 3", Values: []Value{
			{Name: "hotcall median", Got: 576, Paper: 620, Unit: "cycles"},
		}},
	}
	out := BuildJSONReport(reports)

	if out.Schema != "hotcalls-bench/v1" {
		t.Fatalf("schema = %q", out.Schema)
	}
	if out.Summary.EcallWarmMedianCycles != 8640 || out.Summary.OcallWarmMedianCycles != 8314 {
		t.Fatalf("summary medians = %+v", out.Summary)
	}
	if out.Summary.HotCallMedianCycles != 576 {
		t.Fatalf("hotcall median = %v", out.Summary.HotCallMedianCycles)
	}
	if got, want := out.Summary.HotCallVsEcallSpeedup, 8640.0/576; got != want {
		t.Fatalf("ecall speedup = %v, want %v", got, want)
	}
	if got, want := out.Summary.HotCallVsOcallSpeedup, 8314.0/576; got != want {
		t.Fatalf("ocall speedup = %v, want %v", got, want)
	}
	if len(out.Experiments) != 2 || len(out.Experiments[0].Values) != 2 {
		t.Fatalf("experiments = %+v", out.Experiments)
	}
	if dev := out.Experiments[1].Values[0].DeviationPct; dev == 0 {
		t.Fatal("deviation not computed for a value with a paper number")
	}
}

// TestWriteJSONReport checks the artifact is valid, indented JSON that
// round-trips through the standard decoder.
func TestWriteJSONReport(t *testing.T) {
	var sb strings.Builder
	err := WriteJSONReport(&sb, []*Report{
		{ID: "table1", Title: "Table 1", Values: []Value{
			{Name: "Ecall (warm cache)", Got: 8640, Paper: 8640, Unit: "cycles"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var decoded JSONReport
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if decoded.GoVersion == "" || decoded.GeneratedAt == "" {
		t.Fatalf("missing run metadata: %+v", decoded)
	}
	if !strings.Contains(sb.String(), "\n  ") {
		t.Fatal("output is not indented")
	}
}

package bench

import "hotcalls/internal/telemetry"

// tel is the harness-wide observability registry.  Nil (all handles
// no-op) unless cmd/hotbench attaches one via SetTelemetry for the
// -metrics / -trace flags.
var tel *telemetry.Registry

// SetTelemetry attaches an observability registry to every fixture the
// experiments build from here on.  The standard boundary metrics are
// pre-registered so an exposition dump always carries the full set, even
// for experiments that never exercise some of the paths.
func SetTelemetry(r *telemetry.Registry) {
	tel = r
	telemetry.RegisterStandard(r)
}

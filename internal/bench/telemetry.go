package bench

import (
	"hotcalls/internal/flight"
	"hotcalls/internal/telemetry"
)

// tel is the harness-wide observability registry.  Nil (all handles
// no-op) unless cmd/hotbench attaches one via SetTelemetry for the
// -metrics / -trace flags.
var tel *telemetry.Registry

// SetTelemetry attaches an observability registry to every fixture the
// experiments build from here on.  The standard boundary metrics are
// pre-registered so an exposition dump always carries the full set, even
// for experiments that never exercise some of the paths.
func SetTelemetry(r *telemetry.Registry) {
	tel = r
	telemetry.RegisterStandard(r)
}

// flightRec is the harness-wide flight recorder.  Nil (recording
// disabled) unless cmd/hotbench attaches one via SetFlight for the
// -flight flag.
var flightRec *flight.Recorder

// SetFlight attaches a flight recorder to every fabric the experiments
// build from here on.  A recorder follows one fabric at a time, so
// successive fixtures re-bind it; exact per-callsite counters and
// already-digested statistics accumulate across fixtures, while
// timeline records still undigested when a fixture rebinds are
// dropped (hotbench's -flight loop digests continuously to keep that
// loss small).
func SetFlight(f *flight.Recorder) { flightRec = f }

package bench

// The incident experiment is the black-box-postmortem demo: wedge the
// fabric's lone responder mid-handler, drive a fallback storm through a
// labelled callsite, let the monitor's storm rule fire, and print the
// captured bundle's critical-path table — the artifact a responder
// on-call would pull from /debug/incidents after the fact.  With
// hotbench -incident-dir (make incident-demo) the bundle is also
// spooled to disk, which is what CI uploads when a gate fails.

import (
	"fmt"
	"strings"

	"hotcalls/internal/core"
	"hotcalls/internal/flight"
	"hotcalls/internal/incident"
	"hotcalls/internal/monitor"
	"hotcalls/internal/telemetry"
)

// incidentDir is where runIncidentDemo spools its bundle; empty keeps
// the capture in memory only.  Set via SetIncidentDir (hotbench's
// -incident-dir flag).
var incidentDir string

// SetIncidentDir directs the incident experiment (and any future
// incident-capturing fixture) to also spool captured bundles as
// <dir>/<bundle-id>.json.
func SetIncidentDir(dir string) { incidentDir = dir }

const (
	// incidentStormCalls all time out against the wedged window.
	incidentStormCalls = 100
	// incidentWindow slots, all parked on the stalled handler.
	incidentWindow = 4
)

// runIncidentDemo injects the stall, fires the rule, and renders the
// resulting bundle.
func runIncidentDemo() *Report {
	r := &Report{ID: "incident", Title: "Incident capture (stalled responder -> fallback storm -> postmortem bundle)"}

	gate := make(chan struct{})
	p := core.NewCallPool([]core.PoolFunc{
		func(_ int, d uint64) uint64 { <-gate; return d },
	}, core.PoolOptions{Shards: 1, SlotsPerShard: incidentWindow, Timeout: 1024, MaxResponders: 1})

	reg := telemetry.New()
	p.SetTelemetry(reg)
	rec := flight.New(flight.Options{})
	rec.ArmTailSampler(flight.TailOptions{})
	p.SetFlight(rec)
	cs := rec.Callsite("demo.storm")

	p.Start()
	req := p.Requester()

	// Wedge the fabric: the responder claims the first call and blocks;
	// the remaining submissions fill the window.
	var parked []*core.PoolPending
	for i := 0; i < incidentWindow; i++ {
		pd, err := req.Submit(0, uint64(i))
		if err != nil {
			break
		}
		parked = append(parked, pd)
	}

	m := monitor.New(reg, monitor.Options{
		Rules:         monitor.DefaultRules(monitor.DefaultThresholds()),
		Flight:        rec,
		EventDebounce: 2,
	})
	cap := incident.New(m, incident.Options{Dir: incidentDir, Registry: reg})
	cap.Attach()
	m.Tick() // baseline

	// The storm: every call exhausts its submission attempts against
	// the full window and degrades to the fallback path.
	for i := 0; i < incidentStormCalls; i++ {
		_, _ = req.CallOrFallbackAt(cs, 0, uint64(i), func() (uint64, error) { return 0, nil })
	}
	m.Tick() // the fallback-storm rule fires; the capturer freezes the bundle

	close(gate)
	for _, pd := range parked {
		_, _ = pd.Wait()
	}
	p.Stop()

	bundles := cap.Bundles()
	var sb strings.Builder
	if len(bundles) == 0 {
		sb.WriteString("no bundle captured (storm rule did not fire)\n")
	} else {
		b := bundles[0]
		sb.WriteString(b.RenderText())
		if incidentDir != "" {
			if _, _, diskErr := cap.Stats(); diskErr != nil {
				fmt.Fprintf(&sb, "\nspool error: %v\n", diskErr)
			} else {
				fmt.Fprintf(&sb, "\nspooled: %s/%s.json\n", incidentDir, b.ID)
			}
		}
	}
	r.Table = sb.String()
	// Gated count: exactly one bundle per storm episode.  A zero here
	// means the detection-to-capture path broke end to end.
	r.Values = append(r.Values, Value{Name: "bundles-captured", Got: float64(len(bundles)), Unit: "calls"})
	return r
}

func init() {
	register(Experiment{ID: "incident", Title: "Incident capture demo", Run: runIncidentDemo})
}

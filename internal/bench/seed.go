package bench

import "hotcalls/internal/sim"

// benchSeed is the user-selectable base seed every experiment derives its
// per-fixture stream seeds from.  The default base (sim.DefaultSeed)
// makes seedFor return each salt unchanged, so default runs reproduce the
// committed baseline artifacts byte for byte; any other base decorrelates
// every stream deterministically (see sim.SeedMix).
var benchSeed = sim.DefaultSeed

// SetSeed selects the base seed for subsequent experiment runs (the
// hotbench/hotreport -seed flag).  Not safe to call concurrently with a
// running experiment.
func SetSeed(s uint64) { benchSeed = s }

// Seed returns the current base seed.
func Seed() uint64 { return benchSeed }

// seedFor derives the seed of one fixture or RNG stream from the base
// seed and the stream's fixed salt.
func seedFor(salt uint64) uint64 { return sim.SeedMix(benchSeed, salt) }

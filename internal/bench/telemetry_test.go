package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"hotcalls/internal/telemetry"
)

// TestHarnessTelemetry exercises the -metrics / -trace wiring end to end
// on a small measurement run: fixtures built after SetTelemetry must feed
// the registry, and both exporters must emit well-formed output carrying
// the standard boundary metrics.
func TestHarnessTelemetry(t *testing.T) {
	reg := telemetry.New()
	reg.EnableTracing(1 << 12)
	SetTelemetry(reg)
	defer SetTelemetry(nil)

	f := newMicroFixture(901)
	f.measureEcall("ecall_empty", 50, nil)
	f.measureOcall("ocall_empty", 50, nil)

	snap := reg.Snapshot()
	if got := snap.Counters[telemetry.MetricEcalls]; got == 0 {
		t.Error("measurement run recorded no ecalls")
	}
	if got := snap.Counters[telemetry.MetricEEnter]; got == 0 {
		t.Error("measurement run recorded no EENTERs")
	}
	if h := snap.Histograms[telemetry.MetricEcallCycles]; h.Count == 0 || h.Sum == 0 {
		t.Errorf("ecall cycle histogram empty: %+v", h)
	}

	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		telemetry.MetricEcalls, telemetry.MetricOcalls,
		telemetry.MetricHotECalls, telemetry.MetricHotCallRequests,
		telemetry.MetricEcallCycles + "_bucket", telemetry.MetricOcallCycles + "_count",
	} {
		if !strings.Contains(prom.String(), name) {
			t.Errorf("Prometheus dump missing %q", name)
		}
	}

	var trace strings.Builder
	if err := reg.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(trace.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Error("trace carries no complete spans")
	}

	// Guard against accidental cross-experiment bleed: fixtures built
	// after detaching must leave the registry untouched.
	before := reg.Snapshot().Counters[telemetry.MetricEcalls]
	SetTelemetry(nil)
	f2 := newMicroFixture(903)
	f2.measureEcall("ecall_empty", 10, nil)
	if after := reg.Snapshot().Counters[telemetry.MetricEcalls]; after != before {
		t.Errorf("detached harness still fed the registry: %d -> %d", before, after)
	}
}

// TestHarnessTelemetryNilSafe: experiments must run identically with no
// registry attached.
func TestHarnessTelemetryNilSafe(t *testing.T) {
	SetTelemetry(nil)
	f := newMicroFixture(905)
	s := f.measureEcall("ecall_empty", 20, nil)
	if s.Median() == 0 {
		t.Error("measurement broken with telemetry detached")
	}
}

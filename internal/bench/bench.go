// Package bench is the experiment harness: one registered experiment per
// table and figure of the paper's evaluation, each regenerating the same
// rows or series the paper reports and recording measured-vs-paper values.
// cmd/hotbench is the command-line front end; EXPERIMENTS.md is generated
// from these reports.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Value is one measured quantity compared against the paper.
type Value struct {
	Name  string
	Got   float64
	Paper float64 // 0 when the paper gives no number for this point
	Unit  string
}

// Deviation returns the relative deviation from the paper's value, or 0
// when the paper reports none.
func (v Value) Deviation() float64 {
	if v.Paper == 0 {
		return 0
	}
	return (v.Got - v.Paper) / v.Paper
}

// Report is one experiment's outcome: a rendered table plus the structured
// values.
type Report struct {
	ID     string
	Title  string
	Values []Value
	Table  string            // rendered human-readable output
	CSV    map[string]string // optional raw series, filename -> content
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func() *Report
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns the experiments in paper order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

func order(id string) int {
	for i, k := range []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table2", "fig10", "fig11"} {
		if k == id {
			return i
		}
	}
	return 100
}

// Get returns the experiment with the given ID, or nil.
func Get(id string) *Experiment {
	for i := range registry {
		if registry[i].ID == id {
			return &registry[i]
		}
	}
	return nil
}

// table renders rows with aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func pct(got, paper float64) string {
	if paper == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", (got-paper)/paper*100)
}

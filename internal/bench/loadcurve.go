package bench

import (
	"fmt"
	"strings"

	"hotcalls/internal/apps/memcached"
	"hotcalls/internal/apps/porting"
	"hotcalls/internal/sim"
)

// runLoadCurve extends Figures 10/11 into full latency-throughput curves:
// the paper reports single operating points (200 outstanding memtier
// requests); sweeping the offered concurrency shows the whole saturation
// behaviour — a single-threaded server saturates at a fixed service rate,
// so latency grows linearly with outstanding requests (Little's law) while
// throughput stays pinned, and the HotCalls gap is the horizontal distance
// between the curves.
func runLoadCurve() *Report {
	r := &Report{ID: "loadcurve", Title: "memcached latency-throughput curves by interface (concurrency sweep)", CSV: map[string]string{}}
	tbl := &table{header: []string{"outstanding", "mode", "req/s", "avg latency (ms)", "p99 (ms)"}}
	var csv strings.Builder
	csv.WriteString("outstanding,mode,throughput,avg_ms,p99_ms\n")

	for _, outstanding := range []int{25, 50, 100, 200, 400} {
		for _, mode := range []porting.Mode{porting.SGX, porting.HotCallsNRZ} {
			s := memcached.NewServer(mode)
			w := memcached.NewWorkload(s, seedFor(313))
			m := porting.RunClosedLoop(outstanding, sim.Cycles(0.02), func(clk *sim.Clock) {
				w.InjectNext()
				s.ServeOne(clk)
				if _, err := w.DrainResponse(); err != nil {
					panic(err)
				}
			})
			tbl.add(fmt.Sprint(outstanding), mode.String(),
				f0(m.Throughput), fmt.Sprintf("%.3f", m.AvgLatency*1e3), fmt.Sprintf("%.3f", m.P99Latency*1e3))
			fmt.Fprintf(&csv, "%d,%s,%.0f,%.4f,%.4f\n", outstanding, mode, m.Throughput, m.AvgLatency*1e3, m.P99Latency*1e3)
			r.Values = append(r.Values, Value{
				Name: fmt.Sprintf("%s@%d throughput", mode, outstanding),
				Got:  m.Throughput, Unit: "req/s",
			}, Value{
				Name: fmt.Sprintf("%s@%d latency", mode, outstanding),
				Got:  m.AvgLatency * 1e3, Unit: "ms",
			})
		}
	}
	r.Table = tbl.String()
	r.CSV["loadcurve.csv"] = csv.String()
	return r
}

func init() {
	register(Experiment{ID: "loadcurve", Title: "Latency-throughput curves (extension)", Run: runLoadCurve})
}

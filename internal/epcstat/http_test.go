package epcstat

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"hotcalls/internal/flight"
)

// TestHandlerContentTypes checks the /debug/epc format negotiation: every
// supported rendering declares its Content-Type, unknown formats are
// rejected before any work with a 400.
func TestHandlerContentTypes(t *testing.T) {
	m, c := newFixture(8, Options{SampleBits: -1})
	for p := uint64(0); p < 12; p++ {
		m.TouchAs(1, p)
	}
	h := Handler(c)
	cases := []struct {
		url      string
		status   int
		cType    string
		contains string
	}{
		{"/debug/epc", 200, flight.ContentTypeJSON, `"schema": "epcstat/v1"`},
		{"/debug/epc?format=json", 200, flight.ContentTypeJSON, `"interference"`},
		{"/debug/epc?format=text", 200, flight.ContentTypeText, "pages resident"},
		{"/debug/epc?format=svg", 200, ContentTypeSVG, "<svg"},
		{"/debug/epc?format=csv", 400, "", "unknown format"},
		{"/debug/epc?format=SVG", 400, "", "unknown format"},
	}
	for _, tc := range cases {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", tc.url, nil))
		if rr.Code != tc.status {
			t.Fatalf("%s: status %d, want %d", tc.url, rr.Code, tc.status)
		}
		if tc.cType != "" && rr.Header().Get("Content-Type") != tc.cType {
			t.Fatalf("%s: Content-Type %q, want %q", tc.url, rr.Header().Get("Content-Type"), tc.cType)
		}
		if !strings.Contains(rr.Body.String(), tc.contains) {
			t.Fatalf("%s: body missing %q:\n%s", tc.url, tc.contains, rr.Body.String())
		}
	}
}

// TestHandlerEmptyCollector checks a collector with no traffic still
// serves valid JSON carrying the schema marker, not a null or an error.
func TestHandlerEmptyCollector(t *testing.T) {
	_, c := newFixture(8, Options{})
	rr := httptest.NewRecorder()
	Handler(c).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/epc", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d, want 200", rr.Code)
	}
	var s Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON from empty collector: %v", err)
	}
	if s.Schema != SnapshotSchema {
		t.Fatalf("schema = %q, want %q", s.Schema, SnapshotSchema)
	}
}

// TestHeatSVGDeterministic checks the heatmap rendering is byte-stable
// for a fixed snapshot (the CI artifact depends on it) and nil-safe.
func TestHeatSVGDeterministic(t *testing.T) {
	m, c := newFixture(8, Options{SampleBits: -1})
	c.SetLabel(1, "web")
	for p := uint64(0); p < 20; p++ {
		m.TouchAs(1, p)
	}
	s := c.Snapshot()
	a, b := HeatSVG(s), HeatSVG(s)
	if a != b {
		t.Fatal("HeatSVG is not deterministic for the same snapshot")
	}
	if !strings.Contains(a, "web(#1)") {
		t.Fatal("heatmap missing the labelled owner series")
	}
	if got := HeatSVG(nil); !strings.Contains(got, "<svg") {
		t.Fatalf("nil-snapshot heatmap should still be an SVG shell, got %q", got)
	}
}

// Package epcstat is the EPC pressure observatory: it consumes the
// paging events of an epc.Manager (owner-tagged faults, evictions with
// culprit→victim attribution, hash-sampled touches) and turns them into
// per-owner residency/fault/interference accounting, an online
// working-set-size estimate, and a fault-rate heatmap over address-space
// buckets — the memory-side analogue of the call-side flight recorder.
//
// The paper's libquantum cliff (Figure 8, Section 3.4) is the motivating
// failure mode: a working set that grows just past the 93 MB EPC turns
// every access into a ~9,000-cycle fault and throughput collapses.  The
// three global counters the manager always exported can tell you the
// storm is happening; this package tells you it is *coming* (summed WSS
// approaching capacity), *who* is causing it, and *who* is paying for it.
//
// Concurrency follows the flight-recorder publish pattern: the live
// accounting state is mutated only inside the Observe* callbacks, which
// the manager invokes under its own paging lock, so the hot path needs no
// additional synchronisation.  Flush — also called under the manager's
// lock — builds an immutable Snapshot and publishes it under the
// collector's mutex; Snapshot() readers take only the collector's mutex.
// Lock order is always manager → collector, never the reverse.
package epcstat

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hotcalls/internal/epc"
)

// SnapshotSchema identifies the JSON shape served at /debug/epc and
// embedded in incident bundles.
const SnapshotSchema = "epcstat/v1"

// Options configures a Collector.  The zero value is usable: every field
// has a documented default applied at New/Attach time.
type Options struct {
	// MaxSamples bounds the total number of pages tracked for WSS
	// estimation across all owners (default 4096).  When the sample set
	// is full, inserting a new page first prunes entries outside the
	// window and then evicts the stalest entry.
	MaxSamples int

	// WindowTouches is the working-set window θ in touch-clock ticks: a
	// sampled page counts toward the WSS if it was touched within the
	// last WindowTouches touches (Denning's W(t, θ)).  Default
	// 4 × capacityPages, a full sweep of an EPC-sized working set with
	// page-granularity touches.  Callers driving line-granularity touch
	// streams (internal/mem touches per 64-byte line) should scale
	// accordingly.
	WindowTouches uint64

	// HeatBuckets is the number of address-space buckets in the fault
	// heatmap (default 64).
	HeatBuckets int

	// PagesPerBucket sets the heatmap bucket width.  Default: the
	// heatmap spans twice the EPC capacity (2×capacityPages /
	// HeatBuckets pages per bucket); pages beyond the span wrap around
	// (bucket = page/PagesPerBucket mod HeatBuckets), so a heatmap is a
	// density profile, not an unbounded address map.
	PagesPerBucket uint64

	// SampleBits selects the touch-sampling rate: each page is sampled
	// with probability 2^-SampleBits by a per-page hash, so the sampled
	// page set is stable across sweeps and per-page recency is exact for
	// sampled pages.  0 (default) auto-sizes: the smallest b with
	// (4×capacityPages)>>b ≤ MaxSamples, so the expected steady-state
	// sample population fits the budget.  Negative forces exact
	// sampling (every touch observed).
	SampleBits int
}

// ownerState is the live per-owner accounting, mutated only under the
// manager's paging lock.
type ownerState struct {
	resident       int64
	faults         uint64
	evictions      uint64 // this owner's pages evicted (victim side)
	evictionsCause uint64 // evictions this owner's faults forced (culprit side)
	writebacks     uint64 // dirty subset of evictions (victim side)
	sampledTouches uint64
	samples        map[uint64]uint64 // page → touch-clock time of last sampled touch
	heat           []uint64          // faults per address bucket
}

// Collector implements epc.Observer and accumulates the observatory
// state.  Create with New, wire with Attach, read with Snapshot.
type Collector struct {
	opts          Options
	mgr           *epc.Manager
	capacityPages int
	sampleBits    uint
	window        uint64
	pagesPerBkt   uint64

	// Live state: guarded by the attached manager's paging lock (all
	// writes happen inside Observe*/Flush, which the manager calls with
	// its lock held).  lastOwner/lastState memoise the last owner lookup:
	// paging traffic is bursty per owner, so the common callback skips
	// the owners map entirely.
	lastOwner    epc.OwnerID
	lastState    *ownerState
	owners       map[epc.OwnerID]*ownerState
	interference map[uint64]uint64 // culprit<<32|victim → evictions
	heat         []uint64
	faults       uint64
	evictions    uint64
	writebacks   uint64
	sampled      uint64
	sampleCount  int

	// Published state: guarded by mu.
	mu        sync.Mutex
	published *Snapshot
	labels    map[epc.OwnerID]string

	// meeStats, when wired (mem.System.SetEPCStat), stamps snapshots
	// with the MEE node-cache counters so one /debug/epc fetch shows the
	// whole encrypted-memory picture.  Set before concurrent use.
	meeStats func() (accesses, misses uint64)
}

// New returns a collector with defaults applied.  Attach it to a manager
// before the first touch so residency accounting starts from empty.
func New(opts Options) *Collector {
	if opts.MaxSamples <= 0 {
		opts.MaxSamples = 4096
	}
	if opts.HeatBuckets <= 0 {
		opts.HeatBuckets = 64
	}
	return &Collector{
		opts:         opts,
		owners:       make(map[epc.OwnerID]*ownerState),
		interference: make(map[uint64]uint64),
		heat:         make([]uint64, opts.HeatBuckets),
		labels:       make(map[epc.OwnerID]string),
	}
}

// Attach resolves capacity-dependent defaults and registers the collector
// as the manager's observer.  Call once, before concurrent use.
func (c *Collector) Attach(m *epc.Manager) {
	c.mgr = m
	c.capacityPages = m.CapacityPages()
	c.window = c.opts.WindowTouches
	if c.window == 0 {
		c.window = 4 * uint64(c.capacityPages)
	}
	c.pagesPerBkt = c.opts.PagesPerBucket
	if c.pagesPerBkt == 0 {
		c.pagesPerBkt = uint64(2*c.capacityPages) / uint64(c.opts.HeatBuckets)
		if c.pagesPerBkt == 0 {
			c.pagesPerBkt = 1
		}
	}
	bits := c.opts.SampleBits
	switch {
	case bits < 0:
		bits = 0
	case bits == 0:
		// Auto: steady-state sampled population ≈ workingSet>>bits; size
		// for a working set of 4× capacity so even oversubscribed
		// workloads fit the sample budget.
		population := 4 * c.capacityPages
		for (population >> uint(bits)) > c.opts.MaxSamples {
			bits++
		}
	}
	c.sampleBits = uint(bits)
	m.SetObserver(c, c.sampleBits)
}

// SampleBits returns the resolved touch-sampling exponent (rate is
// 1-in-2^bits).
func (c *Collector) SampleBits() uint { return c.sampleBits }

// SetMEEStats wires a source for the MEE node-cache counters reported in
// snapshots (typically mem.System's cost model).  Call before concurrent
// use.
func (c *Collector) SetMEEStats(f func() (accesses, misses uint64)) { c.meeStats = f }

// SetLabel attaches a human-readable label (enclave name, tenant, conn)
// to an owner ID for snapshots and text rendering.
func (c *Collector) SetLabel(owner epc.OwnerID, label string) {
	c.mu.Lock()
	c.labels[owner] = label
	c.mu.Unlock()
}

func (c *Collector) ownerLocked(id epc.OwnerID) *ownerState {
	if c.lastState != nil && c.lastOwner == id {
		return c.lastState
	}
	os := c.owners[id]
	if os == nil {
		os = &ownerState{
			samples: make(map[uint64]uint64),
			heat:    make([]uint64, c.opts.HeatBuckets),
		}
		c.owners[id] = os
	}
	c.lastOwner, c.lastState = id, os
	return os
}

func (c *Collector) bucket(page uint64) int {
	return int((page / c.pagesPerBkt) % uint64(len(c.heat)))
}

// ObserveTouch records a hash-sampled touch (epc.Observer).  Runs under
// the manager's lock.
func (c *Collector) ObserveTouch(owner epc.OwnerID, page uint64, now uint64) {
	os := c.ownerLocked(owner)
	os.sampledTouches++
	c.sampled++
	before := len(os.samples)
	os.samples[page] = now
	if len(os.samples) != before {
		c.sampleCount++
		if c.sampleCount > c.opts.MaxSamples {
			c.evictSampleLocked(now)
		}
	}
}

// evictSampleLocked frees room in the sample set: stale entries (outside
// the WSS window, which can no longer contribute to any estimate) are
// pruned; if none are stale the single oldest entry goes.  O(samples),
// but runs only when the set is full and inserting — with auto
// SampleBits the steady-state population fits the budget and this is a
// rare overflow valve, not a hot path.
func (c *Collector) evictSampleLocked(now uint64) {
	var oldestOwner *ownerState
	var oldestPage, oldestAt uint64
	first := true
	pruned := 0
	for _, os := range c.owners {
		for page, at := range os.samples {
			if now-at > c.window {
				delete(os.samples, page)
				pruned++
				continue
			}
			if first || at < oldestAt {
				first, oldestOwner, oldestPage, oldestAt = false, os, page, at
			}
		}
	}
	if pruned == 0 && oldestOwner != nil {
		delete(oldestOwner.samples, oldestPage)
		pruned = 1
	}
	c.sampleCount -= pruned
}

// ObserveFault records a fault (epc.Observer; exact, every fault).  Runs
// under the manager's lock and must not allocate in steady state.
func (c *Collector) ObserveFault(owner epc.OwnerID, page uint64) {
	os := c.ownerLocked(owner)
	os.faults++
	os.resident++
	c.faults++
	b := c.bucket(page)
	c.heat[b]++
	os.heat[b]++
}

// ObserveEvict records an eviction with attribution (epc.Observer;
// exact).  Runs under the manager's lock and must not allocate in steady
// state.
func (c *Collector) ObserveEvict(culprit, victim epc.OwnerID, page uint64, dirty bool) {
	vs := c.ownerLocked(victim)
	vs.evictions++
	vs.resident--
	c.ownerLocked(culprit).evictionsCause++
	c.evictions++
	if dirty {
		vs.writebacks++
		c.writebacks++
	}
	c.interference[uint64(culprit)<<32|uint64(victim)]++
}

// Flush builds and publishes a snapshot (epc.Observer).  The manager
// calls it under its paging lock from FlushObserver; the collector mutex
// is taken strictly after (manager → collector lock order).
func (c *Collector) Flush(now uint64) {
	s := c.buildSnapshotLocked(now)
	c.mu.Lock()
	c.published = s
	c.mu.Unlock()
}

func (c *Collector) buildSnapshotLocked(now uint64) *Snapshot {
	s := &Snapshot{
		Schema:         SnapshotSchema,
		Now:            now,
		CapacityPages:  c.capacityPages,
		Faults:         c.faults,
		Evictions:      c.evictions,
		Writebacks:     c.writebacks,
		SampledTouches: c.sampled,
		SampleBits:     c.sampleBits,
		WindowTouches:  c.window,
		PagesPerBucket: c.pagesPerBkt,
		Heat:           append([]uint64(nil), c.heat...),
	}
	for id, os := range c.owners {
		// Prune samples that have aged out of the window: they can no
		// longer contribute to any WSS estimate and pruning here keeps
		// the sample maps from pinning a long-dead working set.
		var wss uint64
		for page, at := range os.samples {
			if now-at > c.window {
				delete(os.samples, page)
				c.sampleCount--
				continue
			}
			wss++
		}
		wss <<= c.sampleBits
		s.ResidentPages += os.resident
		s.WSSPages += wss
		s.Owners = append(s.Owners, OwnerStats{
			Owner:           id,
			ResidentPages:   os.resident,
			Faults:          os.faults,
			Evictions:       os.evictions,
			EvictionsCaused: os.evictionsCause,
			Writebacks:      os.writebacks,
			SampledTouches:  os.sampledTouches,
			WSSPages:        wss,
			Heat:            append([]uint64(nil), os.heat...),
		})
	}
	sort.Slice(s.Owners, func(i, j int) bool { return s.Owners[i].Owner < s.Owners[j].Owner })
	for key, n := range c.interference {
		s.Interference = append(s.Interference, Cell{
			Culprit:   epc.OwnerID(key >> 32),
			Victim:    epc.OwnerID(key & 0xFFFFFFFF),
			Evictions: n,
		})
	}
	sort.Slice(s.Interference, func(i, j int) bool {
		a, b := s.Interference[i], s.Interference[j]
		if a.Evictions != b.Evictions {
			return a.Evictions > b.Evictions
		}
		if a.Culprit != b.Culprit {
			return a.Culprit < b.Culprit
		}
		return a.Victim < b.Victim
	})
	return s
}

// Snapshot flushes the live state through the attached manager and
// returns a copy of the published snapshot with owner labels applied.
// Safe for concurrent use; returns nil on a nil collector or before the
// first flush opportunity.
func (c *Collector) Snapshot() *Snapshot {
	if c == nil {
		return nil
	}
	if c.mgr != nil {
		c.mgr.FlushObserver()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.published == nil {
		return nil
	}
	s := *c.published
	s.Owners = append([]OwnerStats(nil), c.published.Owners...)
	for i := range s.Owners {
		s.Owners[i].Label = c.labels[s.Owners[i].Owner]
	}
	s.Interference = append([]Cell(nil), c.published.Interference...)
	if c.meeStats != nil {
		s.MEENodeAccesses, s.MEENodeMisses = c.meeStats()
	}
	return &s
}

// OwnerStats is one owner's slice of a Snapshot.
type OwnerStats struct {
	Owner           epc.OwnerID `json:"owner"`
	Label           string      `json:"label,omitempty"`
	ResidentPages   int64       `json:"resident_pages"`
	Faults          uint64      `json:"faults"`
	Evictions       uint64      `json:"evictions"` // this owner's pages evicted
	EvictionsCaused uint64      `json:"evictions_caused"`
	Writebacks      uint64      `json:"writebacks"`
	SampledTouches  uint64      `json:"sampled_touches"`
	WSSPages        uint64      `json:"wss_pages"`
	Heat            []uint64    `json:"heat,omitempty"`
}

// Cell is one culprit→victim edge of the interference matrix: how many
// of victim's pages culprit's faults evicted.  Cells sum exactly to the
// snapshot's total Evictions (self-eviction cells included).
type Cell struct {
	Culprit   epc.OwnerID `json:"culprit"`
	Victim    epc.OwnerID `json:"victim"`
	Evictions uint64      `json:"evictions"`
}

// Snapshot is a consistent point-in-time view of the observatory,
// published under the manager's paging lock so counts never tear.
type Snapshot struct {
	Schema         string `json:"schema"`
	Now            uint64 `json:"now"` // manager touch clock
	CapacityPages  int    `json:"capacity_pages"`
	ResidentPages  int64  `json:"resident_pages"`
	Faults         uint64 `json:"faults"`
	Evictions      uint64 `json:"evictions"`
	Writebacks     uint64 `json:"writebacks"`
	SampledTouches uint64 `json:"sampled_touches"`
	SampleBits     uint   `json:"sample_bits"`
	WindowTouches  uint64 `json:"window_touches"`
	WSSPages       uint64 `json:"wss_pages"` // summed per-owner estimates
	PagesPerBucket uint64 `json:"pages_per_bucket"`
	// MEE node-cache counters, stamped when SetMEEStats wired a source:
	// integrity-tree pressure rises with paging (every ELDU/EWB walks
	// the tree), so they belong in the same pressure picture.
	MEENodeAccesses uint64       `json:"mee_node_accesses,omitempty"`
	MEENodeMisses   uint64       `json:"mee_node_misses,omitempty"`
	Heat            []uint64     `json:"heat"`
	Owners          []OwnerStats `json:"owners,omitempty"`
	Interference    []Cell       `json:"interference,omitempty"`
}

// OwnerDelta is one owner's share of an interval Delta.
type OwnerDelta struct {
	Owner           epc.OwnerID `json:"owner"`
	Label           string      `json:"label,omitempty"`
	ResidentPages   int64       `json:"resident_pages"` // at interval end
	Faults          uint64      `json:"faults"`
	Evictions       uint64      `json:"evictions"`
	EvictionsCaused uint64      `json:"evictions_caused"`
	WSSPages        uint64      `json:"wss_pages"` // at interval end
}

// Delta is the difference between two snapshots of the same collector —
// the interval view the monitor rules evaluate.
type Delta struct {
	Touches    uint64 `json:"touches"`
	Faults     uint64 `json:"faults"`
	Evictions  uint64 `json:"evictions"`
	Writebacks uint64 `json:"writebacks"`
	// ThrashScore is the composite pressure score: simulated paging
	// cycles (faults × FaultCost + evictions × EWBCost) per touch over
	// the interval.  ~0 when resident; ≈ FaultCost+EWBCost (~9,000)
	// when every touch faults and evicts — the libquantum cliff.
	ThrashScore  float64      `json:"thrash_score"`
	Owners       []OwnerDelta `json:"owners,omitempty"`
	Interference []Cell       `json:"interference,omitempty"`
}

// Sub returns the interval delta s − prev.  A nil prev yields the
// cumulative view.  Counters are clamped at zero so a collector restart
// never produces wraparound garbage.
func (s *Snapshot) Sub(prev *Snapshot) Delta {
	if s == nil {
		return Delta{}
	}
	var d Delta
	prevOwner := map[epc.OwnerID]OwnerStats{}
	prevCell := map[uint64]uint64{}
	var prevNow, prevFaults, prevEvicts, prevWB uint64
	if prev != nil {
		prevNow, prevFaults, prevEvicts, prevWB = prev.Now, prev.Faults, prev.Evictions, prev.Writebacks
		for _, o := range prev.Owners {
			prevOwner[o.Owner] = o
		}
		for _, cell := range prev.Interference {
			prevCell[uint64(cell.Culprit)<<32|uint64(cell.Victim)] = cell.Evictions
		}
	}
	d.Touches = clampSub(s.Now, prevNow)
	d.Faults = clampSub(s.Faults, prevFaults)
	d.Evictions = clampSub(s.Evictions, prevEvicts)
	d.Writebacks = clampSub(s.Writebacks, prevWB)
	if d.Touches > 0 {
		d.ThrashScore = (float64(d.Faults)*epc.FaultCost + float64(d.Evictions)*epc.EWBCost) / float64(d.Touches)
	}
	for _, o := range s.Owners {
		p := prevOwner[o.Owner]
		od := OwnerDelta{
			Owner:           o.Owner,
			Label:           o.Label,
			ResidentPages:   o.ResidentPages,
			Faults:          clampSub(o.Faults, p.Faults),
			Evictions:       clampSub(o.Evictions, p.Evictions),
			EvictionsCaused: clampSub(o.EvictionsCaused, p.EvictionsCaused),
			WSSPages:        o.WSSPages,
		}
		if od.Faults != 0 || od.Evictions != 0 || od.EvictionsCaused != 0 || od.ResidentPages != 0 || od.WSSPages != 0 {
			d.Owners = append(d.Owners, od)
		}
	}
	for _, cell := range s.Interference {
		n := clampSub(cell.Evictions, prevCell[uint64(cell.Culprit)<<32|uint64(cell.Victim)])
		if n != 0 {
			d.Interference = append(d.Interference, Cell{Culprit: cell.Culprit, Victim: cell.Victim, Evictions: n})
		}
	}
	return d
}

func clampSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

func ownerName(id epc.OwnerID, label string) string {
	if label != "" {
		return fmt.Sprintf("%s(#%d)", label, id)
	}
	return fmt.Sprintf("#%d", id)
}

// RenderText renders the snapshot as an aligned text table — the /debug/
// epc?format=text and incident-bundle view.
func (s *Snapshot) RenderText() string {
	var b strings.Builder
	if s == nil {
		b.WriteString("epc: no snapshot yet\n")
		return b.String()
	}
	occ := 0.0
	if s.CapacityPages > 0 {
		occ = float64(s.ResidentPages) / float64(s.CapacityPages)
	}
	fmt.Fprintf(&b, "epc: %d/%d pages resident (%.0f%%)  wss≈%d pages  faults=%d evictions=%d writebacks=%d\n",
		s.ResidentPages, s.CapacityPages, occ*100, s.WSSPages, s.Faults, s.Evictions, s.Writebacks)
	fmt.Fprintf(&b, "sampling: 1-in-%d touches by page hash (%d sampled), wss window %d touches\n",
		uint64(1)<<s.SampleBits, s.SampledTouches, s.WindowTouches)
	if len(s.Owners) > 0 {
		fmt.Fprintf(&b, "\n%-16s %9s %9s %9s %9s %9s %9s\n",
			"owner", "resident", "wss", "faults", "evicted", "caused", "writeback")
		for _, o := range s.Owners {
			fmt.Fprintf(&b, "%-16s %9d %9d %9d %9d %9d %9d\n",
				ownerName(o.Owner, o.Label), o.ResidentPages, o.WSSPages,
				o.Faults, o.Evictions, o.EvictionsCaused, o.Writebacks)
		}
	}
	if len(s.Interference) > 0 {
		b.WriteString("\ninterference (culprit→victim evictions):\n")
		for _, cell := range s.Interference {
			fmt.Fprintf(&b, "  %-12s → %-12s %9d\n",
				fmt.Sprintf("#%d", cell.Culprit), fmt.Sprintf("#%d", cell.Victim), cell.Evictions)
		}
	}
	return b.String()
}

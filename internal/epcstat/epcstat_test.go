package epcstat

import (
	"strings"
	"testing"

	"hotcalls/internal/epc"
	"hotcalls/internal/sim"
)

func newFixture(capPages int, opts Options) (*epc.Manager, *Collector) {
	var key [16]byte
	copy(key[:], "epcstat-test-key")
	m := epc.NewManager(capPages*epc.PageSize, key)
	c := New(opts)
	c.Attach(m)
	return m, c
}

// TestExactWSSSequential checks the estimator against ground truth with
// sampling disabled: N distinct pages inside the window estimate to
// exactly N.
func TestExactWSSSequential(t *testing.T) {
	const n = 1000
	m, c := newFixture(256, Options{SampleBits: -1, WindowTouches: n})
	for p := uint64(0); p < n; p++ {
		m.TouchAs(1, p)
	}
	s := c.Snapshot()
	if s == nil {
		t.Fatal("nil snapshot after traffic")
	}
	if s.WSSPages != n {
		t.Fatalf("exact WSS = %d, want %d", s.WSSPages, n)
	}
	if s.SampleBits != 0 {
		t.Fatalf("SampleBits = %d, want 0 (exact)", s.SampleBits)
	}
}

// TestWSSWindowExpiry checks Denning's window semantics: pages whose last
// touch aged past WindowTouches stop counting.
func TestWSSWindowExpiry(t *testing.T) {
	const window = 100
	m, c := newFixture(1024, Options{SampleBits: -1, WindowTouches: window})
	m.TouchAs(1, 9999) // t=1: will age out
	const others = 300
	for p := uint64(0); p < others; p++ {
		m.TouchAs(1, p) // t=2..301
	}
	s := c.Snapshot()
	// now=301; a page is fresh iff now-at <= window, i.e. at >= 201:
	// the last 101 touches, all distinct pages.
	if want := uint64(window + 1); s.WSSPages != want {
		t.Fatalf("WSS = %d, want %d (window %d of %d touches)", s.WSSPages, want, window, others+1)
	}
}

// wssAccuracy drives an access pattern through a sampled collector and a
// test-side exact reference, then checks the estimate lands within tol of
// the truth.  The pattern is a function from step to page.
func wssAccuracy(t *testing.T, capPages int, window uint64, steps int, tolPct float64, page func(i int) uint64) {
	t.Helper()
	const bits = 3
	m, c := newFixture(capPages, Options{SampleBits: bits, WindowTouches: window, MaxSamples: 1 << 14})

	last := make(map[uint64]uint64) // page → touch time, exact reference
	var clock uint64
	for i := 0; i < steps; i++ {
		p := page(i)
		m.TouchAs(1, p)
		clock++
		last[p] = clock
	}
	var exact uint64
	for _, at := range last {
		if clock-at <= window {
			exact++
		}
	}
	s := c.Snapshot()
	if s.SampleBits != bits {
		t.Fatalf("SampleBits = %d, want %d", s.SampleBits, bits)
	}
	est := float64(s.WSSPages)
	err := (est - float64(exact)) / float64(exact) * 100
	t.Logf("exact WSS %d, estimate %d (1-in-%d sampling), error %+.1f%%", exact, s.WSSPages, 1<<bits, err)
	if err < -tolPct || err > tolPct {
		t.Fatalf("estimate %d off exact %d by %+.1f%%, tolerance ±%.0f%%", s.WSSPages, exact, err, tolPct)
	}
}

// TestSampledWSSAccuracy checks the hash-sampled estimator against an
// exact reference across the three shapes that matter: a resident
// sequential set, a skewed (zipf-like) mix, and an oversubscribed
// cyclic thrash.  Tolerances are the documented estimator error budget
// (the sampled page subset is a deterministic 1-in-2^bits hash draw).
func TestSampledWSSAccuracy(t *testing.T) {
	t.Run("sequential", func(t *testing.T) {
		const n = 4096
		wssAccuracy(t, n, n, 3*n, 15, func(i int) uint64 { return uint64(i % n) })
	})
	t.Run("zipfian", func(t *testing.T) {
		rng := sim.NewRNG(42)
		const span = 8192
		wssAccuracy(t, 2048, span, 50000, 25, func(i int) uint64 {
			u := rng.Float64()
			return uint64(u * u * u * span) // cube-skewed toward page 0
		})
	})
	t.Run("thrash", func(t *testing.T) {
		const ws = 1024
		wssAccuracy(t, 512, ws, 3*ws, 15, func(i int) uint64 { return uint64(i % ws) })
	})
}

// TestAccountingInvariants drives two owners past capacity and checks the
// books balance: interference cells and both per-owner eviction views sum
// exactly to the manager's eviction total, and residency sums match.
func TestAccountingInvariants(t *testing.T) {
	const capPages = 64
	m, c := newFixture(capPages, Options{SampleBits: -1})
	for round := 0; round < 4; round++ {
		for p := uint64(0); p < 50; p++ {
			m.TouchAs(1, p)
		}
		for p := uint64(100); p < 150; p++ {
			m.TouchAs(2, p)
		}
	}
	s := c.Snapshot()
	_, faults, evictions := m.Stats()
	if s.Faults != faults {
		t.Fatalf("snapshot faults %d != manager %d", s.Faults, faults)
	}
	if s.Evictions != evictions {
		t.Fatalf("snapshot evictions %d != manager %d", s.Evictions, evictions)
	}
	if evictions == 0 {
		t.Fatal("fixture produced no evictions; not a pressure test")
	}
	var cellSum, victimSum, causeSum uint64
	var residentSum int64
	for _, cell := range s.Interference {
		cellSum += cell.Evictions
	}
	for _, o := range s.Owners {
		victimSum += o.Evictions
		causeSum += o.EvictionsCaused
		residentSum += o.ResidentPages
	}
	if cellSum != evictions {
		t.Fatalf("interference cells sum %d != evictions %d", cellSum, evictions)
	}
	if victimSum != evictions {
		t.Fatalf("victim-side owner evictions sum %d != evictions %d", victimSum, evictions)
	}
	if causeSum != evictions {
		t.Fatalf("culprit-side owner evictions sum %d != evictions %d", causeSum, evictions)
	}
	if residentSum != s.ResidentPages {
		t.Fatalf("owner residency sum %d != snapshot resident %d", residentSum, s.ResidentPages)
	}
	if int(s.ResidentPages) != m.ResidentPages() {
		t.Fatalf("snapshot resident %d != manager resident %d", s.ResidentPages, m.ResidentPages())
	}
}

// TestDeltaCumulativeAndInterval checks Sub: against nil it is the
// cumulative view with the documented thrash score; between two snapshots
// it isolates the interval and drops idle owners.
func TestDeltaCumulativeAndInterval(t *testing.T) {
	const capPages = 32
	m, c := newFixture(capPages, Options{SampleBits: -1})
	for p := uint64(0); p < 64; p++ {
		m.TouchAs(1, p)
	}
	s1 := c.Snapshot()
	d := s1.Sub(nil)
	if d.Touches != s1.Now || d.Faults != s1.Faults || d.Evictions != s1.Evictions {
		t.Fatalf("cumulative delta %+v does not match snapshot totals", d)
	}
	want := (float64(d.Faults)*epc.FaultCost + float64(d.Evictions)*epc.EWBCost) / float64(d.Touches)
	if d.ThrashScore != want {
		t.Fatalf("thrash score %.2f, want %.2f", d.ThrashScore, want)
	}

	// Interval: only owner 2 is active.
	for p := uint64(200); p < 216; p++ {
		m.TouchAs(2, p)
	}
	s2 := c.Snapshot()
	di := s2.Sub(s1)
	if di.Faults != s2.Faults-s1.Faults || di.Evictions != s2.Evictions-s1.Evictions {
		t.Fatalf("interval delta %+v, want faults %d evictions %d",
			di, s2.Faults-s1.Faults, s2.Evictions-s1.Evictions)
	}
	var sawOwner2 bool
	for _, o := range di.Owners {
		if o.Owner == 2 {
			sawOwner2 = true
			if o.Faults != 16 {
				t.Fatalf("owner 2 interval faults = %d, want 16", o.Faults)
			}
		}
	}
	if !sawOwner2 {
		t.Fatalf("interval delta lost the active owner: %+v", di.Owners)
	}

	// Reversed subtraction clamps instead of wrapping.
	back := s1.Sub(s2)
	if back.Faults != 0 || back.Evictions != 0 || back.Touches != 0 {
		t.Fatalf("reversed delta should clamp to zero, got %+v", back)
	}
	nd := (*Snapshot)(nil).Sub(s1)
	if nd.Touches != 0 || nd.Faults != 0 || len(nd.Owners) != 0 {
		t.Fatalf("nil snapshot Sub should be the zero delta, got %+v", nd)
	}
}

// TestSampleBudgetBound floods the collector with distinct pages under
// exact sampling and checks the sample set stays within MaxSamples.
func TestSampleBudgetBound(t *testing.T) {
	const budget = 64
	m, c := newFixture(16, Options{SampleBits: -1, MaxSamples: budget, WindowTouches: 1 << 20})
	for p := uint64(0); p < 1000; p++ {
		m.TouchAs(1, p)
	}
	s := c.Snapshot()
	// Every touch is sampled and nothing ages out of the huge window, so
	// the estimate equals the bounded sample population.
	if s.WSSPages != budget {
		t.Fatalf("WSS = %d, want the sample budget %d", s.WSSPages, budget)
	}
}

// TestAutoSampleBits checks the capacity-driven auto-sizing: a 93 MB EPC
// needs 1-in-32 sampling to fit the default budget, a tiny one samples
// everything.
func TestAutoSampleBits(t *testing.T) {
	_, cBig := newFixture(epc.DefaultCapacityBytes/epc.PageSize, Options{})
	if cBig.SampleBits() != 5 {
		t.Fatalf("default-capacity auto bits = %d, want 5 (1-in-32)", cBig.SampleBits())
	}
	_, cSmall := newFixture(64, Options{})
	if cSmall.SampleBits() != 0 {
		t.Fatalf("tiny-capacity auto bits = %d, want 0 (4*64 pages fit the budget)", cSmall.SampleBits())
	}
}

// TestObserverZeroAllocResidentPath checks the acceptance criterion
// directly: with the observatory attached, an unsampled resident touch
// allocates nothing.
func TestObserverZeroAllocResidentPath(t *testing.T) {
	m, c := newFixture(64, Options{SampleBits: 16})
	if c.SampleBits() != 16 {
		t.Fatalf("SampleBits = %d, want 16", c.SampleBits())
	}
	// An unsampled page: at 1-in-65536 the low pages virtually never
	// hash to the sampled set, but check rather than hope.
	page := uint64(0)
	for epc.SampledTouch(page, 16) {
		page++
	}
	m.TouchAs(1, page) // warm: fault it in, create owner state
	if allocs := testing.AllocsPerRun(1000, func() {
		m.TouchAs(1, page)
	}); allocs != 0 {
		t.Fatalf("resident touch with observer attached allocates %.1f times per op, want 0", allocs)
	}
}

// TestObserverZeroAllocFaultDelta checks the fault/evict path: the
// manager itself allocates when installing and sealing pages, so the
// criterion is the observer-on/off *delta* — attaching the observatory
// must add no allocations once its per-owner state is warm.
func TestObserverZeroAllocFaultDelta(t *testing.T) {
	var key [16]byte
	copy(key[:], "epcstat-test-key")
	const bits = 16
	run := func(attach bool) float64 {
		m := epc.NewManager(epc.PageSize, key) // capacity 1: every touch faults+evicts
		if attach {
			c := New(Options{SampleBits: bits})
			c.Attach(m)
		}
		// Two unsampled pages to alternate between.
		pa := uint64(0)
		for epc.SampledTouch(pa, bits) {
			pa++
		}
		pb := pa + 1
		for epc.SampledTouch(pb, bits) {
			pb++
		}
		// Warm: both pages installed and evicted once, so owner state,
		// interference key, versions, and swap blobs all exist.
		m.TouchAs(1, pa)
		m.TouchAs(1, pb)
		m.TouchAs(1, pa)
		flip := false
		return testing.AllocsPerRun(1000, func() {
			if flip {
				m.TouchAs(1, pa)
			} else {
				m.TouchAs(1, pb)
			}
			flip = !flip
		})
	}
	off := run(false)
	on := run(true)
	if on > off {
		t.Fatalf("observer adds allocations on the fault path: %.2f with vs %.2f without", on, off)
	}
}

// TestRenderTextAndLabels checks the text view: labels resolve, the nil
// snapshot degrades gracefully, and the headline numbers appear.
func TestRenderTextAndLabels(t *testing.T) {
	if got := (*Snapshot)(nil).RenderText(); got != "epc: no snapshot yet\n" {
		t.Fatalf("nil render = %q", got)
	}
	if (*Collector)(nil).Snapshot() != nil {
		t.Fatal("nil collector Snapshot should be nil")
	}
	if New(Options{}).Snapshot() != nil {
		t.Fatal("unattached collector Snapshot should be nil")
	}

	m, c := newFixture(8, Options{SampleBits: -1})
	c.SetLabel(1, "web")
	for p := uint64(0); p < 12; p++ {
		m.TouchAs(1, p)
	}
	for p := uint64(100); p < 104; p++ {
		m.TouchAs(2, p)
	}
	txt := c.Snapshot().RenderText()
	for _, want := range []string{"web(#1)", "#2", "pages resident", "interference (culprit→victim evictions):"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("render missing %q:\n%s", want, txt)
		}
	}
}

// TestMEEStamp checks the wired MEE counter source lands in snapshots.
func TestMEEStamp(t *testing.T) {
	m, c := newFixture(8, Options{SampleBits: -1})
	c.SetMEEStats(func() (uint64, uint64) { return 123, 45 })
	m.TouchAs(1, 0)
	s := c.Snapshot()
	if s.MEENodeAccesses != 123 || s.MEENodeMisses != 45 {
		t.Fatalf("MEE counters = %d/%d, want 123/45", s.MEENodeAccesses, s.MEENodeMisses)
	}
}

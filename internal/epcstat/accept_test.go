package epcstat_test

// The observatory's acceptance test: a workload whose working set grows
// past capacity must trip the oversubscription early warning at least one
// monitor interval BEFORE the fault storm trips the thrash rule, the
// incident bundle captured at the storm must carry the per-owner EPC
// snapshot, and the interference matrix must account for every eviction
// exactly.  This lives in an external package because monitor imports
// epcstat.

import (
	"net/http/httptest"
	"strings"
	"testing"

	"hotcalls/internal/epc"
	"hotcalls/internal/epcstat"
	"hotcalls/internal/incident"
	"hotcalls/internal/monitor"
	"hotcalls/internal/telemetry"
)

func firstEvent(events []monitor.Event, rule string) (monitor.Event, bool) {
	for _, e := range events {
		if e.Rule == rule {
			return e, true
		}
	}
	return monitor.Event{}, false
}

func TestOversubscriptionEarlyWarning(t *testing.T) {
	const capPages = 1024
	var key [16]byte
	copy(key[:], "accept-test-key!")
	mgr := epc.NewManager(capPages*epc.PageSize, key)
	reg := telemetry.New()
	mgr.SetTelemetry(reg) // the thrash rule reads eviction deltas from the registry
	col := epcstat.New(epcstat.Options{SampleBits: -1, WindowTouches: 4096})
	col.Attach(mgr)
	col.SetLabel(1, "tenant-a")
	col.SetLabel(2, "tenant-b")

	m := monitor.New(reg, monitor.Options{EPC: col})
	cap := incident.New(m, incident.Options{Registry: reg})
	cap.Attach()

	m.Tick() // baseline

	// Phase 1: tenant-a resident at 39% of capacity — healthy.
	for p := uint64(0); p < 400; p++ {
		mgr.TouchAs(1, p)
	}
	m.Tick()
	if len(m.Events()) != 0 {
		t.Fatalf("healthy phase raised events: %+v", m.Events())
	}

	// Phase 2: tenant-a grows to 88% of capacity.  Still zero evictions —
	// the fault storm has not started — but the summed WSS crosses the
	// 85% early-warning threshold.
	for p := uint64(0); p < 900; p++ {
		mgr.TouchAs(1, p)
	}
	m.Tick()
	events := m.Events()
	warn, ok := firstEvent(events, "epc-oversubscription")
	if !ok {
		t.Fatalf("no oversubscription warning at 88%% occupancy; events: %+v", events)
	}
	if warn.Severity != monitor.Warning {
		t.Fatalf("early warning severity = %v, want Warning", warn.Severity)
	}
	if !strings.Contains(warn.Diagnosis, "tenant-a") {
		t.Fatalf("diagnosis should name the largest owner, got %q", warn.Diagnosis)
	}
	if _, thrashed := firstEvent(events, "epc-thrash"); thrashed {
		t.Fatal("thrash rule fired before any eviction — not an early warning")
	}
	_, faults, evictions := mgr.Stats()
	if evictions != 0 {
		t.Fatalf("phase 2 should be eviction-free, got %d (faults %d)", evictions, faults)
	}

	// Phase 3: tenant-b streams 1,300 fresh pages through — the storm.
	for p := uint64(900); p < 2200; p++ {
		mgr.TouchAs(2, p)
	}
	m.Tick()
	events = m.Events()
	thrash, ok := firstEvent(events, "epc-thrash")
	if !ok {
		t.Fatalf("no thrash event after the storm; events: %+v", events)
	}
	if thrash.Seq <= warn.Seq {
		t.Fatalf("early warning (seq %d) did not precede thrash (seq %d) by a monitor interval",
			warn.Seq, thrash.Seq)
	}
	interf, ok := firstEvent(events, "epc-victim-interference")
	if !ok {
		t.Fatalf("no victim-interference event: tenant-b evicted tenant-a's whole set; events: %+v", events)
	}
	if !strings.Contains(interf.Diagnosis, "tenant-a") || !strings.Contains(interf.Diagnosis, "tenant-b") {
		t.Fatalf("interference diagnosis should name victim and culprit, got %q", interf.Diagnosis)
	}

	// The incident bundles carry the per-owner EPC snapshot, and the
	// interference matrix accounts for every eviction exactly.
	bundles := cap.Bundles()
	if len(bundles) == 0 {
		t.Fatal("no incident bundles captured")
	}
	_, _, totalEvictions := mgr.Stats()
	var sawThrashBundle bool
	for _, b := range bundles {
		if b.EPC == nil {
			t.Fatalf("bundle %s has no EPC snapshot", b.ID)
		}
		if !strings.Contains(b.RenderText(), "epc pressure:") {
			t.Fatalf("bundle %s text view missing the EPC section", b.ID)
		}
		if !strings.Contains(b.ID, "epc-thrash") {
			continue
		}
		sawThrashBundle = true
		var cellSum uint64
		for _, cell := range b.EPC.Interference {
			cellSum += cell.Evictions
		}
		if cellSum != b.EPC.Evictions {
			t.Fatalf("bundle interference cells sum to %d, want %d", cellSum, b.EPC.Evictions)
		}
		if b.EPC.Evictions != totalEvictions {
			t.Fatalf("bundle evictions %d != manager total %d", b.EPC.Evictions, totalEvictions)
		}
	}
	if !sawThrashBundle {
		t.Fatalf("no bundle captured for the thrash storm; got %v", bundleIDs(bundles))
	}

	// The monitor's own surfaces show the pressure: the watch view lists
	// owners, and the mux serves /debug/epc.
	if txt := m.RenderText(5); !strings.Contains(txt, "epc owners") {
		t.Fatalf("monitor text view missing the owner table:\n%s", txt)
	}
	rr := httptest.NewRecorder()
	monitor.Mux(reg, m).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/epc", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), epcstat.SnapshotSchema) {
		t.Fatalf("/debug/epc = %d %q", rr.Code, rr.Body.String())
	}
}

func bundleIDs(bs []*incident.Bundle) []string {
	ids := make([]string, len(bs))
	for i, b := range bs {
		ids[i] = b.ID
	}
	return ids
}

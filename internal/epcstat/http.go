package epcstat

import (
	"encoding/json"
	"net/http"

	"hotcalls/internal/dist"
	"hotcalls/internal/epc"
	"hotcalls/internal/flight"
)

// ContentTypeSVG is the Content-Type of the heatmap rendering.
const ContentTypeSVG = "image/svg+xml; charset=utf-8"

// Handler serves the observatory at /debug/epc.  ?format= selects the
// rendering: "" or "json" → the Snapshot JSON, "text" → RenderText,
// "svg" → the deterministic fault heatmap; anything else is a 400.
func Handler(c *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		format := r.URL.Query().Get("format")
		switch format {
		case "", "json", "text", "svg":
		default:
			http.Error(w, "unknown format (want json, text, or svg)", http.StatusBadRequest)
			return
		}
		s := c.Snapshot()
		switch format {
		case "", "json":
			w.Header().Set("Content-Type", flight.ContentTypeJSON)
			if s == nil {
				s = &Snapshot{Schema: SnapshotSchema}
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(s)
		case "text":
			w.Header().Set("Content-Type", flight.ContentTypeText)
			w.Write([]byte(s.RenderText()))
		case "svg":
			w.Header().Set("Content-Type", ContentTypeSVG)
			w.Write([]byte(HeatSVG(s)))
		}
	})
}

// HeatSVG renders the snapshot's fault heatmap as a byte-deterministic
// SVG line chart (one series for the total, one per owner), reusing the
// internal/dist renderer.  Safe on a nil snapshot.
func HeatSVG(s *Snapshot) string {
	cfg := dist.PlotConfig{
		Title:  "EPC fault heatmap",
		XLabel: "address offset (MB)",
		YLabel: "faults per bucket",
	}
	if s == nil || len(s.Heat) == 0 {
		return dist.RenderLinesSVG(cfg, nil)
	}
	bucketMB := float64(s.PagesPerBucket) * float64(epc.PageSize) / (1 << 20)
	series := []dist.Series{heatSeries("all", s.Heat, bucketMB)}
	for _, o := range s.Owners {
		if len(o.Heat) == 0 {
			continue
		}
		series = append(series, heatSeries(ownerName(o.Owner, o.Label), o.Heat, bucketMB))
	}
	return dist.RenderLinesSVG(cfg, series)
}

func heatSeries(name string, heat []uint64, bucketMB float64) dist.Series {
	pts := make([]dist.CDFPoint, len(heat))
	for i, n := range heat {
		pts[i] = dist.CDFPoint{Value: float64(i) * bucketMB, Fraction: float64(n)}
	}
	return dist.Series{Name: name, Points: pts}
}

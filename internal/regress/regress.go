// Package regress is the machine-checked perf-regression gate over the
// hotcalls-bench/v1 JSON artifact (BENCH_hotcalls.json): a schema-aware
// differ that compares a candidate run against a committed baseline with
// per-metric tolerances and direction-aware better/worse classification,
// renders a markdown report, and fails (non-zero gate) on any regression
// beyond tolerance.  `make bench-regress` wires it against the committed
// baseline; CI runs it on every push so the bench trajectory is a live
// contract instead of a dead artifact.
package regress

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"hotcalls/internal/bench"
)

// Schema is the artifact schema this differ understands.
const Schema = "hotcalls-bench/v1"

// Direction says which way a metric is allowed to move.
type Direction int

const (
	// LowerBetter: latencies, cycle counts — increases regress.
	LowerBetter Direction = iota
	// HigherBetter: throughput, speedups — decreases regress.
	HigherBetter
	// Neutral: metadata-like values compared only for drift reporting,
	// never gated.
	Neutral
	// TwoSided: fidelity metrics pinned to a published target — drifting
	// beyond tolerance in either direction regresses, because "faster
	// than the paper" means the calibration no longer reproduces it.
	TwoSided
)

// String returns a compact direction marker for reports.
func (d Direction) String() string {
	switch d {
	case LowerBetter:
		return "lower-better"
	case HigherBetter:
		return "higher-better"
	case TwoSided:
		return "two-sided"
	}
	return "neutral"
}

// Class is the verdict for one metric.
type Class int

const (
	// Unchanged: within tolerance.
	Unchanged Class = iota
	// Improved: beyond tolerance in the good direction.
	Improved
	// Regressed: beyond tolerance in the bad direction.
	Regressed
	// Added: present only in the candidate.
	Added
	// Removed: present only in the baseline — gated, because a silently
	// vanished metric is how a trajectory goes dead.
	Removed
)

// String returns the lowercase class name.
func (c Class) String() string {
	switch c {
	case Unchanged:
		return "unchanged"
	case Improved:
		return "improved"
	case Regressed:
		return "regressed"
	case Added:
		return "added"
	case Removed:
		return "removed"
	}
	return "unknown"
}

// Delta is one metric's comparison.
type Delta struct {
	Key          string // "<experiment id>/<value name>" or "summary/<field>"
	Unit         string
	Base, Cand   float64
	ChangePct    float64 // signed (cand-base)/base*100; 0 when base is 0
	Direction    Direction
	TolerancePct float64
	Class        Class
}

// Result is a whole comparison: every metric's delta plus the gate
// verdict.
type Result struct {
	BaseMeta, CandMeta Meta
	Deltas             []Delta
}

// Meta is the artifact metadata carried into the report header.
type Meta struct {
	GeneratedAt string
	GoVersion   string
	MicroRuns   int
}

// metaOf extracts report metadata.
func metaOf(r bench.JSONReport) Meta {
	return Meta{GeneratedAt: r.GeneratedAt, GoVersion: r.GoVersion, MicroRuns: r.MicroRuns}
}

// Parse decodes and validates a hotcalls-bench/v1 artifact.
func Parse(data []byte) (bench.JSONReport, error) {
	var r bench.JSONReport
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("regress: bad JSON: %w", err)
	}
	if r.Schema != Schema {
		return r, fmt.Errorf("regress: schema %q, want %q", r.Schema, Schema)
	}
	return r, nil
}

// flatten turns a report into key → (value, unit) in deterministic
// order: the summary block first, then per-experiment values.
func flatten(r bench.JSONReport) (keys []string, vals map[string]float64, units map[string]string) {
	vals = make(map[string]float64)
	units = make(map[string]string)
	put := func(key string, v float64, unit string) {
		if _, dup := vals[key]; dup {
			return // first occurrence wins on duplicate names
		}
		keys = append(keys, key)
		vals[key] = v
		units[key] = unit
	}
	for _, s := range [...]struct {
		name string
		v    float64
		unit string
	}{
		{"summary/ecall_warm_median_cycles", r.Summary.EcallWarmMedianCycles, "cycles"},
		{"summary/ocall_warm_median_cycles", r.Summary.OcallWarmMedianCycles, "cycles"},
		{"summary/hotcall_median_cycles", r.Summary.HotCallMedianCycles, "cycles"},
		{"summary/hotcall_vs_ecall_speedup", r.Summary.HotCallVsEcallSpeedup, "x"},
		{"summary/hotcall_vs_ocall_speedup", r.Summary.HotCallVsOcallSpeedup, "x"},
	} {
		if s.v != 0 {
			put(s.name, s.v, s.unit)
		}
	}
	for _, e := range r.Experiments {
		for _, v := range e.Values {
			put(e.ID+"/"+v.Name, v.Got, v.Unit)
		}
	}
	return keys, vals, units
}

// Compare diffs a candidate run against the baseline under the policy.
func Compare(base, cand bench.JSONReport, pol Policy) *Result {
	res := &Result{BaseMeta: metaOf(base), CandMeta: metaOf(cand)}
	baseKeys, baseVals, baseUnits := flatten(base)
	candKeys, candVals, candUnits := flatten(cand)

	seen := make(map[string]bool)
	for _, key := range baseKeys {
		seen[key] = true
		d := Delta{Key: key, Unit: baseUnits[key], Base: baseVals[key]}
		d.Direction, d.TolerancePct = pol.resolve(key, d.Unit)
		cv, ok := candVals[key]
		if !ok {
			d.Class = Removed
			res.Deltas = append(res.Deltas, d)
			continue
		}
		d.Cand = cv
		if d.Base != 0 {
			d.ChangePct = (d.Cand - d.Base) / d.Base * 100
		}
		d.Class = classify(d)
		res.Deltas = append(res.Deltas, d)
	}
	for _, key := range candKeys {
		if seen[key] {
			continue
		}
		d := Delta{Key: key, Unit: candUnits[key], Cand: candVals[key], Class: Added}
		d.Direction, d.TolerancePct = pol.resolve(key, d.Unit)
		res.Deltas = append(res.Deltas, d)
	}
	return res
}

// classify applies direction and tolerance to a matched metric.
func classify(d Delta) Class {
	if d.Direction == Neutral {
		return Unchanged
	}
	abs := d.ChangePct
	if abs < 0 {
		abs = -abs
	}
	if abs <= d.TolerancePct {
		return Unchanged
	}
	if d.Direction == TwoSided {
		return Regressed
	}
	worse := d.ChangePct > 0
	if d.Direction == HigherBetter {
		worse = !worse
	}
	if worse {
		return Regressed
	}
	return Improved
}

// Regressions returns the gated deltas: regressed metrics and removed
// metrics, worst relative change first.
func (r *Result) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Class == Regressed || d.Class == Removed {
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		ai, aj := out[i].ChangePct, out[j].ChangePct
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		return ai > aj
	})
	return out
}

// Improvements returns the metrics that moved beyond tolerance in the
// good direction, biggest first.
func (r *Result) Improvements() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Class == Improved {
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		ai, aj := out[i].ChangePct, out[j].ChangePct
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		return ai > aj
	})
	return out
}

// Failed reports whether the gate should exit non-zero.
func (r *Result) Failed() bool { return len(r.Regressions()) > 0 }

// Counts returns per-class totals for the report summary line.
func (r *Result) Counts() map[Class]int {
	out := make(map[Class]int)
	for _, d := range r.Deltas {
		out[d.Class]++
	}
	return out
}

// Summary is the one-line human verdict.
func (r *Result) Summary() string {
	c := r.Counts()
	verdict := "PASS"
	if r.Failed() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s: %d metrics compared — %d regressed, %d improved, %d unchanged, %d added, %d removed",
		verdict, len(r.Deltas), c[Regressed], c[Improved], c[Unchanged], c[Added], c[Removed])
}

// sanitizeCell escapes the characters that would break a markdown table
// cell (the bench value names contain no pipes today, but the report
// must not corrupt if one appears).
func sanitizeCell(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}

package regress

import "path"

// Policy maps each metric to its direction and tolerance.  Resolution
// order: the first matching override wins, then the unit's schema
// default, then the global default.
type Policy struct {
	// DefaultTolerancePct is the allowed relative drift for metrics with
	// no override (percent, absolute value).
	DefaultTolerancePct float64

	// Overrides are consulted in order; Pattern is a path.Match glob
	// against the metric key ("<experiment>/<name>" or
	// "summary/<field>").
	Overrides []Override
}

// Override pins direction and/or tolerance for metrics matching a glob.
type Override struct {
	Pattern string
	// ForceDirection makes Direction authoritative; otherwise the unit's
	// schema default still decides (a tolerance-only override must not
	// flip a req/s metric to lower-better).
	ForceDirection bool
	Direction      Direction
	TolerancePct   float64 // 0 means inherit the default tolerance
}

// DefaultPolicy encodes the hotcalls-bench/v1 schema knowledge:
//
//   - cycle and time metrics (cycles, ms, us, ns, s) are lower-better;
//   - rate metrics (req/s, ops/s, x speedups, hit ratios) are
//     higher-better;
//   - normalized-throughput fractions ("frac", "ratio") are
//     higher-better;
//   - everything else defaults to lower-better, the conservative choice
//     for a latency-centric artifact.
//
// The default tolerance is 3%: the harness is a deterministic simulation
// (seeded RNG, simulated cycles), so healthy runs reproduce to well
// under 1%, and 3% keeps the gate quiet across Go version and
// architecture drift while still catching the 10% class of real
// regressions.
func DefaultPolicy() Policy {
	return Policy{
		DefaultTolerancePct: 3,
		Overrides: []Override{
			// Known-noisy extension curves: closed-loop scheduling at
			// low concurrency wobbles more than the microbenchmarks.
			{Pattern: "loadcurve/*", TolerancePct: 6},
		},
	}
}

// higherBetterUnits are the units that regress when they shrink.
var higherBetterUnits = map[string]bool{
	"req/s": true, "ops/s": true, "x": true, "GB/s": true, "MB/s": true,
	"frac": true, "ratio": true, "hit%": true,
}

// lowerBetterUnits are the units that regress when they grow.
var lowerBetterUnits = map[string]bool{
	"cycles": true, "ms": true, "us": true, "ns": true, "s": true,
	"calls": true, "crossings": true,
}

// resolve returns the direction and tolerance for a metric key with the
// given unit.
func (p Policy) resolve(key, unit string) (Direction, float64) {
	tol := p.DefaultTolerancePct
	dir, haveDir := dirOfUnit(unit)
	for _, o := range p.Overrides {
		ok, err := path.Match(o.Pattern, key)
		if err != nil || !ok {
			continue
		}
		if o.TolerancePct > 0 {
			tol = o.TolerancePct
		}
		if o.ForceDirection {
			dir, haveDir = o.Direction, true
		}
		break
	}
	if !haveDir {
		dir = LowerBetter
	}
	return dir, tol
}

// dirOfUnit applies the schema's unit conventions.
func dirOfUnit(unit string) (Direction, bool) {
	if higherBetterUnits[unit] {
		return HigherBetter, true
	}
	if lowerBetterUnits[unit] {
		return LowerBetter, true
	}
	return LowerBetter, false
}

package regress

import "path"

// Policy maps each metric to its direction and tolerance.  Resolution
// order: the first matching override wins, then the unit's schema
// default, then the global default.
type Policy struct {
	// DefaultTolerancePct is the allowed relative drift for metrics with
	// no override (percent, absolute value).
	DefaultTolerancePct float64

	// Overrides are consulted in order; Pattern is a path.Match glob
	// against the metric key ("<experiment>/<name>" or
	// "summary/<field>").
	Overrides []Override
}

// Override pins direction and/or tolerance for metrics matching a glob.
type Override struct {
	Pattern string
	// ForceDirection makes Direction authoritative; otherwise the unit's
	// schema default still decides (a tolerance-only override must not
	// flip a req/s metric to lower-better).
	ForceDirection bool
	Direction      Direction
	TolerancePct   float64 // 0 means inherit the default tolerance
}

// DefaultPolicy encodes the hotcalls-bench/v1 schema knowledge:
//
//   - cycle and time metrics (cycles, ms, us, ns, s) are lower-better;
//   - rate metrics (req/s, ops/s, x speedups, hit ratios) are
//     higher-better;
//   - normalized-throughput fractions ("frac", "ratio") are
//     higher-better;
//   - everything else defaults to lower-better, the conservative choice
//     for a latency-centric artifact.
//
// The default tolerance is 3%: the harness is a deterministic simulation
// (seeded RNG, simulated cycles), so healthy runs reproduce to well
// under 1%, and 3% keeps the gate quiet across Go version and
// architecture drift while still catching the 10% class of real
// regressions.
func DefaultPolicy() Policy {
	return Policy{
		DefaultTolerancePct: 3,
		Overrides: []Override{
			// Known-noisy extension curves: closed-loop scheduling at
			// low concurrency wobbles more than the microbenchmarks.
			{Pattern: "loadcurve/*", TolerancePct: 6},
			// The app routes' windowed-vs-sync ratios divide by a
			// synchronous rate that is pure scheduler handoff on a
			// 1-vCPU host — the noisiest denominator in the artifact
			// (observed run-to-run swings near 50%) — so they get the
			// widest band: the gate only catches the window pipelining
			// breaking outright (ratio falling toward 1x).
			{Pattern: "scaling/*windowed vs sync", ForceDirection: true, Direction: HigherBetter, TolerancePct: 60},
			// The flight-overhead pair is a same-run throughput ratio
			// (recorder-on / recorder-off), interleaved in one process, so
			// its expected value is ~1.00x and the recorder's true cost
			// (<1%) is invisible next to scheduler jitter on a 1-vCPU
			// host (observed round-to-round ratio spread ~±10%).  The
			// band exists to catch the sampled hot path growing a real
			// cost — an always-on clock read or allocation would drop the
			// ratio by tens of percent at SampleEvery=256 — not to
			// re-litigate the <1% budget, which EXPERIMENTS.md records
			// from the interleaved medians.
			// The tail-sampler pair shares the flight experiment's design
			// (same-run interleaved ratio, expected ~1.00x) and failure
			// mode: the armed Complete check growing past a plain
			// load+compare — a per-call clock read or outlier capture on
			// healthy traffic — would sink the ratio well past the band.
			{Pattern: "flight/tail-*", ForceDirection: true, Direction: HigherBetter, TolerancePct: 15},
			// The incident demo gates a count (bundles captured per storm
			// episode, exactly 1); "calls" units default lower-better,
			// which would read a broken capture path (0 bundles) as an
			// improvement.
			{Pattern: "incident/*", ForceDirection: true, Direction: HigherBetter},
			{Pattern: "flight/*", ForceDirection: true, Direction: HigherBetter, TolerancePct: 15},
			// The what-if experiment gates agreement fractions (causal
			// profiler and routing-replay, deterministic ~1.0), the
			// misroute-detection count (exactly 1), and the
			// estimator-armed vs estimator-off interleaved ratio
			// (expected ~1.00x — the observatory reads digested stats
			// off the call path, so a sinking ratio means shadow scoring
			// leaked onto it).  All higher-better; the 15% band matches
			// the flight pair's observed scheduler jitter on 1-vCPU
			// hosts.
			{Pattern: "whatif/*", ForceDirection: true, Direction: HigherBetter, TolerancePct: 15},
			// The EPC observer pair shares the flight pair's design
			// (same-run interleaved touch-rate ratio, expected ~0.96x at
			// production 1-in-32 sampling on the raw resident-touch path);
			// the band catches the observer growing an always-on cost —
			// an allocation or extra map walk on the unsampled path.
			{Pattern: "epc/observer-*", ForceDirection: true, Direction: HigherBetter, TolerancePct: 15},
			// The rest of the epc experiment gates the oversubscription
			// cliff against its closed-form model: measured/model ratios
			// are exactly 1.00x by construction (deterministic simulated
			// cycles), and the WSS cross-checks are deterministic hash
			// counts, so any drift in either direction is a real break in
			// the paging model or the estimator.
			{Pattern: "epc/*", ForceDirection: true, Direction: TwoSided, TolerancePct: 5},
			// The zerocopy fabric pairs and the openvpn streaming pair are
			// real wall-clock same-run ratios (staged-copy vs zero-copy
			// round throughput; windowed vs synchronous relay), so they
			// inherit the scaling curve's wide band: the gate catches the
			// ring path collapsing back to copy-bound throughput (the 32 KB
			// point sits far above 2x, so even the band floor holds the
			// acceptance line), not scheduler wobble.
			{Pattern: "zerocopy/fabric*", ForceDirection: true, Direction: HigherBetter, TolerancePct: 35},
			{Pattern: "zerocopy/openvpn*", ForceDirection: true, Direction: HigherBetter, TolerancePct: 35},
			// The rest of the zerocopy experiment is the simulated
			// staged-vs-[zerocopy] crossing sweep: deterministic cycle
			// ratios under a fixed seed, so the modest band only absorbs
			// cross-architecture RNG drift while still catching the staged
			// path losing a copy or the zero-copy path growing one.
			{Pattern: "zerocopy/*", ForceDirection: true, Direction: HigherBetter, TolerancePct: 10},
			// The fabric scaling curve is real wall-clock on shared CI
			// hosts, not simulated cycles.  Its values are same-run
			// speedup ratios (higher-better "x"), which cancels host
			// speed but not scheduler jitter, so the band is wide: the
			// gate exists to catch the fabric collapsing back toward
			// single-slot throughput (a 2x-class loss), not 10% wobble.
			{Pattern: "scaling/*", ForceDirection: true, Direction: HigherBetter, TolerancePct: 35},
		},
	}
}

// PaperFidelityPolicy gates the hotreport fidelity section: every
// "fidelity/<metric>" key compares a measured value against the paper's
// published number, two-sided — drifting under the target is as much a
// calibration break as drifting over it.  Specific overrides come before
// the catch-all because resolution stops at the first match.
//
// Tolerances are calibrated from the seed's measured deviations (see
// EXPERIMENTS.md "Paper fidelity"): medians reproduce to within a few
// percent; the read-overhead sweep's mid-range points (4-16 KB) diverge
// structurally — the simulated MEE node cache has a sharper capacity
// knee than the real part — so they carry documented wide tolerances
// rather than an always-red gate.
func PaperFidelityPolicy() Policy {
	return Policy{
		DefaultTolerancePct: 10,
		Overrides: []Override{
			// Structural divergence: the Figure 6 mid-range (see
			// EXPERIMENTS.md "Known divergences").  The simulated MEE
			// node cache leaves its capacity knee at a sharper angle than
			// the real part, so the 4-16 KB points sit ~20% off and the
			// 32 KB endpoint ~14% (trajectory baseline: -21%/-19%/+22%/+14%).
			{Pattern: "fidelity/read_overhead_4kb_pct", ForceDirection: true, Direction: TwoSided, TolerancePct: 45},
			{Pattern: "fidelity/read_overhead_8kb_pct", ForceDirection: true, Direction: TwoSided, TolerancePct: 45},
			{Pattern: "fidelity/read_overhead_16kb_pct", ForceDirection: true, Direction: TwoSided, TolerancePct: 30},
			{Pattern: "fidelity/read_overhead_32kb_pct", ForceDirection: true, Direction: TwoSided, TolerancePct: 20},
			// The paper's "620 cycles in most cases" is the latency
			// model's p78, not its median (~553, -10.8% in the committed
			// trajectory baseline); the median-derived metrics inherit
			// that offset.  The Figure 3 tail gates as the paper states
			// it — fraction within 1,400 cycles — not as a p99.97 order
			// statistic, which is the top handful of samples and churns
			// across seeds.
			{Pattern: "fidelity/hotcall_median_cycles", ForceDirection: true, Direction: TwoSided, TolerancePct: 15},
			{Pattern: "fidelity/hotcall_vs_*_speedup", ForceDirection: true, Direction: TwoSided, TolerancePct: 15},
			// Write overhead is a small number (~6%), so relative drift
			// is amplified; the paper itself only claims "about 6%".
			{Pattern: "fidelity/write_overhead_*", ForceDirection: true, Direction: TwoSided, TolerancePct: 40},
			// Everything else under fidelity/: calibrated medians,
			// HotCall latency, app throughput ratios.
			{Pattern: "fidelity/*", ForceDirection: true, Direction: TwoSided, TolerancePct: 10},
		},
	}
}

// Resolve is the exported form of resolve, for callers (the report
// builder) that need to display the direction and tolerance a key gates
// under.
func (p Policy) Resolve(key, unit string) (Direction, float64) {
	return p.resolve(key, unit)
}

// higherBetterUnits are the units that regress when they shrink.
var higherBetterUnits = map[string]bool{
	"req/s": true, "ops/s": true, "x": true, "GB/s": true, "MB/s": true,
	"frac": true, "ratio": true, "hit%": true,
}

// lowerBetterUnits are the units that regress when they grow.
var lowerBetterUnits = map[string]bool{
	"cycles": true, "ms": true, "us": true, "ns": true, "s": true,
	"calls": true, "crossings": true,
}

// resolve returns the direction and tolerance for a metric key with the
// given unit.
func (p Policy) resolve(key, unit string) (Direction, float64) {
	tol := p.DefaultTolerancePct
	dir, haveDir := dirOfUnit(unit)
	for _, o := range p.Overrides {
		ok, err := path.Match(o.Pattern, key)
		if err != nil || !ok {
			continue
		}
		if o.TolerancePct > 0 {
			tol = o.TolerancePct
		}
		if o.ForceDirection {
			dir, haveDir = o.Direction, true
		}
		break
	}
	if !haveDir {
		dir = LowerBetter
	}
	return dir, tol
}

// dirOfUnit applies the schema's unit conventions.
func dirOfUnit(unit string) (Direction, bool) {
	if higherBetterUnits[unit] {
		return HigherBetter, true
	}
	if lowerBetterUnits[unit] {
		return LowerBetter, true
	}
	return LowerBetter, false
}

package regress

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hotcalls/internal/bench"
)

// TestMarkdownReportGolden pins the exact markdown the gate emits for a
// fixed regressing comparison (set UPDATE_GOLDEN=1 to regenerate).  The
// report is what lands in CI logs and PR comments, so its shape is part
// of the contract.
func TestMarkdownReportGolden(t *testing.T) {
	base := fixtureReport()
	cand := fixtureReport()
	cand.GeneratedAt = "2026-08-05T01:00:00Z"
	cand.Summary.HotCallMedianCycles *= 1.10  // regression
	cand.Experiments[1].Values[0].Got *= 1.10 // improvement (req/s up)
	cand.Experiments = append(cand.Experiments, bench.JSONExperiment{
		ID: "fig9", Values: []bench.JSONValue{{Name: "lighttpd hotcalls", Got: 61000, Unit: "req/s"}},
	})

	res := Compare(base, cand, DefaultPolicy())
	var a, b bytes.Buffer
	if err := res.WriteMarkdown(&a); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("markdown report is not deterministic across calls")
	}

	golden := filepath.Join("testdata", "report_golden.md")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, a.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with UPDATE_GOLDEN=1): %v", err)
	}
	if a.String() != string(want) {
		t.Fatalf("markdown report drifted from golden file:\n got:\n%s\nwant:\n%s", a.String(), want)
	}
}

// TestMarkdownPassReport checks the all-clear shape: no regressions
// section, PASS verdict.
func TestMarkdownPassReport(t *testing.T) {
	base := fixtureReport()
	res := Compare(base, base, DefaultPolicy())
	var buf bytes.Buffer
	if err := res.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("PASS")) {
		t.Fatalf("pass report lacks PASS verdict:\n%s", s)
	}
	if bytes.Contains(buf.Bytes(), []byte("## Regressions")) {
		t.Fatalf("pass report has a regressions section:\n%s", s)
	}
}

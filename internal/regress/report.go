package regress

import (
	"fmt"
	"io"
	"strings"
)

// WriteMarkdown renders the comparison as a markdown report: verdict,
// regressions (the gate's reason for failing, worst first), improvements,
// and the full metric table.  Output is deterministic for a fixed input
// pair, which is what the golden-file tests pin.
func (r *Result) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	b.WriteString("# Bench regression report (hotcalls-bench/v1)\n\n")
	fmt.Fprintf(&b, "**%s**\n\n", r.Summary())
	fmt.Fprintf(&b, "| | baseline | candidate |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| generated | %s | %s |\n", r.BaseMeta.GeneratedAt, r.CandMeta.GeneratedAt)
	fmt.Fprintf(&b, "| go | %s | %s |\n", r.BaseMeta.GoVersion, r.CandMeta.GoVersion)
	fmt.Fprintf(&b, "| micro runs | %d | %d |\n\n", r.BaseMeta.MicroRuns, r.CandMeta.MicroRuns)

	if regs := r.Regressions(); len(regs) > 0 {
		b.WriteString("## Regressions (gate failures)\n\n")
		writeDeltaTable(&b, regs)
	}
	if imps := r.Improvements(); len(imps) > 0 {
		b.WriteString("## Improvements\n\n")
		writeDeltaTable(&b, imps)
	}

	b.WriteString("## All metrics\n\n")
	writeDeltaTable(&b, r.Deltas)
	_, err := io.WriteString(w, b.String())
	return err
}

// writeDeltaTable renders one markdown table of deltas.
func writeDeltaTable(b *strings.Builder, deltas []Delta) {
	b.WriteString("| metric | unit | baseline | candidate | change | tolerance | direction | class |\n")
	b.WriteString("|---|---|---:|---:|---:|---:|---|---|\n")
	for _, d := range deltas {
		change := "-"
		switch d.Class {
		case Added:
			change = "new"
		case Removed:
			change = "gone"
		default:
			change = fmt.Sprintf("%+.2f%%", d.ChangePct)
		}
		fmt.Fprintf(b, "| %s | %s | %s | %s | %s | %.1f%% | %s | %s |\n",
			sanitizeCell(d.Key), sanitizeCell(d.Unit),
			fnum(d.Base), fnum(d.Cand), change,
			d.TolerancePct, d.Direction, d.Class)
	}
	b.WriteString("\n")
}

// fnum renders a value compactly: integers without decimals, fractions
// with enough precision to see a 1% move.
func fnum(v float64) string {
	if v == 0 {
		return "0"
	}
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

package regress

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hotcalls/internal/bench"
)

// fixtureReport builds a small deterministic hotcalls-bench/v1 report
// covering every direction class the policy knows about.
func fixtureReport() bench.JSONReport {
	return bench.JSONReport{
		Schema:      Schema,
		GeneratedAt: "2026-08-05T00:00:00Z",
		GoVersion:   "go1.24.0",
		GOOS:        "linux",
		GOARCH:      "amd64",
		MicroRuns:   20000,
		Summary: bench.JSONSummary{
			EcallWarmMedianCycles: 8640,
			OcallWarmMedianCycles: 8314,
			HotCallMedianCycles:   553,
			HotCallVsEcallSpeedup: 15.62,
			HotCallVsOcallSpeedup: 15.03,
		},
		Experiments: []bench.JSONExperiment{
			{ID: "table1", Title: "Table 1", Values: []bench.JSONValue{
				{Name: "Ecall (warm cache)", Got: 8640, Unit: "cycles"},
				{Name: "Ocall (warm cache)", Got: 8314, Unit: "cycles"},
			}},
			{ID: "fig7", Title: "Fig 7", Values: []bench.JSONValue{
				{Name: "memcached hotcalls", Got: 410000, Unit: "req/s"},
			}},
			{ID: "loadcurve", Title: "Load curve", Values: []bench.JSONValue{
				{Name: "peak throughput", Got: 500000, Unit: "req/s"},
			}},
		},
	}
}

func mustMarshal(t *testing.T, r bench.JSONReport) []byte {
	t.Helper()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestParseValidatesSchema(t *testing.T) {
	r := fixtureReport()
	if _, err := Parse(mustMarshal(t, r)); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}
	r.Schema = "hotcalls-bench/v2"
	if _, err := Parse(mustMarshal(t, r)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := Parse([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

// TestCommittedBaselineParses pins the committed artifact to the schema
// the differ understands: if BENCH_hotcalls.json drifts, the gate must
// fail loudly at parse time, not silently compare nothing.
func TestCommittedBaselineParses(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_hotcalls.json"))
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	r, err := Parse(data)
	if err != nil {
		t.Fatalf("committed baseline does not parse: %v", err)
	}
	keys, _, _ := flatten(r)
	if len(keys) < 10 {
		t.Fatalf("baseline flattened to %d metrics, want >= 10", len(keys))
	}
	res := Compare(r, r, DefaultPolicy())
	if res.Failed() {
		t.Fatalf("baseline vs itself failed the gate: %s", res.Summary())
	}
}

func TestIdenticalRunsPass(t *testing.T) {
	base := fixtureReport()
	res := Compare(base, base, DefaultPolicy())
	if res.Failed() {
		t.Fatalf("identical runs failed: %s", res.Summary())
	}
	for _, d := range res.Deltas {
		if d.Class != Unchanged {
			t.Fatalf("%s classified %s, want unchanged", d.Key, d.Class)
		}
	}
}

// TestWarmHotCallSlowdownFailsGate is the acceptance test from the
// issue: inject a synthetic 10% slowdown into the warm-HotCall metric
// and assert the gate fails with a report naming that metric.
func TestWarmHotCallSlowdownFailsGate(t *testing.T) {
	base := fixtureReport()
	cand := fixtureReport()
	cand.Summary.HotCallMedianCycles *= 1.10 // +10%, beyond the 3% tolerance

	res := Compare(base, cand, DefaultPolicy())
	if !res.Failed() {
		t.Fatalf("10%% warm-HotCall slowdown passed the gate: %s", res.Summary())
	}
	regs := res.Regressions()
	if len(regs) != 1 {
		t.Fatalf("regressions = %d, want exactly 1: %+v", len(regs), regs)
	}
	d := regs[0]
	if d.Key != "summary/hotcall_median_cycles" {
		t.Fatalf("regressed metric = %q, want summary/hotcall_median_cycles", d.Key)
	}
	if d.Direction != LowerBetter || d.Class != Regressed {
		t.Fatalf("bad classification: %+v", d)
	}
	if d.ChangePct < 9.9 || d.ChangePct > 10.1 {
		t.Fatalf("change = %.2f%%, want ~+10%%", d.ChangePct)
	}

	var buf bytes.Buffer
	if err := res.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	report := buf.String()
	if !strings.Contains(report, "FAIL") {
		t.Fatalf("report lacks FAIL verdict:\n%s", report)
	}
	if !strings.Contains(report, "summary/hotcall_median_cycles") {
		t.Fatalf("report does not name the regressed metric:\n%s", report)
	}
	if !strings.Contains(report, "## Regressions") {
		t.Fatalf("report lacks a regressions section:\n%s", report)
	}
}

// TestDirectionAwareness checks both movement directions for both
// metric polarities.
func TestDirectionAwareness(t *testing.T) {
	base := fixtureReport()

	// Throughput drop regresses; throughput gain improves.
	cand := fixtureReport()
	cand.Experiments[1].Values[0].Got *= 0.90
	res := Compare(base, cand, DefaultPolicy())
	if got := res.Regressions(); len(got) != 1 || got[0].Key != "fig7/memcached hotcalls" {
		t.Fatalf("req/s drop not gated: %+v", got)
	}
	cand.Experiments[1].Values[0].Got = base.Experiments[1].Values[0].Got * 1.10
	res = Compare(base, cand, DefaultPolicy())
	if res.Failed() {
		t.Fatalf("req/s gain failed the gate: %s", res.Summary())
	}
	if imps := res.Improvements(); len(imps) != 1 || imps[0].Key != "fig7/memcached hotcalls" {
		t.Fatalf("req/s gain not classed improved: %+v", imps)
	}

	// Cycle drop improves; cycle growth regresses (already covered above).
	cand = fixtureReport()
	cand.Summary.HotCallMedianCycles *= 0.90
	res = Compare(base, cand, DefaultPolicy())
	if res.Failed() {
		t.Fatalf("cycle improvement failed the gate: %s", res.Summary())
	}
}

func TestToleranceAbsorbsNoise(t *testing.T) {
	base := fixtureReport()
	cand := fixtureReport()
	cand.Summary.HotCallMedianCycles *= 1.02 // +2%, inside the 3% default
	res := Compare(base, cand, DefaultPolicy())
	if res.Failed() {
		t.Fatalf("2%% drift failed the gate: %s", res.Summary())
	}
}

// TestLoadcurveOverride checks the glob override: loadcurve metrics get
// the looser 6% tolerance but keep their unit-derived direction.
func TestLoadcurveOverride(t *testing.T) {
	base := fixtureReport()
	cand := fixtureReport()
	cand.Experiments[2].Values[0].Got *= 0.95 // -5% req/s: inside 6%
	res := Compare(base, cand, DefaultPolicy())
	if res.Failed() {
		t.Fatalf("5%% loadcurve wobble failed the gate: %s", res.Summary())
	}
	cand.Experiments[2].Values[0].Got = base.Experiments[2].Values[0].Got * 0.90 // -10%: beyond 6%
	res = Compare(base, cand, DefaultPolicy())
	regs := res.Regressions()
	if len(regs) != 1 || regs[0].Key != "loadcurve/peak throughput" {
		t.Fatalf("10%% loadcurve drop not gated: %+v", regs)
	}
	if regs[0].TolerancePct != 6 {
		t.Fatalf("tolerance = %.1f, want 6 (override)", regs[0].TolerancePct)
	}
	if regs[0].Direction != HigherBetter {
		t.Fatalf("override flipped direction to %s", regs[0].Direction)
	}
}

// TestRemovedMetricGates: a metric that silently vanishes from the
// candidate must fail the gate.
func TestRemovedMetricGates(t *testing.T) {
	base := fixtureReport()
	cand := fixtureReport()
	cand.Experiments = cand.Experiments[:2] // drop loadcurve
	res := Compare(base, cand, DefaultPolicy())
	if !res.Failed() {
		t.Fatalf("removed metric passed the gate: %s", res.Summary())
	}
	regs := res.Regressions()
	if len(regs) != 1 || regs[0].Class != Removed || regs[0].Key != "loadcurve/peak throughput" {
		t.Fatalf("removed metric not gated: %+v", regs)
	}
}

// TestAddedMetricDoesNotGate: new coverage is welcome, not a failure.
func TestAddedMetricDoesNotGate(t *testing.T) {
	base := fixtureReport()
	cand := fixtureReport()
	cand.Experiments = append(cand.Experiments, bench.JSONExperiment{
		ID: "fig9", Values: []bench.JSONValue{{Name: "lighttpd hotcalls", Got: 61000, Unit: "req/s"}},
	})
	res := Compare(base, cand, DefaultPolicy())
	if res.Failed() {
		t.Fatalf("added metric failed the gate: %s", res.Summary())
	}
	if c := res.Counts(); c[Added] != 1 {
		t.Fatalf("added count = %d, want 1", c[Added])
	}
}

func TestRegressionsSortedWorstFirst(t *testing.T) {
	base := fixtureReport()
	cand := fixtureReport()
	cand.Summary.HotCallMedianCycles *= 1.05   // +5%
	cand.Summary.EcallWarmMedianCycles *= 1.50 // +50%
	res := Compare(base, cand, DefaultPolicy())
	regs := res.Regressions()
	if len(regs) < 2 {
		t.Fatalf("regressions = %d, want >= 2", len(regs))
	}
	if regs[0].Key != "summary/ecall_warm_median_cycles" {
		t.Fatalf("worst regression not first: %+v", regs[0])
	}
}

func TestZeroBaseValue(t *testing.T) {
	base := fixtureReport()
	base.Experiments[0].Values[0].Got = 0
	cand := fixtureReport()
	res := Compare(base, cand, DefaultPolicy())
	// A zero baseline yields ChangePct 0 → unchanged, never a div-by-zero.
	for _, d := range res.Deltas {
		if d.Key == "table1/Ecall (warm cache)" && d.Class != Unchanged {
			t.Fatalf("zero-base metric classified %s", d.Class)
		}
	}
}

func TestSanitizeCell(t *testing.T) {
	if got := sanitizeCell("a|b"); got != "a\\|b" {
		t.Fatalf("sanitizeCell = %q", got)
	}
}

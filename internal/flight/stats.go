package flight

import (
	"fmt"

	"hotcalls/internal/telemetry"
)

// csState is one callsite's accumulated statistics, fed by Digest.
// The histograms live in the recorder's private telemetry registry so
// they inherit the lock-free log2-bucket implementation and exemplar
// support.
type csState struct {
	sampled      uint64
	lastSubmitNS uint64
	lastTraceID  uint64
	prevArrivals uint64 // arrivals at last rate fold
	ewmaRate     float64
	ewmaValid    bool
	wastedSpin   float64 // attributed wasted responder polls
	cutoffEWMA   float64 // tail sampler's smoothed outlier cutoff, ns
	tailQuiet    int     // consecutive outlier-free digests while escalated

	service  *telemetry.Histogram // exec end - exec start, ns
	latency  *telemetry.Histogram // return - submit, ns
	interArr *telemetry.Histogram // gap between consecutive sampled submits, ns
}

func (r *Recorder) state(site int) *csState {
	for len(r.stats) <= site {
		r.stats = append(r.stats, nil)
	}
	st := r.stats[site]
	if st == nil {
		st = &csState{
			service:  r.reg.Histogram(fmt.Sprintf("flight_cs%d_service_ns", site)).EnableExemplars(),
			latency:  r.reg.Histogram(fmt.Sprintf("flight_cs%d_latency_ns", site)).EnableExemplars(),
			interArr: r.reg.Histogram(fmt.Sprintf("flight_cs%d_interarrival_ns", site)),
		}
		r.stats[site] = st
	}
	return st
}

// Digest folds all newly-closed records into the per-callsite stats
// table and advances the EWMA arrival rates and wasted-spin
// attribution.  It is the recorder's only mutating reader: serialised
// by the recorder mutex, driven by the monitor tick, the /debug/flight
// handler, or tests.  A ring whose oldest undigested record is still
// open stops there (per-requester completion is near-FIFO, so the next
// Digest picks it up); records overwritten before Digest reached them
// count as dropped.
func (r *Recorder) Digest() {
	if r == nil {
		return
	}
	b := r.bind.Load()
	if b == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	for i, rg := range b.rings {
		if i >= len(r.cursors) {
			break
		}
		cur := r.cursors[i]
		next := rg.next.Load()
		// Ring-capacity overrun: everything older than one ring's
		// worth is gone regardless of state.
		if span := uint64(len(rg.recs)); next-cur > span {
			r.droppedstale += next - span - cur
			cur = next - span
		}
		for cur < next {
			rec := &rg.recs[cur&rg.mask]
			s := rec.seq.Load()
			if s == 2*cur+1 {
				break // still open; resume here next Digest
			}
			if v, ok := rec.load(cur); ok {
				r.fold(v)
				r.digestedCount++
			} else {
				r.droppedstale++ // reused mid-read or already overwritten
			}
			cur++
		}
		r.cursors[i] = cur
	}
	r.foldRates()
	r.foldTail()
}

// fold accumulates one closed record into its callsite's statistics.
func (r *Recorder) fold(v RecordView) {
	st := r.state(v.Callsite)
	st.sampled++
	st.lastTraceID = v.TraceID
	if st.lastSubmitNS != 0 && v.SubmitNS > st.lastSubmitNS {
		// Sampled inter-arrival gap: with SampleEvery > 1 this is the
		// gap between sampled calls, a stable order-of-magnitude proxy
		// for burstiness rather than the exact inter-arrival law.
		st.interArr.Observe(v.SubmitNS - st.lastSubmitNS)
	}
	if v.SubmitNS != 0 {
		st.lastSubmitNS = v.SubmitNS
	}
	if v.TimedOut || v.Stopped {
		return // no service/latency signal in a cut-off call
	}
	if v.ExecEndNS >= v.ExecStartNS && v.ExecStartNS != 0 {
		st.service.ObserveExemplar(v.ExecEndNS-v.ExecStartNS, v.TraceID)
	}
	if v.ReturnNS >= v.SubmitNS && v.SubmitNS != 0 {
		st.latency.ObserveExemplar(v.ReturnNS-v.SubmitNS, v.TraceID)
	}
}

// foldRates advances every callsite's EWMA arrival rate from the exact
// lane counts and attributes the window's wasted responder spin
// (polls that found no work) across callsites by inverse arrival
// rate: a rare callsite that keeps a responder polling is charged more
// of the idle spin than a busy one that keeps it fed — exactly the
// signal the configless dispatcher needs to demote it.
func (r *Recorder) foldRates() {
	now := r.opts.Now()
	dtNS := now - r.lastDigestNS
	if r.lastDigestNS == 0 {
		// First digest: the window opened at New, not at some previous
		// fold.  Measuring it from the recorder's birth instead of
		// discarding it fixes the EWMA cold-start bias — the old
		// prime-and-return left every callsite at RateEWMA 0 until the
		// *second* digest, poisoning any rate consumer (the shadow
		// router's regret estimates most of all) at startup.
		dtNS = now - r.startNS
	}
	if dtNS == 0 {
		// Same-instant re-digest (Stats immediately after Digest lands
		// on the same monotonic nanosecond): fold nothing and leave
		// prevArrivals untouched, so the window's arrivals still count
		// toward the next real fold instead of being silently absorbed.
		return
	}
	r.lastDigestNS = now
	dt := float64(dtNS) / 1e9

	arrivals := r.arrivalsLocked()
	alpha := r.opts.EWMAAlpha
	type active struct {
		st *csState
		w  float64
	}
	var act []active
	var wSum float64
	for site, n := range arrivals {
		if n == 0 {
			continue
		}
		st := r.state(site)
		rate := float64(n-st.prevArrivals) / dt
		st.prevArrivals = n
		if !st.ewmaValid {
			st.ewmaRate = rate
			st.ewmaValid = true
		} else {
			st.ewmaRate = alpha*rate + (1-alpha)*st.ewmaRate
		}
		w := 1 / (st.ewmaRate + 1)
		act = append(act, active{st, w})
		wSum += w
	}

	if r.occSource == nil || wSum == 0 {
		return
	}
	polls, execs := r.occSource()
	dPolls := polls - r.prevPolls.Load()
	dExecs := execs - r.prevExecutes.Load()
	r.prevPolls.Store(polls)
	r.prevExecutes.Store(execs)
	if dPolls <= dExecs {
		return
	}
	wasted := float64(dPolls - dExecs)
	for _, a := range act {
		a.st.wastedSpin += wasted * a.w / wSum
	}
}

// arrivalsLocked sums the published per-callsite arrival counts across
// all shard lanes of the current binding, plus the baseline carried
// over from previously-bound fabrics.  Each lane's published count is
// exact at sample boundaries and otherwise lags the producer-private
// truth by at most SampleEvery-1.  Caller holds r.mu.
func (r *Recorder) arrivalsLocked() map[int]uint64 {
	out := make(map[int]uint64)
	for site, n := range r.baseArrivals {
		if n > 0 {
			out[site] = n
		}
	}
	b := r.bind.Load()
	if b == nil {
		if len(out) == 0 {
			return nil
		}
		return out
	}
	for shard := 0; shard < len(b.rings); shard++ {
		for site := 0; site < b.stride; site++ {
			if n := b.lanes[shard*b.stride+site].published.Load(); n > 0 {
				out[site] += n
			}
		}
	}
	return out
}

// bytesLocked is arrivalsLocked for published zero-copy payload-byte
// counts.  Caller holds r.mu.
func (r *Recorder) bytesLocked() map[int]uint64 {
	out := make(map[int]uint64)
	for site, n := range r.baseBytes {
		if n > 0 {
			out[site] = n
		}
	}
	b := r.bind.Load()
	if b == nil {
		if len(out) == 0 {
			return nil
		}
		return out
	}
	for shard := 0; shard < len(b.rings); shard++ {
		for site := 0; site < b.stride; site++ {
			if n := b.lanes[shard*b.stride+site].publishedBytes.Load(); n > 0 {
				out[site] += n
			}
		}
	}
	return out
}

// CallsiteStats is one callsite's live statistics — the stats-table
// row /debug/flight exports and the adaptive dispatcher will consume.
// Timeouts and Fallbacks are exact; Arrivals is counted on every call
// but published at sample boundaries, so it is exact when the lane
// pauses on a SampleEvery multiple and otherwise lags by at most
// SampleEvery-1 (see the package comment).  Distribution fields come
// from the 1-in-SampleEvery timeline samples.
type CallsiteStats struct {
	ID   int    `json:"id"`
	Name string `json:"name"`

	Arrivals  uint64 `json:"arrivals"`  // exact at sample boundaries
	Timeouts  uint64 `json:"timeouts"`  // exact
	Fallbacks uint64 `json:"fallbacks"` // exact
	Sampled   uint64 `json:"sampled"`

	// Bytes is the callsite's cumulative zero-copy payload byte count,
	// published like Arrivals (exact at sample boundaries).  Zero for
	// callsites that only move typed uint64 payloads.  The what-if
	// router's cost model divides this by Arrivals to separate per-call
	// from per-byte cycles.
	Bytes uint64 `json:"bytes,omitempty"`

	// Tail-sampler fields (zero unless ArmTailSampler was called).
	// Outliers is the exact count of retained outlier captures;
	// CutoffNS is the current adaptive latency cutoff (0 until the
	// first digest sets one); Escalated reports sample-every-call mode.
	Outliers  uint64 `json:"outliers,omitempty"`
	CutoffNS  uint64 `json:"cutoff_ns,omitempty"`
	Escalated bool   `json:"escalated,omitempty"`

	RateEWMA float64 `json:"rate_ewma_per_s"`

	ServiceP50NS  uint64 `json:"service_p50_ns"`
	ServiceP99NS  uint64 `json:"service_p99_ns"`
	LatencyP50NS  uint64 `json:"latency_p50_ns"`
	LatencyP99NS  uint64 `json:"latency_p99_ns"`
	InterArrP50NS uint64 `json:"interarrival_p50_ns"`

	// WastedSpin is this callsite's attributed share of responder
	// polls that found no work, accumulated across digest windows.
	WastedSpin float64 `json:"wasted_spin_polls"`

	// LastTraceID is the most recent sampled call's trace ID — an
	// exemplar handle resolvable against Records / /debug/flight.
	LastTraceID uint64 `json:"last_trace_id"`

	// ServiceExemplars links service-time histogram buckets to
	// concrete recent trace IDs (tail forensics).
	ServiceExemplars []telemetry.BucketExemplar `json:"service_exemplars,omitempty"`
}

// Stats digests any pending records and returns the per-callsite
// stats table, ordered by callsite ID.  Callsites that have never been
// called are omitted.
func (r *Recorder) Stats() []CallsiteStats {
	if r == nil {
		return nil
	}
	r.Digest()
	r.mu.Lock()
	defer r.mu.Unlock()
	arrivals := r.arrivalsLocked()
	bytes := r.bytesLocked()
	var out []CallsiteStats
	for site := 0; site < len(r.names); site++ {
		n := arrivals[site]
		to := r.timeouts[site%len(r.timeouts)].n.Load()
		fb := r.fallbacks[site%len(r.fallbacks)].n.Load()
		if n == 0 && to == 0 && fb == 0 {
			continue
		}
		cs := CallsiteStats{
			ID:        site,
			Name:      r.names[site],
			Arrivals:  n,
			Timeouts:  to,
			Fallbacks: fb,
			Bytes:     bytes[site],
		}
		if r.armed.Load() && site < len(r.outlierSeen) {
			cs.Outliers = r.outlierSeen[site].n.Load()
			cs.Escalated = r.escalated[site].Load() != 0
			if b := r.bind.Load(); b != nil && site < len(b.cutoffs) {
				if c := b.cutoffs[site].Load(); c != noCutoff {
					cs.CutoffNS = c
				}
			}
		}
		if site < len(r.stats) && r.stats[site] != nil {
			st := r.stats[site]
			svc := st.service.Snapshot()
			lat := st.latency.Snapshot()
			ia := st.interArr.Snapshot()
			cs.Sampled = st.sampled
			cs.RateEWMA = st.ewmaRate
			cs.ServiceP50NS = svc.Quantile(0.50)
			cs.ServiceP99NS = svc.Quantile(0.99)
			cs.LatencyP50NS = lat.Quantile(0.50)
			cs.LatencyP99NS = lat.Quantile(0.99)
			cs.InterArrP50NS = ia.Quantile(0.50)
			cs.WastedSpin = st.wastedSpin
			cs.LastTraceID = st.lastTraceID
			cs.ServiceExemplars = svc.Exemplars
		}
		out = append(out, cs)
	}
	return out
}

package flight

import (
	"strings"
	"testing"
)

// TestEWMAWarmStart pins the cold-start fix: the very first digest must
// already carry a meaningful arrival rate, measured from the recorder's
// birth.  Before the fix the first window was consumed priming
// prevArrivals, every callsite reported RateEWMA 0 until the second
// digest, and any rate consumer (the shadow router's regret estimator)
// started poisoned.
func TestEWMAWarmStart(t *testing.T) {
	r, clk := newTestRecorder(t, 1, Options{SampleEvery: 1})
	cs := r.Callsite("warm.op")
	for i := 0; i < 500; i++ {
		play(r, clk, cs, 0, 0, 10)
	}
	clk.set(500_000_001) // 0.5s since the recorder's birth at t=1
	stats := r.Stats()   // first digest ever
	if len(stats) != 1 {
		t.Fatalf("stats rows = %d, want 1", len(stats))
	}
	if got := stats[0].RateEWMA; got < 900 || got > 1100 {
		t.Fatalf("first-digest RateEWMA = %.1f, want ~1000/s (cold-start bias)", got)
	}
}

// TestEWMASameInstantRedigest pins the other half of the cold-start
// audit: a re-digest landing on the same monotonic nanosecond (Stats
// right after Digest) must not fold a zero-length window — and, in
// particular, must not absorb the arrivals since the last real fold
// into prevArrivals, which would silently drop them from the next
// window's rate.
func TestEWMASameInstantRedigest(t *testing.T) {
	r, clk := newTestRecorder(t, 1, Options{SampleEvery: 1, EWMAAlpha: 0.5})
	cs := r.Callsite("op")

	for i := 0; i < 100; i++ {
		play(r, clk, cs, 0, 0, 10)
	}
	clk.set(1_000_000_001)
	r.Digest() // window 1: ~100/s
	r.Digest() // same instant: must be a rate no-op

	for i := 0; i < 100; i++ {
		play(r, clk, cs, 0, 0, 10)
	}
	clk.set(2_000_000_001)
	r.Digest() // window 2: ~100/s again

	stats := r.Stats()
	if len(stats) != 1 {
		t.Fatalf("stats rows = %d, want 1", len(stats))
	}
	// Healthy: EWMA stays ~100.  If the same-instant digest absorbed
	// window 2's arrivals, window 2 folds as ~0/s and the 0.5-alpha
	// EWMA collapses to ~50.
	if got := stats[0].RateEWMA; got < 90 || got > 110 {
		t.Fatalf("RateEWMA after same-instant re-digest = %.1f, want ~100/s", got)
	}
}

// TestWritePrometheus checks the scrapeable per-callsite surface: every
// family the regret estimator consumes (arrival rate, tail latency,
// wasted spin) appears as a labelled series.
func TestWritePrometheus(t *testing.T) {
	r, clk := newTestRecorder(t, 1, Options{SampleEvery: 1})
	get := r.Callsite("mc.get")
	set := r.Callsite("mc.set")
	for i := 0; i < 8; i++ {
		play(r, clk, get, 0, 0, 1000)
	}
	play(r, clk, set, 0, 0, 2000)
	clk.set(1_000_000_001)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE flight_callsite_arrivals_total counter",
		`flight_callsite_arrivals_total{callsite="mc.get"} 8`,
		`flight_callsite_arrivals_total{callsite="mc.set"} 1`,
		"# TYPE flight_callsite_arrival_rate_per_s gauge",
		`flight_callsite_latency_p99_ns{callsite="mc.get"}`,
		`flight_callsite_wasted_spin_polls_total{callsite="mc.set"}`,
		"# TYPE flight_callsite_service_p50_ns gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	var empty *Recorder
	if err := empty.WritePrometheus(&sb); err != nil {
		t.Fatalf("nil recorder: %v", err)
	}
}

package flight

import (
	"fmt"
	"strings"
)

// RenderText renders the live per-callsite stats table as aligned
// plain text — the ?format=text view of /debug/flight and the
// hotbench -flight summary.
func (r *Recorder) RenderText() string {
	if r == nil {
		return "flight: disabled\n"
	}
	stats := r.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "flight: %d callsites, %d records digested, %d dropped\n",
		len(stats), r.Digested(), r.Dropped())
	if len(stats) == 0 {
		b.WriteString("(no calls recorded)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-20s %10s %10s %10s %10s %10s %10s %8s %8s %10s %14s\n",
		"callsite", "calls", "rate/s", "p50 svc", "p99 svc", "p50 lat", "p99 lat",
		"timeout", "fallbk", "waste", "last trace")
	for _, cs := range stats {
		fmt.Fprintf(&b, "%-20s %10d %10.1f %10s %10s %10s %10s %8d %8d %10.0f 0x%012x\n",
			cs.Name, cs.Arrivals, cs.RateEWMA,
			FmtNS(cs.ServiceP50NS), FmtNS(cs.ServiceP99NS),
			FmtNS(cs.LatencyP50NS), FmtNS(cs.LatencyP99NS),
			cs.Timeouts, cs.Fallbacks, cs.WastedSpin, cs.LastTraceID)
	}
	if r.TailArmed() {
		fmt.Fprintf(&b, "tail sampler: armed\n")
		fmt.Fprintf(&b, "%-20s %10s %10s %10s\n", "callsite", "outliers", "cutoff", "escalated")
		for _, cs := range stats {
			if cs.Outliers == 0 && !cs.Escalated && cs.CutoffNS == 0 {
				continue
			}
			esc := "-"
			if cs.Escalated {
				esc = "yes"
			}
			fmt.Fprintf(&b, "%-20s %10d %10s %10s\n",
				cs.Name, cs.Outliers, FmtNS(cs.CutoffNS), esc)
		}
	}
	return b.String()
}

// FmtNS renders a nanosecond duration with a human unit ("-" for
// zero).  Shared by this table and the monitor's callsite section.
func FmtNS(ns uint64) string {
	switch {
	case ns == 0:
		return "-"
	case ns < 1_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}

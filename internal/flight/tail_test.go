package flight

import (
	"sync"
	"testing"
)

// playComplete is play routed through the Complete return path, so the
// armed tail sampler sees the call's latency.
func playComplete(r *Recorder, clk *fakeClock, cs Callsite, shard, responder int, svcNS uint64) *Record {
	rec := r.Begin(cs, shard, 7)
	rec.Context(1, 1, 0)
	clk.advance(100)
	rec.Claim(responder, r.Now())
	clk.advance(50)
	rec.ExecStart(r.Now())
	clk.advance(svcNS)
	rec.ExecEnd(r.Now())
	clk.advance(100)
	if rec != nil {
		r.Complete(rec)
	}
	return rec
}

func TestTimeoutEscalatesAndRetainsOutliers(t *testing.T) {
	r, clk := newTestRecorder(t, 1, Options{SampleEvery: 256})
	r.ArmTailSampler(TailOptions{})
	cs := r.Callsite("op")

	// First call is unsampled at SampleEvery=256 …
	rec := r.Begin(cs, 0, 0)
	if rec != nil {
		t.Fatal("first call should be unsampled at SampleEvery=256")
	}
	clk.advance(500)
	// … but its timeout is still retained (synthesized partial record)
	// and escalates the callsite to sample-every-call.
	r.Timeout(cs, 0, rec)

	rec2 := r.Begin(cs, 0, 0)
	if rec2 == nil {
		t.Fatal("escalated callsite should sample every call")
	}
	clk.advance(700)
	r.Timeout(cs, 0, rec2)

	out := r.Outliers(8)
	if len(out) != 2 {
		t.Fatalf("outliers = %d, want 2", len(out))
	}
	// Synthesized record first (submit 0), complete one second.
	if out[0].SubmitNS != 0 || !out[0].TimedOut || out[0].Callsite != cs.ID() {
		t.Fatalf("synthesized outlier wrong: %+v", out[0])
	}
	if out[1].SubmitNS == 0 || !out[1].TimedOut {
		t.Fatalf("escalated timeout should carry a full timeline: %+v", out[1])
	}

	stats := r.Stats()
	if len(stats) != 1 || stats[0].Outliers != 2 || !stats[0].Escalated {
		t.Fatalf("stats = %+v, want 2 outliers escalated", stats)
	}
	if r.OutlierCount(cs.ID()) != 2 {
		t.Fatalf("OutlierCount = %d, want 2", r.OutlierCount(cs.ID()))
	}
}

func TestQuietDigestsDeescalate(t *testing.T) {
	r, clk := newTestRecorder(t, 1, Options{SampleEvery: 256})
	r.ArmTailSampler(TailOptions{QuietDigests: 2})
	cs := r.Callsite("op")

	rec := r.Begin(cs, 0, 0)
	clk.advance(500)
	r.Timeout(cs, 0, rec)
	if r.escalated[cs.ID()].Load() == 0 {
		t.Fatal("timeout should escalate")
	}
	r.Digest() // sees the new outlier: not a quiet digest
	r.Digest() // quiet 1
	if r.escalated[cs.ID()].Load() == 0 {
		t.Fatal("one quiet digest must not de-escalate at QuietDigests=2")
	}
	r.Digest() // quiet 2 -> de-escalate
	if r.escalated[cs.ID()].Load() != 0 {
		t.Fatal("two quiet digests should de-escalate")
	}
	// Back to uniform sampling: next arrival is not a stride multiple.
	if rec := r.Begin(cs, 0, 0); rec != nil {
		t.Fatal("de-escalated callsite should be back to 1-in-256")
	}
}

func TestAdaptiveCutoffCapturesLatencyOutliers(t *testing.T) {
	r, clk := newTestRecorder(t, 1, Options{SampleEvery: 1, EWMAAlpha: 1})
	r.ArmTailSampler(TailOptions{
		Quantile:      0.5,
		Multiplier:    2,
		MinCutoffNS:   1,
		EscalateAfter: 2,
	})
	cs := r.Callsite("op")

	// Before any digest the cutoff is disabled: nothing is an outlier.
	for i := 0; i < 8; i++ {
		playComplete(r, clk, cs, 0, 0, 1000) // latency 1250ns
	}
	if n := len(r.Outliers(16)); n != 0 {
		t.Fatalf("outliers before first digest = %d, want 0", n)
	}
	r.Digest() // folds the p50, publishes cutoff ~2*p50
	cut := r.Stats()[0].CutoffNS
	if cut == 0 || cut > 100_000 {
		t.Fatalf("cutoff = %d, want ~2x the p50 latency bucket", cut)
	}

	// Normal calls stay below the cutoff.
	playComplete(r, clk, cs, 0, 0, 1000)
	if n := len(r.Outliers(16)); n != 0 {
		t.Fatalf("normal-latency call captured as outlier (cutoff %d)", cut)
	}

	// A straggler above the cutoff is retained…
	playComplete(r, clk, cs, 0, 0, 1_000_000)
	out := r.Outliers(16)
	if len(out) != 1 || out[0].TimedOut {
		t.Fatalf("straggler not captured: %+v", out)
	}
	if lat := out[0].ReturnNS - out[0].SubmitNS; lat < uint64(cut) {
		t.Fatalf("captured latency %d below cutoff %d", lat, cut)
	}
	// Escalation checks read the flag directly: Stats() would digest,
	// and a digest closes the escalation window being tested.
	if r.escalated[cs.ID()].Load() != 0 {
		t.Fatal("one straggler must not escalate at EscalateAfter=2")
	}
	// …and the second within the same digest window escalates.
	playComplete(r, clk, cs, 0, 0, 1_000_000)
	if r.escalated[cs.ID()].Load() == 0 {
		t.Fatal("second straggler should escalate")
	}
}

func TestEscalationSurvivesRebind(t *testing.T) {
	r, clk := newTestRecorder(t, 1, Options{SampleEvery: 256})
	r.ArmTailSampler(TailOptions{})
	cs := r.Callsite("op")
	r.Timeout(cs, 0, nil)
	_ = clk

	r.Bind(2) // new fabric: escalation must carry over
	if rec := r.Begin(cs, 1, 0); rec == nil {
		t.Fatal("escalated callsite should stay escalated across Bind")
	}
}

func TestDisarmResets(t *testing.T) {
	r, clk := newTestRecorder(t, 1, Options{SampleEvery: 256})
	r.ArmTailSampler(TailOptions{})
	cs := r.Callsite("op")
	r.Timeout(cs, 0, nil)
	_ = clk
	if !r.TailArmed() {
		t.Fatal("TailArmed after arm = false")
	}
	r.DisarmTailSampler()
	if r.TailArmed() {
		t.Fatal("TailArmed after disarm = true")
	}
	if rec := r.Begin(cs, 0, 0); rec != nil {
		t.Fatal("disarm should de-escalate back to uniform sampling")
	}
	// Disarmed timeouts still count exactly, but are not retained.
	before := len(r.Outliers(16))
	r.Timeout(cs, 0, nil)
	if got := len(r.Outliers(16)); got != before {
		t.Fatalf("disarmed timeout captured an outlier (%d -> %d)", before, got)
	}
}

// TestTailConcurrentCaptureAndRead drives captures, digests, and
// outlier reads concurrently; meaningful under -race.
func TestTailConcurrentCaptureAndRead(t *testing.T) {
	r, clk := newTestRecorder(t, 2, Options{SampleEvery: 1})
	r.ArmTailSampler(TailOptions{MinCutoffNS: 1, EscalateAfter: 1})
	cs := r.Callsite("op")

	var wg sync.WaitGroup
	for shard := 0; shard < 2; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if i%50 == 49 {
					rec := r.Begin(cs, shard, 0)
					clk.advance(10)
					r.Timeout(cs, shard, rec)
					continue
				}
				playComplete(r, clk, cs, shard, 0, 100)
			}
		}(shard)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.Digest()
			r.Outliers(64)
			r.Stats()
		}
	}()
	wg.Wait()
	if r.OutlierCount(cs.ID()) == 0 {
		t.Fatal("concurrent run captured no outliers")
	}
}

package flight

import (
	"fmt"
	"io"
)

// WritePrometheus writes the per-callsite stats table as Prometheus
// exposition text: one labelled series per callsite per family, so the
// arrival rate, tail latency, and wasted-spin attribution that drive
// the shadow router's regret signal are scrapeable instead of being
// reachable only through /debug/flight.  It digests pending records
// first (via Stats) and emits families in a fixed order with callsites
// ordered by ID, keeping the output deterministic for fixed inputs.
// monitor.Mux appends this block to the /metrics exposition.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	stats := r.Stats()
	if len(stats) == 0 {
		return nil
	}
	families := []struct {
		name, typ string
		value     func(cs CallsiteStats) string
	}{
		{"flight_callsite_arrivals_total", "counter",
			func(cs CallsiteStats) string { return fmt.Sprintf("%d", cs.Arrivals) }},
		{"flight_callsite_timeouts_total", "counter",
			func(cs CallsiteStats) string { return fmt.Sprintf("%d", cs.Timeouts) }},
		{"flight_callsite_fallbacks_total", "counter",
			func(cs CallsiteStats) string { return fmt.Sprintf("%d", cs.Fallbacks) }},
		{"flight_callsite_sampled_total", "counter",
			func(cs CallsiteStats) string { return fmt.Sprintf("%d", cs.Sampled) }},
		{"flight_callsite_bytes_total", "counter",
			func(cs CallsiteStats) string { return fmt.Sprintf("%d", cs.Bytes) }},
		{"flight_callsite_outliers_total", "counter",
			func(cs CallsiteStats) string { return fmt.Sprintf("%d", cs.Outliers) }},
		{"flight_callsite_arrival_rate_per_s", "gauge",
			func(cs CallsiteStats) string { return fmt.Sprintf("%g", cs.RateEWMA) }},
		{"flight_callsite_service_p50_ns", "gauge",
			func(cs CallsiteStats) string { return fmt.Sprintf("%d", cs.ServiceP50NS) }},
		{"flight_callsite_service_p99_ns", "gauge",
			func(cs CallsiteStats) string { return fmt.Sprintf("%d", cs.ServiceP99NS) }},
		{"flight_callsite_latency_p50_ns", "gauge",
			func(cs CallsiteStats) string { return fmt.Sprintf("%d", cs.LatencyP50NS) }},
		{"flight_callsite_latency_p99_ns", "gauge",
			func(cs CallsiteStats) string { return fmt.Sprintf("%d", cs.LatencyP99NS) }},
		{"flight_callsite_wasted_spin_polls_total", "counter",
			func(cs CallsiteStats) string { return fmt.Sprintf("%g", cs.WastedSpin) }},
	}
	for _, f := range families {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, cs := range stats {
			// %q covers the exposition format's label escapes
			// (backslash, quote, newline).
			if _, err := fmt.Fprintf(w, "%s{callsite=%q} %s\n",
				f.name, cs.Name, f.value(cs)); err != nil {
				return err
			}
		}
	}
	return nil
}

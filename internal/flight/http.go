package flight

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Content types shared by the observability handlers (flight, monitor,
// incident), so every endpoint labels its payload explicitly and
// consistently.
const (
	ContentTypeJSON = "application/json; charset=utf-8"
	ContentTypeText = "text/plain; charset=utf-8"
)

// flightDump is the JSON document /debug/flight serves: the stats
// table plus a causal window of recent records — and, with the tail
// sampler armed, the retained outlier records — enough to reconstruct
// individual call timelines and resolve exemplar trace IDs.
type flightDump struct {
	Callsites []CallsiteStats `json:"callsites"`
	Records   []RecordView    `json:"records"`
	Outliers  []RecordView    `json:"outliers,omitempty"`
	TailArmed bool            `json:"tail_armed,omitempty"`
	Digested  uint64          `json:"digested"`
	Dropped   uint64          `json:"dropped"`
}

// Handler serves the flight recorder at /debug/flight:
//
//	GET /debug/flight              JSON stats table + recent records
//	GET /debug/flight?format=json  same, explicitly
//	GET /debug/flight?format=text  RenderText live table
//	GET /debug/flight?format=trace Chrome trace_event JSON of the window
//	    &records=N                 window size (default 64)
//
// Unknown formats get 400.  Every request digests pending records
// first, so the view is current.  Safe on a nil recorder (serves an
// empty document).
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		max := 64
		if s := req.URL.Query().Get("records"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				max = v
			}
		}
		switch req.URL.Query().Get("format") {
		case "text":
			w.Header().Set("Content-Type", ContentTypeText)
			_, _ = w.Write([]byte(r.RenderText()))
		case "trace":
			w.Header().Set("Content-Type", ContentTypeJSON)
			r.Digest()
			_ = r.WriteChromeTrace(w, max)
		case "", "json":
			w.Header().Set("Content-Type", ContentTypeJSON)
			dump := flightDump{
				Callsites: r.Stats(), // digests first
				Records:   r.Records(max),
				Outliers:  r.Outliers(max),
				TailArmed: r.TailArmed(),
				Digested:  r.Digested(),
				Dropped:   r.Dropped(),
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(dump)
		default:
			http.Error(w, "unknown format (want json, text, or trace)", http.StatusBadRequest)
		}
	})
}

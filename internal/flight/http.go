package flight

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// flightDump is the JSON document /debug/flight serves: the stats
// table plus a causal window of recent records, enough to reconstruct
// individual call timelines and resolve exemplar trace IDs.
type flightDump struct {
	Callsites []CallsiteStats `json:"callsites"`
	Records   []RecordView    `json:"records"`
	Digested  uint64          `json:"digested"`
	Dropped   uint64          `json:"dropped"`
}

// Handler serves the flight recorder at /debug/flight:
//
//	GET /debug/flight              JSON stats table + recent records
//	GET /debug/flight?format=text  RenderText live table
//	GET /debug/flight?format=trace Chrome trace_event JSON of the window
//	    &records=N                 window size (default 64)
//
// Every request digests pending records first, so the view is current.
// Safe on a nil recorder (serves an empty document).
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		max := 64
		if s := req.URL.Query().Get("records"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				max = v
			}
		}
		switch req.URL.Query().Get("format") {
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(r.RenderText()))
		case "trace":
			w.Header().Set("Content-Type", "application/json")
			r.Digest()
			_ = r.WriteChromeTrace(w, max)
		default:
			w.Header().Set("Content-Type", "application/json")
			dump := flightDump{
				Callsites: r.Stats(), // digests first
				Records:   r.Records(max),
				Digested:  r.Digested(),
				Dropped:   r.Dropped(),
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(dump)
		}
	})
}

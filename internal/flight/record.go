package flight

import "sync/atomic"

// Record flags (low 16 bits of meta).
const (
	flagTimeout uint64 = 1 << iota
	flagStopped
)

// Record is one sampled call's timeline cell.  All fields are atomics
// guarded by a generation-encoded seqlock:
//
//	seq = 2*gen+1  while the record is open (being written)
//	seq = 2*gen+2  once closed (final for that generation)
//
// where gen is the ring's global allocation index for this slot.  A
// reader expecting generation g loads seq, rejects anything but
// 2*g+2, copies the fields, and re-checks seq — an unchanged seq
// proves the copy is neither torn nor a wrapped-around reuse, because
// reuse restamps seq with a strictly larger generation.  Writers never
// block and never retry.
//
// Field packing (writer side):
//
//	meta: callsite<<48 | shard<<32 | (responder+1)<<16 | flags
//	ctx:  depth<<32 | live<<24 | sleepers<<16 | callID
//
// The record is padded to two cache lines so neighbouring ring slots
// never false-share under the x86 line-pair prefetcher.
type Record struct {
	seq       atomic.Uint64
	trace     atomic.Uint64
	meta      atomic.Uint64
	ctx       atomic.Uint64
	submit    atomic.Uint64
	claim     atomic.Uint64
	execStart atomic.Uint64
	execEnd   atomic.Uint64
	ret       atomic.Uint64
	bytes     atomic.Uint64
	_         [2*cacheLine - 80]byte
}

// TraceID returns the record's trace ID (0 on nil), the value exemplar
// annotations and Chrome events carry.
func (rec *Record) TraceID() uint64 {
	if rec == nil {
		return 0
	}
	return rec.trace.Load()
}

// orU64 is atomic.Uint64.Or for the go1.22 language level the module
// pins: a CAS loop, so concurrent responder-identity and flag updates
// both survive.
func orU64(a *atomic.Uint64, bits uint64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, old|bits) {
			return
		}
	}
}

// Context stamps the submit-time pool state — queue depth, live
// responders, sleeping responders — onto the record.  Split out of
// Begin so the (shared, possibly contended) pool gauges are only read
// for the 1-in-SampleEvery calls that actually carry a record.  Only
// the submitting requester writes ctx at this point, so a plain
// load-or-store pair suffices.  Nil-safe.
func (rec *Record) Context(depth, live, sleepers int) {
	if rec == nil {
		return
	}
	rec.ctx.Store(rec.ctx.Load() |
		uint64(uint16(depth))<<32 |
		uint64(uint8(live))<<24 |
		uint64(uint8(sleepers))<<16)
}

// SetBytes stamps the call's payload byte count (zero-copy segment
// total; 0 for plain uint64 calls).  Written by the submitting
// requester before the call is posted, like Context.  Nil-safe.
func (rec *Record) SetBytes(n uint64) {
	if rec == nil {
		return
	}
	rec.bytes.Store(n)
}

// Claim stamps the responder's slot-claim time and identity.  Nil-safe.
func (rec *Record) Claim(responder int, now uint64) {
	if rec == nil {
		return
	}
	orU64(&rec.meta, uint64(responder+1)<<16)
	rec.claim.Store(now)
}

// ExecStart stamps the responder's handler-entry time.  Nil-safe.
func (rec *Record) ExecStart(now uint64) {
	if rec == nil {
		return
	}
	rec.execStart.Store(now)
}

// ExecEnd stamps the responder's handler-exit time.  Nil-safe.
func (rec *Record) ExecEnd(now uint64) {
	if rec == nil {
		return
	}
	rec.execEnd.Store(now)
}

// Return stamps the requester's wait-return time and closes the
// record.  Nil-safe.
func (rec *Record) Return(now uint64) {
	if rec == nil {
		return
	}
	rec.ret.Store(now)
	rec.seq.Add(1) // odd (open) -> even (closed); the publication store
}

// closeWith closes an abnormally-terminated record: flag it, stamp the
// end-of-life time, and publish.  Nil-safe so every error path can
// call it unconditionally.
func (rec *Record) closeWith(flag, now uint64) {
	if rec == nil {
		return
	}
	orU64(&rec.meta, flag)
	rec.ret.Store(now)
	rec.seq.Add(1)
}

// ring is one requester shard's record ring.  next counts total
// allocations (the generation sequence); only the owning requester
// writes it, but readers load it to find the live window, so it is
// atomic.  Padded so adjacent shards' rings never false-share.
type ring struct {
	recs []Record
	mask uint64
	_    [cacheLine - 32]byte
	next atomic.Uint64
	_    [cacheLine - 8]byte
}

func newRing(capacity int) *ring {
	return &ring{recs: make([]Record, capacity), mask: uint64(capacity - 1)}
}

// open claims the next ring slot for generation gen, restamps its
// seqlock as open, and clears the responder-written fields.  Only the
// shard's owning requester calls open, so next needs no CAS.
func (r *ring) open() (*Record, uint64) {
	gen := r.next.Load()
	rec := &r.recs[gen&r.mask]
	// The open store is first: a concurrent reader of the previous
	// generation sees the seq change and rejects its copy.
	rec.seq.Store(2*gen + 1)
	rec.claim.Store(0)
	rec.execStart.Store(0)
	rec.execEnd.Store(0)
	rec.ret.Store(0)
	rec.bytes.Store(0)
	r.next.Store(gen + 1)
	return rec, gen
}

// openMP is open for rings with more than one producer — the outlier
// ring, whose writers are whichever goroutine hits the capture slow
// path (in the single-slot protocol that can be several requesters at
// once).  The CAS claims a generation exclusively; everything after is
// the claimed slot's private state, exactly as in open.  Slow path
// only: the per-call hot path never reaches a CAS.
func (r *ring) openMP() (*Record, uint64) {
	for {
		gen := r.next.Load()
		if r.next.CompareAndSwap(gen, gen+1) {
			rec := &r.recs[gen&r.mask]
			rec.seq.Store(2*gen + 1)
			rec.claim.Store(0)
			rec.execStart.Store(0)
			rec.execEnd.Store(0)
			rec.ret.Store(0)
			rec.bytes.Store(0)
			return rec, gen
		}
	}
}

// RecordView is a validated copy of one closed record, decoded for
// export.  ClaimNS/ExecStartNS/ExecEndNS are zero for calls that never
// reached the responder (timeout, stop).
type RecordView struct {
	TraceID  uint64 `json:"trace_id"`
	Callsite int    `json:"callsite"`
	Name     string `json:"name"`
	Shard    int    `json:"shard"`
	// Responder is the executing responder index, or -1 when the call
	// never got claimed.
	Responder int  `json:"responder"`
	CallID    int  `json:"call_id"`
	Depth     int  `json:"depth"`
	Live      int  `json:"live_responders"`
	Sleepers  int  `json:"sleeping_responders"`
	TimedOut  bool `json:"timed_out,omitempty"`
	Stopped   bool `json:"stopped,omitempty"`

	SubmitNS    uint64 `json:"submit_ns"`
	ClaimNS     uint64 `json:"claim_ns,omitempty"`
	ExecStartNS uint64 `json:"exec_start_ns,omitempty"`
	ExecEndNS   uint64 `json:"exec_end_ns,omitempty"`
	ReturnNS    uint64 `json:"return_ns"`

	// Bytes is the call's zero-copy payload total (0 for plain calls).
	Bytes uint64 `json:"bytes,omitempty"`
}

// load copies the record, accepting only a closed generation-gen
// snapshot.  The double seq check rejects torn reads and wraparound
// reuse (see Record).
func (rec *Record) load(gen uint64) (RecordView, bool) {
	want := 2*gen + 2
	if rec.seq.Load() != want {
		return RecordView{}, false
	}
	v := RecordView{
		TraceID:     rec.trace.Load(),
		SubmitNS:    rec.submit.Load(),
		ClaimNS:     rec.claim.Load(),
		ExecStartNS: rec.execStart.Load(),
		ExecEndNS:   rec.execEnd.Load(),
		ReturnNS:    rec.ret.Load(),
		Bytes:       rec.bytes.Load(),
	}
	meta := rec.meta.Load()
	ctx := rec.ctx.Load()
	if rec.seq.Load() != want {
		return RecordView{}, false
	}
	v.Callsite = int(meta >> 48)
	v.Shard = int(meta >> 32 & 0xffff)
	v.Responder = int(meta>>16&0xffff) - 1
	v.TimedOut = meta&flagTimeout != 0
	v.Stopped = meta&flagStopped != 0
	v.Depth = int(ctx >> 32 & 0xffff)
	v.Live = int(ctx >> 24 & 0xff)
	v.Sleepers = int(ctx >> 16 & 0xff)
	v.CallID = int(ctx & 0xffff)
	return v, true
}

// Records returns up to max of the most recent closed records across
// all shards, oldest first by submit time.  The walk is lock-free
// seqlock reading: open, torn, and overwritten slots are simply
// skipped, so Records is safe to call at any time from any goroutine,
// including concurrently with the hot path.
func (r *Recorder) Records(max int) []RecordView {
	if r == nil {
		return nil
	}
	b := r.bind.Load()
	if b == nil {
		return nil
	}
	if max <= 0 {
		max = 64
	}
	var out []RecordView
	for _, rg := range b.rings {
		next := rg.next.Load()
		span := uint64(len(rg.recs))
		if next < span {
			span = next
		}
		for gen := next - span; gen < next; gen++ {
			if v, ok := rg.recs[gen&rg.mask].load(gen); ok {
				v.Name = r.CallsiteName(v.Callsite)
				out = append(out, v)
			}
		}
	}
	sortViews(out)
	if len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// sortViews orders views by submit time (insertion sort: windows are
// small and mostly sorted already, shard by shard).
func sortViews(v []RecordView) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j].SubmitNS < v[j-1].SubmitNS; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

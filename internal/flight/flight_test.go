package flight

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeClock is a deterministic injectable nanosecond clock.
type fakeClock struct{ ns atomic.Uint64 }

func (c *fakeClock) now() uint64      { return c.ns.Load() }
func (c *fakeClock) advance(d uint64) { c.ns.Add(d) }
func (c *fakeClock) set(v uint64)     { c.ns.Store(v) }

func newTestRecorder(t *testing.T, shards int, opts Options) (*Recorder, *fakeClock) {
	t.Helper()
	clk := &fakeClock{}
	clk.set(1) // non-zero epoch so "unstamped" (0) is distinguishable
	opts.Now = clk.now
	r := New(opts)
	r.Bind(shards)
	return r, clk
}

// play records one complete call timeline through the hot-path API.
func play(r *Recorder, clk *fakeClock, cs Callsite, shard, responder int, svcNS uint64) *Record {
	rec := r.Begin(cs, shard, 7)
	rec.Context(1, 1, 0)
	clk.advance(100)
	rec.Claim(responder, r.Now())
	clk.advance(50)
	rec.ExecStart(r.Now())
	clk.advance(svcNS)
	rec.ExecEnd(r.Now())
	clk.advance(100)
	rec.Return(r.Now())
	return rec
}

func TestCallsiteRegistration(t *testing.T) {
	r := New(Options{MaxCallsites: 3})
	if got := r.CallsiteName(0); got != UnlabelledName {
		t.Fatalf("callsite 0 = %q, want %q", got, UnlabelledName)
	}
	a := r.Callsite("a")
	b := r.Callsite("b")
	if a.ID() != 1 || b.ID() != 2 {
		t.Fatalf("ids = %d, %d; want 1, 2", a.ID(), b.ID())
	}
	if again := r.Callsite("a"); again != a {
		t.Fatalf("re-registration not idempotent: %v vs %v", again, a)
	}
	// Table full: falls back to unlabelled.
	if c := r.Callsite("c"); c.ID() != 0 {
		t.Fatalf("overflow callsite id = %d, want 0", c.ID())
	}
	var zero Callsite
	if zero.ID() != 0 {
		t.Fatal("zero callsite must be id 0")
	}
}

func TestSamplingAndExactArrivals(t *testing.T) {
	r, clk := newTestRecorder(t, 1, Options{SampleEvery: 4})
	cs := r.Callsite("op")
	sampled := 0
	for i := 0; i < 32; i++ {
		if rec := play(r, clk, cs, 0, 0, 10); rec != nil {
			sampled++
		}
	}
	if sampled != 8 {
		t.Fatalf("sampled %d of 32 at SampleEvery=4, want 8", sampled)
	}
	stats := r.Stats()
	if len(stats) != 1 {
		t.Fatalf("stats rows = %d, want 1", len(stats))
	}
	if stats[0].Arrivals != 32 {
		t.Fatalf("arrivals = %d, want 32 (exact despite sampling)", stats[0].Arrivals)
	}
	if stats[0].Sampled != 8 {
		t.Fatalf("sampled = %d, want 8", stats[0].Sampled)
	}
}

func TestCausalTimelineDigest(t *testing.T) {
	r, clk := newTestRecorder(t, 2, Options{SampleEvery: 1})
	get := r.Callsite("get")
	set := r.Callsite("set")

	play(r, clk, get, 0, 0, 1000)
	play(r, clk, set, 1, 1, 3000)

	views := r.Records(16)
	if len(views) != 2 {
		t.Fatalf("records = %d, want 2", len(views))
	}
	for _, v := range views {
		if !(v.SubmitNS < v.ClaimNS && v.ClaimNS < v.ExecStartNS &&
			v.ExecStartNS < v.ExecEndNS && v.ExecEndNS < v.ReturnNS) {
			t.Errorf("causal order violated: %+v", v)
		}
	}
	if views[0].Name != "get" || views[0].Responder != 0 || views[0].Shard != 0 {
		t.Errorf("first record decoded wrong: %+v", views[0])
	}
	if views[1].Name != "set" || views[1].Responder != 1 || views[1].Shard != 1 {
		t.Errorf("second record decoded wrong: %+v", views[1])
	}
	if views[0].CallID != 7 || views[0].Depth != 1 || views[0].Live != 1 {
		t.Errorf("context decoded wrong: %+v", views[0])
	}

	stats := r.Stats()
	byName := map[string]CallsiteStats{}
	for _, cs := range stats {
		byName[cs.Name] = cs
	}
	if svc := byName["set"].ServiceP50NS; svc < 2048 || svc > 4095 {
		t.Errorf("set service p50 = %d, want in 3000's log2 bucket", svc)
	}
	if byName["get"].LastTraceID == 0 {
		t.Error("get has no exemplar trace ID")
	}
	if len(byName["set"].ServiceExemplars) == 0 {
		t.Error("set service histogram has no exemplars")
	}
}

func TestTimeoutAndFallbackCounts(t *testing.T) {
	r, clk := newTestRecorder(t, 1, Options{SampleEvery: 1})
	cs := r.Callsite("op")
	rec := r.Begin(cs, 0, 0)
	clk.advance(500)
	r.Timeout(cs, 0, rec)
	r.Fallback(cs)
	r.Timeout(cs, 0, nil) // unsampled timeout still counts

	stats := r.Stats()
	if stats[0].Timeouts != 2 || stats[0].Fallbacks != 1 {
		t.Fatalf("timeouts=%d fallbacks=%d, want 2, 1", stats[0].Timeouts, stats[0].Fallbacks)
	}
	views := r.Records(4)
	if len(views) != 1 || !views[0].TimedOut {
		t.Fatalf("timeout record missing or unflagged: %+v", views)
	}
	if views[0].ExecStartNS != 0 || views[0].Responder != -1 {
		t.Fatalf("timed-out call should have no responder stamps: %+v", views[0])
	}
}

func TestRingWraparound(t *testing.T) {
	r, clk := newTestRecorder(t, 1, Options{SampleEvery: 1, RingRecords: 8})
	cs := r.Callsite("op")
	// 3x the ring without digesting: the oldest 16 records are lost.
	for i := 0; i < 24; i++ {
		play(r, clk, cs, 0, 0, 10)
	}
	r.Digest()
	if got := r.Digested(); got != 8 {
		t.Fatalf("digested = %d, want 8 (one ring's worth)", got)
	}
	if got := r.Dropped(); got != 16 {
		t.Fatalf("dropped = %d, want 16", got)
	}
	// Records sees only the live window, all valid.
	views := r.Records(64)
	if len(views) != 8 {
		t.Fatalf("live window = %d records, want 8", len(views))
	}
	// Digest resumes cleanly afterwards.
	play(r, clk, cs, 0, 0, 10)
	r.Digest()
	if got := r.Digested(); got != 9 {
		t.Fatalf("digested after resume = %d, want 9", got)
	}
}

func TestDigestStopsAtOpenRecord(t *testing.T) {
	r, clk := newTestRecorder(t, 1, Options{SampleEvery: 1, RingRecords: 8})
	cs := r.Callsite("op")
	open := r.Begin(cs, 0, 0) // left open
	play(r, clk, cs, 0, 0, 10)
	r.Digest()
	if got := r.Digested(); got != 0 {
		t.Fatalf("digested past an open record: %d", got)
	}
	open.Return(r.Now())
	r.Digest()
	if got := r.Digested(); got != 2 {
		t.Fatalf("digested after close = %d, want 2", got)
	}
}

// TestTornRecordDetection crosses a writer wrapping the ring with
// concurrent seqlock readers: every view a reader accepts must be
// internally consistent (monotonic timeline, correct callsite), which
// the generation-encoded seq guarantees.
func TestTornRecordDetection(t *testing.T) {
	clk := &fakeClock{}
	clk.set(1)
	r := New(Options{SampleEvery: 1, RingRecords: 4, Now: clk.now})
	r.Bind(1)
	cs := r.Callsite("op")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, v := range r.Records(16) {
					if v.ReturnNS < v.SubmitNS {
						t.Errorf("torn view escaped seqlock: %+v", v)
						return
					}
					if v.Name != "op" {
						t.Errorf("callsite mixed across generations: %+v", v)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		play(r, clk, cs, 0, 0, uint64(i%97))
	}
	close(stop)
	wg.Wait()
}

func TestEWMARateAndWasteAttribution(t *testing.T) {
	r, clk := newTestRecorder(t, 1, Options{SampleEvery: 1, EWMAAlpha: 0.5})
	hot := r.Callsite("hot")
	cold := r.Callsite("cold")

	var polls, execs atomic.Uint64
	r.SetOccupancySource(func() (uint64, uint64) { return polls.Load(), execs.Load() })

	r.Digest() // prime the rate window at t=1

	// Window: 1 second; hot arrives 1000x, cold once; the responders
	// poll 2000 times and execute 1001 — 999 wasted polls.
	for i := 0; i < 1000; i++ {
		play(r, clk, hot, 0, 0, 10)
	}
	play(r, clk, cold, 0, 0, 10)
	clk.set(1_000_000_001)
	polls.Store(2000)
	execs.Store(1001)
	r.Digest()

	byName := map[string]CallsiteStats{}
	for _, cs := range r.Stats() {
		byName[cs.Name] = cs
	}
	if h := byName["hot"].RateEWMA; h < 400 || h > 1100 {
		t.Errorf("hot rate EWMA = %.1f, want near 1000/s", h)
	}
	if c := byName["cold"].RateEWMA; c > 2 {
		t.Errorf("cold rate EWMA = %.1f, want near 1/s", c)
	}
	hotWaste, coldWaste := byName["hot"].WastedSpin, byName["cold"].WastedSpin
	if total := hotWaste + coldWaste; total < 998 || total > 1000 {
		t.Errorf("attributed waste = %.1f, want ~999", total)
	}
	if coldWaste <= hotWaste {
		t.Errorf("inverse-rate attribution inverted: cold %.1f <= hot %.1f", coldWaste, hotWaste)
	}
}

func TestRenderText(t *testing.T) {
	r, clk := newTestRecorder(t, 1, Options{SampleEvery: 1})
	cs := r.Callsite("mc.get")
	play(r, clk, cs, 0, 0, 1500)
	out := r.RenderText()
	for _, want := range []string{"callsite", "mc.get", "last trace", "µs"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderText missing %q:\n%s", want, out)
		}
	}
	var nilRec *Recorder
	if got := nilRec.RenderText(); !strings.Contains(got, "disabled") {
		t.Errorf("nil recorder RenderText = %q", got)
	}
}

func TestHandlerFormats(t *testing.T) {
	r, clk := newTestRecorder(t, 1, Options{SampleEvery: 1})
	cs := r.Callsite("op")
	play(r, clk, cs, 0, 0, 2000)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Callsites []CallsiteStats `json:"callsites"`
		Records   []RecordView    `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(dump.Callsites) != 1 || dump.Callsites[0].Name != "op" {
		t.Fatalf("JSON callsites = %+v", dump.Callsites)
	}
	if len(dump.Records) != 1 || dump.Records[0].ExecEndNS-dump.Records[0].ExecStartNS != 2000 {
		t.Fatalf("JSON records = %+v", dump.Records)
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/flight?format=trace")
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var rows, spans int
	for _, e := range trace.TraceEvents {
		switch e["ph"] {
		case "M":
			rows++
		case "X":
			spans++
		}
	}
	if rows < 2 || spans != 2 {
		t.Fatalf("chrome trace rows=%d spans=%d, want >=2 rows (requester+responder) and 2 spans", rows, spans)
	}
}

// TestHandlerContentTypes pins the debug endpoint contract: every
// format sets an explicit Content-Type and unknown formats are a 400,
// so dashboards and curl pipelines never have to sniff.
func TestHandlerContentTypes(t *testing.T) {
	r, clk := newTestRecorder(t, 1, Options{SampleEvery: 1})
	cs := r.Callsite("op")
	play(r, clk, cs, 0, 0, 2000)
	h := Handler(r)

	cases := []struct {
		query  string
		code   int
		ct     string
		within string
	}{
		{"", 200, ContentTypeJSON, `"callsites"`},
		{"?format=json", 200, ContentTypeJSON, `"callsites"`},
		{"?format=text", 200, ContentTypeText, "op"},
		{"?format=trace", 200, ContentTypeJSON, "traceEvents"},
		{"?format=yaml", 400, "", ""},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight"+c.query, nil))
		if rec.Code != c.code {
			t.Errorf("%q: status = %d, want %d", c.query, rec.Code, c.code)
			continue
		}
		if c.ct != "" && rec.Header().Get("Content-Type") != c.ct {
			t.Errorf("%q: content-type = %q, want %q", c.query, rec.Header().Get("Content-Type"), c.ct)
		}
		if c.within != "" && !strings.Contains(rec.Body.String(), c.within) {
			t.Errorf("%q: body missing %q", c.query, c.within)
		}
	}
}

func TestNilAndUnboundSafety(t *testing.T) {
	var r *Recorder
	if r.Begin(Callsite{}, 0, 0) != nil {
		t.Fatal("nil recorder Begin must return nil")
	}
	r.Digest()
	r.Stats()
	r.Records(4)
	r.Timeout(Callsite{}, 0, nil)
	r.Fallback(Callsite{})
	r.Stopped(nil)

	unbound := New(Options{})
	if unbound.Begin(Callsite{}, 0, 0) != nil {
		t.Fatal("unbound recorder Begin must return nil")
	}
	if unbound.Begin(Callsite{}, -1, 0) != nil {
		t.Fatal("negative shard must return nil")
	}

	var rec *Record
	rec.Claim(0, 1)
	rec.ExecStart(1)
	rec.ExecEnd(1)
	rec.Return(1)
	if rec.TraceID() != 0 {
		t.Fatal("nil record trace must be 0")
	}
}

// TestRebindAccumulatesArrivals moves one recorder across two fabrics
// (the hotbench -flight pattern: successive fixtures each SetFlight the
// same recorder) and checks the exact arrival totals keep accumulating
// and stay monotonic — Bind folds the outgoing binding's lane counts
// into a persistent baseline.
func TestRebindAccumulatesArrivals(t *testing.T) {
	r, clk := newTestRecorder(t, 2, Options{SampleEvery: 1})
	a := r.Callsite("fixture.a")
	for i := 0; i < 5; i++ {
		play(r, clk, a, 0, 0, 10)
	}
	for i := 0; i < 3; i++ {
		play(r, clk, a, 1, 0, 10)
	}
	r.Digest()

	// Second fixture: different shard count, a second callsite, and no
	// digest between rebind and the stats read.
	r.Bind(1)
	b := r.Callsite("fixture.b")
	for i := 0; i < 4; i++ {
		play(r, clk, a, 0, 0, 10)
	}
	for i := 0; i < 2; i++ {
		play(r, clk, b, 0, 0, 10)
	}

	want := map[string]uint64{"fixture.a": 12, "fixture.b": 2}
	stats := r.Stats()
	for _, cs := range stats {
		if n, ok := want[cs.Name]; ok {
			if cs.Arrivals != n {
				t.Errorf("%s arrivals = %d, want %d", cs.Name, cs.Arrivals, n)
			}
			delete(want, cs.Name)
		}
	}
	for name := range want {
		t.Errorf("callsite %q missing after rebind", name)
	}

	// A third rebind with zero traffic must not lose the baseline.
	r.Bind(4)
	for _, cs := range r.Stats() {
		if cs.Name == "fixture.a" && cs.Arrivals != 12 {
			t.Errorf("fixture.a arrivals after idle rebind = %d, want 12", cs.Arrivals)
		}
	}
}

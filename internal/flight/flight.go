// Package flight is the call fabric's flight recorder: an always-on,
// low-overhead observability layer that captures *per-callsite* causal
// call timelines and live statistics, the sensing layer the configless
// dispatcher direction ("SGX Switchless Calls Made Configless",
// PAPERS.md) requires.  Where internal/telemetry aggregates globally,
// the recorder answers the per-callsite questions: how often does this
// callsite arrive, how long does its handler run, how much responder
// spin does it waste, and what did a *specific recent call* look like
// from submit to return.
//
// Design constraints mirror the CallPool hot path it instruments:
//
//  1. The unsampled path is two or three uncontended atomic operations:
//     a per-(shard,callsite) arrival count and a power-of-two sampling
//     check.  No time is read, nothing is allocated.
//
//  2. Sampled calls take a record from a preallocated per-requester
//     ring (mirroring CallPool's padded-slot design) and stamp the
//     causal timeline — submit, slot claim, responder execute
//     start/end, wait return — as all-atomic fields guarded by a
//     generation-encoded seqlock, so concurrent readers detect both
//     torn reads and ring-wraparound reuse without ever blocking a
//     writer.  Zero allocation, no locks.
//
//  3. Folding records into per-callsite statistics (EWMA arrival rate,
//     inter-arrival / service-time / latency histograms with exemplar
//     trace IDs, wasted-spin attribution) happens off the hot path in
//     Digest, driven by the monitor tick or the /debug/flight handler.
//
// Timeout and fallback counts are exact (counted on every such
// outcome).  Arrivals are counted on every call in producer-private
// memory and published to readers on each sampled call, so the visible
// total is exact whenever a lane pauses on a multiple of SampleEvery
// and otherwise lags the truth by at most SampleEvery-1 — the price of
// keeping the per-call path free of LOCK-prefixed instructions.
// Timelines and latency distributions are 1-in-SampleEvery samples.
// The stats table (CallsiteStats) is the input contract the adaptive
// dispatcher will consume.
package flight

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hotcalls/internal/telemetry"
)

// cacheLine matches internal/core's padding granule.
const cacheLine = 64

// UnlabelledName is callsite 0, stamped on calls made through APIs that
// never registered a callsite (plain Call/Submit).
const UnlabelledName = "(unlabelled)"

// Callsite is a cheap registered-callsite handle, stamped on every call
// at Call/Submit time.  The zero value is the "(unlabelled)" callsite,
// so unannotated call paths still aggregate somewhere visible.
type Callsite struct{ id uint16 }

// ID returns the callsite's stable index in the recorder's stats table.
func (c Callsite) ID() int { return int(c.id) }

// DefaultSampleEvery is the zero-value Options sampling stride: 1
// timeline record per 256 calls per (shard, callsite) lane.
const DefaultSampleEvery = 256

// Options tunes a Recorder.  The zero value selects the defaults noted
// on each field.
type Options struct {
	// RingRecords is the per-requester record-ring capacity (default
	// 256, rounded up to a power of two).  When sampled calls outrun
	// Digest by a full ring, the oldest undigested records are
	// overwritten and counted as dropped.
	RingRecords int

	// SampleEvery records the timeline of every SampleEvery-th call per
	// (shard, callsite) lane (default 256, rounded up to a power of
	// two so the hot-path check is a mask, not a division).  1 records
	// every call and makes the visible arrival counts exact; larger
	// strides publish arrivals on sampled calls only (see the package
	// comment).  Timeout/fallback counts are exact regardless.  The
	// default keeps the amortized sampled-call cost (~4 clock reads,
	// ~10 seqlocked field stamps, and a ring-slot open — roughly 400ns
	// on a host with ~55ns clock reads) under 0.5% of a ~100ns fabric
	// call while still yielding thousands of timeline records per
	// second at fabric call rates.
	SampleEvery int

	// MaxCallsites bounds the stats table (default 64).  Registrations
	// beyond the bound fall back to the unlabelled callsite.
	MaxCallsites int

	// EWMAAlpha is the smoothing factor of the per-callsite arrival-
	// rate EWMA folded on each Digest (default 0.3).
	EWMAAlpha float64

	// Now is the monotonic nanosecond clock (default: nanoseconds
	// since New, via time.Since on the runtime's monotonic reading).
	// Injectable for deterministic tests.
	Now func() uint64
}

func (o *Options) fill() {
	if o.RingRecords <= 0 {
		o.RingRecords = 256
	}
	o.RingRecords = ceilPow2(o.RingRecords)
	if o.SampleEvery <= 0 {
		o.SampleEvery = DefaultSampleEvery
	}
	o.SampleEvery = ceilPow2(o.SampleEvery)
	if o.MaxCallsites <= 0 {
		o.MaxCallsites = 64
	}
	if o.EWMAAlpha <= 0 || o.EWMAAlpha > 1 {
		o.EWMAAlpha = 0.3
	}
	if o.Now == nil {
		base := time.Now()
		o.Now = func() uint64 { return uint64(time.Since(base)) }
	}
}

func ceilPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// lane is one (shard, callsite) arrival counter, padded so lanes of
// neighbouring callsites on the same shard never false-share.  local
// is written by
// the lane's single producer with plain loads and stores — on x86 even
// an atomic.Uint64.Store is an XCHG full barrier, ~10ns against a
// ~100ns fabric call, so the per-call count must be genuinely plain —
// and published to the atomic field readers use only on sampled calls,
// from Open.  Sampling fires on each SampleEvery-th arrival, so a
// publish happens exactly when the count reaches a stride multiple:
// totals are exact whenever traffic pauses at a multiple of
// SampleEvery (which is what tests arrange), and between boundaries
// readers lag the true count by at most SampleEvery-1.
//
// mask is the lane's effective sampling mask: SampleEvery-1 normally,
// 0 while the tail sampler has the callsite escalated (every call gets
// a timeline record).  It lives on the lane's own cache line, which
// Arrive already touches for the counter, so swapping the recorder-
// global mask for the per-lane one added no line to the hot path.  It
// is atomic because escalation is written from other goroutines
// (another shard's timeout path, the digest), but on x86 the load is a
// plain MOV — no LOCK prefix enters the unsampled path.
// localBytes/publishedBytes mirror the arrival pair for zero-copy
// payload bytes: AddBytes (called by the fabric's zero-copy post path,
// same single-producer contract) bumps the plain field, Open publishes
// it alongside the arrival count.  Plain-call lanes never touch either
// word, so the legacy hot path is unchanged.
type lane struct {
	local          uint64
	published      atomic.Uint64
	mask           atomic.Uint64
	localBytes     uint64
	publishedBytes atomic.Uint64
	_              [cacheLine - 40]byte
}

// binding is the recorder's per-fabric storage: one record ring per
// requester shard plus the shard×callsite arrival lanes.  It is
// published through an atomic pointer so Bind (fabric attach) is safe
// against concurrent Begin calls from an old binding.
type binding struct {
	rings []*ring
	lanes []lane // row-major: shard*stride + callsite
	sites int    // callsites per shard (MaxCallsites at bind time)

	// Tail-sampler storage (see tail.go).  outliers is the per-shard
	// outlier retention ring — timeout/fallback and over-cutoff calls
	// are copied here so they survive main-ring churn; cutoffs is the
	// binding-local per-callsite latency cutoff in ns (MaxUint64 until
	// the digest has folded enough samples to set one), read with one
	// plain load on the sampled return path.
	outliers []*ring
	cutoffs  []atomic.Uint64 // indexed by callsite ID, length stride

	// stride is sites rounded up to a power of two, so Arrive clamps a
	// foreign callsite ID with one AND (siteMask = stride-1) instead of
	// a compare-and-branch — the branch was the difference between the
	// always-on arrival path inlining into the fabric's post loop or
	// not.  IDs from this recorder are < sites by construction
	// (Callsite falls back to the unlabelled slot when the table is
	// full); only a Callsite minted by a different Recorder can reach
	// the mask, and it aliases into [0, stride) harmlessly.
	stride   int
	siteMask int
}

// Recorder is the flight recorder.  Create with New, attach to a
// fabric with Bind (CallPool.SetFlight does this), register callsites
// with Callsite, and read back through Stats, Records, RenderText, or
// the /debug/flight Handler.
type Recorder struct {
	opts       Options
	sampleMask uint64 // SampleEvery-1 (power of two)
	bind       atomic.Pointer[binding]

	// mu serialises callsite registration and Digest (the only
	// consumer of ring cursors and stats state).
	mu      sync.Mutex
	names   []string
	cursors []uint64 // per-ring digest position (generation index)
	stats   []*csState

	// baseArrivals carries the published per-callsite arrival counts of
	// previously-bound fabrics, folded in by Bind so the cumulative
	// totals stay monotonic across rebinds (the EWMA fold subtracts
	// consecutive cumulative readings).  Indexed by callsite ID.
	// baseBytes is the same baseline for published payload-byte counts.
	baseArrivals []uint64
	baseBytes    []uint64

	// Exact per-callsite outcome counters (indexed by callsite ID,
	// allocated to MaxCallsites at New).  Separate from the sampled
	// records so a timeout storm is visible even at SampleEvery=256.
	timeouts  []padCounter
	fallbacks []padCounter

	// Tail-sampler state (tail.go).  armed gates outlier capture and
	// escalation; outlierSeen counts captured outliers per callsite
	// (written on the capture slow path); seenAtDigest is the digest's
	// last reading, which lets the capture path decide escalation with
	// plain loads; escalated marks callsites currently sampling every
	// call.  tail holds the armed thresholds.
	armed        atomic.Bool
	tail         TailOptions
	outlierSeen  []padCounter
	seenAtDigest []atomic.Uint64
	escalated    []atomic.Uint32

	// Wasted-spin source (CallPool.Stats) and its last-digest totals.
	occSource     func() (polls, executes uint64)
	prevPolls     atomic.Uint64
	prevExecutes  atomic.Uint64
	startNS       uint64 // clock reading at New; the first rate window's base
	lastDigestNS  uint64
	droppedstale  uint64 // records overwritten before digest reached them
	digestedCount uint64

	reg *telemetry.Registry // backing store for per-callsite histograms
}

type padCounter struct {
	n atomic.Uint64
	_ [cacheLine - 8]byte
}

// New returns a recorder with the given options.
func New(opts Options) *Recorder {
	opts.fill()
	r := &Recorder{
		opts:         opts,
		sampleMask:   uint64(opts.SampleEvery - 1),
		names:        []string{UnlabelledName},
		timeouts:     make([]padCounter, opts.MaxCallsites),
		fallbacks:    make([]padCounter, opts.MaxCallsites),
		outlierSeen:  make([]padCounter, opts.MaxCallsites),
		seenAtDigest: make([]atomic.Uint64, opts.MaxCallsites),
		escalated:    make([]atomic.Uint32, opts.MaxCallsites),
		reg:          telemetry.New(),
	}
	r.tail = TailOptions{}
	r.tail.fill()
	r.startNS = r.opts.Now()
	return r
}

// Now returns the recorder's monotonic nanosecond clock reading.
func (r *Recorder) Now() uint64 { return r.opts.Now() }

// Callsite registers (or looks up) a named callsite and returns its
// handle.  Registration is idempotent by name; past MaxCallsites the
// unlabelled handle is returned so the caller keeps working, just
// without per-callsite attribution.
func (r *Recorder) Callsite(name string) Callsite {
	if r == nil || name == "" {
		return Callsite{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, n := range r.names {
		if n == name {
			return Callsite{uint16(i)}
		}
	}
	if len(r.names) >= r.opts.MaxCallsites {
		return Callsite{}
	}
	r.names = append(r.names, name)
	return Callsite{uint16(len(r.names) - 1)}
}

// CallsiteName resolves a callsite ID back to its registered name.
func (r *Recorder) CallsiteName(id int) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id < 0 || id >= len(r.names) {
		return fmt.Sprintf("callsite#%d", id)
	}
	return r.names[id]
}

// Bind attaches the recorder to a fabric of the given shard count,
// allocating the per-requester record rings and arrival lanes.  Called
// by CallPool.SetFlight (shards = requester count) and by the
// single-slot HotCall (shards = 1).  Re-binding replaces the timeline
// storage and resets digest cursors — one fabric per recorder at a
// time — but first folds the outgoing fabric's published arrival counts
// into a persistent baseline, so cumulative per-callsite totals keep
// accumulating (and stay monotonic for the EWMA fold) when a harness
// moves the recorder between successive fixtures.
func (r *Recorder) Bind(shards int) {
	if r == nil || shards <= 0 {
		return
	}
	stride := ceilPow2(r.opts.MaxCallsites)
	b := &binding{
		rings:    make([]*ring, shards),
		lanes:    make([]lane, shards*stride),
		sites:    r.opts.MaxCallsites,
		stride:   stride,
		siteMask: stride - 1,
		outliers: make([]*ring, shards),
		cutoffs:  make([]atomic.Uint64, stride),
	}
	for i := range b.rings {
		b.rings[i] = newRing(r.opts.RingRecords)
		b.outliers[i] = newRing(r.tail.OutlierRingRecords)
	}
	for shard := 0; shard < shards; shard++ {
		for site := 0; site < stride; site++ {
			m := r.sampleMask
			if site < len(r.escalated) && r.escalated[site].Load() != 0 {
				m = 0 // carry escalation across rebinds
			}
			b.lanes[shard*stride+site].mask.Store(m)
		}
	}
	for i := range b.cutoffs {
		b.cutoffs[i].Store(noCutoff)
	}
	r.mu.Lock()
	if old := r.bind.Load(); old != nil {
		for len(r.baseArrivals) < old.stride {
			r.baseArrivals = append(r.baseArrivals, 0)
		}
		for len(r.baseBytes) < old.stride {
			r.baseBytes = append(r.baseBytes, 0)
		}
		// The fold reads the published counts; a lane's unpublished
		// remainder (< SampleEvery calls since the last boundary) is
		// lost with the binding, like its undigested records.
		for shard := 0; shard < len(old.rings); shard++ {
			for site := 0; site < old.stride; site++ {
				ln := &old.lanes[shard*old.stride+site]
				r.baseArrivals[site] += ln.published.Load()
				r.baseBytes[site] += ln.publishedBytes.Load()
			}
		}
	}
	r.cursors = make([]uint64, shards)
	r.mu.Unlock()
	r.bind.Store(b)
}

// SetOccupancySource attaches the pool-wide (polls, executes) totals
// the wasted-spin attribution is derived from — CallPool.Stats for the
// fabric.  A nil source disables attribution.
func (r *Recorder) SetOccupancySource(src func() (polls, executes uint64)) {
	if r == nil {
		return
	}
	r.occSource = src
	if src != nil {
		p, e := src()
		r.prevPolls.Store(p)
		r.prevExecutes.Store(e)
	}
}

// Begin counts one arrival on the (shard, callsite) lane and, for 1 in
// SampleEvery arrivals, opens a timeline record with the submit time
// stamped.  Returns nil on unsampled calls, on an unbound recorder, or
// on a nil receiver — the caller stores the result unconditionally and
// stamps through nil-safe Record methods (including Record.Context for
// the submit-time pool state, so that state is only read on sampled
// calls).
//
// Single-producer contract: a given (shard) lane must be driven by one
// goroutine at a time — the shard's owning requester in the fabric, or
// the holder of the submission lock in the single-slot protocol.  That
// is what lets the unsampled path be a plain load+store count and a
// mask check, with no LOCK-prefixed instruction; the sampled path
// additionally takes a preallocated ring slot and reads the clock
// once.  Nothing allocates.
// Begin is Arrive + Open in one call, for callers off the nanosecond
// path (tests, the single-shot protocols).  The fabric's post loop uses
// the two-step form instead: Arrive is small enough to inline, so the
// 255-in-256 unsampled calls pay a handful of inlined instructions and
// no function call.
func (r *Recorder) Begin(cs Callsite, shard int, callID uint16) *Record {
	if r == nil || !r.Arrive(cs, shard) {
		return nil
	}
	return r.Open(cs, shard, callID)
}

// Arrive counts one arrival on the (shard, callsite) lane and reports
// whether this call is the 1-in-SampleEvery (every SampleEvery-th
// arrival) that gets a timeline record — the caller then invokes Open,
// which also publishes the count to readers.  This is the recorder's
// always-on cost, paid by every fabric call, so it is built from plain
// loads and stores only — the single-producer lane contract (see
// Begin's doc) makes that legal, and the lane comment explains the
// publication protocol that keeps readers race-free — and it must stay
// inside the compiler's inlining budget: one atomic-pointer load, one
// index, one plain counter bump, one mask test.
//
// Unlike the package's other methods, Arrive requires a non-nil
// receiver: the fabric tests its recorder field once per call anyway,
// and the nil check was inlining budget the hot path can't spare.
func (r *Recorder) Arrive(cs Callsite, shard int) bool {
	b := r.bind.Load()
	if b == nil || uint(shard) >= uint(len(b.rings)) {
		return false
	}
	ln := &b.lanes[shard*b.stride+(int(cs.id)&b.siteMask)]
	n := ln.local + 1
	ln.local = n
	return n&ln.mask.Load() == 0
}

// Open opens the timeline record for a call Arrive reported sampled.
// A rebind between Arrive and Open lands the record in the new
// fabric's ring — harmless, the record is just attributed to the
// binding that digests it.  Open also publishes the lane's arrival
// count (it runs on the lane's producer goroutine, right after the
// Arrive that sampled this call), so a lane is visible to readers from
// its first call.
func (r *Recorder) Open(cs Callsite, shard int, callID uint16) *Record {
	if r == nil {
		return nil
	}
	b := r.bind.Load()
	if b == nil || uint(shard) >= uint(len(b.rings)) {
		return nil
	}
	ln := &b.lanes[shard*b.stride+(int(cs.id)&b.siteMask)]
	ln.published.Store(ln.local)
	ln.publishedBytes.Store(ln.localBytes)
	return r.beginSampled(b, cs, shard, callID)
}

// AddBytes counts n zero-copy payload bytes on the (shard, callsite)
// lane.  Same single-producer contract and plain-store publication
// protocol as Arrive: the count is producer-private until the lane's
// next sampled call publishes it from Open, so the visible total is
// exact at sample boundaries and otherwise lags by at most the bytes of
// SampleEvery-1 calls.  Called by the fabric's zero-copy post path
// before Arrive, so the publication that samples this call includes it.
// Nil-safe (the zero-copy path is not the nanosecond-budget path).
func (r *Recorder) AddBytes(cs Callsite, shard int, n uint64) {
	if r == nil || n == 0 {
		return
	}
	b := r.bind.Load()
	if b == nil || uint(shard) >= uint(len(b.rings)) {
		return
	}
	b.lanes[shard*b.stride+(int(cs.id)&b.siteMask)].localBytes += n
}

// beginSampled opens a timeline record for a 1-in-SampleEvery call:
// takes the shard ring's next slot and stamps identity and submit time.
func (r *Recorder) beginSampled(b *binding, cs Callsite, shard int, callID uint16) *Record {
	rec, gen := b.rings[shard].open()
	trace := uint64(shard+1)<<40 | (gen & (1<<40 - 1))
	rec.trace.Store(trace)
	rec.meta.Store(uint64(cs.id)<<48 | uint64(shard&0xffff)<<32)
	rec.ctx.Store(uint64(callID))
	rec.submit.Store(r.opts.Now())
	return rec
}

// Timeout records a submission timeout for the callsite (exact count)
// and closes the open record, if any, with the timeout flag.  shard is
// the submitting requester's shard (0 for the single-slot protocols).
// When the tail sampler is armed the timeout is also retained in the
// shard's outlier ring — copied from the record if the call was
// sampled, otherwise synthesized as a partial record (submit 0,
// timeout flag, end-of-life stamp) so even unsampled timeouts leave
// forensic evidence — and the callsite escalates to sample-every-call
// immediately, so the *next* timeout carries a complete timeline.
func (r *Recorder) Timeout(cs Callsite, shard int, rec *Record) {
	if r == nil {
		return
	}
	r.timeouts[int(cs.id)%len(r.timeouts)].n.Add(1)
	now := r.opts.Now()
	rec.closeWith(flagTimeout, now)
	if !r.armed.Load() {
		return
	}
	b := r.bind.Load()
	if b == nil || uint(shard) >= uint(len(b.outliers)) {
		return
	}
	if rec != nil {
		r.captureOutlier(b, rec, shard)
	} else {
		dst, gen := b.outliers[shard].openMP()
		dst.trace.Store(0)
		dst.meta.Store(uint64(cs.id)<<48 | uint64(shard&0xffff)<<32 | flagTimeout)
		dst.ctx.Store(0)
		dst.submit.Store(0)
		dst.ret.Store(now)
		dst.seq.Store(2*gen + 2)
	}
	r.noteOutlier(int(cs.id)&b.siteMask, true)
}

// Stopped closes the open record, if any, marking the call as cut off
// by fabric shutdown.
func (r *Recorder) Stopped(rec *Record) {
	if r == nil {
		return
	}
	rec.closeWith(flagStopped, r.opts.Now())
}

// Fallback records that the callsite degraded to the SDK fallback path
// after a timeout (exact count).
func (r *Recorder) Fallback(cs Callsite) {
	if r == nil {
		return
	}
	r.fallbacks[int(cs.id)%len(r.fallbacks)].n.Add(1)
}

// Dropped returns how many sampled records were overwritten by ring
// wraparound before Digest reached them.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.droppedstale
}

// Digested returns how many closed records Digest has folded into the
// stats table.
func (r *Recorder) Digested() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.digestedCount
}

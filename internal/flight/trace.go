package flight

import (
	"fmt"
	"io"
	"strconv"

	"hotcalls/internal/telemetry"
)

// Chrome trace rows for flight events live on PID 1, separate from the
// telemetry exporter's cycle-domain rows on PID 0, because the two
// sources run on different time bases (wall-clock ns here, simulated
// cycles there).  Requester timelines get one row per shard, responder
// timelines one row per responder.
const (
	chromePID         = 1
	requesterRowBase  = 100
	responderRowBase  = 200
	unclaimedResponse = -1
)

// flightEvent is one trace_event record (numeric and string args mix,
// so args is a generic map).
type flightEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type flightMetadata struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args"`
}

func usec(ns uint64) float64 { return float64(ns) / 1e3 }

// ChromeEvents converts a causal window of up to max recent records
// into Chrome trace_event form: per-shard requester rows carry the
// full submit→return span of each call, per-responder rows carry the
// claim instant and the execute span.  The result is ready for
// telemetry.WriteChromeJSON, and composes with the telemetry
// exporter's rows (see internal/profile's merged export).
func (r *Recorder) ChromeEvents(max int) []any {
	return ChromeEventsForViews(r.Records(max))
}

// ChromeEventsForViews is ChromeEvents over an explicit set of record
// views — the incident-bundle viewer renders frozen (possibly
// long-dead) timelines through this, with no recorder in hand.
func ChromeEventsForViews(views []RecordView) []any {
	rows := map[int]string{}
	var out []any
	for _, v := range views {
		reqRow := requesterRowBase + v.Shard
		rows[reqRow] = "requester " + itoa(v.Shard)
		args := map[string]any{
			"trace_id": hex(v.TraceID),
			"callsite": v.Name,
			"depth":    v.Depth,
		}
		name := v.Name
		if v.TimedOut {
			name += " (timeout)"
		}
		if v.Stopped {
			name += " (stopped)"
		}
		out = append(out, flightEvent{
			Name: name, Cat: "flight", Phase: "X",
			TS: usec(v.SubmitNS), Dur: usec(v.ReturnNS - v.SubmitNS),
			PID: chromePID, TID: reqRow, Args: args,
		})
		if v.Responder == unclaimedResponse || v.ExecStartNS == 0 {
			continue
		}
		respRow := responderRowBase + v.Responder
		rows[respRow] = "responder " + itoa(v.Responder)
		if v.ClaimNS != 0 {
			out = append(out, flightEvent{
				Name: "claim", Cat: "flight", Phase: "i",
				TS: usec(v.ClaimNS), PID: chromePID, TID: respRow,
				Args: map[string]any{"trace_id": hex(v.TraceID)},
			})
		}
		out = append(out, flightEvent{
			Name: v.Name, Cat: "flight", Phase: "X",
			TS: usec(v.ExecStartNS), Dur: usec(v.ExecEndNS - v.ExecStartNS),
			PID: chromePID, TID: respRow,
			Args: map[string]any{"trace_id": hex(v.TraceID)},
		})
	}
	meta := make([]any, 0, len(rows))
	for tid, name := range rows {
		meta = append(meta, flightMetadata{
			Name: "thread_name", Phase: "M", PID: chromePID, TID: tid,
			Args: map[string]string{"name": name},
		})
	}
	return append(meta, out...)
}

// WriteChromeTrace writes the causal window as a standalone Chrome
// trace_event JSON document.
func (r *Recorder) WriteChromeTrace(w io.Writer, max int) error {
	return telemetry.WriteChromeJSON(w, r.ChromeEvents(max))
}

func itoa(v int) string { return strconv.Itoa(v) }

func hex(v uint64) string { return fmt.Sprintf("0x%x", v) }

package flight

// Tail sampling: the 1-in-SampleEvery dice roll is the wrong tool for
// the calls that explain an incident — timeouts, fallbacks, and p99.9
// stragglers are by definition rare, so uniform sampling almost never
// catches one, and by the time a monitor rule fires the evidence has
// been overwritten by the main ring's churn.  When armed (see
// ArmTailSampler), the recorder adds three mechanisms:
//
//  1. Outlier retention.  Every timeout and every sampled call whose
//     latency exceeds the callsite's adaptive cutoff is copied into a
//     dedicated per-shard outlier ring, where it survives main-ring
//     wraparound until an incident bundle (internal/incident) or a
//     /debug/flight reader collects it.
//
//  2. Adaptive cutoffs.  Each digest folds the callsite's latency
//     quantile (TailOptions.Quantile) through an EWMA, multiplies by
//     TailOptions.Multiplier, clamps to MinCutoffNS, and publishes the
//     result to a binding-local cutoff slot.  The sampled return path
//     then decides "outlier?" with one plain load + compare — no math,
//     no locks.  Until the first digest the cutoff is noCutoff
//     (MaxUint64), so arming is safe before any traffic exists.
//
//  3. Escalation.  A callsite that times out, or accumulates
//     TailOptions.EscalateAfter latency outliers within one digest
//     window, has its per-lane sampling mask dropped to 0: every call
//     gets a full timeline record until TailOptions.QuietDigests
//     consecutive digests pass with no new outliers.  During an
//     incident the affected callsite is therefore captured completely,
//     while healthy callsites keep paying only the unsampled cost.
//
// The unsampled hot path is unchanged by arming: Arrive still executes
// one plain counter bump and one mask test (the mask moved from the
// recorder to the lane's own cache line, which Arrive already touches),
// and no LOCK-prefixed instruction is added to any per-call path — the
// escalation bookkeeping runs only on the outlier slow path.
//
// Caveat, stated honestly: a latency outlier can only be *observed* on
// a call that carries a record (sampled, or escalated to
// sample-every-call).  Checking the cutoff on unsampled calls would
// require two clock reads per call — far over the recorder's <<1%
// budget on a ~70ns fabric call.  Timeouts are always exact (the
// timeout path is inherently slow), and escalation converts "this
// callsite has stragglers" into complete capture within EscalateAfter
// sampled observations, so sustained tail trouble is fully recorded;
// only isolated stragglers on a healthy callsite can slip between
// samples.

// noCutoff disables the latency-outlier check for a callsite: no real
// latency compares above it.
const noCutoff = ^uint64(0)

// TailOptions tunes the tail sampler.  The zero value selects the
// defaults noted on each field.
type TailOptions struct {
	// Quantile of the callsite's latency distribution the cutoff
	// tracks (default 0.99).
	Quantile float64

	// Multiplier scales the tracked quantile into the cutoff (default
	// 8): a call is an outlier when it runs Multiplier times the p99.
	Multiplier float64

	// MinCutoffNS floors the cutoff (default 1ms) so scheduler jitter
	// on nanosecond-scale calls never reads as an incident.
	MinCutoffNS uint64

	// EscalateAfter is how many latency outliers within one digest
	// window escalate the callsite to sample-every-call (default 2).
	// Timeouts escalate immediately regardless.
	EscalateAfter int

	// QuietDigests is how many consecutive outlier-free digests
	// de-escalate the callsite back to 1-in-SampleEvery (default 2).
	QuietDigests int

	// OutlierRingRecords is the per-shard outlier-ring capacity
	// (default 64, rounded up to a power of two).  Fixed at Bind time:
	// arm before binding to change it.
	OutlierRingRecords int
}

func (t *TailOptions) fill() {
	if t.Quantile <= 0 || t.Quantile >= 1 {
		t.Quantile = 0.99
	}
	if t.Multiplier <= 0 {
		t.Multiplier = 8
	}
	if t.MinCutoffNS == 0 {
		t.MinCutoffNS = 1_000_000 // 1ms
	}
	if t.EscalateAfter <= 0 {
		t.EscalateAfter = 2
	}
	if t.QuietDigests <= 0 {
		t.QuietDigests = 2
	}
	if t.OutlierRingRecords <= 0 {
		t.OutlierRingRecords = 64
	}
	t.OutlierRingRecords = ceilPow2(t.OutlierRingRecords)
}

// ArmTailSampler arms outlier retention, adaptive cutoffs, and
// escalation with the given thresholds (zero fields take defaults).
// Arm once, before traffic: the options are published through the
// armed flag, so the capture path never reads a half-written update,
// but re-arming while calls are in flight is not synchronised.
// Arming before Bind also lets OutlierRingRecords size the rings.
func (r *Recorder) ArmTailSampler(t TailOptions) {
	if r == nil {
		return
	}
	t.fill()
	r.mu.Lock()
	r.tail = t
	r.mu.Unlock()
	r.armed.Store(true)
}

// DisarmTailSampler stops outlier capture and de-escalates every
// callsite back to uniform sampling.  Already-captured outlier records
// stay readable until the next Bind.
func (r *Recorder) DisarmTailSampler() {
	if r == nil {
		return
	}
	r.armed.Store(false)
	for site := range r.escalated {
		if r.escalated[site].Load() != 0 {
			r.deescalate(site)
		}
	}
	if b := r.bind.Load(); b != nil {
		for i := range b.cutoffs {
			b.cutoffs[i].Store(noCutoff)
		}
	}
}

// TailArmed reports whether the tail sampler is armed.
func (r *Recorder) TailArmed() bool { return r != nil && r.armed.Load() }

// Complete stamps the requester's wait-return time, closes the record,
// and — when the tail sampler is armed — runs the outlier check: one
// plain load of the callsite's binding-local cutoff and a compare.
// Over-cutoff calls are copied to the shard's outlier ring and counted
// toward escalation.  Nil-safe on the record (the unsampled common
// case), so callers replace fr.Return(now) with flight.Complete(fr)
// unconditionally.  Must run on the shard's producer goroutine, like
// every other record-path method.
func (r *Recorder) Complete(fr *Record) {
	if fr == nil {
		return
	}
	now := r.opts.Now()
	fr.ret.Store(now)
	fr.seq.Add(1)
	if !r.armed.Load() {
		return
	}
	sub := fr.submit.Load()
	if sub == 0 || now < sub {
		return
	}
	b := r.bind.Load()
	if b == nil {
		return
	}
	meta := fr.meta.Load()
	site := int(meta>>48) & b.siteMask
	if now-sub < b.cutoffs[site].Load() {
		return
	}
	shard := int(meta >> 32 & 0xffff)
	r.captureOutlier(b, fr, shard)
	r.noteOutlier(site, false)
}

// captureOutlier copies a just-closed record into the shard's outlier
// ring.  The outlier ring uses the multi-producer openMP (CAS claim):
// the fabric gives each shard one producer, but the single-slot
// protocol completes and times out outside its submission lock, so
// several goroutines can capture into shard 0 at once.  The copy is a
// fresh closed generation in the outlier ring; readers use the same
// seqlock validation as the main ring.
func (r *Recorder) captureOutlier(b *binding, src *Record, shard int) {
	if uint(shard) >= uint(len(b.outliers)) {
		return
	}
	dst, gen := b.outliers[shard].openMP()
	dst.trace.Store(src.trace.Load())
	dst.meta.Store(src.meta.Load())
	dst.ctx.Store(src.ctx.Load())
	dst.submit.Store(src.submit.Load())
	dst.claim.Store(src.claim.Load())
	dst.execStart.Store(src.execStart.Load())
	dst.execEnd.Store(src.execEnd.Load())
	dst.ret.Store(src.ret.Load())
	dst.seq.Store(2*gen + 2) // close
}

// noteOutlier counts one captured outlier for the callsite and decides
// escalation with plain atomic loads — no lock on this path.  Timeouts
// (immediate=true) escalate unconditionally; latency outliers escalate
// after EscalateAfter captures since the last digest reading.
func (r *Recorder) noteOutlier(site int, immediate bool) {
	if site >= len(r.outlierSeen) {
		return
	}
	seen := r.outlierSeen[site].n.Add(1)
	if r.escalated[site].Load() != 0 {
		return
	}
	if immediate || seen-r.seenAtDigest[site].Load() >= uint64(r.tail.EscalateAfter) {
		r.escalate(site)
	}
}

// escalate drops the callsite's sampling mask to 0 on every shard lane
// of the current binding: each subsequent call gets a full timeline
// record until the digest de-escalates.
func (r *Recorder) escalate(site int) {
	if site >= len(r.escalated) || r.escalated[site].Swap(1) != 0 {
		return
	}
	b := r.bind.Load()
	if b == nil {
		return
	}
	for shard := 0; shard < len(b.rings); shard++ {
		b.lanes[shard*b.stride+site].mask.Store(0)
	}
}

// deescalate restores the callsite's lanes to uniform sampling.
func (r *Recorder) deescalate(site int) {
	if site >= len(r.escalated) {
		return
	}
	r.escalated[site].Store(0)
	b := r.bind.Load()
	if b == nil {
		return
	}
	for shard := 0; shard < len(b.rings); shard++ {
		b.lanes[shard*b.stride+site].mask.Store(r.sampleMask)
	}
}

// foldTail runs at the end of Digest (caller holds r.mu): refreshes
// every active callsite's binding-local cutoff from the EWMA-smoothed
// latency quantile, and de-escalates callsites that have been
// outlier-free for QuietDigests consecutive digests.
func (r *Recorder) foldTail() {
	if !r.armed.Load() {
		return
	}
	b := r.bind.Load()
	for site := 0; site < len(r.names) && site < len(r.seenAtDigest); site++ {
		seen := r.outlierSeen[site].n.Load()
		prev := r.seenAtDigest[site].Load()
		r.seenAtDigest[site].Store(seen)

		if site < len(r.stats) && r.stats[site] != nil {
			st := r.stats[site]
			if q := st.latency.Snapshot().Quantile(r.tail.Quantile); q > 0 {
				target := float64(q) * r.tail.Multiplier
				if st.cutoffEWMA == 0 {
					st.cutoffEWMA = target
				} else {
					a := r.opts.EWMAAlpha
					st.cutoffEWMA = a*target + (1-a)*st.cutoffEWMA
				}
				cut := uint64(st.cutoffEWMA)
				if cut < r.tail.MinCutoffNS {
					cut = r.tail.MinCutoffNS
				}
				if b != nil && site < len(b.cutoffs) {
					b.cutoffs[site].Store(cut)
				}
			}
		}
		if r.escalated[site].Load() != 0 {
			// state() rather than r.stats[site]: a callsite can escalate
			// on synthesized timeouts alone, with no digested sample yet.
			st := r.state(site)
			if seen != prev {
				st.tailQuiet = 0
			} else if st.tailQuiet++; st.tailQuiet >= r.tail.QuietDigests {
				st.tailQuiet = 0
				r.deescalate(site)
			}
		}
	}
}

// Outliers returns up to max of the most recent retained outlier
// records across all shards, oldest first by submit time.  Like
// Records, the walk is lock-free seqlock reading, safe concurrently
// with the hot path.
func (r *Recorder) Outliers(max int) []RecordView {
	if r == nil {
		return nil
	}
	b := r.bind.Load()
	if b == nil {
		return nil
	}
	if max <= 0 {
		max = 64
	}
	var out []RecordView
	for _, rg := range b.outliers {
		next := rg.next.Load()
		span := uint64(len(rg.recs))
		if next < span {
			span = next
		}
		for gen := next - span; gen < next; gen++ {
			if v, ok := rg.recs[gen&rg.mask].load(gen); ok {
				v.Name = r.CallsiteName(v.Callsite)
				out = append(out, v)
			}
		}
	}
	sortViews(out)
	if len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// OutlierCount returns the exact number of outliers captured for the
// callsite since New (retention in the ring is bounded; this count is
// not).
func (r *Recorder) OutlierCount(site int) uint64 {
	if r == nil || site < 0 || site >= len(r.outlierSeen) {
		return 0
	}
	return r.outlierSeen[site].n.Load()
}

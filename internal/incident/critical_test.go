package incident

import (
	"strings"
	"testing"
)

func segSum(p CriticalPath) uint64 {
	var sum uint64
	for _, s := range p.Segments {
		sum += s.NS
	}
	return sum
}

func TestAnalyzeAttributionSumsExactly(t *testing.T) {
	views := []flightView{
		{ // healthy, fully stamped
			TraceID: 1, Name: "a", SubmitNS: 100, ClaimNS: 140,
			ExecStartNS: 150, ExecEndNS: 900, ReturnNS: 1000, Responder: 2,
		},
		{ // timed out, never claimed
			TraceID: 2, Name: "b", SubmitNS: 100, ReturnNS: 50_100,
			TimedOut: true, Responder: -1,
		},
		{ // torn stamps (claim after exec start): unattributed bucket
			TraceID: 3, Name: "c", SubmitNS: 100, ClaimNS: 500,
			ExecStartNS: 200, ExecEndNS: 300, ReturnNS: 700,
		},
	}
	paths := Analyze(views, 0)
	if len(paths) != 3 {
		t.Fatalf("paths = %d, want 3", len(paths))
	}
	for _, p := range paths {
		if got := segSum(p); got != p.LatencyNS {
			t.Errorf("%s: segments sum %d != latency %d", p.Name, got, p.LatencyNS)
		}
	}

	byName := map[string]CriticalPath{}
	for _, p := range paths {
		byName[p.Name] = p
	}
	a := byName["a"]
	want := []Segment{
		{SegQueueWait, 40}, {SegDispatch, 10}, {SegExecute, 750}, {SegReturn, 100},
	}
	if len(a.Segments) != len(want) {
		t.Fatalf("a segments = %+v", a.Segments)
	}
	for i, s := range a.Segments {
		if s != want[i] {
			t.Errorf("a segment %d = %+v, want %+v", i, s, want[i])
		}
	}
	if a.Outcome != "ok" {
		t.Errorf("a outcome = %q", a.Outcome)
	}

	b := byName["b"]
	if b.Outcome != "timeout" || len(b.Segments) != 1 || b.Segments[0].Name != SegUnclaimed {
		t.Errorf("unclaimed timeout = %+v", b)
	}
	c := byName["c"]
	if len(c.Segments) != 1 || c.Segments[0].Name != SegUnattributed {
		t.Errorf("torn record = %+v", c)
	}
}

func TestAnalyzeSkipsPartialRecords(t *testing.T) {
	views := []flightView{
		{TraceID: 1, Name: "synth", SubmitNS: 0, ReturnNS: 500, TimedOut: true},
		{TraceID: 2, Name: "backwards", SubmitNS: 900, ReturnNS: 100},
	}
	if paths := Analyze(views, 0); len(paths) != 0 {
		t.Fatalf("partial records produced paths: %+v", paths)
	}
}

func TestAnalyzeDedupAndOrdering(t *testing.T) {
	views := []flightView{
		// Same call retained in both outlier and record rings: outlier
		// copy first wins.
		{TraceID: 7, Name: "dup.outlier", SubmitNS: 100, ReturnNS: 10_100, TimedOut: true, Responder: -1},
		{TraceID: 7, Name: "dup.record", SubmitNS: 100, ReturnNS: 10_100, TimedOut: true, Responder: -1},
		// A slow-but-healthy call, slower than the timeout above.
		{TraceID: 8, Name: "slow.ok", SubmitNS: 100, ClaimNS: 200,
			ExecStartNS: 210, ExecEndNS: 99_000, ReturnNS: 100_100},
		// A fast healthy call.
		{TraceID: 9, Name: "fast.ok", SubmitNS: 100, ClaimNS: 110,
			ExecStartNS: 120, ExecEndNS: 300, ReturnNS: 400},
	}
	paths := Analyze(views, 0)
	if len(paths) != 3 {
		t.Fatalf("paths = %d (dedup failed?): %+v", len(paths), paths)
	}
	// Bad outcomes first, then latency descending.
	if paths[0].Name != "dup.outlier" {
		t.Errorf("timeout not ranked first: %+v", paths[0])
	}
	if paths[1].Name != "slow.ok" || paths[2].Name != "fast.ok" {
		t.Errorf("healthy calls not latency-ordered: %s, %s", paths[1].Name, paths[2].Name)
	}

	// max caps the table.
	if capped := Analyze(views, 2); len(capped) != 2 {
		t.Fatalf("capped = %d, want 2", len(capped))
	}
}

func TestRenderCriticalPaths(t *testing.T) {
	paths := Analyze([]flightView{
		{TraceID: 0xabc, Name: "render.op", SubmitNS: 100, ClaimNS: 140,
			ExecStartNS: 150, ExecEndNS: 900, ReturnNS: 1000},
		{TraceID: 0xdef, Name: "render.timeout", SubmitNS: 100, ReturnNS: 50_100,
			TimedOut: true, Responder: -1},
	}, 0)
	out := RenderCriticalPaths(paths)
	for _, want := range []string{"render.op", "render.timeout", "timeout", SegQueueWait, SegExecute} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

package incident

import (
	"encoding/json"
	"net/http"
	"time"

	"hotcalls/internal/flight"
	"hotcalls/internal/monitor"
	"hotcalls/internal/telemetry"
)

// bundleMeta is one row of the /debug/incidents list view.
type bundleMeta struct {
	ID            string           `json:"id"`
	Rule          string           `json:"rule"`
	Severity      monitor.Severity `json:"severity"`
	Seq           int              `json:"seq"`
	CapturedAt    time.Time        `json:"captured_at"`
	Records       int              `json:"records"`
	Outliers      int              `json:"outliers"`
	CriticalPaths int              `json:"critical_paths"`
}

// Handler serves the capturer at /debug/incidents:
//
//	GET /debug/incidents                      JSON list of retained bundles
//	GET /debug/incidents?id=<id>              one full bundle (JSON)
//	GET /debug/incidents?id=<id>&format=text  RenderText postmortem summary
//	GET /debug/incidents?id=<id>&format=trace Chrome trace_event JSON of the
//	                                          bundle's frozen timelines
//
// Unknown formats get 400, unknown IDs 404.  Safe on a nil capturer
// (serves an empty list).
func Handler(c *Capturer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := req.URL.Query().Get("id")
		format := req.URL.Query().Get("format")
		if id == "" {
			if format != "" && format != "json" {
				http.Error(w, "unknown format (list view is json only)", http.StatusBadRequest)
				return
			}
			serveList(w, c)
			return
		}
		var b *Bundle
		if c != nil {
			b, _ = c.Bundle(id)
		}
		if b == nil {
			http.Error(w, "no such incident bundle: "+id, http.StatusNotFound)
			return
		}
		switch format {
		case "text":
			w.Header().Set("Content-Type", flight.ContentTypeText)
			_, _ = w.Write([]byte(b.RenderText()))
		case "trace":
			w.Header().Set("Content-Type", flight.ContentTypeJSON)
			views := append(append([]flightView(nil), b.Outliers...), b.Records...)
			_ = telemetry.WriteChromeJSON(w, flight.ChromeEventsForViews(views))
		case "", "json":
			w.Header().Set("Content-Type", flight.ContentTypeJSON)
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(b)
		default:
			http.Error(w, "unknown format (want json, text, or trace)", http.StatusBadRequest)
		}
	})
}

func serveList(w http.ResponseWriter, c *Capturer) {
	list := struct {
		Bundles    []bundleMeta `json:"bundles"`
		Captured   uint64       `json:"captured"`
		Suppressed uint64       `json:"suppressed"`
		DiskError  string       `json:"disk_error,omitempty"`
	}{Bundles: []bundleMeta{}}
	if c != nil {
		for _, b := range c.Bundles() {
			list.Bundles = append(list.Bundles, bundleMeta{
				ID:            b.ID,
				Rule:          b.Event.Rule,
				Severity:      b.Event.Severity,
				Seq:           b.Event.Seq,
				CapturedAt:    b.CapturedAt,
				Records:       len(b.Records),
				Outliers:      len(b.Outliers),
				CriticalPaths: len(b.CriticalPaths),
			})
		}
		var err error
		list.Captured, list.Suppressed, err = c.Stats()
		if err != nil {
			list.DiskError = err.Error()
		}
	}
	w.Header().Set("Content-Type", flight.ContentTypeJSON)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(list)
}

// Package incident turns monitor events into self-contained postmortem
// artifacts.  When a rule transitions to warning/critical, the attached
// Capturer freezes everything a responder-on-call needs to answer
// "what happened" without rerunning anything: the monitor's sample
// window, the flight recorder's causal timelines and retained outlier
// records (see flight's tail sampler), the per-callsite stats digest,
// a telemetry registry snapshot, the high-resolution latency histogram
// snapshots, the firing rule's structured diagnosis, and a
// critical-path attribution of every captured slow call — serialized
// as one deterministic JSON bundle (schema incident-bundle/v1) with
// per-rule cooldown dedup, a bounded in-memory retention ring, and an
// optional on-disk spool.
//
// The import direction is incident → monitor/flight: the monitor knows
// nothing about bundles, it just calls the capturer through
// Monitor.SetOnEvent.  Apps mount the /debug/incidents handler next to
// the monitor's Mux.
package incident

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"hotcalls/internal/dist"
	"hotcalls/internal/monitor"
	"hotcalls/internal/telemetry"
)

// Options tunes a Capturer.  The zero value selects the defaults noted
// on each field.
type Options struct {
	// Cooldown is the per-rule dedup window: after a bundle is captured
	// for a rule, further events from the same rule are suppressed
	// (counted, not captured) until Cooldown elapses.  Default 30s.
	Cooldown time.Duration

	// Retain bounds the in-memory bundle ring (oldest evicted first).
	// Default 16.
	Retain int

	// Dir, when non-empty, also spools every bundle to
	// <Dir>/<bundle-id>.json (directory created on first write).  Disk
	// bundles are never garbage-collected by the capturer.
	Dir string

	// MinSeverity is the lowest severity that triggers a capture.
	// Default monitor.Warning (Info events never capture).
	MinSeverity monitor.Severity

	// WindowSamples is how many trailing monitor samples the bundle
	// freezes.  Default 32.
	WindowSamples int

	// MaxRecords bounds the flight records and outlier records frozen
	// per bundle.  Default 256.
	MaxRecords int

	// MaxPaths bounds the critical-path table (slowest first).
	// Default 32.
	MaxPaths int

	// Registry, when set, adds a full telemetry snapshot to each
	// bundle.
	Registry *telemetry.Registry

	// Dist, when set, adds the non-empty high-resolution latency
	// histogram snapshots (keyed by dist.SeriesName) to each bundle.
	Dist *dist.Set

	// Now is the wall clock (default time.Now).  Injectable for
	// deterministic cooldown tests.
	Now func() time.Time
}

func (o *Options) fill() {
	if o.Cooldown <= 0 {
		o.Cooldown = 30 * time.Second
	}
	if o.Retain <= 0 {
		o.Retain = 16
	}
	if o.WindowSamples <= 0 {
		o.WindowSamples = 32
	}
	if o.MaxRecords <= 0 {
		o.MaxRecords = 256
	}
	if o.MaxPaths <= 0 {
		o.MaxPaths = 32
	}
	if o.MinSeverity == 0 {
		o.MinSeverity = monitor.Warning
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

// Capturer freezes incident bundles off monitor events.  All methods
// are goroutine-safe; OnEvent runs synchronously on the monitor's
// sampling goroutine, so a capture (a few snapshot walks plus one
// optional file write) costs one tick of latency, never a hot-path
// cycle.
type Capturer struct {
	opts Options
	mon  *monitor.Monitor

	mu         sync.Mutex
	lastByRule map[string]time.Time
	bundles    []*Bundle // retention ring, oldest first
	captured   uint64
	suppressed uint64
	diskErr    error // last spool failure, surfaced in the list view
}

// New returns a capturer over the monitor.  Call Attach (or wire
// OnEvent into monitor.Options.OnEvent yourself) to start capturing.
func New(m *monitor.Monitor, opts Options) *Capturer {
	opts.fill()
	return &Capturer{
		opts:       opts,
		mon:        m,
		lastByRule: make(map[string]time.Time),
	}
}

// Attach registers the capturer as the monitor's event callback via
// Monitor.SetOnEvent, replacing any previous callback.
func (c *Capturer) Attach() { c.mon.SetOnEvent(c.OnEvent) }

// OnEvent is the monitor event hook: severity-gate, per-rule cooldown
// dedup, then capture.
func (c *Capturer) OnEvent(e monitor.Event) {
	if c == nil || e.Severity < c.opts.MinSeverity {
		return
	}
	now := c.opts.Now()
	c.mu.Lock()
	if last, ok := c.lastByRule[e.Rule]; ok && now.Sub(last) < c.opts.Cooldown {
		c.suppressed++
		c.mu.Unlock()
		return
	}
	c.lastByRule[e.Rule] = now
	c.mu.Unlock()

	b := c.capture(e, now)

	c.mu.Lock()
	c.captured++
	if len(c.bundles) >= c.opts.Retain {
		copy(c.bundles, c.bundles[1:])
		c.bundles = c.bundles[:len(c.bundles)-1]
	}
	c.bundles = append(c.bundles, b)
	c.mu.Unlock()

	if c.opts.Dir != "" {
		if err := c.spool(b); err != nil {
			c.mu.Lock()
			c.diskErr = err
			c.mu.Unlock()
		}
	}
}

// capture freezes one bundle.  It reads the monitor and flight
// recorder through their public goroutine-safe APIs only.
func (c *Capturer) capture(e monitor.Event, now time.Time) *Bundle {
	b := &Bundle{
		Schema:     BundleSchema,
		ID:         BundleID(e),
		CapturedAt: now.UTC(),
		Event:      e,
		Window:     c.mon.Window(c.opts.WindowSamples),
	}
	if f := c.mon.Flight(); f != nil {
		b.Callsites = f.Stats() // digests pending records first
		b.Records = f.Records(c.opts.MaxRecords)
		b.Outliers = f.Outliers(c.opts.MaxRecords)
		b.CriticalPaths = Analyze(append(append([]flightView(nil), b.Outliers...), b.Records...), c.opts.MaxPaths)
	}
	if col := c.mon.EPCStat(); col != nil {
		b.EPC = col.Snapshot() // flushes the paging accounting first
	}
	if o := c.mon.WhatIf(); o != nil {
		b.WhatIf = o.Report()
	}
	if c.opts.Registry != nil {
		snap := c.opts.Registry.Snapshot()
		b.Telemetry = &snap
	}
	if c.opts.Dist != nil {
		b.Dist = distSnapshots(c.opts.Dist)
	}
	return b
}

// distSnapshots collects the non-empty series of the set, keyed by
// dist.SeriesName.  Map keys are sorted by encoding/json, keeping the
// bundle byte-deterministic for fixed inputs.
func distSnapshots(s *dist.Set) map[string]dist.Snapshot {
	out := make(map[string]dist.Snapshot)
	for k := dist.Kind(0); k < dist.KindCount; k++ {
		for t := dist.Temp(0); t < dist.TempCount; t++ {
			snap := s.Recorder(k, t).Snapshot()
			if snap.Total == 0 {
				continue
			}
			out[dist.SeriesName(k, t)] = snap
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// spool writes the bundle to <Dir>/<id>.json.
func (c *Capturer) spool(b *Bundle) error {
	if err := os.MkdirAll(c.opts.Dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(c.opts.Dir, b.ID+".json"), append(data, '\n'), 0o644)
}

// BundleID derives the deterministic bundle identifier from the firing
// event: inc-<rule>-<seq>.  Rule names are already kebab-case; any
// stray separators are normalised so the ID is always a safe filename.
func BundleID(e monitor.Event) string {
	rule := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, e.Rule)
	return fmt.Sprintf("inc-%s-%d", rule, e.Seq)
}

// Bundles returns the retained bundles, oldest first.
func (c *Capturer) Bundles() []*Bundle {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Bundle, len(c.bundles))
	copy(out, c.bundles)
	return out
}

// Bundle returns the retained bundle with the given ID.
func (c *Capturer) Bundle(id string) (*Bundle, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, b := range c.bundles {
		if b.ID == id {
			return b, true
		}
	}
	return nil, false
}

// Stats reports lifetime capture counts: bundles captured, events
// suppressed by the cooldown, and the last spool error (nil when disk
// writes are off or healthy).
func (c *Capturer) Stats() (captured, suppressed uint64, diskErr error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.captured, c.suppressed, c.diskErr
}

package incident

import (
	"fmt"
	"sort"
	"strings"

	"hotcalls/internal/flight"
)

// flightView keeps the analyzer's signatures readable.
type flightView = flight.RecordView

// Segment is one attributed slice of a call's end-to-end latency.
type Segment struct {
	Name string `json:"name"`
	NS   uint64 `json:"ns"`
}

// CriticalPath is the latency attribution of one captured call: where
// each nanosecond between submit and return went.  Segments telescope
// over the record's causal stamps, so they sum exactly to LatencyNS.
type CriticalPath struct {
	TraceID   uint64 `json:"trace_id"`
	Callsite  int    `json:"callsite"`
	Name      string `json:"name"`
	Shard     int    `json:"shard"`
	Responder int    `json:"responder"`
	// Outcome is "ok", "timeout", or "stopped".
	Outcome   string    `json:"outcome"`
	LatencyNS uint64    `json:"latency_ns"`
	Segments  []Segment `json:"segments"`
}

// Segment names, in causal order.
const (
	// SegQueueWait is submit → responder slot claim: time the call sat
	// posted with no responder picking it up (saturation, sleepers).
	SegQueueWait = "queue-wait"
	// SegDispatch is claim → handler entry: the responder's dispatch
	// overhead between winning the slot and running the handler.
	SegDispatch = "dispatch"
	// SegExecute is the handler's own run time.
	SegExecute = "execute"
	// SegReturn is handler exit → requester wait-return: completion
	// publication plus the requester noticing (poll/wake latency).
	SegReturn = "return"
	// SegUnclaimed is the whole latency of a call no responder ever
	// claimed (timeout or shutdown while still queued).
	SegUnclaimed = "unclaimed"
	// SegUnattributed covers records whose stamps are not causally
	// ordered (torn mid-incident); the total is still exact.
	SegUnattributed = "unattributed"
)

// analyze attributes one record.  Returns false for records that carry
// no usable latency (synthesized partial outliers with submit 0, or a
// missing return stamp).
func analyze(v flightView) (CriticalPath, bool) {
	if v.SubmitNS == 0 || v.ReturnNS < v.SubmitNS {
		return CriticalPath{}, false
	}
	p := CriticalPath{
		TraceID:   v.TraceID,
		Callsite:  v.Callsite,
		Name:      v.Name,
		Shard:     v.Shard,
		Responder: v.Responder,
		Outcome:   "ok",
		LatencyNS: v.ReturnNS - v.SubmitNS,
	}
	switch {
	case v.TimedOut:
		p.Outcome = "timeout"
	case v.Stopped:
		p.Outcome = "stopped"
	}
	switch {
	case v.ClaimNS == 0 && v.ExecStartNS == 0:
		// Never claimed: the whole latency is queue wait.
		p.Segments = []Segment{{SegUnclaimed, p.LatencyNS}}
	case v.SubmitNS <= v.ClaimNS && v.ClaimNS <= v.ExecStartNS &&
		v.ExecStartNS <= v.ExecEndNS && v.ExecEndNS <= v.ReturnNS:
		// Telescoping differences: the four segments sum exactly to
		// LatencyNS by construction.
		p.Segments = []Segment{
			{SegQueueWait, v.ClaimNS - v.SubmitNS},
			{SegDispatch, v.ExecStartNS - v.ClaimNS},
			{SegExecute, v.ExecEndNS - v.ExecStartNS},
			{SegReturn, v.ReturnNS - v.ExecEndNS},
		}
	default:
		p.Segments = []Segment{{SegUnattributed, p.LatencyNS}}
	}
	return p, true
}

// Analyze walks captured timelines and returns the critical-path
// attribution of the slowest max calls (latency descending), with
// timeout/fallback-affected calls kept ahead of equally-slow healthy
// ones.  Duplicate trace IDs (a call retained in both the record and
// outlier rings) are analyzed once.
func Analyze(views []flightView, max int) []CriticalPath {
	if max <= 0 {
		max = 32
	}
	seen := make(map[uint64]bool, len(views))
	var paths []CriticalPath
	for _, v := range views {
		if v.TraceID != 0 && seen[v.TraceID] {
			continue
		}
		p, ok := analyze(v)
		if !ok {
			continue
		}
		seen[v.TraceID] = true
		paths = append(paths, p)
	}
	sort.SliceStable(paths, func(i, j int) bool {
		bad := func(p CriticalPath) bool { return p.Outcome != "ok" }
		if bad(paths[i]) != bad(paths[j]) {
			return bad(paths[i])
		}
		return paths[i].LatencyNS > paths[j].LatencyNS
	})
	if len(paths) > max {
		paths = paths[:max]
	}
	return paths
}

// RenderCriticalPaths renders the attribution table: one row per call,
// one column per causal segment.
func RenderCriticalPaths(paths []CriticalPath) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-20s %-8s %10s %10s %10s %10s %10s\n",
		"trace", "callsite", "outcome", "latency",
		SegQueueWait, SegDispatch, SegExecute, SegReturn)
	for _, p := range paths {
		seg := map[string]uint64{}
		for _, s := range p.Segments {
			seg[s.Name] += s.NS
		}
		// Unclaimed/unattributed time reads as queue wait in the table:
		// that is where an unclaimed call actually spent it.
		qw := seg[SegQueueWait] + seg[SegUnclaimed] + seg[SegUnattributed]
		fmt.Fprintf(&b, "0x%012x %-20s %-8s %10s %10s %10s %10s %10s\n",
			p.TraceID, p.Name, p.Outcome, flight.FmtNS(p.LatencyNS),
			flight.FmtNS(qw), flight.FmtNS(seg[SegDispatch]),
			flight.FmtNS(seg[SegExecute]), flight.FmtNS(seg[SegReturn]))
	}
	return b.String()
}

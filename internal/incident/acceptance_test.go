package incident

import (
	"testing"
	"time"

	"hotcalls/internal/core"
	"hotcalls/internal/flight"
	"hotcalls/internal/monitor"
	"hotcalls/internal/telemetry"
)

// TestAcceptanceFallbackStormBundle is the ISSUE's end-to-end check:
// inject a fallback storm under a live fabric workload (responder
// wedged mid-handler, window full, every call degrades to the SDK
// fallback), let the monitor fire, and assert that exactly one bundle
// is produced within the cooldown — containing at least one complete
// causal timeline of an affected (timed-out) call whose critical-path
// attribution sums exactly to its recorded latency.
func TestAcceptanceFallbackStormBundle(t *testing.T) {
	gate := make(chan struct{})
	p := core.NewCallPool([]core.PoolFunc{
		func(_ int, d uint64) uint64 { <-gate; return d },
	}, core.PoolOptions{Shards: 1, SlotsPerShard: 4, Timeout: 1024, MaxResponders: 1})

	reg := telemetry.New()
	p.SetTelemetry(reg)

	// Production-rate sampling: 1-in-256.  The tail sampler is what
	// guarantees the storm's timeouts are retained anyway — the first
	// timeout escalates the callsite to sample-every-call, so the rest
	// of the storm leaves complete timelines.
	rec := flight.New(flight.Options{SampleEvery: 256})
	rec.ArmTailSampler(flight.TailOptions{})
	p.SetFlight(rec)
	cs := rec.Callsite("storm.op")

	p.Start()
	r := p.Requester()

	// Wedge the fabric: the lone responder claims the first call and
	// blocks on the gate; three more submissions fill the window.
	var parked []*core.PoolPending
	for i := 0; i < 4; i++ {
		pd, err := r.Submit(0, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		parked = append(parked, pd)
	}
	defer func() {
		close(gate)
		for _, pd := range parked {
			_, _ = pd.Wait()
		}
		p.Stop()
	}()

	m := monitor.New(reg, monitor.Options{
		Rules:         []monitor.Rule{&monitor.FallbackStormRule{T: monitor.DefaultThresholds()}},
		Flight:        rec,
		EventDebounce: 2,
	})
	c := New(m, Options{Cooldown: time.Hour, Registry: reg})
	c.Attach()
	m.Tick() // baseline: the parked submissions land before the storm

	storm := func() {
		for i := 0; i < 50; i++ {
			if _, err := r.CallOrFallbackAt(cs, 0, uint64(i), func() (uint64, error) {
				return 0, nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	storm()
	s := m.Tick() // rule fires critical → capture
	if s.TimeoutRate < 0.9 {
		t.Fatalf("timeout rate = %.3f, want ~1 (storm not injected?)", s.TimeoutRate)
	}

	// The storm keeps raging across two more intervals: same episode,
	// same cooldown — still exactly one bundle.
	storm()
	m.Tick()
	storm()
	m.Tick()

	bundles := c.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("bundles = %d, want exactly 1 within the cooldown", len(bundles))
	}
	b := bundles[0]
	if b.Event.Rule != "fallback-storm" || b.Event.Severity != monitor.Critical {
		t.Fatalf("bundle event = %+v, want critical fallback-storm", b.Event)
	}
	if len(b.Outliers) == 0 {
		t.Fatal("bundle retained no outlier timelines from the storm")
	}

	// At least one complete causal timeline of an affected call, with
	// the attribution summing exactly to the recorded latency.
	var affected int
	for _, path := range b.CriticalPaths {
		if path.Outcome != "timeout" || path.Name != "storm.op" {
			continue
		}
		affected++
		var sum uint64
		for _, seg := range path.Segments {
			sum += seg.NS
		}
		if sum != path.LatencyNS {
			t.Fatalf("attribution sums to %d, latency is %d: %+v", sum, path.LatencyNS, path)
		}
		if path.LatencyNS == 0 {
			t.Fatalf("affected call recorded no latency: %+v", path)
		}
	}
	if affected == 0 {
		t.Fatalf("no timed-out storm.op call in the critical-path table: %+v", b.CriticalPaths)
	}

	// The frozen stats digest names the degrading callsite.
	var row *flight.CallsiteStats
	for i := range b.Callsites {
		if b.Callsites[i].Name == "storm.op" {
			row = &b.Callsites[i]
		}
	}
	if row == nil {
		t.Fatalf("storm.op missing from frozen callsite digest: %+v", b.Callsites)
	}
	if row.Timeouts == 0 || row.Fallbacks == 0 || row.Outliers == 0 || !row.Escalated {
		t.Fatalf("frozen digest misses the storm: %+v", row)
	}
	if b.Telemetry == nil || b.Telemetry.Counters[telemetry.MetricHotCallTimeouts] == 0 {
		t.Fatal("bundle telemetry snapshot missing the timeout counter")
	}

	// A single event transition for the whole episode (S2 companion on
	// the live fabric path).
	var transitions int
	for _, e := range m.Events() {
		if e.Rule == "fallback-storm" {
			transitions++
		}
	}
	if transitions != 1 {
		t.Fatalf("storm emitted %d event transitions across the episode, want 1", transitions)
	}
}

package incident

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hotcalls/internal/flight"
	"hotcalls/internal/monitor"
	"hotcalls/internal/telemetry"
	"hotcalls/internal/whatif"
)

// stormKit is a deterministic fixture: a registry-backed monitor pinned
// to the fallback-storm rule only, a capturer with an injectable clock,
// and a counter-bumping storm driver.
type stormKit struct {
	reg *telemetry.Registry
	m   *monitor.Monitor
	c   *Capturer
	now time.Time
}

func newStormKit(t *testing.T, mopts monitor.Options, copts Options) *stormKit {
	t.Helper()
	k := &stormKit{reg: telemetry.New(), now: time.Unix(1700000000, 0)}
	if copts.Registry != nil {
		k.reg = copts.Registry // monitor and capturer share the registry
	}
	if mopts.Rules == nil {
		mopts.Rules = []monitor.Rule{&monitor.FallbackStormRule{T: monitor.DefaultThresholds()}}
	}
	k.m = monitor.New(k.reg, mopts)
	copts.Now = func() time.Time { return k.now }
	k.c = New(k.m, copts)
	k.c.Attach()
	k.m.Tick() // baseline
	return k
}

// storm drives one interval of submissions with the given timeout
// fraction, then ticks.
func (k *stormKit) storm(timeouts uint64) monitor.Sample {
	k.reg.Counter(telemetry.MetricHotCallRequests).Add(100)
	k.reg.Counter(telemetry.MetricHotCallTimeouts).Add(timeouts)
	k.reg.Counter(telemetry.MetricHotCallFallbacks).Add(timeouts)
	return k.m.Tick()
}

func TestCaptureOnEvent(t *testing.T) {
	k := newStormKit(t, monitor.Options{}, Options{})
	k.storm(50) // 50% fallback rate: critical

	bundles := k.c.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("bundles = %d, want 1", len(bundles))
	}
	b := bundles[0]
	if b.Schema != BundleSchema {
		t.Fatalf("schema = %q, want %q", b.Schema, BundleSchema)
	}
	if b.Event.Rule != "fallback-storm" || b.Event.Severity != monitor.Critical {
		t.Fatalf("event = %+v, want critical fallback-storm", b.Event)
	}
	if want := BundleID(b.Event); b.ID != want {
		t.Fatalf("id = %q, want %q", b.ID, want)
	}
	if !strings.HasPrefix(b.ID, "inc-fallback-storm-") {
		t.Fatalf("id = %q, want deterministic inc-<rule>-<seq>", b.ID)
	}
	if len(b.Window) == 0 {
		t.Fatal("bundle froze no monitor samples")
	}
	last := b.Window[len(b.Window)-1]
	if last.FallbackRate < 0.4 {
		t.Fatalf("frozen window does not show the storm: %+v", last)
	}
}

func TestCooldownDedup(t *testing.T) {
	k := newStormKit(t, monitor.Options{}, Options{Cooldown: 10 * time.Second})
	k.storm(50)
	k.storm(50)
	k.storm(50)
	if got := len(k.c.Bundles()); got != 1 {
		t.Fatalf("bundles within cooldown = %d, want 1", got)
	}
	captured, suppressed, _ := k.c.Stats()
	if captured != 1 || suppressed != 2 {
		t.Fatalf("captured=%d suppressed=%d, want 1, 2", captured, suppressed)
	}

	k.now = k.now.Add(11 * time.Second)
	k.storm(50)
	if got := len(k.c.Bundles()); got != 2 {
		t.Fatalf("bundles after cooldown = %d, want 2", got)
	}
}

// TestFlappingRuleSingleTransition is the S2 hysteresis test: a rule
// flapping across its threshold within one debounce episode emits a
// single event transition and a single incident capture.
func TestFlappingRuleSingleTransition(t *testing.T) {
	k := newStormKit(t, monitor.Options{EventDebounce: 3}, Options{Cooldown: time.Hour})
	k.storm(50) // fires: opens the episode
	k.storm(0)  // below threshold: rule silent
	k.storm(50) // fires again within the episode: suppressed
	k.storm(0)
	k.storm(50) // still within EventDebounce=3 of the last firing

	var stormEvents int
	for _, e := range k.m.Events() {
		if e.Rule == "fallback-storm" && e.Severity >= monitor.Warning {
			stormEvents++
		}
	}
	if stormEvents != 1 {
		t.Fatalf("flapping rule emitted %d event transitions, want 1", stormEvents)
	}
	if got := len(k.c.Bundles()); got != 1 {
		t.Fatalf("flapping rule captured %d bundles, want 1", got)
	}

	// Once the rule stays quiet past the debounce window, the next
	// firing is a new episode and emits again.
	k.storm(0)
	k.storm(0)
	k.storm(0)
	k.storm(0)
	k.storm(50)
	stormEvents = 0
	for _, e := range k.m.Events() {
		if e.Rule == "fallback-storm" && e.Severity >= monitor.Warning {
			stormEvents++
		}
	}
	if stormEvents != 2 {
		t.Fatalf("new episode after quiet window emitted %d total, want 2", stormEvents)
	}
}

func TestRetentionRingBounded(t *testing.T) {
	k := newStormKit(t, monitor.Options{}, Options{Retain: 2, Cooldown: time.Nanosecond})
	for i := 0; i < 5; i++ {
		k.now = k.now.Add(time.Second)
		k.storm(50)
	}
	bundles := k.c.Bundles()
	if len(bundles) != 2 {
		t.Fatalf("retained = %d, want 2", len(bundles))
	}
	// Oldest first; the newest two survive.
	if !(bundles[0].Event.Seq < bundles[1].Event.Seq) {
		t.Fatalf("retention order wrong: %d, %d", bundles[0].Event.Seq, bundles[1].Event.Seq)
	}
}

func TestSpoolToDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "incidents")
	k := newStormKit(t, monitor.Options{}, Options{Dir: dir})
	k.storm(50)

	b := k.c.Bundles()[0]
	data, err := os.ReadFile(filepath.Join(dir, b.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var decoded Bundle
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("spooled bundle not valid JSON: %v", err)
	}
	if decoded.Schema != BundleSchema || decoded.ID != b.ID {
		t.Fatalf("spooled bundle mismatch: %+v", decoded)
	}
	if _, _, diskErr := k.c.Stats(); diskErr != nil {
		t.Fatalf("disk error: %v", diskErr)
	}
}

func TestSeverityGate(t *testing.T) {
	k := newStormKit(t, monitor.Options{}, Options{MinSeverity: monitor.Critical})
	k.storm(6) // 6%: warning only
	if got := len(k.c.Bundles()); got != 0 {
		t.Fatalf("warning captured %d bundles under MinSeverity=critical, want 0", got)
	}
	k.storm(50)
	if got := len(k.c.Bundles()); got != 1 {
		t.Fatalf("critical captured %d bundles, want 1", got)
	}
}

func TestHandler(t *testing.T) {
	k := newStormKit(t, monitor.Options{}, Options{})
	k.storm(50)
	h := Handler(k.c)

	// List view.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/incidents", nil))
	if rr.Code != 200 {
		t.Fatalf("list status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("list content-type = %q", ct)
	}
	var list struct {
		Bundles  []bundleMeta `json:"bundles"`
		Captured uint64       `json:"captured"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Bundles) != 1 || list.Captured != 1 {
		t.Fatalf("list = %+v", list)
	}
	id := list.Bundles[0].ID

	// Fetch JSON.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/incidents?id="+id, nil))
	var b Bundle
	if err := json.Unmarshal(rr.Body.Bytes(), &b); err != nil || b.ID != id {
		t.Fatalf("fetch: err=%v id=%q", err, b.ID)
	}

	// Text view.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/incidents?id="+id+"&format=text", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("text content-type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "fallback-storm") {
		t.Fatalf("text view missing rule name: %q", rr.Body.String())
	}

	// Trace view is valid JSON.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/incidents?id="+id+"&format=trace", nil))
	var trace any
	if err := json.Unmarshal(rr.Body.Bytes(), &trace); err != nil {
		t.Fatalf("trace view not JSON: %v", err)
	}

	// Unknown ID and unknown format.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/incidents?id=nope", nil))
	if rr.Code != 404 {
		t.Fatalf("unknown id status = %d, want 404", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/incidents?id="+id+"&format=xml", nil))
	if rr.Code != 400 {
		t.Fatalf("unknown format status = %d, want 400", rr.Code)
	}
	// Nil capturer serves an empty list.
	rr = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/incidents", nil))
	if rr.Code != 200 {
		t.Fatalf("nil capturer status = %d", rr.Code)
	}
}

// TestBundleDeterministicMarshal pins the schema promise: for fixed
// inputs the bundle serializes to identical bytes — struct fields keep
// declaration order and encoding/json sorts the map keys (Dist).
func TestBundleDeterministicMarshal(t *testing.T) {
	reg := telemetry.New()
	reg.Counter(telemetry.MetricHotCallRequests).Add(7)
	k := newStormKit(t, monitor.Options{}, Options{Registry: reg})
	k.storm(50)

	b := k.c.Bundles()[0]
	if b.Telemetry == nil {
		t.Fatal("bundle missing telemetry snapshot")
	}
	first, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("marshal %d differs from first", i)
		}
	}
}

// TestCaptureWhatIf checks that a routing-regret incident freezes the
// what-if observatory's report — the shadow router's verdict is the
// bundle's primary evidence — and that the postmortem text renders it.
func TestCaptureWhatIf(t *testing.T) {
	var ns atomic.Uint64
	ns.Store(1)
	f := flight.New(flight.Options{Now: ns.Load, SampleEvery: 1})
	f.Bind(1)
	cs := f.Callsite("mis.routed")
	obs := whatif.NewObservatory(whatif.CostParams{})

	m := monitor.New(nil, monitor.Options{Flight: f, WhatIf: obs})
	c := New(m, Options{Now: func() time.Time { return time.Unix(1700000000, 0) }})
	c.Attach()
	m.Tick() // baseline primes the shadow router

	// One 1ms interval at ~0.6 utilisation: hot beats the pooled
	// fallback by millions of cycles, firing routing-regret.
	for i := 0; i < 1500; i++ {
		rec := f.Begin(cs, 0, 1)
		ns.Add(500)
		rec.Return(ns.Load())
	}
	ns.Add(2.5e5)
	m.Tick()

	var b *Bundle
	for _, cand := range c.Bundles() {
		if cand.Event.Rule == "routing-regret" {
			b = cand
		}
	}
	if b == nil {
		t.Fatalf("no routing-regret bundle captured: %+v", c.Bundles())
	}
	if b.WhatIf == nil {
		t.Fatal("bundle froze no what-if report")
	}
	worst := b.WhatIf.Routing.Worst()
	if worst == nil || worst.Site != "mis.routed" || worst.Best != whatif.PolicyHot {
		t.Fatalf("frozen report does not show the misroute: %+v", worst)
	}
	text := b.RenderText()
	if !strings.Contains(text, "what-if observatory") || !strings.Contains(text, "mis.routed") {
		t.Fatalf("postmortem text missing what-if section:\n%s", text)
	}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), whatif.RoutingSchema) {
		t.Fatal("bundle JSON missing routing snapshot schema")
	}
}

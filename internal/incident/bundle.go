package incident

import (
	"fmt"
	"strings"
	"time"

	"hotcalls/internal/dist"
	"hotcalls/internal/epcstat"
	"hotcalls/internal/flight"
	"hotcalls/internal/monitor"
	"hotcalls/internal/telemetry"
	"hotcalls/internal/whatif"
)

// BundleSchema identifies the bundle wire format.  Bump on any
// incompatible field change.
const BundleSchema = "incident-bundle/v1"

// Bundle is one frozen incident: everything needed for a postmortem,
// self-contained (no live process required to read it).  Marshals
// deterministically for fixed inputs — struct fields keep declaration
// order and encoding/json sorts the map keys.
type Bundle struct {
	Schema     string    `json:"schema"`
	ID         string    `json:"id"`
	CapturedAt time.Time `json:"captured_at"`

	// Event is the firing rule's structured diagnosis.
	Event monitor.Event `json:"event"`

	// Window is the monitor's trailing sample history, oldest first.
	Window []monitor.Sample `json:"window,omitempty"`

	// Callsites is the flight recorder's per-callsite stats digest at
	// capture time (tail-sampler columns included when armed).
	Callsites []flight.CallsiteStats `json:"callsites,omitempty"`

	// Records are the recent sampled causal timelines; Outliers are
	// the tail sampler's retained timeout/straggler timelines — the
	// calls that actually explain the event.
	Records  []flight.RecordView `json:"records,omitempty"`
	Outliers []flight.RecordView `json:"outliers,omitempty"`

	// CriticalPaths attributes each captured slow call's latency
	// across queue-wait/dispatch/execute/return, slowest first.
	CriticalPaths []CriticalPath `json:"critical_paths,omitempty"`

	// EPC is the pressure observatory's snapshot at capture time —
	// per-owner residency/WSS/interference — when the monitor has an
	// epcstat collector attached.
	EPC *epcstat.Snapshot `json:"epc,omitempty"`

	// WhatIf is the what-if observatory's report at capture time — the
	// latest causal profile and the shadow router's per-callsite policy
	// costs and cycles-of-regret — when the monitor has an observatory
	// attached.  For a routing-regret incident this is the primary
	// evidence: it shows which rerouting would have paid for itself.
	WhatIf *whatif.Report `json:"whatif,omitempty"`

	// Telemetry is the full registry snapshot (counters, gauges,
	// histograms), when a registry was attached.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`

	// Dist holds the non-empty high-resolution latency histogram
	// snapshots, keyed by dist.SeriesName, when a set was attached.
	Dist map[string]dist.Snapshot `json:"dist,omitempty"`
}

// RenderText renders the bundle's postmortem summary as aligned plain
// text: the firing diagnosis, the affected callsites, and the
// critical-path table answering "where did the latency go".
func (b *Bundle) RenderText() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "incident %s (%s)\n", b.ID, b.Schema)
	fmt.Fprintf(&sb, "rule: %s  severity: %s  value: %.4g  threshold: %.4g\n",
		b.Event.Rule, b.Event.Severity, b.Event.Value, b.Event.Threshold)
	fmt.Fprintf(&sb, "diagnosis: %s\n", b.Event.Diagnosis)
	fmt.Fprintf(&sb, "captured: %s  window: %d samples  records: %d  outliers: %d\n",
		b.CapturedAt.Format(time.RFC3339), len(b.Window), len(b.Records), len(b.Outliers))

	if len(b.Callsites) > 0 {
		fmt.Fprintf(&sb, "\ncallsites:\n%-20s %10s %8s %8s %10s %10s %10s\n",
			"callsite", "calls", "timeout", "fallbk", "outliers", "p99 lat", "cutoff")
		for _, cs := range b.Callsites {
			fmt.Fprintf(&sb, "%-20s %10d %8d %8d %10d %10s %10s\n",
				cs.Name, cs.Arrivals, cs.Timeouts, cs.Fallbacks, cs.Outliers,
				flight.FmtNS(cs.LatencyP99NS), flight.FmtNS(cs.CutoffNS))
		}
	}

	if len(b.CriticalPaths) > 0 {
		sb.WriteString("\ncritical paths (slowest captured calls):\n")
		sb.WriteString(RenderCriticalPaths(b.CriticalPaths))
	} else {
		sb.WriteString("\n(no complete timelines captured)\n")
	}

	if b.EPC != nil {
		sb.WriteString("\nepc pressure:\n")
		sb.WriteString(b.EPC.RenderText())
	}

	if b.WhatIf != nil {
		sb.WriteString("\nwhat-if observatory:\n")
		sb.WriteString(b.WhatIf.RenderText())
	}
	return sb.String()
}

package whatif_test

import (
	"net/http/httptest"
	"strings"
	"testing"

	"hotcalls/internal/flight"
	"hotcalls/internal/sim"
	"hotcalls/internal/whatif"
)

// TestHandlerContentTypes holds /debug/whatif to the shared debug
// endpoint contract: explicit Content-Type per format, 400 on unknown
// ones, and the JSON body carries the report schema.
func TestHandlerContentTypes(t *testing.T) {
	o := whatif.NewObservatory(whatif.CostParams{})
	o.SetCausal(whatif.AnalyzeCausal(whatif.DefaultModel().Generate(sim.NewRNG(1), 100), 0.10))
	h := whatif.Handler(o)

	for _, c := range []struct {
		query  string
		status int
		ct     string
		body   string
	}{
		{"", 200, flight.ContentTypeJSON, whatif.ReportSchema},
		{"?format=json", 200, flight.ContentTypeJSON, whatif.RoutingSchema},
		{"?format=text", 200, flight.ContentTypeText, "what-if observatory"},
		{"?format=svg", 200, whatif.ContentTypeSVG, "<svg"},
		{"?format=pdf", 400, "", ""},
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/whatif"+c.query, nil))
		if rec.Code != c.status {
			t.Errorf("%q: status %d, want %d", c.query, rec.Code, c.status)
		}
		if c.ct != "" && rec.Header().Get("Content-Type") != c.ct {
			t.Errorf("%q: content-type %q, want %q", c.query, rec.Header().Get("Content-Type"), c.ct)
		}
		if c.body != "" && !strings.Contains(rec.Body.String(), c.body) {
			t.Errorf("%q: body missing %q", c.query, c.body)
		}
	}
}

// TestHandlerNilObservatory: the handler must serve an empty report,
// not panic, when the observatory was never armed.
func TestHandlerNilObservatory(t *testing.T) {
	h := whatif.Handler(nil)
	for _, q := range []string{"", "?format=text", "?format=svg"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/whatif"+q, nil))
		if rec.Code != 200 {
			t.Fatalf("%q on nil observatory: status %d", q, rec.Code)
		}
	}
}

// TestObservatoryPrometheus pins the regret exposition series.
func TestObservatoryPrometheus(t *testing.T) {
	o := whatif.NewObservatory(whatif.CostParams{})
	o.Router().Declare("busy", whatif.PolicySync)
	o.Observe(threeSites(1), 0)
	o.Observe(threeSites(2), 1e9)

	var b strings.Builder
	if err := o.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"whatif_regret_cycles_total ",
		"whatif_interval_regret_cycles ",
		`whatif_callsite_regret_cycles{callsite="busy",current="sync",best="hot"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Nil-safe no-op.
	if err := (*whatif.Observatory)(nil).WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
}

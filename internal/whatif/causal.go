package whatif

import (
	"sort"

	"hotcalls/internal/profile"
)

// CausalSchema identifies the causal-profile wire format.
const CausalSchema = "whatif-causal/v1"

// ComponentImpact is one component's causal line: its attributed cycles
// and share, and the predicted relative throughput change from a
// virtual speedup of the profile's Delta.  For a serial cycle stream
// the prediction is exact arithmetic — throughput N/C becomes
// N/(C − δ·C_k) — so Share IS the derivative d(lnT)/dδ at δ=0, and
// PredictedDeltaPct = 100·s·δ/(1 − s·δ) for share s.
type ComponentImpact struct {
	Component         string  `json:"component"`
	Cycles            uint64  `json:"cycles"`
	Share             float64 `json:"share"`
	PredictedDeltaPct float64 `json:"predicted_delta_pct"`
}

// CallsiteImpact is one callsite's causal line: speeding up everything
// this callsite does by Delta, with the per-component decomposition
// restricted to the callsite.
type CallsiteImpact struct {
	Site              string            `json:"site"`
	Calls             uint64            `json:"calls"`
	Cycles            uint64            `json:"cycles"`
	Share             float64           `json:"share"`
	PredictedDeltaPct float64           `json:"predicted_delta_pct"`
	Components        []ComponentImpact `json:"components,omitempty"`
}

// CausalProfile is the result of a virtual-speedup sweep over a recorded
// workload: per-component and per-callsite d(throughput)/d(component).
type CausalProfile struct {
	Schema      string  `json:"schema"`
	Delta       float64 `json:"delta"` // virtual-speedup fraction of the *Pct columns
	Calls       uint64  `json:"calls"`
	TotalCycles uint64  `json:"total_cycles"`

	Components []ComponentImpact `json:"components"`
	Callsites  []CallsiteImpact  `json:"callsites,omitempty"`
}

// VirtualSpeedup replays the workload with one component's cost scaled
// by (1 − delta) on every call and returns the relative throughput
// change (0.07 = +7%).  Negative delta models a slowdown.
func (w Workload) VirtualSpeedup(comp profile.Category, delta float64) float64 {
	var base, scaled float64
	for _, c := range w.Calls {
		t := float64(c.Total())
		base += t
		scaled += t - delta*float64(c.Cycles[comp])
	}
	if base == 0 || scaled <= 0 {
		return 0
	}
	return base/scaled - 1
}

// VirtualSpeedupSite replays the workload with every cost of one
// callsite scaled by (1 − delta) and returns the relative throughput
// change — "what if this call path got delta faster end to end".
func (w Workload) VirtualSpeedupSite(site string, delta float64) float64 {
	var base, scaled float64
	for _, c := range w.Calls {
		t := float64(c.Total())
		base += t
		if c.Site == site {
			scaled += (1 - delta) * t
		} else {
			scaled += t
		}
	}
	if base == 0 || scaled <= 0 {
		return 0
	}
	return base/scaled - 1
}

// AnalyzeCausal runs the virtual-speedup sweep at the given delta
// (0 selects the conventional 10%) and returns the causal profile:
// components in category order (zero-cycle categories omitted),
// callsites sorted by name, each with its own component decomposition.
func AnalyzeCausal(w Workload, delta float64) *CausalProfile {
	if delta == 0 {
		delta = 0.10
	}
	p := &CausalProfile{
		Schema:      CausalSchema,
		Delta:       delta,
		Calls:       uint64(len(w.Calls)),
		TotalCycles: w.TotalCycles(),
	}
	if p.TotalCycles == 0 {
		return p
	}
	total := float64(p.TotalCycles)

	var compCycles [profile.NumCategories]uint64
	type siteAcc struct {
		calls  uint64
		cycles uint64
		comp   [profile.NumCategories]uint64
	}
	sites := map[string]*siteAcc{}
	for _, c := range w.Calls {
		sa := sites[c.Site]
		if sa == nil {
			sa = &siteAcc{}
			sites[c.Site] = sa
		}
		sa.calls++
		for k, v := range c.Cycles {
			compCycles[k] += v
			sa.comp[k] += v
			sa.cycles += v
		}
	}

	impact := func(cycles uint64) (share, pct float64) {
		share = float64(cycles) / total
		pct = 100 * (total/(total-delta*float64(cycles)) - 1)
		return
	}

	for k := profile.Category(0); k < profile.NumCategories; k++ {
		if compCycles[k] == 0 {
			continue
		}
		share, pct := impact(compCycles[k])
		p.Components = append(p.Components, ComponentImpact{
			Component:         k.String(),
			Cycles:            compCycles[k],
			Share:             share,
			PredictedDeltaPct: pct,
		})
	}

	names := make([]string, 0, len(sites))
	for name := range sites {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sa := sites[name]
		share, pct := impact(sa.cycles)
		ci := CallsiteImpact{
			Site:              name,
			Calls:             sa.calls,
			Cycles:            sa.cycles,
			Share:             share,
			PredictedDeltaPct: pct,
		}
		for k := profile.Category(0); k < profile.NumCategories; k++ {
			if sa.comp[k] == 0 {
				continue
			}
			cshare, cpct := impact(sa.comp[k])
			ci.Components = append(ci.Components, ComponentImpact{
				Component:         k.String(),
				Cycles:            sa.comp[k],
				Share:             cshare,
				PredictedDeltaPct: cpct,
			})
		}
		p.Callsites = append(p.Callsites, ci)
	}
	return p
}

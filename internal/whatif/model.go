package whatif

import (
	"hotcalls/internal/core"
	"hotcalls/internal/epc"
	"hotcalls/internal/profile"
	"hotcalls/internal/sim"
)

// CostSpec describes one component's per-call cost draw in the
// synthetic workload generator: with probability Prob the call incurs
// Mean cycles jittered uniformly by ±Jitter·Mean.
type CostSpec struct {
	Mean   float64
	Jitter float64 // fraction of Mean, uniform both ways
	Prob   float64 // per-call incidence (0 treated as 1 when Mean > 0)
}

// Model generates synthetic workloads from per-component cost specs.
// DefaultModel mirrors the constants the simulation actually charges,
// so a generated workload's causal profile lines up with a traced one —
// and, more importantly, the generator is the "actually applied" arm of
// causal validation: predict a speedup from one workload, then Generate
// again from a Scaled model and compare measured throughput.
type Model struct {
	Site string
	Spec [profile.NumCategories]CostSpec
}

// DefaultModel returns a model calibrated to the simulation's warm
// ecall-with-work shape: EENTER/EEXIT microcode, the SDK software path
// and its cache-line traffic (profile.AnalyticWarmECall), the HotCall
// latency model's spin mean with its dispersion, an ~8-node MEE tree
// walk at the calibrated 28-cycle node fetch, a 2% EPC fault incidence
// at the paging manager's trap+ELDU price, and a moderate handler body.
func DefaultModel() Model {
	a := profile.AnalyticWarmECall()
	spin := core.NewLatencyModel(sim.NewRNG(1)).Mean()
	m := Model{Site: "whatif.synth"}
	m.Spec[profile.CatMicrocode] = CostSpec{Mean: a.Microcode}
	m.Spec[profile.CatMarshal] = CostSpec{Mean: a.Marshal, Jitter: 0.1}
	m.Spec[profile.CatCache] = CostSpec{Mean: a.Cache, Jitter: 0.2}
	m.Spec[profile.CatSpin] = CostSpec{Mean: spin, Jitter: 0.5}
	m.Spec[profile.CatMEE] = CostSpec{Mean: 8 * 28, Jitter: 0.5}
	m.Spec[profile.CatEPC] = CostSpec{Mean: epc.FaultCost, Prob: 0.02}
	m.Spec[profile.CatHandler] = CostSpec{Mean: 1500, Jitter: 0.3}
	return m
}

// Scaled returns a copy with one component's mean cost multiplied by f
// — the applied counterpart of a virtual speedup by (1 − f).
func (m Model) Scaled(comp profile.Category, f float64) Model {
	m.Spec[comp].Mean *= f
	return m
}

// Generate draws n calls.  Each component stream forks its own RNG, so
// scaling one component leaves every other component's draws — and the
// comparison workload — untouched.
func (m Model) Generate(rng *sim.RNG, n int) Workload {
	var streams [profile.NumCategories]*sim.RNG
	for k := range streams {
		streams[k] = rng.Fork(uint64(k) + 1)
	}
	w := Workload{Calls: make([]Call, n)}
	for i := range w.Calls {
		c := Call{Site: m.Site}
		for k, spec := range m.Spec {
			if spec.Mean <= 0 {
				continue
			}
			r := streams[k]
			if spec.Prob > 0 && !r.Bool(spec.Prob) {
				continue
			}
			cost := spec.Mean
			if spec.Jitter > 0 {
				cost *= 1 + r.Uniform(-spec.Jitter, spec.Jitter)
			}
			if cost < 0 {
				cost = 0
			}
			c.Cycles[k] = uint64(cost + 0.5)
		}
		w.Calls[i] = c
	}
	return w
}

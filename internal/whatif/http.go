package whatif

import (
	"encoding/json"
	"net/http"

	"hotcalls/internal/flight"
)

// ContentTypeSVG is the Content-Type of the SVG rendering.
const ContentTypeSVG = "image/svg+xml; charset=utf-8"

// Handler serves the observatory at /debug/whatif.  ?format= selects
// the rendering: "" or "json" → the combined Report JSON, "text" →
// RenderText, "svg" → the causal curves (or policy-cost figure);
// anything else is a 400.  Safe on a nil observatory.
func Handler(o *Observatory) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		format := r.URL.Query().Get("format")
		switch format {
		case "", "json", "text", "svg":
		default:
			http.Error(w, "unknown format (want json, text, or svg)", http.StatusBadRequest)
			return
		}
		rep := o.Report()
		switch format {
		case "", "json":
			w.Header().Set("Content-Type", flight.ContentTypeJSON)
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(rep)
		case "text":
			w.Header().Set("Content-Type", flight.ContentTypeText)
			w.Write([]byte(rep.RenderText()))
		case "svg":
			w.Header().Set("Content-Type", ContentTypeSVG)
			w.Write([]byte(rep.RenderSVG()))
		}
	})
}

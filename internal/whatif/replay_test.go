package whatif_test

import (
	"testing"

	"hotcalls/internal/sim"
	"hotcalls/internal/whatif"
)

// TestOrderingAgreement is the shadow router's acceptance bar: across
// the rate × service grid and seeds 0/7/42/123, the closed-form
// estimator's recommended policy must agree with the brute-force
// discrete-event replay's optimum on at least 95% of callsite-intervals
// (a pick that replays within 2% of the optimum counts as a tie, not a
// disagreement).
func TestOrderingAgreement(t *testing.T) {
	res := whatif.OrderingAgreement(whatif.CostParams{}, []uint64{0, 7, 42, 123}, 2)
	if res.Total < 100 {
		t.Fatalf("only %d callsite-intervals swept; the grid should produce ~128", res.Total)
	}
	if f := res.Fraction(); f < 0.95 {
		t.Fatalf("estimator agrees with replay on %.1f%% of %d intervals, acceptance bar is 95%%",
			f*100, res.Total)
	} else {
		t.Logf("agreement %.1f%% over %d callsite-intervals", f*100, res.Total)
	}
}

// TestReplayDeterministic: same seed, same trace, same verdicts.
func TestReplayDeterministic(t *testing.T) {
	p := whatif.DefaultCostParams()
	a := whatif.SynthTrace(sim.NewRNG(9), 5000, 2000, 100e6)
	b := whatif.SynthTrace(sim.NewRNG(9), 5000, 2000, 100e6)
	if len(a.ArrivalsNS) == 0 || len(a.ArrivalsNS) != len(b.ArrivalsNS) {
		t.Fatalf("traces diverged: %d vs %d arrivals", len(a.ArrivalsNS), len(b.ArrivalsNS))
	}
	if p.ReplayAll(a) != p.ReplayAll(b) {
		t.Fatal("replay is not deterministic")
	}
}

// TestReplayRegimes sanity-checks the replay's economics at the
// extremes: a trickle must replay cheapest under sync, a torrent under
// hot.
func TestReplayRegimes(t *testing.T) {
	p := whatif.DefaultCostParams()

	trickle := whatif.SynthTrace(sim.NewRNG(1), 10, 2000, 1e9)
	if best := whatif.Best(p.ReplayAll(trickle)); best != whatif.PolicySync {
		t.Errorf("trickle replays best under %s, want sync (%v)", best, p.ReplayAll(trickle))
	}

	torrent := whatif.SynthTrace(sim.NewRNG(2), 1000000, 500, 1e9)
	if best := whatif.Best(p.ReplayAll(torrent)); best != whatif.PolicyHot {
		t.Errorf("torrent replays best under %s, want hot (%v)", best, p.ReplayAll(torrent))
	}
}

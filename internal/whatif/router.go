package whatif

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"hotcalls/internal/flight"
	"hotcalls/internal/sim"
)

// Policy is a callsite routing choice.
type Policy uint8

// The three routing policies the paper's design space spans: the
// classic SDK synchronous ecall (no spinning, ~8,640 cycles of
// crossing), the dedicated single-slot HotCall responder (a whole core
// spinning for one callsite, ~620 cycles per call), and the shared
// windowed responder pool (amortized spinning, a dispatch queue).
const (
	PolicySync Policy = iota
	PolicyHot
	PolicyPooled
	NumPolicies
)

// String returns the policy's table label.
func (p Policy) String() string {
	switch p {
	case PolicySync:
		return "sync"
	case PolicyHot:
		return "hot"
	case PolicyPooled:
		return "pooled"
	}
	return "unknown"
}

// MarshalJSON emits the string label, keeping reports readable.
func (p Policy) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// UnmarshalJSON accepts the string label.
func (p *Policy) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for q := Policy(0); q < NumPolicies; q++ {
		if q.String() == s {
			*p = q
			return nil
		}
	}
	return fmt.Errorf("whatif: unknown policy %q", s)
}

// CostParams are the estimator's calibrated per-policy costs, all in
// nanoseconds of core time (at sim.FrequencyHz, 1 ns = 4 cycles).  The
// defaults derive from the paper's headline numbers: a 620-cycle
// HotCall and an 8,640-cycle warm SDK ecall at 4 GHz.
type CostParams struct {
	HotSyncNS      float64 // per-call sync overhead on a dedicated hot slot
	PooledSyncNS   float64 // per-call submit+claim+return overhead on the pool
	SyncCallNS     float64 // per-call overhead of the full SDK crossing
	PollNS         float64 // one empty responder poll round
	PooledShare    float64 // one callsite's default share of a pooled spinner's idle
	PoolBackground float64 // fraction of pooled-responder time taken by other callsites
	MaxRho         float64 // utilization clamp for the queue-wait terms
	MinCalls       uint64  // ignore callsite-intervals with fewer arrivals

	// Per-byte terms, separating payload cost from per-call cost.  The
	// sync and hot policies marshal through the SDK's staging copies
	// (copy-in, copy-out, and the MEE walk per touched line), so they
	// pay StagedPerByteNS per payload byte; the pooled policy rides the
	// zero-copy payload rings, whose bytes are written exactly once by
	// their producer, so it pays only PooledPerByteNS (descriptor
	// handling and cache effects).  Callsites that move no payload
	// (flight Bytes 0) are unaffected.
	StagedPerByteNS float64
	PooledPerByteNS float64
}

// DefaultCostParams returns the calibrated defaults.
func DefaultCostParams() CostParams {
	return CostParams{
		HotSyncNS:      155,  // 620 cycles @ 4 GHz
		PooledSyncNS:   250,  // hot sync + windowed dispatch + claim
		SyncCallNS:     2160, // 8,640 cycles @ 4 GHz
		PollNS:         25,   // ~100-cycle poll loop
		PooledShare:    0.125,
		PoolBackground: 0.30,
		MaxRho:         0.95,
		MinCalls:       1,

		StagedPerByteNS: 0.08,  // in+out staging copies + MEE walk, ~0.32 cyc/B
		PooledPerByteNS: 0.004, // ring descriptor + cache effects, ~1/20th
	}
}

func (p *CostParams) fill() {
	if *p == (CostParams{}) {
		*p = DefaultCostParams()
	}
}

// IntervalStats is one callsite-interval as the estimator sees it:
// interval arrivals, per-call service time, the interval length, and —
// when the flight recorder attributed it — the observed wasted spin.
type IntervalStats struct {
	Site            string
	Arrivals        float64
	ServiceNS       float64
	IntervalNS      float64
	BytesPerCall    float64 // mean payload bytes per call (0 for plain calls)
	WastedSpinNS    float64 // attributed empty-poll core time this interval
	WasteObserved   bool    // WastedSpinNS came from live attribution
	CurrentlyPooled bool    // informational; scoring is policy-agnostic
}

// Score predicts each policy's total core-nanoseconds for the interval:
// requester-side latency (arrivals × per-call cost) plus responder-side
// spin budget.  One currency — core time — so a policy that saves
// per-call latency by burning a dedicated spinning core is charged for
// the core, and a policy that serializes calls through one responder is
// charged the queueing it induces.
//
//   - sync:   A·(SyncCallNS + S).  Every requester crosses on its own
//     core: dearest per call, but embarrassingly parallel and no spin.
//   - hot:    A·(HotSyncNS + W + S) + (T − A·S).  A dedicated slot:
//     cheapest crossing, but calls serialize through one responder
//     (queue-wait term W = ρ/(1−ρ)·S from own traffic, ρ clamped at
//     MaxRho) and the responder core burns every idle nanosecond.
//   - pooled: A·(PooledSyncNS + W' + S') + idle share.  The shared
//     responder is already busy a PoolBackground fraction of the time
//     with other callsites, so this site's effective service time is
//     S' = S/(1 − PoolBackground) and the queue runs at ρ' = ρ/(1 −
//     PoolBackground); in exchange the idle charge is only the flight
//     recorder's observed wasted-spin attribution when present, else
//     PooledShare of the dedicated slot's idle — a shared spinner's
//     fair share.
//
// The regimes follow: sync wins trickles (any spinner out-burns the
// crossings) and near-saturation (queueing beats parallelism never);
// pooled wins the mid range; hot wins high-rate moderate-utilization
// sites where pool interference costs more than a private core's idle.
// Payload bytes add a fourth, policy-dependent term: A·B·StagedPerByteNS
// on the staged-copy policies (sync and hot), A·B·PooledPerByteNS on the
// pooled policy's zero-copy ring — which is what lets the shadow router
// tell a chatty-small callsite (per-call cost dominates; routing barely
// matters) from a bulk-transfer one (per-byte cost dominates; the ring
// is the whole game).
func (p CostParams) Score(st IntervalStats) [NumPolicies]float64 {
	a, s, t := st.Arrivals, st.ServiceNS, st.IntervalNS
	busy := a * s
	stagedBytes := a * st.BytesPerCall * p.StagedPerByteNS
	var c [NumPolicies]float64
	c[PolicySync] = a*(p.SyncCallNS+s) + stagedBytes

	hotIdle := t - busy
	if hotIdle < 0 {
		hotIdle = 0
	}
	rho := 0.0
	if t > 0 {
		rho = busy / t
	}
	wait := func(rho, s float64) float64 {
		if rho > p.MaxRho {
			rho = p.MaxRho
		}
		return rho / (1 - rho) * s
	}
	c[PolicyHot] = a*(p.HotSyncNS+wait(rho, s)+s) + hotIdle + stagedBytes

	sEff := s / (1 - p.PoolBackground)
	idle := st.WastedSpinNS
	if !st.WasteObserved {
		idle = p.PooledShare * hotIdle
	}
	c[PolicyPooled] = a*(p.PooledSyncNS+wait(rho/(1-p.PoolBackground), sEff)+sEff) + idle +
		a*st.BytesPerCall*p.PooledPerByteNS
	return c
}

// Best returns the cheapest policy of a score vector (ties to the
// lowest-numbered policy: sync before hot before pooled).
func Best(costs [NumPolicies]float64) Policy {
	best := Policy(0)
	for q := Policy(1); q < NumPolicies; q++ {
		if costs[q] < costs[best] {
			best = q
		}
	}
	return best
}

// Decision is one callsite-interval's shadow verdict: the predicted
// cost of every policy, the declared current policy, the shadow-optimal
// recommendation, and the regret — the core time the static choice
// wastes against the optimum this interval.  Costs are indexed
// [sync, hot, pooled].
type Decision struct {
	Site      string  `json:"site"`
	Arrivals  uint64  `json:"arrivals"`
	RatePerS  float64 `json:"rate_per_s"`
	ServiceNS float64 `json:"service_ns"`

	// BytesPerCall is the interval's mean payload bytes per call, the
	// input of the per-byte cost terms (omitted for plain callsites).
	BytesPerCall float64 `json:"bytes_per_call,omitempty"`

	Current Policy                `json:"current"`
	Best    Policy                `json:"best"`
	CostsNS [NumPolicies]float64  `json:"costs_ns"` // [sync, hot, pooled]

	RegretNS     float64 `json:"regret_ns"`
	RegretCycles float64 `json:"regret_cycles"`
}

// RoutingSchema identifies the router-snapshot wire format.
const RoutingSchema = "whatif-routing/v1"

// RouterSnapshot is the shadow router's latest interval: the per-
// callsite decisions (worst regret first) and the regret accumulators.
type RouterSnapshot struct {
	Schema     string `json:"schema"`
	IntervalNS uint64 `json:"interval_ns"`
	Intervals  uint64 `json:"intervals"` // scored intervals so far

	Decisions []Decision `json:"decisions,omitempty"`

	IntervalRegretCycles float64 `json:"interval_regret_cycles"`
	CumRegretCycles      float64 `json:"cum_regret_cycles"`
}

// Worst returns the decision with the highest interval regret, or nil.
func (s *RouterSnapshot) Worst() *Decision {
	if s == nil || len(s.Decisions) == 0 {
		return nil
	}
	return &s.Decisions[0]
}

// Router is the shadow call-router.  Declare the fabric's static
// routing per callsite (default pooled — the fabric apps route
// everything through the CallPool), feed it the flight recorder's stats
// table once per monitor interval via Observe, and read back decisions
// and regret.  It never changes any routing: it only prices the road
// not taken.
type Router struct {
	mu       sync.Mutex
	params   CostParams
	declared map[string]Policy
	fallback Policy

	prev   map[int]flight.CallsiteStats
	primed bool

	last RouterSnapshot
}

// NewRouter returns a shadow router; a zero CostParams selects
// DefaultCostParams.
func NewRouter(params CostParams) *Router {
	params.fill()
	return &Router{
		params:   params,
		declared: make(map[string]Policy),
		fallback: PolicyPooled,
		last:     RouterSnapshot{Schema: RoutingSchema},
	}
}

// Params returns the estimator's cost parameters.
func (r *Router) Params() CostParams { return r.params }

// Declare records a callsite's actual static routing policy.
func (r *Router) Declare(site string, p Policy) {
	r.mu.Lock()
	r.declared[site] = p
	r.mu.Unlock()
}

// DeclareDefault sets the policy assumed for undeclared callsites
// (initially pooled).
func (r *Router) DeclareDefault(p Policy) {
	r.mu.Lock()
	r.fallback = p
	r.mu.Unlock()
}

// Observe scores one interval of the flight recorder's cumulative stats
// table against the previous call's table.  The first call (and any
// zero-length interval) only primes the baseline.  It returns the new
// snapshot; Snapshot returns the same thing later.
func (r *Router) Observe(stats []flight.CallsiteStats, intervalNS uint64) RouterSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()

	cur := make(map[int]flight.CallsiteStats, len(stats))
	for _, cs := range stats {
		cur[cs.ID] = cs
	}
	prev := r.prev
	r.prev = cur
	if !r.primed || intervalNS == 0 {
		r.primed = true
		r.last = RouterSnapshot{Schema: RoutingSchema, CumRegretCycles: r.last.CumRegretCycles,
			Intervals: r.last.Intervals}
		return r.last
	}

	snap := RouterSnapshot{
		Schema:          RoutingSchema,
		IntervalNS:      intervalNS,
		Intervals:       r.last.Intervals + 1,
		CumRegretCycles: r.last.CumRegretCycles,
	}
	for _, cs := range stats {
		p := prev[cs.ID] // zero row on a callsite's first interval
		dArr := cs.Arrivals - p.Arrivals
		if dArr < r.params.MinCalls {
			continue
		}
		service := float64(cs.ServiceP50NS)
		if service == 0 {
			service = float64(cs.LatencyP50NS)
		}
		if service == 0 {
			continue // no latency signal yet; cannot price the interval
		}
		dWaste := cs.WastedSpin - p.WastedSpin
		st := IntervalStats{
			Site:          cs.Name,
			Arrivals:      float64(dArr),
			ServiceNS:     service,
			IntervalNS:    float64(intervalNS),
			BytesPerCall:  float64(cs.Bytes-p.Bytes) / float64(dArr),
			WastedSpinNS:  dWaste * r.params.PollNS,
			WasteObserved: dWaste > 0,
		}
		costs := r.params.Score(st)
		current, ok := r.declared[cs.Name]
		if !ok {
			current = r.fallback
		}
		best := Best(costs)
		regretNS := costs[current] - costs[best]
		d := Decision{
			Site:         cs.Name,
			Arrivals:     dArr,
			RatePerS:     st.Arrivals / (st.IntervalNS / 1e9),
			ServiceNS:    service,
			BytesPerCall: st.BytesPerCall,
			Current:      current,
			Best:         best,
			CostsNS:      costs,
			RegretNS:     regretNS,
			RegretCycles: regretNS * (sim.FrequencyHz / 1e9),
		}
		snap.Decisions = append(snap.Decisions, d)
		snap.IntervalRegretCycles += d.RegretCycles
	}
	sort.Slice(snap.Decisions, func(i, j int) bool {
		a, b := snap.Decisions[i], snap.Decisions[j]
		if a.RegretCycles != b.RegretCycles {
			return a.RegretCycles > b.RegretCycles
		}
		return a.Site < b.Site
	})
	snap.CumRegretCycles += snap.IntervalRegretCycles
	r.last = snap
	return snap
}

// Snapshot returns the latest interval's verdicts.
func (r *Router) Snapshot() RouterSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// Package whatif is the counterfactual half of the observability stack:
// where internal/profile answers "where did the cycles go", this package
// answers "what would change if they went somewhere else".
//
// It has two instruments.  The causal profiler runs virtual-speedup
// experiments over a recorded workload (per-call cycle attributions from
// internal/profile's deep traces, or the synthetic generator in
// model.go): scale one component's cost — marshal, spin, MEE walk, EPC
// fault, handler, microcode — by ±δ, replay the workload, and report
// d(throughput)/d(component) per component and per callsite.  Because
// the simulated fabric is a serial cycle stream, the replay is exact,
// and the profile is cross-checked against the analytic cost model the
// simulation charges (TestCausalVsAnalytic) and against actually-applied
// cost-model changes (TestCausalAppliedModel, TestCausalAppliedSim) —
// the PR-2 cross-validation discipline extended to counterfactuals.
//
// The shadow call-router consumes the flight recorder's per-callsite
// stats (EWMA arrival rate, service quantiles, wasted-spin attribution)
// and scores, per callsite per interval, the predicted latency + spin
// budget of each routing policy — single-slot hot, pooled fabric, sync
// SDK ecall — WITHOUT changing any routing.  The difference between the
// declared static policy's predicted cost and the shadow-optimal one is
// the cycles-of-regret metric: how much the current configuration pays
// for not being adaptive.  This is the measurement side of the
// ROADMAP's "configless switchless calls": the adaptive dispatcher PR
// only has to act on a signal this package already validates under
// brute-force replay (replay.go, ≥95% ordering agreement).
//
// Surfaces: /debug/whatif (JSON/text/SVG via Handler), the
// routing-regret monitor rule (internal/monitor), incident-bundle
// attachment (internal/incident), Prometheus regret series
// (Observatory.WritePrometheus), and the hotbench -whatif report.
package whatif

import (
	"hotcalls/internal/profile"
	"hotcalls/internal/telemetry"
)

// Call is one recorded call of a workload: its callsite label and the
// per-component cycle attribution the causal replay scales.
type Call struct {
	Site   string
	Cycles [profile.NumCategories]uint64
}

// Total returns the call's summed attributed cycles.
func (c Call) Total() uint64 {
	var t uint64
	for _, v := range c.Cycles {
		t += v
	}
	return t
}

// Workload is a recorded stream of attributed calls — the replayable
// substrate of virtual-speedup experiments.
type Workload struct {
	Calls []Call
}

// TotalCycles returns the workload's summed cycles: the serial fabric's
// wall time, so throughput is len(Calls)/TotalCycles.
func (w Workload) TotalCycles() uint64 {
	var t uint64
	for _, c := range w.Calls {
		t += c.Total()
	}
	return t
}

// FromRecords adapts profile per-call records into a workload.
func FromRecords(recs []profile.CallRecord) Workload {
	w := Workload{Calls: make([]Call, len(recs))}
	for i, r := range recs {
		w.Calls[i] = Call{Site: r.Name, Cycles: r.Cycles}
	}
	return w
}

// FromEvents captures a workload from a deep-tracing event stream (the
// same stream internal/profile analyzes).
func FromEvents(events []telemetry.Event) Workload {
	return FromRecords(profile.CallRecords(events))
}

package whatif

import (
	"fmt"
	"io"
	"sync"

	"hotcalls/internal/flight"
)

// ReportSchema identifies the combined what-if report wire format.
const ReportSchema = "whatif-report/v1"

// Report is the observatory's combined view: the latest causal profile
// (when one has been captured) and the shadow router's latest interval.
type Report struct {
	Schema  string         `json:"schema"`
	Causal  *CausalProfile `json:"causal,omitempty"`
	Routing RouterSnapshot `json:"routing"`
}

// Observatory ties the two instruments together behind one surface: the
// shadow router scores every monitor interval, and a causal profile can
// be attached whenever a deep trace (or synthetic workload) has been
// analyzed.  It is the thing /debug/whatif serves, the monitor's
// routing-regret rule reads, and incident bundles embed.
type Observatory struct {
	router *Router

	mu     sync.Mutex
	causal *CausalProfile
}

// NewObservatory returns an observatory around a fresh shadow router; a
// zero CostParams selects DefaultCostParams.
func NewObservatory(params CostParams) *Observatory {
	return &Observatory{router: NewRouter(params)}
}

// Router exposes the shadow router for policy declarations.
func (o *Observatory) Router() *Router {
	if o == nil {
		return nil
	}
	return o.router
}

// SetCausal attaches (or replaces) the causal profile the report carries.
func (o *Observatory) SetCausal(p *CausalProfile) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.causal = p
	o.mu.Unlock()
}

// Causal returns the attached causal profile, or nil.
func (o *Observatory) Causal() *CausalProfile {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.causal
}

// Observe feeds one interval of flight-recorder stats to the shadow
// router.  Nil-safe so callers can leave the observatory unarmed.
func (o *Observatory) Observe(stats []flight.CallsiteStats, intervalNS uint64) RouterSnapshot {
	if o == nil {
		return RouterSnapshot{Schema: RoutingSchema}
	}
	return o.router.Observe(stats, intervalNS)
}

// Report assembles the combined report.  Nil-safe: an unarmed
// observatory reports an empty routing snapshot and no causal profile.
func (o *Observatory) Report() *Report {
	rep := &Report{Schema: ReportSchema, Routing: RouterSnapshot{Schema: RoutingSchema}}
	if o == nil {
		return rep
	}
	rep.Routing = o.router.Snapshot()
	rep.Causal = o.Causal()
	return rep
}

// WritePrometheus appends the observatory's regret series in Prometheus
// exposition format: cumulative regret, the latest interval's regret,
// and per-callsite regret with the current and recommended policies as
// labels.  Nil-safe no-op.
func (o *Observatory) WritePrometheus(w io.Writer) error {
	if o == nil {
		return nil
	}
	snap := o.router.Snapshot()
	if _, err := fmt.Fprintf(w, "# HELP whatif_regret_cycles_total Cumulative shadow-routing regret in cycles.\n# TYPE whatif_regret_cycles_total counter\nwhatif_regret_cycles_total %g\n", snap.CumRegretCycles); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# HELP whatif_interval_regret_cycles Latest interval's shadow-routing regret in cycles.\n# TYPE whatif_interval_regret_cycles gauge\nwhatif_interval_regret_cycles %g\n", snap.IntervalRegretCycles); err != nil {
		return err
	}
	if len(snap.Decisions) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP whatif_callsite_regret_cycles Latest interval's regret per callsite.\n# TYPE whatif_callsite_regret_cycles gauge\n"); err != nil {
		return err
	}
	for _, d := range snap.Decisions {
		// %q escapes quotes and backslashes, which matches the
		// Prometheus label escaping rules for these characters.
		if _, err := fmt.Fprintf(w, "whatif_callsite_regret_cycles{callsite=%q,current=%q,best=%q} %g\n",
			d.Site, d.Current.String(), d.Best.String(), d.RegretCycles); err != nil {
			return err
		}
	}
	return nil
}

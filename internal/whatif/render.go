package whatif

import (
	"fmt"
	"strings"

	"hotcalls/internal/dist"
)

// RenderText renders the report as a fixed-width terminal table: the
// causal component ladder first (most impactful component on top), then
// the shadow router's latest interval with per-callsite verdicts.
func (r *Report) RenderText() string {
	var b strings.Builder
	b.WriteString("what-if observatory\n")

	if c := r.Causal; c != nil && len(c.Components) > 0 {
		fmt.Fprintf(&b, "\ncausal profile  (virtual speedup δ=%.0f%%, %d calls, %d cycles)\n",
			c.Delta*100, c.Calls, c.TotalCycles)
		fmt.Fprintf(&b, "  %-10s %14s %8s %12s\n", "component", "cycles", "share", "+throughput")
		for _, ci := range c.Components {
			fmt.Fprintf(&b, "  %-10s %14d %7.1f%% %11.2f%%\n",
				ci.Component, ci.Cycles, ci.Share*100, ci.PredictedDeltaPct)
		}
		for _, site := range c.Callsites {
			fmt.Fprintf(&b, "  callsite %s: %d calls, share %.1f%%, +%.2f%% if %.0f%% faster\n",
				site.Site, site.Calls, site.Share*100, site.PredictedDeltaPct, c.Delta*100)
		}
	} else {
		b.WriteString("\ncausal profile: none captured\n")
	}

	s := r.Routing
	fmt.Fprintf(&b, "\nshadow routing  (%d intervals scored, cum regret %.0f cycles)\n",
		s.Intervals, s.CumRegretCycles)
	if len(s.Decisions) == 0 {
		b.WriteString("  no scored callsites this interval\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %-20s %9s %10s %7s %7s %14s\n",
		"callsite", "rate/s", "svc p50", "now", "best", "regret cyc")
	for _, d := range s.Decisions {
		fmt.Fprintf(&b, "  %-20s %9.0f %8.0fns %7s %7s %14.0f\n",
			d.Site, d.RatePerS, d.ServiceNS, d.Current, d.Best, d.RegretCycles)
	}
	return b.String()
}

// RenderSVG renders the report's figure.  With a causal profile it plots
// the predicted throughput gain of each component across virtual
// speedups δ ∈ [0, 30%] — the Coz-style causal curves; the slope at the
// origin is the component's share.  Without one it plots the shadow
// router's per-callsite predicted policy costs for the latest interval.
// Byte-deterministic via the internal/dist renderer.
func (r *Report) RenderSVG() string {
	if c := r.Causal; c != nil && len(c.Components) > 0 {
		total := float64(c.TotalCycles)
		var series []dist.Series
		for _, ci := range c.Components {
			var pts []dist.CDFPoint
			for d := 0.0; d <= 0.301; d += 0.02 {
				pts = append(pts, dist.CDFPoint{
					Value:    d * 100,
					Fraction: 100 * (total/(total-d*float64(ci.Cycles)) - 1),
				})
			}
			series = append(series, dist.Series{Name: ci.Component, Points: pts})
		}
		return dist.RenderLinesSVG(dist.PlotConfig{
			Title:  "causal profile: virtual speedup vs throughput",
			XLabel: "virtual speedup of component (%)",
			YLabel: "predicted throughput gain (%)",
		}, series)
	}

	cfg := dist.PlotConfig{
		Title:  "shadow routing: predicted policy cost per callsite",
		XLabel: "callsite rank (worst regret first)",
		YLabel: "predicted core time (ns)",
	}
	if len(r.Routing.Decisions) == 0 {
		return dist.RenderLinesSVG(cfg, nil)
	}
	var series [NumPolicies]dist.Series
	for p := Policy(0); p < NumPolicies; p++ {
		series[p].Name = p.String()
	}
	for i, d := range r.Routing.Decisions {
		for p := Policy(0); p < NumPolicies; p++ {
			series[p].Points = append(series[p].Points,
				dist.CDFPoint{Value: float64(i + 1), Fraction: d.CostsNS[p]})
		}
	}
	return dist.RenderLinesSVG(cfg, series[:])
}

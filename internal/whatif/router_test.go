package whatif_test

import (
	"encoding/json"
	"testing"

	"hotcalls/internal/flight"
	"hotcalls/internal/whatif"
)

// threeSites is a stats table whose three callsites sit squarely in the
// three policy regimes at a 1s interval: a 10/s trickle (sync wins — a
// dedicated or shared spinner burns far more than the crossings save),
// a 500k/s stream at 25% utilization (pooled wins — crossing savings
// with amortized spin), and a 1M/s torrent at 50% utilization (hot wins
// — pool interference costs more than a private core's idle).
func threeSites(scale uint64) []flight.CallsiteStats {
	return []flight.CallsiteStats{
		{ID: 0, Name: "rare", Arrivals: 10 * scale, ServiceP50NS: 2000},
		{ID: 1, Name: "mid", Arrivals: 500000 * scale, ServiceP50NS: 500},
		{ID: 2, Name: "busy", Arrivals: 1000000 * scale, ServiceP50NS: 500},
	}
}

func observeInterval(r *whatif.Router) whatif.RouterSnapshot {
	r.Observe(threeSites(1), 0) // prime the cumulative baseline
	return r.Observe(threeSites(2), 1e9)
}

// TestRouterOptimalNoRegret: when every callsite's declared policy is
// the shadow-optimal one, the regret is exactly zero.
func TestRouterOptimalNoRegret(t *testing.T) {
	r := whatif.NewRouter(whatif.CostParams{})
	r.Declare("rare", whatif.PolicySync)
	r.Declare("mid", whatif.PolicyPooled)
	r.Declare("busy", whatif.PolicyHot)

	snap := observeInterval(r)
	if len(snap.Decisions) != 3 {
		t.Fatalf("got %d decisions, want 3: %+v", len(snap.Decisions), snap.Decisions)
	}
	for _, d := range snap.Decisions {
		if d.Best != d.Current {
			t.Errorf("%s: best %s != declared %s (costs %v)", d.Site, d.Best, d.Current, d.CostsNS)
		}
		if d.RegretCycles != 0 {
			t.Errorf("%s: regret %g cycles on an optimal route", d.Site, d.RegretCycles)
		}
	}
	if snap.IntervalRegretCycles != 0 || snap.CumRegretCycles != 0 {
		t.Errorf("interval regret %g, cum %g; want 0", snap.IntervalRegretCycles, snap.CumRegretCycles)
	}
	if snap.Intervals != 1 {
		t.Errorf("intervals = %d, want 1", snap.Intervals)
	}
}

// TestRouterFlagsMisroute: route the high-rate callsite through the
// full SDK ecall and the shadow router must name it as the worst
// regret, recommend the hot policy, and price the regret as the cost
// difference.
func TestRouterFlagsMisroute(t *testing.T) {
	r := whatif.NewRouter(whatif.CostParams{})
	r.Declare("rare", whatif.PolicySync)
	r.Declare("mid", whatif.PolicyPooled)
	r.Declare("busy", whatif.PolicySync) // the deliberate mistake

	snap := observeInterval(r)
	w := snap.Worst()
	if w == nil || w.Site != "busy" {
		t.Fatalf("worst = %+v, want busy", w)
	}
	if w.Best != whatif.PolicyHot {
		t.Errorf("recommended %s, want hot (costs %v)", w.Best, w.CostsNS)
	}
	if w.RegretCycles <= 0 {
		t.Errorf("regret = %g cycles, want > 0", w.RegretCycles)
	}
	wantNS := w.CostsNS[whatif.PolicySync] - w.CostsNS[whatif.PolicyHot]
	if w.RegretNS != wantNS {
		t.Errorf("regret %g ns, want cost difference %g", w.RegretNS, wantNS)
	}
	if snap.CumRegretCycles != snap.IntervalRegretCycles || snap.CumRegretCycles <= 0 {
		t.Errorf("regret accumulators: interval %g cum %g", snap.IntervalRegretCycles, snap.CumRegretCycles)
	}

	// A second identical interval doubles the cumulative regret.
	snap2 := r.Observe(threeSites(3), 1e9)
	if snap2.CumRegretCycles <= snap.CumRegretCycles {
		t.Errorf("cum regret did not accumulate: %g then %g", snap.CumRegretCycles, snap2.CumRegretCycles)
	}
}

// TestRouterWasteAttribution: observed wasted spin feeds the pooled
// policy's idle charge, so a callsite with heavy attributed waste prices
// pooled higher than the same callsite without it.
func TestRouterWasteAttribution(t *testing.T) {
	params := whatif.DefaultCostParams()
	base := whatif.IntervalStats{Site: "s", Arrivals: 1000, ServiceNS: 2000, IntervalNS: 1e9}
	lean := params.Score(base)
	wasteful := base
	wasteful.WastedSpinNS = 5e8
	wasteful.WasteObserved = true
	heavy := params.Score(wasteful)
	if heavy[whatif.PolicyPooled] <= lean[whatif.PolicyPooled] {
		t.Errorf("observed waste did not raise the pooled price: %g vs %g",
			heavy[whatif.PolicyPooled], lean[whatif.PolicyPooled])
	}
	if heavy[whatif.PolicySync] != lean[whatif.PolicySync] || heavy[whatif.PolicyHot] != lean[whatif.PolicyHot] {
		t.Errorf("waste leaked into non-pooled policies: %v vs %v", heavy, lean)
	}
}

// TestRouterSkipsQuietAndUnmeasured: callsite-intervals below MinCalls
// or with no latency signal are not scored.
func TestRouterSkipsQuietAndUnmeasured(t *testing.T) {
	params := whatif.DefaultCostParams()
	params.MinCalls = 100
	r := whatif.NewRouter(params)
	r.Observe([]flight.CallsiteStats{
		{ID: 0, Name: "quiet", ServiceP50NS: 2000},
		{ID: 1, Name: "unmeasured"},
	}, 0)
	snap := r.Observe([]flight.CallsiteStats{
		{ID: 0, Name: "quiet", Arrivals: 99, ServiceP50NS: 2000},
		{ID: 1, Name: "unmeasured", Arrivals: 5000},
	}, 1e9)
	if len(snap.Decisions) != 0 {
		t.Fatalf("scored %d callsites, want 0: %+v", len(snap.Decisions), snap.Decisions)
	}
}

// TestPolicyJSONRoundTrip pins the wire labels.
func TestPolicyJSONRoundTrip(t *testing.T) {
	for p := whatif.Policy(0); p < whatif.NumPolicies; p++ {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var q whatif.Policy
		if err := json.Unmarshal(b, &q); err != nil {
			t.Fatal(err)
		}
		if q != p {
			t.Fatalf("round trip %s -> %s", p, q)
		}
	}
	var q whatif.Policy
	if err := json.Unmarshal([]byte(`"warp"`), &q); err == nil {
		t.Fatal("unknown policy label accepted")
	}
}

// Causal-profile validation, three ways: the synthetic workload's
// per-component costs must match the analytic model the generator was
// calibrated from (TestCausalVsAnalytic); a 10% virtual speedup's
// predicted throughput delta must match the measured delta when the
// same cost-model change is actually applied, per component, within the
// acceptance bar of ±5% (TestCausalAppliedModel); and the same must
// hold end-to-end on the real simulated channel with a scaled HotCall
// latency model (TestCausalAppliedSim).
package whatif_test

import (
	"math"
	"testing"

	"hotcalls/internal/core"
	"hotcalls/internal/edl"
	"hotcalls/internal/profile"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sgx"
	"hotcalls/internal/sim"
	"hotcalls/internal/telemetry"
	"hotcalls/internal/whatif"
)

func TestCausalVsAnalytic(t *testing.T) {
	m := whatif.DefaultModel()
	w := m.Generate(sim.NewRNG(42), 20000)
	p := whatif.AnalyzeCausal(w, 0.10)
	if p.Calls != 20000 || p.Schema != whatif.CausalSchema {
		t.Fatalf("header: %+v", p)
	}

	perCall := map[string]float64{}
	for _, ci := range p.Components {
		perCall[ci.Component] = float64(ci.Cycles) / float64(p.Calls)
	}
	for k := profile.Category(0); k < profile.NumCategories; k++ {
		spec := m.Spec[k]
		want := spec.Mean
		if spec.Prob > 0 {
			want *= spec.Prob
		}
		got := perCall[k.String()]
		if want == 0 {
			if got != 0 {
				t.Errorf("%s: %g cyc/call from a zero-cost spec", k, got)
			}
			continue
		}
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("%s: generated %.1f cyc/call vs analytic %.1f (%.1f%% apart, tolerance 5%%)",
				k, got, want, rel*100)
		}
	}

	// Shares must sum to 1 and per-component predictions to be ordered
	// by share.
	var shares float64
	for _, ci := range p.Components {
		shares += ci.Share
	}
	if math.Abs(shares-1) > 1e-9 {
		t.Errorf("component shares sum to %g, want 1", shares)
	}
}

// TestCausalAppliedModel is the headline acceptance check: for every
// component, the causal profiler's predicted throughput delta from a
// 10% virtual speedup must match the measured delta when the generator
// actually runs with that component's cost scaled to 90% — same seed,
// forked per-component RNG streams, so only the treated component
// moves.
func TestCausalAppliedModel(t *testing.T) {
	const n, delta, seed = 20000, 0.10, 7
	m := whatif.DefaultModel()
	base := m.Generate(sim.NewRNG(seed), n)
	prof := whatif.AnalyzeCausal(base, delta)

	pred := map[string]float64{}
	for _, ci := range prof.Components {
		pred[ci.Component] = ci.PredictedDeltaPct
	}

	for k := profile.Category(0); k < profile.NumCategories; k++ {
		if m.Spec[k].Mean <= 0 {
			continue
		}
		scaled := m.Scaled(k, 1-delta).Generate(sim.NewRNG(seed), n)
		applied := 100 * (float64(base.TotalCycles())/float64(scaled.TotalCycles()) - 1)
		p := pred[k.String()]
		if rel := math.Abs(p-applied) / applied; rel > 0.05 {
			t.Errorf("%s: predicted %+.3f%% vs applied %+.3f%% throughput (%.1f%% apart, tolerance 5%%)",
				k, p, applied, rel*100)
		} else {
			t.Logf("%s: predicted %+.3f%%  applied %+.3f%%", k, p, applied)
		}
	}
}

const causalEDL = `
enclave {
    trusted {
        public int ecall_empty(void);
    };
};
`

// causalFixture builds the platform + runtime + hot channel with deep
// tracing attached, on a fixed seed so paired runs draw identical RNG
// streams.
func causalFixture(t *testing.T) (*telemetry.Registry, *core.Channel, *sim.Clock) {
	t.Helper()
	p := sgx.NewPlatform(7)
	var clk sim.Clock
	e := p.ECreate(&clk, 64<<20, 4, sgx.Attributes{})
	for i := 0; i < 4; i++ {
		if err := e.EAdd(&clk, uint64(i)*sgx.PageSize, make([]byte, sgx.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.EInit(&clk); err != nil {
		t.Fatal(err)
	}
	rt := sdk.New(p, e, edl.MustParse(causalEDL))
	rt.MustBindECall("ecall_empty", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 { return 0 })

	reg := telemetry.New()
	reg.EnableDeepTracing(1 << 20)
	p.SetTelemetry(reg)
	rt.SetTelemetry(reg)
	ch := core.NewChannel(rt, p.RNG)
	ch.SetTelemetry(reg)
	return reg, ch, &clk
}

// TestCausalAppliedSim closes the loop on the real simulation: predict
// the throughput gain of a 10% spin speedup from a traced HotCall
// workload, then re-run the identical workload on a LatencyModel scaled
// to 90% and compare the measured gain.
func TestCausalAppliedSim(t *testing.T) {
	const runs, delta = 3000, 0.10

	run := func(scale float64) whatif.Workload {
		reg, ch, clk := causalFixture(t)
		if scale != 1 {
			ch.Model = ch.Model.Scale(scale)
		}
		for i := 0; i < runs; i++ {
			if _, err := ch.HotECall(clk, "ecall_empty"); err != nil {
				t.Fatal(err)
			}
		}
		if d := reg.Tracer().Dropped(); d != 0 {
			t.Fatalf("trace ring overflowed (%d dropped)", d)
		}
		return whatif.FromEvents(reg.Tracer().Events())
	}

	base := run(1)
	if n := len(base.Calls); n != runs {
		t.Fatalf("recorded %d calls, want %d", n, runs)
	}
	prof := whatif.AnalyzeCausal(base, delta)
	var predicted float64
	for _, ci := range prof.Components {
		if ci.Component == profile.CatSpin.String() {
			predicted = ci.PredictedDeltaPct
		}
	}
	if predicted == 0 {
		t.Fatalf("no spin component in profile: %+v", prof.Components)
	}

	scaled := run(1 - delta)
	applied := 100 * (float64(base.TotalCycles())/float64(scaled.TotalCycles()) - 1)
	if rel := math.Abs(predicted-applied) / applied; rel > 0.05 {
		t.Errorf("spin: predicted %+.3f%% vs applied %+.3f%% throughput (%.1f%% apart, tolerance 5%%)",
			predicted, applied, rel*100)
	} else {
		t.Logf("spin: predicted %+.3f%%  applied %+.3f%%", predicted, applied)
	}
}

// TestVirtualSpeedupSite pins the callsite-level counterfactual: with
// two sites in a known cycle ratio, speeding one up by δ must move
// throughput by exactly share·δ/(1−share·δ).
func TestVirtualSpeedupSite(t *testing.T) {
	w := whatif.Workload{Calls: []whatif.Call{
		{Site: "a", Cycles: [profile.NumCategories]uint64{profile.CatSpin: 3000}},
		{Site: "b", Cycles: [profile.NumCategories]uint64{profile.CatSpin: 1000}},
	}}
	got := w.VirtualSpeedupSite("a", 0.10)
	want := 4000.0/(4000-0.10*3000) - 1
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("site speedup = %v, want %v", got, want)
	}
	p := whatif.AnalyzeCausal(w, 0.10)
	if len(p.Callsites) != 2 || p.Callsites[0].Site != "a" || p.Callsites[1].Site != "b" {
		t.Fatalf("callsites: %+v", p.Callsites)
	}
	if pct := p.Callsites[0].PredictedDeltaPct; math.Abs(pct-100*want) > 1e-9 {
		t.Fatalf("callsite a predicted %v%%, want %v%%", pct, 100*want)
	}
}

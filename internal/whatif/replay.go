package whatif

import "hotcalls/internal/sim"

// SiteTrace is one callsite-interval's recorded trace: arrival offsets
// (sorted, ns from interval start) and per-call service times.  The
// replay validator drives it through each routing policy discretely,
// event by event, to get the ground-truth core-time bill the closed-
// form estimator only approximates.
type SiteTrace struct {
	IntervalNS float64
	ArrivalsNS []float64
	ServiceNS  []float64
}

// SynthTrace draws a Poisson arrival stream at the given rate with
// uniformly jittered (±50%) service times around the mean, truncated at
// the interval end.  Deterministic for a given RNG state.
func SynthTrace(rng *sim.RNG, ratePerS, meanServiceNS, intervalNS float64) SiteTrace {
	tr := SiteTrace{IntervalNS: intervalNS}
	gapMean := 1e9 / ratePerS
	for t := rng.Exp(gapMean); t < intervalNS; t += rng.Exp(gapMean) {
		tr.ArrivalsNS = append(tr.ArrivalsNS, t)
		tr.ServiceNS = append(tr.ServiceNS, meanServiceNS*(1+rng.Uniform(-0.5, 0.5)))
	}
	return tr
}

// Stats summarises the trace into the estimator's interval view (no
// observed waste — the estimator falls back to its pooled idle share,
// exactly as it would for a callsite the recorder has not attributed
// yet).
func (tr SiteTrace) Stats(site string) IntervalStats {
	var sum float64
	for _, s := range tr.ServiceNS {
		sum += s
	}
	st := IntervalStats{Site: site, Arrivals: float64(len(tr.ArrivalsNS)), IntervalNS: tr.IntervalNS}
	if len(tr.ServiceNS) > 0 {
		st.ServiceNS = sum / float64(len(tr.ServiceNS))
	}
	return st
}

// Replay prices the trace under one policy by discrete-event
// simulation, in core-nanoseconds — requester time plus responder spin,
// the same economics Score approximates in closed form:
//
//   - sync:   each call pays the full SDK crossing plus its service;
//     calls are independent (no shared responder, no queue).
//   - hot:    a single dedicated slot: calls queue FIFO behind the
//     responder, the requester spins out the queue wait, and the
//     responder core burns every nanosecond it is not executing.
//   - pooled: the same FIFO discipline with the pool's dispatch
//     overhead, against a responder that is busy with other callsites a
//     PoolBackground fraction of the time (effective service time
//     s/(1 − PoolBackground)); in exchange only PooledShare of its
//     idle time is billed to this callsite.
func (p CostParams) Replay(tr SiteTrace, pol Policy) float64 {
	switch pol {
	case PolicySync:
		var total float64
		for _, s := range tr.ServiceNS {
			total += p.SyncCallNS + s
		}
		return total
	case PolicyHot, PolicyPooled:
		overhead, slowdown := p.HotSyncNS, 1.0
		if pol == PolicyPooled {
			overhead = p.PooledSyncNS
			slowdown = 1 / (1 - p.PoolBackground)
		}
		var total, busy, busyUntil float64
		for i, arr := range tr.ArrivalsNS {
			start := arr
			if busyUntil > start {
				start = busyUntil
			}
			wait := start - arr
			s := tr.ServiceNS[i] * slowdown
			busyUntil = start + s
			busy += s
			total += overhead + wait + s
		}
		idle := tr.IntervalNS - busy
		if idle < 0 {
			idle = 0
		}
		if pol == PolicyPooled {
			idle *= p.PooledShare
		}
		return total + idle
	}
	return 0
}

// ReplayAll prices the trace under every policy.
func (p CostParams) ReplayAll(tr SiteTrace) [NumPolicies]float64 {
	var c [NumPolicies]float64
	for pol := Policy(0); pol < NumPolicies; pol++ {
		c[pol] = p.Replay(tr, pol)
	}
	return c
}

// AgreementResult is one ordering-agreement sweep: of Total synthetic
// callsite-intervals, on how many did the estimator's recommended
// policy match the brute-force replay's optimum (or land within
// NearTiePct of it — a decision that costs the same is not a
// disagreement, it is a tie broken differently).
type AgreementResult struct {
	Agree      int     `json:"agree"`
	Total      int     `json:"total"`
	NearTiePct float64 `json:"near_tie_pct"`
}

// Fraction returns the agreement rate.
func (a AgreementResult) Fraction() float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Agree) / float64(a.Total)
}

// OrderingAgreement sweeps a grid of arrival rates × service times per
// seed, replays every cell under all three policies, and counts the
// cells where the estimator's argmin matches the replay's argmin (or
// its pick replays within nearTiePct of the replay optimum).  The
// shadow router's acceptance bar is ≥95% across seeds 0/7/42/123.
func OrderingAgreement(params CostParams, seeds []uint64, nearTiePct float64) AgreementResult {
	params.fill()
	rates := []float64{2, 10, 50, 200, 1000, 5000, 20000, 100000}
	services := []float64{500, 2000, 10000, 50000}
	const intervalNS = 100e6 // 100ms windows, the monitor's native cadence

	res := AgreementResult{NearTiePct: nearTiePct}
	for _, seed := range seeds {
		rng := sim.NewRNG(sim.SeedMix(seed, 0x77a71f))
		for _, rate := range rates {
			for _, svc := range services {
				tr := SynthTrace(rng.Fork(uint64(rate*7)+uint64(svc)), rate, svc, intervalNS)
				if len(tr.ArrivalsNS) == 0 {
					continue
				}
				res.Total++
				est := Best(params.Score(tr.Stats("synth")))
				truth := params.ReplayAll(tr)
				opt := Best(truth)
				if est == opt || truth[est] <= truth[opt]*(1+nearTiePct/100) {
					res.Agree++
				}
			}
		}
	}
	return res
}

package mee

import (
	"hotcalls/internal/cache"
	"hotcalls/internal/dist"
	"hotcalls/internal/telemetry"
)

// CostModel answers "how many extra cycles does an access to encrypted
// memory cost, over the same access to plaintext memory?".  It reproduces
// the paper's microbenchmarks 7-10 and Figures 6-8.
//
// Mechanism (matching Section 3.4 of the paper): every encrypted line has a
// version counter and a MAC in dedicated DRAM regions, organised as an
// 8-ary tree rooted on-die.  A line access needs the covering MAC line and
// counter-tree nodes; the MEE keeps recently used nodes in a small internal
// cache, so small working sets walk the tree almost for free while large
// ones pay DRAM fetches for the metadata.  Decryption latency itself is
// pipelined under streaming (prefetched) access but fully exposed on an
// isolated demand miss — which is why the paper sees +12 cycles/line on
// consecutive reads of a cached-tree buffer but +92 cycles on a single
// cache-load miss (400 vs 308 cycles).
type CostModel struct {
	nodeCache *cache.Cache

	// Telemetry handles (nil when observability is off; nil handles are
	// no-ops).  The tree walk runs for every encrypted line, so these are
	// cached counters, never registry lookups.
	nodeHits   *telemetry.Counter
	nodeMisses *telemetry.Counter

	// rec records the full distribution of per-line extra cycles; nil
	// (one branch per access) until SetDistribution attaches a recorder.
	rec *dist.Recorder

	// Calibrated constants.  See DESIGN.md section 4 for how each is
	// pinned to a row of Table 1.
	demandLoadLatency  float64 // exposed decrypt latency: 400-308
	demandStoreLatency float64 // exposed RMW latency:     575-481
	streamLoadPerLine  float64 // pipelined decrypt: (1124-727)/32
	streamStorePerLine float64 // pipelined encrypt: (6875-6458)/32
	nodeFetchCost      float64 // DRAM fetch of one tree node
	storeFetchScale    float64 // counter write-combining amortisation
}

// nodeCacheConfig is the MEE's internal metadata cache: 48 nodes of 64
// bytes, 16 sets x 3 ways.  Its capacity is what makes read overhead grow
// with buffer footprint in Figure 6: a 2 KB sweep's metadata fits and walks
// free, a 16 KB sweep's does not and pays a DRAM fetch per node.
var nodeCacheConfig = cache.Config{SizeBytes: 48 * 64, LineSize: 64, Ways: 3}

// NewCostModel returns a cost model with the calibrated testbed constants.
func NewCostModel() *CostModel {
	return &CostModel{
		nodeCache:          cache.New(nodeCacheConfig),
		demandLoadLatency:  92,
		demandStoreLatency: 94,
		streamLoadPerLine:  12.4,
		streamStorePerLine: 13.0,
		nodeFetchCost:      28,
		storeFetchScale:    0.25,
	}
}

// Tree-node synthetic addresses.  Metadata regions live far above any data
// address so they never collide in the node cache's index space.
const (
	macRegion = uint64(0xF0) << 40
	ctrRegion = uint64(0xF1) << 40
	levelBits = 32
)

// macNodeAddr returns the address of the MAC line covering a data line
// (one 64-byte MAC line holds eight 8-byte MACs).
func macNodeAddr(line uint64) uint64 {
	return macRegion | (line/Arity)*LineSize
}

// ctrNodeAddr returns the address of the counter node at the given level of
// the tree: level 0 covers 8 data lines, level 1 covers 64, and so on.
// The level is folded into the set-index bits so that the few upper-level
// nodes do not all collide in set 0 of the node cache.
func ctrNodeAddr(level int, line uint64) uint64 {
	idx := line
	for l := 0; l <= level; l++ {
		idx /= Arity
	}
	return ctrRegion | uint64(level)<<levelBits | (idx+uint64(level))*LineSize
}

// walkLevels is how many counter levels an access touches before the walk
// terminates in the always-on-die root region.  Seven levels cover the
// whole 93 MB EPC; in practice upper levels hit the node cache.
const walkLevels = 4

// SetTelemetry attaches tree-walk hit/miss counters from the registry.
// A nil registry detaches (handles become no-op nils).
func (m *CostModel) SetTelemetry(reg *telemetry.Registry) {
	m.nodeHits = reg.Counter(telemetry.MetricMEENodeHits)
	m.nodeMisses = reg.Counter(telemetry.MetricMEENodeMiss)
}

// SetDistribution attaches (or, with nil, detaches) a recorder for the
// per-line MEE surcharge — the report uses it to show how the tree-walk
// cost distribution shifts as a sweep's metadata overflows the node cache.
func (m *CostModel) SetDistribution(r *dist.Recorder) { m.rec = r }

// record rounds an extra-cycle figure into the recorder.
func (m *CostModel) record(extra float64) float64 {
	m.rec.Record(uint64(extra + 0.5))
	return extra
}

// touchMetadata walks the tree for one data line through the node cache and
// returns the number of node fetches that missed.
func (m *CostModel) touchMetadata(line uint64) (misses int) {
	if hit, _ := m.nodeCache.Access(macNodeAddr(line), false); !hit {
		misses++
	}
	for level := 0; level < walkLevels; level++ {
		if hit, _ := m.nodeCache.Access(ctrNodeAddr(level, line), false); !hit {
			misses++
		}
	}
	if m.nodeHits != nil {
		m.nodeHits.Add(uint64(walkLevels + 1 - misses))
		m.nodeMisses.Add(uint64(misses))
	}
	return misses
}

// rowPressure models DRAM row-buffer conflicts between the data stream and
// the metadata streams: the more rows a single sweep touches, the more each
// metadata fetch costs.  Calibrated so the 16 KB and 32 KB points of
// Figure 6 land at roughly +94% and +102%.
func rowPressure(footprintLines int) float64 {
	f := 1 + float64(footprintLines)/1024
	if f > 1.5 {
		f = 1.5
	}
	return f
}

// StreamLoadExtra returns the extra cycles for one line of a consecutive
// (prefetched) read sweep over encrypted memory.  footprintLines is the
// total sweep size, used for the row-pressure term.
func (m *CostModel) StreamLoadExtra(line uint64, footprintLines int) float64 {
	misses := m.touchMetadata(line)
	return m.record(m.streamLoadPerLine + float64(misses)*m.nodeFetchCost*rowPressure(footprintLines))
}

// StreamStoreExtra returns the extra cycles for one line of a consecutive
// write sweep.  Counter updates are write-combined, so metadata misses are
// amortised; this is why Figure 7 shows only ~6% write overhead.
func (m *CostModel) StreamStoreExtra(line uint64, footprintLines int) float64 {
	misses := m.touchMetadata(line)
	return m.record(m.streamStorePerLine + float64(misses)*m.nodeFetchCost*m.storeFetchScale)
}

// DemandLoadExtra returns the extra cycles for one isolated encrypted-line
// load miss (Table 1 row 9: 400 vs 308 cycles when the tree is cached).
func (m *CostModel) DemandLoadExtra(line uint64) float64 {
	misses := m.touchMetadata(line)
	return m.record(m.demandLoadLatency + float64(misses)*m.nodeFetchCost)
}

// DemandStoreExtra returns the extra cycles for one isolated encrypted-line
// store miss (Table 1 row 10: 575 vs 481 cycles).
func (m *CostModel) DemandStoreExtra(line uint64) float64 {
	misses := m.touchMetadata(line)
	return m.record(m.demandStoreLatency + float64(misses)*m.nodeFetchCost*m.storeFetchScale)
}

// FlushMetadata evicts all tree nodes from the MEE cache (used by tests and
// by the cold-cache experiments, where flushing the LLC also disturbs the
// metadata working set).
func (m *CostModel) FlushMetadata() { m.nodeCache.FlushAll() }

// NodeCacheStats exposes the metadata cache's hit statistics.
func (m *CostModel) NodeCacheStats() (accesses, misses uint64) {
	return m.nodeCache.Stats()
}

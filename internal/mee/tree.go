// Package mee implements the Memory Encryption Engine that protects the
// Enclave Page Cache (Gueron, "A Memory Encryption Engine Suitable for
// General Purpose Processors"; cited as [19] by the paper).
//
// The package has two halves:
//
//   - Tree: a functional 8-ary counter tree providing the MEE's actual
//     security guarantees — confidentiality (line encryption), integrity
//     (per-line MACs bound to version counters), and anti-rollback (the
//     tree root lives on-die, out of the adversary's reach).  Tamper and
//     replay attempts are detected on read.
//
//   - CostModel: the calibrated latency model that answers "how many extra
//     cycles does an encrypted-memory access cost?", reproducing the
//     paper's microbenchmarks 7-10 (Figures 6-8).  The growth of read
//     overhead with buffer size (54.5% at 2 KB to 102% at 32 KB) emerges
//     from misses in the MEE's internal cache of tree nodes.
package mee

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// LineSize is the protection granularity: one cache line.
const LineSize = 64

// Arity is the fan-out of the counter tree: one 64-byte counter node holds
// eight 56-bit counters, each covering one child.
const Arity = 8

// Errors reported by Tree.ReadLine.
var (
	ErrIntegrity  = errors.New("mee: integrity violation (data or MAC tampered)")
	ErrRollback   = errors.New("mee: rollback detected (version counter mismatch)")
	ErrNotWritten = errors.New("mee: line never written")
)

// lineRecord is what lives in untrusted DRAM for one protected line: the
// ciphertext and its MAC.  The adversary can overwrite both.
type lineRecord struct {
	cipher []byte
	mac    [16]byte
}

// ctrNode is one counter-tree node in untrusted DRAM: eight child version
// counters plus a MAC binding them to this node's own version, which is
// stored in the parent (or on-die, for the top level).
type ctrNode struct {
	counters [Arity]uint64
	mac      [16]byte
}

// Tree is the functional MEE protecting a region of `lines` cache lines.
// It is not safe for concurrent use.
//
// Every write first verifies the counter path it is about to modify —
// the classic Merkle-tree verify-before-modify rule.  Without it, a
// replayed stale node could be "laundered": a later legitimate write
// would re-MAC the attacker's node against the fresh root and make the
// rollback invisible.  (The randomized state-machine test caught exactly
// that laundering in an earlier version of this tree.)  On real hardware
// an integrity failure locks the machine; here it surfaces as an error
// and the affected subtree stays poisoned.
type Tree struct {
	key    [32]byte
	block  cipher.Block
	lines  uint64
	depth  int // number of counter levels below the on-die root
	data   map[uint64]*lineRecord
	levels []map[uint64]*ctrNode
	// rootCtr holds the parent counters of the top-level nodes.  It
	// lives on-die (a few SRAM slots), out of the adversary's reach.
	rootCtr map[uint64]uint64
}

// NewTree returns a functional MEE over a region of the given number of
// cache lines, keyed with the processor's fused memory-encryption master
// secret (unique per part, never leaves the die).
func NewTree(key [32]byte, lines uint64) *Tree {
	if lines == 0 {
		panic("mee: empty region")
	}
	depth := 1
	for cover := uint64(Arity); cover < lines; cover *= Arity {
		depth++
	}
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		panic(fmt.Sprintf("mee: %v", err)) // 16-byte key cannot fail
	}
	t := &Tree{
		key:     key,
		block:   block,
		lines:   lines,
		depth:   depth,
		data:    make(map[uint64]*lineRecord),
		levels:  make([]map[uint64]*ctrNode, depth),
		rootCtr: make(map[uint64]uint64),
	}
	for i := range t.levels {
		t.levels[i] = make(map[uint64]*ctrNode)
	}
	return t
}

// Depth returns the number of counter levels below the on-die root.
func (t *Tree) Depth() int { return t.depth }

func (t *Tree) node(level int, idx uint64) *ctrNode {
	n, ok := t.levels[level][idx]
	if !ok {
		// Fresh nodes are initialized with a valid MAC over their
		// zero counters, as the hardware does when the tree is built
		// at boot.  parentCounter may recursively initialize the
		// ancestors, terminating at the on-die root slots.
		n = &ctrNode{}
		t.levels[level][idx] = n
		n.mac = t.nodeMAC(level, idx, n, t.parentCounter(level, idx))
	}
	return n
}

// parentCounter returns the current version counter covering a node at the
// given level.  Top-level nodes are covered by the on-die rootCtr slots.
func (t *Tree) parentCounter(level int, idx uint64) uint64 {
	if level == t.depth-1 {
		return t.rootCtr[idx]
	}
	return t.node(level+1, idx/Arity).counters[idx%Arity]
}

// verifyPath checks every counter node covering a line against its parent
// counter, bottom-up; the top node checks against the on-die slot.
func (t *Tree) verifyPath(line uint64) error {
	idx := line / Arity
	for level := 0; level < t.depth; level++ {
		n := t.node(level, idx)
		want := t.nodeMAC(level, idx, n, t.parentCounter(level, idx))
		if !hmac.Equal(want[:], n.mac[:]) {
			if level == t.depth-1 {
				// The top level checks against the on-die
				// counters: a self-consistent replay of a full
				// DRAM snapshot stays undetected until here.
				return ErrRollback
			}
			return ErrIntegrity
		}
		idx /= Arity
	}
	return nil
}

func (t *Tree) lineMAC(line uint64, version uint64, ciphertext []byte) [16]byte {
	mac := hmac.New(sha256.New, t.key[:])
	var hdr [17]byte
	hdr[0] = 'L'
	binary.LittleEndian.PutUint64(hdr[1:], line)
	binary.LittleEndian.PutUint64(hdr[9:], version)
	mac.Write(hdr[:])
	mac.Write(ciphertext)
	var out [16]byte
	copy(out[:], mac.Sum(nil))
	return out
}

func (t *Tree) nodeMAC(level int, idx uint64, n *ctrNode, parent uint64) [16]byte {
	mac := hmac.New(sha256.New, t.key[:])
	var hdr [18]byte
	hdr[0] = 'N'
	hdr[1] = byte(level)
	binary.LittleEndian.PutUint64(hdr[2:], idx)
	binary.LittleEndian.PutUint64(hdr[10:], parent)
	mac.Write(hdr[:])
	var buf [8]byte
	for _, c := range n.counters {
		binary.LittleEndian.PutUint64(buf[:], c)
		mac.Write(buf[:])
	}
	var out [16]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// crypt encrypts or decrypts a line with AES-CTR keyed by the fused secret,
// with a nonce derived from (line, version) — the MEE's
// "temporal+spatial uniqueness" construction, so identical plaintexts at
// different addresses or times yield different ciphertexts.
func (t *Tree) crypt(line, version uint64, src []byte) []byte {
	var iv [16]byte
	binary.LittleEndian.PutUint64(iv[0:], line)
	binary.LittleEndian.PutUint64(iv[8:], version)
	dst := make([]byte, len(src))
	cipher.NewCTR(t.block, iv[:]).XORKeyStream(dst, src)
	return dst
}

// WriteLine encrypts and stores one line, bumping its version counter and
// re-MACing the counter path up to the on-die root.  It first verifies the
// path it is about to modify and returns ErrIntegrity/ErrRollback if the
// DRAM-resident nodes have been attacked — never re-signing adversarial
// state.
func (t *Tree) WriteLine(line uint64, plaintext []byte) error {
	if line >= t.lines {
		panic("mee: line out of range")
	}
	if len(plaintext) != LineSize {
		panic("mee: line must be exactly 64 bytes")
	}
	if err := t.verifyPath(line); err != nil {
		return err
	}
	// Bump the whole version path bottom-up, so any later replay of any
	// level is detectable against its parent; the top bump lands in the
	// on-die slot.
	idx := line
	for level := 0; level < t.depth; level++ {
		t.node(level, idx/Arity).counters[idx%Arity]++
		idx /= Arity
	}
	// idx is now the top-level node's index; bump its on-die slot.
	t.rootCtr[idx]++

	version := t.node(0, line/Arity).counters[line%Arity]
	ct := t.crypt(line, version, plaintext)
	t.data[line] = &lineRecord{cipher: ct, mac: t.lineMAC(line, version, ct)}

	// Re-MAC the (just verified) path.
	idx = line / Arity
	for level := 0; level < t.depth; level++ {
		n := t.node(level, idx)
		n.mac = t.nodeMAC(level, idx, n, t.parentCounter(level, idx))
		idx /= Arity
	}
	return nil
}

// ReadLine verifies the full counter path and the line MAC, then decrypts.
// It returns ErrIntegrity if any stored byte was modified and ErrRollback
// if a stale-but-self-consistent snapshot was replayed.
func (t *Tree) ReadLine(line uint64) ([]byte, error) {
	if line >= t.lines {
		panic("mee: line out of range")
	}
	rec, ok := t.data[line]
	if !ok {
		return nil, ErrNotWritten
	}
	// Verify each covering node's MAC against its parent counter.  A
	// replayed self-consistent snapshot fails only at the on-die top:
	// rollback.  A modified node fails its own MAC earlier: integrity.
	if err := t.verifyPath(line); err != nil {
		return nil, err
	}
	version := t.node(0, line/Arity).counters[line%Arity]
	want := t.lineMAC(line, version, rec.cipher)
	if !hmac.Equal(want[:], rec.mac[:]) {
		return nil, ErrIntegrity
	}
	return t.crypt(line, version, rec.cipher), nil
}

// Ciphertext exposes the stored ciphertext of a line, as an adversary with
// a DRAM probe would see it.  It returns nil if the line was never written.
func (t *Tree) Ciphertext(line uint64) []byte {
	rec, ok := t.data[line]
	if !ok {
		return nil
	}
	out := make([]byte, len(rec.cipher))
	copy(out, rec.cipher)
	return out
}

// TamperData flips a bit in the stored ciphertext of a line, modelling a
// physical attack on DRAM.  It reports whether the line existed.
func (t *Tree) TamperData(line uint64, byteIdx int) bool {
	rec, ok := t.data[line]
	if !ok || byteIdx >= len(rec.cipher) {
		return false
	}
	rec.cipher[byteIdx] ^= 0x01
	return true
}

// TamperMAC flips a bit in a line's stored MAC.
func (t *Tree) TamperMAC(line uint64) bool {
	rec, ok := t.data[line]
	if !ok {
		return false
	}
	rec.mac[0] ^= 0x01
	return true
}

// TamperCounter corrupts one counter in the level-0 node covering a line,
// modelling an attack on the counter region of DRAM.
func (t *Tree) TamperCounter(line uint64) {
	n := t.node(0, line/Arity)
	n.counters[line%Arity] ^= 1
}

// Snapshot captures the full untrusted-DRAM state of one line (ciphertext,
// MAC, and its entire counter path).  Restore replays it — the classic
// rollback attack.  The on-die root is *not* part of the snapshot, which is
// exactly why the attack fails.
type Snapshot struct {
	line  uint64
	rec   lineRecord
	nodes []ctrNode
}

// Snapshot captures the current DRAM-visible state of a line.
func (t *Tree) Snapshot(line uint64) *Snapshot {
	rec, ok := t.data[line]
	if !ok {
		return nil
	}
	s := &Snapshot{line: line, rec: lineRecord{cipher: append([]byte(nil), rec.cipher...), mac: rec.mac}}
	idx := line / Arity
	for level := 0; level < t.depth; level++ {
		s.nodes = append(s.nodes, *t.node(level, idx))
		idx /= Arity
	}
	return s
}

// Restore replays a snapshot into untrusted DRAM: the rollback attack.
func (t *Tree) Restore(s *Snapshot) {
	t.data[s.line] = &lineRecord{cipher: append([]byte(nil), s.rec.cipher...), mac: s.rec.mac}
	idx := s.line / Arity
	for level := 0; level < t.depth; level++ {
		*t.node(level, idx) = s.nodes[level]
		idx /= Arity
	}
}

package mee

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"hotcalls/internal/sim"
)

func testKey() [32]byte {
	var k [32]byte
	for i := range k {
		k[i] = byte(i * 7)
	}
	return k
}

func line(b byte) []byte {
	data := make([]byte, LineSize)
	for i := range data {
		data[i] = b ^ byte(i)
	}
	return data
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := NewTree(testKey(), 1024)
	want := line(0x5a)
	if err := tr.WriteLine(17, want); err != nil {
		t.Fatal(err)
	}
	got, err := tr.ReadLine(17)
	if err != nil {
		t.Fatalf("ReadLine: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("decrypted data differs from written data")
	}
}

func TestReadNeverWritten(t *testing.T) {
	tr := NewTree(testKey(), 1024)
	if _, err := tr.ReadLine(3); !errors.Is(err, ErrNotWritten) {
		t.Fatalf("err = %v, want ErrNotWritten", err)
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	tr := NewTree(testKey(), 1024)
	want := line(0xaa)
	tr.WriteLine(5, want)
	ct := tr.Ciphertext(5)
	if bytes.Equal(ct, want) {
		t.Fatal("ciphertext equals plaintext: no confidentiality")
	}
}

func TestSamePlaintextDifferentAddressesDifferentCiphertext(t *testing.T) {
	tr := NewTree(testKey(), 1024)
	data := line(0x11)
	tr.WriteLine(1, data)
	tr.WriteLine(2, data)
	if bytes.Equal(tr.Ciphertext(1), tr.Ciphertext(2)) {
		t.Fatal("spatial uniqueness violated: same ciphertext at two addresses")
	}
}

func TestSamePlaintextRewriteDifferentCiphertext(t *testing.T) {
	tr := NewTree(testKey(), 1024)
	data := line(0x22)
	tr.WriteLine(9, data)
	first := tr.Ciphertext(9)
	tr.WriteLine(9, data)
	if bytes.Equal(first, tr.Ciphertext(9)) {
		t.Fatal("temporal uniqueness violated: rewrite produced identical ciphertext")
	}
}

func TestTamperDataDetected(t *testing.T) {
	tr := NewTree(testKey(), 1024)
	tr.WriteLine(33, line(0x01))
	if !tr.TamperData(33, 10) {
		t.Fatal("tamper failed")
	}
	if _, err := tr.ReadLine(33); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("err = %v, want ErrIntegrity", err)
	}
}

func TestTamperMACDetected(t *testing.T) {
	tr := NewTree(testKey(), 1024)
	tr.WriteLine(33, line(0x02))
	tr.TamperMAC(33)
	if _, err := tr.ReadLine(33); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("err = %v, want ErrIntegrity", err)
	}
}

func TestTamperCounterDetected(t *testing.T) {
	tr := NewTree(testKey(), 1024)
	if tr.Depth() < 2 {
		t.Fatal("need depth >= 2 for classification")
	}
	tr.WriteLine(40, line(0x03))
	tr.TamperCounter(40)
	if _, err := tr.ReadLine(40); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("err = %v, want ErrIntegrity", err)
	}
}

func TestRollbackDetected(t *testing.T) {
	tr := NewTree(testKey(), 1024)
	tr.WriteLine(7, line(0x10)) // v1: the "old balance"
	snap := tr.Snapshot(7)
	tr.WriteLine(7, line(0x20)) // v2: the update the attacker wants to undo
	tr.Restore(snap)            // replay the full DRAM state of v1
	if _, err := tr.ReadLine(7); !errors.Is(err, ErrRollback) {
		t.Fatalf("err = %v, want ErrRollback", err)
	}
}

func TestRollbackOfUntouchedNeighborStillReads(t *testing.T) {
	// Writes to line A must not break reads of line B.
	tr := NewTree(testKey(), 4096)
	a := line(0x0a)
	b := line(0x0b)
	tr.WriteLine(100, a)
	tr.WriteLine(3000, b)
	tr.WriteLine(100, line(0xff))
	got, err := tr.ReadLine(3000)
	if err != nil {
		t.Fatalf("neighbor read failed after unrelated writes: %v", err)
	}
	if !bytes.Equal(got, b) {
		t.Fatal("neighbor data corrupted")
	}
}

func TestManyLinesSurviveInterleavedWrites(t *testing.T) {
	tr := NewTree(testKey(), 1<<16)
	r := sim.NewRNG(5)
	written := map[uint64]byte{}
	for i := 0; i < 2000; i++ {
		ln := uint64(r.Intn(1 << 16))
		b := byte(r.Intn(256))
		tr.WriteLine(ln, line(b))
		written[ln] = b
	}
	for ln, b := range written {
		got, err := tr.ReadLine(ln)
		if err != nil {
			t.Fatalf("line %d: %v", ln, err)
		}
		if !bytes.Equal(got, line(b)) {
			t.Fatalf("line %d: wrong data", ln)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	tr := NewTree(testKey(), 1<<20)
	f := func(ln uint32, seed byte) bool {
		l := uint64(ln) % (1 << 20)
		data := line(seed)
		if err := tr.WriteLine(l, data); err != nil {
			return false
		}
		got, err := tr.ReadLine(l)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTamperAlwaysDetectedProperty(t *testing.T) {
	f := func(ln uint16, byteIdx uint8, seed byte) bool {
		tr := NewTree(testKey(), 1<<16)
		l := uint64(ln)
		tr.WriteLine(l, line(seed))
		tr.TamperData(l, int(byteIdx)%LineSize)
		_, err := tr.ReadLine(l)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBadArgumentsPanic(t *testing.T) {
	tr := NewTree(testKey(), 64)
	for _, fn := range []func(){
		func() { tr.WriteLine(64, line(0)) },
		func() { tr.WriteLine(0, []byte{1, 2, 3}) },
		func() { tr.ReadLine(64) },
		func() { NewTree(testKey(), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTreeDepthScales(t *testing.T) {
	if d := NewTree(testKey(), 8).Depth(); d != 1 {
		t.Fatalf("depth(8 lines) = %d, want 1", d)
	}
	if d := NewTree(testKey(), 9).Depth(); d != 2 {
		t.Fatalf("depth(9 lines) = %d, want 2", d)
	}
	// 93 MB EPC = 1,523,712 lines -> 8^7 = 2,097,152 covers it.
	if d := NewTree(testKey(), 93*(1<<20)/64).Depth(); d != 7 {
		t.Fatalf("depth(EPC) = %d, want 7", d)
	}
}

// --- Cost model ---

func TestDemandLoadExtraWarmTree(t *testing.T) {
	m := NewCostModel()
	// Repeated access to the same line keeps its metadata in the node
	// cache; steady-state extra must equal the pure decrypt latency
	// (Table 1 row 9: 400 - 308 = 92).
	m.DemandLoadExtra(100)
	got := m.DemandLoadExtra(100)
	if got != 92 {
		t.Fatalf("warm demand load extra = %v, want 92", got)
	}
}

func TestDemandStoreExtraWarmTree(t *testing.T) {
	m := NewCostModel()
	m.DemandStoreExtra(100)
	got := m.DemandStoreExtra(100)
	if got != 94 {
		t.Fatalf("warm demand store extra = %v, want 94", got)
	}
}

func TestColdMetadataCostsMore(t *testing.T) {
	m := NewCostModel()
	cold := m.DemandLoadExtra(100)
	warm := m.DemandLoadExtra(100)
	if cold <= warm {
		t.Fatalf("cold %v should exceed warm %v", cold, warm)
	}
}

// sweepExtra runs the steady-state metadata walk for a buffer of n lines
// and returns the average per-line extra cycles of a streaming read.
func sweepExtra(m *CostModel, lines int, write bool) float64 {
	var total float64
	// Iterate a few sweeps so the node cache reaches steady state, then
	// measure one.
	for iter := 0; iter < 4; iter++ {
		total = 0
		for l := 0; l < lines; l++ {
			if write {
				total += m.StreamStoreExtra(uint64(l), lines)
			} else {
				total += m.StreamLoadExtra(uint64(l), lines)
			}
		}
	}
	return total / float64(lines)
}

func TestFigure6OverheadGrowsWithFootprint(t *testing.T) {
	// Paper, Figure 6: encrypted read overhead for 2,4,8,16,32 KB is
	// 54.5%, 68%, 71%, 94%, 102%.  Our model must reproduce the 2 KB and
	// 32 KB endpoints closely and be monotonically non-decreasing.
	const plainPerLine = 22.7 // calibrated streaming read cost per line
	overheads := make([]float64, 0, 5)
	for _, kb := range []int{2, 4, 8, 16, 32} {
		m := NewCostModel()
		extra := sweepExtra(m, kb*1024/LineSize, false)
		overheads = append(overheads, extra/plainPerLine*100)
	}
	t.Logf("read overheads %%: %.1f (paper: 54.5, 68, 71, 94, 102)", overheads)
	if overheads[0] < 45 || overheads[0] > 65 {
		t.Errorf("2 KB overhead = %.1f%%, want ~54.5%%", overheads[0])
	}
	if overheads[4] < 85 || overheads[4] > 115 {
		t.Errorf("32 KB overhead = %.1f%%, want ~102%%", overheads[4])
	}
	for i := 1; i < len(overheads); i++ {
		if overheads[i] < overheads[i-1]-3 {
			t.Errorf("overhead not monotone: %v", overheads)
		}
	}
	if overheads[4] < overheads[0]*1.5 {
		t.Errorf("32 KB overhead should be well above 2 KB: %v", overheads)
	}
}

func TestFigure7WriteOverheadSmall(t *testing.T) {
	// Paper, Figure 7: encrypted write overhead is ~6% for buffers above
	// 1 KB (writes are pipelined and counter updates write-combined).
	const plainPerLine = 201.8 // 6458 cycles / 32 lines at 2 KB
	for _, kb := range []int{2, 8, 32} {
		m := NewCostModel()
		extra := sweepExtra(m, kb*1024/LineSize, true)
		ovh := extra / plainPerLine * 100
		if ovh < 3 || ovh > 12 {
			t.Errorf("%d KB write overhead = %.1f%%, want ~6%%", kb, ovh)
		}
	}
}

func TestTable1Row7ReadExtra(t *testing.T) {
	// 2 KB encrypted read: 1,124 vs 727 cycles -> extra 397 total.
	m := NewCostModel()
	extra := sweepExtra(m, 32, false) * 32
	if extra < 350 || extra > 450 {
		t.Errorf("2 KB read extra = %.0f, want ~397", extra)
	}
}

func TestFlushMetadataRestoresColdState(t *testing.T) {
	m := NewCostModel()
	m.DemandLoadExtra(100)
	warm := m.DemandLoadExtra(100)
	m.FlushMetadata()
	cold := m.DemandLoadExtra(100)
	if cold <= warm {
		t.Fatalf("flush did not restore cold state: cold=%v warm=%v", cold, warm)
	}
}

func TestNodeCacheStats(t *testing.T) {
	m := NewCostModel()
	m.DemandLoadExtra(0)
	acc, miss := m.NodeCacheStats()
	if acc == 0 || miss == 0 {
		t.Fatalf("stats = (%d, %d), want non-zero", acc, miss)
	}
}

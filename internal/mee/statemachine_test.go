package mee

import (
	"bytes"
	"testing"

	"hotcalls/internal/sim"
)

// TestRandomizedAttackInterleaving drives the functional MEE through a long
// random interleaving of writes, reads, tampers, and rollback attempts,
// tracking a model of which lines are currently corrupted.  Invariants:
// clean lines always read back their last written value; tampered lines
// always fail until rewritten; replaying a *stale* snapshot poisons the
// tree (its top node shares every path), and nothing verifies afterwards —
// the drop-and-lock semantic of real integrity hardware.
//
// The model tracks tamper-bit parity: TamperData XORs one bit, so two
// tampers at the same offset cancel and the line is clean again — the
// MEE's job is to track *content*, not attack attempts.
func TestRandomizedAttackInterleaving(t *testing.T) {
	const lines = 512
	tree := NewTree(testKey(), lines)
	rng := sim.NewRNG(20240706)

	written := map[uint64][]byte{}     // last written plaintext
	flips := map[uint64]map[int]bool{} // outstanding ciphertext bit flips
	epoch := 0                         // global write counter
	type snap struct {
		s     *Snapshot
		epoch int
	}
	snaps := map[uint64]snap{}

	lineBroken := func(line uint64) bool { return len(flips[line]) > 0 }
	content := func(seed byte) []byte {
		d := make([]byte, LineSize)
		for i := range d {
			d[i] = seed ^ byte(i*3)
		}
		return d
	}

	// Phase 1: long clean interleaving of writes, reads, tampers, and
	// epoch-current restores.
	for step := 0; step < 6000; step++ {
		line := uint64(rng.Intn(lines))
		switch rng.Intn(6) {
		case 0, 1: // write (repairs line-level tampering)
			d := content(byte(rng.Intn(256)))
			if err := tree.WriteLine(line, d); err != nil {
				t.Fatalf("step %d: write to clean tree failed: %v", step, err)
			}
			written[line] = d
			delete(flips, line)
			epoch++
		case 2: // read and verify against the model
			got, err := tree.ReadLine(line)
			switch {
			case written[line] == nil:
				if err == nil {
					t.Fatalf("step %d: read of never-written line %d succeeded", step, line)
				}
			case lineBroken(line):
				if err == nil {
					t.Fatalf("step %d: read of tampered line %d succeeded", step, line)
				}
			default:
				if err != nil {
					t.Fatalf("step %d: clean line %d failed: %v", step, line, err)
				}
				if !bytes.Equal(got, written[line]) {
					t.Fatalf("step %d: line %d data diverged", step, line)
				}
			}
		case 3: // tamper: XOR one ciphertext bit (parity-tracked)
			idx := rng.Intn(LineSize)
			if tree.TamperData(line, idx) {
				m := flips[line]
				if m == nil {
					m = map[int]bool{}
					flips[line] = m
				}
				if m[idx] {
					delete(m, idx) // second flip cancels the first
				} else {
					m[idx] = true
				}
			}
		case 4: // snapshot the current DRAM state of a clean line (a
			// snapshot of tampered ciphertext would later restore
			// the tampering along with it, which the flip-parity
			// model does not track)
			if written[line] != nil && !lineBroken(line) {
				if s := tree.Snapshot(line); s != nil {
					snaps[line] = snap{s: s, epoch: epoch}
				}
			}
		case 5: // replay a snapshot ONLY while it is epoch-current:
			// counter-tree nodes are shared, so any intervening
			// write anywhere can make it stale (phase 2 covers
			// the stale case).
			if sn, ok := snaps[line]; ok && sn.epoch == epoch {
				tree.Restore(sn.s)
				// Identical DRAM state reinstalled; it also
				// rewinds any tamper flips applied since.
				delete(flips, line)
			}
		}
	}

	// Phase 2: the rollback attack.  Snapshot a line, update it, replay
	// the stale snapshot: the tree's shared top node no longer matches
	// the on-die counters and everything must fail — the drop-and-lock
	// semantic of real integrity hardware.
	victim := uint64(rng.Intn(lines))
	if err := tree.WriteLine(victim, content(0xAA)); err != nil {
		t.Fatal(err)
	}
	stale := tree.Snapshot(victim)
	if err := tree.WriteLine(victim, content(0xBB)); err != nil {
		t.Fatal(err)
	}
	tree.Restore(stale)
	for step := 0; step < 300; step++ {
		line := uint64(rng.Intn(lines))
		if rng.Bool(0.5) {
			if err := tree.WriteLine(line, content(byte(step))); err == nil {
				t.Fatalf("poisoned step %d: write laundered the replayed tree", step)
			}
		} else if written[line] != nil {
			if _, err := tree.ReadLine(line); err == nil {
				t.Fatalf("poisoned step %d: read of line %d succeeded on poisoned tree", step, line)
			}
		}
	}
}

// TestWriteDoesNotLaunderReplay is the regression for the vulnerability
// this state machine originally caught: after a stale snapshot is
// replayed, a subsequent legitimate write must NOT re-sign the attacker's
// nodes and make the rollback invisible.
func TestWriteDoesNotLaunderReplay(t *testing.T) {
	tree := NewTree(testKey(), 1024)
	old := line(0x01)
	if err := tree.WriteLine(7, old); err != nil {
		t.Fatal(err)
	}
	s := tree.Snapshot(7)
	if err := tree.WriteLine(7, line(0x02)); err != nil {
		t.Fatal(err)
	}
	tree.Restore(s) // plant the stale path

	// The laundering attempt: a write to a *different* line whose path
	// shares nodes with line 7.  verify-before-modify must reject it.
	if err := tree.WriteLine(8, line(0x03)); err == nil {
		t.Fatal("write through a replayed path succeeded: laundering possible")
	}
	// And the stale data must still be unreadable.
	if got, err := tree.ReadLine(7); err == nil && bytes.Equal(got, old) {
		t.Fatal("rollback laundered: stale data read back cleanly")
	}
}

// Package sgx is the simulated Software Guard Extensions hardware: the
// enclave lifecycle instructions (ECREATE, EADD, EEXTEND, EINIT), the
// control-transfer instructions (EENTER, EEXIT, ERESUME, AEX), enclave
// measurement, and the management structures (SECS, TCS, SSA).
//
// Control-transfer latencies follow the decomposition in DESIGN.md: each
// instruction has a fixed microcode cost plus demand touches of its
// management structures through the memory hierarchy — which is exactly why
// a cold-cache ecall costs 12,500-17,000 cycles while a warm one stays
// within 8,600-8,680 (paper, Figure 2a).
package sgx

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"hotcalls/internal/dist"
	"hotcalls/internal/mem"
	"hotcalls/internal/sim"
	"hotcalls/internal/telemetry"
)

// PageSize is the SGX page granularity.
const PageSize = 4096

// Microcode fixed costs in cycles (the memory touches of SECS/TCS/SSA are
// charged on top, through the memory hierarchy).
const (
	eenterFixed  = 3010
	eexitFixed   = 2610
	eresumeFixed = 3010
	aexFixed     = 5200

	ecreateCost  = 12000
	eaddCostPage = 8500 // copy a 4 KB page into EPC and hash it
	eextendCost  = 600  // per 256-byte chunk
	einitCost    = 60000
	allocCost    = 55 // trusted heap malloc/free bookkeeping
)

// Exported microcode costs for the analytic cost model (internal/profile):
// the fixed cycles each leaf instruction charges before memory touches.
const (
	EEnterMicrocode  = eenterFixed
	EExitMicrocode   = eexitFixed
	EResumeMicrocode = eresumeFixed
	AEXMicrocode     = aexFixed
)

// Errors returned by the instruction set.
var (
	ErrNotInitialized     = errors.New("sgx: enclave not initialized")
	ErrAlreadyInitialized = errors.New("sgx: enclave already initialized")
	ErrTCSBusy            = errors.New("sgx: all thread control structures busy")
	ErrTCSNotEntered      = errors.New("sgx: TCS not in entered state")
	ErrOutOfMemory        = errors.New("sgx: enclave heap exhausted")
	ErrIllegalInstruction = errors.New("sgx: instruction illegal inside an enclave")
)

// EnclaveID identifies an enclave on its platform.
type EnclaveID uint64

// Measurement is the SHA-256 MRENCLAVE value accumulated over the
// ECREATE/EADD/EEXTEND sequence and finalized by EINIT.
type Measurement [32]byte

func (m Measurement) String() string { return fmt.Sprintf("%x", m[:8]) }

// Attributes mirror the SECS attribute flags relevant to this model.
type Attributes struct {
	Debug  bool
	ProdID uint16
	SVN    uint16 // security version number of the enclave code
}

// SECS is the SGX Enclave Control Structure.
type SECS struct {
	Base        uint64
	Size        uint64
	Attributes  Attributes
	Measurement Measurement
	Initialized bool
}

// TCS is a Thread Control Structure: one per concurrently executing
// enclave thread.
type TCS struct {
	index   int
	addr    uint64
	entered bool
	cssa    int // current SSA frame (asynchronous exit depth)
}

// Entered reports whether a thread currently executes through this TCS.
func (t *TCS) Entered() bool { return t.entered }

// Platform is the simulated SGX-capable processor package: fused master
// secrets, the memory hierarchy, and the enclaves created on it.
type Platform struct {
	Mem *mem.System
	RNG *sim.RNG

	// Fused master secrets, set "at manufacturing time".  The seal
	// secret never leaves the part; the attestation secret's public
	// half is recorded by the (simulated) Intel provisioning service.
	sealSecret [32]byte

	enclaves map[EnclaveID]*Enclave
	nextID   EnclaveID
	nextBase uint64

	// tel caches the platform's telemetry handles; all nil (no-op) until
	// SetTelemetry attaches a registry.
	tel platformTel

	// dist records full-resolution leaf-instruction latency
	// distributions; nil (one branch per leaf) until SetDistribution
	// attaches a set.
	dist *dist.Set
}

// platformTel is the set of cached handles the leaf instructions touch.
type platformTel struct {
	eenter, eexit, eresume, aex *telemetry.Counter
	tracer                      *telemetry.Tracer
}

// SetTelemetry attaches the observability registry to the platform: leaf
// instruction counters and boundary trace events here, and the memory
// hierarchy's counters through mem.System.  A nil registry detaches.
func (p *Platform) SetTelemetry(reg *telemetry.Registry) {
	p.tel = platformTel{
		eenter:  reg.Counter(telemetry.MetricEEnter),
		eexit:   reg.Counter(telemetry.MetricEExit),
		eresume: reg.Counter(telemetry.MetricResume),
		aex:     reg.Counter(telemetry.MetricAEX),
		tracer:  reg.Tracer(),
	}
	p.Mem.SetTelemetry(reg)
}

// SetDistribution attaches (or, with nil, detaches) the high-resolution
// distribution set.  EENTER/ERESUME record under dist.EEnterLeaf and
// EEXIT under dist.EExitLeaf, resolving the microcode share of every SDK
// crossing.
func (p *Platform) SetDistribution(d *dist.Set) { p.dist = d }

// NewPlatform returns a platform with the testbed memory hierarchy and
// deterministic fused keys derived from the seed.
func NewPlatform(seed uint64) *Platform {
	rng := sim.NewRNG(seed)
	p := &Platform{
		Mem:      mem.New(rng),
		RNG:      rng,
		enclaves: make(map[EnclaveID]*Enclave),
		nextID:   1,
		nextBase: mem.EnclaveBase,
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	p.sealSecret = sha256.Sum256(append([]byte("fused-seal-secret"), b[:]...))
	return p
}

// SealSecret exposes the fused seal master secret to the on-die consumers
// (key derivation for EREPORT and sealing).  Nothing off-die ever sees it.
func (p *Platform) SealSecret() [32]byte { return p.sealSecret }

// Enclave returns the enclave with the given ID, or nil.
func (p *Platform) Enclave(id EnclaveID) *Enclave { return p.enclaves[id] }

// Enclave is one secure enclave: its SECS, TCS pool, measurement log, and
// a bump-with-free-list heap allocator for its encrypted memory.
type Enclave struct {
	platform *Platform
	id       EnclaveID
	secs     SECS
	tcs      []*TCS
	hash     interface {
		Write([]byte) (int, error)
		Sum([]byte) []byte
	}

	codeBase uint64
	heapBase uint64
	heapNext uint64
	heapEnd  uint64
	freeList map[uint64][]uint64 // size -> addresses, so reuse keeps caches warm
}

// ECreate creates an enclave of the given virtual size with the given
// number of thread control structures.  This models the ECREATE leaf plus
// the driver's address-space reservation.
func (p *Platform) ECreate(clk *sim.Clock, size uint64, numTCS int, attr Attributes) *Enclave {
	if numTCS <= 0 {
		panic("sgx: enclave needs at least one TCS")
	}
	size = (size + PageSize - 1) / PageSize * PageSize
	e := &Enclave{
		platform: p,
		id:       p.nextID,
		secs:     SECS{Base: p.nextBase, Size: size, Attributes: attr},
		hash:     sha256.New(),
		freeList: make(map[uint64][]uint64),
	}
	p.nextID++
	// Stride enclaves apart so their pages never alias.
	stride := size + (1 << 30)
	p.nextBase += (stride + PageSize - 1) / PageSize * PageSize

	var hdr [24]byte
	copy(hdr[:8], "ECREATE\x00")
	binary.LittleEndian.PutUint64(hdr[8:], size)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(numTCS))
	e.hash.Write(hdr[:])

	// Lay out TCS pages at the base, then SSA pages, then code/heap.
	for i := 0; i < numTCS; i++ {
		e.tcs = append(e.tcs, &TCS{index: i, addr: e.secs.Base + uint64(i)*PageSize})
	}
	// Layout: [TCS pages][SSA pages][trusted runtime code page][heap].
	e.codeBase = e.secs.Base + 2*uint64(numTCS)*PageSize
	e.heapBase = e.codeBase + PageSize
	e.heapNext = e.heapBase
	e.heapEnd = e.secs.Base + size

	clk.Advance(ecreateCost)
	p.enclaves[e.id] = e
	return e
}

// ID returns the enclave's platform-local identifier.
func (e *Enclave) ID() EnclaveID { return e.id }

// Base returns the enclave's base virtual address.
func (e *Enclave) Base() uint64 { return e.secs.Base }

// Size returns the enclave's virtual size in bytes.
func (e *Enclave) Size() uint64 { return e.secs.Size }

// Attributes returns the enclave's SECS attributes.
func (e *Enclave) Attributes() Attributes { return e.secs.Attributes }

// Initialized reports whether EINIT has run.
func (e *Enclave) Initialized() bool { return e.secs.Initialized }

// NumTCS returns the number of thread control structures.
func (e *Enclave) NumTCS() int { return len(e.tcs) }

// InRange reports whether [addr, addr+size) lies entirely inside the
// enclave — the security check every edge call performs on pointers.
func (e *Enclave) InRange(addr, size uint64) bool {
	return addr >= e.secs.Base && addr+size <= e.secs.Base+e.secs.Size
}

// OutsideRange reports whether [addr, addr+size) lies entirely outside the
// enclave.
func (e *Enclave) OutsideRange(addr, size uint64) bool {
	return addr+size <= e.secs.Base || addr >= e.secs.Base+e.secs.Size
}

// EAdd copies one page of content into the enclave and extends the
// measurement, modelling EADD followed by the EEXTEND sequence over the
// page (16 chunks of 256 bytes).
func (e *Enclave) EAdd(clk *sim.Clock, offset uint64, content []byte) error {
	if e.secs.Initialized {
		return ErrAlreadyInitialized
	}
	if len(content) > PageSize {
		panic("sgx: EADD content exceeds a page")
	}
	if offset%PageSize != 0 || offset+PageSize > e.secs.Size {
		panic("sgx: EADD offset out of range or unaligned")
	}
	var hdr [16]byte
	copy(hdr[:8], "EADD\x00\x00\x00\x00")
	binary.LittleEndian.PutUint64(hdr[8:], offset)
	e.hash.Write(hdr[:])

	page := make([]byte, PageSize)
	copy(page, content)
	for chunk := 0; chunk < PageSize/256; chunk++ {
		var ext [16]byte
		copy(ext[:8], "EEXTEND\x00")
		binary.LittleEndian.PutUint64(ext[8:], offset+uint64(chunk)*256)
		e.hash.Write(ext[:])
		e.hash.Write(page[chunk*256 : (chunk+1)*256])
		clk.Advance(eextendCost)
	}
	clk.Advance(eaddCostPage)
	// Fault the page resident so the enclave starts warm in the EPC.
	e.platform.Mem.EPC.Touch((e.secs.Base + offset - mem.EnclaveBase) / PageSize)
	return nil
}

// EInit finalizes the measurement and marks the enclave executable.
func (e *Enclave) EInit(clk *sim.Clock) error {
	if e.secs.Initialized {
		return ErrAlreadyInitialized
	}
	var m Measurement
	copy(m[:], e.hash.Sum(nil))
	e.secs.Measurement = m
	e.secs.Initialized = true
	clk.Advance(einitCost)
	return nil
}

// MRENCLAVE returns the finalized measurement.  It panics before EINIT.
func (e *Enclave) MRENCLAVE() Measurement {
	if !e.secs.Initialized {
		panic("sgx: measurement read before EINIT")
	}
	return e.secs.Measurement
}

// Alloc allocates size bytes of encrypted enclave heap, 64-byte aligned.
// Freed blocks of the same size are reused first, which keeps the SDK's
// marshalling staging buffers cache-warm across calls, as on real hardware.
func (e *Enclave) Alloc(clk *sim.Clock, size uint64) (uint64, error) {
	clk.Advance(allocCost)
	size = (size + 63) / 64 * 64
	if list := e.freeList[size]; len(list) > 0 {
		addr := list[len(list)-1]
		e.freeList[size] = list[:len(list)-1]
		return addr, nil
	}
	if e.heapNext+size > e.heapEnd {
		return 0, ErrOutOfMemory
	}
	addr := e.heapNext
	e.heapNext += size
	return addr, nil
}

// Free returns a block to the allocator.
func (e *Enclave) Free(clk *sim.Clock, addr, size uint64) {
	clk.Advance(allocCost)
	size = (size + 63) / 64 * 64
	e.freeList[size] = append(e.freeList[size], addr)
}

// HeapRemaining returns the unallocated heap bytes (ignoring free lists).
func (e *Enclave) HeapRemaining() uint64 { return e.heapEnd - e.heapNext }

// ERemove destroys an enclave, releasing its identifier.  All thread
// control structures must have exited; destroying an enclave with a thread
// inside is the EREMOVE #GP case and is reported as ErrTCSBusy.
func (p *Platform) ERemove(clk *sim.Clock, e *Enclave) error {
	for _, t := range e.tcs {
		if t.entered {
			return ErrTCSBusy
		}
	}
	clk.Advance(ecreateCost / 2) // page teardown is cheaper than setup
	delete(p.enclaves, e.id)
	e.secs.Initialized = false
	return nil
}

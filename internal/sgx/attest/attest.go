// Package attest implements SGX attestation and sealing on top of the
// simulated platform: local attestation (EREPORT / report-key
// verification), remote attestation (a quoting enclave signing reports
// with a provisioned ECDSA key, verified against the simulated Intel
// attestation service), and data sealing bound to MRENCLAVE.
//
// The paper relies on this machinery only as context (Section 2), but any
// downstream user of the library needs it to provision secrets into an
// enclave, so the reproduction implements it fully.
package attest

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"hotcalls/internal/sgx"
)

// Errors returned by verification.
var (
	ErrBadReportMAC  = errors.New("attest: report MAC verification failed")
	ErrBadQuote      = errors.New("attest: quote signature verification failed")
	ErrUnknownSigner = errors.New("attest: quote signed by unprovisioned platform")
	ErrSealTampered  = errors.New("attest: sealed blob failed authentication")
	ErrWrongEnclave  = errors.New("attest: sealed blob bound to a different enclave")
)

// ReportData is the caller-chosen 64-byte payload bound into a report
// (typically a hash of a key-exchange message).
type ReportData [64]byte

// Report is the EREPORT output: the enclave's identity, MACed with the
// *target* enclave's report key so only the target can verify it locally.
type Report struct {
	Measurement sgx.Measurement
	Attributes  sgx.Attributes
	Data        ReportData
	MAC         [32]byte
}

// reportKey derives the report key a target enclave would obtain via
// EGETKEY: a MAC key bound to the platform's fused seal secret and the
// target's measurement.
func reportKey(platformSecret [32]byte, target sgx.Measurement) [32]byte {
	mac := hmac.New(sha256.New, platformSecret[:])
	mac.Write([]byte("REPORT-KEY"))
	mac.Write(target[:])
	var k [32]byte
	copy(k[:], mac.Sum(nil))
	return k
}

func reportBody(r *Report) []byte {
	body := make([]byte, 0, 32+8+64)
	body = append(body, r.Measurement[:]...)
	var attr [8]byte
	if r.Attributes.Debug {
		attr[0] = 1
	}
	binary.LittleEndian.PutUint16(attr[2:], r.Attributes.ProdID)
	binary.LittleEndian.PutUint16(attr[4:], r.Attributes.SVN)
	body = append(body, attr[:]...)
	body = append(body, r.Data[:]...)
	return body
}

// EReport produces a report describing `src`, verifiable by `target` on the
// same platform — the EREPORT instruction.
func EReport(p *sgx.Platform, src *sgx.Enclave, target sgx.Measurement, data ReportData) *Report {
	r := &Report{
		Measurement: src.MRENCLAVE(),
		Attributes:  src.Attributes(),
		Data:        data,
	}
	key := reportKey(p.SealSecret(), target)
	mac := hmac.New(sha256.New, key[:])
	mac.Write(reportBody(r))
	copy(r.MAC[:], mac.Sum(nil))
	return r
}

// VerifyReport checks a report as the target enclave would, using the
// report key only it (and the hardware) can derive.
func VerifyReport(p *sgx.Platform, target *sgx.Enclave, r *Report) error {
	key := reportKey(p.SealSecret(), target.MRENCLAVE())
	mac := hmac.New(sha256.New, key[:])
	mac.Write(reportBody(r))
	if !hmac.Equal(mac.Sum(nil), r.MAC[:]) {
		return ErrBadReportMAC
	}
	return nil
}

// Quote is a remotely verifiable statement: a report countersigned by the
// platform's quoting enclave with its provisioned attestation key.
type Quote struct {
	Report     Report
	PlatformID string
	SigR, SigS []byte
}

// Policy constrains which quotes a verifier accepts beyond signature
// validity — the checks a production relying party applies.
type Policy struct {
	// AllowDebug accepts enclaves built with the DEBUG attribute.  A
	// debug enclave's memory is inspectable with a debugger, so
	// production verifiers must refuse it.
	AllowDebug bool
	// MinSVN is the minimum acceptable security version number of the
	// enclave code (monotonically bumped on security fixes).
	MinSVN uint16
}

// Errors from policy enforcement.
var (
	ErrDebugEnclave = errors.New("attest: debug enclave rejected by policy")
	ErrStaleSVN     = errors.New("attest: enclave security version below policy minimum")
)

// Service is the simulated Intel attestation service: it provisions
// quoting keys to platforms at "manufacturing" and later tells remote
// verifiers whether a quote came from a genuine platform.
type Service struct {
	keys map[string]*ecdsa.PublicKey
}

// NewService returns an empty attestation service.
func NewService() *Service { return &Service{keys: make(map[string]*ecdsa.PublicKey)} }

// QuotingEnclave holds a platform's provisioned attestation key.
type QuotingEnclave struct {
	platform   *sgx.Platform
	platformID string
	key        *ecdsa.PrivateKey
}

// Provision creates a quoting enclave for a platform and registers its
// public key with the service, modelling EPID provisioning.
func (s *Service) Provision(p *sgx.Platform, platformID string) (*QuotingEnclave, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("attest: provisioning: %w", err)
	}
	s.keys[platformID] = &key.PublicKey
	return &QuotingEnclave{platform: p, platformID: platformID, key: key}, nil
}

// Quote verifies a local report addressed to the quoting enclave's own
// identity and countersigns it for remote verification.  In this model the
// QE accepts reports targeted at the zero measurement (its well-known
// identity).
func (q *QuotingEnclave) Quote(r *Report) (*Quote, error) {
	key := reportKey(q.platform.SealSecret(), sgx.Measurement{})
	mac := hmac.New(sha256.New, key[:])
	mac.Write(reportBody(r))
	if !hmac.Equal(mac.Sum(nil), r.MAC[:]) {
		return nil, ErrBadReportMAC
	}
	digest := sha256.Sum256(reportBody(r))
	sr, ss, err := ecdsa.Sign(rand.Reader, q.key, digest[:])
	if err != nil {
		return nil, fmt.Errorf("attest: signing: %w", err)
	}
	return &Quote{Report: *r, PlatformID: q.platformID, SigR: sr.Bytes(), SigS: ss.Bytes()}, nil
}

// Verify checks a quote as a remote client would: the service confirms the
// signature was produced by a genuine provisioned platform.
func (s *Service) Verify(q *Quote) error {
	pub, ok := s.keys[q.PlatformID]
	if !ok {
		return ErrUnknownSigner
	}
	digest := sha256.Sum256(reportBody(&q.Report))
	r := new(big.Int).SetBytes(q.SigR)
	ss := new(big.Int).SetBytes(q.SigS)
	if !ecdsa.Verify(pub, digest[:], r, ss) {
		return ErrBadQuote
	}
	return nil
}

// VerifyWithPolicy checks the quote's signature and then enforces the
// relying party's policy on the attested attributes.
func (s *Service) VerifyWithPolicy(q *Quote, p Policy) error {
	if err := s.Verify(q); err != nil {
		return err
	}
	if q.Report.Attributes.Debug && !p.AllowDebug {
		return ErrDebugEnclave
	}
	if q.Report.Attributes.SVN < p.MinSVN {
		return ErrStaleSVN
	}
	return nil
}

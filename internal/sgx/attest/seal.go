package attest

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"io"

	"hotcalls/internal/sgx"
)

// SealedBlob is data sealed to an enclave identity on one platform: only
// the same enclave (same MRENCLAVE) on the same processor can unseal it.
type SealedBlob struct {
	Measurement sgx.Measurement
	Nonce       [12]byte
	Ciphertext  []byte
}

// sealKey derives the enclave's sealing key from the platform's fused seal
// secret and the enclave measurement — the EGETKEY(SEAL) derivation.
func sealKey(platformSecret [32]byte, m sgx.Measurement) [32]byte {
	mac := hmac.New(sha256.New, platformSecret[:])
	mac.Write([]byte("SEAL-KEY"))
	mac.Write(m[:])
	var k [32]byte
	copy(k[:], mac.Sum(nil))
	return k
}

func sealAEAD(platformSecret [32]byte, m sgx.Measurement) cipher.AEAD {
	k := sealKey(platformSecret, m)
	block, err := aes.NewCipher(k[:16])
	if err != nil {
		panic(err) // fixed-size key cannot fail
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		panic(err)
	}
	return aead
}

// Seal encrypts data so that only the given enclave on the given platform
// can recover it across restarts.
func Seal(p *sgx.Platform, e *sgx.Enclave, data []byte) (*SealedBlob, error) {
	blob := &SealedBlob{Measurement: e.MRENCLAVE()}
	if _, err := io.ReadFull(rand.Reader, blob.Nonce[:]); err != nil {
		return nil, err
	}
	aead := sealAEAD(p.SealSecret(), blob.Measurement)
	blob.Ciphertext = aead.Seal(nil, blob.Nonce[:], data, blob.Measurement[:])
	return blob, nil
}

// Unseal recovers sealed data inside the enclave it was sealed to.
func Unseal(p *sgx.Platform, e *sgx.Enclave, blob *SealedBlob) ([]byte, error) {
	if blob.Measurement != e.MRENCLAVE() {
		return nil, ErrWrongEnclave
	}
	aead := sealAEAD(p.SealSecret(), blob.Measurement)
	data, err := aead.Open(nil, blob.Nonce[:], blob.Ciphertext, blob.Measurement[:])
	if err != nil {
		return nil, ErrSealTampered
	}
	return data, nil
}

package attest

import (
	"bytes"
	"errors"
	"testing"

	"hotcalls/internal/sgx"
	"hotcalls/internal/sim"
)

func buildEnclave(t *testing.T, p *sgx.Platform, firstByte byte) *sgx.Enclave {
	t.Helper()
	var clk sim.Clock
	e := p.ECreate(&clk, 1<<20, 1, sgx.Attributes{ProdID: 3, SVN: 2})
	content := make([]byte, sgx.PageSize)
	content[0] = firstByte
	if err := e.EAdd(&clk, 0, content); err != nil {
		t.Fatal(err)
	}
	if err := e.EInit(&clk); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestLocalAttestation(t *testing.T) {
	p := sgx.NewPlatform(1)
	src := buildEnclave(t, p, 1)
	dst := buildEnclave(t, p, 2)
	var data ReportData
	copy(data[:], "key-exchange-binding")
	r := EReport(p, src, dst.MRENCLAVE(), data)
	if err := VerifyReport(p, dst, r); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	if r.Measurement != src.MRENCLAVE() {
		t.Fatal("report carries wrong identity")
	}
}

func TestLocalAttestationWrongTarget(t *testing.T) {
	p := sgx.NewPlatform(1)
	src := buildEnclave(t, p, 1)
	dst := buildEnclave(t, p, 2)
	other := buildEnclave(t, p, 3)
	r := EReport(p, src, dst.MRENCLAVE(), ReportData{})
	if err := VerifyReport(p, other, r); !errors.Is(err, ErrBadReportMAC) {
		t.Fatalf("report for dst verified by other: %v", err)
	}
}

func TestLocalAttestationTamperedReport(t *testing.T) {
	p := sgx.NewPlatform(1)
	src := buildEnclave(t, p, 1)
	dst := buildEnclave(t, p, 2)
	r := EReport(p, src, dst.MRENCLAVE(), ReportData{})
	r.Data[0] ^= 1
	if err := VerifyReport(p, dst, r); !errors.Is(err, ErrBadReportMAC) {
		t.Fatalf("tampered report verified: %v", err)
	}
}

func TestRemoteAttestation(t *testing.T) {
	p := sgx.NewPlatform(1)
	e := buildEnclave(t, p, 1)
	svc := NewService()
	qe, err := svc.Provision(p, "platform-A")
	if err != nil {
		t.Fatal(err)
	}
	r := EReport(p, e, sgx.Measurement{}, ReportData{})
	q, err := qe.Quote(r)
	if err != nil {
		t.Fatalf("quoting failed: %v", err)
	}
	if err := svc.Verify(q); err != nil {
		t.Fatalf("remote verification failed: %v", err)
	}
}

func TestQuoteRejectsForgedReport(t *testing.T) {
	p := sgx.NewPlatform(1)
	e := buildEnclave(t, p, 1)
	svc := NewService()
	qe, _ := svc.Provision(p, "platform-A")
	r := EReport(p, e, sgx.Measurement{}, ReportData{})
	r.Measurement[0] ^= 1 // claim a different identity
	if _, err := qe.Quote(r); !errors.Is(err, ErrBadReportMAC) {
		t.Fatalf("QE accepted forged report: %v", err)
	}
}

func TestVerifyRejectsTamperedQuote(t *testing.T) {
	p := sgx.NewPlatform(1)
	e := buildEnclave(t, p, 1)
	svc := NewService()
	qe, _ := svc.Provision(p, "platform-A")
	q, err := qe.Quote(EReport(p, e, sgx.Measurement{}, ReportData{}))
	if err != nil {
		t.Fatal(err)
	}
	q.Report.Attributes.Debug = true // flip an attribute after signing
	if err := svc.Verify(q); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("tampered quote verified: %v", err)
	}
}

func TestVerifyRejectsUnknownPlatform(t *testing.T) {
	p := sgx.NewPlatform(1)
	e := buildEnclave(t, p, 1)
	svc := NewService()
	qe, _ := svc.Provision(p, "platform-A")
	q, err := qe.Quote(EReport(p, e, sgx.Measurement{}, ReportData{}))
	if err != nil {
		t.Fatal(err)
	}
	q.PlatformID = "rogue"
	if err := svc.Verify(q); !errors.Is(err, ErrUnknownSigner) {
		t.Fatalf("err = %v, want ErrUnknownSigner", err)
	}
}

func TestCrossPlatformReportRejected(t *testing.T) {
	// A report produced on platform 1 must not verify on platform 2:
	// the fused secrets differ.
	p1 := sgx.NewPlatform(1)
	p2 := sgx.NewPlatform(2)
	src := buildEnclave(t, p1, 1)
	dst2 := buildEnclave(t, p2, 2)
	r := EReport(p1, src, dst2.MRENCLAVE(), ReportData{})
	if err := VerifyReport(p2, dst2, r); !errors.Is(err, ErrBadReportMAC) {
		t.Fatalf("cross-platform report verified: %v", err)
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	p := sgx.NewPlatform(1)
	e := buildEnclave(t, p, 1)
	secret := []byte("database master key 0123456789ab")
	blob, err := Seal(p, e, secret)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob.Ciphertext, secret[:16]) {
		t.Fatal("sealed blob leaks plaintext")
	}
	got, err := Unseal(p, e, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("unsealed data differs")
	}
}

func TestUnsealWrongEnclave(t *testing.T) {
	p := sgx.NewPlatform(1)
	e1 := buildEnclave(t, p, 1)
	e2 := buildEnclave(t, p, 2)
	blob, err := Seal(p, e1, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unseal(p, e2, blob); !errors.Is(err, ErrWrongEnclave) {
		t.Fatalf("err = %v, want ErrWrongEnclave", err)
	}
}

func TestUnsealTampered(t *testing.T) {
	p := sgx.NewPlatform(1)
	e := buildEnclave(t, p, 1)
	blob, err := Seal(p, e, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	blob.Ciphertext[0] ^= 1
	if _, err := Unseal(p, e, blob); !errors.Is(err, ErrSealTampered) {
		t.Fatalf("err = %v, want ErrSealTampered", err)
	}
}

func TestUnsealOnDifferentPlatform(t *testing.T) {
	p1 := sgx.NewPlatform(1)
	p2 := sgx.NewPlatform(2)
	e1 := buildEnclave(t, p1, 1)
	e2 := buildEnclave(t, p2, 1) // same code, same MRENCLAVE
	if e1.MRENCLAVE() != e2.MRENCLAVE() {
		t.Fatal("setup: measurements should match")
	}
	blob, err := Seal(p1, e1, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	// Same enclave identity, different fused key: must fail.
	if _, err := Unseal(p2, e2, blob); !errors.Is(err, ErrSealTampered) {
		t.Fatalf("err = %v, want ErrSealTampered", err)
	}
}

func quoteFor(t *testing.T, attr sgx.Attributes) (*Service, *Quote) {
	t.Helper()
	p := sgx.NewPlatform(3)
	var clk sim.Clock
	e := p.ECreate(&clk, 1<<20, 1, attr)
	if err := e.EAdd(&clk, 0, make([]byte, sgx.PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := e.EInit(&clk); err != nil {
		t.Fatal(err)
	}
	svc := NewService()
	qe, err := svc.Provision(p, "plat")
	if err != nil {
		t.Fatal(err)
	}
	q, err := qe.Quote(EReport(p, e, sgx.Measurement{}, ReportData{}))
	if err != nil {
		t.Fatal(err)
	}
	return svc, q
}

func TestPolicyRejectsDebugEnclave(t *testing.T) {
	svc, q := quoteFor(t, sgx.Attributes{Debug: true, SVN: 5})
	if err := svc.VerifyWithPolicy(q, Policy{MinSVN: 1}); !errors.Is(err, ErrDebugEnclave) {
		t.Fatalf("err = %v, want ErrDebugEnclave", err)
	}
	if err := svc.VerifyWithPolicy(q, Policy{AllowDebug: true, MinSVN: 1}); err != nil {
		t.Fatalf("debug-allowed policy rejected: %v", err)
	}
}

func TestPolicyRejectsStaleSVN(t *testing.T) {
	svc, q := quoteFor(t, sgx.Attributes{SVN: 2})
	if err := svc.VerifyWithPolicy(q, Policy{MinSVN: 3}); !errors.Is(err, ErrStaleSVN) {
		t.Fatalf("err = %v, want ErrStaleSVN", err)
	}
	if err := svc.VerifyWithPolicy(q, Policy{MinSVN: 2}); err != nil {
		t.Fatalf("current SVN rejected: %v", err)
	}
}

func TestPolicyStillChecksSignature(t *testing.T) {
	svc, q := quoteFor(t, sgx.Attributes{SVN: 2})
	q.Report.Attributes.SVN = 9 // inflate after signing
	if err := svc.VerifyWithPolicy(q, Policy{MinSVN: 5}); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("err = %v, want ErrBadQuote (signature first)", err)
	}
}

package sgx

import (
	"hotcalls/internal/dist"
	"hotcalls/internal/mem"
	"hotcalls/internal/sim"
	"hotcalls/internal/telemetry"
)

// This file models the control-transfer leaf instructions.  Each charges a
// fixed microcode cost — the defensive checks, debug-suppression, and
// register save/restore the SDM describes — plus demand touches of the
// management structures (SECS, TCS, SSA) and the target code/stack lines
// through the memory hierarchy.  When those lines were evicted (the paper's
// cold-cache runs flush the whole 8 MB LLC), each touch becomes an
// encrypted-memory demand miss, which is what stretches the 8,640-cycle
// warm ecall to 12,500-17,000 cycles.

// touch spans for one control transfer, in cache lines.
const (
	secsLines        = 1
	tcsLines         = 2
	ssaLines         = 1
	trustedCodeLines = 1
	trustedStackLine = 1
)

// Touched-line totals per leaf instruction, exported for the analytic
// cost model (internal/profile): a warm crossing's cache component is
// these counts times mem.DemandHitCost.
const (
	EnterTouchLines  = secsLines + tcsLines + ssaLines + trustedCodeLines + trustedStackLine
	ExitTouchLines   = tcsLines + 2 // TCS plus the saved untrusted context
	ResumeTouchLines = EnterTouchLines
)

func (e *Enclave) touchEnclaveEntryState(clk *sim.Clock, tcs *TCS) {
	m := e.platform.Mem
	// SECS sits conceptually at the enclave base; TCS pages follow.
	m.Load(clk, e.secs.Base)
	for i := 0; i < tcsLines; i++ {
		m.Load(clk, tcs.addr+uint64(i)*mem.LineSize)
	}
	ssaBase := tcs.addr + PageSize*uint64(len(e.tcs))
	for i := 0; i < ssaLines; i++ {
		m.Store(clk, ssaBase+uint64(i)*mem.LineSize)
	}
	for i := 0; i < trustedCodeLines; i++ {
		m.Load(clk, e.codeBase+uint64(i)*mem.LineSize)
	}
	m.Store(clk, e.codeBase+PageSize/2) // trusted stack line
}

// leafEvent counts a completed leaf instruction, records its latency into
// the attached distribution set (dk < 0 skips, for AEX), and traces its
// span.
func (e *Enclave) leafEvent(ctr *telemetry.Counter, kind telemetry.Kind, dk dist.Kind, clk *sim.Clock, start uint64) {
	ctr.Inc()
	if dk >= 0 {
		e.platform.dist.Observe(dk, clk.Since(start))
	}
	if tr := e.platform.tel.tracer; tr != nil {
		tr.Emit(kind, kind.String(), start, clk.Since(start), uint64(e.id))
	}
}

// EEnter performs the secure context switch into the enclave on the given
// TCS.  The enclave must be initialized and the TCS free.
func (e *Enclave) EEnter(clk *sim.Clock, tcs *TCS) error {
	if !e.secs.Initialized {
		return ErrNotInitialized
	}
	if tcs.entered {
		return ErrTCSBusy
	}
	start := clk.Now()
	clk.Advance(eenterFixed)
	e.touchEnclaveEntryState(clk, tcs)
	tcs.entered = true
	e.leafEvent(e.platform.tel.eenter, telemetry.KindEEnter, dist.EEnterLeaf, clk, start)
	return nil
}

// EExit performs the reverse context switch back to untrusted code.
func (e *Enclave) EExit(clk *sim.Clock, tcs *TCS) error {
	if !tcs.entered {
		return ErrTCSNotEntered
	}
	start := clk.Now()
	clk.Advance(eexitFixed)
	// The exit path touches the same TCS/SSA lines (warm if just
	// entered) and the untrusted return context.
	m := e.platform.Mem
	for i := 0; i < tcsLines; i++ {
		m.Load(clk, tcs.addr+uint64(i)*mem.LineSize)
	}
	m.Load(clk, mem.PlainBase+untrustedContextOff) // saved RSP/RBP area
	m.Load(clk, mem.PlainBase+untrustedContextOff+mem.LineSize)
	tcs.entered = false
	e.leafEvent(e.platform.tel.eexit, telemetry.KindEExit, dist.EExitLeaf, clk, start)
	return nil
}

// EResume re-enters the enclave after an ocall or asynchronous exit,
// restoring the trusted context from the SSA.
func (e *Enclave) EResume(clk *sim.Clock, tcs *TCS) error {
	if !e.secs.Initialized {
		return ErrNotInitialized
	}
	if tcs.entered {
		return ErrTCSBusy
	}
	start := clk.Now()
	clk.Advance(eresumeFixed)
	e.touchEnclaveEntryState(clk, tcs)
	tcs.entered = true
	e.leafEvent(e.platform.tel.eresume, telemetry.KindEResume, dist.EEnterLeaf, clk, start)
	return nil
}

// AEX models an asynchronous exit: the hardware dumps the trusted context
// into the next SSA frame and transfers to the untrusted AEX landing pad.
// The thread must later ERESUME.
func (e *Enclave) AEX(clk *sim.Clock, tcs *TCS) error {
	if !tcs.entered {
		return ErrTCSNotEntered
	}
	start := clk.Now()
	clk.Advance(aexFixed)
	ssaBase := tcs.addr + PageSize*uint64(len(e.tcs))
	m := e.platform.Mem
	for i := 0; i < 4; i++ { // full register file dump: 4 lines
		m.Store(clk, ssaBase+uint64(i)*mem.LineSize)
	}
	tcs.cssa++
	tcs.entered = false
	e.leafEvent(e.platform.tel.aex, telemetry.KindAEX, dist.Kind(-1), clk, start)
	return nil
}

// ResumeFromAEX is ERESUME from an asynchronous exit: it pops the SSA
// frame.
func (e *Enclave) ResumeFromAEX(clk *sim.Clock, tcs *TCS) error {
	if tcs.cssa == 0 {
		return ErrTCSNotEntered
	}
	if err := e.EResume(clk, tcs); err != nil {
		return err
	}
	tcs.cssa--
	return nil
}

// AcquireTCS finds a free TCS, models the SDK's read/write-locked search of
// the TCS pool, and reserves it (the reservation is released by EExit).
// It returns ErrTCSBusy when every TCS is entered.
func (e *Enclave) AcquireTCS() (*TCS, error) {
	for _, t := range e.tcs {
		if !t.entered {
			return t, nil
		}
	}
	return nil, ErrTCSBusy
}

// TCSByIndex returns the i-th thread control structure.
func (e *Enclave) TCSByIndex(i int) *TCS { return e.tcs[i] }

// untrustedContextOff positions the saved untrusted context (stack, ocall
// frame anchors) within plaintext memory.
const untrustedContextOff = 0x2000

// RDTSCP inside an enclave generates a fault on SGX1 hardware (paper,
// Section 3.1): the simulation surfaces that as an error.
func (e *Enclave) RDTSCP() error { return ErrIllegalInstruction }

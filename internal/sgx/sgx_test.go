package sgx

import (
	"errors"
	"testing"
	"testing/quick"

	"hotcalls/internal/sim"
)

func buildEnclave(t *testing.T, p *Platform, pages int) *Enclave {
	t.Helper()
	var clk sim.Clock
	e := p.ECreate(&clk, 1<<20, 2, Attributes{ProdID: 7, SVN: 1})
	for i := 0; i < pages; i++ {
		content := make([]byte, PageSize)
		content[0] = byte(i)
		if err := e.EAdd(&clk, uint64(i)*PageSize, content); err != nil {
			t.Fatalf("EAdd: %v", err)
		}
	}
	if err := e.EInit(&clk); err != nil {
		t.Fatalf("EInit: %v", err)
	}
	return e
}

func TestLifecycle(t *testing.T) {
	p := NewPlatform(1)
	e := buildEnclave(t, p, 4)
	if !e.Initialized() {
		t.Fatal("enclave not initialized")
	}
	if e.NumTCS() != 2 {
		t.Fatalf("NumTCS = %d", e.NumTCS())
	}
	if p.Enclave(e.ID()) != e {
		t.Fatal("platform lookup failed")
	}
}

func TestMeasurementDeterministic(t *testing.T) {
	a := buildEnclave(t, NewPlatform(1), 4)
	b := buildEnclave(t, NewPlatform(2), 4)
	if a.MRENCLAVE() != b.MRENCLAVE() {
		t.Fatal("identical build sequences must yield identical measurements")
	}
}

func TestMeasurementSensitiveToContent(t *testing.T) {
	p1, p2 := NewPlatform(1), NewPlatform(1)
	var clk sim.Clock
	mk := func(p *Platform, firstByte byte) Measurement {
		e := p.ECreate(&clk, 1<<20, 1, Attributes{})
		content := make([]byte, PageSize)
		content[0] = firstByte
		e.EAdd(&clk, 0, content)
		e.EInit(&clk)
		return e.MRENCLAVE()
	}
	if mk(p1, 0) == mk(p2, 1) {
		t.Fatal("one-byte content change must change the measurement")
	}
}

func TestMeasurementSensitiveToOffset(t *testing.T) {
	var clk sim.Clock
	mk := func(offset uint64) Measurement {
		e := NewPlatform(1).ECreate(&clk, 1<<20, 1, Attributes{})
		e.EAdd(&clk, offset, make([]byte, PageSize))
		e.EInit(&clk)
		return e.MRENCLAVE()
	}
	if mk(0) == mk(PageSize) {
		t.Fatal("page placement must affect the measurement")
	}
}

func TestEAddAfterInitRejected(t *testing.T) {
	p := NewPlatform(1)
	e := buildEnclave(t, p, 1)
	var clk sim.Clock
	if err := e.EAdd(&clk, 8*PageSize, nil); !errors.Is(err, ErrAlreadyInitialized) {
		t.Fatalf("err = %v, want ErrAlreadyInitialized", err)
	}
	if err := e.EInit(&clk); !errors.Is(err, ErrAlreadyInitialized) {
		t.Fatalf("double EInit err = %v", err)
	}
}

func TestMeasurementBeforeInitPanics(t *testing.T) {
	p := NewPlatform(1)
	var clk sim.Clock
	e := p.ECreate(&clk, 1<<20, 1, Attributes{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.MRENCLAVE()
}

func TestEEnterRequiresInit(t *testing.T) {
	p := NewPlatform(1)
	var clk sim.Clock
	e := p.ECreate(&clk, 1<<20, 1, Attributes{})
	tcs, _ := e.AcquireTCS()
	if err := e.EEnter(&clk, tcs); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("err = %v, want ErrNotInitialized", err)
	}
}

func TestEnterExitCycle(t *testing.T) {
	p := NewPlatform(1)
	e := buildEnclave(t, p, 2)
	var clk sim.Clock
	tcs, err := e.AcquireTCS()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EEnter(&clk, tcs); err != nil {
		t.Fatal(err)
	}
	if !tcs.Entered() {
		t.Fatal("TCS not marked entered")
	}
	if err := e.EEnter(&clk, tcs); !errors.Is(err, ErrTCSBusy) {
		t.Fatalf("re-enter err = %v, want ErrTCSBusy", err)
	}
	if err := e.EExit(&clk, tcs); err != nil {
		t.Fatal(err)
	}
	if tcs.Entered() {
		t.Fatal("TCS still entered after EExit")
	}
	if err := e.EExit(&clk, tcs); !errors.Is(err, ErrTCSNotEntered) {
		t.Fatalf("double exit err = %v", err)
	}
}

func TestTCSPoolExhaustion(t *testing.T) {
	p := NewPlatform(1)
	e := buildEnclave(t, p, 2) // 2 TCS
	var clk sim.Clock
	t1, _ := e.AcquireTCS()
	e.EEnter(&clk, t1)
	t2, _ := e.AcquireTCS()
	e.EEnter(&clk, t2)
	if _, err := e.AcquireTCS(); !errors.Is(err, ErrTCSBusy) {
		t.Fatalf("err = %v, want ErrTCSBusy", err)
	}
	e.EExit(&clk, t2)
	if _, err := e.AcquireTCS(); err != nil {
		t.Fatalf("TCS not reusable after exit: %v", err)
	}
}

func TestAEXAndResume(t *testing.T) {
	p := NewPlatform(1)
	e := buildEnclave(t, p, 2)
	var clk sim.Clock
	tcs, _ := e.AcquireTCS()
	e.EEnter(&clk, tcs)
	if err := e.AEX(&clk, tcs); err != nil {
		t.Fatal(err)
	}
	if tcs.Entered() {
		t.Fatal("TCS entered after AEX")
	}
	if tcs.cssa != 1 {
		t.Fatalf("cssa = %d, want 1", tcs.cssa)
	}
	if err := e.ResumeFromAEX(&clk, tcs); err != nil {
		t.Fatal(err)
	}
	if tcs.cssa != 0 || !tcs.Entered() {
		t.Fatal("resume did not restore state")
	}
	if err := e.ResumeFromAEX(&clk, tcs); !errors.Is(err, ErrTCSNotEntered) {
		t.Fatalf("resume without AEX err = %v", err)
	}
}

func TestWarmEnterExitIsStable(t *testing.T) {
	p := NewPlatform(1)
	e := buildEnclave(t, p, 2)
	tcs, _ := e.AcquireTCS()
	var warmup sim.Clock
	for i := 0; i < 10; i++ {
		e.EEnter(&warmup, tcs)
		e.EExit(&warmup, tcs)
	}
	costs := make([]uint64, 0, 100)
	for i := 0; i < 100; i++ {
		var clk sim.Clock
		e.EEnter(&clk, tcs)
		e.EExit(&clk, tcs)
		costs = append(costs, clk.Now())
	}
	for _, c := range costs {
		if c != costs[0] {
			t.Fatalf("warm enter/exit cost varies: %d vs %d", c, costs[0])
		}
	}
}

func TestColdEnterExitCostsMore(t *testing.T) {
	p := NewPlatform(1)
	e := buildEnclave(t, p, 2)
	tcs, _ := e.AcquireTCS()
	var warmup sim.Clock
	for i := 0; i < 10; i++ {
		e.EEnter(&warmup, tcs)
		e.EExit(&warmup, tcs)
	}
	var warm sim.Clock
	e.EEnter(&warm, tcs)
	e.EExit(&warm, tcs)

	p.Mem.EvictAll()
	var cold sim.Clock
	e.EEnter(&cold, tcs)
	e.EExit(&cold, tcs)
	if cold.Now() <= warm.Now()+2000 {
		t.Fatalf("cold enter/exit %d should far exceed warm %d", cold.Now(), warm.Now())
	}
}

func TestInRangeChecks(t *testing.T) {
	p := NewPlatform(1)
	e := buildEnclave(t, p, 2)
	base, size := e.Base(), e.Size()
	if !e.InRange(base, size) {
		t.Fatal("full enclave range should be in range")
	}
	if e.InRange(base, size+1) || e.InRange(base-1, 2) {
		t.Fatal("out-of-bounds spans accepted")
	}
	if !e.OutsideRange(base-4096, 4096) || !e.OutsideRange(base+size, 64) {
		t.Fatal("fully outside spans rejected")
	}
	if e.OutsideRange(base+size-1, 2) {
		t.Fatal("straddling span accepted as outside")
	}
}

func TestAllocFreeReuse(t *testing.T) {
	p := NewPlatform(1)
	e := buildEnclave(t, p, 2)
	var clk sim.Clock
	a, err := e.Alloc(&clk, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if !e.InRange(a, 2048) {
		t.Fatal("allocation outside enclave")
	}
	e.Free(&clk, a, 2048)
	b, err := e.Alloc(&clk, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("free-list reuse failed: %#x vs %#x", a, b)
	}
}

func TestAllocExhaustion(t *testing.T) {
	p := NewPlatform(1)
	var clk sim.Clock
	e := p.ECreate(&clk, 16*PageSize, 1, Attributes{})
	e.EInit(&clk)
	for {
		if _, err := e.Alloc(&clk, 1<<20); err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("err = %v, want ErrOutOfMemory", err)
			}
			return
		}
	}
}

func TestAllocationsDisjoint(t *testing.T) {
	p := NewPlatform(1)
	e := buildEnclave(t, p, 2)
	var clk sim.Clock
	f := func(sizes []uint16) bool {
		type span struct{ a, sz uint64 }
		var spans []span
		for _, s := range sizes {
			sz := uint64(s%4096) + 1
			a, err := e.Alloc(&clk, sz)
			if err != nil {
				return true // heap exhausted is fine
			}
			for _, sp := range spans {
				if a < sp.a+sp.sz && sp.a < a+sz {
					return false
				}
			}
			spans = append(spans, span{a, sz})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEnclavesDoNotOverlap(t *testing.T) {
	p := NewPlatform(1)
	var clk sim.Clock
	a := p.ECreate(&clk, 1<<20, 1, Attributes{})
	b := p.ECreate(&clk, 1<<20, 1, Attributes{})
	if !a.OutsideRange(b.Base(), b.Size()) {
		t.Fatal("enclaves overlap")
	}
}

func TestRDTSCPFaultsInsideEnclave(t *testing.T) {
	p := NewPlatform(1)
	e := buildEnclave(t, p, 1)
	if err := e.RDTSCP(); !errors.Is(err, ErrIllegalInstruction) {
		t.Fatalf("err = %v, want ErrIllegalInstruction", err)
	}
}

func TestERemove(t *testing.T) {
	p := NewPlatform(1)
	e := buildEnclave(t, p, 2)
	var clk sim.Clock
	tcs, _ := e.AcquireTCS()
	e.EEnter(&clk, tcs)
	if err := p.ERemove(&clk, e); !errors.Is(err, ErrTCSBusy) {
		t.Fatalf("destroying an entered enclave: err = %v, want ErrTCSBusy", err)
	}
	e.EExit(&clk, tcs)
	if err := p.ERemove(&clk, e); err != nil {
		t.Fatal(err)
	}
	if p.Enclave(e.ID()) != nil {
		t.Fatal("enclave still registered after EREMOVE")
	}
	if err := e.EEnter(&clk, tcs); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("entering destroyed enclave: err = %v", err)
	}
}

package porting

import (
	"sort"

	"hotcalls/internal/sim"
)

// Metrics summarizes one closed-loop run.
type Metrics struct {
	Requests     uint64
	SimSeconds   float64
	Throughput   float64 // requests (or packets) per second
	AvgLatency   float64 // seconds
	P50Latency   float64
	P99Latency   float64
	BytesTX      uint64  // payload transmitted, for bandwidth workloads
	BandwidthMbs float64 // megabits per second of payload
}

// RunClosedLoop drives a single-threaded server with a fixed number of
// outstanding requests (the memtier/http_load/flood-ping pattern: every
// completed request is immediately replaced).  serve processes exactly one
// request on the given clock.  The run ends when the server clock passes
// simCycles.
//
// With one server and N outstanding requests, a request's latency is the
// time from when its slot was freed to its completion — Little's law makes
// latency ≈ N / throughput, which is exactly the relationship the paper's
// Figures 10 and 11 exhibit.
func RunClosedLoop(outstanding int, simCycles uint64, serve func(clk *sim.Clock)) Metrics {
	if outstanding <= 0 {
		panic("porting: need at least one outstanding request")
	}
	var clk sim.Clock
	// Ring of the completion times of the last `outstanding` requests:
	// slot i frees when the request `outstanding` ago completed.
	ring := make([]uint64, outstanding)
	var latencies []float64
	var n uint64
	for clk.Now() < simCycles {
		submitted := ring[n%uint64(outstanding)]
		serve(&clk)
		done := clk.Now()
		latencies = append(latencies, sim.Seconds(done-submitted))
		ring[n%uint64(outstanding)] = done
		n++
	}
	m := Metrics{Requests: n, SimSeconds: sim.Seconds(clk.Now())}
	if m.SimSeconds > 0 {
		m.Throughput = float64(n) / m.SimSeconds
	}
	if len(latencies) > 0 {
		// Discard warmup: the first `outstanding` requests started
		// from an idle system.
		if len(latencies) > outstanding*2 {
			latencies = latencies[outstanding:]
		}
		sort.Float64s(latencies)
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		m.AvgLatency = sum / float64(len(latencies))
		m.P50Latency = latencies[len(latencies)/2]
		m.P99Latency = latencies[len(latencies)*99/100]
	}
	return m
}

package porting

import "hotcalls/internal/sim"

// Asynchronous-exit injection: OS interrupts land on the enclave core at
// some rate regardless of the interface in use.  Each hit costs the
// hardware context dump to the SSA, the OS service, and ERESUME
// (sim.AEXCostCycles), and — like any enclave transition — invalidates the
// enclave's TLB entries.  The paper filters AEX-contaminated runs out of
// its microbenchmarks (Section 3.1); applications cannot, so the harness
// can inject them here to test degradation.

// SetAEXRate enables asynchronous-exit injection at the given interrupts
// per second (0 disables, the default).  Rates around 500/s match an idle
// server; storms of 100k/s model a hostile or interrupt-heavy host.
func (a *App) SetAEXRate(perSecond float64) {
	a.aexRate = perSecond
}

// injectAEX charges any asynchronous exits that statistically landed in
// the last `cycles` of enclave execution and reports how many hit.
func (a *App) injectAEX(clk *sim.Clock, cycles uint64) int {
	if a.aexRate <= 0 || !a.Secure() {
		return 0
	}
	expected := float64(cycles) * a.aexRate / sim.FrequencyHz
	hits := int(expected)
	if a.Platform.RNG.Bool(expected - float64(hits)) {
		hits++
	}
	for i := 0; i < hits; i++ {
		clk.Advance(sim.AEXCostCycles)
	}
	return hits
}

// ServeWithAEX wraps one request: run it, then charge the asynchronous
// exits that landed during its execution.  The TLB flush an AEX implies is
// charged with it (one page-walk set on the next touch).
func (a *App) ServeWithAEX(clk *sim.Clock, serve func(clk *sim.Clock)) int {
	start := clk.Now()
	serve(clk)
	return a.injectAEX(clk, clk.Now()-start)
}

package porting

import (
	"fmt"
	"sort"
	"strings"

	"hotcalls/internal/sim"
)

// Profile attributes simulated cycles to named categories with self-time
// semantics: a section's cycles exclude its nested sections.  The porting
// layer opens sections around edge calls and TLB refills; applications
// open their own around crypto, data-store, and compute phases.  The
// result reproduces the paper's core-time accounting (Table 2: memcached
// spends 42% of its core merely facilitating calls) from the inside.
//
// The zero value is unusable; attach one with App.EnableProfile.
type Profile struct {
	totals map[string]uint64
	stack  []profSection
}

type profSection struct {
	name        string
	start       uint64
	childCycles uint64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{totals: make(map[string]uint64)}
}

// Enter opens a section; the returned closure closes it.  Sections nest:
// cycles spent in inner sections are excluded from the outer section's
// self time.
func (p *Profile) Enter(clk *sim.Clock, name string) func() {
	p.stack = append(p.stack, profSection{name: name, start: clk.Now()})
	depth := len(p.stack)
	return func() {
		if len(p.stack) != depth {
			panic("porting: profile sections closed out of order")
		}
		s := p.stack[depth-1]
		p.stack = p.stack[:depth-1]
		elapsed := clk.Now() - s.start
		self := elapsed - s.childCycles
		p.totals[s.name] += self
		if depth >= 2 {
			p.stack[depth-2].childCycles += elapsed
		}
	}
}

// Totals returns a copy of the per-category self-time cycles.
func (p *Profile) Totals() map[string]uint64 {
	out := make(map[string]uint64, len(p.totals))
	for k, v := range p.totals {
		out[k] = v
	}
	return out
}

// Total returns all attributed cycles.
func (p *Profile) Total() uint64 {
	var t uint64
	for _, v := range p.totals {
		t += v
	}
	return t
}

// Share returns a category's fraction of all attributed cycles.
func (p *Profile) Share(name string) float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return float64(p.totals[name]) / float64(t)
}

// Reset clears the accumulated totals (sections must all be closed).
func (p *Profile) Reset() {
	if len(p.stack) != 0 {
		panic("porting: profile reset with open sections")
	}
	p.totals = make(map[string]uint64)
}

// String renders the breakdown largest-first.
func (p *Profile) String() string {
	type row struct {
		name   string
		cycles uint64
	}
	rows := make([]row, 0, len(p.totals))
	for name, c := range p.totals {
		rows = append(rows, row{name, c})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].cycles > rows[j].cycles })
	total := p.Total()
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %12d cycles  %5.1f%%\n", r.name, r.cycles, float64(r.cycles)/float64(total)*100)
	}
	return b.String()
}

// Profile category names used by the porting layer.
const (
	CatEdgeCalls = "edge-calls" // interface crossings incl. kernel service
	CatTLB       = "tlb-refills"
	CatAppWork   = "app-compute"
	CatDataStore = "data-store"
	CatCrypto    = "crypto"
)

// EnableProfile attaches a profiler to the app and returns it.  The
// porting layer then attributes edge-call and TLB-refill cycles; the
// application attributes its own phases through Env.Section.
func (a *App) EnableProfile() *Profile {
	a.Prof = NewProfile()
	return a.Prof
}

// Section opens a named profile section when profiling is enabled, and is
// a no-op closure otherwise.
func (e *Env) Section(name string) func() {
	if e.App.Prof == nil {
		return func() {}
	}
	return e.App.Prof.Enter(e.Clk, name)
}

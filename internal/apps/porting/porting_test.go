package porting

import (
	"errors"
	"math"
	"testing"

	"hotcalls/internal/sdk"
	"hotcalls/internal/sim"
)

const portEDL = `
enclave {
    trusted {
        public int ecall_entry(void);
    };
    untrusted {
        long ocall_work([out, size=len] uint8_t* buf, size_t len);
        long ocall_nop(void);
    };
};
`

func newApp(t testing.TB, mode Mode) *App {
	t.Helper()
	app := New(mode, Config{Seed: 99}, portEDL)
	app.BindUntrusted("ocall_work", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		for i := range args[0].Buf.Data {
			args[0].Buf.Data[i] = byte(i)
		}
		return uint64(len(args[0].Buf.Data))
	})
	app.BindUntrusted("ocall_nop", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 { return 0 })
	return app
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		Native: "native", SGX: "sgx", HotCalls: "hotcalls", HotCallsNRZ: "hotcalls+nrz",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if Mode(42).String() != "Mode(42)" {
		t.Error("unknown mode should format numerically")
	}
}

func TestCallRoutesPerMode(t *testing.T) {
	for _, mode := range Modes {
		t.Run(mode.String(), func(t *testing.T) {
			app := newApp(t, mode)
			called := false
			app.BindTrusted("ecall_entry", func(env *Env, args []sdk.Arg) uint64 {
				called = true
				if _, err := env.OCall("ocall_nop"); err != nil {
					t.Errorf("ocall in %s: %v", mode, err)
				}
				return 11
			})
			var clk sim.Clock
			ret, err := app.Call(&clk, "ecall_entry")
			if err != nil || ret != 11 || !called {
				t.Fatalf("Call = (%d, %v), called=%v", ret, err, called)
			}
			c := app.Counters()
			if c["ecall_entry"] != 1 || c["ocall_nop"] != 1 {
				t.Fatalf("counters = %v", c)
			}
		})
	}
}

func TestOCallDataPathPerMode(t *testing.T) {
	for _, mode := range Modes {
		t.Run(mode.String(), func(t *testing.T) {
			app := newApp(t, mode)
			app.BindTrusted("ecall_entry", func(env *Env, args []sdk.Arg) uint64 {
				buf := env.App.AllocBuffer(env.Clk, 64)
				ret, err := env.OCall("ocall_work", sdk.Buf(buf), sdk.Scalar(64))
				if err != nil {
					t.Errorf("%s: %v", mode, err)
					return 0
				}
				for i, b := range buf.Data {
					if b != byte(i) {
						t.Errorf("%s: buf[%d] = %d", mode, i, b)
						break
					}
				}
				return ret
			})
			var clk sim.Clock
			ret, err := app.Call(&clk, "ecall_entry")
			if err != nil || ret != 64 {
				t.Fatalf("Call = (%d, %v)", ret, err)
			}
		})
	}
}

func TestCallCostOrdering(t *testing.T) {
	// The whole point of the paper: native < hotcalls << sgx.
	cost := map[Mode]uint64{}
	for _, mode := range Modes {
		app := newApp(t, mode)
		app.BindTrusted("ecall_entry", func(env *Env, args []sdk.Arg) uint64 {
			env.OCall("ocall_nop")
			return 0
		})
		// Warm up, then measure.
		var warm sim.Clock
		for i := 0; i < 20; i++ {
			app.Call(&warm, "ecall_entry")
		}
		var clk sim.Clock
		app.Call(&clk, "ecall_entry")
		cost[mode] = clk.Now()
	}
	if !(cost[Native] < cost[HotCalls] && cost[HotCalls] < cost[SGX]) {
		t.Fatalf("cost ordering violated: %v", cost)
	}
	if ratio := float64(cost[SGX]) / float64(cost[HotCalls]); ratio < 5 {
		t.Errorf("SGX/HotCalls call ratio = %.1f, want large", ratio)
	}
}

func TestNativeUnboundCall(t *testing.T) {
	app := newApp(t, Native)
	var clk sim.Clock
	if _, err := app.Call(&clk, "ecall_entry"); !errors.Is(err, sdk.ErrNotBound) {
		t.Fatalf("err = %v, want ErrNotBound", err)
	}
}

func TestNativeOCallUnknown(t *testing.T) {
	app := newApp(t, Native)
	app.BindTrusted("ecall_entry", func(env *Env, args []sdk.Arg) uint64 {
		if _, err := env.OCall("ocall_missing"); err == nil {
			t.Error("unknown ocall accepted in native mode")
		}
		return 0
	})
	var clk sim.Clock
	app.Call(&clk, "ecall_entry")
}

func TestAllocBufferPlacement(t *testing.T) {
	var clk sim.Clock
	native := newApp(t, Native)
	nb := native.AllocBuffer(&clk, 64)
	if native.Platform.Mem.IsEnclave(nb.Addr) {
		t.Error("native buffer placed in enclave memory")
	}
	secure := newApp(t, SGX)
	sb := secure.AllocBuffer(&clk, 64)
	if !secure.Platform.Mem.IsEnclave(sb.Addr) {
		t.Error("secure buffer placed in plain memory")
	}
	if !secure.Enclave.InRange(sb.Addr, 64) {
		t.Error("secure buffer outside the enclave range")
	}
}

func TestReserveRegionDisjointAndTyped(t *testing.T) {
	app := newApp(t, SGX)
	a := app.ReserveRegion(1 << 20)
	b := app.ReserveRegion(1 << 20)
	if b < a+(1<<20) {
		t.Fatal("regions overlap")
	}
	if !app.Platform.Mem.IsEnclave(a) {
		t.Fatal("secure-mode region not EPC-backed")
	}
	plain := newApp(t, Native)
	if plain.Platform.Mem.IsEnclave(plain.ReserveRegion(1 << 20)) {
		t.Fatal("native region placed in enclave space")
	}
}

func TestTLBRefillOnlyUnderSGX(t *testing.T) {
	costs := map[Mode]uint64{}
	for _, mode := range []Mode{SGX, HotCalls, Native} {
		app := newApp(t, mode)
		app.BindTrusted("ecall_entry", func(env *Env, args []sdk.Arg) uint64 {
			env.OCall("ocall_nop")
			before := env.Clk.Now()
			env.TouchPages(10)
			costs[mode] = env.Clk.Since(before)
			return 0
		})
		var warm sim.Clock
		for i := 0; i < 5; i++ {
			app.Call(&warm, "ecall_entry")
		}
	}
	if costs[SGX] < 10*300 {
		t.Errorf("SGX TLB refill charged %d, want >= 3,500", costs[SGX])
	}
	if costs[HotCalls] != 0 || costs[Native] != 0 {
		t.Errorf("non-SDK modes charged TLB refills: %v", costs)
	}
}

func TestTLBChargedOncePerFlush(t *testing.T) {
	app := newApp(t, SGX)
	var first, second uint64
	app.BindTrusted("ecall_entry", func(env *Env, args []sdk.Arg) uint64 {
		env.OCall("ocall_nop")
		b := env.Clk.Now()
		env.TouchPages(5)
		first = env.Clk.Since(b)
		b = env.Clk.Now()
		env.TouchPages(5) // TLB already warm: free
		second = env.Clk.Since(b)
		return 0
	})
	var clk sim.Clock
	app.Call(&clk, "ecall_entry")
	if first == 0 || second != 0 {
		t.Fatalf("TLB refill charges: first=%d second=%d, want >0 then 0", first, second)
	}
}

func TestRunClosedLoopLittlesLaw(t *testing.T) {
	// With constant service time S and N outstanding, throughput = 1/S
	// and latency = N*S.
	const service = 20000 // cycles
	const n = 50
	m := RunClosedLoop(n, sim.Cycles(0.01), func(clk *sim.Clock) {
		clk.Advance(service)
	})
	wantX := sim.FrequencyHz / float64(service)
	if math.Abs(m.Throughput-wantX)/wantX > 0.01 {
		t.Errorf("throughput = %.0f, want %.0f", m.Throughput, wantX)
	}
	wantL := float64(n) * sim.Seconds(service)
	if math.Abs(m.AvgLatency-wantL)/wantL > 0.05 {
		t.Errorf("latency = %v, want %v", m.AvgLatency, wantL)
	}
	// Little's law: X * R = N.
	if got := m.Throughput * m.AvgLatency; math.Abs(got-n)/n > 0.05 {
		t.Errorf("X*R = %.1f, want %d", got, n)
	}
}

func TestRunClosedLoopPercentiles(t *testing.T) {
	m := RunClosedLoop(10, sim.Cycles(0.002), func(clk *sim.Clock) {
		clk.Advance(10000)
	})
	if m.P50Latency > m.P99Latency {
		t.Fatal("p50 > p99")
	}
	if m.Requests == 0 || m.SimSeconds <= 0 {
		t.Fatal("empty metrics")
	}
}

func TestRunClosedLoopPanicsOnBadConcurrency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunClosedLoop(0, 1000, func(clk *sim.Clock) {})
}

func TestAEXInjectionDegradesGracefully(t *testing.T) {
	throughput := func(rate float64) float64 {
		app := newApp(t, SGX)
		app.SetAEXRate(rate)
		app.BindTrusted("ecall_entry", func(env *Env, args []sdk.Arg) uint64 {
			env.OCall("ocall_nop")
			env.Clk.Advance(20000)
			return 0
		})
		m := RunClosedLoop(10, sim.Cycles(0.005), func(clk *sim.Clock) {
			app.ServeWithAEX(clk, func(clk *sim.Clock) {
				if _, err := app.Call(clk, "ecall_entry"); err != nil {
					t.Fatal(err)
				}
			})
		})
		return m.Throughput
	}
	quiet := throughput(0)
	normal := throughput(500)
	storm := throughput(200000)
	t.Logf("req/s: quiet %.0f, 500 AEX/s %.0f, 200k AEX/s %.0f", quiet, normal, storm)
	// An idle-server interrupt rate is in the noise; a storm hurts.
	if normal < quiet*0.97 {
		t.Errorf("500 AEX/s cost %.1f%%, should be negligible", (1-normal/quiet)*100)
	}
	if storm > quiet*0.85 {
		t.Errorf("AEX storm only cost %.1f%%, should be visible", (1-storm/quiet)*100)
	}
	if storm < quiet*0.2 {
		t.Errorf("AEX storm collapsed throughput to %.1f%%: model too harsh", storm/quiet*100)
	}
}

func TestAEXDisabledForNative(t *testing.T) {
	app := newApp(t, Native)
	app.SetAEXRate(1e6)
	var clk sim.Clock
	if hits := app.injectAEX(&clk, 1<<30); hits != 0 || clk.Now() != 0 {
		t.Fatal("AEX injected into a native (non-enclave) run")
	}
}

// Package porting implements the paper's Section 6.1 application-porting
// framework: the whole application moves into the enclave behind a
// main-wrapper ecall, every external API reference becomes a generated
// ocall with a trusted wrapper and an untrusted landing function, and
// per-call counters feed Table 2.
//
// The same application logic runs in four configurations:
//
//	Native       — no enclave: API calls go straight to the kernel.
//	SGX          — the unoptimized port: SDK ecalls/ocalls.
//	HotCalls     — the paper's interface (Section 4).
//	HotCallsNRZ  — HotCalls plus No-Redundant-Zeroing.
package porting

import (
	"fmt"

	"hotcalls/internal/core"
	"hotcalls/internal/edl"
	"hotcalls/internal/mem"
	"hotcalls/internal/osapi"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sgx"
	"hotcalls/internal/sim"
	"hotcalls/internal/telemetry"
)

// Mode selects the port configuration.
type Mode int

// Port configurations, matching the bars of Figures 10 and 11.
const (
	Native Mode = iota
	SGX
	HotCalls
	HotCallsNRZ
)

func (m Mode) String() string {
	switch m {
	case Native:
		return "native"
	case SGX:
		return "sgx"
	case HotCalls:
		return "hotcalls"
	case HotCallsNRZ:
		return "hotcalls+nrz"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Modes lists all four configurations in figure order.
var Modes = []Mode{Native, SGX, HotCalls, HotCallsNRZ}

// Env is the execution environment handed to application logic: a clock
// plus the mode-appropriate way to reach the OS.
type Env struct {
	Clk *sim.Clock
	App *App

	sdkCtx     *sdk.Ctx // set while running under an SDK ecall
	tlbFlushed bool     // enclave TLB state after the last transition
}

// OCall reaches an untrusted API function through the configured
// interface: a direct call (native), an SDK ocall, or a HotCall.
func (e *Env) OCall(name string, args ...sdk.Arg) (uint64, error) {
	if e.App.Prof != nil {
		defer e.App.Prof.Enter(e.Clk, CatEdgeCalls)()
	}
	switch e.App.Mode {
	case Native:
		_, fn, err := e.App.RT.UntrustedBinding(name)
		if err != nil {
			return 0, err
		}
		e.App.RT.CountCall(name)
		return fn(&sdk.Ctx{Clk: e.Clk, RT: e.App.RT}, args), nil
	case SGX:
		if e.sdkCtx == nil {
			return 0, sdk.ErrOCallOutsideCall
		}
		ret, err := e.sdkCtx.OCall(name, args...)
		// EEXIT/ERESUME invalidated the enclave's TLB entries.
		e.tlbFlushed = true
		return ret, err
	default:
		return e.App.Chan.HotOCall(e.Clk, name, args...)
	}
}

// App is one ported application instance: the platform, the kernel its
// landing functions talk to, and the enclave runtime for the secure modes.
type App struct {
	Mode     Mode
	Platform *sgx.Platform
	Kernel   *osapi.Kernel
	Enclave  *sgx.Enclave
	RT       *sdk.Runtime
	Chan     *core.Channel

	// Prof, when non-nil, receives the cycle-attribution breakdown
	// (see profile.go).
	Prof *Profile

	// Tel is the attached observability registry (nil when telemetry is
	// off); applications read it back to register their own metrics.
	Tel *telemetry.Registry

	trusted map[string]func(*Env, []sdk.Arg) uint64

	regionNext uint64  // bump cursor for ReserveRegion
	aexRate    float64 // asynchronous exits per second (see aex.go)
}

// Config describes the enclave to build for the secure modes.
type Config struct {
	Seed        uint64
	EnclaveSize uint64 // virtual size; also bounds the secure heap
	NumTCS      int
	CodePages   int // pages of application code measured in at load
	EPCBytes    int // 0 = the testbed default (93 MB)
}

// New builds an application container in the given mode.  The EDL source
// declares the app's edge interface, exactly as the Section 6.1 framework
// generates it from the undefined-reference list.
func New(mode Mode, cfg Config, edlSrc string) *App {
	p := sgx.NewPlatform(cfg.Seed)
	if cfg.EPCBytes > 0 {
		p.Mem = mem.NewWithEPC(p.RNG, cfg.EPCBytes)
	}
	var clk sim.Clock
	if cfg.EnclaveSize == 0 {
		cfg.EnclaveSize = 256 << 20
	}
	if cfg.NumTCS == 0 {
		cfg.NumTCS = 4
	}
	if cfg.CodePages == 0 {
		cfg.CodePages = 16
	}
	e := p.ECreate(&clk, cfg.EnclaveSize, cfg.NumTCS, sgx.Attributes{})
	for i := 0; i < cfg.CodePages; i++ {
		if err := e.EAdd(&clk, uint64(i)*sgx.PageSize, make([]byte, sgx.PageSize)); err != nil {
			panic(err)
		}
	}
	if err := e.EInit(&clk); err != nil {
		panic(err)
	}
	rt := sdk.New(p, e, edl.MustParse(edlSrc))
	rt.NoRedundantZeroing = mode == HotCallsNRZ
	app := &App{
		Mode:     mode,
		Platform: p,
		Kernel:   osapi.NewKernel(p.Mem),
		Enclave:  e,
		RT:       rt,
		Chan:     core.NewChannel(rt, p.RNG),
		trusted:  make(map[string]func(*Env, []sdk.Arg) uint64),
	}
	return app
}

// BindTrusted registers application logic for a declared ecall.  The
// handler receives an Env whose OCall routes through the app's mode.
func (a *App) BindTrusted(name string, fn func(*Env, []sdk.Arg) uint64) {
	a.trusted[name] = fn
	a.RT.MustBindECall(name, func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		// Under the SDK interface the handler starts with a freshly
		// flushed enclave TLB (EENTER invalidates it).
		return fn(&Env{Clk: ctx.Clk, App: a, sdkCtx: ctx, tlbFlushed: true}, args)
	})
}

// BindUntrusted registers an untrusted landing function (it talks to the
// kernel).
func (a *App) BindUntrusted(name string, fn func(*sdk.Ctx, []sdk.Arg) uint64) {
	a.RT.MustBindOCall(name, fn)
}

// Call invokes a trusted entry point through the configured interface —
// the RunEnclaveFunction pattern of Section 6.2 for event callbacks into
// the enclave.
func (a *App) Call(clk *sim.Clock, name string, args ...sdk.Arg) (uint64, error) {
	if a.Prof != nil {
		defer a.Prof.Enter(clk, CatEdgeCalls)()
	}
	switch a.Mode {
	case Native:
		fn, ok := a.trusted[name]
		if !ok {
			return 0, fmt.Errorf("%w: %s", sdk.ErrNotBound, name)
		}
		a.RT.CountCall(name)
		return fn(&Env{Clk: clk, App: a}, args), nil
	case SGX:
		return a.RT.ECall(clk, name, args...)
	default:
		return a.Chan.HotECall(clk, name, args...)
	}
}

// SetTelemetry attaches the observability registry to every layer the
// app owns: the SGX platform (leaf instructions, EPC paging, MEE), the
// SDK runtime (ecall/ocall paths), and the HotCalls channel.  A nil
// registry detaches everywhere.
func (a *App) SetTelemetry(reg *telemetry.Registry) {
	a.Tel = reg
	a.Platform.SetTelemetry(reg)
	a.RT.SetTelemetry(reg)
	a.Chan.SetTelemetry(reg)
}

// Secure reports whether the app runs inside an enclave.
func (a *App) Secure() bool { return a.Mode != Native }

// AllocBuffer allocates an application data buffer in the mode's memory:
// secure heap for enclave modes, untrusted arena for native.
func (a *App) AllocBuffer(clk *sim.Clock, size uint64) *sdk.Buffer {
	if !a.Secure() {
		return a.RT.Arena.AllocBuffer(clk, size)
	}
	addr, err := a.Enclave.Alloc(clk, size)
	if err != nil {
		panic(err)
	}
	return &sdk.Buffer{Addr: addr, Data: make([]byte, size)}
}

// ReserveRegion reserves an address range of the given size in the mode's
// memory for cost-model addressing of bulk data (the memcached value
// store, the libquantum array).  No backing is allocated; accesses are
// charged through the memory system.
func (a *App) ReserveRegion(size uint64) uint64 {
	var base uint64
	if a.Secure() {
		base = a.Enclave.Base() + a.Enclave.Size() + (64 << 10) // still EPC-backed address space
	} else {
		base = mem.PlainBase + (4 << 30)
	}
	addr := base + a.regionNext
	a.regionNext += (size + 4095) / 4096 * 4096
	return addr
}

// Counters returns the per-edge-call counts (Table 2 instrumentation).
func (a *App) Counters() map[string]uint64 { return a.RT.Counters() }

// ResetCounters clears instrumentation between warmup and measurement.
func (a *App) ResetCounters() {
	a.RT.ResetCounters()
}

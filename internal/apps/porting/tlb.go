package porting

// EENTER, EEXIT, ERESUME, and AEX invalidate the TLB entries of the
// enclave's linear address range (Intel SDM, enclave transitions).  In the
// unoptimized SGX port every edge call therefore leaves the enclave's
// translations cold, and the application's next memory accesses pay
// page-table walks.  HotCalls never execute those instructions — the
// enclave worker thread stays resident — so they keep the TLB warm.  This
// is a major, often overlooked, component of why applications inflate
// ~2-3x inside enclaves beyond the raw call cost, and it is what the
// Section 6 application figures require beyond warm call latencies.
const (
	// tlbWalkMin/Max bound one page-table walk: four dependent loads
	// through the page-table radix, partially cached.
	tlbWalkMin = 350
	tlbWalkMax = 650
)

// TouchPages declares that the application logic is about to touch n
// distinct enclave pages.  If the enclave TLB was flushed by a preceding
// SDK edge call, the walk cost is charged and the TLB considered warm
// again until the next transition.
func (e *Env) TouchPages(n int) {
	if e.App.Mode != SGX || !e.tlbFlushed || n <= 0 {
		return
	}
	if e.App.Prof != nil {
		defer e.App.Prof.Enter(e.Clk, CatTLB)()
	}
	rng := e.App.Platform.RNG
	for i := 0; i < n; i++ {
		e.Clk.AdvanceF(rng.Uniform(tlbWalkMin, tlbWalkMax))
	}
	e.tlbFlushed = false
}

package porting

import (
	"testing"

	"hotcalls/internal/sdk"
	"hotcalls/internal/sim"
)

func TestProfileSelfTimeNesting(t *testing.T) {
	p := NewProfile()
	var clk sim.Clock
	closeOuter := p.Enter(&clk, "outer")
	clk.Advance(100)
	closeInner := p.Enter(&clk, "inner")
	clk.Advance(40)
	closeInner()
	clk.Advance(10)
	closeOuter()

	totals := p.Totals()
	if totals["outer"] != 110 {
		t.Errorf("outer self = %d, want 110 (excluding nested 40)", totals["outer"])
	}
	if totals["inner"] != 40 {
		t.Errorf("inner = %d, want 40", totals["inner"])
	}
	if p.Total() != 150 {
		t.Errorf("total = %d, want 150", p.Total())
	}
	if s := p.Share("outer"); s < 0.72 || s > 0.74 {
		t.Errorf("share = %v", s)
	}
}

func TestProfileSameNameAggregates(t *testing.T) {
	p := NewProfile()
	var clk sim.Clock
	for i := 0; i < 3; i++ {
		done := p.Enter(&clk, "calls")
		clk.Advance(50)
		done()
	}
	if p.Totals()["calls"] != 150 {
		t.Errorf("aggregated = %d", p.Totals()["calls"])
	}
}

func TestProfileNestedSameName(t *testing.T) {
	// An ocall nested inside an entry call, both "edge-calls": the outer
	// must not double-count the inner.
	p := NewProfile()
	var clk sim.Clock
	closeOuter := p.Enter(&clk, "edge-calls")
	clk.Advance(30)
	closeInner := p.Enter(&clk, "edge-calls")
	clk.Advance(20)
	closeInner()
	closeOuter()
	if got := p.Totals()["edge-calls"]; got != 50 {
		t.Errorf("edge-calls = %d, want 50 (no double count)", got)
	}
}

func TestProfileOutOfOrderPanics(t *testing.T) {
	p := NewProfile()
	var clk sim.Clock
	closeA := p.Enter(&clk, "a")
	p.Enter(&clk, "b") // b left open
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order close")
		}
	}()
	closeA()
}

func TestProfileResetGuard(t *testing.T) {
	p := NewProfile()
	var clk sim.Clock
	done := p.Enter(&clk, "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on reset with open section")
		}
		done()
	}()
	p.Reset()
}

func TestAppProfileAttributesEdgeCalls(t *testing.T) {
	app := newApp(t, SGX)
	prof := app.EnableProfile()
	app.BindTrusted("ecall_entry", func(env *Env, args []sdk.Arg) uint64 {
		env.OCall("ocall_nop")
		done := env.Section(CatAppWork)
		env.Clk.Advance(5000)
		done()
		env.OCall("ocall_nop")
		env.TouchPages(4)
		return 0
	})
	var clk sim.Clock
	if _, err := app.Call(&clk, "ecall_entry"); err != nil {
		t.Fatal(err)
	}
	totals := prof.Totals()
	if totals[CatAppWork] != 5000 {
		t.Errorf("app work = %d, want 5000", totals[CatAppWork])
	}
	if totals[CatEdgeCalls] < 20000 {
		t.Errorf("edge calls = %d, want ecall + 2 ocalls worth", totals[CatEdgeCalls])
	}
	if totals[CatTLB] < 4*300 {
		t.Errorf("tlb = %d, want ~4 walks", totals[CatTLB])
	}
	// Everything inside Call is attributed somewhere.
	if prof.Total() != clk.Now() {
		t.Errorf("attributed %d of %d cycles", prof.Total(), clk.Now())
	}
	if prof.String() == "" {
		t.Error("empty render")
	}
}

func TestProfileDisabledSectionsAreFree(t *testing.T) {
	app := newApp(t, SGX)
	app.BindTrusted("ecall_entry", func(env *Env, args []sdk.Arg) uint64 {
		done := env.Section(CatAppWork) // no profiler attached
		done()
		return 3
	})
	var clk sim.Clock
	if ret, err := app.Call(&clk, "ecall_entry"); err != nil || ret != 3 {
		t.Fatalf("(%d, %v)", ret, err)
	}
}

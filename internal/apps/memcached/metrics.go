package memcached

import (
	"net/http"

	"hotcalls/internal/dist"
	"hotcalls/internal/monitor"
	"hotcalls/internal/telemetry"
)

// App-level metric names exported beside the standard boundary set.
const (
	MetricRequests     = "memcached_requests_total"
	MetricRequestCycle = "memcached_request_cycles"
	MetricCrossings    = "memcached_request_boundary_crossings"
)

// serverTel caches the server's telemetry handles; all nil (no-op) until
// EnableTelemetry attaches a registry.
type serverTel struct {
	requests  *telemetry.Counter
	reqCycles *telemetry.Histogram
	crossings *telemetry.Histogram

	// Cached boundary counters, read before/after each request to
	// attribute crossings per request (the Table 2 instrumentation,
	// live instead of post-hoc).
	ecalls, ocalls, hotEcalls, hotOcalls *telemetry.Counter
}

// boundaryCount sums every boundary-crossing counter the server's stack
// can increment.  Zero when telemetry is detached (nil handles load 0).
func (t *serverTel) boundaryCount() uint64 {
	return t.ecalls.Load() + t.ocalls.Load() + t.hotEcalls.Load() + t.hotOcalls.Load()
}

// EnableTelemetry attaches the observability registry to the whole server
// stack (platform, SDK runtime, HotCalls channel) and registers the
// per-request metrics: request count, request cycle latency, and the
// boundary-crossings-per-request histogram.
func (s *Server) EnableTelemetry(reg *telemetry.Registry) {
	telemetry.RegisterStandard(reg)
	s.App.SetTelemetry(reg)
	s.tel = serverTel{
		requests:  reg.Counter(MetricRequests),
		reqCycles: reg.Histogram(MetricRequestCycle),
		crossings: reg.Histogram(MetricCrossings),
		ecalls:    reg.Counter(telemetry.MetricEcalls),
		ocalls:    reg.Counter(telemetry.MetricOcalls),
		hotEcalls: reg.Counter(telemetry.MetricHotECalls),
		hotOcalls: reg.Counter(telemetry.MetricHotOCalls),
	}
}

// EnableDistribution attaches (or, with nil, detaches) a high-resolution
// recorder for per-request latency — the report's request-latency
// percentile tables come from here rather than the coarse log2 histogram.
func (s *Server) EnableDistribution(r *dist.Recorder) { s.reqDist = r }

// MetricsHandler serves the attached registry in Prometheus text format
// (the /metrics endpoint).  Usable even before EnableTelemetry: a nil
// registry serves an empty exposition.
func (s *Server) MetricsHandler() http.Handler {
	return telemetry.Handler(s.App.Tel)
}

// EnableMonitor attaches a continuous health monitor over the server's
// registry (EnableTelemetry must run first so the registry exists) and
// returns it; the caller decides whether to Start wall-clock sampling or
// drive it with Tick.  Idempotent: repeat calls return the same monitor.
func (s *Server) EnableMonitor(opts monitor.Options) *monitor.Monitor {
	if s.mon == nil {
		s.mon = monitor.New(s.App.Tel, opts)
	}
	return s.mon
}

// DebugMux serves the full observability surface on the app port:
// /metrics (Prometheus exposition), a /debug/ index, /debug/health
// (JSON verdict, 503 when critical), and /debug/monitor (recent
// samples + alerts).  It enables the monitor with defaults if
// EnableMonitor was not called.
func (s *Server) DebugMux() *monitor.DebugMux {
	return monitor.Mux(s.App.Tel, s.EnableMonitor(monitor.Options{}))
}

package memcached

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hotcalls/internal/apps/porting"
	"hotcalls/internal/monitor"
	"hotcalls/internal/sim"
	"hotcalls/internal/telemetry"
)

func serveN(t *testing.T, s *Server, n int) {
	t.Helper()
	w := NewWorkload(s, 42)
	var clk sim.Clock
	for i := 0; i < n; i++ {
		w.InjectNext()
		s.ServeOne(&clk)
		if _, err := w.DrainResponse(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTelemetrySGXMode(t *testing.T) {
	s := NewServer(porting.SGX)
	reg := telemetry.New()
	s.EnableTelemetry(reg)
	serveN(t, s, 20)

	snap := reg.Snapshot()
	if got := snap.Counters[MetricRequests]; got != 20 {
		t.Errorf("%s = %d, want 20", MetricRequests, got)
	}
	// Every request enters via one ecall and issues read + sendmsg ocalls.
	if got := snap.Counters[telemetry.MetricEcalls]; got != 20 {
		t.Errorf("%s = %d, want 20", telemetry.MetricEcalls, got)
	}
	if got := snap.Counters[telemetry.MetricOcalls]; got != 40 {
		t.Errorf("%s = %d, want 40", telemetry.MetricOcalls, got)
	}
	// EENTER once per ecall; ERESUME once per ocall return.
	if got := snap.Counters[telemetry.MetricEEnter]; got != 20 {
		t.Errorf("%s = %d, want 20", telemetry.MetricEEnter, got)
	}
	if got := snap.Counters[telemetry.MetricResume]; got != 40 {
		t.Errorf("%s = %d, want 40", telemetry.MetricResume, got)
	}
	h, ok := snap.Histograms[MetricCrossings]
	if !ok || h.Count != 20 {
		t.Fatalf("%s count = %d, want 20", MetricCrossings, h.Count)
	}
	// SGX mode: 1 ecall + 2 ocalls = 3 boundary crossings per request.
	if mean := h.Mean(); mean != 3 {
		t.Errorf("crossings mean = %v, want 3", mean)
	}
	if h, ok := snap.Histograms[MetricRequestCycle]; !ok || h.Count != 20 || h.Sum == 0 {
		t.Errorf("%s = %+v, want 20 observations with nonzero sum", MetricRequestCycle, h)
	}
}

func TestTelemetryHotCallsMode(t *testing.T) {
	s := NewServer(porting.HotCalls)
	reg := telemetry.New()
	s.EnableTelemetry(reg)
	serveN(t, s, 10)

	snap := reg.Snapshot()
	if got := snap.Counters[telemetry.MetricHotECalls]; got != 10 {
		t.Errorf("%s = %d, want 10", telemetry.MetricHotECalls, got)
	}
	if got := snap.Counters[telemetry.MetricHotOCalls]; got != 20 {
		t.Errorf("%s = %d, want 20", telemetry.MetricHotOCalls, got)
	}
	// No SDK transitions under HotCalls: the resident worker never EENTERs.
	if got := snap.Counters[telemetry.MetricEcalls]; got != 0 {
		t.Errorf("%s = %d, want 0", telemetry.MetricEcalls, got)
	}
	if h := snap.Histograms[telemetry.MetricHotCallCycles]; h.Count != 30 {
		t.Errorf("%s count = %d, want 30", telemetry.MetricHotCallCycles, h.Count)
	}
}

func TestMetricsHandler(t *testing.T) {
	s := NewServer(porting.SGX)
	reg := telemetry.New()
	s.EnableTelemetry(reg)
	serveN(t, s, 5)

	srv := httptest.NewServer(s.MetricsHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		MetricRequests + " 5",
		telemetry.MetricEcalls + " 5",
		telemetry.MetricHotECalls + " 0", // pre-registered, untouched in SGX mode
		MetricRequestCycle + "_count 5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestDebugMux checks the full observability surface on the app port:
// /metrics, /debug/health, and /debug/monitor served side by side, with
// the health verdict reflecting a real served workload.
func TestDebugMux(t *testing.T) {
	s := NewServer(porting.HotCalls)
	reg := telemetry.New()
	s.EnableTelemetry(reg)
	// App-level HotCalls carry the serviced request work, so the
	// microbenchmark-tuned p99 objective does not apply here.
	th := monitor.DefaultThresholds()
	th.SLOObjectiveP99 = 1 << 20
	mon := s.EnableMonitor(monitor.Options{Rules: monitor.DefaultRules(th)})
	mon.Tick() // baseline
	serveN(t, s, 25)
	mon.Tick()

	srv := httptest.NewServer(s.DebugMux())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(raw)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, telemetry.MetricHotECalls+" 25") {
		t.Errorf("/metrics: code %d, body %q", code, body)
	}
	code, body := get("/debug/health")
	if code != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("/debug/health: code %d, body %q", code, body)
	}
	if code, body := get("/debug/monitor?format=text"); code != http.StatusOK || !strings.Contains(body, "health: ok") {
		t.Errorf("/debug/monitor: code %d, body %q", code, body)
	}
	if code, body := get("/debug/monitor?n=1"); code != http.StatusOK || !strings.Contains(body, `"samples"`) {
		t.Errorf("/debug/monitor JSON: code %d, body %q", code, body)
	}

	// DebugMux without a prior EnableMonitor self-enables.
	s2 := NewServer(porting.SGX)
	s2.EnableTelemetry(telemetry.New())
	if s2.DebugMux() == nil {
		t.Fatal("DebugMux returned nil mux")
	}
	if s2.mon == nil {
		t.Fatal("DebugMux did not self-enable the monitor")
	}
}

package memcached

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"hotcalls/internal/core"
	"hotcalls/internal/telemetry"
)

// fastPoolOpts keeps adaptive transitions quick in tests.
func fastPoolOpts(maxResponders int) core.PoolOptions {
	return core.PoolOptions{
		SlotsPerShard: connWindow,
		MinResponders: 1,
		MaxResponders: maxResponders,
		Timeout:       1 << 20,
		ControlWindow: 8,
		SpinPasses:    2,
		YieldPasses:   4,
	}
}

func TestPoolServerSetGetDelete(t *testing.T) {
	s := NewPoolServer(1, fastPoolOpts(2))
	s.Start()
	defer s.Stop()
	c := s.Conn(0)

	val := bytes.Repeat([]byte{0xAB}, ValueSize)
	resp, err := c.Do(&Request{Op: OpSet, Key: "k1", Value: val, Opaque: 7})
	if err != nil || resp.Status != StatusOK || resp.Opaque != 7 {
		t.Fatalf("SET = (%+v, %v)", resp, err)
	}
	resp, err = c.Do(&Request{Op: OpGet, Key: "k1", Opaque: 8})
	if err != nil || resp.Status != StatusOK {
		t.Fatalf("GET = (%+v, %v)", resp, err)
	}
	if !bytes.Equal(resp.Value, val) {
		t.Fatalf("GET value mismatch: %d bytes, want %d", len(resp.Value), len(val))
	}
	resp, err = c.Do(&Request{Op: OpGet, Key: "missing"})
	if err != nil || resp.Status != StatusNotFound {
		t.Fatalf("GET missing = (%+v, %v), want NotFound", resp, err)
	}
	resp, err = c.Do(&Request{Op: OpDelete, Key: "k1"})
	if err != nil || resp.Status != StatusOK {
		t.Fatalf("DELETE = (%+v, %v)", resp, err)
	}
	resp, err = c.Do(&Request{Op: OpGet, Key: "k1"})
	if err != nil || resp.Status != StatusNotFound {
		t.Fatalf("GET after DELETE = (%+v, %v), want NotFound", resp, err)
	}
}

func TestPoolServerPipelinedWindow(t *testing.T) {
	s := NewPoolServer(1, fastPoolOpts(2))
	s.Start()
	defer s.Stop()
	c := s.Conn(0)

	// Fill the window, then collect FIFO; responses must match opaques.
	pending := make([]PendingResponse, 0, connWindow)
	for i := 0; i < connWindow; i++ {
		pr, err := c.Submit(&Request{Op: OpSet, Key: fmt.Sprintf("k%d", i),
			Value: []byte{byte(i)}, Opaque: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, pr)
	}
	if _, err := c.Submit(&Request{Op: OpGet, Key: "k0"}); err == nil {
		t.Fatal("Submit past the window succeeded")
	}
	for i, pr := range pending {
		resp, err := pr.Wait()
		if err != nil || resp.Opaque != uint32(i) {
			t.Fatalf("response %d = (%+v, %v)", i, resp, err)
		}
	}
}

func TestPoolServerConcurrentConnections(t *testing.T) {
	const conns = 4
	s := NewPoolServer(conns, fastPoolOpts(3))
	s.SetTelemetry(telemetry.New())
	s.Start()
	defer s.Stop()

	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for ci := 0; ci < conns; ci++ {
		c := s.Conn(ci)
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			val := bytes.Repeat([]byte{byte(ci)}, 64)
			for i := 0; i < 300; i++ {
				key := fmt.Sprintf("conn%d-key%d", ci, i%17)
				if resp, err := c.Do(&Request{Op: OpSet, Key: key, Value: val}); err != nil || resp.Status != StatusOK {
					errs <- fmt.Errorf("conn %d SET %d: (%+v, %v)", ci, i, resp, err)
					return
				}
				resp, err := c.Do(&Request{Op: OpGet, Key: key})
				if err != nil || resp.Status != StatusOK || !bytes.Equal(resp.Value, val) {
					errs <- fmt.Errorf("conn %d GET %d: (%+v, %v)", ci, i, resp, err)
					return
				}
			}
			errs <- nil
		}(ci)
	}
	wg.Wait()
	for ci := 0; ci < conns; ci++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestPoolServerMalformedPacketSentinel(t *testing.T) {
	s := NewPoolServer(1, fastPoolOpts(1))
	s.Start()
	defer s.Stop()
	c := s.Conn(0)
	// Corrupt the wire bytes under the API: plant garbage directly and
	// post it, as a broken client would.
	c.bufs[c.next].req[0] = 0x55 // bad magic after EncodeRequest would have set 0x80
	pd, err := c.req.Submit(opServe, packData(c.next, HeaderSize))
	if err != nil {
		t.Fatal(err)
	}
	ret, err := pd.Wait()
	if err != nil || ret != ^uint64(0) {
		t.Fatalf("malformed packet = (%#x, %v), want sentinel", ret, err)
	}
}

// BenchmarkPoolServerThroughput measures the fabric-routed request path
// with pipelined SET/GET traffic on every connection — the number the
// scaling experiment in internal/bench normalizes against.
func BenchmarkPoolServerThroughput(b *testing.B) {
	s := NewPoolServer(1, core.PoolOptions{SlotsPerShard: connWindow, Timeout: 1 << 20})
	s.Start()
	defer s.Stop()
	c := s.Conn(0)
	val := bytes.Repeat([]byte{0xCD}, ValueSize)
	b.ResetTimer()
	pending := make([]PendingResponse, 0, connWindow)
	for i := 0; i < b.N; {
		for len(pending) < connWindow && i < b.N {
			req := Request{Op: OpGet, Key: "bench-key"}
			if i%2 == 0 {
				req = Request{Op: OpSet, Key: "bench-key", Value: val}
			}
			pr, err := c.Submit(&req)
			if err != nil {
				b.Fatal(err)
			}
			pending = append(pending, pr)
			i++
		}
		for _, pr := range pending {
			if _, err := pr.Wait(); err != nil {
				b.Fatal(err)
			}
		}
		pending = pending[:0]
	}
}

package memcached

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"hotcalls/internal/epc"
	"hotcalls/internal/epcstat"
	"hotcalls/internal/monitor"
	"hotcalls/internal/telemetry"
)

// TestPoolServerEPCAttribution wires the paging model into the fabric
// server and checks served traffic lands in the observatory owner-tagged
// by connection.
func TestPoolServerEPCAttribution(t *testing.T) {
	s := NewPoolServer(2, fastPoolOpts(2))
	reg := telemetry.New()
	s.SetTelemetry(reg)
	col := s.EnableEPC(256 * epc.PageSize)
	if col == nil || s.EPCManager() == nil {
		t.Fatal("EnableEPC returned no collector/manager")
	}
	if again := s.EnableEPC(64 * epc.PageSize); again != col {
		t.Fatal("EnableEPC is not idempotent")
	}
	s.Start()
	defer s.Stop()

	val := bytes.Repeat([]byte{0xAB}, ValueSize)
	for conn := 0; conn < 2; conn++ {
		c := s.Conn(conn)
		for i := 0; i < 8; i++ {
			key := fmt.Sprintf("conn%d-key%d", conn, i)
			if resp, err := c.Do(&Request{Op: OpSet, Key: key, Value: val}); err != nil || resp.Status != StatusOK {
				t.Fatalf("SET = (%+v, %v)", resp, err)
			}
			if resp, err := c.Do(&Request{Op: OpGet, Key: key}); err != nil || resp.Status != StatusOK {
				t.Fatalf("GET = (%+v, %v)", resp, err)
			}
		}
	}

	snap := col.Snapshot()
	if snap == nil || snap.Faults == 0 {
		t.Fatalf("no paging traffic observed: %+v", snap)
	}
	byLabel := map[string]epcstat.OwnerStats{}
	for _, o := range snap.Owners {
		byLabel[o.Label] = o
	}
	for conn := 0; conn < 2; conn++ {
		o, ok := byLabel[fmt.Sprintf("conn%d", conn)]
		if !ok || o.Faults == 0 {
			t.Fatalf("connection %d missing from owner table: %+v", conn, snap.Owners)
		}
	}
	if got := reg.Counter(telemetry.MetricEPCFaults).Load(); got != snap.Faults {
		t.Fatalf("registry faults %d != snapshot faults %d", got, snap.Faults)
	}

	// EnableMonitor picks the collector up automatically, and the debug
	// mux serves the observatory.
	if s.EnableMonitor(monitor.Options{}).EPCStat() != col {
		t.Fatal("EnableMonitor did not adopt the EPC collector")
	}
	rr := httptest.NewRecorder()
	s.DebugMux().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/epc?format=text", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "conn0(#1)") {
		t.Fatalf("/debug/epc = %d %q", rr.Code, rr.Body.String())
	}
}

package memcached

import (
	"fmt"

	"hotcalls/internal/apps/porting"
	"hotcalls/internal/dist"
	"hotcalls/internal/monitor"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sim"
)

// EDL is the edge interface the Section 6.1 framework generates for
// memcached: the main-wrapper ecall, the libevent-callback entry
// (RunEnclaveFunction), and the two frequent API calls of Table 2.  The
// `read` ocall receives network data, hence the [out] attribute whose
// redundant zeroing No-Redundant-Zeroing removes.
const EDL = `
enclave {
    trusted {
        public int ecall_main(void);
        public int ecall_run_enclave_function([user_check] void* fn, [user_check] void* arg);
    };
    untrusted {
        long ocall_socket(void);
        long ocall_listen(int fd);
        long ocall_read(int fd, [out, size=cap] uint8_t* buf, size_t cap);
        long ocall_sendmsg(int fd, [in, size=len] uint8_t* buf, size_t len);
    };
};
`

// Workload parameters from Section 6.2: memtier with the binary protocol,
// SET:GET 1:1, 2 KB payloads, 4 threads x 50 connections.
const (
	ValueSize   = 2048
	Outstanding = 200
	keyspace    = 24576 // ~48 MB of values: uniform accesses, far beyond the LLC

	// bufCap holds a header plus a 2 KB payload.
	bufCap = ValueSize + 128

	// cpuWorkPerRequest is memcached's per-request compute beyond the
	// modelled memory accesses: libevent dispatch, protocol handling,
	// hashing.  Calibrated so the native configuration serves the
	// paper's 316,500 requests/second (see TestNativeThroughputMatch).
	cpuWorkPerRequest = 10774

	// Enclave pages the handler touches between edge calls; under the
	// SDK interface each segment pays TLB refills (see porting.TouchPages).
	pagesAfterRead = 15
	pagesAfterWork = 9
)

// Server is one memcached instance bound to a port configuration.
type Server struct {
	App   *porting.App
	Store *Store

	listenFD int
	connFD   int // server side of the single multiplexed connection
	ClientFD int // generator side

	reqBuf  *sdk.Buffer
	respBuf *sdk.Buffer

	// tel holds the per-request telemetry handles (see metrics.go); all
	// nil (no-op) until EnableTelemetry attaches a registry.
	tel serverTel

	// mon is the continuous health monitor (see metrics.go); nil until
	// EnableMonitor.
	mon *monitor.Monitor

	// reqDist records the full per-request latency distribution; nil
	// (one branch per request) until EnableDistribution.
	reqDist *dist.Recorder
}

// NewServer boots memcached in the given mode: builds the container, binds
// the edge functions, and runs the ecall_main wrapper, which performs the
// socket setup through ocalls exactly as the ported binary would.
func NewServer(mode porting.Mode) *Server {
	app := porting.New(mode, porting.Config{Seed: 1009, EnclaveSize: 192 << 20}, EDL)
	s := &Server{App: app}
	s.Store = NewStore(app, keyspace, ValueSize)

	k := app.Kernel
	app.BindUntrusted("ocall_socket", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		return uint64(k.Socket(ctx.Clk))
	})
	app.BindUntrusted("ocall_listen", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		if err := k.Listen(ctx.Clk, int(args[0].Scalar)); err != nil {
			panic(err)
		}
		return 0
	})
	app.BindUntrusted("ocall_read", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		buf := args[1].Buf
		n, err := k.Recv(ctx.Clk, "read", int(args[0].Scalar), buf.Addr, buf.Data[:args[2].Scalar])
		if err != nil {
			panic(err)
		}
		return uint64(n)
	})
	app.BindUntrusted("ocall_sendmsg", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		buf := args[1].Buf
		n, err := k.Send(ctx.Clk, "sendmsg", int(args[0].Scalar), buf.Addr, buf.Data[:args[2].Scalar])
		if err != nil {
			panic(err)
		}
		return uint64(n)
	})

	app.BindTrusted("ecall_main", func(env *porting.Env, args []sdk.Arg) uint64 {
		fd, err := env.OCall("ocall_socket")
		if err != nil {
			panic(err)
		}
		if _, err := env.OCall("ocall_listen", sdk.Scalar(fd)); err != nil {
			panic(err)
		}
		s.listenFD = int(fd)
		return 0
	})
	app.BindTrusted("ecall_run_enclave_function", s.handleEvent)

	var clk sim.Clock
	if _, err := app.Call(&clk, "ecall_main"); err != nil {
		panic(err)
	}
	client, err := k.InjectConnection(s.listenFD)
	if err != nil {
		panic(err)
	}
	s.ClientFD = client
	conn, err := k.Accept(&clk, s.listenFD)
	if err != nil {
		panic(err)
	}
	s.connFD = conn

	s.reqBuf = app.AllocBuffer(&clk, bufCap)
	s.respBuf = app.AllocBuffer(&clk, bufCap)
	return s
}

// handleEvent is the trusted libevent callback: receive one request,
// serve it, send the response — the read / work / sendmsg sequence whose
// edge calls dominate Table 2.
func (s *Server) handleEvent(env *porting.Env, args []sdk.Arg) uint64 {
	n, err := env.OCall("ocall_read", sdk.Scalar(uint64(s.connFD)), sdk.Buf(s.reqBuf), sdk.Scalar(bufCap))
	if err != nil {
		panic(err)
	}
	env.TouchPages(pagesAfterRead)

	req, err := DecodeRequest(s.reqBuf.Data[:n])
	if err != nil {
		panic(fmt.Sprintf("memcached: bad request: %v", err))
	}
	resp := Response{Op: req.Op, Opaque: req.Opaque, Status: StatusOK}
	closeStore := env.Section(porting.CatDataStore)
	switch req.Op {
	case OpGet:
		val := s.Store.Get(env, req.Key)
		if val == nil {
			resp.Status = StatusNotFound
		} else {
			// The value is copied from the store into the response
			// buffer; the cost model charges the move.
			env.App.Platform.Mem.Copy(env.Clk, s.respBuf.Addr, s.Store.ValueAddr(req.Key), uint64(len(val)))
			resp.Value = val
		}
	case OpSet:
		s.Store.Set(env, req.Key, req.Value)
	case OpDelete:
		if !s.Store.Delete(env, req.Key) {
			resp.Status = StatusNotFound
		}
	}
	closeStore()
	closeWork := env.Section(porting.CatAppWork)
	env.Clk.Advance(cpuWorkPerRequest)
	closeWork()
	env.TouchPages(pagesAfterWork)

	respLen, err := EncodeResponse(s.respBuf.Data, &resp)
	if err != nil {
		panic(err)
	}
	if _, err := env.OCall("ocall_sendmsg", sdk.Scalar(uint64(s.connFD)), sdk.Buf(s.respBuf), sdk.Scalar(uint64(respLen))); err != nil {
		panic(err)
	}
	return uint64(respLen)
}

// ServeOne processes the next queued request through the configured
// interface (one RunEnclaveFunction event callback).
func (s *Server) ServeOne(clk *sim.Clock) {
	start := clk.Now()
	crossed := s.tel.boundaryCount()
	if _, err := s.App.Call(clk, "ecall_run_enclave_function", sdk.Scalar(0), sdk.Scalar(0)); err != nil {
		panic(err)
	}
	s.tel.requests.Inc()
	s.tel.reqCycles.ObserveSince(start, clk.Now())
	s.reqDist.Record(clk.Since(start))
	s.tel.crossings.Observe(s.tel.boundaryCount() - crossed)
}

// Workload is the memtier-like generator: 1:1 SET:GET over the keyspace
// with fixed-size values, deterministic under its seed.
type Workload struct {
	s    *Server
	rng  *sim.RNG
	pkt  []byte
	val  []byte
	seq  uint32
	sets uint64
	gets uint64
}

// NewWorkload returns a generator bound to the server.
func NewWorkload(s *Server, seed uint64) *Workload {
	w := &Workload{s: s, rng: sim.NewRNG(seed), pkt: make([]byte, bufCap), val: make([]byte, ValueSize)}
	for i := range w.val {
		w.val[i] = byte(i * 31)
	}
	return w
}

// InjectNext queues one request on the server's connection.
func (w *Workload) InjectNext() {
	key := fmt.Sprintf("memtier-%08d", w.rng.Intn(keyspace))
	req := Request{Key: key, Opaque: w.seq}
	w.seq++
	if w.rng.Bool(0.5) {
		req.Op = OpSet
		req.Value = w.val
		w.sets++
	} else {
		req.Op = OpGet
		w.gets++
	}
	n, err := EncodeRequest(w.pkt, &req)
	if err != nil {
		panic(err)
	}
	if err := w.s.App.Kernel.Inject(w.s.connFD, w.pkt[:n]); err != nil {
		panic(err)
	}
}

// DrainResponse consumes and validates one server response.
func (w *Workload) DrainResponse() (*Response, error) {
	pkt, ok := w.s.App.Kernel.TakeRX(w.s.ClientFD)
	if !ok {
		return nil, fmt.Errorf("memcached: no response queued")
	}
	return DecodeResponse(pkt)
}

// Mix returns the SET and GET counts issued so far.
func (w *Workload) Mix() (sets, gets uint64) { return w.sets, w.gets }

// Run drives the closed loop for the given simulated duration and returns
// the metrics of Figures 10 and 11.
func Run(mode porting.Mode, simSeconds float64) porting.Metrics {
	s := NewServer(mode)
	w := NewWorkload(s, 77)
	return porting.RunClosedLoop(Outstanding, sim.Cycles(simSeconds), func(clk *sim.Clock) {
		w.InjectNext()
		s.ServeOne(clk)
		if _, err := w.DrainResponse(); err != nil {
			panic(err)
		}
	})
}

package memcached

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"hotcalls/internal/apps/porting"
	"hotcalls/internal/sim"
)

func TestProtocolRoundTripSet(t *testing.T) {
	buf := make([]byte, bufCap)
	val := bytes.Repeat([]byte{0xab}, 100)
	n, err := EncodeRequest(buf, &Request{Op: OpSet, Key: "k1", Value: val, Opaque: 42})
	if err != nil {
		t.Fatal(err)
	}
	req, err := DecodeRequest(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpSet || req.Key != "k1" || !bytes.Equal(req.Value, val) || req.Opaque != 42 {
		t.Fatalf("req = %+v", req)
	}
}

func TestProtocolRoundTripGet(t *testing.T) {
	buf := make([]byte, bufCap)
	n, err := EncodeRequest(buf, &Request{Op: OpGet, Key: "some-key", Opaque: 7})
	if err != nil {
		t.Fatal(err)
	}
	req, err := DecodeRequest(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpGet || req.Key != "some-key" || len(req.Value) != 0 {
		t.Fatalf("req = %+v", req)
	}
}

func TestProtocolResponseRoundTrip(t *testing.T) {
	buf := make([]byte, bufCap)
	val := bytes.Repeat([]byte{3}, ValueSize)
	n, err := EncodeResponse(buf, &Response{Op: OpGet, Status: StatusOK, Value: val, Opaque: 9})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeResponse(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK || !bytes.Equal(resp.Value, val) || resp.Opaque != 9 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestProtocolRejectsGarbage(t *testing.T) {
	if _, err := DecodeRequest([]byte{1, 2, 3}); !errors.Is(err, ErrShortPacket) {
		t.Fatalf("err = %v", err)
	}
	bad := make([]byte, HeaderSize)
	bad[0] = 0x55
	if _, err := DecodeRequest(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
	bad[0] = MagicRequest
	bad[1] = 0x99
	if _, err := DecodeRequest(bad); !errors.Is(err, ErrBadOpcode) {
		t.Fatalf("err = %v", err)
	}
}

func TestProtocolRoundTripProperty(t *testing.T) {
	buf := make([]byte, 1<<16)
	f := func(key []byte, value []byte, opaque uint32, isSet bool) bool {
		if len(key) > 250 || len(key) == 0 || len(value) > 8192 {
			return true
		}
		req := Request{Op: OpGet, Key: string(key), Opaque: opaque}
		if isSet {
			req.Op = OpSet
			req.Value = value
		}
		n, err := EncodeRequest(buf, &req)
		if err != nil {
			return false
		}
		got, err := DecodeRequest(buf[:n])
		if err != nil {
			return false
		}
		if got.Op != req.Op || got.Key != req.Key || got.Opaque != opaque {
			return false
		}
		return !isSet || bytes.Equal(got.Value, req.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestServerSetThenGet(t *testing.T) {
	s := NewServer(porting.Native)
	w := NewWorkload(s, 1)
	var clk sim.Clock

	// Hand-craft a SET then a GET of the same key.
	pkt := make([]byte, bufCap)
	val := bytes.Repeat([]byte{0x42}, ValueSize)
	n, _ := EncodeRequest(pkt, &Request{Op: OpSet, Key: "the-key", Value: val, Opaque: 1})
	s.App.Kernel.Inject(s.connFD, pkt[:n])
	s.ServeOne(&clk)
	if resp, err := w.DrainResponse(); err != nil || resp.Status != StatusOK {
		t.Fatalf("set response: %+v, %v", resp, err)
	}

	n, _ = EncodeRequest(pkt, &Request{Op: OpGet, Key: "the-key", Opaque: 2})
	s.App.Kernel.Inject(s.connFD, pkt[:n])
	s.ServeOne(&clk)
	resp, err := w.DrainResponse()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK || !bytes.Equal(resp.Value, val) {
		t.Fatalf("get returned status %d, %d bytes", resp.Status, len(resp.Value))
	}
}

func TestServerGetMissing(t *testing.T) {
	s := NewServer(porting.Native)
	w := NewWorkload(s, 1)
	var clk sim.Clock
	pkt := make([]byte, bufCap)
	n, _ := EncodeRequest(pkt, &Request{Op: OpGet, Key: "absent", Opaque: 3})
	s.App.Kernel.Inject(s.connFD, pkt[:n])
	s.ServeOne(&clk)
	resp, err := w.DrainResponse()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusNotFound {
		t.Fatalf("status = %d, want NotFound", resp.Status)
	}
}

func TestServerWorksInAllModes(t *testing.T) {
	for _, mode := range porting.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			s := NewServer(mode)
			w := NewWorkload(s, 5)
			var clk sim.Clock
			for i := 0; i < 20; i++ {
				w.InjectNext()
				s.ServeOne(&clk)
				if _, err := w.DrainResponse(); err != nil {
					t.Fatal(err)
				}
			}
			c := s.App.Counters()
			if c["ocall_read"] != 20 || c["ocall_sendmsg"] != 20 || c["ecall_run_enclave_function"] != 20 {
				t.Fatalf("counters = %v", c)
			}
		})
	}
}

func TestTable2CallMix(t *testing.T) {
	// Table 2: read, sendmsg, and RunEnclaveFunction are each called at
	// the same rate (66.5k/s each at 66.5k requests/s) — exactly one of
	// each per request.
	s := NewServer(porting.SGX)
	w := NewWorkload(s, 9)
	var clk sim.Clock
	s.App.ResetCounters()
	const n = 500
	for i := 0; i < n; i++ {
		w.InjectNext()
		s.ServeOne(&clk)
		w.DrainResponse()
	}
	c := s.App.Counters()
	for _, name := range []string{"ocall_read", "ocall_sendmsg", "ecall_run_enclave_function"} {
		if c[name] != n {
			t.Errorf("%s = %d, want %d", name, c[name], n)
		}
	}
}

func TestWorkloadMixIsBalanced(t *testing.T) {
	s := NewServer(porting.Native)
	w := NewWorkload(s, 11)
	var clk sim.Clock
	for i := 0; i < 2000; i++ {
		w.InjectNext()
		s.ServeOne(&clk)
		w.DrainResponse()
	}
	sets, gets := w.Mix()
	ratio := float64(sets) / float64(gets)
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("SET:GET = %d:%d, want ~1:1", sets, gets)
	}
}

// TestNativeThroughputMatch pins the calibration point: native memcached
// served 316,500 requests/second in the paper (Section 6.2).
func TestNativeThroughputMatch(t *testing.T) {
	m := Run(porting.Native, 0.05)
	t.Logf("native: %.0f req/s, %.2f ms avg latency (paper: 316,500 req/s, 0.63 ms)",
		m.Throughput, m.AvgLatency*1e3)
	if m.Throughput < 316500*0.95 || m.Throughput > 316500*1.05 {
		t.Errorf("native throughput = %.0f, want 316,500 +/- 5%%", m.Throughput)
	}
	if m.AvgLatency < 0.55e-3 || m.AvgLatency > 0.72e-3 {
		t.Errorf("native latency = %.2f ms, want ~0.63 ms", m.AvgLatency*1e3)
	}
}

// TestSGXThroughputMatch pins the second calibration point: the
// unoptimized SGX port dropped to 66,500 requests/second (-79%).
func TestSGXThroughputMatch(t *testing.T) {
	m := Run(porting.SGX, 0.05)
	t.Logf("sgx: %.0f req/s, %.2f ms (paper: 66,500 req/s, 2.97 ms)", m.Throughput, m.AvgLatency*1e3)
	if m.Throughput < 66500*0.88 || m.Throughput > 66500*1.12 {
		t.Errorf("sgx throughput = %.0f, want 66,500 +/- 12%%", m.Throughput)
	}
}

// TestHotCallsPrediction checks the *predicted* points: HotCalls lifted
// throughput to 162,000 req/s and NRZ to 185,000 req/s.  These were not
// calibrated (see DESIGN.md section 4); a wider band is allowed.
func TestHotCallsPrediction(t *testing.T) {
	hc := Run(porting.HotCalls, 0.05)
	nrz := Run(porting.HotCallsNRZ, 0.05)
	t.Logf("hotcalls: %.0f req/s (paper: 162,000); +NRZ: %.0f req/s (paper: 185,000)",
		hc.Throughput, nrz.Throughput)
	if hc.Throughput < 162000*0.8 || hc.Throughput > 162000*1.2 {
		t.Errorf("hotcalls throughput = %.0f, want 162,000 +/- 20%%", hc.Throughput)
	}
	if nrz.Throughput <= hc.Throughput {
		t.Errorf("NRZ (%.0f) must beat plain HotCalls (%.0f)", nrz.Throughput, hc.Throughput)
	}
	if nrz.Throughput < 185000*0.8 || nrz.Throughput > 185000*1.2 {
		t.Errorf("nrz throughput = %.0f, want 185,000 +/- 20%%", nrz.Throughput)
	}
}

func TestServerDelete(t *testing.T) {
	s := NewServer(porting.SGX)
	w := NewWorkload(s, 1)
	var clk sim.Clock
	pkt := make([]byte, bufCap)

	n, _ := EncodeRequest(pkt, &Request{Op: OpSet, Key: "gone", Value: []byte("v"), Opaque: 1})
	s.App.Kernel.Inject(s.connFD, pkt[:n])
	s.ServeOne(&clk)
	w.DrainResponse()

	n, _ = EncodeRequest(pkt, &Request{Op: OpDelete, Key: "gone", Opaque: 2})
	s.App.Kernel.Inject(s.connFD, pkt[:n])
	s.ServeOne(&clk)
	if resp, err := w.DrainResponse(); err != nil || resp.Status != StatusOK {
		t.Fatalf("delete: %+v, %v", resp, err)
	}
	if s.Store.Len() != 0 {
		t.Fatalf("store len = %d after delete", s.Store.Len())
	}
	// Deleting again misses.
	n, _ = EncodeRequest(pkt, &Request{Op: OpDelete, Key: "gone", Opaque: 3})
	s.App.Kernel.Inject(s.connFD, pkt[:n])
	s.ServeOne(&clk)
	if resp, err := w.DrainResponse(); err != nil || resp.Status != StatusNotFound {
		t.Fatalf("double delete: %+v, %v", resp, err)
	}
	// And the value is really gone.
	n, _ = EncodeRequest(pkt, &Request{Op: OpGet, Key: "gone", Opaque: 4})
	s.App.Kernel.Inject(s.connFD, pkt[:n])
	s.ServeOne(&clk)
	if resp, _ := w.DrainResponse(); resp.Status != StatusNotFound {
		t.Fatalf("get after delete: %+v", resp)
	}
}

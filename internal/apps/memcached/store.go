package memcached

import (
	"hash/fnv"

	"hotcalls/internal/apps/porting"
)

// Store is the key-value store: a real hash map for the data path plus a
// memory-cost profile that charges hash-probe and value accesses at
// addresses spread across the store's footprint — uniform accesses with
// poor spatial locality, the behaviour the paper blames for memcached's
// "fundamental limitation" under memory encryption (Section 6.2).
type Store struct {
	items map[string][]byte

	hashBase  uint64
	hashSpan  uint64
	valueBase uint64
	valueSpan uint64
	valueSize uint64
}

// NewStore reserves the store's address footprint in the app's memory.
// keyspace and valueSize size the value region; the hash structures get
// half as much again, matching memcached's slab and hash overheads.
func NewStore(app *porting.App, keyspace int, valueSize uint64) *Store {
	valueSpan := uint64(keyspace) * valueSize
	hashSpan := valueSpan / 2
	return &Store{
		items:     make(map[string][]byte, keyspace),
		hashBase:  app.ReserveRegion(hashSpan),
		hashSpan:  hashSpan,
		valueBase: app.ReserveRegion(valueSpan),
		valueSpan: valueSpan,
		valueSize: valueSize,
	}
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// probe charges the hash-chain walk: two dependent loads at
// hash-distributed addresses (bucket head, then item header).
func (s *Store) probe(env *porting.Env, h uint64) {
	m := env.App.Platform.Mem
	m.Load(env.Clk, s.hashBase+(h%s.hashSpan)/64*64)
	m.Load(env.Clk, s.hashBase+(h*0x9e3779b97f4a7c15%s.hashSpan)/64*64)
}

func (s *Store) valueAddr(h uint64) uint64 {
	slots := s.valueSpan / s.valueSize
	return s.valueBase + (h%slots)*s.valueSize
}

// Get returns the stored value (nil if missing) and charges the lookup:
// hash probes plus a streaming read of the value.
func (s *Store) Get(env *porting.Env, key string) []byte {
	h := hashKey(key)
	s.probe(env, h)
	v, ok := s.items[key]
	if !ok {
		return nil
	}
	env.App.Platform.Mem.StreamRead(env.Clk, s.valueAddr(h), uint64(len(v)))
	return v
}

// Set stores a value and charges the hash probes plus a streaming write of
// the value bytes.
func (s *Store) Set(env *porting.Env, key string, value []byte) {
	h := hashKey(key)
	s.probe(env, h)
	env.App.Platform.Mem.StreamWrite(env.Clk, s.valueAddr(h), uint64(len(value)))
	s.items[key] = append(s.items[key][:0], value...)
}

// Delete removes a key, charging the hash probes; it reports whether the
// key existed.
func (s *Store) Delete(env *porting.Env, key string) bool {
	h := hashKey(key)
	s.probe(env, h)
	if _, ok := s.items[key]; !ok {
		return false
	}
	delete(s.items, key)
	return true
}

// Len returns the number of stored items.
func (s *Store) Len() int { return len(s.items) }

// ValueAddr exposes the cost-model address of a key's value (tests).
func (s *Store) ValueAddr(key string) uint64 { return s.valueAddr(hashKey(key)) }

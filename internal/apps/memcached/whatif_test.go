package memcached

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hotcalls/internal/flight"
	"hotcalls/internal/monitor"
	"hotcalls/internal/telemetry"
	"hotcalls/internal/whatif"
)

// TestPoolServerWhatIf checks the fabric server's what-if wiring end to
// end: the observatory's shadow router scores the per-op callsites on
// each monitor tick, /debug/whatif serves the report, and the /debug/
// index lists every mounted endpoint including it.
func TestPoolServerWhatIf(t *testing.T) {
	s := NewPoolServer(1, fastPoolOpts(2))
	s.SetTelemetry(telemetry.New())
	s.SetFlight(flight.New(flight.Options{SampleEvery: 1}))
	obs := s.EnableWhatIf(whatif.CostParams{})
	if obs == nil || s.WhatIf() != obs || s.EnableWhatIf(whatif.CostParams{}) != obs {
		t.Fatal("EnableWhatIf is not idempotent")
	}
	s.Start()
	defer s.Stop()

	m := s.EnableMonitor(monitor.Options{})
	m.Tick() // baseline primes the shadow router
	for i := 0; i < 400; i++ {
		if _, err := s.Conn(0).Do(&Request{Op: OpSet, Key: "k", Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Conn(0).Do(&Request{Op: OpGet, Key: "k"}); err != nil {
			t.Fatal(err)
		}
	}
	sample := m.Tick()
	if sample.WhatIf == nil {
		t.Fatal("monitor sample carries no what-if verdict")
	}
	var sites []string
	for _, d := range sample.WhatIf.Decisions {
		sites = append(sites, d.Site)
	}
	found := false
	for _, site := range sites {
		if site == "mc.get" || site == "mc.set" {
			found = true
		}
	}
	if !found {
		t.Fatalf("shadow router scored no per-op callsite: %v", sites)
	}

	srv := httptest.NewServer(s.DebugMux())
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d, want 200", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if body := get("/debug/whatif"); !strings.Contains(body, whatif.ReportSchema) {
		t.Fatalf("/debug/whatif body missing report schema: %q", body)
	}
	var idx struct {
		Endpoints []monitor.DebugEntry `json:"endpoints"`
	}
	if err := json.Unmarshal([]byte(get("/debug/")), &idx); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"/metrics": false, "/debug/health": false, "/debug/monitor": false,
		"/debug/flight": false, "/debug/whatif": false, "/debug/incidents": false,
	}
	for _, e := range idx.Endpoints {
		if _, ok := want[e.Path]; ok {
			want[e.Path] = true
		}
	}
	for path, seen := range want {
		if !seen {
			t.Errorf("/debug/ index missing %s", path)
		}
	}
}

// Package memcached is the paper's first evaluation application
// (Section 6.2): a key-value RAM cache, ported wholesale into an enclave.
// The implementation speaks the memcached binary protocol, stores real
// bytes, and charges its memory behaviour through the simulated hierarchy;
// the workload follows the paper's memtier setup (binary protocol, 1:1
// SET:GET, 2 KB values, 4x50 = 200 outstanding requests over loopback).
package memcached

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary protocol constants (the subset memtier exercises).
const (
	MagicRequest  = 0x80
	MagicResponse = 0x81
	OpGet         = 0x00
	OpSet         = 0x01
	OpDelete      = 0x04
	HeaderSize    = 24

	StatusOK       = 0x0000
	StatusNotFound = 0x0001
)

// Errors from protocol decoding.
var (
	ErrShortPacket = errors.New("memcached: packet shorter than its header claims")
	ErrBadMagic    = errors.New("memcached: bad magic byte")
	ErrBadOpcode   = errors.New("memcached: unsupported opcode")
)

// Request is a decoded binary-protocol request.
type Request struct {
	Op     byte
	Key    string
	Value  []byte // SET only
	Opaque uint32
}

// EncodeRequest serializes a request into buf and returns the byte count.
func EncodeRequest(buf []byte, r *Request) (int, error) {
	extras := 0
	if r.Op == OpSet {
		extras = 8 // flags + expiry
	}
	total := HeaderSize + extras + len(r.Key) + len(r.Value)
	if total > len(buf) {
		return 0, fmt.Errorf("memcached: request needs %d bytes, buffer has %d", total, len(buf))
	}
	for i := 0; i < HeaderSize; i++ {
		buf[i] = 0
	}
	buf[0] = MagicRequest
	buf[1] = r.Op
	binary.BigEndian.PutUint16(buf[2:], uint16(len(r.Key)))
	buf[4] = byte(extras)
	binary.BigEndian.PutUint32(buf[8:], uint32(extras+len(r.Key)+len(r.Value)))
	binary.BigEndian.PutUint32(buf[12:], r.Opaque)
	p := HeaderSize
	for i := 0; i < extras; i++ {
		buf[p+i] = 0
	}
	p += extras
	p += copy(buf[p:], r.Key)
	p += copy(buf[p:], r.Value)
	return p, nil
}

// DecodeRequest parses a binary-protocol request.
func DecodeRequest(pkt []byte) (*Request, error) {
	if len(pkt) < HeaderSize {
		return nil, ErrShortPacket
	}
	if pkt[0] != MagicRequest {
		return nil, ErrBadMagic
	}
	op := pkt[1]
	if op != OpGet && op != OpSet && op != OpDelete {
		return nil, ErrBadOpcode
	}
	keyLen := int(binary.BigEndian.Uint16(pkt[2:]))
	extras := int(pkt[4])
	body := int(binary.BigEndian.Uint32(pkt[8:]))
	if len(pkt) < HeaderSize+body || body < extras+keyLen {
		return nil, ErrShortPacket
	}
	r := &Request{
		Op:     op,
		Key:    string(pkt[HeaderSize+extras : HeaderSize+extras+keyLen]),
		Opaque: binary.BigEndian.Uint32(pkt[12:]),
	}
	if op == OpSet {
		r.Value = pkt[HeaderSize+extras+keyLen : HeaderSize+body]
	}
	return r, nil
}

// Response is a decoded binary-protocol response.
type Response struct {
	Op     byte
	Status uint16
	Value  []byte
	Opaque uint32
}

// EncodeResponse serializes a response into buf and returns the byte
// count.
func EncodeResponse(buf []byte, r *Response) (int, error) {
	total := HeaderSize + len(r.Value)
	if total > len(buf) {
		return 0, fmt.Errorf("memcached: response needs %d bytes, buffer has %d", total, len(buf))
	}
	for i := 0; i < HeaderSize; i++ {
		buf[i] = 0
	}
	buf[0] = MagicResponse
	buf[1] = r.Op
	binary.BigEndian.PutUint16(buf[6:], r.Status)
	binary.BigEndian.PutUint32(buf[8:], uint32(len(r.Value)))
	binary.BigEndian.PutUint32(buf[12:], r.Opaque)
	copy(buf[HeaderSize:], r.Value)
	return total, nil
}

// DecodeResponse parses a binary-protocol response.
func DecodeResponse(pkt []byte) (*Response, error) {
	if len(pkt) < HeaderSize {
		return nil, ErrShortPacket
	}
	if pkt[0] != MagicResponse {
		return nil, ErrBadMagic
	}
	body := int(binary.BigEndian.Uint32(pkt[8:]))
	if len(pkt) < HeaderSize+body {
		return nil, ErrShortPacket
	}
	return &Response{
		Op:     pkt[1],
		Status: binary.BigEndian.Uint16(pkt[6:]),
		Value:  pkt[HeaderSize : HeaderSize+body],
		Opaque: binary.BigEndian.Uint32(pkt[12:]),
	}, nil
}

package memcached

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"hotcalls/internal/flight"
	"hotcalls/internal/telemetry"
)

// TestPoolServerFlightCallsites checks that fabric-routed operations
// are attributed to their per-op callsites.
func TestPoolServerFlightCallsites(t *testing.T) {
	s := NewPoolServer(1, fastPoolOpts(2))
	s.SetTelemetry(telemetry.New())
	rec := flight.New(flight.Options{SampleEvery: 1})
	s.SetFlight(rec)
	s.Start()
	defer s.Stop()

	c := s.Conn(0)
	val := []byte("flightval")
	for i := 0; i < 6; i++ {
		if _, err := c.Do(&Request{Op: OpSet, Key: "fk", Value: val}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Do(&Request{Op: OpGet, Key: "fk"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Do(&Request{Op: OpDelete, Key: "fk"}); err != nil {
		t.Fatal(err)
	}

	want := map[string]uint64{"mc.get": 10, "mc.set": 6, "mc.delete": 1}
	for _, cs := range rec.Stats() {
		if n, ok := want[cs.Name]; ok {
			if cs.Arrivals != n {
				t.Errorf("%s arrivals = %d, want %d", cs.Name, cs.Arrivals, n)
			}
			delete(want, cs.Name)
		}
	}
	for name := range want {
		t.Errorf("callsite %q missing from stats table", name)
	}
}

// TestPoolServerDebugMuxFlight checks the fabric server's debug surface
// serves /debug/flight once a recorder is attached.
func TestPoolServerDebugMuxFlight(t *testing.T) {
	s := NewPoolServer(1, fastPoolOpts(2))
	s.SetTelemetry(telemetry.New())
	s.SetFlight(flight.New(flight.Options{SampleEvery: 1}))
	s.Start()
	defer s.Stop()
	if _, err := s.Conn(0).Do(&Request{Op: OpSet, Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(s.DebugMux())
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/health", "/debug/monitor", "/debug/flight", "/debug/incidents"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, resp.StatusCode)
		}
	}
}

package memcached

// PoolServer routes memcached's concurrent request path through the
// HotCalls fabric (core.CallPool) — the real-concurrency counterpart of
// the simulated Server above.  Each client connection owns one fabric
// shard and a small ring of request/response buffers; the call word
// stays a typed uint64 (buffer slot + encoded length packed into the
// data word), so the submit/complete path allocates nothing and the
// enclave handler addresses the right buffers from the (requester, slot)
// pair alone.  The store is the enclave-side state: a striped-lock hash
// map holding real bytes, shared by every responder.

import (
	"fmt"
	"sync"

	"hotcalls/internal/core"
	"hotcalls/internal/epc"
	"hotcalls/internal/epcstat"
	"hotcalls/internal/flight"
	"hotcalls/internal/incident"
	"hotcalls/internal/monitor"
	"hotcalls/internal/telemetry"
	"hotcalls/internal/whatif"
)

// opServe is the single fabric call table entry: serve one encoded
// memcached binary-protocol request.
const opServe core.CallID = 0

// connWindow is the per-connection buffer ring depth — the async window
// a connection may keep in flight.
const connWindow = 16

// storeStripes is the lock striping of the shared store; a power of two.
const storeStripes = 16

// poolStore is the enclave-side key-value state the responders execute
// against: real bytes behind striped locks, so responders serving
// different keys rarely contend.
type poolStore struct {
	stripes [storeStripes]storeStripe
}

type storeStripe struct {
	mu    sync.Mutex
	items map[string][]byte
	_     [cacheLinePad]byte
}

// cacheLinePad keeps adjacent stripes' locks off one coherence line.
const cacheLinePad = 64

func newPoolStore() *poolStore {
	st := &poolStore{}
	for i := range st.stripes {
		st.stripes[i].items = make(map[string][]byte)
	}
	return st
}

// stripe picks the lock stripe for a key (FNV-1a, masked).
func (st *poolStore) stripe(key string) *storeStripe {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &st.stripes[h&(storeStripes-1)]
}

func (st *poolStore) set(key string, value []byte) {
	sp := st.stripe(key)
	sp.mu.Lock()
	// Reuse the existing backing array when it fits so a hot SET key
	// settles into a stable allocation.
	if dst, ok := sp.items[key]; ok && cap(dst) >= len(value) {
		sp.items[key] = dst[:len(value)]
		copy(sp.items[key], value)
	} else {
		sp.items[key] = append([]byte(nil), value...)
	}
	sp.mu.Unlock()
}

// get copies the value for key into dst and returns the copied length
// and whether the key existed.  Copying under the stripe lock is what
// lets the caller read the response buffer without holding any lock.
func (st *poolStore) get(key string, dst []byte) (int, bool) {
	sp := st.stripe(key)
	sp.mu.Lock()
	v, ok := sp.items[key]
	n := copy(dst, v)
	sp.mu.Unlock()
	return n, ok
}

func (st *poolStore) delete(key string) bool {
	sp := st.stripe(key)
	sp.mu.Lock()
	_, ok := sp.items[key]
	delete(sp.items, key)
	sp.mu.Unlock()
	return ok
}

// PoolServer is memcached over the fabric: a CallPool whose one table
// entry serves binary-protocol requests against the shared store.
type PoolServer struct {
	pool  *core.CallPool
	store *poolStore
	conns []*PoolConn

	reg    *telemetry.Registry
	mon    *monitor.Monitor
	cap    *incident.Capturer
	whatIf *whatif.Observatory

	// EPC paging model (EnableEPC): every served request touches the
	// pages its key/value footprint occupies, owner-tagged by
	// connection, so the observatory attributes paging pressure per
	// client.
	epcMgr  *epc.Manager
	epcStat *epcstat.Collector

	// Per-operation flight callsites (zero handles — unlabelled — until
	// SetFlight registers them).
	csGet, csSet, csDelete flight.Callsite
}

// NewPoolServer builds a fabric-routed server for up to conns client
// connections.  opts tunes the underlying CallPool; its Shards field is
// overridden to the connection count.
func NewPoolServer(conns int, opts core.PoolOptions) *PoolServer {
	s := &PoolServer{store: newPoolStore()}
	opts.Shards = conns
	s.conns = make([]*PoolConn, conns)
	s.pool = core.NewCallPool([]core.PoolFunc{s.serve}, opts)
	for i := range s.conns {
		c := &PoolConn{s: s, req: s.pool.Requester()}
		for j := range c.bufs {
			c.bufs[j].req = make([]byte, bufCap)
			c.bufs[j].resp = make([]byte, bufCap)
		}
		s.conns[i] = c
	}
	return s
}

// SetTelemetry attaches the fabric's registry handles.  Call before
// Start.
func (s *PoolServer) SetTelemetry(reg *telemetry.Registry) {
	s.reg = reg
	s.pool.SetTelemetry(reg)
}

// SetFlight attaches the flight recorder to the fabric and registers
// the per-operation callsites, so GETs, SETs, and DELETEs show up as
// separate rows in the stats table instead of one undifferentiated
// stream.  Call before Start.
func (s *PoolServer) SetFlight(rec *flight.Recorder) {
	s.pool.SetFlight(rec)
	s.csGet = rec.Callsite("mc.get")
	s.csSet = rec.Callsite("mc.set")
	s.csDelete = rec.Callsite("mc.delete")
}

// callsiteFor maps a request opcode to its registered flight callsite.
func (s *PoolServer) callsiteFor(op byte) flight.Callsite {
	switch op {
	case OpGet:
		return s.csGet
	case OpSet:
		return s.csSet
	case OpDelete:
		return s.csDelete
	}
	return flight.Callsite{}
}

// enclavePageSpan sizes the modeled enclave heap in multiples of the EPC
// capacity: keys hash across a region 16x the EPC, so residency pressure
// comes from how many distinct pages traffic actually touches, not from
// hash collisions.
const enclavePageSpan = 16

// EnableEPC attaches a simulated EPC of the given capacity (bytes;
// <= one page selects epc.DefaultCapacityBytes) plus its pressure
// observatory.  Every served request then touches the pages its
// key/value footprint maps to, owner-tagged by client connection, so
// /debug/epc and the EPC monitor rules attribute paging per client.
// Call after SetTelemetry and before EnableMonitor/DebugMux so the
// counters and rules wire up; idempotent: repeat calls return the same
// collector.
func (s *PoolServer) EnableEPC(capacityBytes int) *epcstat.Collector {
	if s.epcStat == nil {
		if capacityBytes <= epc.PageSize {
			capacityBytes = epc.DefaultCapacityBytes
		}
		var sealKey [16]byte
		copy(sealKey[:], "mc-epc-paging-kv")
		s.epcMgr = epc.NewManager(capacityBytes, sealKey)
		if s.reg != nil {
			s.epcMgr.SetTelemetry(s.reg)
		}
		s.epcStat = epcstat.New(epcstat.Options{})
		s.epcStat.Attach(s.epcMgr)
		for i := range s.conns {
			s.epcStat.SetLabel(epc.OwnerID(i+1), fmt.Sprintf("conn%d", i))
		}
	}
	return s.epcStat
}

// EPCManager exposes the simulated EPC (nil until EnableEPC).
func (s *PoolServer) EPCManager() *epc.Manager { return s.epcMgr }

// fnv64 is FNV-1a, the same mix the store stripes with.
func fnv64(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// touchEPC charges the paging cost of one request: the pages of the
// key's value footprint (at least one), owner-tagged by the submitting
// connection.  No-op until EnableEPC.
func (s *PoolServer) touchEPC(requester int, key string, valueLen int) {
	if s.epcMgr == nil {
		return
	}
	span := uint64(enclavePageSpan * s.epcMgr.CapacityPages())
	base := fnv64(key) % span
	pages := uint64(valueLen+epc.PageSize-1) / epc.PageSize
	if pages == 0 {
		pages = 1
	}
	owner := epc.OwnerID(requester + 1)
	for p := uint64(0); p < pages; p++ {
		s.epcMgr.TouchAs(owner, (base+p)%span)
	}
}

// EnableWhatIf attaches the causal what-if observatory: the shadow
// router scores every monitor interval's per-callsite traffic against
// the three routing policies (the fabric's operations are declared
// pooled — that is how PoolServer actually routes), /debug/whatif
// serves the report, and the routing-regret monitor rule flags
// callsites whose traffic outgrew the static choice.  A zero params
// selects whatif.DefaultCostParams.  Call after SetFlight and before
// EnableMonitor/DebugMux; idempotent.
func (s *PoolServer) EnableWhatIf(params whatif.CostParams) *whatif.Observatory {
	if s.whatIf == nil {
		s.whatIf = whatif.NewObservatory(params)
		r := s.whatIf.Router()
		r.DeclareDefault(whatif.PolicyPooled)
		r.Declare("mc.get", whatif.PolicyPooled)
		r.Declare("mc.set", whatif.PolicyPooled)
		r.Declare("mc.delete", whatif.PolicyPooled)
	}
	return s.whatIf
}

// WhatIf exposes the what-if observatory (nil until EnableWhatIf).
func (s *PoolServer) WhatIf() *whatif.Observatory { return s.whatIf }

// EnableMonitor attaches a health monitor over the fabric's registry,
// with the flight recorder (when attached) feeding the callsite-scoped
// rules, the EPC observatory (when enabled) feeding the EPC rules, and
// the what-if observatory (when enabled) feeding the routing-regret
// rule.  Idempotent: repeat calls return the same monitor.
func (s *PoolServer) EnableMonitor(opts monitor.Options) *monitor.Monitor {
	if s.mon == nil {
		if opts.Flight == nil {
			opts.Flight = s.pool.Flight()
		}
		if opts.EPC == nil {
			opts.EPC = s.epcStat
		}
		if opts.WhatIf == nil {
			opts.WhatIf = s.whatIf
		}
		s.mon = monitor.New(s.reg, opts)
	}
	return s.mon
}

// EnableIncidents attaches an incident capturer to the monitor
// (enabling the monitor with defaults if needed): warning/critical rule
// transitions freeze self-contained postmortem bundles, served at
// /debug/incidents by DebugMux.  The fabric's registry is snapshotted
// into each bundle unless opts names another.  Idempotent: repeat calls
// return the same capturer.
func (s *PoolServer) EnableIncidents(opts incident.Options) *incident.Capturer {
	if s.cap == nil {
		if opts.Registry == nil {
			opts.Registry = s.reg
		}
		s.cap = incident.New(s.EnableMonitor(monitor.Options{}), opts)
		s.cap.Attach()
	}
	return s.cap
}

// DebugMux serves the fabric's observability surface: /metrics, a
// /debug/ index listing every endpoint, /debug/health, /debug/monitor,
// /debug/incidents, and — per enabled collector — /debug/flight,
// /debug/epc, and /debug/whatif.
func (s *PoolServer) DebugMux() *monitor.DebugMux {
	mux := monitor.Mux(s.reg, s.EnableMonitor(monitor.Options{}))
	mux.HandleEntry("/debug/incidents", "frozen postmortem bundles (rule transitions)",
		incident.Handler(s.EnableIncidents(incident.Options{})))
	return mux
}

// Pool exposes the underlying CallPool (responder bounds, stats).
func (s *PoolServer) Pool() *core.CallPool { return s.pool }

// Start launches the adaptive responder pool.
func (s *PoolServer) Start() { s.pool.Start() }

// Stop shuts the fabric down.
func (s *PoolServer) Stop() { s.pool.Stop() }

// Conn returns connection i's handle.  Each connection must be driven
// from one goroutine at a time.
func (s *PoolServer) Conn(i int) *PoolConn { return s.conns[i] }

// packData encodes a buffer slot and request length into the fabric's
// call word; the pair is everything the handler needs to find its bytes.
func packData(slot, n int) uint64 { return uint64(slot)<<32 | uint64(uint32(n)) }

func unpackData(d uint64) (slot, n int) { return int(d >> 32), int(uint32(d)) }

// serve is the enclave-side handler: decode the request from the
// submitting connection's slot buffer, execute it against the store, and
// encode the response into the paired response buffer.  The returned
// word is the response length (or the ^0 sentinel on a malformed
// packet, mirroring the corrupted-call_ID convention).
func (s *PoolServer) serve(requester int, data uint64) uint64 {
	slot, n := unpackData(data)
	b := &s.conns[requester].bufs[slot]
	req, err := DecodeRequest(b.req[:n])
	if err != nil {
		return ^uint64(0)
	}
	resp := Response{Op: req.Op, Opaque: req.Opaque, Status: StatusOK}
	switch req.Op {
	case OpGet:
		if n, ok := s.store.get(req.Key, b.val[:]); ok {
			resp.Value = b.val[:n]
			s.touchEPC(requester, req.Key, n)
		} else {
			resp.Status = StatusNotFound
			s.touchEPC(requester, req.Key, 0)
		}
	case OpSet:
		s.store.set(req.Key, req.Value)
		s.touchEPC(requester, req.Key, len(req.Value))
	case OpDelete:
		if !s.store.delete(req.Key) {
			resp.Status = StatusNotFound
		}
		s.touchEPC(requester, req.Key, 0)
	}
	respLen, err := EncodeResponse(b.resp, &resp)
	if err != nil {
		return ^uint64(0)
	}
	return uint64(respLen)
}

// connBuf is one in-flight request's buffer set.  val is the staging
// area store.get copies into, so a GET's response value never aliases
// live store memory once the stripe lock is released.
type connBuf struct {
	req  []byte
	resp []byte
	val  [ValueSize]byte
}

// PoolConn is one client connection: a fabric requester plus its buffer
// ring.  Submissions complete in FIFO order (the fabric ring is FIFO per
// shard), so collecting oldest-first keeps the window moving and makes
// buffer-slot reuse safe.
type PoolConn struct {
	s        *PoolServer
	req      *core.Requester
	bufs     [connWindow]connBuf
	next     int
	inflight int
}

// PendingResponse is an in-flight request's handle.
type PendingResponse struct {
	c    *PoolConn
	pd   *core.PoolPending
	slot int
}

// Submit encodes the request into the next ring buffer and posts it to
// the fabric.  It fails when the connection's window (connWindow calls)
// is already full — collect the oldest PendingResponse first.
func (c *PoolConn) Submit(r *Request) (PendingResponse, error) {
	if c.inflight == connWindow {
		return PendingResponse{}, fmt.Errorf("memcached: connection window full (%d in flight)", c.inflight)
	}
	slot := c.next
	n, err := EncodeRequest(c.bufs[slot].req, r)
	if err != nil {
		return PendingResponse{}, err
	}
	pd, err := c.req.SubmitAt(c.s.callsiteFor(r.Op), opServe, packData(slot, n))
	if err != nil {
		return PendingResponse{}, err
	}
	c.next = (c.next + 1) % connWindow
	c.inflight++
	return PendingResponse{c: c, pd: pd, slot: slot}, nil
}

// Wait blocks until the response is ready and decodes it.  The decoded
// Response aliases the connection's slot buffer: consume it before the
// slot comes around again (connWindow submissions later).
func (pr PendingResponse) Wait() (*Response, error) {
	ret, err := pr.pd.Wait()
	pr.c.inflight--
	if err != nil {
		return nil, err
	}
	if ret == ^uint64(0) {
		return nil, ErrShortPacket
	}
	return DecodeResponse(pr.c.bufs[pr.slot].resp[:ret])
}

// Do is the synchronous path: one request through the fabric, blocking
// for its response.
func (c *PoolConn) Do(r *Request) (*Response, error) {
	pr, err := c.Submit(r)
	if err != nil {
		return nil, err
	}
	return pr.Wait()
}

package lighttpd

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"hotcalls/internal/flight"
	"hotcalls/internal/telemetry"
)

// TestPoolServerFlightCallsites checks that fabric-routed requests are
// attributed to the per-method callsites.
func TestPoolServerFlightCallsites(t *testing.T) {
	s := NewPoolServer(1, fastPoolOpts(2))
	s.SetTelemetry(telemetry.New())
	rec := flight.New(flight.Options{SampleEvery: 1})
	s.SetFlight(rec)
	s.Start()
	defer s.Stop()

	c := s.Conn(0)
	for i := 0; i < 8; i++ {
		if _, err := c.Do("GET /index.html HTTP/1.0\r\n\r\n"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Do("HEAD /index.html HTTP/1.0\r\n\r\n"); err != nil {
			t.Fatal(err)
		}
	}

	want := map[string]uint64{"http.get": 8, "http.head": 3}
	for _, cs := range rec.Stats() {
		if n, ok := want[cs.Name]; ok {
			if cs.Arrivals != n {
				t.Errorf("%s arrivals = %d, want %d", cs.Name, cs.Arrivals, n)
			}
			delete(want, cs.Name)
		}
	}
	for name := range want {
		t.Errorf("callsite %q missing from stats table", name)
	}
}

// TestPoolServerDebugMuxFlight checks the fabric server's debug surface
// serves /debug/flight once a recorder is attached.
func TestPoolServerDebugMuxFlight(t *testing.T) {
	s := NewPoolServer(1, fastPoolOpts(2))
	s.SetTelemetry(telemetry.New())
	s.SetFlight(flight.New(flight.Options{SampleEvery: 1}))
	s.Start()
	defer s.Stop()
	if _, err := s.Conn(0).Do("GET /index.html HTTP/1.0\r\n\r\n"); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(s.DebugMux())
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/health", "/debug/monitor", "/debug/flight", "/debug/incidents"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, resp.StatusCode)
		}
	}
}

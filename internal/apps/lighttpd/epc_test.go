package lighttpd

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"hotcalls/internal/epc"
	"hotcalls/internal/monitor"
	"hotcalls/internal/telemetry"
)

// TestPoolServerEPCAttribution checks served documents charge the paging
// model: each response body's page span is touched under the serving
// connection's owner, and misses still touch the looked-up path.
func TestPoolServerEPCAttribution(t *testing.T) {
	s := NewPoolServer(2, fastPoolOpts(2))
	reg := telemetry.New()
	s.SetTelemetry(reg)
	col := s.EnableEPC(256 * epc.PageSize)
	if col == nil || s.EPCManager() == nil {
		t.Fatal("EnableEPC returned no collector/manager")
	}
	if again := s.EnableEPC(0); again != col {
		t.Fatal("EnableEPC is not idempotent")
	}
	s.Start()
	defer s.Stop()

	for conn := 0; conn < 2; conn++ {
		c := s.Conn(conn)
		resp, err := c.Do(getIndex)
		if err != nil || !strings.HasPrefix(string(resp), "HTTP/1.0 200") {
			t.Fatalf("GET /index.html = (%q, %v)", resp, err)
		}
		// A miss still touches the page the path hashes to.
		resp, err = c.Do(fmt.Sprintf("GET /missing-%d.html HTTP/1.0\r\nHost: sim\r\n\r\n", conn))
		if err != nil || !strings.HasPrefix(string(resp), "HTTP/1.0 404") {
			t.Fatalf("GET missing = (%q, %v)", resp, err)
		}
	}

	snap := col.Snapshot()
	if snap == nil || snap.Faults == 0 {
		t.Fatalf("no paging traffic observed: %+v", snap)
	}
	// The 20 KB index spans 5 pages plus the miss's single page — 6
	// touches per connection.  The index pages are shared, so only the
	// first server faults them in; the second still shows its activity
	// in sampled touches and faults its own unique miss page.
	wantTouches := uint64(PageSize/epc.PageSize + 1)
	seen := map[string]bool{}
	for _, o := range snap.Owners {
		seen[o.Label] = true
		if o.SampledTouches < wantTouches {
			t.Fatalf("owner %s touches = %d, want >= %d: %+v", o.Label, o.SampledTouches, wantTouches, snap.Owners)
		}
		if o.Faults == 0 {
			t.Fatalf("owner %s faulted nothing: %+v", o.Label, snap.Owners)
		}
	}
	if !seen["conn0"] || !seen["conn1"] {
		t.Fatalf("owner labels missing: %+v", snap.Owners)
	}

	if s.EnableMonitor(monitor.Options{}).EPCStat() != col {
		t.Fatal("EnableMonitor did not adopt the EPC collector")
	}
	rr := httptest.NewRecorder()
	s.DebugMux().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/epc?format=svg", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "<svg") {
		t.Fatalf("/debug/epc?format=svg = %d", rr.Code)
	}
}

package lighttpd

import (
	"fmt"
	"strings"

	"hotcalls/internal/apps/porting"
	"hotcalls/internal/dist"
	"hotcalls/internal/monitor"
	"hotcalls/internal/osapi"
	"hotcalls/internal/sdk"
	"hotcalls/internal/sim"
)

// EDL is the edge interface for the lighttpd port: the fourteen frequent
// API calls of Table 2.  `read` and `inet_ntop` receive buffers from the
// untrusted side ([out]), which is where No-Redundant-Zeroing saves its
// cycles (Section 6.4).
const EDL = `
enclave {
    trusted {
        public int ecall_main(void);
        public int ecall_handle_connection([user_check] void* ev, [user_check] void* arg);
    };
    untrusted {
        long ocall_socket(void);
        long ocall_listen(int fd);
        long ocall_accept(int fd);
        long ocall_inet_ntop(int af, [out, size=46] uint8_t* dst);
        long ocall_inet_addr([in, string] char* src);
        long ocall_setsockopt(int fd, int opt);
        long ocall_ioctl(int fd, int req);
        long ocall_fcntl(int fd, int cmd);
        long ocall_epoll_ctl(int op, int fd);
        long ocall_read(int fd, [out, size=cap] uint8_t* buf, size_t cap);
        long ocall_fxstat64(int fd, [out, size=144] uint8_t* statbuf);
        long ocall_open64([in, string] char* path);
        long ocall_sendfile64(int outfd, int infd);
        long ocall_writev(int fd, [in, size=len] uint8_t* iov, size_t len);
        long ocall_shutdown(int fd);
        long ocall_close(int fd);
    };
};
`

// Workload constants from Section 6.4: http_load with 100 concurrent
// clients fetching 20 KB pages over loopback.
const (
	PageSize    = 20 * 1024
	Outstanding = 100
	readCap     = 2048 // request-header read chunks

	// cpuWorkPerRequest is lighttpd's per-request compute beyond the
	// modelled memory and kernel work: request routing, header
	// generation, connection state machine.  Calibrated so the native
	// server answers the paper's 53,400 requests/second.
	cpuWorkPerRequest = 70929

	// Fractional call credits per request, normalized from Table 2 at
	// 12.1k requests/s: read 49k/s -> 4.05, and the 25k/s group
	// (fcntl, epoll_ctl, close, setsockopt, fxstat64) -> 2.07 each.
	readsPerRequest = 4.05
	pairPerRequest  = 2.07

	// Enclave pages touched between edge calls (connection state,
	// parser, config trie) — TLB refills under the SDK interface.
	pagesPerSegment = 4
)

// Server is one lighttpd instance bound to a port configuration.
type Server struct {
	App *porting.App

	listenFD int
	ClientFD int

	readBuf *sdk.Buffer // request chunks land here (enclave side)
	ntopBuf *sdk.Buffer // inet_ntop output
	statBuf *sdk.Buffer // fxstat64 output
	headBuf *sdk.Buffer // response head for writev
	addrBuf *sdk.Buffer // inet_addr input string
	pathBuf *sdk.Buffer // open64 path string

	readCredit, pairCredit float64

	served uint64

	// tel holds the per-request telemetry handles (see metrics.go); all
	// nil (no-op) until EnableTelemetry attaches a registry.
	tel serverTel

	// mon is the continuous health monitor (see metrics.go); nil until
	// EnableMonitor.
	mon *monitor.Monitor

	// reqDist records the full per-request latency distribution; nil
	// (one branch per request) until EnableDistribution.
	reqDist *dist.Recorder
}

// NewServer boots lighttpd in the given mode and installs the document
// root (one 20 KB page, as in the paper's http_load run).
func NewServer(mode porting.Mode) *Server {
	app := porting.New(mode, porting.Config{Seed: 3033, EnclaveSize: 64 << 20}, EDL)
	s := &Server{App: app}
	k := app.Kernel

	page := make([]byte, PageSize)
	for i := range page {
		page[i] = byte('a' + i%26)
	}
	k.WriteFS("/www/index.html", page)
	about := []byte("<html><body>lighttpd-sim 1.4.41 running inside an enclave</body></html>")
	k.WriteFS("/www/about.html", about)

	app.BindUntrusted("ocall_socket", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		return uint64(k.Socket(ctx.Clk))
	})
	app.BindUntrusted("ocall_listen", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		if err := k.Listen(ctx.Clk, int(args[0].Scalar)); err != nil {
			panic(err)
		}
		return 0
	})
	app.BindUntrusted("ocall_accept", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		fd, err := k.Accept(ctx.Clk, int(args[0].Scalar))
		if err != nil {
			panic(err)
		}
		return uint64(fd)
	})
	app.BindUntrusted("ocall_inet_ntop", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		// Utility call: formats the peer address (no OS involvement —
		// the paper notes it could live inside the enclave).
		ctx.Clk.Advance(120)
		copy(args[1].Buf.Data, "192.168.1.77")
		return 12
	})
	app.BindUntrusted("ocall_inet_addr", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		ctx.Clk.Advance(110)
		return 0xC0A8014D
	})
	app.BindUntrusted("ocall_setsockopt", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		k.Setsockopt(ctx.Clk)
		return 0
	})
	app.BindUntrusted("ocall_ioctl", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		k.Ioctl(ctx.Clk)
		return 0
	})
	app.BindUntrusted("ocall_fcntl", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		k.Fcntl(ctx.Clk)
		return 0
	})
	app.BindUntrusted("ocall_epoll_ctl", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		k.EpollCtl(ctx.Clk)
		return 0
	})
	app.BindUntrusted("ocall_read", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		buf := args[1].Buf
		n, err := k.Recv(ctx.Clk, "read", int(args[0].Scalar), buf.Addr, buf.Data[:args[2].Scalar])
		if err == osapi.ErrWouldBlock {
			return 0 // EAGAIN on the non-blocking socket
		}
		if err != nil {
			panic(err)
		}
		return uint64(n)
	})
	app.BindUntrusted("ocall_fxstat64", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		size, err := k.Fstat(ctx.Clk, int(args[0].Scalar))
		if err != nil {
			panic(err)
		}
		return uint64(size)
	})
	app.BindUntrusted("ocall_open64", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		path := string(args[0].Buf.Data[:clen(args[0].Buf.Data)])
		fd, err := k.Open(ctx.Clk, path)
		if err != nil {
			return ^uint64(0) // ENOENT: the handler answers 404
		}
		return uint64(fd)
	})
	app.BindUntrusted("ocall_sendfile64", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		n, err := k.Sendfile(ctx.Clk, int(args[0].Scalar), int(args[1].Scalar))
		if err != nil {
			panic(err)
		}
		return uint64(n)
	})
	app.BindUntrusted("ocall_writev", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		buf := args[1].Buf
		n, err := k.Send(ctx.Clk, "writev", int(args[0].Scalar), buf.Addr, buf.Data[:args[2].Scalar])
		if err != nil {
			panic(err)
		}
		return uint64(n)
	})
	app.BindUntrusted("ocall_shutdown", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		if err := k.Shutdown(ctx.Clk, int(args[0].Scalar)); err != nil {
			panic(err)
		}
		return 0
	})
	app.BindUntrusted("ocall_close", func(ctx *sdk.Ctx, args []sdk.Arg) uint64 {
		k.Close(ctx.Clk, int(args[0].Scalar))
		return 0
	})

	app.BindTrusted("ecall_main", func(env *porting.Env, args []sdk.Arg) uint64 {
		fd, err := env.OCall("ocall_socket")
		if err != nil {
			panic(err)
		}
		if _, err := env.OCall("ocall_listen", sdk.Scalar(fd)); err != nil {
			panic(err)
		}
		s.listenFD = int(fd)
		return 0
	})
	app.BindTrusted("ecall_handle_connection", s.handleConnection)

	var clk sim.Clock
	if _, err := app.Call(&clk, "ecall_main"); err != nil {
		panic(err)
	}

	s.readBuf = app.AllocBuffer(&clk, readCap)
	s.ntopBuf = app.AllocBuffer(&clk, 46)
	s.statBuf = app.AllocBuffer(&clk, 144)
	s.headBuf = app.AllocBuffer(&clk, 256)
	s.addrBuf = app.AllocBuffer(&clk, 16)
	s.pathBuf = app.AllocBuffer(&clk, 64)
	copy(s.addrBuf.Data, "192.168.1.77\x00")
	return s
}

func clen(b []byte) int {
	for i, c := range b {
		if c == 0 {
			return i
		}
	}
	return len(b)
}

// handleConnection serves one HTTP/1.0 connection end to end: accept,
// option calls, header reads, stat/open, sendfile, and teardown — the call
// sequence whose per-second rates make up Table 2.
func (s *Server) handleConnection(env *porting.Env, args []sdk.Arg) uint64 {
	ocall := func(name string, a ...sdk.Arg) uint64 {
		r, err := env.OCall(name, a...)
		if err != nil {
			panic(fmt.Sprintf("lighttpd: %s: %v", name, err))
		}
		// Every SDK transition flushed the enclave TLB; the connection
		// state machine touches a handful of pages before the next call.
		env.TouchPages(pagesPerSegment)
		return r
	}

	conn := int(ocall("ocall_accept", sdk.Scalar(uint64(s.listenFD))))
	ocall("ocall_inet_ntop", sdk.Scalar(2), sdk.Buf(s.ntopBuf))
	ocall("ocall_inet_addr", sdk.Buf(s.addrBuf))

	s.pairCredit += pairPerRequest
	pairs := 0
	for ; s.pairCredit >= 1; s.pairCredit-- {
		pairs++
	}
	for i := 0; i < pairs; i++ {
		ocall("ocall_setsockopt", sdk.Scalar(uint64(conn)), sdk.Scalar(1))
		ocall("ocall_fcntl", sdk.Scalar(uint64(conn)), sdk.Scalar(4))
		ocall("ocall_epoll_ctl", sdk.Scalar(1), sdk.Scalar(uint64(conn)))
	}
	ocall("ocall_ioctl", sdk.Scalar(uint64(conn)), sdk.Scalar(0x5421))

	// Read the request head in chunks.
	s.readCredit += readsPerRequest
	reads := 0
	for ; s.readCredit >= 1; s.readCredit-- {
		reads++
	}
	var raw strings.Builder
	for i := 0; i < reads; i++ {
		n := ocall("ocall_read", sdk.Scalar(uint64(conn)), sdk.Buf(s.readBuf), sdk.Scalar(readCap))
		raw.Write(s.readBuf.Data[:n])
	}
	req, err := ParseRequest(raw.String())
	if err != nil {
		panic(err)
	}
	closeWork := env.Section(porting.CatAppWork)
	env.Clk.Advance(cpuWorkPerRequest)
	closeWork()

	// Stat and open the document.
	path := "/www" + req.Path
	if req.Path == "/" {
		path = "/www/index.html"
	}
	copy(s.pathBuf.Data, path)
	s.pathBuf.Data[len(path)] = 0
	open := ocall("ocall_open64", sdk.Buf(s.pathBuf))
	if open == ^uint64(0) {
		// Missing document: a 404 without a body.
		head := ResponseHead(404, 0)
		copy(s.headBuf.Data, head)
		ocall("ocall_writev", sdk.Scalar(uint64(conn)), sdk.Buf(s.headBuf), sdk.Scalar(uint64(len(head))))
		ocall("ocall_shutdown", sdk.Scalar(uint64(conn)))
		ocall("ocall_close", sdk.Scalar(uint64(conn)))
		s.served++
		return 404
	}
	fd := int(open)
	size := 0
	for i := 0; i < pairs; i++ { // fxstat64 runs at the same 2.07x rate
		size = int(ocall("ocall_fxstat64", sdk.Scalar(uint64(fd)), sdk.Buf(s.statBuf)))
	}

	// Response: headers via writev, body via sendfile.
	head := ResponseHead(200, size)
	copy(s.headBuf.Data, head)
	ocall("ocall_writev", sdk.Scalar(uint64(conn)), sdk.Buf(s.headBuf), sdk.Scalar(uint64(len(head))))
	ocall("ocall_sendfile64", sdk.Scalar(uint64(conn)), sdk.Scalar(uint64(fd)))

	// Teardown.
	ocall("ocall_shutdown", sdk.Scalar(uint64(conn)))
	ocall("ocall_close", sdk.Scalar(uint64(conn)))
	for i := 1; i < pairs; i++ {
		ocall("ocall_close", sdk.Scalar(uint64(fd)))
	}
	s.served++
	return uint64(size)
}

// ServeOne accepts and serves one queued connection through the configured
// interface.
func (s *Server) ServeOne(clk *sim.Clock) {
	start := clk.Now()
	crossed := s.tel.boundaryCount()
	if _, err := s.App.Call(clk, "ecall_handle_connection", sdk.Scalar(0), sdk.Scalar(0)); err != nil {
		panic(err)
	}
	s.tel.requests.Inc()
	s.tel.reqCycles.ObserveSince(start, clk.Now())
	s.reqDist.Record(clk.Since(start))
	s.tel.crossings.Observe(s.tel.boundaryCount() - crossed)
}

// InjectRequest queues a new client connection carrying a GET request and
// returns the client fd for draining the response.
func (s *Server) InjectRequest(path string) int {
	client, err := s.App.Kernel.InjectConnection(s.listenFD)
	if err != nil {
		panic(err)
	}
	// The server-side fd is what Accept will return; queue the request
	// bytes on it.  The kernel pairs them, so find the peer through a
	// tiny handshake: inject on the client, which delivers to the peer.
	req := "GET " + path + " HTTP/1.0\r\nHost: localhost\r\nUser-Agent: http_load\r\n\r\n"
	s.injectToPeer(client, req)
	return client
}

func (s *Server) injectToPeer(clientFD int, req string) {
	// Send from the client side: Send delivers into the peer's queue.
	var free sim.Clock // client cost runs on the load generator's cores
	if _, err := s.App.Kernel.Send(&free, "client_tx", clientFD, 0, []byte(req)); err != nil {
		panic(err)
	}
}

// Served returns the number of completed requests.
func (s *Server) Served() uint64 { return s.served }

// clientThinkSeconds is http_load's per-request client-side time
// (connection setup, response verification) spent outside the server.
// The paper's own latency-throughput products imply it: native runs at
// 53,400 req/s with 100 clients (1.87 ms per slot) but reports 1.52 ms of
// server latency — a 0.35 ms client-side gap.
const clientThinkSeconds = 0.35e-3

// Run drives the http_load closed loop (100 concurrent clients) for the
// given simulated duration.
func Run(mode porting.Mode, simSeconds float64) porting.Metrics {
	s := NewServer(mode)
	m := porting.RunClosedLoop(Outstanding, sim.Cycles(simSeconds), func(clk *sim.Clock) {
		client := s.InjectRequest("/")
		s.ServeOne(clk)
		// Drain the response (headers + body) on the generator side.
		for {
			if _, ok := s.App.Kernel.TakeRX(client); !ok {
				break
			}
		}
	})
	for _, l := range []*float64{&m.AvgLatency, &m.P50Latency, &m.P99Latency} {
		if *l > clientThinkSeconds {
			*l -= clientThinkSeconds
		}
	}
	return m
}

package lighttpd

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"hotcalls/internal/core"
	"hotcalls/internal/telemetry"
)

func fastPoolOpts(maxResponders int) core.PoolOptions {
	return core.PoolOptions{
		SlotsPerShard: connWindow,
		MinResponders: 1,
		MaxResponders: maxResponders,
		Timeout:       1 << 20,
		ControlWindow: 8,
		SpinPasses:    2,
		YieldPasses:   4,
	}
}

const getIndex = "GET /index.html HTTP/1.0\r\nHost: sim\r\n\r\n"

func TestPoolServerServesIndex(t *testing.T) {
	s := NewPoolServer(1, fastPoolOpts(2))
	s.Start()
	defer s.Stop()

	resp, err := s.Conn(0).Do(getIndex)
	if err != nil {
		t.Fatal(err)
	}
	text := string(resp)
	if !strings.HasPrefix(text, "HTTP/1.0 200 OK\r\n") {
		t.Fatalf("status line: %q", text[:40])
	}
	if !strings.Contains(text, fmt.Sprintf("Content-Length: %d\r\n", PageSize)) {
		t.Fatalf("content length missing: %q", text[:120])
	}
	_, body, ok := strings.Cut(text, "\r\n\r\n")
	if !ok || len(body) != PageSize {
		t.Fatalf("body = %d bytes, want %d", len(body), PageSize)
	}
}

func TestPoolServerHeadAndErrors(t *testing.T) {
	s := NewPoolServer(1, fastPoolOpts(1))
	s.AddDocument("/doc", []byte("hello"))
	s.Start()
	defer s.Stop()
	c := s.Conn(0)

	resp, err := c.Do("HEAD /doc HTTP/1.0\r\n\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(resp), "HTTP/1.0 200 OK\r\n") || bytes.Contains(resp, []byte("hello")) {
		t.Fatalf("HEAD must return the head only: %q", resp)
	}

	resp, err = c.Do("GET /missing HTTP/1.0\r\n\r\n")
	if err != nil || !strings.HasPrefix(string(resp), "HTTP/1.0 404 Not Found\r\n") {
		t.Fatalf("404 = (%q, %v)", resp, err)
	}

	resp, err = c.Do("NONSENSE\r\n\r\n")
	if err != nil || !strings.HasPrefix(string(resp), "HTTP/1.0 400 Bad Request\r\n") {
		t.Fatalf("400 = (%q, %v)", resp, err)
	}
}

func TestPoolServerConcurrentConnections(t *testing.T) {
	const conns = 4
	s := NewPoolServer(conns, fastPoolOpts(3))
	s.SetTelemetry(telemetry.New())
	s.Start()
	defer s.Stop()

	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for ci := 0; ci < conns; ci++ {
		c := s.Conn(ci)
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			pending := make([]PendingResponse, 0, connWindow)
			served := 0
			for served < 300 {
				for len(pending) < connWindow {
					pr, err := c.Submit(getIndex)
					if err != nil {
						errs <- fmt.Errorf("conn %d submit: %v", ci, err)
						return
					}
					pending = append(pending, pr)
				}
				for _, pr := range pending {
					resp, err := pr.Wait()
					if err != nil || !bytes.HasPrefix(resp, []byte("HTTP/1.0 200")) {
						errs <- fmt.Errorf("conn %d: (%.40q, %v)", ci, resp, err)
						return
					}
					served++
				}
				pending = pending[:0]
			}
			errs <- nil
		}(ci)
	}
	wg.Wait()
	for ci := 0; ci < conns; ci++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// BenchmarkPoolServerThroughput measures the fabric-routed HTTP request
// path with a pipelined connection — the number the scaling experiment
// in internal/bench normalizes against.
func BenchmarkPoolServerThroughput(b *testing.B) {
	s := NewPoolServer(1, core.PoolOptions{SlotsPerShard: connWindow, Timeout: 1 << 20})
	s.Start()
	defer s.Stop()
	c := s.Conn(0)
	b.ResetTimer()
	pending := make([]PendingResponse, 0, connWindow)
	for i := 0; i < b.N; {
		for len(pending) < connWindow && i < b.N {
			pr, err := c.Submit(getIndex)
			if err != nil {
				b.Fatal(err)
			}
			pending = append(pending, pr)
			i++
		}
		for _, pr := range pending {
			if _, err := pr.Wait(); err != nil {
				b.Fatal(err)
			}
		}
		pending = pending[:0]
	}
}

// Package lighttpd is the paper's third evaluation application
// (Section 6.4): a single-threaded, single-process static web server in
// the style of lighttpd 1.4.41, ported wholesale into an enclave.  The
// HTTP/1.0 request path is real — requests are parsed, files come from the
// kernel's file system via sendfile, and responses carry correct headers —
// while cycle costs flow through the simulated hierarchy.
package lighttpd

import (
	"errors"
	"fmt"
	"strings"
)

// Errors from request parsing.
var (
	ErrBadRequest = errors.New("lighttpd: malformed request line")
	ErrBadMethod  = errors.New("lighttpd: unsupported method")
)

// HTTPRequest is a parsed request line plus headers.
type HTTPRequest struct {
	Method  string
	Path    string
	Version string
	Headers map[string]string
}

// ParseRequest parses an HTTP/1.0 request head.
func ParseRequest(raw string) (*HTTPRequest, error) {
	head, _, _ := strings.Cut(raw, "\r\n\r\n")
	lines := strings.Split(head, "\r\n")
	if len(lines) == 0 {
		return nil, ErrBadRequest
	}
	parts := strings.Fields(lines[0])
	if len(parts) != 3 {
		return nil, ErrBadRequest
	}
	r := &HTTPRequest{Method: parts[0], Path: parts[1], Version: parts[2], Headers: make(map[string]string)}
	if r.Method != "GET" && r.Method != "HEAD" {
		return nil, ErrBadMethod
	}
	for _, line := range lines[1:] {
		if line == "" {
			break
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			return nil, ErrBadRequest
		}
		r.Headers[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	return r, nil
}

// ResponseHead builds the status line and headers for a response.
func ResponseHead(status int, contentLength int) string {
	text := "OK"
	switch status {
	case 404:
		text = "Not Found"
	case 400:
		text = "Bad Request"
	}
	return fmt.Sprintf("HTTP/1.0 %d %s\r\nServer: lighttpd-sim/1.4.41\r\nContent-Length: %d\r\nConnection: close\r\n\r\n",
		status, text, contentLength)
}

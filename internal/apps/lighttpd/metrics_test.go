package lighttpd

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hotcalls/internal/apps/porting"
	"hotcalls/internal/monitor"
	"hotcalls/internal/sim"
	"hotcalls/internal/telemetry"
)

func serveN(t *testing.T, s *Server, n int) {
	t.Helper()
	var clk sim.Clock
	for i := 0; i < n; i++ {
		client := s.InjectRequest("/")
		s.ServeOne(&clk)
		for {
			if _, ok := s.App.Kernel.TakeRX(client); !ok {
				break
			}
		}
	}
}

func TestTelemetrySGXMode(t *testing.T) {
	s := NewServer(porting.SGX)
	reg := telemetry.New()
	s.EnableTelemetry(reg)
	serveN(t, s, 10)

	snap := reg.Snapshot()
	if got := snap.Counters[MetricRequests]; got != 10 {
		t.Errorf("%s = %d, want 10", MetricRequests, got)
	}
	if got := snap.Counters[telemetry.MetricEcalls]; got != 10 {
		t.Errorf("%s = %d, want 10", telemetry.MetricEcalls, got)
	}
	// Each connection issues at least accept, inet_ntop, inet_addr,
	// ioctl, open64, writev, sendfile64, shutdown, close — plus the
	// credit-scheduled read/fcntl group.
	if got := snap.Counters[telemetry.MetricOcalls]; got < 90 {
		t.Errorf("%s = %d, want >= 90", telemetry.MetricOcalls, got)
	}
	h, ok := snap.Histograms[MetricCrossings]
	if !ok || h.Count != 10 {
		t.Fatalf("%s count = %d, want 10", MetricCrossings, h.Count)
	}
	// Crossings per request = 1 ecall + the request's ocalls: always
	// double digits for this call sequence.
	if mean := h.Mean(); mean < 10 {
		t.Errorf("crossings mean = %v, want >= 10", mean)
	}
}

func TestTelemetryHotCallsMode(t *testing.T) {
	s := NewServer(porting.HotCalls)
	reg := telemetry.New()
	s.EnableTelemetry(reg)
	serveN(t, s, 10)

	snap := reg.Snapshot()
	if got := snap.Counters[telemetry.MetricHotECalls]; got != 10 {
		t.Errorf("%s = %d, want 10", telemetry.MetricHotECalls, got)
	}
	if got := snap.Counters[telemetry.MetricHotOCalls]; got < 90 {
		t.Errorf("%s = %d, want >= 90", telemetry.MetricHotOCalls, got)
	}
	if got := snap.Counters[telemetry.MetricEEnter]; got != 0 {
		t.Errorf("%s = %d, want 0 (no SDK transitions under HotCalls)", telemetry.MetricEEnter, got)
	}
}

func TestMetricsHandler(t *testing.T) {
	s := NewServer(porting.HotCallsNRZ)
	reg := telemetry.New()
	s.EnableTelemetry(reg)
	serveN(t, s, 3)

	srv := httptest.NewServer(s.MetricsHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		MetricRequests + " 3",
		telemetry.MetricHotECalls + " 3",
		telemetry.MetricEcalls + " 0", // pre-registered, untouched under HotCalls
		MetricRequestCycle + "_count 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestDebugMux checks /metrics, /debug/health, and /debug/monitor served
// side by side on the app port after a real workload.
func TestDebugMux(t *testing.T) {
	s := NewServer(porting.HotCalls)
	reg := telemetry.New()
	s.EnableTelemetry(reg)
	// App-level HotCalls carry the serviced request work, so the
	// microbenchmark-tuned p99 objective does not apply here.
	th := monitor.DefaultThresholds()
	th.SLOObjectiveP99 = 1 << 20
	mon := s.EnableMonitor(monitor.Options{Rules: monitor.DefaultRules(th)})
	mon.Tick() // baseline
	serveN(t, s, 10)
	mon.Tick()

	srv := httptest.NewServer(s.DebugMux())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(raw)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, telemetry.MetricHotECalls+" 10") {
		t.Errorf("/metrics: code %d, body %q", code, body)
	}
	if code, body := get("/debug/health"); code != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("/debug/health: code %d, body %q", code, body)
	}
	if code, body := get("/debug/monitor?format=text"); code != http.StatusOK || !strings.Contains(body, "health: ok") {
		t.Errorf("/debug/monitor: code %d, body %q", code, body)
	}
}
